// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per figure; see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for paper-vs-measured numbers),
// plus micro-benchmarks of the core model operations.
package accelcloud_test

import (
	"runtime"
	"testing"
	"time"

	"accelcloud/internal/allocate"
	"accelcloud/internal/editdist"
	"accelcloud/internal/experiments"
	"accelcloud/internal/predict"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
	"accelcloud/internal/trace"
)

// BenchmarkFig4InstanceCharacterization regenerates Fig 4: response time
// vs concurrent users for the six instance types, plus the acceleration
// classification.
func BenchmarkFig4InstanceCharacterization(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(s)
		if err != nil {
			b.Fatal(err)
		}
		if r.Grouping.NumLevels() < 4 {
			b.Fatalf("unexpected level count %d", r.Grouping.NumLevels())
		}
	}
}

// BenchmarkFig5AccelerationLevels regenerates Fig 5: the static minimax
// task across acceleration levels 1–3.
func BenchmarkFig5AccelerationLevels(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(s)
		if err != nil {
			b.Fatal(err)
		}
		if r.L3vsL1 < 1 {
			b.Fatalf("acceleration factor %v < 1", r.L3vsL1)
		}
	}
}

// BenchmarkFig6NanoMicroAnomaly regenerates Fig 6: the t2.nano vs
// t2.micro anomaly.
func BenchmarkFig6NanoMicroAnomaly(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7ComponentTimes regenerates Fig 7: the Tresponse = T1 +
// routing + T2 + Tcloud decomposition per acceleration level and the SD
// curves.
func BenchmarkFig7ComponentTimes(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Routing regenerates Fig 8: the ≈150 ms routing overhead
// per group and the doubling arrival-rate sweep with its saturation knee.
func BenchmarkFig8Routing(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(s)
		if err != nil {
			b.Fatal(err)
		}
		if r.SaturationHz == 0 {
			b.Fatal("no saturation point found")
		}
	}
}

// BenchmarkFig9DynamicAcceleration regenerates Fig 9: the 100-user
// dynamic-acceleration study with 1/50 promotions.
func BenchmarkFig9DynamicAcceleration(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10PredictionAccuracy regenerates Fig 10a: accuracy vs
// history size with 10-fold cross validation (paper: ≈87.5%).
func BenchmarkFig10PredictionAccuracy(b *testing.B) {
	s := experiments.Quick()
	f9, err := experiments.Fig9(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(s, &f9)
		if err != nil {
			b.Fatal(err)
		}
		if r.OverallAccuracy < 0.5 {
			b.Fatalf("accuracy collapsed: %v", r.OverallAccuracy)
		}
	}
}

// BenchmarkFig11NetworkLatency regenerates Fig 11: the per-operator
// 3G/LTE hourly RTT series.
func BenchmarkFig11NetworkLatency(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- parallel engine variants (serial-vs-parallel wall clock; outputs
// are bit-identical by construction, see determinism_test.go) ------------

// BenchmarkFig4ParallelEngine is Fig 4 with types and load levels sharded
// across all cores.
func BenchmarkFig4ParallelEngine(b *testing.B) {
	s := experiments.Quick()
	s.Workers = runtime.NumCPU()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11ShardedEngine is Fig 11 with per-chunk sample substreams
// drawn on all cores.
func BenchmarkFig11ShardedEngine(b *testing.B) {
	s := experiments.Quick()
	s.Workers = runtime.NumCPU()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerSerial regenerates the whole evaluation on one worker.
func BenchmarkRunnerSerial(b *testing.B) {
	r := experiments.Runner{Scale: experiments.Quick(), Workers: 1}
	for i := 0; i < b.N; i++ {
		reports, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.FirstError(reports); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerParallel regenerates the whole evaluation across all
// cores — the headline speedup of the parallel experiment engine.
func BenchmarkRunnerParallel(b *testing.B) {
	r := experiments.Runner{Scale: experiments.Quick(), Workers: runtime.NumCPU()}
	for i := 0; i < b.N; i++ {
		reports, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.FirstError(reports); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAllocators compares ILP vs greedy vs vertical scaling.
func BenchmarkAblationAllocators(b *testing.B) {
	s := experiments.Quick()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationAllocators(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the model's hot paths ---------------------------

// BenchmarkAllocator times one ILP allocation round at paper scale
// (6 types, 3 groups, CC = 20).
func BenchmarkAllocator(b *testing.B) {
	p := &allocate.Problem{
		Specs: []allocate.Spec{
			{TypeName: "t2.nano", Group: 0, CostPerHour: 0.0063, Capacity: 30},
			{TypeName: "t2.small", Group: 0, CostPerHour: 0.025, Capacity: 30},
			{TypeName: "t2.medium", Group: 1, CostPerHour: 0.05, Capacity: 60},
			{TypeName: "t2.large", Group: 1, CostPerHour: 0.101, Capacity: 90},
			{TypeName: "m4.4xlarge", Group: 2, CostPerHour: 0.888, Capacity: 400},
			{TypeName: "m4.10xlarge", Group: 2, CostPerHour: 2.22, Capacity: 800},
		},
		Demands: []float64{55, 140, 900},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan, err := allocate.Solve(p)
		if err != nil {
			b.Fatal(err)
		}
		if !plan.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkPredictor times one edit-distance NN prediction over 24 slots
// of 100-user workload.
func BenchmarkPredictor(b *testing.B) {
	slots := make([]trace.Slot, 24)
	for i := range slots {
		slot := trace.Slot{Start: sim.Epoch.Add(time.Duration(i) * time.Hour)}
		for g := 0; g < 4; g++ {
			users := make([]int, 10+(i*7+g*13)%40)
			for u := range users {
				users[u] = u
			}
			slot.Groups = append(slot.Groups, users)
		}
		slots[i] = slot
	}
	p := predict.EditDistanceNN{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Predict(slots); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlotDistance times the Δ metric on 100-user slots.
func BenchmarkSlotDistance(b *testing.B) {
	x := make([][]int, 4)
	y := make([][]int, 4)
	for g := range x {
		for u := 0; u < 25; u++ {
			x[g] = append(x[g], u)
			y[g] = append(y[g], u+g)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		editdist.SlotDistance(x, y)
	}
}

// BenchmarkTaskMinimax times the paper's flagship offloaded task.
func BenchmarkTaskMinimax(b *testing.B) {
	rng := sim.NewRNG(1).Stream("bench")
	st, err := tasks.Minimax{}.Generate(rng, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (tasks.Minimax{}).Execute(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTaskPoolRoundTrip times a full generate→serialize→execute
// round trip of a random pool task (the homogeneous offloading path).
func BenchmarkTaskPoolRoundTrip(b *testing.B) {
	pool := tasks.DefaultPool()
	rng := sim.NewRNG(2).Stream("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		task := pool.Random(rng)
		st, err := task.Generate(rng, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pool.Execute(st); err != nil {
			b.Fatal(err)
		}
	}
}
