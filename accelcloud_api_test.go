package accelcloud_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"accelcloud"
)

// The facade must expose everything a downstream user needs for the
// quickstart flow without touching internal packages.
func TestFacadeQuickstartFlow(t *testing.T) {
	sys, err := accelcloud.NewSystem(accelcloud.SystemConfig{
		Groups: []accelcloud.GroupSpec{
			{Group: 1, TypeName: "t2.nano", Capacity: 30, Initial: 1},
			{Group: 2, TypeName: "t2.large", Capacity: 90, Initial: 1},
		},
		ProvisionInterval: 15 * time.Minute,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := accelcloud.GenerateInterArrival(
		accelcloud.NewRNG(1).Stream("wl"), accelcloud.Epoch,
		accelcloud.InterArrivalConfig{
			Users:        8,
			InterArrival: accelcloud.UniformDist{Lo: 5000, Hi: 20000},
			Duration:     30 * time.Minute,
			Pool:         accelcloud.DefaultTaskPool(),
			Sizer:        accelcloud.DefaultSizer(),
		})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(reqs, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) == 0 || res.MeanResponseMs() <= 0 {
		t.Fatalf("run produced nothing: %d requests", len(res.Requests))
	}
	if len(res.Intervals) == 0 {
		t.Fatal("no provisioning rounds")
	}
}

func TestFacadeBenchmarkAndClassify(t *testing.T) {
	catalog := accelcloud.DefaultCatalog()
	cfg := accelcloud.DefaultBenchmarkConfig()
	cfg.Waves = 4
	cfg.LoadLevels = []int{1, 50}
	var ms []accelcloud.Measurement
	for _, name := range []string{"t2.nano", "t2.large", "m4.10xlarge"} {
		typ, err := catalog.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := accelcloud.Benchmark(typ, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	g, err := accelcloud.Classify(ms, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLevels() != 3 {
		t.Fatalf("levels = %d, want 3", g.NumLevels())
	}
}

func TestFacadeAllocate(t *testing.T) {
	plan, err := accelcloud.Allocate(&accelcloud.AllocProblem{
		Specs: []accelcloud.AllocSpec{
			{TypeName: "t2.nano", Group: 0, CostPerHour: 0.0063, Capacity: 30},
		},
		Demands: []float64{45},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || plan.Counts["t2.nano"] != 2 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestFacadeTraceAndSlots(t *testing.T) {
	store := accelcloud.NewTraceStore()
	for u := 0; u < 5; u++ {
		if err := store.Append(accelcloud.TraceRecord{
			Timestamp:    accelcloud.Epoch.Add(time.Duration(u) * time.Minute),
			UserID:       u,
			Group:        1,
			BatteryLevel: 1,
			RTT:          100 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
	}
	slots, err := accelcloud.BuildHourlySlots(store.Snapshot(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 2 || slots[0].Counts()[1] != 5 {
		t.Fatalf("slots = %+v", slots)
	}
	var p accelcloud.EditDistanceNN
	pred, err := p.Predict(slots)
	if err != nil {
		t.Fatal(err)
	}
	if pred.TotalUsers() < 0 {
		t.Fatal("prediction broken")
	}
}

func TestFacadeNetworkedPlane(t *testing.T) {
	pool := accelcloud.DefaultTaskPool()
	sur, err := accelcloud.NewSurrogate("facade-test", 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range pool.Names() {
		task, err := pool.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sur.Push(task); err != nil {
			t.Fatal(err)
		}
	}
	backend := httptest.NewServer(sur.Handler())
	defer backend.Close()
	fe, err := accelcloud.NewSDNFrontEnd(accelcloud.WithTrace(accelcloud.NewTraceStore()))
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.Register(1, backend.URL); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(fe.Handler())
	defer front.Close()
	ctx := context.Background()
	if err := accelcloud.WaitHealthy(ctx, front.URL); err != nil {
		t.Fatal(err)
	}
	task, err := pool.ByName("sieve")
	if err != nil {
		t.Fatal(err)
	}
	st, err := task.Generate(accelcloud.NewRNG(1).Stream("x"), 2)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := accelcloud.NewRPCClient(front.URL).Offload(ctx, accelcloud.OffloadRequest{
		UserID: 1, Group: 1, BatteryLevel: 1, State: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result.Task != "sieve" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestFacadeDevicesAndPolicies(t *testing.T) {
	profiles := accelcloud.DefaultProfiles()
	p, err := accelcloud.ProfileByName(profiles, "legacy")
	if err != nil {
		t.Fatal(err)
	}
	d, err := accelcloud.NewDevice(1, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.ShouldOffload(1_000_000, 40*time.Millisecond, 200_000) {
		t.Fatal("legacy device should offload heavy work")
	}
	var pol accelcloud.PromotionPolicy = accelcloud.ThresholdPolicy{Target: time.Second, Patience: 1}
	if !pol.ShouldPromote(d, 2*time.Second, nil) {
		t.Fatal("threshold policy should fire")
	}
	pol = accelcloud.NeverPolicy{}
	if pol.ShouldPromote(d, time.Hour, nil) {
		t.Fatal("never policy fired")
	}
	pol = accelcloud.BatteryAwarePolicy{MinLevel: 2}
	if !pol.ShouldPromote(d, 0, nil) {
		t.Fatal("battery-aware policy should fire when below min level")
	}
	_ = accelcloud.StaticProbability{P: 0.02}
}

func TestFacadeOperators(t *testing.T) {
	ops, err := accelcloud.DefaultOperators()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("got %d operators", len(ops))
	}
	if accelcloud.Tech3G.String() != "3G" || accelcloud.TechLTE.String() != "LTE" {
		t.Fatal("tech names wrong")
	}
}
