// Game AI offloading: the paper's motivating scenario (§I) — a
// decision-making routine (minimax) that a flagship phone computes easily
// but an old device or a wearable cannot. Each device class decides
// per-task whether to offload (the §II-A rule) and what acceleration that
// buys, comparing local execution, LTE offloading, and 3G offloading.
package main

import (
	"fmt"
	"os"
	"time"

	"accelcloud"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gameai:", err)
		os.Exit(1)
	}
}

func run() error {
	pool := accelcloud.DefaultTaskPool()
	task, err := pool.ByName("minimax")
	if err != nil {
		return err
	}
	catalog := accelcloud.DefaultCatalog()
	ops, err := accelcloud.DefaultOperators()
	if err != nil {
		return err
	}
	rng := accelcloud.NewRNG(7)
	netRng := rng.Stream("net")

	// The cloud side: one t2.large per the Fig 9 group-2 deployment.
	large, err := catalog.ByName("t2.large")
	if err != nil {
		return err
	}
	remoteRate := large.SingleTaskRate()

	fmt.Println("minimax game AI: local vs offloaded execution per device class")
	fmt.Println()
	for _, size := range []int{6, 8, 9} {
		work := task.Work(size)
		fmt.Printf("--- endgame with %d empty cells (≈%.0f work units) ---\n", size, work)
		for _, profile := range accelcloud.DefaultProfiles() {
			dev, err := accelcloud.NewDevice(1, profile, 1)
			if err != nil {
				return err
			}
			local := dev.LocalExecTime(work)
			// Expected offloading times under LTE and 3G for operator β.
			var beta accelcloud.NetOperator
			for _, op := range ops {
				if op.Name == "beta" {
					beta = op
				}
			}
			lte := beta.RTT[accelcloud.TechLTE].Sample(netRng, accelcloud.Epoch)
			threeG := beta.RTT[accelcloud.Tech3G].Sample(netRng, accelcloud.Epoch)
			exec := time.Duration(work / remoteRate * float64(time.Second))
			offLTE := lte + exec
			off3G := threeG + exec

			decision := "stay local"
			if dev.ShouldOffload(work, lte, remoteRate) {
				decision = fmt.Sprintf("OFFLOAD (%.1fx faster)",
					float64(local)/float64(offLTE))
			}
			fmt.Printf("%-9s local %8.0f ms | LTE %7.0f ms | 3G %7.0f ms -> %s\n",
				profile.Name,
				float64(local)/float64(time.Millisecond),
				float64(offLTE)/float64(time.Millisecond),
				float64(off3G)/float64(time.Millisecond),
				decision)
		}
		fmt.Println()
	}

	// And the actual computation, end to end: generate a position, ship
	// the state, execute remotely (in-process here), verify the move.
	st, err := task.Generate(rng.Stream("game"), 8)
	if err != nil {
		return err
	}
	res, err := pool.Execute(st)
	if err != nil {
		return err
	}
	fmt.Printf("sample offloaded search: %s -> %s (%d nodes)\n", st.Task, res.Data, res.Ops)
	return nil
}
