// Cluster: the real-socket deployment. Two Dalvik-x86-like surrogate
// servers (acceleration groups 1 and 2) and the SDN-accelerator front-end
// run on localhost HTTP; a set of simulated mobile clients offloads pool
// tasks through the front-end, then the example prints the per-group
// timing decomposition (Fig 7a over real sockets).
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"accelcloud"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

// serve starts an HTTP server on an ephemeral localhost port and returns
// its base URL and a shutdown func.
func serve(handler http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

func run() error {
	pool := accelcloud.DefaultTaskPool()

	// Back-ends: one surrogate per acceleration group.
	store := accelcloud.NewTraceStore()
	fe, err := accelcloud.NewFrontEnd(store, 0)
	if err != nil {
		return err
	}
	for group := 1; group <= 2; group++ {
		sur, err := accelcloud.NewSurrogate(fmt.Sprintf("surrogate-g%d", group), 32)
		if err != nil {
			return err
		}
		for _, name := range pool.Names() {
			task, err := pool.ByName(name)
			if err != nil {
				return err
			}
			if err := sur.Push(task); err != nil {
				return err
			}
		}
		url, stop, err := serve(sur.Handler())
		if err != nil {
			return err
		}
		defer stop()
		if err := fe.Register(group, url); err != nil {
			return err
		}
		fmt.Printf("surrogate group %d: %s (%d bundles installed)\n",
			group, url, len(sur.Installed()))
	}

	frontURL, stopFront, err := serve(fe.Handler())
	if err != nil {
		return err
	}
	defer stopFront()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := accelcloud.WaitHealthy(ctx, frontURL); err != nil {
		return err
	}
	fmt.Printf("sdn front-end     : %s\n\n", frontURL)

	// Clients: 12 devices, half asking group 1, half group 2, each
	// offloading 5 random pool tasks concurrently.
	client := accelcloud.NewRPCClient(frontURL)
	rng := accelcloud.NewRNG(99)
	type obs struct {
		group   int
		cloudMs float64
		t2Ms    float64
		totalMs float64
	}
	var mu sync.Mutex
	var observations []obs
	var wg sync.WaitGroup
	for dev := 0; dev < 12; dev++ {
		wg.Add(1)
		go func(dev int) {
			defer wg.Done()
			devRng := rng.StreamN("client", dev)
			group := 1 + dev%2
			for i := 0; i < 5; i++ {
				task := pool.Random(devRng)
				st, err := task.Generate(devRng, 16)
				if err != nil {
					continue
				}
				start := time.Now()
				resp, err := client.Offload(ctx, accelcloud.OffloadRequest{
					UserID: dev, Group: group, BatteryLevel: 1, State: st,
				})
				if err != nil {
					continue
				}
				mu.Lock()
				observations = append(observations, obs{
					group:   group,
					cloudMs: resp.Timings.CloudMs,
					t2Ms:    resp.Timings.BackendMs,
					totalMs: float64(time.Since(start)) / float64(time.Millisecond),
				})
				mu.Unlock()
			}
		}(dev)
	}
	wg.Wait()

	perGroup := map[int][]obs{}
	for _, o := range observations {
		perGroup[o.group] = append(perGroup[o.group], o)
	}
	fmt.Println("group  requests  mean_total_ms  mean_T2_ms  mean_Tcloud_ms")
	for g := 1; g <= 2; g++ {
		os := perGroup[g]
		if len(os) == 0 {
			continue
		}
		var total, t2, cloud float64
		for _, o := range os {
			total += o.totalMs
			t2 += o.t2Ms
			cloud += o.cloudMs
		}
		n := float64(len(os))
		fmt.Printf("%d      %-8d  %-13.1f  %-10.2f  %.2f\n",
			g, len(os), total/n, t2/n, cloud/n)
	}
	fmt.Printf("\ntrace records logged by the front-end: %d\n", store.Len())
	return nil
}
