// Quickstart: assemble the paper's Fig 9a deployment (three acceleration
// groups on t2.nano / t2.large / m4.4xlarge), drive it with a small
// realistic workload, and print what the adaptive model did.
package main

import (
	"fmt"
	"os"
	"time"

	"accelcloud"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Three acceleration groups, each served by one instance type.
	//    Capacity is K_s: how many users one instance serves within the
	//    SLA (found by benchmarking; see examples in the README).
	sys, err := accelcloud.NewSystem(accelcloud.SystemConfig{
		Groups: []accelcloud.GroupSpec{
			{Group: 1, TypeName: "t2.nano", Capacity: 30, Initial: 1},
			{Group: 2, TypeName: "t2.large", Capacity: 90, Initial: 1},
			{Group: 3, TypeName: "m4.4xlarge", Capacity: 400, Initial: 1},
		},
		ProvisionInterval: 30 * time.Minute,
		Seed:              42,
	})
	if err != nil {
		return err
	}

	// 2. A 2-hour workload: 25 devices offloading the static minimax
	//    task with 1–5 minute think times (≈40 requests per user, the
	//    paper's per-user volume).
	const users = 25
	dur := 2 * time.Hour
	reqs, err := accelcloud.GenerateInterArrival(
		accelcloud.NewRNG(42).Stream("workload"), accelcloud.Epoch,
		accelcloud.InterArrivalConfig{
			Users:        users,
			InterArrival: accelcloud.UniformDist{Lo: 60_000, Hi: 300_000},
			Duration:     dur,
			Pool:         accelcloud.DefaultTaskPool(),
			Sizer:        accelcloud.FixedSizer{Size: 8},
			FixedTask:    "minimax",
		})
	if err != nil {
		return err
	}

	// 3. Run the full architecture: SDN routing, LTE access network,
	//    1/50 promotions, prediction + ILP allocation every 30 min.
	res, err := sys.Run(reqs, dur)
	if err != nil {
		return err
	}

	fmt.Printf("requests processed : %d (drop rate %.2f%%)\n",
		len(res.Requests), 100*res.DropRate())
	fmt.Printf("mean response      : %.1f ms\n", res.MeanResponseMs())
	fmt.Printf("promotions         : %d\n", len(res.Promotions))
	fmt.Printf("cloud spend        : $%.4f\n", res.TotalCostUSD)
	fmt.Println("\nprovisioning rounds:")
	for i, iv := range res.Intervals {
		fmt.Printf("  round %d: predicted %v, actual %v, accuracy %.0f%%, %d instances, $%.4f/h\n",
			i+1, iv.PredictedCounts, iv.ActualCounts, 100*iv.Accuracy,
			iv.Instances, iv.Plan.Cost)
	}
	groups := map[int]int{}
	for _, g := range res.FinalGroups {
		groups[g]++
	}
	fmt.Printf("\nfinal groups       : %d users in g1, %d in g2, %d in g3\n",
		groups[1], groups[2], groups[3])
	return nil
}
