// Policies: compare the client-side moderator strategies (§VI-C3 and the
// §VII-3 discussion) on one identical workload — the paper's static 1/50
// promotion probability, a response-time threshold, a battery-aware rule,
// the demand-based demotion extension, and no moderation at all — and
// show the latency/cloud-spend trade-off each buys.
package main

import (
	"fmt"
	"os"
	"time"

	"accelcloud"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "policies:", err)
		os.Exit(1)
	}
}

func run() error {
	dur := 2 * time.Hour
	reqs, err := accelcloud.GenerateInterArrival(
		accelcloud.NewRNG(5).Stream("wl"), accelcloud.Epoch,
		accelcloud.InterArrivalConfig{
			Users:        30,
			InterArrival: accelcloud.UniformDist{Lo: 60_000, Hi: 240_000},
			Duration:     dur,
			Pool:         accelcloud.DefaultTaskPool(),
			Sizer:        accelcloud.FixedSizer{Size: 8},
			FixedTask:    "minimax",
		})
	if err != nil {
		return err
	}

	variants := []struct {
		name   string
		config accelcloud.SystemConfig
	}{
		{"static-1/50 (paper)", baseConfig(accelcloud.StaticProbability{P: 1.0 / 50}, false)},
		{"threshold-2s", baseConfig(accelcloud.ThresholdPolicy{Target: 2 * time.Second, Patience: 3}, false)},
		{"battery-aware", baseConfig(accelcloud.BatteryAwarePolicy{MinLevel: 0.3, Target: 2 * time.Second}, false)},
		{"threshold+demotion", baseConfig(accelcloud.ThresholdPolicy{Target: 2 * time.Second, Patience: 3}, true)},
		{"never (baseline)", baseConfig(accelcloud.NeverPolicy{}, false)},
	}

	fmt.Println("policy                mean_ms   drops   moves   cloud_usd")
	for _, v := range variants {
		sys, err := accelcloud.NewSystem(v.config)
		if err != nil {
			return err
		}
		res, err := sys.Run(reqs, dur)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s  %-8.1f  %-6.2f  %-6d  %.4f\n",
			v.name, res.MeanResponseMs(), 100*res.DropRate(),
			len(res.Promotions), res.TotalCostUSD)
	}
	fmt.Println("\nmoves counts promotions plus (for the demotion variant) demotions.")
	return nil
}

// baseConfig builds the shared Fig 9a deployment with the given policy.
func baseConfig(policy accelcloud.PromotionPolicy, demote bool) accelcloud.SystemConfig {
	cfg := accelcloud.SystemConfig{
		Groups: []accelcloud.GroupSpec{
			{Group: 1, TypeName: "t2.nano", Capacity: 30, Initial: 1},
			{Group: 2, TypeName: "t2.large", Capacity: 90, Initial: 1},
			{Group: 3, TypeName: "m4.4xlarge", Capacity: 400, Initial: 1},
		},
		ProvisionInterval: 30 * time.Minute,
		Policy:            policy,
		Background: map[int]accelcloud.BackgroundLoad{
			1: {RatePerSec: 25, Work: 7300},
			2: {RatePerSec: 25, Work: 17000},
			3: {RatePerSec: 25, Work: 162000},
		},
		Seed: 5,
	}
	if demote {
		cfg.Demotion = accelcloud.FastResponsePolicy{Target: 800 * time.Millisecond, Patience: 4}
	}
	return cfg
}
