// Autoscale: the adaptive model in isolation. A day of diurnal workload
// history is folded into hourly time slots; for every hour the
// edit-distance model predicts the next hour's per-group load and the ILP
// allocator picks the cost-minimal instance mix — printed against a
// static "peak provisioning" baseline to show the savings
// (over-provisioning reduction, §III).
package main

import (
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"accelcloud"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "autoscale:", err)
		os.Exit(1)
	}
}

// diurnalUsers is a synthetic day: per-hour user counts per group.
func diurnalUsers(hour, group int) int {
	base := []float64{40, 15, 6}[group]
	peak := 1 + 0.9*math.Sin(2*math.Pi*float64(hour-14)/24)
	return int(base * peak)
}

func run() error {
	store := accelcloud.NewTraceStore()
	// Two days of history: the first day trains the model, the second is
	// predicted hour by hour. Response times are drawn per acceleration
	// group (higher groups respond faster) and folded into log-bucketed
	// histograms — the same SLO digest the load generator reports.
	rng := accelcloud.NewRNG(1).Stream("autoscale-rtt")
	groupBaseMs := []float64{700, 350, 150}
	hists := make([]*accelcloud.LogHist, 3)
	for g := range hists {
		hists[g] = accelcloud.NewLatencyHist()
	}
	for h := 0; h < 48; h++ {
		for g := 0; g < 3; g++ {
			users := diurnalUsers(h%24, g)
			for u := 0; u < users; u++ {
				rttMs := groupBaseMs[g] * (0.6 + 0.8*rng.Float64())
				hists[g].Add(rttMs)
				if err := store.Append(accelcloud.TraceRecord{
					Timestamp:    accelcloud.Epoch.Add(time.Duration(h)*time.Hour + time.Duration(u)*time.Second),
					UserID:       g*1000 + u,
					Group:        g,
					BatteryLevel: 1,
					RTT:          time.Duration(rttMs * float64(time.Millisecond)),
				}); err != nil {
					return err
				}
			}
		}
	}
	fmt.Println("request-log latency per group (log-bucketed digest):")
	for g, h := range hists {
		p50, err := h.Quantile(0.50)
		if err != nil {
			return err
		}
		p99, err := h.Quantile(0.99)
		if err != nil {
			return err
		}
		fmt.Printf("  group %d: n=%-5d p50=%.0f ms  p99=%.0f ms  max=%.0f ms\n",
			g, h.Total(), p50, p99, h.Max())
	}
	fmt.Println()

	specs := []accelcloud.AllocSpec{
		{TypeName: "t2.nano", Group: 0, CostPerHour: 0.0063, Capacity: 30},
		{TypeName: "t2.medium", Group: 1, CostPerHour: 0.05, Capacity: 60},
		{TypeName: "m4.4xlarge", Group: 2, CostPerHour: 0.888, Capacity: 400},
	}

	// Static baseline: provision the whole day for the peak.
	peak := make([]float64, 3)
	for h := 0; h < 24; h++ {
		for g := 0; g < 3; g++ {
			if v := float64(diurnalUsers(h, g)); v > peak[g] {
				peak[g] = v
			}
		}
	}
	peakPlan, err := accelcloud.Allocate(&accelcloud.AllocProblem{Specs: specs, Demands: peak})
	if err != nil {
		return err
	}

	records := store.Snapshot()
	fmt.Println("hour  predicted(g0,g1,g2)   actual(g0,g1,g2)    plan                       $/h")
	adaptiveCost := 0.0
	var predictor accelcloud.EditDistanceNN
	for h := 24; h < 48; h++ {
		slots, err := buildSlots(records, h)
		if err != nil {
			return err
		}
		pred, err := predictor.Predict(slots)
		if err != nil {
			return err
		}
		counts := pred.Counts()
		demands := make([]float64, 3)
		for g := 0; g < 3 && g < len(counts); g++ {
			demands[g] = float64(counts[g])
		}
		plan, err := accelcloud.Allocate(&accelcloud.AllocProblem{Specs: specs, Demands: demands})
		if err != nil {
			return err
		}
		if !plan.Feasible {
			return fmt.Errorf("hour %d: infeasible", h)
		}
		adaptiveCost += plan.Cost
		actual := []int{diurnalUsers(h%24, 0), diurnalUsers(h%24, 1), diurnalUsers(h%24, 2)}
		fmt.Printf("%02d    %-20s  %-18s  %-25s  %.4f\n",
			h%24, fmt.Sprint(counts), fmt.Sprint(actual), planString(plan), plan.Cost)
	}
	staticCost := peakPlan.Cost * 24
	fmt.Printf("\nadaptive day cost : $%.2f\n", adaptiveCost)
	fmt.Printf("static-peak cost  : $%.2f\n", staticCost)
	fmt.Printf("savings           : %.1f%%\n", 100*(1-adaptiveCost/staticCost))
	return nil
}

// buildSlots folds the first h hours of records into hourly slots.
func buildSlots(records []accelcloud.TraceRecord, h int) ([]accelcloud.Slot, error) {
	return accelcloud.BuildHourlySlots(records, h, 3)
}

// planString renders a plan's counts compactly and deterministically.
func planString(plan accelcloud.AllocPlan) string {
	names := make([]string, 0, len(plan.Counts))
	for name := range plan.Counts {
		names = append(names, name)
	}
	sort.Strings(names)
	s := ""
	for i, name := range names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%dx%s", plan.Counts[name], name)
	}
	if s == "" {
		return "(none)"
	}
	return s
}
