// Autoscale: the paper's control cycle (§IV) running live. Earlier
// revisions of this example only exercised the model offline — predict
// from a synthetic trace, solve the allocation, print the plan. Now it
// drives the real thing: a doubling-rate load sweep is replayed over
// real sockets through a live SDN front-end while the reconciler closes
// the predict→allocate→provision cycle after every slot — scaling
// surrogate pools up from a warm pool through the ramp and draining
// them back down afterwards — and the run prints the measured
// cost-vs-SLO outcome against the static peak-provisioning baseline
// (§III).
//
// The run is deterministic per seed: re-running prints the same
// schedule digest and the same decision digest (only latencies differ).
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"accelcloud"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "autoscale:", err)
		os.Exit(1)
	}
}

func run() error {
	// Two acceleration groups in the Fig 9 spirit: a cheap low-tier
	// type and a faster, pricier one. Capacity is the per-slot demand
	// one instance absorbs within the SLA.
	groups := []accelcloud.AutoscaleGroupSpec{
		{Group: 1, TypeName: "t2.nano", CostPerHour: 0.0063, Capacity: 4},
		{Group: 2, TypeName: "t2.large", CostPerHour: 0.101, Capacity: 8},
	}

	fmt.Println("running the live control loop: 16→128 Hz doubling sweep,")
	fmt.Println("500 ms slots, 4 drain slots, warm pool of 2 ...")
	fmt.Println()
	rep, err := accelcloud.RunAutoscaleSweep(context.Background(), accelcloud.AutoscaleSweepConfig{
		Seed:       1,
		StartHz:    16,
		Steps:      4,
		SlotLen:    500 * time.Millisecond,
		DrainSlots: 4,
		Groups:     groups,
		FixedTask:  "sieve",
		WarmPool:   2,
		SLO:        &accelcloud.LoadgenSLO{P99Ms: 2000, MaxErrorRate: 0},
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())

	fmt.Println()
	fmt.Println("the arc per group (pool size follows predicted demand):")
	for _, s := range rep.Slots {
		bar := ""
		total := 0
		for _, n := range s.Decision.Applied {
			total += n
		}
		for i := 0; i < total; i++ {
			bar += "█"
		}
		fmt.Printf("  slot %d: %-12s %s\n", s.Slot, fmt.Sprint(s.Decision.Applied), bar)
	}
	fmt.Println()
	fmt.Printf("peak pools %v drained back to %v; adaptive $%.6f vs static-peak $%.6f (%.1f%% saved)\n",
		rep.PeakPool, rep.FinalPool, rep.AdaptiveCostUSD, rep.StaticPeakCostUSD, rep.SavingsPct)
	return nil
}
