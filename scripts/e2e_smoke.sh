#!/usr/bin/env bash
# End-to-end smoke: boot two surrogated back-ends and an sdnd front-end
# on localhost, run one offload request through the full stack, then a
# short closed-loop loadgen run — over JSON/HTTP and over the binary
# framed protocol (surrogate-2 registers as bin://, the front-end also
# listens on bin://). Finally, kill one surrogate and assert the
# failure detector ejects it (probing surrogate-2 over the binary
# protocol) and the front-end keeps serving with zero errors on both
# transports. A final two-region section boots region-labelled
# front-ends, kills the home region, and asserts the geo tier serves
# with zero errors through the surviving region while its /stats counts
# the absorbed cross-region traffic. Exits non-zero on any failure.
# Used by the e2e-smoke CI job; safe to run locally (ports 9100-9107).
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="$(mktemp -d)"
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/...

"$BIN/surrogated" -listen 127.0.0.1:9101 -name surrogate-1 &
"$BIN/surrogated" -listen 127.0.0.1:9102 -name surrogate-2 \
  -proto both -listen-bin 127.0.0.1:9104 &
SURROGATE2_PID=$!
# Both surrogates carry the full task pool, so both serve both groups —
# the redundancy the kill-one-surrogate step below relies on.
# Surrogate-2 registers by its binary framed address, so one hop of
# every pair — and its health probes — runs the wire protocol. -probe
# enables the failure detector; -backend-timeout keeps a dead hop from
# stalling a request behind the 30s default.
"$BIN/sdnd" -listen 127.0.0.1:9100 -policy p2c \
  -proto both -listen-bin 127.0.0.1:9103 \
  -probe 100ms -backend-timeout 2s \
  -queue-limit 4 -queue-depth 64 \
  -backend 1=http://127.0.0.1:9101 \
  -backend 1=bin://127.0.0.1:9104 \
  -backend 2=http://127.0.0.1:9101 \
  -backend 2=bin://127.0.0.1:9104 &

# Wait for the stack to come up: the first offload that succeeds proves
# front-end routing and surrogate execution end to end.
ok=""
for _ in $(seq 1 50); do
  if "$BIN/offload" -frontend http://127.0.0.1:9100 -task sieve -size 1 \
      -group 1 -timeout 2s >/dev/null 2>&1; then
    ok=1
    break
  fi
  sleep 0.2
done
if [ -z "$ok" ]; then
  echo "e2e: stack never became healthy" >&2
  exit 1
fi

echo "== one offload request through the full stack =="
"$BIN/offload" -frontend http://127.0.0.1:9100 -task minimax -size 6 -group 2

echo "== one offload request over the binary framed protocol =="
"$BIN/offload" -frontend bin://127.0.0.1:9103 -task minimax -size 6 -group 2

echo "== 2-second closed-loop load-generation run =="
"$BIN/loadgen" -frontend http://127.0.0.1:9100 -mode concurrent \
  -users 4 -rate 5 -duration 2s -seed 1 -groups 1,2 \
  -max-error-rate 0 -out "$BIN/e2e_loadgen.json"

echo "== 2-second loadgen run over the binary framed protocol =="
"$BIN/loadgen" -frontend bin://127.0.0.1:9103 -mode concurrent \
  -users 4 -rate 5 -duration 2s -seed 1 -groups 1,2 \
  -max-error-rate 0 -out "$BIN/e2e_loadgen_bin.json"

echo "== scrape /metrics mid-load on the front-end and a surrogate =="
# Run another loadgen in the background and scrape both exposition
# endpoints while requests are in flight: the hot-path counters must be
# non-zero and every line must parse as Prometheus text exposition with
# no duplicate series.
"$BIN/loadgen" -frontend http://127.0.0.1:9100 -mode concurrent \
  -users 4 -rate 5 -duration 2s -seed 5 -groups 1,2 -span-sample 2 \
  -max-error-rate 0 -out "$BIN/e2e_loadgen_metrics.json" &
LOADGEN_PID=$!
sleep 1
check_metrics() {
  url="$1"
  counter="$2"
  body="$(curl -sf "$url")" || { echo "e2e: $url unreachable" >&2; return 1; }
  bad="$(grep -v '^#' <<<"$body" | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$' || true)"
  if [ -n "$bad" ]; then
    echo "e2e: malformed exposition lines from $url:" >&2
    echo "$bad" >&2
    return 1
  fi
  dups="$(grep -v '^#' <<<"$body" | awk '{print $1}' | sort | uniq -d)"
  if [ -n "$dups" ]; then
    echo "e2e: duplicate series from $url:" >&2
    echo "$dups" >&2
    return 1
  fi
  grep -E "^${counter}(\{[^}]*\})? " <<<"$body" \
    | awk '{ if ($2 + 0 > 0) found = 1 } END { exit !found }' || {
    echo "e2e: $counter not incremented at $url" >&2
    echo "$body" >&2
    return 1
  }
}
check_metrics http://127.0.0.1:9100/metrics accel_offloads_total
check_metrics http://127.0.0.1:9101/metrics accel_surrogate_executed_total
wait "$LOADGEN_PID"
grep -q '"spans"' "$BIN/e2e_loadgen_metrics.json" || {
  echo "e2e: loadgen report has no spans section despite -span-sample" >&2
  cat "$BIN/e2e_loadgen_metrics.json" >&2 || true
  exit 1
}

echo "== admission queues drain to zero once the load stops =="
drained=""
for _ in $(seq 1 50); do
  stats_json="$(curl -sf http://127.0.0.1:9100/stats || true)"
  if grep -q '"queued"' <<<"$stats_json" \
      && ! grep -o '"queued":[0-9]*' <<<"$stats_json" | grep -qv '"queued":0'; then
    drained=1
    break
  fi
  sleep 0.1
done
if [ -z "$drained" ]; then
  echo "e2e: admission queues never drained" >&2
  curl -sf http://127.0.0.1:9100/stats >&2 || true
  exit 1
fi

echo "== canary-weighted front-end: 25% of picks to the v2 backend =="
# Surrogate-2's HTTP listener doubles as the v2 canary next to
# surrogate-1's stable registration; the canary policy stripes picks
# deterministically at the configured weight.
"$BIN/sdnd" -listen 127.0.0.1:9105 -canary v2=0.25 \
  -backend-timeout 2s \
  -backend 1=http://127.0.0.1:9101 \
  -backend 1=http://127.0.0.1:9102@v2 &
canary_ok=""
for _ in $(seq 1 50); do
  if "$BIN/offload" -frontend http://127.0.0.1:9105 -task sieve -size 1 \
      -group 1 -timeout 2s >/dev/null 2>&1; then
    canary_ok=1
    break
  fi
  sleep 0.2
done
if [ -z "$canary_ok" ]; then
  echo "e2e: canary front-end never became healthy" >&2
  exit 1
fi
curl -sf http://127.0.0.1:9105/stats | grep -q '"version":"v2"' || {
  echo "e2e: canary front-end lost the v2 version label" >&2
  curl -sf http://127.0.0.1:9105/stats >&2 || true
  exit 1
}
"$BIN/loadgen" -frontend http://127.0.0.1:9105 -mode concurrent \
  -users 4 -rate 5 -duration 2s -seed 3 -groups 1 \
  -max-error-rate 0 -out "$BIN/e2e_loadgen_canary.json"

echo "== kill surrogate-2, wait for the failure detector to eject it =="
# Surrogate-2 is registered as bin://, so the detector notices over
# binary-protocol health probes.
kill "$SURROGATE2_PID"
ejected=""
for _ in $(seq 1 100); do
  count="$(curl -sf http://127.0.0.1:9100/stats | grep -o '"ejected"' | wc -l || true)"
  # surrogate-2 serves both groups, so both registrations must eject.
  if [ "$count" -ge 2 ]; then
    ejected=1
    break
  fi
  sleep 0.1
done
if [ -z "$ejected" ]; then
  echo "e2e: killed surrogate was never ejected" >&2
  curl -sf http://127.0.0.1:9100/stats >&2 || true
  exit 1
fi

echo "== front-end keeps serving with zero errors after ejection =="
"$BIN/loadgen" -frontend http://127.0.0.1:9100 -mode concurrent \
  -users 4 -rate 5 -duration 2s -seed 2 -groups 1,2 \
  -max-error-rate 0 -out "$BIN/e2e_loadgen_after_kill.json"

echo "== binary front-end keeps serving with zero errors too =="
"$BIN/loadgen" -frontend bin://127.0.0.1:9103 -mode concurrent \
  -users 4 -rate 5 -duration 2s -seed 2 -groups 1,2 \
  -max-error-rate 0 -out "$BIN/e2e_loadgen_bin_after_kill.json"

echo "== two-region deployment: region-a (home) and region-b =="
# Both regional front-ends route to surrogate-1; -region labels each
# one so /stats can attribute absorbed cross-region traffic.
"$BIN/sdnd" -listen 127.0.0.1:9106 -region region-a \
  -backend-timeout 2s -backend 1=http://127.0.0.1:9101 &
REGION_A_PID=$!
"$BIN/sdnd" -listen 127.0.0.1:9107 -region region-b \
  -backend-timeout 2s -backend 1=http://127.0.0.1:9101 &
geo_ok=""
for _ in $(seq 1 50); do
  if curl -sf http://127.0.0.1:9106/healthz >/dev/null 2>&1 \
      && curl -sf http://127.0.0.1:9107/healthz >/dev/null 2>&1; then
    geo_ok=1
    break
  fi
  sleep 0.2
done
if [ -z "$geo_ok" ]; then
  echo "e2e: regional front-ends never became healthy" >&2
  exit 1
fi
curl -sf http://127.0.0.1:9106/stats | grep -q '"region":"region-a"' || {
  echo "e2e: region-a front-end lost its region label" >&2
  curl -sf http://127.0.0.1:9106/stats >&2 || true
  exit 1
}

echo "== kill the home region; geo loadgen must serve via region-b =="
kill "$REGION_A_PID"
"$BIN/loadgen" \
  -regions region-a=http://127.0.0.1:9106,region-b=http://127.0.0.1:9107 \
  -mode concurrent -users 4 -rate 5 -duration 2s -seed 4 -groups 1 \
  -max-error-rate 0 -out "$BIN/e2e_loadgen_geo.json"
grep -q '"region-b"' "$BIN/e2e_loadgen_geo.json" || {
  echo "e2e: geo report has no region-b slice" >&2
  cat "$BIN/e2e_loadgen_geo.json" >&2 || true
  exit 1
}
# Every call carried the region-a origin stamp, so the surviving
# front-end must have counted the absorbed traffic as spilled.
curl -sf http://127.0.0.1:9107/stats | grep -o '"spilled":[0-9]*' | grep -qv '"spilled":0' || {
  echo "e2e: region-b front-end counted no spilled-over calls" >&2
  curl -sf http://127.0.0.1:9107/stats >&2 || true
  exit 1
}

echo "e2e smoke OK"
