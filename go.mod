module accelcloud

go 1.24
