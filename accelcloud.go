// Package accelcloud is a Go reproduction of "Modeling Mobile Code
// Acceleration in the Cloud" (Flores et al., ICDCS 2017): Code
// Acceleration as a Service.
//
// The library models and controls the level of acceleration that mobile
// code offloading obtains from the cloud. Cloud instances are benchmarked
// and clustered into acceleration groups (Benchmark/Classify); an
// SDN-accelerator front-end routes each offloading request to the group
// its device requests (Accelerator for simulations, FrontEnd over HTTP);
// devices promote themselves when response times degrade
// (PromotionPolicy); and an adaptive model predicts the next interval's
// per-group workload from the request log (Predictor) and provisions the
// cost-minimal instance mix for it by integer programming (Allocate).
//
// The full system — workload, front-end, pools, prediction, allocation —
// is assembled by System (see NewSystem), and every figure of the paper's
// evaluation can be regenerated through the Fig4…Fig11 functions exposed
// by cmd/accelsim and the root benchmarks.
//
// Quick start:
//
//	sys, err := accelcloud.NewSystem(accelcloud.SystemConfig{
//		Groups: []accelcloud.GroupSpec{
//			{Group: 1, TypeName: "t2.nano", Capacity: 30, Initial: 1},
//			{Group: 2, TypeName: "t2.large", Capacity: 90, Initial: 1},
//		},
//	})
//	...
//	result, err := sys.Run(requests, 8*time.Hour)
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package accelcloud

import (
	"context"
	"math/rand"
	"time"

	"accelcloud/internal/allocate"
	"accelcloud/internal/autoscale"
	"accelcloud/internal/cloud"
	"accelcloud/internal/core"
	"accelcloud/internal/dalvik"
	"accelcloud/internal/device"
	"accelcloud/internal/faults"
	"accelcloud/internal/geo"
	"accelcloud/internal/groups"
	"accelcloud/internal/health"
	"accelcloud/internal/loadgen"
	"accelcloud/internal/netsim"
	"accelcloud/internal/predict"
	"accelcloud/internal/qsim"
	"accelcloud/internal/router"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sdn"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
	"accelcloud/internal/trace"
	"accelcloud/internal/wire"
	"accelcloud/internal/workload"
)

// Core system (the paper's contribution, §IV).
type (
	// System is the assembled architecture: workload → SDN-accelerator →
	// acceleration-group pools, with the predict/allocate control loop.
	System = core.System
	// SystemConfig parameterizes a System.
	SystemConfig = core.Config
	// GroupSpec binds an acceleration group to an instance type.
	GroupSpec = core.GroupSpec
	// BackgroundLoad induces per-server load (§VI-C1).
	BackgroundLoad = core.BackgroundLoad
	// Result is a system run's collected logs.
	Result = core.Result
	// RequestLog is one completed request.
	RequestLog = core.RequestLog
	// PromotionEvent is one device promotion.
	PromotionEvent = core.PromotionEvent
	// IntervalLog is one provisioning round.
	IntervalLog = core.IntervalLog
)

// NewSystem builds a System; see core.New.
func NewSystem(cfg SystemConfig) (*System, error) { return core.New(cfg) }

// Cloud substrate (§VI-A).
type (
	// InstanceType is one purchasable server type.
	InstanceType = cloud.InstanceType
	// Catalog indexes instance types.
	Catalog = cloud.Catalog
	// Instance is a launched server with live burst-credit state.
	Instance = cloud.Instance
)

// DefaultCatalog returns the paper's eight instance types.
func DefaultCatalog() *Catalog { return cloud.DefaultCatalog() }

// Acceleration groups (§VI-A, §IV-C1).
type (
	// Measurement is one instance type's characterization.
	Measurement = groups.Measurement
	// BenchmarkConfig tunes the characterization.
	BenchmarkConfig = groups.BenchmarkConfig
	// Grouping maps instance types to acceleration levels.
	Grouping = groups.Grouping
	// Level is one acceleration group.
	Level = groups.Level
)

// Benchmark characterizes one instance type under concurrent load.
func Benchmark(typ InstanceType, cfg BenchmarkConfig) (Measurement, error) {
	return groups.Benchmark(typ, cfg)
}

// Classify clusters measurements into acceleration levels.
func Classify(ms []Measurement, tol float64) (*Grouping, error) {
	return groups.Classify(ms, tol)
}

// DefaultBenchmarkConfig mirrors §VI-A1.
func DefaultBenchmarkConfig() BenchmarkConfig { return groups.DefaultBenchmarkConfig() }

// Prediction (§IV-B).
type (
	// Predictor estimates the next time slot from history.
	Predictor = predict.Predictor
	// EditDistanceNN is the paper's nearest-neighbour model.
	EditDistanceNN = predict.EditDistanceNN
	// Slot is one time slot of the trace.
	Slot = trace.Slot
	// TraceRecord is one request-log row.
	TraceRecord = trace.Record
	// TraceStore is the append-only request log.
	TraceStore = trace.Store
)

// NewTraceStore returns an empty request log.
func NewTraceStore() *TraceStore { return trace.NewStore() }

// BuildHourlySlots folds records into n consecutive one-hour slots from
// Epoch over numGroups acceleration groups (§IV-A).
func BuildHourlySlots(records []TraceRecord, n, numGroups int) ([]Slot, error) {
	return trace.BuildSlots(records, sim.Epoch, time.Hour, n, numGroups)
}

// Allocation (§IV-C).
type (
	// AllocSpec describes one allocatable instance type.
	AllocSpec = allocate.Spec
	// AllocProblem is one allocation round.
	AllocProblem = allocate.Problem
	// AllocPlan is the allocator's decision.
	AllocPlan = allocate.Plan
)

// Allocate solves the cost-minimal covering problem (eq. 1–3).
func Allocate(p *AllocProblem) (AllocPlan, error) { return allocate.Solve(p) }

// Devices and the client-side moderator (§IV-A, §VI-C3).
type (
	// Device is one simulated handset.
	Device = device.Device
	// DeviceProfile is a hardware class.
	DeviceProfile = device.Profile
	// PromotionPolicy is the moderator's promotion rule.
	PromotionPolicy = device.PromotionPolicy
	// StaticProbability is the paper's 1/50 policy.
	StaticProbability = device.StaticProbability
)

// DefaultProfiles returns the four device classes.
func DefaultProfiles() []DeviceProfile { return device.DefaultProfiles() }

// Tasks (the offloadable pool, §V).
type (
	// Task is one offloadable computation.
	Task = tasks.Task
	// TaskPool is the registry of offloadable tasks.
	TaskPool = tasks.Pool
	// TaskState is serialized application state.
	TaskState = tasks.State
	// TaskResult is an execution outcome.
	TaskResult = tasks.Result
)

// DefaultTaskPool returns the paper's 10-task pool.
func DefaultTaskPool() *TaskPool { return tasks.DefaultPool() }

// InferenceTaskPool returns the 10-task pool extended with the
// session-amortized ML-inference family (infer-mobilenet,
// infer-inception, infer-lstm).
func InferenceTaskPool() *TaskPool { return tasks.InferencePool() }

// Workload generation (§V, §VI-C1).
type (
	// WorkloadRequest is one offloading event.
	WorkloadRequest = workload.Request
	// InterArrivalConfig parameterizes the realistic workload mode.
	InterArrivalConfig = workload.InterArrivalConfig
	// ConcurrentConfig parameterizes the benchmark mode.
	ConcurrentConfig = workload.ConcurrentConfig
	// Sizer draws task sizes.
	Sizer = workload.Sizer
	// FixedSizer always draws one size (static-load experiments).
	FixedSizer = workload.FixedSizer
	// Dist is a sampleable distribution (milliseconds for workloads).
	Dist = stats.Dist
	// UniformDist is the continuous uniform distribution.
	UniformDist = stats.Uniform
)

// DefaultSizer balances the ten pool tasks (see workload.DefaultSizer).
func DefaultSizer() Sizer { return workload.DefaultSizer() }

// GenerateInterArrival builds a realistic request stream.
func GenerateInterArrival(r *rand.Rand, start time.Time, cfg InterArrivalConfig) ([]WorkloadRequest, error) {
	return workload.GenerateInterArrival(r, start, cfg)
}

// GenerateConcurrent builds the benchmark-mode wave workload.
func GenerateConcurrent(r *rand.Rand, start time.Time, cfg ConcurrentConfig) ([]WorkloadRequest, error) {
	return workload.GenerateConcurrent(r, start, cfg)
}

// Population-scale scenario engine: lazy per-block request streams with
// diurnal rate curves and flash crowds, merged in time order at
// O(shards) resident memory. The schedule digest is invariant to the
// shard count, so a parallel consumer replays the identical workload.
type (
	// WorkloadStream lazily yields a time-ordered request schedule.
	WorkloadStream = workload.Stream
	// ScenarioConfig parameterizes the population-scale scenario mode.
	ScenarioConfig = workload.ScenarioConfig
	// FlashCrowd is one bounded demand surge over a user cohort.
	FlashCrowd = workload.FlashCrowd
)

// NewScenarioStream builds the full scenario schedule as one stream.
func NewScenarioStream(root *RNG, cfg ScenarioConfig) (WorkloadStream, error) {
	return workload.NewScenarioStream(root, cfg)
}

// ScenarioShards splits the scenario population into shard streams;
// merging them (MergeStreams) reproduces the single-stream schedule
// bit-for-bit.
func ScenarioShards(root *RNG, cfg ScenarioConfig, shards int) ([]WorkloadStream, error) {
	return workload.ScenarioShards(root, cfg, shards)
}

// MergeStreams interleaves time-ordered streams into one.
func MergeStreams(streams ...WorkloadStream) WorkloadStream {
	return workload.NewMerge(streams...)
}

// StreamDigest drains a stream into its fnv1a schedule digest and
// request count.
func StreamDigest(s WorkloadStream, start time.Time) (string, int) {
	return workload.StreamDigest(s, start)
}

// ScenarioStart is the virtual origin scenario digests are taken from.
func ScenarioStart() time.Time { return workload.ScenarioStart() }

// DefaultDiurnal is the 24-point diurnal rate curve.
func DefaultDiurnal() []float64 { return workload.DefaultDiurnal() }

// Deterministic randomness.
type (
	// RNG derives named deterministic random streams from a root seed.
	RNG = sim.RNG
)

// NewRNG returns a stream factory rooted at seed.
func NewRNG(seed int64) *RNG { return sim.NewRNG(seed) }

// Epoch is the virtual time origin of all simulations.
var Epoch = sim.Epoch

// Networked offloading (the real-socket plane, §V).
type (
	// Surrogate is the Dalvik-x86-like execution server.
	Surrogate = dalvik.Surrogate
	// RPCClient calls offloading endpoints over JSON/HTTP, or over the
	// binary framed protocol when built from a bin:// base URL.
	RPCClient = rpc.Client
	// OffloadRequest is the client → front-end message.
	OffloadRequest = rpc.OffloadRequest
	// OffloadResponse is the front-end's reply.
	OffloadResponse = rpc.OffloadResponse
	// WireServer serves the binary framed protocol (DESIGN.md §8).
	WireServer = wire.Server
	// RPCBenchConfig sizes a wire-protocol overhead measurement.
	RPCBenchConfig = loadgen.RPCBenchConfig
	// RPCBenchReport is the BENCH_rpc.json overhead matrix.
	RPCBenchReport = loadgen.RPCBenchReport
)

// BinaryScheme prefixes binary framed-protocol addresses
// (bin://host:port) anywhere a front-end or backend URL is accepted.
const BinaryScheme = rpc.BinaryScheme

// RunRPCBench measures the {JSON, binary} × {single, batched}
// protocol-overhead matrix against hermetic clusters.
func RunRPCBench(cfg RPCBenchConfig) (*RPCBenchReport, error) {
	return loadgen.RunRPCBench(cfg)
}

// NewSurrogate creates an execution server; push tasks before serving.
func NewSurrogate(name string, maxProcs int) (*Surrogate, error) {
	return dalvik.NewSurrogate(name, maxProcs)
}

// RPCClientOption configures NewRPCClient; see the RPCWith*
// constructors below.
type RPCClientOption = rpc.ClientOption

// NewRPCClient builds a client for a front-end or surrogate base URL.
// Options replace the historical field pokes:
//
//	c.Timeout = d       → NewRPCClient(url, RPCWithTimeout(d))
//	c.Retry = &policy   → NewRPCClient(url, RPCWithRetry(policy))
//	c.Hedge = &policy   → NewRPCClient(url, RPCWithHedge(policy))
func NewRPCClient(baseURL string, opts ...RPCClientOption) *RPCClient {
	return rpc.NewClient(baseURL, opts...)
}

// Functional options for NewRPCClient.
var (
	// RPCWithTimeout sets the per-call deadline.
	RPCWithTimeout = rpc.WithTimeout
	// RPCWithRetry installs the bounded retry budget.
	RPCWithRetry = rpc.WithRetry
	// RPCWithHedge installs the straggler-hedging policy.
	RPCWithHedge = rpc.WithHedge
)

// WaitHealthy polls a server's health endpoint until it responds.
func WaitHealthy(ctx context.Context, baseURL string) error {
	return sdn.WaitHealthy(ctx, baseURL)
}

// Moderator policies beyond the default (§VII-3).
type (
	// ThresholdPolicy promotes after consecutive slow responses.
	ThresholdPolicy = device.Threshold
	// BatteryAwarePolicy promotes on low battery.
	BatteryAwarePolicy = device.BatteryAware
	// NeverPolicy disables promotion (ablation baseline).
	NeverPolicy = device.Never
	// DemotionPolicy re-assigns over-served devices to cheaper groups.
	DemotionPolicy = device.DemotionPolicy
	// FastResponsePolicy demotes after consecutive fast responses.
	FastResponsePolicy = device.FastResponse
	// NoDemotionPolicy keeps earned levels (the paper's behaviour).
	NoDemotionPolicy = device.NoDemotion
)

// NewDevice creates a fully charged handset in the given group.
func NewDevice(id int, p DeviceProfile, startGroup int) (*Device, error) {
	return device.New(id, p, startGroup)
}

// ProfileByName finds a device profile in a set.
func ProfileByName(profiles []DeviceProfile, name string) (DeviceProfile, error) {
	return device.ProfileByName(profiles, name)
}

// Network models (§VI-C4).
type (
	// NetOperator is one cellular carrier's latency model.
	NetOperator = netsim.Operator
	// NetTech selects 3G or LTE.
	NetTech = netsim.Tech
)

// NetTech values.
const (
	Tech3G  = netsim.Tech3G
	TechLTE = netsim.TechLTE
)

// DefaultOperators returns the three calibrated carriers α, β, γ.
func DefaultOperators() ([]NetOperator, error) { return netsim.DefaultOperators() }

// SDN front-end (networked plane, §V).
type (
	// FrontEnd is the HTTP SDN-accelerator.
	FrontEnd = sdn.FrontEnd
	// QueueConfig tunes simulated backend servers.
	QueueConfig = qsim.Config
)

// FrontEndOption configures NewSDNFrontEnd; see the With* constructors
// below.
type FrontEndOption = sdn.Option

// ObserverRef late-binds a front-end observer, resolving the
// front-end↔health-manager construction cycle without mutators: build
// the front-end with WithObserver(ref.Observe), then ref.Set the
// manager's hook.
type ObserverRef = sdn.ObserverRef

// NewSDNFrontEnd builds an HTTP front-end from functional options.
// Zero options give a round-robin router with no trace sink — the
// historical NewFrontEnd(nil, 0) behaviour.
//
// Migration from the positional constructors and mutators:
//
//	NewFrontEnd(log, delay)                 → NewSDNFrontEnd(WithTrace(log), WithRouteDelay(delay))
//	NewFrontEndWithPolicy(log, delay, pol)  → NewSDNFrontEnd(WithTrace(log), WithRouteDelay(delay), WithPolicy(pol))
//	fe.SetBackendTimeout(d)                 → WithBackendTimeout(d)
//	fe.SetObserver(mgr.Observe)             → WithObserver(ref.Observe) + ref.Set(mgr.Observe)
//
// New serving knobs have no legacy equivalent: WithQueue (bounded
// per-backend admission), WithBatching (server-side dynamic batching),
// WithColdPool (scale-to-zero).
func NewSDNFrontEnd(opts ...FrontEndOption) (*FrontEnd, error) {
	return sdn.New(opts...)
}

// Functional options for NewSDNFrontEnd.
var (
	// WithTrace installs the request trace sink (nil disables logging).
	WithTrace = sdn.WithTrace
	// WithRouteDelay adds the paper's fixed SDN processing overhead.
	WithRouteDelay = sdn.WithRouteDelay
	// WithPolicy selects the pick policy (ParseRouterPolicy resolves
	// names, including "canary:<version>=<weight>").
	WithPolicy = sdn.WithPolicy
	// WithObserver installs the per-request outcome hook the failure
	// detector subscribes to.
	WithObserver = sdn.WithObserver
	// WithBackendTimeout bounds the proxy hop to each backend.
	WithBackendTimeout = sdn.WithBackendTimeout
	// WithQueue puts a bounded admission queue in front of every
	// backend (limit concurrent dispatches, depth waiting).
	WithQueue = sdn.WithQueue
	// WithBatching coalesces queued same-task calls into one batch
	// execution per dispatch; requires WithQueue.
	WithBatching = sdn.WithBatching
	// WithColdPool enables scale-to-zero with a simulated cold-start
	// latency.
	WithColdPool = sdn.WithColdPool
)

// NewFrontEnd builds an HTTP front-end; processingDelay optionally
// reproduces the paper's ≈150 ms routing overhead.
//
// Deprecated: use NewSDNFrontEnd(WithTrace(log), WithRouteDelay(processingDelay)).
func NewFrontEnd(log *TraceStore, processingDelay time.Duration) (*FrontEnd, error) {
	return sdn.New(sdn.WithTrace(log), sdn.WithRouteDelay(processingDelay))
}

// Lock-free routing data plane (DESIGN.md §6).
type (
	// RouterPolicy is a pluggable backend pick policy.
	RouterPolicy = router.Policy
	// RouterBenchReport is the BENCH_router.json micro-benchmark
	// outcome.
	RouterBenchReport = router.BenchReport
	// TraceAsync is the bounded batching sink that keeps trace
	// persistence off the request hot path.
	TraceAsync = trace.Async
)

// ParseRouterPolicy resolves "rr", "least-inflight", or "p2c" (empty
// selects round-robin).
func ParseRouterPolicy(name string) (RouterPolicy, error) { return router.ParsePolicy(name) }

// NewFrontEndWithPolicy builds an HTTP front-end with an explicit pick
// policy.
//
// Deprecated: use NewSDNFrontEnd(WithTrace(log),
// WithRouteDelay(processingDelay), WithPolicy(policy)).
func NewFrontEndWithPolicy(log trace.Sink, processingDelay time.Duration, policy RouterPolicy) (*FrontEnd, error) {
	return sdn.New(sdn.WithTrace(log), sdn.WithRouteDelay(processingDelay), sdn.WithPolicy(policy))
}

// NewTraceAsync wraps a trace sink in the async batching pipeline
// (buffer/flushEvery 0 select the defaults). See trace.NewAsync.
func NewTraceAsync(down trace.Sink, buffer int, flushEvery time.Duration) (*TraceAsync, error) {
	return trace.NewAsync(down, buffer, flushEvery)
}

// Load generation and SLO reporting (service-layer benchmarking).
type (
	// LoadgenConfig parameterizes one load-generation run.
	LoadgenConfig = loadgen.Config
	// LoadgenReport is the machine-readable run outcome.
	LoadgenReport = loadgen.Report
	// LoadgenSLO is a service-level objective checked into the report.
	LoadgenSLO = loadgen.SLO
	// LoadgenCluster is the hermetic in-process service stack.
	LoadgenCluster = loadgen.Cluster
	// LogHist is the log-bucketed latency histogram behind the
	// p50/p90/p99/p999 SLO summaries.
	LogHist = stats.LogHist
)

// Loadgen replay disciplines.
const (
	LoadgenConcurrent   = loadgen.ModeConcurrent
	LoadgenInterArrival = loadgen.ModeInterArrival
	LoadgenSweep        = loadgen.ModeSweep
)

// NewLatencyHist returns the standard latency histogram (10 µs – 10 min,
// ≤5% relative error per bucket).
func NewLatencyHist() *LogHist { return stats.NewLatencyHist() }

// RunLoadgen replays a deterministic multi-user schedule against a
// front-end and returns the SLO report.
func RunLoadgen(ctx context.Context, baseURL string, cfg LoadgenConfig) (*LoadgenReport, error) {
	return loadgen.Run(ctx, baseURL, cfg)
}

// StartLoadgenCluster boots an in-process front-end + surrogates stack
// for hermetic load tests; callers must Close it.
func StartLoadgenCluster(cfg loadgen.ClusterConfig) (*LoadgenCluster, error) {
	return loadgen.StartCluster(cfg)
}

// Autoscaling control loop (DESIGN.md §5): the live
// predict→allocate→provision cycle reconciling the SDN front-end's
// per-group surrogate pools against predicted demand.
type (
	// Autoscaler is the slot-driven reconciler.
	Autoscaler = autoscale.Controller
	// AutoscaleConfig parameterizes an Autoscaler.
	AutoscaleConfig = autoscale.Config
	// AutoscaleGroupSpec binds a managed group to its economics.
	AutoscaleGroupSpec = autoscale.GroupSpec
	// AutoscaleDecision is one slot's control-cycle outcome.
	AutoscaleDecision = autoscale.Decision
	// AutoscaleSweepConfig parameterizes the hermetic end-to-end run.
	AutoscaleSweepConfig = autoscale.SweepConfig
	// AutoscaleReport is the BENCH_autoscale.json schema.
	AutoscaleReport = autoscale.Report
	// AutoscaleProvisioner boots surrogates for the warm pool.
	AutoscaleProvisioner = autoscale.Provisioner
	// HermeticProvisioner boots in-process surrogates on loopback
	// sockets.
	HermeticProvisioner = autoscale.HermeticProvisioner
	// TraceSink receives request records (Store, Window, or a Tee).
	TraceSink = trace.Sink
	// TraceWindow is the live sliding-window request log feeding the
	// predictor.
	TraceWindow = trace.Window
)

// NewAutoscaler builds the reconciler; call Prime before traffic.
func NewAutoscaler(cfg AutoscaleConfig) (*Autoscaler, error) { return autoscale.New(cfg) }

// RunAutoscaleSweep executes the hermetic doubling-rate scenario: a
// live stack scales per-group pools up through the ramp and back down
// through the drain slots, bit-reproducibly per seed.
func RunAutoscaleSweep(ctx context.Context, cfg AutoscaleSweepConfig) (*AutoscaleReport, error) {
	return autoscale.RunSweep(ctx, cfg)
}

// NewTraceWindow builds the sliding-window request log for live control
// loops.
func NewTraceWindow(start time.Time, slotLen time.Duration, numGroups, maxSlots int) (*TraceWindow, error) {
	return trace.NewWindow(start, slotLen, numGroups, maxSlots)
}

// Fault tolerance (DESIGN.md §7): the failure detector ejecting sick
// backends from rotation, and the deterministic chaos engine proving
// the stack survives crashes, hangs, error bursts, and slow networks.
type (
	// HealthManager is the active-probe + passive-outlier failure
	// detector feeding the router's Eject/Reinstate levers.
	HealthManager = health.Manager
	// HealthConfig parameterizes a HealthManager.
	HealthConfig = health.Config
	// BackendHealth is one backend's health snapshot.
	BackendHealth = health.BackendHealth
	// FaultSchedule is a deterministic seeded chaos timeline.
	FaultSchedule = faults.Schedule
	// FaultScheduleConfig parameterizes fault-schedule generation.
	FaultScheduleConfig = faults.ScheduleConfig
	// FaultEvent is one scheduled failure.
	FaultEvent = faults.Event
	// ChaosConfig parameterizes one hermetic chaos run.
	ChaosConfig = faults.Config
	// ChaosReport is the BENCH_chaos.json schema.
	ChaosReport = faults.Report
	// RetryPolicy is the rpc client's bounded retry budget with seeded
	// exponential-backoff jitter.
	RetryPolicy = rpc.RetryPolicy
	// HedgePolicy races a delayed second request against stragglers.
	HedgePolicy = rpc.HedgePolicy
)

// NewHealthManager builds the failure detector over a front-end (or
// any router control plane); run it with Run and feed it passively via
// FrontEnd.SetObserver.
func NewHealthManager(cfg HealthConfig) (*HealthManager, error) { return health.NewManager(cfg) }

// GenerateFaultSchedule draws the deterministic chaos timeline for a
// seed — same inputs, bit-identical schedule and digest.
func GenerateFaultSchedule(rng *RNG, cfg FaultScheduleConfig) (*FaultSchedule, error) {
	return faults.Generate(rng, cfg)
}

// RunChaos executes a seeded fault schedule under live load through
// the full resilient stack and reports availability, detection and
// repair latency, and hedge win rate.
func RunChaos(ctx context.Context, cfg ChaosConfig) (*ChaosReport, error) {
	return faults.Run(ctx, cfg)
}

// TeeTrace fans one request-log stream into several sinks.
func TeeTrace(sinks ...TraceSink) TraceSink { return trace.Tee(sinks...) }

// Geo distribution (DESIGN.md §11): N front-ends as named regions, a
// device-side nearest-region selector ranked by the netsim RTT models,
// and cross-region spillover + failover above the transport split.
type (
	// GeoRegion names one region: its front-end URL and its device→region
	// network path.
	GeoRegion = geo.Region
	// GeoClient is the device-side geo router.
	GeoClient = geo.Client
	// GeoOption configures a GeoClient.
	GeoOption = geo.Option
	// GeoDecision is one call's routing outcome (region, spill/failover
	// classification, attempts, charged RTT).
	GeoDecision = geo.Decision
	// NetPath is a device→region path: an RTT model plus a propagation
	// term; its mean ranks the region preference order.
	NetPath = netsim.Path
	// RegionMonitor heartbeats regional front-ends and fences dead
	// regions out of the preference order.
	RegionMonitor = health.RegionMonitor
	// RegionMonitorConfig parameterizes a RegionMonitor.
	RegionMonitorConfig = health.RegionMonitorConfig
)

// NewGeoClient builds the device-side geo router over named regions;
// the preference order is RTT-ranked, nearest first.
func NewGeoClient(regions []GeoRegion, opts ...GeoOption) (*GeoClient, error) {
	return geo.New(regions, opts...)
}

// PathTo builds a device→region path from an operator's model for one
// technology plus a propagation distance.
func PathTo(op NetOperator, tech NetTech, propagationMs float64) (NetPath, error) {
	return netsim.PathTo(op, tech, propagationMs)
}
