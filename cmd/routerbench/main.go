// Command routerbench measures the lock-free routing data plane in
// isolation: a tight pick/release loop (no sockets, no surrogate
// execution — the pure routing decision) per policy, plus the
// pre-refactor global-mutex baseline, and writes the BENCH_router.json
// report cmd/benchdiff gates on.
//
// Usage:
//
//	routerbench -backends 8 -goroutines 8 -ops 1048576 -out BENCH_router.json
//
// The headline column is the rr-vs-mutex speedup: both sides scale
// with the host, so their ratio is far more machine-portable than raw
// ops/sec — that is what the CI gate compares.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"accelcloud/internal/router"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "routerbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("routerbench", flag.ContinueOnError)
	fs.SetOutput(out)
	policies := fs.String("policies", "", "comma-separated policies to measure (empty = all: rr,least-inflight,p2c)")
	backends := fs.Int("backends", 8, "backends in the benched group")
	goroutines := fs.Int("goroutines", 0, "concurrent pickers (0 = GOMAXPROCS)")
	ops := fs.Int("ops", 1<<20, "pick/release operations per policy")
	noMutex := fs.Bool("no-mutex-baseline", false, "skip the global-mutex baseline measurement")
	outPath := fs.String("out", "", "write the JSON report to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var names []string
	if *policies != "" {
		for _, p := range strings.Split(*policies, ",") {
			names = append(names, strings.TrimSpace(p))
		}
	}
	rep, err := router.RunBench(router.BenchConfig{
		Policies:      names,
		Backends:      *backends,
		Goroutines:    *goroutines,
		Ops:           *ops,
		MutexBaseline: !*noMutex,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Summary())
	if *outPath != "" {
		if err := rep.WriteFile(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "routerbench: wrote %s\n", *outPath)
	}
	return nil
}
