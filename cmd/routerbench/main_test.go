package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelcloud/internal/router"
)

func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_router.json")
	var buf bytes.Buffer
	err := run([]string{
		"-backends", "4", "-goroutines", "2", "-ops", "4096", "-out", out,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"router bench", "rr", "least-inflight", "p2c", "mutex-rr", "speedup"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	rep, err := router.ReadBenchReportFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Policies) != 3 || rep.MutexBaseline == nil || rep.SpeedupVsMutex <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunPolicySubsetAndErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-policies", "rr", "-ops", "1024", "-goroutines", "1", "-no-mutex-baseline"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "mutex-rr") {
		t.Fatalf("baseline measured despite -no-mutex-baseline:\n%s", buf.String())
	}
	if err := run([]string{"-policies", "bogus"}, &buf); err == nil {
		t.Fatal("unknown policy should fail")
	}
}
