// Command geobench measures the multi-region geo tier end to end
// against hermetic deployments: a deterministic three-region sweep with
// the simulated device→region RTT charged into every call, the
// saturation spillover path, and the seeded region-kill failover with
// its detection loop.
//
// Usage:
//
//	geobench -requests 48 -workers 8 -out BENCH_geo.json
//
// The gated columns (cmd/benchdiff vs BENCH_geo_baseline.json) are the
// exact sweep decision digest, the exact faults schedule and
// failover-event digests, the per-region p99s (relative tolerance), the
// spillover rate (non-zero, under a hard ceiling), zero lost in-flight
// calls, and the failover time-to-recover under its hard ceiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"accelcloud/internal/geobench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "geobench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("geobench", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "RNG seed for the schedule and RTT streams")
	requests := fs.Int("requests", 48, "sweep schedule length (rounded up to a multiple of 4)")
	workers := fs.Int("workers", 8, "spillover burst concurrency")
	size := fs.Int("task-size", 8, "matmul dimension")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client timeout")
	outPath := fs.String("out", "BENCH_geo.json", "write the JSON report here (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := geobench.Run(context.Background(), geobench.Config{
		Seed:       *seed,
		Requests:   *requests,
		Workers:    *workers,
		MatMulSize: *size,
		Timeout:    *timeout,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Summary())
	if *outPath != "" {
		if err := rep.WriteFile(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}
