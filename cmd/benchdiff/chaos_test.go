package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelcloud/internal/faults"
	"accelcloud/internal/loadgen"
)

// chaosReport is the mutable kernel of a synthetic chaos report.
type chaosReport struct {
	availability  float64
	faultP99      float64
	probesToEject int
	schedule      string
	faultDigest   string
	decisions     string
}

func writeChaosReport(t *testing.T, dir, name string, r chaosReport) string {
	t.Helper()
	rep := &faults.Report{
		Schema:           faults.ReportSchema,
		Seed:             1,
		Availability:     r.availability,
		ErrorRate:        1 - r.availability,
		Requests:         200,
		Completed:        int(200 * r.availability),
		Latency:          loadgen.LatencySummary{N: 200, P99Ms: r.faultP99 / 2},
		FaultLatency:     loadgen.LatencySummary{N: 80, P99Ms: r.faultP99},
		MaxProbesToEject: r.probesToEject,
		Repairs:          3,
		ScheduleDigest:   r.schedule,
		FaultDigest:      r.faultDigest,
		DecisionDigest:   r.decisions,
	}
	path := filepath.Join(dir, name)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func goodChaos() chaosReport {
	return chaosReport{
		availability:  1.0,
		faultP99:      400,
		probesToEject: 2,
		schedule:      "fnv1a:aa",
		faultDigest:   "fnv1a:ff",
		decisions:     "fnv1a:dd",
	}
}

func TestBenchdiffChaosWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeChaosReport(t, dir, "base.json", goodChaos())
	curR := goodChaos()
	curR.faultP99 = 450
	cur := writeChaosReport(t, dir, "cur.json", curR)
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.5"}, &out); err != nil {
		t.Fatalf("within tolerance should pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "chaos baseline") {
		t.Fatalf("chaos path not taken: %q", out.String())
	}
}

func TestBenchdiffChaosAvailabilityFloor(t *testing.T) {
	dir := t.TempDir()
	// Even with a matching (bad) baseline, sub-99% availability fails.
	bad := goodChaos()
	bad.availability = 0.97
	base := writeChaosReport(t, dir, "base.json", bad)
	cur := writeChaosReport(t, dir, "cur.json", bad)
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil || !strings.Contains(out.String(), "floor") {
		t.Fatalf("availability floor not enforced: err=%v\n%s", err, out.String())
	}
}

func TestBenchdiffChaosDecisionDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeChaosReport(t, dir, "base.json", goodChaos())
	curR := goodChaos()
	curR.decisions = "fnv1a:ee"
	cur := writeChaosReport(t, dir, "cur.json", curR)
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil || !strings.Contains(out.String(), "decision digest changed") {
		t.Fatalf("decision digest gate not enforced: err=%v\n%s", err, out.String())
	}
}

func TestBenchdiffChaosFaultDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeChaosReport(t, dir, "base.json", goodChaos())
	curR := goodChaos()
	curR.faultDigest = "fnv1a:99"
	cur := writeChaosReport(t, dir, "cur.json", curR)
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil || !strings.Contains(out.String(), "fault digest changed") {
		t.Fatalf("fault digest gate not enforced: err=%v\n%s", err, out.String())
	}
}

func TestBenchdiffChaosSlowDetection(t *testing.T) {
	dir := t.TempDir()
	base := writeChaosReport(t, dir, "base.json", goodChaos())
	curR := goodChaos()
	curR.probesToEject = 4
	cur := writeChaosReport(t, dir, "cur.json", curR)
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err == nil || !strings.Contains(out.String(), "detection slowed") {
		t.Fatalf("probe-budget gate not enforced: err=%v\n%s", err, out.String())
	}
}

func TestBenchdiffChaosFaultP99Regression(t *testing.T) {
	dir := t.TempDir()
	base := writeChaosReport(t, dir, "base.json", goodChaos())
	curR := goodChaos()
	curR.faultP99 = 900
	cur := writeChaosReport(t, dir, "cur.json", curR)
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.5"}, &out)
	if err == nil || !strings.Contains(out.String(), "p99 during fault regressed") {
		t.Fatalf("fault p99 gate not enforced: err=%v\n%s", err, out.String())
	}
}
