// Command benchdiff compares a fresh benchmark report against a
// committed baseline and exits non-zero when performance regressed
// beyond the tolerance — the comparison behind the bench-regression and
// autoscale CI gates. The report kind is auto-detected from the schema
// field: loadgen reports (BENCH_loadgen.json) gate on p99 latency,
// throughput, and error rate; autoscale reports (BENCH_autoscale.json)
// gate on p99 latency, total adaptive cost, and error rate, and
// additionally require the decision digest to match the baseline — the
// control cycle is deterministic, so any divergence is a behaviour
// change, not noise; router reports (BENCH_router.json) gate on the
// rr-vs-mutex speedup (a throughput ratio, so largely machine-portable)
// plus — within one machine class (same NumCPU and GOMAXPROCS) —
// per-policy p99 pick latency; rpc reports (BENCH_rpc.json) gate on
// the json-vs-binary overhead speedup (hard floor 5×) and the batched
// chain-amortization ratio (hard ceiling 2×), both ratios measured
// within one run so they stay machine-portable; serve reports
// (BENCH_serve.json) gate on the dynamic-batching throughput speedup
// (hard floor 2×), the saturated hold ratio (hard ceiling 1.2), a
// non-zero queue-full rejection count, and exact reproduction of the
// scale-to-zero activation count and decision digest; geo reports
// (BENCH_geo.json) gate on exact reproduction of the sweep decision,
// outage schedule, and failover-event digests, per-region p99 within
// the relative tolerance, a non-zero spillover rate under a hard
// ceiling, zero lost in-flight calls, and the failover time-to-recover
// under its hard ceiling; scenario reports (BENCH_scenario.json) gate
// on exact reproduction of the stream and replay digests and request
// counts (the schedule is deterministic per seed), shard-count
// invariance, the flash-crowd rate ratio against its hard floor, the
// streaming pass's peak heap against its hard ceiling, and — within
// one machine class — generation throughput against the baseline;
// obs reports (BENCH_obs.json) gate on the instrumentation on/off p99
// ratio (hard ceiling 1.5 plus the relative tolerance), exactly zero
// allocations per metric hot-path operation, exact reproduction of
// the scraped series count and the span sampling plan (planned count
// and fnv1a span-ID digest), and full collection of planned spans.
//
// A regression is: current p99 latency above baseline × (1 + tolerance),
// current throughput below baseline × (1 − tolerance) (loadgen),
// current cost above baseline × (1 + tolerance) (autoscale), or error
// rate more than -max-error-rate-delta above baseline (absolute).
// Improvements never fail, and a report whose schedule digest differs
// from the baseline's is flagged (different schedules are not
// comparable) unless -ignore-schedule is set.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_loadgen.json -tolerance 0.20
//	benchdiff -baseline BENCH_autoscale_baseline.json -current BENCH_autoscale.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"accelcloud/internal/autoscale"
	"accelcloud/internal/faults"
	"accelcloud/internal/geobench"
	"accelcloud/internal/loadgen"
	"accelcloud/internal/obsbench"
	"accelcloud/internal/router"
	"accelcloud/internal/scenariobench"
	"accelcloud/internal/servebench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// pct renders a relative change as a signed percentage.
func pct(baseline, current float64) string {
	if baseline == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(current-baseline)/baseline)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(out)
	basePath := fs.String("baseline", "BENCH_baseline.json", "committed baseline report")
	curPath := fs.String("current", "BENCH_loadgen.json", "freshly measured report")
	tolerance := fs.Float64("tolerance", 0.20, "allowed relative regression on p99/throughput (0.20 = 20%)")
	errDelta := fs.Float64("max-error-rate-delta", 0.01, "allowed absolute error-rate increase over baseline")
	ignoreSchedule := fs.Bool("ignore-schedule", false, "compare even when schedule digests differ")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tolerance < 0 {
		return fmt.Errorf("tolerance %v < 0", *tolerance)
	}
	if *errDelta < 0 {
		return fmt.Errorf("max-error-rate-delta %v < 0", *errDelta)
	}
	baseSchema, err := peekSchema(*basePath)
	if err != nil {
		return err
	}
	curSchema, err := peekSchema(*curPath)
	if err != nil {
		return err
	}
	if baseSchema != curSchema {
		return fmt.Errorf("schema mismatch: baseline %q vs current %q", baseSchema, curSchema)
	}
	if baseSchema == autoscale.ReportSchema {
		return diffAutoscale(out, *basePath, *curPath, *tolerance, *errDelta, *ignoreSchedule)
	}
	if baseSchema == faults.ReportSchema {
		return diffChaos(out, *basePath, *curPath, *tolerance, *errDelta, *ignoreSchedule)
	}
	if baseSchema == router.ReportSchema {
		return diffRouter(out, *basePath, *curPath, *tolerance)
	}
	if baseSchema == loadgen.RPCBenchSchema {
		return diffRPC(out, *basePath, *curPath, *tolerance)
	}
	if baseSchema == servebench.Schema {
		return diffServe(out, *basePath, *curPath, *tolerance)
	}
	if baseSchema == geobench.Schema {
		return diffGeo(out, *basePath, *curPath, *tolerance, *ignoreSchedule)
	}
	if baseSchema == scenariobench.Schema {
		return diffScenario(out, *basePath, *curPath, *tolerance, *ignoreSchedule)
	}
	if baseSchema == obsbench.Schema {
		return diffObs(out, *basePath, *curPath, *tolerance)
	}
	base, err := loadgen.ReadReportFile(*basePath)
	if err != nil {
		return err
	}
	cur, err := loadgen.ReadReportFile(*curPath)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "benchdiff: baseline %s vs current %s (tolerance %.0f%%)\n",
		*basePath, *curPath, 100**tolerance)
	fmt.Fprintf(out, "  %-16s %12s %12s %10s\n", "metric", "baseline", "current", "change")
	fmt.Fprintf(out, "  %-16s %12.2f %12.2f %10s\n", "p99 ms", base.Latency.P99Ms, cur.Latency.P99Ms, pct(base.Latency.P99Ms, cur.Latency.P99Ms))
	fmt.Fprintf(out, "  %-16s %12.2f %12.2f %10s\n", "p50 ms", base.Latency.P50Ms, cur.Latency.P50Ms, pct(base.Latency.P50Ms, cur.Latency.P50Ms))
	fmt.Fprintf(out, "  %-16s %12.2f %12.2f %10s\n", "throughput rps", base.ThroughputRps, cur.ThroughputRps, pct(base.ThroughputRps, cur.ThroughputRps))
	fmt.Fprintf(out, "  %-16s %12.3f %12.3f %10s\n", "error rate", base.ErrorRate, cur.ErrorRate, pct(base.ErrorRate, cur.ErrorRate))

	if base.ScheduleDigest != cur.ScheduleDigest {
		msg := fmt.Sprintf("schedule digests differ (%s vs %s): runs replay different request sequences",
			base.ScheduleDigest, cur.ScheduleDigest)
		if !*ignoreSchedule {
			return fmt.Errorf("%s (use -ignore-schedule to compare anyway)", msg)
		}
		fmt.Fprintf(out, "  warning: %s\n", msg)
	}

	var failures []string
	if base.Latency.P99Ms > 0 && cur.Latency.P99Ms > base.Latency.P99Ms*(1+*tolerance) {
		failures = append(failures, fmt.Sprintf("p99 latency regressed %s (%.2f -> %.2f ms)",
			pct(base.Latency.P99Ms, cur.Latency.P99Ms), base.Latency.P99Ms, cur.Latency.P99Ms))
	}
	if base.ThroughputRps > 0 && cur.ThroughputRps < base.ThroughputRps*(1-*tolerance) {
		failures = append(failures, fmt.Sprintf("throughput regressed %s (%.2f -> %.2f rps)",
			pct(base.ThroughputRps, cur.ThroughputRps), base.ThroughputRps, cur.ThroughputRps))
	}
	if cur.ErrorRate > base.ErrorRate+*errDelta {
		failures = append(failures, fmt.Sprintf("error rate rose %.3f -> %.3f (allowed delta %.3f)",
			base.ErrorRate, cur.ErrorRate, *errDelta))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(out, "  REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d regression(s) beyond %.0f%% tolerance", len(failures), 100**tolerance)
	}
	fmt.Fprintln(out, "  OK: within tolerance")
	return nil
}

// diffRouter gates a router micro-benchmark report. Raw ops/sec moves
// with the host CPU, so the gated columns are the rr-vs-mutex speedup
// (a ratio of two numbers measured on the same host in the same run)
// and per-policy p99 pick latency; throughput is printed for context
// only.
func diffRouter(out io.Writer, basePath, curPath string, tolerance float64) error {
	base, err := router.ReadBenchReportFile(basePath)
	if err != nil {
		return err
	}
	cur, err := router.ReadBenchReportFile(curPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "benchdiff: router baseline %s vs current %s (tolerance %.0f%%)\n",
		basePath, curPath, 100*tolerance)
	fmt.Fprintf(out, "  %-26s %14s %14s %10s\n", "metric", "baseline", "current", "change")
	// Absolute pick latencies only compare within one configuration:
	// same machine class (core count, GOMAXPROCS) and same benchmark
	// shape (pool size — least-inflight's pick is O(backends)). Across
	// configurations only the speedup ratio — two measurements from
	// the same host in the same run — stays meaningful.
	sameClass := base.NumCPU == cur.NumCPU && base.GoMaxProcs == cur.GoMaxProcs &&
		base.Backends == cur.Backends
	basePolicies := map[string]router.PolicyResult{}
	for _, p := range base.Policies {
		basePolicies[p.Policy] = p
	}
	var failures []string
	// Every baseline policy must be present in the current report —
	// otherwise a narrowed -policies run would pass the gate without
	// gating anything.
	curPolicies := map[string]bool{}
	for _, c := range cur.Policies {
		curPolicies[c.Policy] = true
	}
	for _, b := range base.Policies {
		if !curPolicies[b.Policy] {
			failures = append(failures, fmt.Sprintf("policy %s is in the baseline but missing from the current report", b.Policy))
		}
	}
	for _, c := range cur.Policies {
		b, ok := basePolicies[c.Policy]
		if !ok {
			fmt.Fprintf(out, "  %-26s %14s %14.0f %10s\n",
				c.Policy+" ops/sec", "n/a", c.ThroughputOpsPerSec, "new")
			continue
		}
		fmt.Fprintf(out, "  %-26s %14.0f %14.0f %10s\n",
			c.Policy+" ops/sec", b.ThroughputOpsPerSec, c.ThroughputOpsPerSec,
			pct(b.ThroughputOpsPerSec, c.ThroughputOpsPerSec))
		fmt.Fprintf(out, "  %-26s %14.3f %14.3f %10s\n",
			c.Policy+" p99 us", b.PickP99Us, c.PickP99Us, pct(b.PickP99Us, c.PickP99Us))
		switch {
		case b.Goroutines != c.Goroutines:
			// A silently skipped gate must announce itself.
			fmt.Fprintf(out, "  warning: %s measured at %d goroutines vs baseline %d: skipping its p99 gate\n",
				c.Policy, c.Goroutines, b.Goroutines)
		case sameClass && b.PickP99Us > 0 && c.PickP99Us > b.PickP99Us*(1+tolerance):
			failures = append(failures, fmt.Sprintf("%s p99 pick latency regressed %s (%.3f -> %.3f us)",
				c.Policy, pct(b.PickP99Us, c.PickP99Us), b.PickP99Us, c.PickP99Us))
		}
	}
	if !sameClass {
		fmt.Fprintf(out, "  warning: machine class or configuration differs (baseline %d CPU / GOMAXPROCS %d / %d backends, current %d / %d / %d): gating the speedup ratio only\n",
			base.NumCPU, base.GoMaxProcs, base.Backends, cur.NumCPU, cur.GoMaxProcs, cur.Backends)
	}
	switch {
	case base.SpeedupVsMutex > 0 && cur.SpeedupVsMutex > 0:
		fmt.Fprintf(out, "  %-26s %14.2f %14.2f %10s\n",
			"speedup rr vs mutex", base.SpeedupVsMutex, cur.SpeedupVsMutex,
			pct(base.SpeedupVsMutex, cur.SpeedupVsMutex))
		if cur.SpeedupVsMutex < base.SpeedupVsMutex*(1-tolerance) {
			failures = append(failures, fmt.Sprintf("rr-vs-mutex speedup regressed %s (%.2fx -> %.2fx)",
				pct(base.SpeedupVsMutex, cur.SpeedupVsMutex), base.SpeedupVsMutex, cur.SpeedupVsMutex))
		}
	case base.SpeedupVsMutex > 0:
		// The gate's headline column cannot silently vanish (e.g. a
		// -no-mutex-baseline run).
		failures = append(failures, "baseline has an rr-vs-mutex speedup but the current report is missing the mutex baseline measurement")
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(out, "  REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d regression(s) beyond %.0f%% tolerance", len(failures), 100*tolerance)
	}
	fmt.Fprintln(out, "  OK: within tolerance")
	return nil
}

// Hard floors every rpcbench report must clear regardless of the
// baseline — the acceptance bar of the binary wire protocol: ≥5×
// lower per-request overhead than sequential JSON, and an
// 8-call batched chain within 2× a single call's latency.
const (
	minRPCSpeedup    = 5.0
	maxRPCChainRatio = 2.0
)

// diffRPC gates an rpcbench report. Raw overhead microseconds move
// with the host, so the gated columns are the two ratios measured
// within one run on one host — the json-vs-binary overhead speedup and
// the chain-amortization ratio — each against both its hard floor and
// the committed baseline. The per-cell overheads are printed for
// context only.
func diffRPC(out io.Writer, basePath, curPath string, tolerance float64) error {
	base, err := loadgen.ReadRPCBenchReportFile(basePath)
	if err != nil {
		return err
	}
	cur, err := loadgen.ReadRPCBenchReportFile(curPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "benchdiff: rpc baseline %s vs current %s (tolerance %.0f%%)\n",
		basePath, curPath, 100*tolerance)
	if base.ChainLen != cur.ChainLen {
		return fmt.Errorf("chain lengths differ (baseline %d, current %d): reports are not comparable",
			base.ChainLen, cur.ChainLen)
	}
	fmt.Fprintf(out, "  %-26s %12s %12s %10s\n", "metric", "baseline", "current", "change")
	fmt.Fprintf(out, "  %-26s %12.1f %12.1f %10s\n", "json single overhead us", base.JSONSingleOverheadUs, cur.JSONSingleOverheadUs, pct(base.JSONSingleOverheadUs, cur.JSONSingleOverheadUs))
	fmt.Fprintf(out, "  %-26s %12.1f %12.1f %10s\n", "bin single overhead us", base.BinSingleOverheadUs, cur.BinSingleOverheadUs, pct(base.BinSingleOverheadUs, cur.BinSingleOverheadUs))
	fmt.Fprintf(out, "  %-26s %12.1f %12.1f %10s\n", "bin batched overhead us", base.BinBatchOverheadUs, cur.BinBatchOverheadUs, pct(base.BinBatchOverheadUs, cur.BinBatchOverheadUs))
	fmt.Fprintf(out, "  %-26s %12.2f %12.2f %10s\n", "speedup json/bin", base.Speedup, cur.Speedup, pct(base.Speedup, cur.Speedup))
	fmt.Fprintf(out, "  %-26s %12.2f %12.2f %10s\n", "chain ratio", base.ChainRatio, cur.ChainRatio, pct(base.ChainRatio, cur.ChainRatio))

	var failures []string
	if cur.Speedup < minRPCSpeedup {
		failures = append(failures, fmt.Sprintf("overhead speedup %.2fx below the %.1fx floor", cur.Speedup, minRPCSpeedup))
	}
	if base.Speedup > 0 && cur.Speedup < base.Speedup*(1-tolerance) {
		failures = append(failures, fmt.Sprintf("overhead speedup regressed %s (%.2fx -> %.2fx)",
			pct(base.Speedup, cur.Speedup), base.Speedup, cur.Speedup))
	}
	if cur.ChainRatio > maxRPCChainRatio {
		failures = append(failures, fmt.Sprintf("chain ratio %.2fx above the %.1fx ceiling", cur.ChainRatio, maxRPCChainRatio))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(out, "  REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d regression(s) beyond %.0f%% tolerance", len(failures), 100*tolerance)
	}
	fmt.Fprintln(out, "  OK: within tolerance")
	return nil
}

// Hard bars every servebench report must clear regardless of the
// baseline — the acceptance criteria of the serving layer: dynamic
// batching at least doubles homogeneous closed-loop throughput, and a
// saturated backend's presence moves the healthy backend's p99 by at
// most 20% of the healthy-only baseline.
const (
	minBatchSpeedup = 2.0
	maxHoldRatio    = 1.2
)

// diffServe gates a servebench report. The batching speedup and the
// saturation hold ratio are within-run ratios (machine-portable), each
// gated against its hard bar; the speedup is additionally gated
// against the committed baseline with the relative tolerance. The
// scale-to-zero scenario is deterministic, so its activation count and
// decision digest must reproduce the baseline exactly, and the run
// must have shed at least one request through the typed queue-full
// rejection path. Raw rps and millisecond columns are printed for
// context only — they move with host speed.
func diffServe(out io.Writer, basePath, curPath string, tolerance float64) error {
	base, err := servebench.ReadReportFile(basePath)
	if err != nil {
		return err
	}
	cur, err := servebench.ReadReportFile(curPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "benchdiff: serve baseline %s vs current %s (tolerance %.0f%%)\n",
		basePath, curPath, 100*tolerance)
	fmt.Fprintf(out, "  %-26s %12s %12s %10s\n", "metric", "baseline", "current", "change")
	fmt.Fprintf(out, "  %-26s %12.0f %12.0f %10s\n", "unbatched rps", base.UnbatchedThroughputRps, cur.UnbatchedThroughputRps, pct(base.UnbatchedThroughputRps, cur.UnbatchedThroughputRps))
	fmt.Fprintf(out, "  %-26s %12.0f %12.0f %10s\n", "batched rps", base.BatchedThroughputRps, cur.BatchedThroughputRps, pct(base.BatchedThroughputRps, cur.BatchedThroughputRps))
	fmt.Fprintf(out, "  %-26s %12.2f %12.2f %10s\n", "batch speedup", base.BatchSpeedup, cur.BatchSpeedup, pct(base.BatchSpeedup, cur.BatchSpeedup))
	fmt.Fprintf(out, "  %-26s %12.2f %12.2f %10s\n", "saturated hold ratio", base.SaturatedHoldRatio, cur.SaturatedHoldRatio, pct(base.SaturatedHoldRatio, cur.SaturatedHoldRatio))
	fmt.Fprintf(out, "  %-26s %12d %12d %10s\n", "queue-full rejections", base.QueueFullRejections, cur.QueueFullRejections, pct(float64(base.QueueFullRejections), float64(cur.QueueFullRejections)))
	fmt.Fprintf(out, "  %-26s %12d %12d\n", "cold activations", base.ColdActivations, cur.ColdActivations)
	fmt.Fprintf(out, "  %-26s %25s\n", "decision digest", cur.DecisionDigest)

	var failures []string
	if cur.BatchSpeedup < minBatchSpeedup {
		failures = append(failures, fmt.Sprintf("batch speedup %.2fx below the %.1fx floor", cur.BatchSpeedup, minBatchSpeedup))
	}
	if base.BatchSpeedup > 0 && cur.BatchSpeedup < base.BatchSpeedup*(1-tolerance) {
		failures = append(failures, fmt.Sprintf("batch speedup regressed %s (%.2fx -> %.2fx)",
			pct(base.BatchSpeedup, cur.BatchSpeedup), base.BatchSpeedup, cur.BatchSpeedup))
	}
	if cur.SaturatedHoldRatio > maxHoldRatio {
		failures = append(failures, fmt.Sprintf("saturated hold ratio %.2f above the %.1f ceiling: the crippled backend degraded its healthy peer", cur.SaturatedHoldRatio, maxHoldRatio))
	}
	if cur.QueueFullRejections == 0 {
		failures = append(failures, "no queue-full rejections: the saturated backend never backpressured")
	}
	if cur.ColdActivations < 1 {
		failures = append(failures, "no cold-pool activation: scale-to-zero never reactivated the parked backend")
	}
	if cur.ColdActivations != base.ColdActivations {
		failures = append(failures, fmt.Sprintf("cold activations changed (%d -> %d): the deterministic scenario diverged",
			base.ColdActivations, cur.ColdActivations))
	}
	if cur.DecisionDigest != base.DecisionDigest {
		failures = append(failures, fmt.Sprintf("decision digest changed (%s -> %s): the scale-to-zero control cycle is not reproducing",
			base.DecisionDigest, cur.DecisionDigest))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(out, "  REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d regression(s) beyond %.0f%% tolerance", len(failures), 100*tolerance)
	}
	fmt.Fprintln(out, "  OK: within tolerance")
	return nil
}

// Hard bars every geobench report must clear regardless of the
// baseline — the acceptance criteria of the multi-region tier:
// spillover must happen under saturation but stay the exception, a
// region kill may lose nothing, and the monitor must fence a killed
// region within the recover ceiling.
const (
	maxSpilloverRate     = 0.90
	maxFailoverRecoverMs = 5000.0
)

// diffGeo gates a geobench report. The sweep's routing decisions, the
// faults schedule, and the failover-event log are deterministic per
// seed, so their digests must reproduce the baseline exactly; the
// per-region p99s are sleep-dominated (simulated RTT) and get the
// relative tolerance, with every baseline region required in the
// current report; the spillover rate must be non-zero and under its
// hard ceiling; and the failover scenario must lose zero in-flight
// calls and recover within the hard bound.
func diffGeo(out io.Writer, basePath, curPath string, tolerance float64, ignoreSchedule bool) error {
	base, err := geobench.ReadReportFile(basePath)
	if err != nil {
		return err
	}
	cur, err := geobench.ReadReportFile(curPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "benchdiff: geo baseline %s vs current %s (tolerance %.0f%%)\n",
		basePath, curPath, 100*tolerance)
	if base.ScheduleDigest != cur.ScheduleDigest {
		msg := fmt.Sprintf("schedule digests differ (%s vs %s): runs replay different outage schedules",
			base.ScheduleDigest, cur.ScheduleDigest)
		if !ignoreSchedule {
			return fmt.Errorf("%s (use -ignore-schedule to compare anyway)", msg)
		}
		fmt.Fprintf(out, "  warning: %s\n", msg)
	}
	fmt.Fprintf(out, "  %-26s %12s %12s %10s\n", "metric", "baseline", "current", "change")
	var failures []string
	names := make([]string, 0, len(base.Regions))
	for name := range base.Regions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Regions[name]
		c, ok := cur.Regions[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("region %s is in the baseline but missing from the current sweep", name))
			continue
		}
		fmt.Fprintf(out, "  %-26s %12.2f %12.2f %10s\n", name+" p99 ms", b.P99Ms, c.P99Ms, pct(b.P99Ms, c.P99Ms))
		if b.P99Ms > 0 && c.P99Ms > b.P99Ms*(1+tolerance) {
			failures = append(failures, fmt.Sprintf("%s p99 regressed %s (%.2f -> %.2f ms)",
				name, pct(b.P99Ms, c.P99Ms), b.P99Ms, c.P99Ms))
		}
	}
	fmt.Fprintf(out, "  %-26s %12.2f %12.2f %10s\n", "spillover rate", base.SpilloverRate, cur.SpilloverRate, pct(base.SpilloverRate, cur.SpilloverRate))
	fmt.Fprintf(out, "  %-26s %12d %12d\n", "lost in flight", base.LostInFlight, cur.LostInFlight)
	fmt.Fprintf(out, "  %-26s %12.1f %12.1f %10s\n", "failover recover ms", base.FailoverRecoverMs, cur.FailoverRecoverMs, pct(base.FailoverRecoverMs, cur.FailoverRecoverMs))
	fmt.Fprintf(out, "  %-26s %25s\n", "decision digest", cur.DecisionDigest)
	fmt.Fprintf(out, "  %-26s %25s\n", "failover digest", cur.FailoverDigest)

	if base.ScheduleDigest == cur.ScheduleDigest && base.DecisionDigest != cur.DecisionDigest {
		failures = append(failures, fmt.Sprintf("sweep decision digest changed (%s -> %s): the geo tier routes differently",
			base.DecisionDigest, cur.DecisionDigest))
	}
	if base.ScheduleDigest == cur.ScheduleDigest && base.FailoverDigest != cur.FailoverDigest {
		failures = append(failures, fmt.Sprintf("failover-event digest changed (%s -> %s): outage detection behaves differently",
			base.FailoverDigest, cur.FailoverDigest))
	}
	if cur.SpillCalls == 0 {
		failures = append(failures, "no spillover: the saturated home region never pushed a call to its neighbour")
	}
	if cur.SpilloverRate > maxSpilloverRate {
		failures = append(failures, fmt.Sprintf("spillover rate %.2f above the %.2f ceiling: the home region absorbed almost nothing", cur.SpilloverRate, maxSpilloverRate))
	}
	if cur.LostInFlight > 0 {
		failures = append(failures, fmt.Sprintf("%d in-flight calls lost across the region kill", cur.LostInFlight))
	}
	if cur.FailoverRecoverMs > maxFailoverRecoverMs {
		failures = append(failures, fmt.Sprintf("failover time-to-recover %.1f ms above the %.0f ms ceiling", cur.FailoverRecoverMs, maxFailoverRecoverMs))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(out, "  REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d regression(s) beyond %.0f%% tolerance", len(failures), 100*tolerance)
	}
	fmt.Fprintln(out, "  OK: within tolerance")
	return nil
}

// Hard bars every scenariobench report must clear regardless of the
// baseline — the acceptance criteria of the scenario engine: the
// flash crowds must at least double the request rate of the calm
// phase, and the million-user streaming pass must stay in O(shards)
// memory — orders of magnitude under what a materialized schedule
// would need.
const (
	minCrowdRateRatio = 2.0
	maxScenarioHeapMB = 256.0
)

// diffScenario gates a scenariobench report. The schedule is a pure
// function of (seed, config), so the stream digest, request count,
// and replay digest must reproduce the baseline exactly, and the
// shard-invariance sweep must hold; the crowd-vs-calm rate ratio is a
// within-run ratio gated against its hard floor; peak heap during the
// streaming pass is gated against its hard ceiling (it depends on the
// block size, not the host); generation throughput moves with the
// host CPU, so it is gated against the baseline only within one
// machine class (same NumCPU and GOMAXPROCS). Replay p99 columns are
// printed for context only — they are sleep-dominated.
func diffScenario(out io.Writer, basePath, curPath string, tolerance float64, ignoreSchedule bool) error {
	base, err := scenariobench.ReadReportFile(basePath)
	if err != nil {
		return err
	}
	cur, err := scenariobench.ReadReportFile(curPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "benchdiff: scenario baseline %s vs current %s (tolerance %.0f%%)\n",
		basePath, curPath, 100*tolerance)
	if base.Seed != cur.Seed || base.Users != cur.Users ||
		base.VirtualSeconds != cur.VirtualSeconds || base.ReplayUsers != cur.ReplayUsers {
		return fmt.Errorf("configurations differ (baseline seed %d / %d users / %.0fs / %d replay users, current %d / %d / %.0fs / %d): reports are not comparable",
			base.Seed, base.Users, base.VirtualSeconds, base.ReplayUsers,
			cur.Seed, cur.Users, cur.VirtualSeconds, cur.ReplayUsers)
	}
	if base.StreamDigest != cur.StreamDigest {
		msg := fmt.Sprintf("stream digests differ (%s vs %s): runs generate different schedules",
			base.StreamDigest, cur.StreamDigest)
		if !ignoreSchedule {
			return fmt.Errorf("%s (use -ignore-schedule to compare anyway)", msg)
		}
		fmt.Fprintf(out, "  warning: %s\n", msg)
	}
	fmt.Fprintf(out, "  %-26s %12s %12s %10s\n", "metric", "baseline", "current", "change")
	fmt.Fprintf(out, "  %-26s %12d %12d\n", "requests", base.Requests, cur.Requests)
	fmt.Fprintf(out, "  %-26s %12.0f %12.0f %10s\n", "gen req/s", base.GenRequestsPerSec, cur.GenRequestsPerSec, pct(base.GenRequestsPerSec, cur.GenRequestsPerSec))
	fmt.Fprintf(out, "  %-26s %12.1f %12.1f %10s\n", "peak heap MB", base.PeakHeapMB, cur.PeakHeapMB, pct(base.PeakHeapMB, cur.PeakHeapMB))
	fmt.Fprintf(out, "  %-26s %12v %12v\n", "shards invariant", base.ShardsInvariant, cur.ShardsInvariant)
	fmt.Fprintf(out, "  %-26s %12d %12d\n", "replay requests", base.ReplayRequests, cur.ReplayRequests)
	fmt.Fprintf(out, "  %-26s %12.2f %12.2f %10s\n", "crowd rate ratio", base.CrowdRateRatio, cur.CrowdRateRatio, pct(base.CrowdRateRatio, cur.CrowdRateRatio))
	fmt.Fprintf(out, "  %-26s %12.1f %12.1f %10s\n", "crowd p99 ms", base.CrowdP99Ms, cur.CrowdP99Ms, pct(base.CrowdP99Ms, cur.CrowdP99Ms))
	fmt.Fprintf(out, "  %-26s %12.1f %12.1f %10s\n", "calm p99 ms", base.CalmP99Ms, cur.CalmP99Ms, pct(base.CalmP99Ms, cur.CalmP99Ms))
	fmt.Fprintf(out, "  %-26s %25s\n", "stream digest", cur.StreamDigest)
	fmt.Fprintf(out, "  %-26s %25s\n", "replay digest", cur.ReplayDigest)

	var failures []string
	sameSchedule := base.StreamDigest == cur.StreamDigest
	if sameSchedule && base.Requests != cur.Requests {
		failures = append(failures, fmt.Sprintf("request count changed (%d -> %d) under the same stream digest: the generator is inconsistent",
			base.Requests, cur.Requests))
	}
	if !cur.ShardsInvariant {
		failures = append(failures, "schedule digest varies with shard count: sharding changes the workload")
	}
	if sameSchedule && base.ReplayDigest != cur.ReplayDigest {
		failures = append(failures, fmt.Sprintf("replay digest changed (%s -> %s): scenario replay materializes different requests",
			base.ReplayDigest, cur.ReplayDigest))
	}
	if cur.CrowdRateRatio < minCrowdRateRatio {
		failures = append(failures, fmt.Sprintf("crowd rate ratio %.2fx below the %.1fx floor: the flash crowd never materialized", cur.CrowdRateRatio, minCrowdRateRatio))
	}
	if cur.PeakHeapMB > maxScenarioHeapMB {
		failures = append(failures, fmt.Sprintf("peak heap %.1f MB above the %.0f MB ceiling: generation is no longer streaming", cur.PeakHeapMB, maxScenarioHeapMB))
	}
	sameClass := base.NumCPU == cur.NumCPU && base.GoMaxProcs == cur.GoMaxProcs
	switch {
	case !sameClass:
		fmt.Fprintf(out, "  warning: machine class differs (baseline %d CPU / GOMAXPROCS %d, current %d / %d): skipping the generation-throughput gate\n",
			base.NumCPU, base.GoMaxProcs, cur.NumCPU, cur.GoMaxProcs)
	case base.GenRequestsPerSec > 0 && cur.GenRequestsPerSec < base.GenRequestsPerSec*(1-tolerance):
		failures = append(failures, fmt.Sprintf("generation throughput regressed %s (%.0f -> %.0f req/s)",
			pct(base.GenRequestsPerSec, cur.GenRequestsPerSec), base.GenRequestsPerSec, cur.GenRequestsPerSec))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(out, "  REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d regression(s) beyond %.0f%% tolerance", len(failures), 100*tolerance)
	}
	fmt.Fprintln(out, "  OK: within tolerance")
	return nil
}

// maxObsOverheadRatio is the hard ceiling every obsbench report must
// clear regardless of the baseline — the acceptance bar of the
// observability layer: turning metrics on may move the workload's p99
// by at most 50% (loopback requests are sub-millisecond, so the
// ceiling is generous against scheduler noise while still catching a
// lock or an allocation sneaking onto the hot path).
const maxObsOverheadRatio = 1.5

// diffObs gates an obsbench report. The overhead ratio is a within-run
// ratio (machine-portable), gated against its hard ceiling and the
// committed baseline; the three allocs-per-op guards must be exactly
// zero; the scraped series count and the span plan — planned count and
// fnv1a ID digest, pure functions of the seed — must reproduce the
// baseline exactly; and an error-free run must collect every planned
// span. The raw p99 columns are printed for context only.
func diffObs(out io.Writer, basePath, curPath string, tolerance float64) error {
	base, err := obsbench.ReadReportFile(basePath)
	if err != nil {
		return err
	}
	cur, err := obsbench.ReadReportFile(curPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "benchdiff: obs baseline %s vs current %s (tolerance %.0f%%)\n",
		basePath, curPath, 100*tolerance)
	if base.Seed != cur.Seed || base.SpanSampleEvery != cur.SpanSampleEvery {
		return fmt.Errorf("configurations differ (baseline seed %d / 1-in-%d sampling, current %d / %d): span plans are not comparable",
			base.Seed, base.SpanSampleEvery, cur.Seed, cur.SpanSampleEvery)
	}
	fmt.Fprintf(out, "  %-26s %12s %12s %10s\n", "metric", "baseline", "current", "change")
	fmt.Fprintf(out, "  %-26s %12.2f %12.2f %10s\n", "metrics-off p99 ms", base.OffP99Ms, cur.OffP99Ms, pct(base.OffP99Ms, cur.OffP99Ms))
	fmt.Fprintf(out, "  %-26s %12.2f %12.2f %10s\n", "metrics-on p99 ms", base.OnP99Ms, cur.OnP99Ms, pct(base.OnP99Ms, cur.OnP99Ms))
	fmt.Fprintf(out, "  %-26s %12.3f %12.3f %10s\n", "overhead ratio", base.OverheadRatio, cur.OverheadRatio, pct(base.OverheadRatio, cur.OverheadRatio))
	fmt.Fprintf(out, "  %-26s %12d %12d\n", "series scraped", base.SeriesCount, cur.SeriesCount)
	fmt.Fprintf(out, "  %-26s %12.1f %12.1f\n", "counter allocs/op", base.CounterIncAllocs, cur.CounterIncAllocs)
	fmt.Fprintf(out, "  %-26s %12.1f %12.1f\n", "gauge allocs/op", base.GaugeSetAllocs, cur.GaugeSetAllocs)
	fmt.Fprintf(out, "  %-26s %12.1f %12.1f\n", "histogram allocs/op", base.HistObserveAllocs, cur.HistObserveAllocs)
	fmt.Fprintf(out, "  %-26s %12d %12d\n", "spans planned", base.SpansPlanned, cur.SpansPlanned)
	fmt.Fprintf(out, "  %-26s %12d %12d\n", "spans collected", base.SpansCollected, cur.SpansCollected)
	fmt.Fprintf(out, "  %-26s %25s\n", "span digest", cur.SpanDigest)

	var failures []string
	if cur.OverheadRatio > maxObsOverheadRatio {
		failures = append(failures, fmt.Sprintf("overhead ratio %.3f above the %.1f ceiling: instrumentation moved the tail", cur.OverheadRatio, maxObsOverheadRatio))
	}
	// The relative gate floors the baseline at 1.0: a sub-1.0 measured
	// ratio is scheduler noise around "no overhead", and letting it
	// tighten the gate below the ceiling would make the gate flaky.
	if refRatio := math.Max(base.OverheadRatio, 1.0); base.OverheadRatio > 0 && cur.OverheadRatio > refRatio*(1+tolerance) {
		failures = append(failures, fmt.Sprintf("overhead ratio regressed %s (%.3f -> %.3f)",
			pct(base.OverheadRatio, cur.OverheadRatio), base.OverheadRatio, cur.OverheadRatio))
	}
	if cur.CounterIncAllocs != 0 || cur.GaugeSetAllocs != 0 || cur.HistObserveAllocs != 0 {
		failures = append(failures, fmt.Sprintf("metric hot path allocates (counter=%.1f gauge=%.1f histogram=%.1f allocs/op): zero-allocation guarantee broken",
			cur.CounterIncAllocs, cur.GaugeSetAllocs, cur.HistObserveAllocs))
	}
	if cur.SeriesCount != base.SeriesCount {
		failures = append(failures, fmt.Sprintf("scraped series count changed (%d -> %d): the front-end's registration set drifted",
			base.SeriesCount, cur.SeriesCount))
	}
	if cur.SpansPlanned != base.SpansPlanned {
		failures = append(failures, fmt.Sprintf("planned span count changed (%d -> %d): the sampling decision is not reproducing",
			base.SpansPlanned, cur.SpansPlanned))
	}
	if cur.SpanDigest != base.SpanDigest {
		failures = append(failures, fmt.Sprintf("span digest changed (%s -> %s): the minted span IDs are not reproducing",
			base.SpanDigest, cur.SpanDigest))
	}
	if cur.SpansCollected != cur.SpansPlanned {
		failures = append(failures, fmt.Sprintf("collected %d of %d planned spans: breakdowns are being dropped on an error-free run",
			cur.SpansCollected, cur.SpansPlanned))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(out, "  REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d regression(s) beyond %.0f%% tolerance", len(failures), 100*tolerance)
	}
	fmt.Fprintln(out, "  OK: within tolerance")
	return nil
}

// minAvailability is the hard floor every chaos report must clear
// regardless of the baseline — the acceptance bar of the
// fault-tolerance subsystem.
const minAvailability = 0.99

// diffChaos gates a chaos report. The fault timeline and the repair
// decision log are deterministic per seed, so their digests must match
// the baseline exactly; availability is gated both against the
// baseline (absolute delta) and against the hard 99% floor; detection
// must stay within the baseline's failed-probe budget (ejection before
// the 3rd failed probe in the committed baseline); p99-during-fault is
// the machine-dependent latency column and gets the relative
// tolerance. Time-to-eject, time-to-repair, and hedge win rate are
// printed for context — they move with host speed.
func diffChaos(out io.Writer, basePath, curPath string, tolerance, errDelta float64, ignoreSchedule bool) error {
	base, err := faults.ReadReportFile(basePath)
	if err != nil {
		return err
	}
	cur, err := faults.ReadReportFile(curPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "benchdiff: chaos baseline %s vs current %s (tolerance %.0f%%)\n",
		basePath, curPath, 100*tolerance)
	fmt.Fprintf(out, "  %-22s %12s %12s %10s\n", "metric", "baseline", "current", "change")
	fmt.Fprintf(out, "  %-22s %12.4f %12.4f %10s\n", "availability", base.Availability, cur.Availability, pct(base.Availability, cur.Availability))
	fmt.Fprintf(out, "  %-22s %12.2f %12.2f %10s\n", "p99 ms", base.Latency.P99Ms, cur.Latency.P99Ms, pct(base.Latency.P99Ms, cur.Latency.P99Ms))
	fmt.Fprintf(out, "  %-22s %12.2f %12.2f %10s\n", "p99 during fault ms", base.FaultLatency.P99Ms, cur.FaultLatency.P99Ms, pct(base.FaultLatency.P99Ms, cur.FaultLatency.P99Ms))
	fmt.Fprintf(out, "  %-22s %12d %12d\n", "max probes to eject", base.MaxProbesToEject, cur.MaxProbesToEject)
	fmt.Fprintf(out, "  %-22s %12.0f %12.0f %10s\n", "mean eject ms", base.MeanTimeToEject, cur.MeanTimeToEject, pct(base.MeanTimeToEject, cur.MeanTimeToEject))
	fmt.Fprintf(out, "  %-22s %12.0f %12.0f %10s\n", "mean repair ms", base.MeanTimeToRepair, cur.MeanTimeToRepair, pct(base.MeanTimeToRepair, cur.MeanTimeToRepair))
	fmt.Fprintf(out, "  %-22s %12d %12d\n", "repairs", base.Repairs, cur.Repairs)
	fmt.Fprintf(out, "  %-22s %12.2f %12.2f\n", "hedge win rate", base.HedgeWinRate, cur.HedgeWinRate)

	if base.ScheduleDigest != cur.ScheduleDigest {
		msg := fmt.Sprintf("schedule digests differ (%s vs %s): runs replay different request sequences",
			base.ScheduleDigest, cur.ScheduleDigest)
		if !ignoreSchedule {
			return fmt.Errorf("%s (use -ignore-schedule to compare anyway)", msg)
		}
		fmt.Fprintf(out, "  warning: %s\n", msg)
	}
	var failures []string
	sameSchedule := base.ScheduleDigest == cur.ScheduleDigest
	if sameSchedule && base.FaultDigest != cur.FaultDigest {
		failures = append(failures, fmt.Sprintf("fault digest changed (%s -> %s): the chaos timeline is not reproducing",
			base.FaultDigest, cur.FaultDigest))
	}
	if sameSchedule && base.FaultDigest == cur.FaultDigest && base.DecisionDigest != cur.DecisionDigest {
		failures = append(failures, fmt.Sprintf("decision digest changed (%s -> %s): detection or repair behaves differently",
			base.DecisionDigest, cur.DecisionDigest))
	}
	if cur.Availability < minAvailability {
		failures = append(failures, fmt.Sprintf("availability %.4f below the %.2f floor", cur.Availability, minAvailability))
	}
	if cur.Availability < base.Availability-errDelta {
		failures = append(failures, fmt.Sprintf("availability fell %.4f -> %.4f (allowed delta %.3f)",
			base.Availability, cur.Availability, errDelta))
	}
	if base.MaxProbesToEject > 0 && cur.MaxProbesToEject > base.MaxProbesToEject {
		failures = append(failures, fmt.Sprintf("detection slowed: %d failed probes to eject vs baseline %d",
			cur.MaxProbesToEject, base.MaxProbesToEject))
	}
	if base.FaultLatency.P99Ms > 0 && cur.FaultLatency.P99Ms > base.FaultLatency.P99Ms*(1+tolerance) {
		failures = append(failures, fmt.Sprintf("p99 during fault regressed %s (%.2f -> %.2f ms)",
			pct(base.FaultLatency.P99Ms, cur.FaultLatency.P99Ms), base.FaultLatency.P99Ms, cur.FaultLatency.P99Ms))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(out, "  REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d regression(s) beyond %.0f%% tolerance", len(failures), 100*tolerance)
	}
	fmt.Fprintln(out, "  OK: within tolerance")
	return nil
}

// peekSchema reads only the schema discriminator of a report file.
func peekSchema(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer func() { _ = f.Close() }()
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.NewDecoder(f).Decode(&head); err != nil {
		return "", fmt.Errorf("peek %s: %w", path, err)
	}
	return head.Schema, nil
}

// diffAutoscale gates an autoscale report on its p99 and cost columns.
func diffAutoscale(out io.Writer, basePath, curPath string, tolerance, errDelta float64, ignoreSchedule bool) error {
	base, err := autoscale.ReadReportFile(basePath)
	if err != nil {
		return err
	}
	cur, err := autoscale.ReadReportFile(curPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "benchdiff: autoscale baseline %s vs current %s (tolerance %.0f%%)\n",
		basePath, curPath, 100*tolerance)
	fmt.Fprintf(out, "  %-18s %12s %12s %10s\n", "metric", "baseline", "current", "change")
	fmt.Fprintf(out, "  %-18s %12.2f %12.2f %10s\n", "p99 ms", base.Latency.P99Ms, cur.Latency.P99Ms, pct(base.Latency.P99Ms, cur.Latency.P99Ms))
	fmt.Fprintf(out, "  %-18s %12.6f %12.6f %10s\n", "adaptive cost $", base.AdaptiveCostUSD, cur.AdaptiveCostUSD, pct(base.AdaptiveCostUSD, cur.AdaptiveCostUSD))
	fmt.Fprintf(out, "  %-18s %12.1f %12.1f %10s\n", "savings %", base.SavingsPct, cur.SavingsPct, pct(base.SavingsPct, cur.SavingsPct))
	fmt.Fprintf(out, "  %-18s %12.3f %12.3f %10s\n", "error rate", base.ErrorRate, cur.ErrorRate, pct(base.ErrorRate, cur.ErrorRate))

	if base.ScheduleDigest != cur.ScheduleDigest {
		msg := fmt.Sprintf("schedule digests differ (%s vs %s): runs replay different request sequences",
			base.ScheduleDigest, cur.ScheduleDigest)
		if !ignoreSchedule {
			return fmt.Errorf("%s (use -ignore-schedule to compare anyway)", msg)
		}
		fmt.Fprintf(out, "  warning: %s\n", msg)
	}
	var failures []string
	// Same schedule ⇒ the control cycle is deterministic; a digest
	// change means the reconciler decided differently, which is a
	// behaviour change to review, not measurement noise.
	if base.ScheduleDigest == cur.ScheduleDigest && base.DecisionDigest != cur.DecisionDigest {
		failures = append(failures, fmt.Sprintf("decision digest changed (%s -> %s): the control cycle behaves differently",
			base.DecisionDigest, cur.DecisionDigest))
	}
	if base.Latency.P99Ms > 0 && cur.Latency.P99Ms > base.Latency.P99Ms*(1+tolerance) {
		failures = append(failures, fmt.Sprintf("p99 latency regressed %s (%.2f -> %.2f ms)",
			pct(base.Latency.P99Ms, cur.Latency.P99Ms), base.Latency.P99Ms, cur.Latency.P99Ms))
	}
	if base.AdaptiveCostUSD > 0 && cur.AdaptiveCostUSD > base.AdaptiveCostUSD*(1+tolerance) {
		failures = append(failures, fmt.Sprintf("adaptive cost regressed %s ($%.6f -> $%.6f)",
			pct(base.AdaptiveCostUSD, cur.AdaptiveCostUSD), base.AdaptiveCostUSD, cur.AdaptiveCostUSD))
	}
	if cur.ErrorRate > base.ErrorRate+errDelta {
		failures = append(failures, fmt.Sprintf("error rate rose %.3f -> %.3f (allowed delta %.3f)",
			base.ErrorRate, cur.ErrorRate, errDelta))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(out, "  REGRESSION: %s\n", f)
		}
		return fmt.Errorf("%d regression(s) beyond %.0f%% tolerance", len(failures), 100*tolerance)
	}
	fmt.Fprintln(out, "  OK: within tolerance")
	return nil
}
