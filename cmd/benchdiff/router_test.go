package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accelcloud/internal/router"
)

func writeRouterReport(t *testing.T, dir, name string, rep *router.BenchReport) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func routerReport(speedup, rrP99 float64) *router.BenchReport {
	mutex := router.PolicyResult{
		Policy: "mutex-rr", Goroutines: 8, Ops: 1 << 20,
		ThroughputOpsPerSec: 1e7, PickP50Us: 0.1, PickP99Us: 0.3,
	}
	return &router.BenchReport{
		Schema:     router.ReportSchema,
		GoMaxProcs: 8,
		NumCPU:     8,
		Backends:   8,
		Policies: []router.PolicyResult{
			{Policy: "rr", Goroutines: 8, Ops: 1 << 20,
				ThroughputOpsPerSec: speedup * 1e7, PickP50Us: 0.05, PickP99Us: rrP99},
			{Policy: "least-inflight", Goroutines: 8, Ops: 1 << 20,
				ThroughputOpsPerSec: 2e7, PickP50Us: 0.08, PickP99Us: 0.2},
		},
		MutexBaseline:  &mutex,
		SpeedupVsMutex: speedup,
	}
}

func TestDiffRouterWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeRouterReport(t, dir, "base.json", routerReport(3.0, 0.15))
	cur := writeRouterReport(t, dir, "cur.json", routerReport(2.8, 0.17))
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.3"}, &buf); err != nil {
		t.Fatalf("within tolerance failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "speedup rr vs mutex") {
		t.Fatalf("missing speedup row:\n%s", buf.String())
	}
}

func TestDiffRouterSpeedupRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeRouterReport(t, dir, "base.json", routerReport(3.0, 0.15))
	cur := writeRouterReport(t, dir, "cur.json", routerReport(1.2, 0.15))
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.3"}, &buf)
	if err == nil {
		t.Fatalf("speedup collapse passed the gate:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "speedup regressed") {
		t.Fatalf("wrong failure:\n%s", buf.String())
	}
}

func TestDiffRouterP99Regression(t *testing.T) {
	dir := t.TempDir()
	base := writeRouterReport(t, dir, "base.json", routerReport(3.0, 0.15))
	cur := writeRouterReport(t, dir, "cur.json", routerReport(3.0, 0.60))
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.3"}, &buf)
	if err == nil {
		t.Fatalf("p99 regression passed the gate:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "p99 pick latency regressed") {
		t.Fatalf("wrong failure:\n%s", buf.String())
	}
}

func TestDiffRouterRefusesNarrowedReport(t *testing.T) {
	dir := t.TempDir()
	base := writeRouterReport(t, dir, "base.json", routerReport(3.0, 0.15))
	// Current report measured only rr with no mutex baseline — the gate
	// must fail rather than pass vacuously.
	narrow := routerReport(3.0, 0.15)
	narrow.Policies = narrow.Policies[:1]
	narrow.MutexBaseline = nil
	narrow.SpeedupVsMutex = 0
	cur := writeRouterReport(t, dir, "cur.json", narrow)
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.3"}, &buf)
	if err == nil {
		t.Fatalf("narrowed report passed the gate:\n%s", buf.String())
	}
	for _, want := range []string{"missing from the current report", "missing the mutex baseline"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing failure %q:\n%s", want, buf.String())
		}
	}
}

func TestDiffRouterSkipsP99AcrossMachineClasses(t *testing.T) {
	dir := t.TempDir()
	base := writeRouterReport(t, dir, "base.json", routerReport(3.0, 0.15))
	// Same speedup, wildly worse p99, but measured on a different
	// machine class: the absolute-latency gate must not fire, the
	// warning must.
	other := routerReport(3.0, 5.0)
	other.NumCPU = 1
	cur := writeRouterReport(t, dir, "cur.json", other)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.3"}, &buf); err != nil {
		t.Fatalf("cross-class p99 failed the gate: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "machine class or configuration differs") {
		t.Fatalf("missing machine-class warning:\n%s", buf.String())
	}
}

func TestDiffRouterSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeRouterReport(t, dir, "base.json", routerReport(3.0, 0.15))
	other := filepath.Join(dir, "loadgen.json")
	if err := os.WriteFile(other, []byte(`{"schema":"accelcloud/loadgen-report/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", other}, &buf); err == nil {
		t.Fatal("schema mismatch should fail")
	}
}
