package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelcloud/internal/obsbench"
)

func writeObsReport(t *testing.T, dir, name string, rep *obsbench.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func obsReport(ratio float64) *obsbench.Report {
	return &obsbench.Report{
		Schema:   obsbench.Schema,
		Seed:     1,
		Requests: 400, Workers: 16,
		OffP99Ms: 2.0, OnP99Ms: 2.0 * ratio, OverheadRatio: ratio,
		SeriesCount:     40,
		SpanSampleEvery: 4,
		SpansPlanned:    11, SpansCollected: 11,
		SpanDigest: "fnv1a:00000000deadbeef",
	}
}

func TestDiffObsWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeObsReport(t, dir, "base.json", obsReport(1.02))
	cur := writeObsReport(t, dir, "cur.json", obsReport(1.05))
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err != nil {
		t.Fatalf("within tolerance failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "overhead ratio") {
		t.Fatalf("missing ratio row:\n%s", buf.String())
	}
}

func TestDiffObsOverheadCeiling(t *testing.T) {
	dir := t.TempDir()
	// A 1.6x baseline would let 1.6x pass a pure relative gate; the
	// 1.5x acceptance ceiling is absolute.
	base := writeObsReport(t, dir, "base.json", obsReport(1.6))
	cur := writeObsReport(t, dir, "cur.json", obsReport(1.6))
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("ratio above ceiling passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "above the 1.5 ceiling") {
		t.Fatalf("missing ceiling failure:\n%s", buf.String())
	}
}

func TestDiffObsAllocGuard(t *testing.T) {
	dir := t.TempDir()
	base := writeObsReport(t, dir, "base.json", obsReport(1.02))
	leaky := obsReport(1.02)
	leaky.HistObserveAllocs = 1
	cur := writeObsReport(t, dir, "cur.json", leaky)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("allocating hot path passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "zero-allocation guarantee broken") {
		t.Fatalf("missing alloc failure:\n%s", buf.String())
	}
}

func TestDiffObsSpanDigestExact(t *testing.T) {
	dir := t.TempDir()
	base := writeObsReport(t, dir, "base.json", obsReport(1.02))
	drifted := obsReport(1.02)
	drifted.SpanDigest = "fnv1a:00000000cafebabe"
	cur := writeObsReport(t, dir, "cur.json", drifted)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("drifted span digest passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "span digest changed") {
		t.Fatalf("missing digest failure:\n%s", buf.String())
	}
}

func TestDiffObsDroppedSpans(t *testing.T) {
	dir := t.TempDir()
	base := writeObsReport(t, dir, "base.json", obsReport(1.02))
	lossy := obsReport(1.02)
	lossy.SpansCollected = lossy.SpansPlanned - 2
	cur := writeObsReport(t, dir, "cur.json", lossy)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("dropped spans passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "planned spans") {
		t.Fatalf("missing collection failure:\n%s", buf.String())
	}
}

func TestDiffObsSeedMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeObsReport(t, dir, "base.json", obsReport(1.02))
	other := obsReport(1.02)
	other.Seed = 2
	cur := writeObsReport(t, dir, "cur.json", other)
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &buf)
	if err == nil {
		t.Fatalf("seed mismatch passed:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "not comparable") {
		t.Fatalf("unexpected error: %v", err)
	}
}
