package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelcloud/internal/autoscale"
	"accelcloud/internal/loadgen"
)

// writeAutoscaleReport writes a minimal autoscale report file.
func writeAutoscaleReport(t *testing.T, dir, name string, p99, cost, errRate float64, schedule, decisions string) string {
	t.Helper()
	rep := &autoscale.Report{
		Schema:            autoscale.ReportSchema,
		Seed:              1,
		Latency:           loadgen.LatencySummary{N: 100, P99Ms: p99, P50Ms: p99 / 2},
		AdaptiveCostUSD:   cost,
		StaticPeakCostUSD: cost * 2,
		SavingsPct:        50,
		ErrorRate:         errRate,
		ScheduleDigest:    schedule,
		DecisionDigest:    decisions,
	}
	path := filepath.Join(dir, name)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchdiffAutoscaleWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeAutoscaleReport(t, dir, "base.json", 100, 0.001, 0, "fnv1a:aa", "fnv1a:dd")
	cur := writeAutoscaleReport(t, dir, "cur.json", 110, 0.001, 0, "fnv1a:aa", "fnv1a:dd")
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.20"}, &out); err != nil {
		t.Fatalf("within tolerance should pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "autoscale baseline") {
		t.Fatalf("autoscale path not taken: %q", out.String())
	}
}

func TestBenchdiffAutoscaleCostRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeAutoscaleReport(t, dir, "base.json", 100, 0.001, 0, "fnv1a:aa", "fnv1a:dd")
	cur := writeAutoscaleReport(t, dir, "cur.json", 100, 0.002, 0, "fnv1a:aa", "fnv1a:dd")
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("2x cost must fail the gate")
	}
	if !strings.Contains(out.String(), "REGRESSION: adaptive cost") {
		t.Fatalf("missing cost regression line: %q", out.String())
	}
}

func TestBenchdiffAutoscaleDecisionDrift(t *testing.T) {
	dir := t.TempDir()
	base := writeAutoscaleReport(t, dir, "base.json", 100, 0.001, 0, "fnv1a:aa", "fnv1a:dd")
	cur := writeAutoscaleReport(t, dir, "cur.json", 100, 0.001, 0, "fnv1a:aa", "fnv1a:ee")
	var out bytes.Buffer
	// Same schedule, different decisions: deterministic control cycle
	// diverged — must fail even with identical metrics.
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("decision digest drift must fail the gate")
	}
	if !strings.Contains(out.String(), "decision digest changed") {
		t.Fatalf("missing digest drift line: %q", out.String())
	}
}

func TestBenchdiffAutoscaleScheduleMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeAutoscaleReport(t, dir, "base.json", 100, 0.001, 0, "fnv1a:aa", "fnv1a:dd")
	cur := writeAutoscaleReport(t, dir, "cur.json", 100, 0.001, 0, "fnv1a:bb", "fnv1a:ee")
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("schedule mismatch must fail without -ignore-schedule")
	}
	// With -ignore-schedule the decision-digest check is waived too
	// (different schedules legitimately produce different decisions).
	if err := run([]string{"-baseline", base, "-current", cur, "-ignore-schedule"}, &out); err != nil {
		t.Fatalf("-ignore-schedule should allow the comparison: %v", err)
	}
}

func TestBenchdiffSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", 100, 50, 0, "fnv1a:aa")
	cur := writeAutoscaleReport(t, dir, "cur.json", 100, 0.001, 0, "fnv1a:aa", "fnv1a:dd")
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("mixing report kinds must fail")
	}
}
