package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelcloud/internal/scenariobench"
)

func writeScenarioReport(t *testing.T, dir, name string, rep *scenariobench.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func scenarioReport() *scenariobench.Report {
	return &scenariobench.Report{
		Schema: scenariobench.Schema,
		Seed:   1, NumCPU: 8, GoMaxProcs: 8,
		Users: 1_000_000, VirtualSeconds: 30,
		Requests: 2_400_000, GenWallMs: 1500, GenRequestsPerSec: 1_600_000,
		PeakHeapMB:     4.0,
		StreamDigest:   "fnv1a:00000000cafef00d",
		ParallelShards: 8, ParallelRequests: 2_400_000, ParallelRequestsPerSec: 4_000_000,
		InvarianceUsers: 50_000,
		ShardDigests:    map[string]string{"1": "fnv1a:1", "4": "fnv1a:1", "8": "fnv1a:1"},
		ShardsInvariant: true,
		ReplayUsers:     240, ReplayRequests: 2500, ReplaySessions: 1200,
		ReplayDigest: "fnv1a:00000000deadbeef",
		CrowdRateRps: 2500, CalmRateRps: 900, CrowdRateRatio: 2.7,
		CrowdP99Ms: 220, CalmP99Ms: 120,
	}
}

func TestDiffScenarioWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeScenarioReport(t, dir, "base.json", scenarioReport())
	rep := scenarioReport()
	rep.GenRequestsPerSec = 1_500_000 // -6%, inside the 20% tolerance
	rep.CrowdRateRatio = 2.4
	cur := writeScenarioReport(t, dir, "cur.json", rep)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err != nil {
		t.Fatalf("within tolerance failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "crowd rate ratio") {
		t.Fatalf("missing ratio row:\n%s", buf.String())
	}
}

func TestDiffScenarioStreamDigestDrift(t *testing.T) {
	dir := t.TempDir()
	base := writeScenarioReport(t, dir, "base.json", scenarioReport())
	rep := scenarioReport()
	rep.StreamDigest = "fnv1a:0000000000000bad"
	cur := writeScenarioReport(t, dir, "cur.json", rep)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("stream digest drift passed:\n%s", buf.String())
	} else if !strings.Contains(err.Error(), "stream digests differ") {
		t.Fatalf("wrong error: %v", err)
	}
	// -ignore-schedule downgrades the mismatch to a warning.
	buf.Reset()
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2", "-ignore-schedule"}, &buf); err != nil {
		t.Fatalf("-ignore-schedule still failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "warning: stream digests differ") {
		t.Fatalf("missing warning:\n%s", buf.String())
	}
}

func TestDiffScenarioReplayDigestDrift(t *testing.T) {
	dir := t.TempDir()
	base := writeScenarioReport(t, dir, "base.json", scenarioReport())
	rep := scenarioReport()
	rep.ReplayDigest = "fnv1a:0000000000000bad"
	cur := writeScenarioReport(t, dir, "cur.json", rep)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("replay digest drift passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "replay digest changed") {
		t.Fatalf("missing digest failure:\n%s", buf.String())
	}
}

func TestDiffScenarioShardVariance(t *testing.T) {
	dir := t.TempDir()
	base := writeScenarioReport(t, dir, "base.json", scenarioReport())
	rep := scenarioReport()
	rep.ShardsInvariant = false
	cur := writeScenarioReport(t, dir, "cur.json", rep)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("shard variance passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "varies with shard count") {
		t.Fatalf("missing invariance failure:\n%s", buf.String())
	}
}

func TestDiffScenarioCrowdRatioFloor(t *testing.T) {
	dir := t.TempDir()
	base := writeScenarioReport(t, dir, "base.json", scenarioReport())
	rep := scenarioReport()
	rep.CrowdRateRatio = 1.4
	cur := writeScenarioReport(t, dir, "cur.json", rep)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("crowd ratio below floor passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "below the 2.0x floor") {
		t.Fatalf("missing floor failure:\n%s", buf.String())
	}
}

func TestDiffScenarioHeapCeiling(t *testing.T) {
	dir := t.TempDir()
	base := writeScenarioReport(t, dir, "base.json", scenarioReport())
	rep := scenarioReport()
	rep.PeakHeapMB = 512
	cur := writeScenarioReport(t, dir, "cur.json", rep)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("heap above ceiling passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "above the 256 MB ceiling") {
		t.Fatalf("missing ceiling failure:\n%s", buf.String())
	}
}

func TestDiffScenarioThroughputMachineClass(t *testing.T) {
	dir := t.TempDir()
	base := writeScenarioReport(t, dir, "base.json", scenarioReport())

	// Same machine class: a 50% throughput drop fails.
	rep := scenarioReport()
	rep.GenRequestsPerSec = 800_000
	cur := writeScenarioReport(t, dir, "cur.json", rep)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("throughput regression passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "generation throughput regressed") {
		t.Fatalf("missing throughput failure:\n%s", buf.String())
	}

	// Different machine class: the same drop is skipped with a warning.
	rep.NumCPU = 2
	rep.GoMaxProcs = 2
	cur2 := writeScenarioReport(t, dir, "cur2.json", rep)
	buf.Reset()
	if err := run([]string{"-baseline", base, "-current", cur2, "-tolerance", "0.2"}, &buf); err != nil {
		t.Fatalf("cross-class run failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "machine class differs") {
		t.Fatalf("missing class warning:\n%s", buf.String())
	}
}

func TestDiffScenarioConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeScenarioReport(t, dir, "base.json", scenarioReport())
	rep := scenarioReport()
	rep.Users = 10_000
	cur := writeScenarioReport(t, dir, "cur.json", rep)
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "not comparable") {
		t.Fatalf("config mismatch not rejected: %v\n%s", err, buf.String())
	}
}
