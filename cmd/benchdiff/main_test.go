package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelcloud/internal/loadgen"
)

// writeReport writes a minimal report file for comparison tests.
func writeReport(t *testing.T, dir, name string, p99, rps, errRate float64, digest string) string {
	t.Helper()
	rep := &loadgen.Report{
		Schema:         loadgen.Schema,
		Mode:           "concurrent",
		Users:          4,
		Latency:        loadgen.LatencySummary{N: 100, P99Ms: p99, P50Ms: p99 / 2},
		ThroughputRps:  rps,
		ErrorRate:      errRate,
		ScheduleDigest: digest,
	}
	path := filepath.Join(dir, name)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchdiffWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", 100, 50, 0, "fnv1a:aa")
	cur := writeReport(t, dir, "cur.json", 110, 46, 0, "fnv1a:aa") // +10% / −8%
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.20"}, &out); err != nil {
		t.Fatalf("within tolerance should pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "OK: within tolerance") {
		t.Fatalf("missing verdict: %q", out.String())
	}
}

func TestBenchdiffLatencyRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", 100, 50, 0, "fnv1a:aa")
	cur := writeReport(t, dir, "cur.json", 130, 50, 0, "fnv1a:aa") // +30% p99
	var out bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.20"}, &out)
	if err == nil {
		t.Fatal("30% p99 regression must fail at 20% tolerance")
	}
	if !strings.Contains(out.String(), "REGRESSION: p99 latency") {
		t.Fatalf("missing regression line: %q", out.String())
	}
}

func TestBenchdiffThroughputRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", 100, 50, 0, "fnv1a:aa")
	cur := writeReport(t, dir, "cur.json", 100, 30, 0, "fnv1a:aa") // −40% throughput
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("throughput collapse must fail")
	}
}

func TestBenchdiffImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", 100, 50, 0.01, "fnv1a:aa")
	cur := writeReport(t, dir, "cur.json", 40, 200, 0, "fnv1a:aa")
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err != nil {
		t.Fatalf("improvement must never fail: %v", err)
	}
}

func TestBenchdiffErrorRateDelta(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", 100, 50, 0, "fnv1a:aa")
	cur := writeReport(t, dir, "cur.json", 100, 50, 0.19, "fnv1a:aa")
	var out bytes.Buffer
	// 0% -> 19% errors must fail even though p99/throughput are flat.
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("error-rate jump must fail the gate")
	}
	if !strings.Contains(out.String(), "error rate rose") {
		t.Fatalf("missing error-rate regression line: %q", out.String())
	}
	// A generous explicit delta allows it.
	if err := run([]string{"-baseline", base, "-current", cur, "-max-error-rate-delta", "0.25"}, &out); err != nil {
		t.Fatalf("explicit delta should pass: %v", err)
	}
	if err := run([]string{"-baseline", base, "-current", cur, "-max-error-rate-delta", "-1"}, &out); err == nil {
		t.Fatal("negative delta must be rejected")
	}
}

func TestBenchdiffScheduleMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", 100, 50, 0, "fnv1a:aa")
	cur := writeReport(t, dir, "cur.json", 100, 50, 0, "fnv1a:bb")
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatal("digest mismatch must fail without -ignore-schedule")
	}
	if err := run([]string{"-baseline", base, "-current", cur, "-ignore-schedule"}, &out); err != nil {
		t.Fatalf("-ignore-schedule should allow the comparison: %v", err)
	}
}

func TestBenchdiffBadInputs(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", 100, 50, 0, "fnv1a:aa")
	var out bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", filepath.Join(dir, "missing.json")}, &out); err == nil {
		t.Fatal("missing current report must fail")
	}
	if err := run([]string{"-baseline", base, "-current", base, "-tolerance", "-1"}, &out); err == nil {
		t.Fatal("negative tolerance must fail")
	}
}
