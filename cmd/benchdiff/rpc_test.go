package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelcloud/internal/loadgen"
)

func writeRPCReport(t *testing.T, dir, name string, rep *loadgen.RPCBenchReport) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func rpcReport(speedup, chainRatio float64) *loadgen.RPCBenchReport {
	return &loadgen.RPCBenchReport{
		Schema:   loadgen.RPCBenchSchema,
		Requests: 300, ChainLen: 8,
		JSONSingleOverheadUs: 80, JSONBatchOverheadUs: 60,
		BinSingleOverheadUs: 25, BinBatchOverheadUs: 80 / speedup,
		Speedup: speedup, SingleSpeedup: 80.0 / 25,
		RouteDelayMs: 5, BinSingleMs: 5.5, BinChainMs: 5.5 * chainRatio,
		ChainRatio: chainRatio, JSONSeqChainMs: 46,
	}
}

func TestDiffRPCWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeRPCReport(t, dir, "base.json", rpcReport(6.0, 1.1))
	cur := writeRPCReport(t, dir, "cur.json", rpcReport(5.5, 1.2))
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err != nil {
		t.Fatalf("within tolerance failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "speedup json/bin") {
		t.Fatalf("missing speedup row:\n%s", buf.String())
	}
}

func TestDiffRPCSpeedupFloor(t *testing.T) {
	dir := t.TempDir()
	// 4.9x would pass a pure relative gate against a 5.1x baseline, but
	// the 5x acceptance floor is absolute.
	base := writeRPCReport(t, dir, "base.json", rpcReport(5.1, 1.1))
	cur := writeRPCReport(t, dir, "cur.json", rpcReport(4.9, 1.1))
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf)
	if err == nil {
		t.Fatalf("speedup below floor passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "below the 5.0x floor") {
		t.Fatalf("missing floor failure:\n%s", buf.String())
	}
}

func TestDiffRPCSpeedupRelativeRegression(t *testing.T) {
	dir := t.TempDir()
	// Above the floor but far below the committed baseline.
	base := writeRPCReport(t, dir, "base.json", rpcReport(12.0, 1.1))
	cur := writeRPCReport(t, dir, "cur.json", rpcReport(6.0, 1.1))
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf)
	if err == nil {
		t.Fatalf("halved speedup passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "speedup regressed") {
		t.Fatalf("missing regression message:\n%s", buf.String())
	}
}

func TestDiffRPCChainRatioCeiling(t *testing.T) {
	dir := t.TempDir()
	base := writeRPCReport(t, dir, "base.json", rpcReport(6.0, 1.1))
	cur := writeRPCReport(t, dir, "cur.json", rpcReport(6.0, 2.4))
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf)
	if err == nil {
		t.Fatalf("chain ratio above ceiling passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "above the 2.0x ceiling") {
		t.Fatalf("missing ceiling failure:\n%s", buf.String())
	}
}

func TestDiffRPCChainLenMismatch(t *testing.T) {
	dir := t.TempDir()
	base := writeRPCReport(t, dir, "base.json", rpcReport(6.0, 1.1))
	curRep := rpcReport(6.0, 1.1)
	curRep.ChainLen = 4
	cur := writeRPCReport(t, dir, "cur.json", curRep)
	var buf bytes.Buffer
	err := run([]string{"-baseline", base, "-current", cur}, &buf)
	if err == nil || !strings.Contains(err.Error(), "not comparable") {
		t.Fatalf("chain-length mismatch not rejected: %v", err)
	}
}

// TestDiffRPCCommittedBaselineSane keeps the committed baseline itself
// honest: it must clear its own hard floors, or the CI gate was
// seeded with a failing run.
func TestDiffRPCCommittedBaselineSane(t *testing.T) {
	rep, err := loadgen.ReadRPCBenchReportFile(filepath.Join("..", "..", "BENCH_rpc_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Speedup < minRPCSpeedup {
		t.Fatalf("committed baseline speedup %.2fx below the %.1fx floor", rep.Speedup, minRPCSpeedup)
	}
	if rep.ChainRatio > maxRPCChainRatio {
		t.Fatalf("committed baseline chain ratio %.2fx above the %.1fx ceiling", rep.ChainRatio, maxRPCChainRatio)
	}
	if rep.ChainLen != 8 {
		t.Fatalf("committed baseline chain length %d, want 8", rep.ChainLen)
	}
}
