package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelcloud/internal/servebench"
)

func writeServeReport(t *testing.T, dir, name string, rep *servebench.Report) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func serveReport(speedup, holdRatio float64) *servebench.Report {
	return &servebench.Report{
		Schema:   servebench.Schema,
		Requests: 400, Workers: 32,
		UnbatchedThroughputRps: 150,
		BatchedThroughputRps:   150 * speedup,
		BatchSpeedup:           speedup,
		UnbatchedP99Ms:         160, BatchedP99Ms: 40,
		BaselineP99Ms:        50,
		SaturatedStableP99Ms: 50 * holdRatio,
		SaturatedHoldRatio:   holdRatio,
		QueueFullRejections:  120,
		ColdActivations:      1,
		ColdStartMs:          25, ColdRequestMs: 27,
		DecisionDigest: "fnv1a:00000000deadbeef",
	}
}

func TestDiffServeWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeServeReport(t, dir, "base.json", serveReport(6.0, 0.9))
	cur := writeServeReport(t, dir, "cur.json", serveReport(5.2, 1.1))
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err != nil {
		t.Fatalf("within tolerance failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "batch speedup") {
		t.Fatalf("missing speedup row:\n%s", buf.String())
	}
}

func TestDiffServeSpeedupFloor(t *testing.T) {
	dir := t.TempDir()
	// 1.9x would pass a pure relative gate against a 2.1x baseline, but
	// the 2x acceptance floor is absolute.
	base := writeServeReport(t, dir, "base.json", serveReport(2.1, 0.9))
	cur := writeServeReport(t, dir, "cur.json", serveReport(1.9, 0.9))
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("speedup below floor passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "below the 2.0x floor") {
		t.Fatalf("missing floor failure:\n%s", buf.String())
	}
}

func TestDiffServeSpeedupRegression(t *testing.T) {
	dir := t.TempDir()
	// Above the floor, but a >20% drop against the baseline still fails.
	base := writeServeReport(t, dir, "base.json", serveReport(8.0, 0.9))
	cur := writeServeReport(t, dir, "cur.json", serveReport(4.0, 0.9))
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("50%% speedup regression passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "batch speedup regressed") {
		t.Fatalf("missing regression failure:\n%s", buf.String())
	}
}

func TestDiffServeHoldRatioCeiling(t *testing.T) {
	dir := t.TempDir()
	base := writeServeReport(t, dir, "base.json", serveReport(6.0, 0.9))
	cur := writeServeReport(t, dir, "cur.json", serveReport(6.0, 1.3))
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("hold ratio above ceiling passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "above the 1.2 ceiling") {
		t.Fatalf("missing ceiling failure:\n%s", buf.String())
	}
}

func TestDiffServeNoRejections(t *testing.T) {
	dir := t.TempDir()
	base := writeServeReport(t, dir, "base.json", serveReport(6.0, 0.9))
	rep := serveReport(6.0, 0.9)
	rep.QueueFullRejections = 0
	cur := writeServeReport(t, dir, "cur.json", rep)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("rejection-free saturation scenario passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "never backpressured") {
		t.Fatalf("missing rejection failure:\n%s", buf.String())
	}
}

func TestDiffServeDigestDrift(t *testing.T) {
	dir := t.TempDir()
	base := writeServeReport(t, dir, "base.json", serveReport(6.0, 0.9))
	rep := serveReport(6.0, 0.9)
	rep.DecisionDigest = "fnv1a:0000000000000bad"
	cur := writeServeReport(t, dir, "cur.json", rep)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("digest drift passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "decision digest changed") {
		t.Fatalf("missing digest failure:\n%s", buf.String())
	}
}

func TestDiffServeActivationDrift(t *testing.T) {
	dir := t.TempDir()
	base := writeServeReport(t, dir, "base.json", serveReport(6.0, 0.9))
	rep := serveReport(6.0, 0.9)
	rep.ColdActivations = 0
	cur := writeServeReport(t, dir, "cur.json", rep)
	var buf bytes.Buffer
	if err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.2"}, &buf); err == nil {
		t.Fatalf("activation-free scale-to-zero scenario passed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "no cold-pool activation") {
		t.Fatalf("missing activation failure:\n%s", buf.String())
	}
}
