// Command servebench measures the serving layer end to end against
// hermetic clusters: the dynamic-batching throughput A/B, the
// backpressure hold of a healthy backend next to a saturated one, and
// the deterministic scale-to-zero activation with its cold-start
// charge in the autoscale decision digest.
//
// Usage:
//
//	servebench -requests 400 -workers 32 -out BENCH_serve.json
//
// The gated columns (cmd/benchdiff vs BENCH_serve_baseline.json) are
// the batching speedup (hard floor 2.0x), the saturated hold ratio
// (hard ceiling 1.2), and the exact activation count and decision
// digest of the scale-to-zero scenario. The wall-clock scenarios gate
// on within-run ratios, so the report stays machine-portable.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"accelcloud/internal/servebench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("servebench", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "RNG seed for the deterministic task streams")
	requests := fs.Int("requests", 400, "measured requests per cell")
	workers := fs.Int("workers", 32, "closed-loop client concurrency")
	size := fs.Int("task-size", 8, "matmul dimension (small isolates serving overhead)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client timeout")
	outPath := fs.String("out", "BENCH_serve.json", "write the JSON report here (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := servebench.Run(context.Background(), servebench.Config{
		Seed:       *seed,
		Requests:   *requests,
		Workers:    *workers,
		MatMulSize: *size,
		Timeout:    *timeout,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Summary())
	if *outPath != "" {
		if err := rep.WriteFile(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}
