// Command scenariobench measures the population-scale scenario engine
// and emits the BENCH_scenario.json artifact cmd/benchdiff gates: a
// million-user streaming generation pass (throughput, peak heap, exact
// stream digest), a parallel shard scan, shard-count invariance of the
// schedule digest, and a scaled-down flash-crowd replay against a
// hermetic cluster.
//
// Usage:
//
//	scenariobench -out BENCH_scenario.json
//	scenariobench -users 100000 -virtual 10s -cpuprofile cpu.out
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"accelcloud/internal/scenariobench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scenariobench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scenariobench", flag.ContinueOnError)
	fs.SetOutput(out)
	seed := fs.Int64("seed", 1, "root seed; same seed = same schedule digest")
	users := fs.Int("users", 0, "generated population (0 = 1,000,000)")
	virtual := fs.Duration("virtual", 0, "virtual schedule length (0 = 30s)")
	rate := fs.Float64("rate", 0, "per-user base arrival rate in Hz (0 = 0.08)")
	invarianceUsers := fs.Int("invariance-users", 0, "population of the shard-invariance sweep (0 = 50,000)")
	replayUsers := fs.Int("replay-users", 0, "population of the hermetic crowd replay (0 = 240)")
	outPath := fs.String("out", "", "write the JSON report to this path")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := fs.String("memprofile", "", "write a heap profile to this path on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(out, "scenariobench: memprofile:", err)
				return
			}
			defer func() { _ = f.Close() }()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(out, "scenariobench: memprofile:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	rep, err := scenariobench.Run(ctx, scenariobench.Config{
		Seed:            *seed,
		Users:           *users,
		Duration:        *virtual,
		BaseRateHz:      *rate,
		InvarianceUsers: *invarianceUsers,
		ReplayUsers:     *replayUsers,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Summary())
	fmt.Fprintf(out, "scenariobench: done in %.1fs\n", time.Since(start).Seconds())
	if *outPath != "" {
		if err := rep.WriteFile(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "scenariobench: wrote %s\n", *outPath)
	}
	return nil
}
