// Command tracegen synthesizes the two datasets the paper collects:
// the 3-month smartphone usage study (§VI-C1) and the NetRadar-like
// 3G/LTE latency measurements (§VI-C4), as CSV.
//
// Usage:
//
//	tracegen -kind usage   -out usage.csv
//	tracegen -kind netradar -out rtt.csv -samples 10000
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"accelcloud/internal/netsim"
	"accelcloud/internal/sim"
	"accelcloud/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	kind := fs.String("kind", "usage", "dataset kind: usage or netradar")
	out := fs.String("out", "-", "output path (- for stdout)")
	seed := fs.Int64("seed", 1, "random seed")
	participants := fs.Int("participants", 6, "usage: panel size")
	days := fs.Int("days", 90, "usage: study length")
	samples := fs.Int("samples", 10000, "netradar: samples per operator/tech")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	switch *kind {
	case "usage":
		return writeUsage(w, *seed, *participants, *days)
	case "netradar":
		return writeNetRadar(w, *seed, *samples)
	default:
		return fmt.Errorf("unknown kind %q (usage|netradar)", *kind)
	}
}

func writeUsage(w io.Writer, seed int64, participants, days int) error {
	cfg := workload.DefaultUsageStudy()
	cfg.Participants = participants
	cfg.Days = days
	events, err := workload.SynthesizeUsage(sim.NewRNG(seed).Stream("usage"), sim.Epoch, cfg)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "participant"}); err != nil {
		return err
	}
	for _, e := range events {
		if err := cw.Write([]string{e.At.Format(time.RFC3339Nano), strconv.Itoa(e.Participant)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeNetRadar(w io.Writer, seed int64, samples int) error {
	ops, err := netsim.DefaultOperators()
	if err != nil {
		return err
	}
	data, err := netsim.GenerateDataset(sim.NewRNG(seed).Stream("netradar"), ops, sim.Epoch, samples)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"timestamp", "operator", "tech", "rtt_ms"}); err != nil {
		return err
	}
	for _, s := range data {
		if err := cw.Write([]string{
			s.At.Format(time.RFC3339Nano),
			s.Operator,
			s.Tech.String(),
			strconv.FormatFloat(float64(s.RTT)/float64(time.Millisecond), 'f', 3, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
