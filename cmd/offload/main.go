// Command offload is the mobile-client CLI: it generates one task state
// from the pool, ships it to a running sdnd front-end, and prints the
// result with the paper's timing decomposition.
//
// Usage:
//
//	offload -frontend http://127.0.0.1:9100 -task minimax -size 8 -group 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "offload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("offload", flag.ContinueOnError)
	frontend := fs.String("frontend", "http://127.0.0.1:9100", "sdnd base URL")
	taskName := fs.String("task", "minimax", "pool task to offload")
	size := fs.Int("size", 8, "task size parameter")
	group := fs.Int("group", 1, "requested acceleration group")
	user := fs.Int("user", 1, "user id")
	battery := fs.Float64("battery", 1.0, "battery level [0,1]")
	seed := fs.Int64("seed", 1, "input generation seed")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pool := tasks.DefaultPool()
	task, err := pool.ByName(*taskName)
	if err != nil {
		return err
	}
	state, err := task.Generate(sim.NewRNG(*seed).Stream("offload"), *size)
	if err != nil {
		return err
	}
	client := rpc.NewClient(*frontend)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	resp, err := client.Offload(ctx, rpc.OffloadRequest{
		UserID:       *user,
		Group:        *group,
		BatteryLevel: *battery,
		State:        state,
	})
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	fmt.Printf("task      : %s (size %d)\n", *taskName, *size)
	fmt.Printf("server    : %s (group %d)\n", resp.Server, resp.Group)
	fmt.Printf("result    : %s (%d ops)\n", resp.Result.Data, resp.Result.Ops)
	fmt.Printf("Tresponse : %.1f ms (client-observed)\n", float64(elapsed)/float64(time.Millisecond))
	fmt.Printf("  routing : %.1f ms\n", resp.Timings.RoutingMs)
	fmt.Printf("  T2      : %.1f ms\n", resp.Timings.BackendMs)
	fmt.Printf("  Tcloud  : %.1f ms\n", resp.Timings.CloudMs)
	return nil
}
