// Command autoscaled runs the autoscaling control loop (DESIGN.md §5)
// that closes the paper's predict→allocate→provision cycle against the
// running SDN front-end.
//
// Hermetic mode (default) replays a deterministic doubling-rate sweep
// through a live in-process stack — real front-end, real surrogates,
// real sockets — reconciling per-group pools after every slot, and
// writes the BENCH_autoscale.json report cmd/benchdiff gates on:
//
//	autoscaled -seed 1 -start-rate 16 -steps 4 -slot 500ms \
//	           -group 1=t2.nano:4 -group 2=t2.large:8 \
//	           -slo-p99 2000 -out BENCH_autoscale.json
//
// Two runs with the same -seed produce bit-identical schedule and
// decision digests; only the measured latencies differ.
//
// Serve mode exposes the front-end over HTTP and reconciles on the wall
// clock — aim cmd/loadgen at it to watch the pools follow the load:
//
//	autoscaled -mode serve -listen 127.0.0.1:9103 -slot 5s
//
// In serve mode GET /metrics exposes the front-end's hot-path series
// plus the control loop's pool/warm/slot gauges in Prometheus text
// exposition; -pprof additionally mounts net/http/pprof under
// /debug/pprof/ (off by default — the profiling endpoints expose heap
// contents).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"net/http/pprof"

	"accelcloud/internal/autoscale"
	"accelcloud/internal/loadgen"
	"accelcloud/internal/obs"
	"accelcloud/internal/router"
	"accelcloud/internal/sdn"
	"accelcloud/internal/sim"
	"accelcloud/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "autoscaled:", err)
		os.Exit(1)
	}
}

// groupFlags collects repeated -group g=type:capacity[:min] specs.
type groupFlags []autoscale.GroupSpec

func (g *groupFlags) String() string { return fmt.Sprintf("%d groups", len(*g)) }

func (g *groupFlags) Set(v string) error {
	spec, err := autoscale.ParseGroupSpec(v, 0)
	if err != nil {
		return err
	}
	*g = append(*g, spec)
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("autoscaled", flag.ContinueOnError)
	fs.SetOutput(out)
	mode := fs.String("mode", "hermetic", "hermetic (deterministic sweep) or serve (live HTTP front-end)")
	policy := fs.String("policy", "rr", "front-end pick policy: rr|least-inflight|p2c")
	seed := fs.Int64("seed", 1, "root seed; same seed = same schedule and decisions")
	startRate := fs.Float64("start-rate", 16, "sweep: aggregate arrival rate of the first slot (doubles per slot)")
	steps := fs.Int("steps", 4, "sweep: number of rate doublings")
	slot := fs.Duration("slot", 500*time.Millisecond, "provisioning slot length")
	drainSlots := fs.Int("drain-slots", 4, "sweep: empty slots appended so pools scale back down")
	task := fs.String("task", "sieve", "pin every request to one pool task (empty = random)")
	inflight := fs.Int("inflight", 0, "max concurrent in-flight requests per slot (0 = 64)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	cc := fs.Int("cc", 0, "cloud instance cap (0 = the paper's 20)")
	warm := fs.Int("warm", 2, "warm pool size (pre-booted spare surrogates)")
	margin := fs.Int("margin", 1, "scale-down hysteresis: surplus instances required before draining")
	cooldown := fs.Int("cooldown", 1, "quiet slots required after a scale action before draining")
	history := fs.Int("history", 0, "predictor knowledge-base bound in slots (0 = default)")
	sloP99 := fs.Float64("slo-p99", 0, "SLO: p99 latency bound in ms (0 = unchecked)")
	maxErrorRate := fs.Float64("max-error-rate", 0, "SLO: allowed error fraction")
	outPath := fs.String("out", "", "write the JSON report to this path (hermetic mode)")
	listen := fs.String("listen", "127.0.0.1:9103", "serve mode: front-end listen address")
	pprofOn := fs.Bool("pprof", false, "serve mode: mount net/http/pprof under /debug/pprof/")
	var groups groupFlags
	fs.Var(&groups, "group", "g=type:capacity managed group (repeatable; default 1=t2.nano:4, 2=t2.large:8)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(groups) == 0 {
		groups = groupFlags{
			{Group: 1, TypeName: "t2.nano", CostPerHour: 0.0063, Capacity: 4},
			{Group: 2, TypeName: "t2.large", CostPerHour: 0.101, Capacity: 8},
		}
	}
	var slo *loadgen.SLO
	if *sloP99 > 0 {
		slo = &loadgen.SLO{P99Ms: *sloP99, MaxErrorRate: *maxErrorRate}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *mode {
	case "hermetic":
		rep, err := autoscale.RunSweep(ctx, autoscale.SweepConfig{
			Seed:            *seed,
			Policy:          *policy,
			StartHz:         *startRate,
			Steps:           *steps,
			SlotLen:         *slot,
			DrainSlots:      *drainSlots,
			Groups:          groups,
			FixedTask:       *task,
			MaxInFlight:     *inflight,
			Timeout:         *timeout,
			SLO:             slo,
			MaxHistory:      *history,
			CC:              *cc,
			WarmPool:        *warm,
			ScaleDownMargin: *margin,
			CooldownSlots:   *cooldown,
		})
		if err != nil {
			return err
		}
		fmt.Fprint(out, rep.Summary())
		if *outPath != "" {
			if err := rep.WriteFile(*outPath); err != nil {
				return err
			}
			fmt.Fprintf(out, "autoscaled: wrote %s\n", *outPath)
		}
		if rep.SLO != nil && !rep.SLO.Pass {
			return fmt.Errorf("SLO failed: %s", strings.Join(rep.SLO.Violations, "; "))
		}
		return nil
	case "serve":
		return serve(ctx, out, groups, *listen, *slot, serveKnobs{
			cc: *cc, warm: *warm, margin: *margin, cooldown: *cooldown, history: *history,
			seed: *seed, policy: *policy, pprofOn: *pprofOn,
		})
	}
	return fmt.Errorf("unknown mode %q (want hermetic|serve)", *mode)
}

type serveKnobs struct {
	cc, warm, margin, cooldown, history int
	seed                                int64
	policy                              string
	pprofOn                             bool
}

// serve runs the live control loop: the front-end logs every request
// through an async batching sink into the sliding window (the request
// hot path never blocks on trace persistence), and a wall-clock ticker
// flushes the sink and steps the reconciler at each slot boundary.
func serve(ctx context.Context, out io.Writer, groups []autoscale.GroupSpec, listen string, slot time.Duration, k serveKnobs) error {
	numGroups := 0
	for _, g := range groups {
		if g.Group+1 > numGroups {
			numGroups = g.Group + 1
		}
	}
	start := time.Now()
	// The bounded sliding window is the daemon's only request log: a
	// durable unbounded store would grow without limit on a
	// long-running front-end.
	window, err := trace.NewWindow(start, slot, numGroups, 1024)
	if err != nil {
		return err
	}
	async, err := trace.NewAsync(window, 0, slot/10)
	if err != nil {
		return err
	}
	defer func() { _ = async.Close() }()
	pol, err := router.ParsePolicy(k.policy)
	if err != nil {
		return err
	}
	// The metrics registry feeds GET /metrics: the front-end registers
	// its hot-path series, the daemon adds the trace-sink health
	// counters and (below, once the controller exists) the pool gauges.
	metrics := obs.NewRegistry()
	metrics.CounterFunc("accel_trace_dropped_total", "trace records shed by the async sink's full buffer",
		func() float64 { return float64(async.Dropped()) })
	metrics.CounterFunc("accel_trace_sink_errors_total", "trace records the downstream sink failed to append",
		func() float64 { return float64(async.SinkErrors()) })
	fe, err := sdn.New(sdn.WithTrace(async), sdn.WithPolicy(pol), sdn.WithMetrics(metrics))
	if err != nil {
		return err
	}
	ctrl, err := autoscale.New(autoscale.Config{
		FrontEnd:        fe,
		Provisioner:     &autoscale.HermeticProvisioner{},
		Groups:          groups,
		SlotLen:         slot,
		MaxHistory:      k.history,
		CC:              k.cc,
		WarmPool:        k.warm,
		ScaleDownMargin: k.margin,
		CooldownSlots:   k.cooldown,
		RNG:             sim.NewRNG(k.seed),
	})
	if err != nil {
		return err
	}
	defer ctrl.Shutdown()
	if err := ctrl.Prime(ctx); err != nil {
		return err
	}
	metrics.GaugeFunc("accel_autoscale_pool_instances", "provisioned surrogate instances across managed groups",
		func() float64 {
			total := 0
			for _, n := range ctrl.PoolSizes() {
				total += n
			}
			return float64(total)
		})
	metrics.GaugeFunc("accel_autoscale_warm_instances", "pre-booted spare surrogates in the warm pool",
		func() float64 { return float64(ctrl.WarmSize()) })
	metrics.CounterFunc("accel_autoscale_slots_total", "provisioning slots reconciled since start",
		func() float64 { return float64(len(ctrl.Decisions())) })
	mux := http.NewServeMux()
	mux.Handle("/", fe.Handler())
	mux.Handle("/metrics", metrics.Handler())
	if k.pprofOn {
		// Opt-in only: profiling endpoints expose heap contents and must
		// never be on by default.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Addr: listen, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	defer func() { _ = srv.Close() }()
	fmt.Fprintf(out, "autoscaled: front-end on %s, policy %s, slot %v, pools %v, warm %d\n",
		listen, pol.Name(), slot, poolString(ctrl.PoolSizes()), ctrl.WarmSize())

	ticker := time.NewTicker(slot)
	defer ticker.Stop()
	for {
		select {
		case err := <-errCh:
			return err
		case <-ctx.Done():
			fmt.Fprintf(out, "autoscaled: %d slots reconciled, decision digest %s\n",
				len(ctrl.Decisions()), ctrl.Digest())
			return nil
		case now := <-ticker.C:
			// Drain the async sink so the slot about to close contains
			// every record appended before the boundary.
			async.Flush()
			for _, s := range window.Advance(now) {
				dec, err := ctrl.Step(ctx, s)
				if err != nil {
					return err
				}
				fmt.Fprintf(out, "slot %d: observed=%v predicted=%v desired=%v applied=%v warm=%d draining=%d $%.6f\n",
					dec.Slot, dec.Observed, dec.Predicted, dec.Desired, dec.Applied,
					dec.Warm, dec.Draining, dec.CostUSD)
			}
		}
	}
}

// poolString renders pool sizes deterministically.
func poolString(pools map[int]int) string {
	keys := make([]int, 0, len(pools))
	for g := range pools {
		keys = append(keys, g)
	}
	sort.Ints(keys)
	parts := make([]string, 0, len(keys))
	for _, g := range keys {
		parts = append(parts, fmt.Sprintf("g%d=%d", g, pools[g]))
	}
	return strings.Join(parts, " ")
}
