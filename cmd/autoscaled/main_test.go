package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelcloud/internal/autoscale"
)

// quickArgs is a small fast hermetic configuration.
func quickArgs(extra ...string) []string {
	args := []string{
		"-start-rate", "8", "-steps", "2", "-slot", "200ms", "-drain-slots", "2",
		"-group", "1=t2.nano:2",
	}
	return append(args, extra...)
}

func TestRunHermeticWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_autoscale.json")
	var out bytes.Buffer
	if err := run(quickArgs("-seed", "3", "-out", path, "-slo-p99", "60000"), &out); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	rep, err := autoscale.ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.DecisionDigest == "" {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(out.String(), "decisions=fnv1a:") {
		t.Fatalf("summary missing decision digest:\n%s", out.String())
	}
}

func TestRunSameSeedSameDigests(t *testing.T) {
	dir := t.TempDir()
	digests := make([]string, 2)
	for i := range digests {
		path := filepath.Join(dir, "rep.json")
		var out bytes.Buffer
		if err := run(quickArgs("-seed", "11", "-out", path), &out); err != nil {
			t.Fatal(err)
		}
		rep, err := autoscale.ReadReportFile(path)
		if err != nil {
			t.Fatal(err)
		}
		digests[i] = rep.ScheduleDigest + "/" + rep.DecisionDigest
	}
	if digests[0] != digests[1] {
		t.Fatalf("same-seed digests differ: %s vs %s", digests[0], digests[1])
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "nope"}, &out); err == nil {
		t.Fatal("unknown mode should fail")
	}
	if err := run([]string{"-group", "1=t2.nano"}, &out); err == nil {
		t.Fatal("malformed group should fail")
	}
	if err := run([]string{"-group", "1=nosuchtype:4"}, &out); err == nil {
		t.Fatal("unknown instance type should fail")
	}
}
