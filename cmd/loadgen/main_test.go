package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelcloud/internal/loadgen"
)

func TestPrintScheduleDeterministic(t *testing.T) {
	args := []string{"-print-schedule", "-users", "3", "-duration", "2s",
		"-rate", "4", "-seed", "7", "-mode", "interarrival", "-groups", "1,2"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same -seed produced different schedules")
	}
	if !strings.Contains(a.String(), "digest=fnv1a:") {
		t.Fatalf("schedule header missing digest: %q", a.String()[:80])
	}
	lines := strings.Count(a.String(), "\n")
	if lines < 3 {
		t.Fatalf("schedule too short: %d lines", lines)
	}
	// A different seed rerolls the schedule.
	var c bytes.Buffer
	args[9] = "8" // -seed value
	if err := run(args, &c); err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRunHermeticWritesReport(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	err := run([]string{"-frontend", "self", "-users", "2", "-duration", "1s",
		"-rate", "2", "-seed", "3", "-groups", "1,2", "-out", outPath,
		"-max-error-rate", "0"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "hermetic cluster") || !strings.Contains(s, "p99=") {
		t.Fatalf("summary incomplete: %q", s)
	}
	rep, err := loadgen.ReadReportFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 4 || rep.Errors != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mode", "bogus"}, &out); err == nil {
		t.Fatal("bogus mode accepted")
	}
	if err := run([]string{"-groups", "1,x"}, &out); err == nil {
		t.Fatal("bad group list accepted")
	}
	if err := run([]string{"-users", "0", "-print-schedule"}, &out); err == nil {
		t.Fatal("zero users accepted")
	}
}

func TestRunFailsOnUnroutableGroup(t *testing.T) {
	// All traffic aimed at a group the hermetic cluster does not serve:
	// the run must exit non-zero under -max-error-rate 0.
	var out bytes.Buffer
	err := run([]string{"-frontend", "self", "-users", "1", "-duration", "1s",
		"-rate", "1", "-groups", "9", "-self-groups", "1"}, &out)
	if err == nil {
		t.Fatal("run with 100% errors should fail")
	}
}
