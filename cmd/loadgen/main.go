// Command loadgen replays deterministic multi-user request schedules
// against an sdnd front-end and reports latency percentiles, throughput,
// and error rate (the BENCH_loadgen.json schema consumed by
// cmd/benchdiff and the bench-regression CI gate).
//
// Usage:
//
//	loadgen -frontend http://127.0.0.1:9100 -mode concurrent \
//	        -users 16 -rate 5 -duration 10s -seed 1 -out BENCH_loadgen.json
//
//	# Hermetic: boot an in-process front-end + surrogates, no ports:
//	loadgen -frontend self -users 4 -duration 2s
//
//	# Multi-region: route via the geo tier, nearest region first; the
//	# first entry is the home region, later ones absorb spillover and
//	# failover (the report grows per-region latency slices):
//	loadgen -regions eu=http://127.0.0.1:9100,us=http://127.0.0.1:9110 \
//	        -users 8 -duration 5s
//
// Two runs with the same -seed replay identical request schedules
// (same per-request user/task/size/group sequence); -print-schedule
// dumps the schedule for diffing.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"accelcloud/internal/geo"
	"accelcloud/internal/health"
	"accelcloud/internal/loadgen"
	"accelcloud/internal/netsim"
	"accelcloud/internal/sdn"
	"accelcloud/internal/tasks"
	"accelcloud/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// regionSpacingMs is the propagation step charged per -regions
// position: the flag's order is the distance order (nearest first), and
// each later region sits one step further out.
const regionSpacingMs = 80

// parseRegions parses the -regions flag: comma-separated name=url
// pairs, nearest region first.
func parseRegions(s string) ([]geo.Region, error) {
	ops, err := netsim.DefaultOperators()
	if err != nil {
		return nil, err
	}
	var out []geo.Region
	for i, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad region %q (want name=url)", part)
		}
		path, err := netsim.PathTo(ops[0], netsim.TechLTE, float64(i)*regionSpacingMs)
		if err != nil {
			return nil, err
		}
		out = append(out, geo.Region{Name: name, URL: url, Path: path})
	}
	return out, nil
}

// parseCrowds parses the -crowd flag: semicolon-separated events, each
// start:duration:userLo:userHi:multiplier (e.g. "10s:5s:0:1000:4").
func parseCrowds(s string) ([]workload.FlashCrowd, error) {
	if s == "" {
		return nil, nil
	}
	var out []workload.FlashCrowd
	for _, part := range strings.Split(s, ";") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 5 {
			return nil, fmt.Errorf("bad crowd %q (want start:dur:lo:hi:mult)", part)
		}
		start, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bad crowd start %q: %w", fields[0], err)
		}
		dur, err := time.ParseDuration(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bad crowd duration %q: %w", fields[1], err)
		}
		lo, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("bad crowd user lo %q: %w", fields[2], err)
		}
		hi, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("bad crowd user hi %q: %w", fields[3], err)
		}
		mult, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("bad crowd multiplier %q: %w", fields[4], err)
		}
		out = append(out, workload.FlashCrowd{
			Start: start, Duration: dur, UserLo: lo, UserHi: hi, Multiplier: mult,
		})
	}
	return out, nil
}

// parseTaskMix parses the -task-mix flag: comma-separated name=weight
// pairs (e.g. "fibonacci=3,infer-mobilenet=1").
func parseTaskMix(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, ws, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad task-mix entry %q (want name=weight)", part)
		}
		w, err := strconv.ParseFloat(ws, 64)
		if err != nil {
			return nil, fmt.Errorf("bad task-mix weight %q: %w", ws, err)
		}
		out[name] = w
	}
	return out, nil
}

// parseGroups parses a comma-separated group list.
func parseGroups(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		g, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad group %q: %w", part, err)
		}
		out = append(out, g)
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(out)
	frontend := fs.String("frontend", "self", `sdnd base URL, or "self" for an in-process hermetic cluster`)
	regionsFlag := fs.String("regions", "", "comma-separated name=url multi-region front-ends, nearest first (overrides -frontend; first entry is the home region)")
	users := fs.Int("users", 8, "simulated users (sweep mode synthesizes one id per request and ignores this)")
	duration := fs.Duration("duration", 5*time.Second, "nominal run length")
	rate := fs.Float64("rate", 1, "per-user request rate in Hz (sweep: starting aggregate rate)")
	mode := fs.String("mode", "concurrent", "replay discipline: concurrent|interarrival|sweep|scenario")
	seed := fs.Int64("seed", 1, "root seed; same seed = same schedule")
	outPath := fs.String("out", "", "write the JSON report to this path")
	task := fs.String("task", "", "pin every request to one pool task (empty = random)")
	groupsFlag := fs.String("groups", "1", "comma-separated acceleration groups, spread across users")
	inflight := fs.Int("inflight", 0, "max concurrent in-flight requests (0 = mode default)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	sweepSteps := fs.Int("sweep-steps", 3, "rate doublings in sweep mode")
	slotLen := fs.Duration("slot", 0, "bucket open-loop records into per-slot report sections of this length (0 = off)")
	printSchedule := fs.Bool("print-schedule", false, "dump the deterministic schedule instead of running")
	maxErrorRate := fs.Float64("max-error-rate", 1, "exit non-zero when the error rate exceeds this")
	sloP99 := fs.Float64("slo-p99", 0, "SLO: p99 latency bound in ms (0 = unchecked)")
	sloTput := fs.Float64("slo-throughput", 0, "SLO: minimum throughput in rps (0 = unchecked)")
	selfGroups := fs.Int("self-groups", 2, `groups in the "self" hermetic cluster`)
	selfBackends := fs.Int("self-backends", 2, `surrogates per group in the "self" cluster`)
	selfPolicy := fs.String("self-policy", "rr", `pick policy of the "self" cluster front-end: rr|least-inflight|p2c`)
	sessionGap := fs.Duration("session-gap", 0, "scenario: idle gap that starts a new session (0 = 30s)")
	diurnalPeriod := fs.Duration("diurnal-period", 0, "scenario: virtual day length the diurnal curve spans (0 = 24h)")
	blockSize := fs.Int("block", 0, "scenario: users per generation block (0 = 4096)")
	crowdFlag := fs.String("crowd", "", `scenario: flash crowds as start:dur:lo:hi:mult, ";"-separated`)
	taskMixFlag := fs.String("task-mix", "", "scenario: weighted task mix as name=weight pairs, comma-separated")
	inference := fs.Bool("inference", false, "serve and draw from the pool extended with the ML-inference task family")
	spanSample := fs.Int("span-sample", 0, "sample every Nth request as a trace span with per-hop timings (0 = off)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := fs.String("memprofile", "", "write a heap profile to this path on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(out, "loadgen: memprofile:", err)
				return
			}
			defer func() { _ = f.Close() }()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(out, "loadgen: memprofile:", err)
			}
		}()
	}
	m, err := loadgen.ParseMode(*mode)
	if err != nil {
		return err
	}
	groups, err := parseGroups(*groupsFlag)
	if err != nil {
		return err
	}
	crowds, err := parseCrowds(*crowdFlag)
	if err != nil {
		return err
	}
	taskMix, err := parseTaskMix(*taskMixFlag)
	if err != nil {
		return err
	}
	cfg := loadgen.Config{
		Mode:        m,
		Users:       *users,
		Duration:    *duration,
		RateHz:      *rate,
		Seed:        *seed,
		Groups:      groups,
		MaxInFlight: *inflight,
		Timeout:     *timeout,
		FixedTask:   *task,
		SweepSteps:  *sweepSteps,
		SlotLen:     *slotLen,
		SpanSample:  *spanSample,
	}
	var pool *tasks.Pool
	if *inference {
		pool = tasks.InferencePool()
		cfg.Pool = pool
	}
	if m == loadgen.ModeScenario {
		cfg.Scenario = &loadgen.ScenarioSpec{
			DiurnalPeriod: *diurnalPeriod,
			Crowds:        crowds,
			SessionGap:    *sessionGap,
			TaskMix:       taskMix,
			BlockSize:     *blockSize,
		}
	} else if crowds != nil || taskMix != nil || *sessionGap != 0 || *diurnalPeriod != 0 || *blockSize != 0 {
		return fmt.Errorf("-crowd/-task-mix/-session-gap/-diurnal-period/-block require -mode scenario")
	}
	if *sloP99 > 0 || *sloTput > 0 {
		cfg.SLO = &loadgen.SLO{P99Ms: *sloP99, MinThroughputRps: *sloTput, MaxErrorRate: *maxErrorRate}
	}

	if *printSchedule {
		plan, err := loadgen.BuildPlan(cfg)
		if err != nil {
			return err
		}
		fmt.Fprint(out, plan.Describe())
		return nil
	}

	// Install the signal context before the hermetic warmup so an
	// interrupt during surrogate boot cancels the bring-up too.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var report *loadgen.Report
	if *regionsFlag != "" {
		regions, err := parseRegions(*regionsFlag)
		if err != nil {
			return err
		}
		gc, err := geo.New(regions)
		if err != nil {
			return err
		}
		// The monitor fences dead regions out of the preference order so
		// the replay stops paying a connect attempt per call to them.
		mon, err := gc.Monitor(health.RegionMonitorConfig{ProbeInterval: 250 * time.Millisecond})
		if err != nil {
			return err
		}
		go mon.Run(ctx)
		// At least one region must answer before the replay starts; dead
		// regions are tolerated — absorbing them is what failover is for.
		healthy := 0
		for _, r := range regions {
			wctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			err := sdn.WaitHealthy(wctx, r.URL)
			cancel()
			if err != nil {
				fmt.Fprintf(out, "loadgen: region %s unreachable at start: %v\n", r.Name, err)
				continue
			}
			healthy++
		}
		if healthy == 0 {
			return fmt.Errorf("no region in -regions is healthy")
		}
		if report, err = loadgen.RunWith(ctx, gc, cfg); err != nil {
			return err
		}
		stats := gc.Counters()
		fmt.Fprintf(out, "loadgen: geo: home %s, %d spills, %d failovers\n",
			gc.Home(), stats.Spills, stats.Failovers)
	} else {
		baseURL := *frontend
		if baseURL == "self" {
			cluster, err := loadgen.StartClusterContext(ctx, loadgen.ClusterConfig{
				Groups:             *selfGroups,
				SurrogatesPerGroup: *selfBackends,
				Policy:             *selfPolicy,
				Pool:               pool,
			})
			if err != nil {
				return err
			}
			defer cluster.Close()
			baseURL = cluster.URL()
			fmt.Fprintf(out, "loadgen: hermetic cluster: %d groups x %d surrogates, policy %s, at %s\n",
				*selfGroups, *selfBackends, *selfPolicy, baseURL)
		}
		if err := sdn.WaitHealthy(ctx, baseURL); err != nil {
			return err
		}
		if report, err = loadgen.Run(ctx, baseURL, cfg); err != nil {
			return err
		}
	}
	fmt.Fprint(out, report.Summary())
	if *outPath != "" {
		if err := report.WriteFile(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "loadgen: wrote %s\n", *outPath)
	}
	if report.Completed == 0 {
		return fmt.Errorf("no request completed (%d errors)", report.Errors)
	}
	if report.ErrorRate > *maxErrorRate {
		return fmt.Errorf("error rate %.3f exceeds -max-error-rate %.3f", report.ErrorRate, *maxErrorRate)
	}
	if report.SLO != nil && !report.SLO.Pass {
		return fmt.Errorf("SLO failed: %s", strings.Join(report.SLO.Violations, "; "))
	}
	return nil
}
