// Command surrogated runs a Dalvik-x86-like surrogate server: it loads
// the default task pool (the pushed "APKs") and executes offloading
// requests over HTTP.
//
// Usage:
//
//	surrogated -listen 127.0.0.1:9101 -name surrogate-1 -procs 64
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"accelcloud/internal/dalvik"
	"accelcloud/internal/tasks"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "surrogated:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("surrogated", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9101", "listen address")
	name := fs.String("name", "surrogate-1", "server name reported in responses")
	procs := fs.Int("procs", dalvik.DefaultMaxProcs, "max concurrent worker processes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sur, err := dalvik.NewSurrogate(*name, *procs)
	if err != nil {
		return err
	}
	if err := sur.PushPool(tasks.DefaultPool()); err != nil {
		return err
	}
	fmt.Printf("surrogated: %s serving %d task bundles on %s\n",
		*name, len(sur.Installed()), *listen)
	return http.ListenAndServe(*listen, sur.Handler())
}
