// Command surrogated runs a Dalvik-x86-like surrogate server: it loads
// the default task pool (the pushed "APKs") and executes offloading
// requests over HTTP, the binary framed protocol (internal/wire), or
// both.
//
// Usage:
//
//	surrogated -listen 127.0.0.1:9101 -name surrogate-1 -procs 64
//	surrogated -proto both -listen 127.0.0.1:9101 -listen-bin 127.0.0.1:9201
//
// A front-end reaches the binary listener by registering the backend
// as bin://host:port instead of http://host:port.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"accelcloud/internal/dalvik"
	"accelcloud/internal/tasks"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "surrogated:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("surrogated", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9101", "HTTP listen address")
	listenBin := fs.String("listen-bin", "127.0.0.1:9201", "binary framed-protocol listen address")
	proto := fs.String("proto", "http", "served protocol: http|binary|both")
	name := fs.String("name", "surrogate-1", "server name reported in responses")
	procs := fs.Int("procs", dalvik.DefaultMaxProcs, "max concurrent worker processes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *proto != "http" && *proto != "binary" && *proto != "both" {
		return fmt.Errorf("unknown -proto %q (want http|binary|both)", *proto)
	}
	sur, err := dalvik.NewSurrogate(*name, *procs)
	if err != nil {
		return err
	}
	if err := sur.PushPool(tasks.DefaultPool()); err != nil {
		return err
	}
	if *proto == "binary" || *proto == "both" {
		lis, err := net.Listen("tcp", *listenBin)
		if err != nil {
			return err
		}
		srv := sur.BinaryServer()
		if *proto == "binary" {
			fmt.Printf("surrogated: %s serving %d task bundles on bin://%s\n",
				*name, len(sur.Installed()), *listenBin)
			return srv.Serve(lis)
		}
		go func() {
			if err := srv.Serve(lis); err != nil {
				fmt.Fprintln(os.Stderr, "surrogated: binary listener:", err)
				os.Exit(1)
			}
		}()
		fmt.Printf("surrogated: %s also serving bin://%s\n", *name, *listenBin)
	}
	fmt.Printf("surrogated: %s serving %d task bundles on %s\n",
		*name, len(sur.Installed()), *listen)
	return http.ListenAndServe(*listen, sur.Handler())
}
