// Command surrogated runs a Dalvik-x86-like surrogate server: it loads
// the default task pool (the pushed "APKs") and executes offloading
// requests over HTTP, the binary framed protocol (internal/wire), or
// both.
//
// Usage:
//
//	surrogated -listen 127.0.0.1:9101 -name surrogate-1 -procs 64
//	surrogated -proto both -listen 127.0.0.1:9101 -listen-bin 127.0.0.1:9201
//
// A front-end reaches the binary listener by registering the backend
// as bin://host:port instead of http://host:port.
//
// GET /metrics serves the surrogate's execution counters (executed,
// failed, rejected, installed bundles) in Prometheus text exposition;
// -pprof additionally mounts net/http/pprof under /debug/pprof/ (off
// by default — the profiling endpoints expose heap contents).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"net/http/pprof"

	"accelcloud/internal/dalvik"
	"accelcloud/internal/obs"
	"accelcloud/internal/tasks"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "surrogated:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("surrogated", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9101", "HTTP listen address")
	listenBin := fs.String("listen-bin", "127.0.0.1:9201", "binary framed-protocol listen address")
	proto := fs.String("proto", "http", "served protocol: http|binary|both")
	name := fs.String("name", "surrogate-1", "server name reported in responses")
	procs := fs.Int("procs", dalvik.DefaultMaxProcs, "max concurrent worker processes")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the HTTP listener")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *proto != "http" && *proto != "binary" && *proto != "both" {
		return fmt.Errorf("unknown -proto %q (want http|binary|both)", *proto)
	}
	sur, err := dalvik.NewSurrogate(*name, *procs)
	if err != nil {
		return err
	}
	if err := sur.PushPool(tasks.DefaultPool()); err != nil {
		return err
	}
	// Execution counters are mirrored as Prometheus series; the
	// CounterFuncs read the surrogate's own lifetime stats, so the
	// execute path carries no extra bookkeeping.
	metrics := obs.NewRegistry()
	metrics.CounterFunc("accel_surrogate_executed_total", "offloaded states executed to completion",
		func() float64 { return float64(sur.Stats().Executed) })
	metrics.CounterFunc("accel_surrogate_failed_total", "offloaded states whose task returned an error",
		func() float64 { return float64(sur.Stats().Failed) })
	metrics.CounterFunc("accel_surrogate_rejected_total", "offloaded states rejected with all worker slots busy",
		func() float64 { return float64(sur.Stats().Rejected) })
	metrics.GaugeFunc("accel_surrogate_bundles", "task bundles (APKs) pushed and installed",
		func() float64 { return float64(len(sur.Installed())) })
	if *proto == "binary" || *proto == "both" {
		lis, err := net.Listen("tcp", *listenBin)
		if err != nil {
			return err
		}
		srv := sur.BinaryServer()
		if *proto == "binary" {
			fmt.Printf("surrogated: %s serving %d task bundles on bin://%s\n",
				*name, len(sur.Installed()), *listenBin)
			return srv.Serve(lis)
		}
		go func() {
			if err := srv.Serve(lis); err != nil {
				fmt.Fprintln(os.Stderr, "surrogated: binary listener:", err)
				os.Exit(1)
			}
		}()
		fmt.Printf("surrogated: %s also serving bin://%s\n", *name, *listenBin)
	}
	mux := http.NewServeMux()
	mux.Handle("/", sur.Handler())
	mux.Handle("/metrics", metrics.Handler())
	if *pprofOn {
		// Opt-in only: profiling endpoints expose heap contents and must
		// never be on by default.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	fmt.Printf("surrogated: %s serving %d task bundles on %s\n",
		*name, len(sur.Installed()), *listen)
	return http.ListenAndServe(*listen, mux)
}
