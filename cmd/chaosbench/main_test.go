package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelcloud/internal/faults"
)

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-slots", "1"}, &out); err == nil {
		t.Fatal("1 slot should fail")
	}
	if err := run([]string{"-group", "nonsense"}, &out); err == nil {
		t.Fatal("malformed group should fail")
	}
	if err := run([]string{"-group", "1=no-such-type:4"}, &out); err == nil {
		t.Fatal("unknown instance type should fail")
	}
	if err := run([]string{"-policy", "bogus"}, &out); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

// TestRunTinyFaultFreeScenario exercises the full binary path on the
// smallest viable scenario: no faults, two slots, a written report.
func TestRunTinyFaultFreeScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a live in-process stack")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "chaos.json")
	var out bytes.Buffer
	err := run([]string{
		"-seed", "1", "-slots", "2", "-slot", "200ms", "-rate", "20", "-users", "2",
		"-crashes", "0", "-hangs", "0", "-latency-spikes", "0", "-error-bursts", "0",
		"-slownets", "0", "-min-availability", "0.99", "-out", path,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	rep, err := faults.ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Availability < 0.99 {
		t.Fatalf("report = %d requests, availability %.4f", rep.Requests, rep.Availability)
	}
	if !strings.Contains(out.String(), "availability=") {
		t.Fatalf("summary missing: %q", out.String())
	}
}
