// Command chaosbench runs a seeded fault schedule under live load
// through the full resilient stack — front-end, chaos-wrapped
// surrogates, failure detector, self-healing reconciler — and emits
// the BENCH_chaos.json report cmd/benchdiff gates on: availability,
// p99-during-fault, time-to-eject, time-to-repair, and hedge win rate.
//
//	chaosbench -seed 1 -rate 48 -slots 8 -slot 500ms \
//	           -crashes 2 -hangs 1 -latency-spikes 1 -error-bursts 1 -slownets 1 \
//	           -min-availability 0.99 -out BENCH_chaos.json
//
// Two runs with the same -seed inject bit-identical fault timelines
// (fault digest) and produce bit-identical repair decisions (decision
// digest) at any concurrency; only measured latencies differ.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"accelcloud/internal/autoscale"
	"accelcloud/internal/faults"
	"accelcloud/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		os.Exit(1)
	}
}

// groupFlags collects repeated -group g=type:capacity[:min] specs,
// flooring min at 2: resilience needs somewhere to shift traffic.
type groupFlags []autoscale.GroupSpec

func (g *groupFlags) String() string { return fmt.Sprintf("%d groups", len(*g)) }

func (g *groupFlags) Set(v string) error {
	spec, err := autoscale.ParseGroupSpec(v, 2)
	if err != nil {
		return err
	}
	*g = append(*g, spec)
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("chaosbench", flag.ContinueOnError)
	fs.SetOutput(out)
	seed := fs.Int64("seed", 1, "root seed; same seed = same fault timeline and repair decisions")
	rate := fs.Float64("rate", 48, "aggregate arrival rate in Hz")
	users := fs.Int("users", 8, "simulated devices the rate is spread over")
	slots := fs.Int("slots", 8, "run length in provisioning slots")
	slot := fs.Duration("slot", 500*time.Millisecond, "provisioning slot length")
	policy := fs.String("policy", "rr", "front-end pick policy: rr|least-inflight|p2c")
	task := fs.String("task", "sieve", "pin every request to one pool task (empty = random)")
	crashes := fs.Int("crashes", 2, "scheduled surrogate crashes (listener hard-kill)")
	hangs := fs.Int("hangs", 1, "scheduled surrogate hangs (accept, never answer)")
	latencySpikes := fs.Int("latency-spikes", 1, "scheduled latency-spike faults")
	errorBursts := fs.Int("error-bursts", 1, "scheduled error-burst faults")
	slownets := fs.Int("slownets", 1, "scheduled slow-network faults (netsim RTT inflation)")
	inflight := fs.Int("inflight", 0, "max concurrent in-flight requests (0 = 64)")
	reqTimeout := fs.Duration("timeout", 2*time.Second, "client budget per request, retries and hedges included")
	backendTimeout := fs.Duration("backend-timeout", 500*time.Millisecond, "front-end -> surrogate hop deadline")
	retries := fs.Int("retries", 3, "client attempt budget (1 disables retries)")
	hedge := fs.Duration("hedge", 250*time.Millisecond, "hedged second request delay (<0 disables)")
	probeInterval := fs.Duration("probe-interval", 25*time.Millisecond, "failure-detector heartbeat period")
	probeTimeout := fs.Duration("probe-timeout", 250*time.Millisecond, "heartbeat deadline")
	probeFail := fs.Int("probe-fail", 2, "consecutive failed probes before ejection")
	passiveErrors := fs.Int("passive-errors", 4, "consecutive data-path errors before passive ejection")
	latencyLimit := fs.Float64("latency-limit", 0, "passive ejection latency quantile limit in ms (0 = off)")
	warm := fs.Int("warm", 2, "warm pool size repairs draw from")
	spanSample := fs.Int("span-sample", 0, "sample every Nth request as a trace span with per-hop timings (0 = off)")
	minAvailability := fs.Float64("min-availability", 0, "fail the run below this availability (0 = unchecked)")
	sloP99 := fs.Float64("slo-p99", 0, "SLO: p99 latency bound in ms (0 = unchecked)")
	maxErrorRate := fs.Float64("max-error-rate", 0, "SLO: allowed error fraction")
	outPath := fs.String("out", "", "write the JSON report to this path")
	var groups groupFlags
	fs.Var(&groups, "group", "g=type:capacity[:min] managed group (repeatable; default 1=t2.nano:8:2, 2=t2.large:8:2)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(groups) == 0 {
		groups = groupFlags{
			{Group: 1, TypeName: "t2.nano", CostPerHour: 0.0063, Capacity: 8, Min: 2},
			{Group: 2, TypeName: "t2.large", CostPerHour: 0.101, Capacity: 8, Min: 2},
		}
	}
	var slo *loadgen.SLO
	if *sloP99 > 0 {
		slo = &loadgen.SLO{P99Ms: *sloP99, MaxErrorRate: *maxErrorRate}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := faults.Run(ctx, faults.Config{
		Seed:           *seed,
		RateHz:         *rate,
		Users:          *users,
		Slots:          *slots,
		SlotLen:        *slot,
		Groups:         groups,
		Policy:         *policy,
		FixedTask:      *task,
		Crashes:        *crashes,
		Hangs:          *hangs,
		LatencySpikes:  *latencySpikes,
		ErrorBursts:    *errorBursts,
		SlowNets:       *slownets,
		MaxInFlight:    *inflight,
		RequestTimeout: *reqTimeout,
		BackendTimeout: *backendTimeout,
		RetryAttempts:  *retries,
		HedgeDelay:     *hedge,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		FailThreshold:  *probeFail,
		PassiveErrors:  *passiveErrors,
		LatencyLimitMs: *latencyLimit,
		WarmPool:       *warm,
		SpanSample:     *spanSample,
		SLO:            slo,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Summary())
	if *outPath != "" {
		if err := rep.WriteFile(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "chaosbench: wrote %s\n", *outPath)
	}
	if *minAvailability > 0 && rep.Availability < *minAvailability {
		return fmt.Errorf("availability %.4f below required %.4f", rep.Availability, *minAvailability)
	}
	if rep.SLO != nil && !rep.SLO.Pass {
		return fmt.Errorf("SLO failed: %s", strings.Join(rep.SLO.Violations, "; "))
	}
	return nil
}
