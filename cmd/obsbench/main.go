// Command obsbench measures the observability layer against hermetic
// clusters: the instrumentation-overhead A/B (the same closed-loop
// workload with metrics off and on), the zero-allocation guards on the
// metric hot paths, and the deterministic span-sampling plan.
//
// Usage:
//
//	obsbench -requests 400 -workers 16 -out BENCH_obs.json
//
// The gated columns (cmd/benchdiff vs BENCH_obs_baseline.json) are the
// on/off p99 overhead ratio (hard ceiling), the three allocs-per-op
// guards (exactly zero), the scraped series count, and the exact span
// plan — planned count and fnv1a ID digest — which is a pure function
// of the seed. The raw p99 columns are machine-dependent context.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"accelcloud/internal/obsbench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obsbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("obsbench", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "RNG seed for the deterministic task and span streams")
	requests := fs.Int("requests", 400, "measured requests per A/B arm")
	workers := fs.Int("workers", 16, "closed-loop client concurrency")
	spanSample := fs.Int("span-sample", 4, "1/N span sampling rate of the determinism scenario")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client timeout")
	outPath := fs.String("out", "BENCH_obs.json", "write the JSON report here (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := obsbench.Run(context.Background(), obsbench.Config{
		Seed:       *seed,
		Requests:   *requests,
		Workers:    *workers,
		SpanSample: *spanSample,
		Timeout:    *timeout,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Summary())
	if *outPath != "" {
		if err := rep.WriteFile(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}
