package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelcloud/internal/obsbench"
)

func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_obs.json")
	var buf bytes.Buffer
	if err := run([]string{"-requests", "40", "-workers", "8", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"overhead A/B", "zero-alloc guards", "spans", "wrote"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	rep, err := obsbench.ReadReportFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OverheadRatio <= 0 || rep.SpansPlanned == 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-requests", "nope"}, &buf); err == nil {
		t.Fatal("bad flag should fail")
	}
}
