// Command accelsim regenerates the paper's evaluation figures
// (Fig 4–11) and the ablation studies on the simulated testbed.
//
// Usage:
//
//	accelsim -fig all                 # every figure, quick scale
//	accelsim -fig 9 -scale full       # one figure at paper scale
//	accelsim -fig ablations           # the ablation studies + CaaS pricing
//	accelsim -fig 11 -tsv             # machine-readable output
//	accelsim -parallel 0 -timing      # all cores, per-experiment timing
//
// Output is bit-identical at every -parallel value (including 1): the
// engine assigns each experiment — and each shard of their inner loops —
// a deterministic RNG substream that depends only on the seed and the
// shard's identity, never on scheduling.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"accelcloud/internal/experiments"
	"accelcloud/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "accelsim:", err)
		os.Exit(1)
	}
}

// figAliases maps the CLI's short figure names to registry experiments.
// Numeric aliases are derived from the registry so a new figN experiment
// is reachable without touching this file; "ablations" keeps its
// historical meaning of "every §VII study", including CaaS pricing.
var figAliases = func() map[string][]string {
	aliases := map[string][]string{
		"all": nil, // resolved to the full registry
	}
	for _, name := range experiments.ExperimentNames() {
		aliases[name] = []string{name}
		if n := strings.TrimPrefix(name, "fig"); n != name {
			aliases[n] = []string{name}
		}
	}
	aliases["ablations"] = []string{"ablations", "caas"}
	return aliases
}()

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("accelsim", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 4,5,6,7,8,9,10,11, ablations, caas or all")
	scaleName := fs.String("scale", "quick", "experiment scale: quick or full")
	seed := fs.Int64("seed", 1, "root random seed")
	tsv := fs.Bool("tsv", false, "emit tab-separated values instead of aligned tables")
	parallel := fs.Int("parallel", 1, "worker count for the experiment engine (0 = all cores, 1 = serial)")
	timing := fs.Bool("timing", false, "append a per-experiment wall-clock report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		return fmt.Errorf("unknown scale %q (quick|full)", *scaleName)
	}
	scale.Seed = *seed

	var names []string
	for _, f := range strings.Split(*fig, ",") {
		f = strings.TrimSpace(f)
		expanded, ok := figAliases[f]
		if !ok {
			return fmt.Errorf("unknown figure %q (4..11, ablations, caas, all)", f)
		}
		if f == "all" {
			names = experiments.ExperimentNames()
			break
		}
		names = append(names, expanded...)
	}

	workers := sim.Workers(*parallel)
	runner := experiments.Runner{Scale: scale, Workers: workers}
	reports, err := runner.Run(names...)
	if err != nil {
		return err
	}

	emit := func(t experiments.Table) error {
		if *tsv {
			return t.WriteTSV(out)
		}
		_, err := fmt.Fprintln(out, t.String())
		return err
	}
	for _, rep := range reports {
		if rep.Err != nil {
			return fmt.Errorf("%s: %w", rep.Name, rep.Err)
		}
		for _, t := range rep.Artifact.Tables {
			if err := emit(t); err != nil {
				return err
			}
		}
		for _, note := range rep.Artifact.Notes {
			if _, err := fmt.Fprintln(out, note); err != nil {
				return err
			}
		}
		if len(rep.Artifact.Notes) > 0 {
			if _, err := fmt.Fprintln(out); err != nil {
				return err
			}
		}
	}
	if *timing {
		if err := emit(experiments.TimingTable(reports, workers)); err != nil {
			return err
		}
	}
	return nil
}
