// Command accelsim regenerates the paper's evaluation figures
// (Fig 4–11) and the ablation studies on the simulated testbed.
//
// Usage:
//
//	accelsim -fig all            # every figure, quick scale
//	accelsim -fig 9 -scale full  # one figure at paper scale
//	accelsim -fig ablations      # the three ablation studies
//	accelsim -fig 11 -tsv        # machine-readable output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"accelcloud/internal/experiments"
	"accelcloud/internal/netsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "accelsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("accelsim", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 4,5,6,7,8,9,10,11, ablations or all")
	scaleName := fs.String("scale", "quick", "experiment scale: quick or full")
	seed := fs.Int64("seed", 1, "root random seed")
	tsv := fs.Bool("tsv", false, "emit tab-separated values instead of aligned tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		return fmt.Errorf("unknown scale %q (quick|full)", *scaleName)
	}
	scale.Seed = *seed

	emit := func(t experiments.Table) error {
		if *tsv {
			return t.WriteTSV(out)
		}
		_, err := fmt.Fprintln(out, t.String())
		return err
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	if all || want["4"] {
		r, err := experiments.Fig4(scale)
		if err != nil {
			return err
		}
		if err := emit(r.Table()); err != nil {
			return err
		}
		for _, l := range r.Grouping.Levels {
			fmt.Fprintf(out, "# level %d: %v (solo %.1f ms, capacity %d users)\n",
				l.Index, l.Types, l.SoloMs, l.Capacity)
		}
		fmt.Fprintln(out)
	}
	if all || want["5"] {
		r, err := experiments.Fig5(scale)
		if err != nil {
			return err
		}
		if err := emit(r.Table()); err != nil {
			return err
		}
	}
	if all || want["6"] {
		r, err := experiments.Fig6(scale)
		if err != nil {
			return err
		}
		if err := emit(r.Table()); err != nil {
			return err
		}
	}
	if all || want["7"] {
		r, err := experiments.Fig7(scale)
		if err != nil {
			return err
		}
		if err := emit(r.ComponentsTable()); err != nil {
			return err
		}
		if err := emit(r.SDTable()); err != nil {
			return err
		}
	}
	if all || want["8"] {
		r, err := experiments.Fig8(scale)
		if err != nil {
			return err
		}
		if err := emit(r.RoutingTable()); err != nil {
			return err
		}
		if err := emit(r.SweepTable()); err != nil {
			return err
		}
	}
	var fig9 *experiments.Fig9Result
	if all || want["9"] || want["10"] {
		r, err := experiments.Fig9(scale)
		if err != nil {
			return err
		}
		fig9 = &r
	}
	if all || want["9"] {
		if err := emit(fig9.SeriesTable(fig9.Stable, "b (stable user)")); err != nil {
			return err
		}
		if err := emit(fig9.SeriesTable(fig9.Promoted, "c (promoted user)")); err != nil {
			return err
		}
		if err := emit(fig9.GroupMeansTable()); err != nil {
			return err
		}
	}
	if all || want["10"] {
		r, err := experiments.Fig10(scale, fig9)
		if err != nil {
			return err
		}
		if err := emit(r.AccuracyTable()); err != nil {
			return err
		}
		if err := emit(r.HeatTable(25)); err != nil {
			return err
		}
		if err := emit(r.PromotionTable()); err != nil {
			return err
		}
	}
	if all || want["11"] {
		r, err := experiments.Fig11(scale)
		if err != nil {
			return err
		}
		if err := emit(r.SummaryTable()); err != nil {
			return err
		}
		for _, op := range []string{"alpha", "beta", "gamma"} {
			for _, tech := range []netsim.Tech{netsim.Tech3G, netsim.TechLTE} {
				if err := emit(r.HourlyTable(op, tech)); err != nil {
					return err
				}
			}
		}
	}
	if all || want["ablations"] {
		pol, err := experiments.AblationPromotionPolicies(scale)
		if err != nil {
			return err
		}
		if err := emit(experiments.PoliciesTable(pol)); err != nil {
			return err
		}
		pred, err := experiments.AblationPredictors(scale)
		if err != nil {
			return err
		}
		if err := emit(experiments.PredictorsTable(pred)); err != nil {
			return err
		}
		alloc, err := experiments.AblationAllocators(scale)
		if err != nil {
			return err
		}
		if err := emit(experiments.AllocatorsTable(alloc)); err != nil {
			return err
		}
		par, err := experiments.AblationParallelism(scale)
		if err != nil {
			return err
		}
		if err := emit(experiments.ParallelismTable(par)); err != nil {
			return err
		}
		caas, err := experiments.CaaSPricing(4)
		if err != nil {
			return err
		}
		if err := emit(experiments.CaaSTable(caas)); err != nil {
			return err
		}
	}
	return nil
}
