package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFig5(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Fig 5") || !strings.Contains(s, "accel3_ms") {
		t.Fatalf("output missing Fig 5 table: %q", s[:min(200, len(s))])
	}
}

func TestRunFig11TSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "11", "-tsv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# Fig 11") || !strings.Contains(s, "\t") {
		t.Fatal("TSV output malformed")
	}
}

func TestRunMultipleFigs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "6,8"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Fig 6") || !strings.Contains(s, "Fig 8a") {
		t.Fatal("combined figure output missing sections")
	}
}

func TestRunUnknownScale(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "galactic"}, &out); err == nil {
		t.Fatal("unknown scale should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// -parallel must not change the rendered output, only the wall clock.
func TestRunParallelOutputMatchesSerial(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := run([]string{"-fig", "11,caas"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "11,caas", "-parallel", "4"}, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatal("-parallel 4 output differs from serial output")
	}
}

func TestRunTimingReport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "caas", "-parallel", "2", "-timing"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Runner timing (2 worker(s))") || !strings.Contains(s, "sum-elapsed") {
		t.Fatalf("timing report missing: %q", s)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "99"}, &out); err == nil {
		t.Fatal("unknown figure should fail")
	}
}

// The historical alias: -fig ablations includes the CaaS pricing table.
func TestRunAblationsIncludesCaaS(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "ablations"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Ablation") || !strings.Contains(s, "CaaS pricing") {
		t.Fatal("ablations output incomplete")
	}
}
