package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFig5(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Fig 5") || !strings.Contains(s, "accel3_ms") {
		t.Fatalf("output missing Fig 5 table: %q", s[:min(200, len(s))])
	}
}

func TestRunFig11TSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "11", "-tsv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# Fig 11") || !strings.Contains(s, "\t") {
		t.Fatal("TSV output malformed")
	}
}

func TestRunMultipleFigs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "6,8"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Fig 6") || !strings.Contains(s, "Fig 8a") {
		t.Fatal("combined figure output missing sections")
	}
}

func TestRunUnknownScale(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "galactic"}, &out); err == nil {
		t.Fatal("unknown scale should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
