// Command rpcbench measures the wire-protocol overhead matrix: the
// same near-zero-cost task replayed as sequential single calls and as
// batched call chains, over JSON/HTTP and over the binary framed
// protocol (internal/wire), each against its own hermetic in-process
// cluster. Because the routing and execution work is identical on both
// sides, the difference is pure protocol cost.
//
// Usage:
//
//	rpcbench -requests 300 -chain 8 -out BENCH_rpc.json
//
// The headline column is the per-request overhead speedup of a device
// that pipelines its call chain into binary batch frames versus one
// issuing sequential JSON calls. Both sides scale with the host, so
// the ratio is far more machine-portable than raw microseconds — that
// is what the CI gate (cmd/benchdiff) compares against
// BENCH_rpc_baseline.json.
package main

import (
	"flag"
	"fmt"
	"os"

	"accelcloud/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rpcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("rpcbench", flag.ContinueOnError)
	requests := fs.Int("requests", 300, "measured requests per matrix cell")
	warmup := fs.Int("warmup", 50, "warmup requests per cell before measuring")
	chain := fs.Int("chain", 8, "batched call-chain length")
	taskSize := fs.Int("task-size", 1, "fibonacci task size (small isolates protocol overhead)")
	outPath := fs.String("out", "BENCH_rpc.json", "write the JSON report here (empty disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := loadgen.RunRPCBench(loadgen.RPCBenchConfig{
		Requests: *requests,
		Warmup:   *warmup,
		ChainLen: *chain,
		TaskSize: *taskSize,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, rep.Summary())
	if *outPath != "" {
		if err := rep.WriteFile(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *outPath)
	}
	return nil
}
