// Command sdnd runs the SDN-accelerator front-end over HTTP, routing
// offloading requests to registered surrogate back-ends by acceleration
// group and logging every request.
//
// Usage:
//
//	sdnd -listen 127.0.0.1:9100 \
//	     -backend 1=http://127.0.0.1:9101 \
//	     -backend 2=bin://127.0.0.1:9201 \
//	     -proto both -listen-bin 127.0.0.1:9103 \
//	     -policy p2c \
//	     -probe 250ms \
//	     -trace /tmp/requests.csv
//
// -proto both additionally serves the binary framed protocol
// (internal/wire) on -listen-bin; clients select it with a
// bin://host:port front-end URL. A bin:// -backend URL makes the
// front-end↔surrogate hop binary too (the surrogate must serve
// -proto binary|both); health probes follow the backend's protocol.
//
// -policy selects the routing pick policy (rr, least-inflight, p2c);
// request logging runs through an async batching sink so the routing
// hot path never blocks on trace persistence. -probe enables the
// failure detector (internal/health): backends failing consecutive
// heartbeats — or bursting errors on the data path — are ejected from
// rotation and reinstated when they recover, so a killed surrogate
// stops blackholing its group within a few probe intervals.
//
// -region names the region this front-end serves in a multi-region
// deployment: /stats reports the region label and a spilled counter of
// calls whose origin stamp names another home region (cross-region
// spillover absorbed here). Devices route across regions with the
// loadgen -regions flag (or internal/geo directly).
//
// GET /metrics serves the front-end's counters, gauges, and latency
// quantiles (request and per-hop) in Prometheus text exposition,
// including the trace-sink shed/error counters; -pprof additionally
// mounts net/http/pprof under /debug/pprof/ (off by default — the
// profiling endpoints expose heap contents).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"net/http/pprof"

	"accelcloud/internal/health"
	"accelcloud/internal/obs"
	"accelcloud/internal/router"
	"accelcloud/internal/sdn"
	"accelcloud/internal/trace"
)

// backendFlags collects repeated -backend group=url[@version] pairs.
// The optional @version suffix labels the backend for the canary pick
// policy ("-canary v2=0.05" routes 5% of picks to @v2 backends).
type backendFlags []struct {
	group   int
	url     string
	version string
}

func (b *backendFlags) String() string { return fmt.Sprintf("%d backends", len(*b)) }

func (b *backendFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("backend %q: want group=url[@version]", v)
	}
	group, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("backend %q: bad group: %w", v, err)
	}
	url, version := parts[1], ""
	// Split the version label off the right so bin://host:port@v2
	// parses; URLs here never carry userinfo.
	if at := strings.LastIndex(url, "@"); at >= 0 {
		url, version = url[:at], url[at+1:]
	}
	*b = append(*b, struct {
		group   int
		url     string
		version string
	}{group, url, version})
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdnd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdnd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9100", "HTTP listen address")
	listenBin := fs.String("listen-bin", "127.0.0.1:9103", "binary framed-protocol listen address")
	proto := fs.String("proto", "http", "client-facing protocol: http|binary|both (backends may independently be bin:// URLs)")
	tracePath := fs.String("trace", "", "write the request log as CSV to this path on shutdown")
	delay := fs.Duration("overhead", 0, "artificial routing delay (e.g. 150ms to mimic the paper)")
	policyName := fs.String("policy", "rr", "pick policy: rr|least-inflight|p2c")
	probe := fs.Duration("probe", 0, "failure-detector heartbeat period (0 disables health probing)")
	probeTimeout := fs.Duration("probe-timeout", 0, "heartbeat deadline (0 = probe period)")
	probeFail := fs.Int("probe-fail", 2, "consecutive failed probes before ejection")
	probeSucc := fs.Int("probe-succ", 2, "consecutive clean probes before reinstatement")
	passiveErrors := fs.Int("passive-errors", 5, "consecutive data-path errors before passive ejection")
	backendTimeout := fs.Duration("backend-timeout", 0, "surrogate hop deadline (0 = rpc default 30s)")
	queueLimit := fs.Int("queue-limit", 0, "per-backend concurrency limit (0 disables admission queues)")
	queueDepth := fs.Int("queue-depth", 0, "per-backend admission queue depth (0 = default 64; needs -queue-limit)")
	maxBatch := fs.Int("max-batch", 0, "coalesce up to this many queued same-method calls per dispatch (needs -queue-limit)")
	linger := fs.Duration("linger", 0, "max wait to fill a batch (0 = default 2ms; needs -max-batch)")
	coldAfter := fs.Duration("cold-after", 0, "park idle backends in the cold pool after this long (0 disables scale-to-zero)")
	coldStart := fs.Duration("cold-start", 0, "simulated activation latency charged to the first request hitting a cold backend")
	canary := fs.String("canary", "", "canary split version=weight (e.g. v2=0.05); shorthand for -policy canary:version=weight")
	region := fs.String("region", "", "region name this front-end serves (labels /stats and counts spilled-over calls)")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the HTTP listener")
	var backends backendFlags
	fs.Var(&backends, "backend", "group=url[@version] surrogate registration (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(backends) == 0 {
		return fmt.Errorf("at least one -backend group=url is required")
	}
	if *proto != "http" && *proto != "binary" && *proto != "both" {
		return fmt.Errorf("unknown -proto %q (want http|binary|both)", *proto)
	}
	if *canary != "" {
		if *policyName != "rr" {
			return fmt.Errorf("-canary and -policy are mutually exclusive")
		}
		*policyName = router.PolicyCanaryPrefix + *canary
	}
	policy, err := router.ParsePolicy(*policyName)
	if err != nil {
		return err
	}
	store := trace.NewStore()
	// The durable log hangs off an async batching sink, so appends on
	// the request path are a channel send, not a mutex'd slice append.
	async, err := trace.NewAsync(store, 0, 0)
	if err != nil {
		return err
	}
	// The observer is bound after the health manager exists; the ref
	// breaks the front-end↔manager construction cycle.
	var obsRef sdn.ObserverRef
	// The metrics registry feeds GET /metrics; the front-end registers
	// its hot-path series, the daemon adds the trace-sink health gauges.
	metrics := obs.NewRegistry()
	metrics.CounterFunc("accel_trace_dropped_total", "trace records shed by the async sink's full buffer",
		func() float64 { return float64(async.Dropped()) })
	metrics.CounterFunc("accel_trace_sink_errors_total", "trace records the downstream sink failed to append",
		func() float64 { return float64(async.SinkErrors()) })
	opts := []sdn.Option{
		sdn.WithTrace(async),
		sdn.WithRouteDelay(*delay),
		sdn.WithPolicy(policy),
		sdn.WithObserver(obsRef.Observe),
		sdn.WithMetrics(metrics),
	}
	if *backendTimeout > 0 {
		opts = append(opts, sdn.WithBackendTimeout(*backendTimeout))
	}
	if *queueLimit > 0 {
		opts = append(opts, sdn.WithQueue(*queueLimit, *queueDepth))
	}
	if *maxBatch > 1 {
		opts = append(opts, sdn.WithBatching(*maxBatch, *linger))
	}
	if *coldAfter > 0 {
		opts = append(opts, sdn.WithColdPool(*coldAfter, *coldStart))
	}
	if *region != "" {
		opts = append(opts, sdn.WithRegion(*region))
	}
	fe, err := sdn.New(opts...)
	if err != nil {
		return err
	}
	for _, b := range backends {
		if err := fe.RegisterVersion(b.group, b.url, b.version); err != nil {
			return err
		}
	}
	probing := ""
	hctx, hcancel := context.WithCancel(context.Background())
	defer hcancel()
	if *probe > 0 {
		mgr, err := health.NewManager(health.Config{
			CP:            fe,
			ProbeInterval: *probe,
			ProbeTimeout:  *probeTimeout,
			FailThreshold: *probeFail,
			SuccThreshold: *probeSucc,
			PassiveErrors: *passiveErrors,
		})
		if err != nil {
			return err
		}
		obsRef.Set(mgr.Observe)
		go mgr.Run(hctx)
		probing = fmt.Sprintf(", probing every %v", *probe)
	}
	if *coldAfter > 0 {
		// Janitor: sweep idle backends into the cold pool at a fraction
		// of the idle threshold so parking lags -cold-after by at most
		// one tick.
		go func() {
			tick := *coldAfter / 4
			if tick < 100*time.Millisecond {
				tick = 100 * time.Millisecond
			}
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-hctx.Done():
					return
				case now := <-t.C:
					fe.SweepCold(now)
				}
			}
		}()
	}
	mux := http.NewServeMux()
	mux.Handle("/", fe.Handler())
	mux.Handle("/metrics", metrics.Handler())
	if *pprofOn {
		// Opt-in only: profiling endpoints expose heap contents and must
		// never be on by default.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Addr: *listen, Handler: mux}
	errCh := make(chan error, 1)
	// The HTTP endpoint also carries /stats and /healthz, so it stays up
	// in every mode; -proto binary|both adds the framed listener.
	go func() { errCh <- srv.ListenAndServe() }()
	binNote := ""
	if *proto == "binary" || *proto == "both" {
		binLis, err := net.Listen("tcp", *listenBin)
		if err != nil {
			return err
		}
		binSrv, err := fe.ServeBinary(binLis)
		if err != nil {
			return err
		}
		defer func() { _ = binSrv.Close() }()
		binNote = fmt.Sprintf(", bin://%s", *listenBin)
	}
	fmt.Printf("sdnd: front-end on %s%s policy %s with backends %v%s\n", *listen, binNote, policy.Name(), fe.Backends(), probing)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
	}
	// Drain in-flight handlers before closing the trace sink, so their
	// records land in the store instead of counting as shed.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = srv.Shutdown(shutCtx)
	cancel()
	_ = async.Close()
	if dropped := async.Dropped(); dropped > 0 {
		fmt.Printf("sdnd: warning: %d trace records shed under load\n", dropped)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		if err := trace.WriteCSV(f, store.Snapshot()); err != nil {
			return err
		}
		fmt.Printf("sdnd: wrote %d trace records to %s\n", store.Len(), *tracePath)
	}
	return nil
}
