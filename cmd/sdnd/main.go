// Command sdnd runs the SDN-accelerator front-end over HTTP, routing
// offloading requests to registered surrogate back-ends by acceleration
// group and logging every request.
//
// Usage:
//
//	sdnd -listen 127.0.0.1:9100 \
//	     -backend 1=http://127.0.0.1:9101 \
//	     -backend 2=bin://127.0.0.1:9201 \
//	     -proto both -listen-bin 127.0.0.1:9103 \
//	     -policy p2c \
//	     -probe 250ms \
//	     -trace /tmp/requests.csv
//
// -proto both additionally serves the binary framed protocol
// (internal/wire) on -listen-bin; clients select it with a
// bin://host:port front-end URL. A bin:// -backend URL makes the
// front-end↔surrogate hop binary too (the surrogate must serve
// -proto binary|both); health probes follow the backend's protocol.
//
// -policy selects the routing pick policy (rr, least-inflight, p2c);
// request logging runs through an async batching sink so the routing
// hot path never blocks on trace persistence. -probe enables the
// failure detector (internal/health): backends failing consecutive
// heartbeats — or bursting errors on the data path — are ejected from
// rotation and reinstated when they recover, so a killed surrogate
// stops blackholing its group within a few probe intervals.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"accelcloud/internal/health"
	"accelcloud/internal/router"
	"accelcloud/internal/sdn"
	"accelcloud/internal/trace"
)

// backendFlags collects repeated -backend group=url pairs.
type backendFlags []struct {
	group int
	url   string
}

func (b *backendFlags) String() string { return fmt.Sprintf("%d backends", len(*b)) }

func (b *backendFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("backend %q: want group=url", v)
	}
	group, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("backend %q: bad group: %w", v, err)
	}
	*b = append(*b, struct {
		group int
		url   string
	}{group, parts[1]})
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdnd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdnd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9100", "HTTP listen address")
	listenBin := fs.String("listen-bin", "127.0.0.1:9103", "binary framed-protocol listen address")
	proto := fs.String("proto", "http", "client-facing protocol: http|binary|both (backends may independently be bin:// URLs)")
	tracePath := fs.String("trace", "", "write the request log as CSV to this path on shutdown")
	delay := fs.Duration("overhead", 0, "artificial routing delay (e.g. 150ms to mimic the paper)")
	policyName := fs.String("policy", "rr", "pick policy: rr|least-inflight|p2c")
	probe := fs.Duration("probe", 0, "failure-detector heartbeat period (0 disables health probing)")
	probeTimeout := fs.Duration("probe-timeout", 0, "heartbeat deadline (0 = probe period)")
	probeFail := fs.Int("probe-fail", 2, "consecutive failed probes before ejection")
	probeSucc := fs.Int("probe-succ", 2, "consecutive clean probes before reinstatement")
	passiveErrors := fs.Int("passive-errors", 5, "consecutive data-path errors before passive ejection")
	backendTimeout := fs.Duration("backend-timeout", 0, "surrogate hop deadline (0 = rpc default 30s)")
	var backends backendFlags
	fs.Var(&backends, "backend", "group=url surrogate registration (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(backends) == 0 {
		return fmt.Errorf("at least one -backend group=url is required")
	}
	if *proto != "http" && *proto != "binary" && *proto != "both" {
		return fmt.Errorf("unknown -proto %q (want http|binary|both)", *proto)
	}
	policy, err := router.ParsePolicy(*policyName)
	if err != nil {
		return err
	}
	store := trace.NewStore()
	// The durable log hangs off an async batching sink, so appends on
	// the request path are a channel send, not a mutex'd slice append.
	async, err := trace.NewAsync(store, 0, 0)
	if err != nil {
		return err
	}
	fe, err := sdn.NewFrontEndWithPolicy(async, *delay, policy)
	if err != nil {
		return err
	}
	if *backendTimeout > 0 {
		fe.SetBackendTimeout(*backendTimeout)
	}
	for _, b := range backends {
		if err := fe.Register(b.group, b.url); err != nil {
			return err
		}
	}
	probing := ""
	hctx, hcancel := context.WithCancel(context.Background())
	defer hcancel()
	if *probe > 0 {
		mgr, err := health.NewManager(health.Config{
			CP:            fe,
			ProbeInterval: *probe,
			ProbeTimeout:  *probeTimeout,
			FailThreshold: *probeFail,
			SuccThreshold: *probeSucc,
			PassiveErrors: *passiveErrors,
		})
		if err != nil {
			return err
		}
		fe.SetObserver(mgr.Observe)
		go mgr.Run(hctx)
		probing = fmt.Sprintf(", probing every %v", *probe)
	}
	srv := &http.Server{Addr: *listen, Handler: fe.Handler()}
	errCh := make(chan error, 1)
	// The HTTP endpoint also carries /stats and /healthz, so it stays up
	// in every mode; -proto binary|both adds the framed listener.
	go func() { errCh <- srv.ListenAndServe() }()
	binNote := ""
	if *proto == "binary" || *proto == "both" {
		binLis, err := net.Listen("tcp", *listenBin)
		if err != nil {
			return err
		}
		binSrv, err := fe.ServeBinary(binLis)
		if err != nil {
			return err
		}
		defer func() { _ = binSrv.Close() }()
		binNote = fmt.Sprintf(", bin://%s", *listenBin)
	}
	fmt.Printf("sdnd: front-end on %s%s policy %s with backends %v%s\n", *listen, binNote, policy.Name(), fe.Backends(), probing)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
	}
	// Drain in-flight handlers before closing the trace sink, so their
	// records land in the store instead of counting as shed.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = srv.Shutdown(shutCtx)
	cancel()
	_ = async.Close()
	if dropped := async.Dropped(); dropped > 0 {
		fmt.Printf("sdnd: warning: %d trace records shed under load\n", dropped)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		if err := trace.WriteCSV(f, store.Snapshot()); err != nil {
			return err
		}
		fmt.Printf("sdnd: wrote %d trace records to %s\n", store.Len(), *tracePath)
	}
	return nil
}
