package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveSimpleMin(t *testing.T) {
	// min x+y st x+2y >= 4, 3x+y >= 6 -> optimum at intersection
	// x=8/5, y=6/5, obj=14/5.
	p := &Problem{
		Objective: []float64{1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 2}, Rel: GE, RHS: 4},
			{Coeffs: []float64{3, 1}, Rel: GE, RHS: 6},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 2.8) {
		t.Fatalf("objective = %v, want 2.8", s.Objective)
	}
	if !approx(s.X[0], 1.6) || !approx(s.X[1], 1.2) {
		t.Fatalf("x = %v, want [1.6 1.2]", s.X)
	}
}

func TestSolveMaximizationViaNegation(t *testing.T) {
	// max 3x+5y st x<=4, 2y<=12, 3x+2y<=18 (classic) -> obj 36 at (2,6).
	p := &Problem{
		Objective: []float64{-3, -5},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coeffs: []float64{0, 2}, Rel: LE, RHS: 12},
			{Coeffs: []float64{3, 2}, Rel: LE, RHS: 18},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, -36) {
		t.Fatalf("got %v obj %v, want optimal -36", s.Status, s.Objective)
	}
	if !approx(s.X[0], 2) || !approx(s.X[1], 6) {
		t.Fatalf("x = %v, want [2 6]", s.X)
	}
}

func TestSolveEquality(t *testing.T) {
	// min 2x+3y st x+y = 10, x >= 4 -> x can absorb all: x=10,y=0 obj 20?
	// x>=4 satisfied. Optimal puts everything on the cheaper variable.
	p := &Problem{
		Objective: []float64{2, 3},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 10},
			{Coeffs: []float64{1, 0}, Rel: GE, RHS: 4},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 20) {
		t.Fatalf("got %v obj %v, want optimal 20", s.Status, s.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 1},
			{Coeffs: []float64{1}, Rel: GE, RHS: 2},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x st x >= 0 (implicit): unbounded below.
	p := &Problem{
		Objective: []float64{-1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 1},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// x <= -2 with x >= 0 is infeasible; exercised the row-flip path.
	p := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: -2},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
	// -x <= -2 means x >= 2: feasible, optimum 2.
	p2 := &Problem{
		Objective: []float64{1},
		Constraints: []Constraint{
			{Coeffs: []float64{-1}, Rel: LE, RHS: -2},
		},
	}
	s2, err := Solve(p2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Status != Optimal || !approx(s2.Objective, 2) {
		t.Fatalf("got %v obj %v, want optimal 2", s2.Status, s2.Objective)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex: multiple constraints meet at the optimum. Bland's
	// rule must terminate.
	p := &Problem{
		Objective: []float64{1, 1, 1},
		Constraints: []Constraint{
			{Coeffs: []float64{1, 1, 0}, Rel: GE, RHS: 1},
			{Coeffs: []float64{1, 0, 1}, Rel: GE, RHS: 1},
			{Coeffs: []float64{0, 1, 1}, Rel: GE, RHS: 1},
			{Coeffs: []float64{1, 1, 1}, Rel: GE, RHS: 1.5},
		},
	}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 1.5) {
		t.Fatalf("got %v obj %v, want optimal 1.5", s.Status, s.Objective)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Problem{
		{},
		{Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1, 2}, Rel: LE, RHS: 0}}},
		{Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1}, Rel: 0, RHS: 0}}},
		{Objective: []float64{math.NaN()}},
		{Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{math.Inf(1)}, Rel: LE, RHS: 0}}},
		{Objective: []float64{1}, Constraints: []Constraint{{Coeffs: []float64{1}, Rel: LE, RHS: math.NaN()}}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
}

func TestRelationString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("Relation strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status strings wrong")
	}
	if Relation(9).String() == "" || Status(9).String() == "" {
		t.Fatal("unknown values should still render")
	}
}

// Property: on random feasible covering problems (min c·x, A x >= b with
// positive entries), the simplex solution is feasible and no worse than a
// greedy feasible point.
func TestSolveRandomCoveringProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		m := 1 + r.Intn(4)
		p := &Problem{Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = 0.5 + r.Float64()*4
		}
		for i := 0; i < m; i++ {
			row := Constraint{Coeffs: make([]float64, n), Rel: GE, RHS: 1 + r.Float64()*10}
			for j := range row.Coeffs {
				row.Coeffs[j] = 0.1 + r.Float64()*3
			}
			p.Constraints = append(p.Constraints, row)
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		// Feasibility.
		for _, c := range p.Constraints {
			lhs := 0.0
			for j, a := range c.Coeffs {
				lhs += a * s.X[j]
			}
			if lhs < c.RHS-1e-6 {
				return false
			}
		}
		for _, x := range s.X {
			if x < -1e-9 {
				return false
			}
		}
		// Compare with a trivially feasible point: x_j = max_i b_i /
		// a_ij for the single cheapest variable.
		best := math.Inf(1)
		for j := 0; j < n; j++ {
			need := 0.0
			for _, c := range p.Constraints {
				if v := c.RHS / c.Coeffs[j]; v > need {
					need = v
				}
			}
			if cost := need * p.Objective[j]; cost < best {
				best = cost
			}
		}
		return s.Objective <= best+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
