// Package lp implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize    c·x
//	subject to  A x {<=, >=, =} b
//	            x >= 0
//
// It is the LP backend for the integer allocator (internal/ilp), playing
// the role the paper delegates to R's lpSolveAPI. Bland's rule guarantees
// termination; the solver is exact up to floating-point tolerance.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of one constraint row.
type Relation int

// Constraint senses.
const (
	LE Relation = iota + 1 // A_i·x <= b_i
	GE                     // A_i·x >= b_i
	EQ                     // A_i·x == b_i
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Constraint is one row of the program.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a linear program over n non-negative variables.
type Problem struct {
	// Objective holds the cost coefficients c (minimization).
	Objective []float64
	// Constraints holds the rows of A, their senses and right-hand sides.
	Constraints []Constraint
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-9

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	n := len(p.Objective)
	if n == 0 {
		return errors.New("lp: empty objective")
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != n {
			return fmt.Errorf("lp: constraint %d has %d coeffs, want %d", i, len(c.Coeffs), n)
		}
		switch c.Rel {
		case LE, GE, EQ:
		default:
			return fmt.Errorf("lp: constraint %d has invalid relation %d", i, int(c.Rel))
		}
		for j, v := range c.Coeffs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("lp: constraint %d coeff %d is %v", i, j, v)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("lp: constraint %d rhs is %v", i, c.RHS)
		}
	}
	for j, v := range p.Objective {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lp: objective coeff %d is %v", j, v)
		}
	}
	return nil
}

// Solve runs two-phase simplex on the problem.
func Solve(p *Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.Objective)
	m := len(p.Constraints)

	// Standardize: ensure b >= 0 by flipping rows, add slack/surplus and
	// artificial variables.
	type row struct {
		a   []float64
		b   float64
		rel Relation
	}
	rows := make([]row, m)
	for i, c := range p.Constraints {
		a := make([]float64, n)
		copy(a, c.Coeffs)
		b := c.RHS
		rel := c.Rel
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = row{a: a, b: b, rel: rel}
	}

	// Column layout: [x(0..n-1) | slack/surplus | artificial].
	numSlack := 0
	for _, r := range rows {
		if r.rel != EQ {
			numSlack++
		}
	}
	numArt := 0
	for _, r := range rows {
		if r.rel == GE || r.rel == EQ {
			numArt++
		}
	}
	total := n + numSlack + numArt
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackAt := n
	artAt := n + numSlack
	for i, r := range rows {
		tab[i] = make([]float64, total+1)
		copy(tab[i], r.a)
		tab[i][total] = r.b
		switch r.rel {
		case LE:
			tab[i][slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			tab[i][slackAt] = -1
			slackAt++
			tab[i][artAt] = 1
			basis[i] = artAt
			artAt++
		case EQ:
			tab[i][artAt] = 1
			basis[i] = artAt
			artAt++
		}
	}

	// Phase 1: minimize the sum of artificial variables.
	if numArt > 0 {
		phase1 := make([]float64, total)
		for j := n + numSlack; j < total; j++ {
			phase1[j] = 1
		}
		obj, status := simplex(tab, basis, phase1, total)
		if status == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded here
			// means numerical trouble.
			return Solution{}, errors.New("lp: phase-1 unbounded (numerical failure)")
		}
		if obj > eps {
			return Solution{Status: Infeasible}, nil
		}
		// Drive any remaining artificial variables out of the basis. A row
		// whose artificial cannot be replaced is redundant; its basic
		// artificial stays at value 0 and phase 2 never pivots on it.
		for i, bv := range basis {
			if bv < n+numSlack {
				continue
			}
			for j := 0; j < n+numSlack; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j, total)
					break
				}
			}
		}
	}

	// Phase 2: original objective; artificial columns are forbidden.
	phase2 := make([]float64, total)
	copy(phase2, p.Objective)
	// Block artificial columns from re-entering by making them very
	// expensive is fragile; instead restrict pivoting width to n+numSlack.
	obj, status := simplexRestricted(tab, basis, phase2, total, n+numSlack)
	if status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}
	x := make([]float64, n)
	for i, bv := range basis {
		if bv < n {
			x[bv] = tab[i][total]
		}
	}
	return Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// simplex minimizes obj over the tableau allowing all columns.
func simplex(tab [][]float64, basis []int, obj []float64, total int) (float64, Status) {
	return simplexRestricted(tab, basis, obj, total, total)
}

// simplexRestricted runs primal simplex but only lets columns < width
// enter the basis. Bland's rule (lowest eligible index) prevents cycling.
func simplexRestricted(tab [][]float64, basis []int, obj []float64, total, width int) (float64, Status) {
	m := len(tab)
	// Reduced costs: z_j - c_j computed from the current basis.
	for iter := 0; iter < 10000*(total+m+1); iter++ {
		// Compute y = c_B B^{-1} implicitly via the tableau: reduced
		// cost r_j = c_j - sum_i c_{basis[i]} * tab[i][j].
		entering := -1
		for j := 0; j < width; j++ {
			r := obj[j]
			for i := 0; i < m; i++ {
				if cb := obj[basis[i]]; cb != 0 {
					r -= cb * tab[i][j]
				}
			}
			if r < -eps {
				entering = j // Bland: first eligible index
				break
			}
		}
		if entering == -1 {
			// Optimal: objective = sum c_B * b.
			val := 0.0
			for i := 0; i < m; i++ {
				val += obj[basis[i]] * tab[i][total]
			}
			return val, Optimal
		}
		// Ratio test with Bland tie-break on basis index.
		leaving := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][entering] > eps {
				ratio := tab[i][total] / tab[i][entering]
				if ratio < best-eps || (ratio < best+eps && (leaving == -1 || basis[i] < basis[leaving])) {
					best = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return 0, Unbounded
		}
		pivot(tab, basis, leaving, entering, total)
	}
	return 0, Unbounded // iteration guard tripped; treat as failure
}

// pivot makes column j basic in row i.
func pivot(tab [][]float64, basis []int, i, j, total int) {
	pv := tab[i][j]
	for k := 0; k <= total; k++ {
		tab[i][k] /= pv
	}
	for r := range tab {
		if r == i {
			continue
		}
		f := tab[r][j]
		if f == 0 {
			continue
		}
		for k := 0; k <= total; k++ {
			tab[r][k] -= f * tab[i][k]
		}
	}
	basis[i] = j
}
