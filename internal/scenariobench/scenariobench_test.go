package scenariobench

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestRunSmoke drives a downsized run of all four passes and pins the
// report invariants the diffScenario gates build on: the streaming
// generation pass emits a digest and a non-zero request count, the
// parallel scan partitions the schedule exactly, the shard-invariance
// sweep holds, and the hermetic flash-crowd replay shows the crowd
// outpacing the calm phase — all reproducing across same-seed runs.
func TestRunSmoke(t *testing.T) {
	cfg := Config{
		Seed:            7,
		Users:           4000,
		Duration:        10 * time.Second,
		BaseRateHz:      0.2,
		InvarianceUsers: 500,
		ReplayUsers:     120,
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Requests == 0 || !strings.HasPrefix(rep.StreamDigest, "fnv1a:") {
		t.Fatalf("generation pass empty: %d requests, digest %q", rep.Requests, rep.StreamDigest)
	}
	if rep.PeakHeapMB <= 0 || rep.PeakHeapMB > maxTestHeapMB {
		t.Fatalf("peak heap %.1f MB out of bounds", rep.PeakHeapMB)
	}
	if rep.ParallelRequests != rep.Requests {
		t.Fatalf("parallel scan counted %d requests, generation %d: shards do not partition the schedule",
			rep.ParallelRequests, rep.Requests)
	}
	if !rep.ShardsInvariant || len(rep.ShardDigests) == 0 {
		t.Fatalf("shard invariance failed: %+v", rep.ShardDigests)
	}
	if rep.ReplayRequests == 0 || rep.ReplaySessions == 0 || rep.ReplaySessions > rep.ReplayRequests {
		t.Fatalf("replay pass degenerate: %d requests, %d sessions", rep.ReplayRequests, rep.ReplaySessions)
	}
	if !strings.HasPrefix(rep.ReplayDigest, "fnv1a:") {
		t.Fatalf("replay digest = %q", rep.ReplayDigest)
	}
	if rep.CrowdRateRatio <= 1 {
		t.Fatalf("crowd rate ratio %.2f: the flash crowd never outpaced the calm phase", rep.CrowdRateRatio)
	}
	for _, want := range []string{"generation", "shard invariance", "crowd replay", rep.StreamDigest, rep.ReplayDigest} {
		if !strings.Contains(rep.Summary(), want) {
			t.Fatalf("summary missing %q:\n%s", want, rep.Summary())
		}
	}

	rep2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.StreamDigest != rep.StreamDigest || rep2.Requests != rep.Requests {
		t.Fatalf("generation diverged across same-seed runs: %s/%d vs %s/%d",
			rep2.StreamDigest, rep2.Requests, rep.StreamDigest, rep.Requests)
	}
	if rep2.ReplayDigest != rep.ReplayDigest || rep2.ReplaySessions != rep.ReplaySessions {
		t.Fatalf("replay diverged: %s/%d vs %s/%d",
			rep2.ReplayDigest, rep2.ReplaySessions, rep.ReplayDigest, rep.ReplaySessions)
	}

	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rep) {
		t.Fatalf("round trip mutated the report:\n%+v\n%+v", back, rep)
	}
}

// maxTestHeapMB bounds the downsized generation pass — far below the
// gate's 256 MB ceiling, but enough slack for test-harness overhead.
const maxTestHeapMB = 128.0

// TestSeedChangesDigest pins that the seed actually feeds the schedule.
func TestSeedChangesDigest(t *testing.T) {
	mk := func(seed int64) *Report {
		rep, err := Run(context.Background(), Config{
			Seed: seed, Users: 800, Duration: 5 * time.Second,
			BaseRateHz: 0.3, InvarianceUsers: 200, ReplayUsers: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := mk(1), mk(2)
	if a.StreamDigest == b.StreamDigest {
		t.Fatalf("seeds 1 and 2 share stream digest %s", a.StreamDigest)
	}
	if a.ReplayDigest == b.ReplayDigest {
		t.Fatalf("seeds 1 and 2 share replay digest %s", a.ReplayDigest)
	}
}

// TestReadReportRejectsForeignSchema keeps benchdiff's dispatch honest:
// a scenariobench reader must refuse other benchmark artifacts.
func TestReadReportRejectsForeignSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema":"accelcloud/geobench/v1"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
