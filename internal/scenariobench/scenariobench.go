// Package scenariobench measures the population-scale scenario engine
// (internal/workload's sharded streaming generator plus loadgen's
// scenario replay mode) and emits the BENCH_scenario.json artifact
// cmd/benchdiff gates:
//
//   - Generation: a million-user diurnal schedule with flash crowds is
//     streamed end to end — counted, digested, and heap-sampled, never
//     materialized. The gates are the exact stream digest (the schedule
//     is a pure function of the seed), the exact request count, and a
//     hard peak-heap ceiling: resident memory must stay O(blocks), not
//     O(requests). Generation throughput is gated against the baseline
//     only within one machine class.
//   - Shard invariance: the same scaled-down config is generated at 1,
//     4, and NumCPU shards; all digests must be bit-identical — the
//     merge order is a pure function of the emitted keys, so shard
//     count can never change a schedule.
//   - Flash-crowd replay: a scaled-down scenario with one crowd event
//     replays against a hermetic cluster. The crowd-vs-calm arrival
//     rate ratio is a schedule property and gets a hard floor; the
//     per-phase p99 columns are machine-dependent context.
package scenariobench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"accelcloud/internal/loadgen"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
	"accelcloud/internal/workload"
)

// Schema versions the scenariobench report format for cmd/benchdiff.
const Schema = "accelcloud/scenariobench/v1"

// Config sizes one scenariobench run.
type Config struct {
	// Seed roots every substream.
	Seed int64
	// Users is the generated population (0 selects 1,000,000).
	Users int
	// Duration is the virtual schedule length (0 selects 30s).
	Duration time.Duration
	// BaseRateHz is the per-user base arrival rate (0 selects 0.08).
	BaseRateHz float64
	// InvarianceUsers sizes the shard-invariance sweep (0 selects
	// 50,000) — smaller than Users because the schedule is generated
	// once per shard count.
	InvarianceUsers int
	// ReplayUsers sizes the hermetic flash-crowd replay (0 selects 240).
	ReplayUsers int
}

func (c Config) normalized() Config {
	if c.Users <= 0 {
		c.Users = 1_000_000
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.BaseRateHz <= 0 {
		c.BaseRateHz = 0.08
	}
	if c.InvarianceUsers <= 0 {
		c.InvarianceUsers = 50_000
	}
	if c.ReplayUsers <= 0 {
		c.ReplayUsers = 240
	}
	return c
}

// Report is the BENCH_scenario.json artifact.
type Report struct {
	Schema     string `json:"schema"`
	Seed       int64  `json:"seed"`
	NumCPU     int    `json:"numCPU"`
	GoMaxProcs int    `json:"goMaxProcs"`

	// Generation: the million-user streaming pass.
	Users             int     `json:"users"`
	VirtualSeconds    float64 `json:"virtualSeconds"`
	Requests          int     `json:"requests"`
	GenWallMs         float64 `json:"genWallMs"`
	GenRequestsPerSec float64 `json:"genRequestsPerSec"`
	PeakHeapMB        float64 `json:"peakHeapMB"`
	StreamDigest      string  `json:"streamDigest"`

	// Parallel shard scan: the same schedule partitioned over NumCPU
	// shards, each consumed concurrently. The summed count must equal
	// Requests — the shards partition the schedule exactly.
	ParallelShards         int     `json:"parallelShards"`
	ParallelRequests       int     `json:"parallelRequests"`
	ParallelRequestsPerSec float64 `json:"parallelRequestsPerSec"`

	// Shard invariance: one scaled config generated at each shard
	// count; all digests must match.
	InvarianceUsers int               `json:"invarianceUsers"`
	ShardDigests    map[string]string `json:"shardDigests"`
	ShardsInvariant bool              `json:"shardsInvariant"`

	// Flash-crowd replay against a hermetic cluster.
	ReplayUsers    int     `json:"replayUsers"`
	ReplayRequests int     `json:"replayRequests"`
	ReplaySessions int     `json:"replaySessions"`
	ReplayDigest   string  `json:"replayDigest"`
	CrowdRateRps   float64 `json:"crowdRateRps"`
	CalmRateRps    float64 `json:"calmRateRps"`
	CrowdRateRatio float64 `json:"crowdRateRatio"`
	CrowdP99Ms     float64 `json:"crowdP99Ms"`
	CalmP99Ms      float64 `json:"calmP99Ms"`
}

// genConfig is the million-user generation schedule: the default
// diurnal day compressed into the virtual duration, two overlapping
// flash crowds, the inference-extended pool, and the default block
// size.
func genConfig(cfg Config) workload.ScenarioConfig {
	return workload.ScenarioConfig{
		Users:         cfg.Users,
		Duration:      cfg.Duration,
		BaseRateHz:    cfg.BaseRateHz,
		Pool:          tasks.InferencePool(),
		Sizer:         workload.DefaultSizer(),
		Diurnal:       workload.DefaultDiurnal(),
		DiurnalPeriod: cfg.Duration, // one full virtual day
		Crowds: []workload.FlashCrowd{
			{Start: cfg.Duration / 4, Duration: cfg.Duration / 8, UserLo: 0, UserHi: cfg.Users / 10, Multiplier: 5},
			{Start: cfg.Duration / 2, Duration: cfg.Duration / 10, UserLo: cfg.Users / 2, UserHi: cfg.Users/2 + cfg.Users/20, Multiplier: 8},
		},
	}
}

// Run executes the three scenarios and assembles the report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	rep := &Report{
		Schema:     Schema,
		Seed:       cfg.Seed,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Users:      cfg.Users,
	}
	if err := runGeneration(ctx, cfg, rep); err != nil {
		return nil, fmt.Errorf("scenariobench: generation: %w", err)
	}
	if err := runParallelScan(ctx, cfg, rep); err != nil {
		return nil, fmt.Errorf("scenariobench: parallel scan: %w", err)
	}
	if err := runInvariance(ctx, cfg, rep); err != nil {
		return nil, fmt.Errorf("scenariobench: shard invariance: %w", err)
	}
	if err := runCrowdReplay(ctx, cfg, rep); err != nil {
		return nil, fmt.Errorf("scenariobench: crowd replay: %w", err)
	}
	return rep, nil
}

// heapSampleEvery is how many requests pass between heap size samples
// during the generation scan.
const heapSampleEvery = 1 << 16

// runGeneration streams the full million-user schedule through one
// merged stream, digesting on the fly and sampling the heap.
func runGeneration(ctx context.Context, cfg Config, rep *Report) error {
	root := sim.NewRNG(cfg.Seed).Sub("scenariobench")
	stream, err := workload.NewScenarioStream(root, genConfig(cfg))
	if err != nil {
		return err
	}
	dig := workload.NewDigester(workload.ScenarioStart())
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	peak := ms.HeapAlloc
	start := time.Now()
	var req workload.Request
	for stream.Next(&req) {
		dig.Add(&req)
		if dig.Requests()%heapSampleEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}
	if dig.Requests() == 0 {
		return fmt.Errorf("empty schedule")
	}
	rep.VirtualSeconds = cfg.Duration.Seconds()
	rep.Requests = dig.Requests()
	rep.GenWallMs = float64(wall) / float64(time.Millisecond)
	if wall > 0 {
		rep.GenRequestsPerSec = float64(dig.Requests()) / wall.Seconds()
	}
	rep.PeakHeapMB = float64(peak) / (1 << 20)
	rep.StreamDigest = dig.Sum()
	return nil
}

// runParallelScan partitions the same schedule over NumCPU shards and
// consumes them concurrently — the fan-out path a parallel replay or a
// distributed worker pool would drive. The shard streams are
// time-ordered within themselves; the summed count proves they
// partition the global schedule exactly.
func runParallelScan(ctx context.Context, cfg Config, rep *Report) error {
	shards := runtime.NumCPU()
	root := sim.NewRNG(cfg.Seed).Sub("scenariobench")
	streams, err := workload.ScenarioShards(root, genConfig(cfg), shards)
	if err != nil {
		return err
	}
	counts := make([]int, len(streams))
	start := time.Now()
	var wg sync.WaitGroup
	for i, s := range streams {
		wg.Add(1)
		go func(i int, s workload.Stream) {
			defer wg.Done()
			var req workload.Request
			for s.Next(&req) {
				counts[i]++
			}
		}(i, s)
	}
	wg.Wait()
	wall := time.Since(start)
	if err := ctx.Err(); err != nil {
		return err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	rep.ParallelShards = len(streams)
	rep.ParallelRequests = total
	if wall > 0 {
		rep.ParallelRequestsPerSec = float64(total) / wall.Seconds()
	}
	if total != rep.Requests {
		return fmt.Errorf("parallel shards emitted %d requests, merged stream %d: shards do not partition the schedule", total, rep.Requests)
	}
	return nil
}

// runInvariance generates one scaled-down config at 1, 4, and NumCPU
// shards, merging each sharding back into global order; the digests
// must be bit-identical.
func runInvariance(ctx context.Context, cfg Config, rep *Report) error {
	scaled := genConfig(cfg)
	scaled.Users = cfg.InvarianceUsers
	scaled.Crowds = []workload.FlashCrowd{
		{Start: cfg.Duration / 4, Duration: cfg.Duration / 8, UserLo: 0, UserHi: cfg.InvarianceUsers / 10, Multiplier: 5},
	}
	counts := []int{1, 4, runtime.NumCPU()}
	rep.InvarianceUsers = cfg.InvarianceUsers
	rep.ShardDigests = make(map[string]string, len(counts))
	rep.ShardsInvariant = true
	var first string
	for _, k := range counts {
		if err := ctx.Err(); err != nil {
			return err
		}
		root := sim.NewRNG(cfg.Seed).Sub("scenariobench")
		streams, err := workload.ScenarioShards(root, scaled, k)
		if err != nil {
			return err
		}
		digest, n := workload.StreamDigest(workload.NewMerge(streams...), workload.ScenarioStart())
		if n == 0 {
			return fmt.Errorf("empty schedule at %d shards", k)
		}
		rep.ShardDigests[fmt.Sprintf("%d", k)] = digest
		if first == "" {
			first = digest
		} else if digest != first {
			rep.ShardsInvariant = false
		}
	}
	if !rep.ShardsInvariant {
		return fmt.Errorf("shard digests diverge: %v", rep.ShardDigests)
	}
	return nil
}

// Crowd replay shape: a flat day (no diurnal modulation, so the crowd
// is the only rate change), one crowd covering a third of the
// population for crowdDur in the middle of the run.
const (
	replayDuration = 2 * time.Second
	crowdStart     = 800 * time.Millisecond
	crowdDur       = 400 * time.Millisecond
	crowdMult      = 6
	replaySlotLen  = 200 * time.Millisecond
)

// runCrowdReplay replays a scaled-down crowd scenario against a
// hermetic cluster and splits the per-slot report sections into the
// crowd window and the calm remainder.
func runCrowdReplay(ctx context.Context, cfg Config, rep *Report) error {
	cluster, err := loadgen.StartClusterContext(ctx, loadgen.ClusterConfig{Groups: 2, SurrogatesPerGroup: 2})
	if err != nil {
		return err
	}
	defer cluster.Close()
	flat := make([]float64, 24)
	for i := range flat {
		flat[i] = 1
	}
	lcfg := loadgen.Config{
		Mode:     loadgen.ModeScenario,
		Users:    cfg.ReplayUsers,
		Duration: replayDuration,
		RateHz:   4,
		Seed:     cfg.Seed,
		Groups:   []int{1, 2},
		SlotLen:  replaySlotLen,
		Scenario: &loadgen.ScenarioSpec{
			Diurnal:       flat,
			DiurnalPeriod: replayDuration,
			SessionGap:    100 * time.Millisecond,
			BlockSize:     64,
			Crowds: []workload.FlashCrowd{
				{Start: crowdStart, Duration: crowdDur, UserLo: 0, UserHi: cfg.ReplayUsers / 3, Multiplier: crowdMult},
			},
		},
	}
	lrep, err := loadgen.Run(ctx, cluster.URL(), lcfg)
	if err != nil {
		return err
	}
	rep.ReplayUsers = cfg.ReplayUsers
	rep.ReplayRequests = lrep.Requests
	rep.ReplaySessions = lrep.Sessions
	rep.ReplayDigest = lrep.ScheduleDigest
	crowdReqs, calmReqs := 0, 0
	for _, slot := range lrep.Slots {
		at := time.Duration(slot.StartMs * float64(time.Millisecond))
		inCrowd := at >= crowdStart && at < crowdStart+crowdDur
		if inCrowd {
			crowdReqs += slot.Requests
			if slot.Latency.P99Ms > rep.CrowdP99Ms {
				rep.CrowdP99Ms = slot.Latency.P99Ms
			}
		} else {
			calmReqs += slot.Requests
			if slot.Latency.P99Ms > rep.CalmP99Ms {
				rep.CalmP99Ms = slot.Latency.P99Ms
			}
		}
	}
	if calmReqs == 0 || crowdReqs == 0 {
		return fmt.Errorf("degenerate replay: %d crowd / %d calm requests", crowdReqs, calmReqs)
	}
	rep.CrowdRateRps = float64(crowdReqs) / crowdDur.Seconds()
	rep.CalmRateRps = float64(calmReqs) / (replayDuration - crowdDur).Seconds()
	rep.CrowdRateRatio = rep.CrowdRateRps / rep.CalmRateRps
	return nil
}

// Summary renders the human-readable table.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenariobench: %d users over %.0fs virtual (seed %d)\n", r.Users, r.VirtualSeconds, r.Seed)
	fmt.Fprintf(&b, "  generation: %d requests in %.0f ms (%.0f req/s), peak heap %.1f MB\n",
		r.Requests, r.GenWallMs, r.GenRequestsPerSec, r.PeakHeapMB)
	fmt.Fprintf(&b, "    stream digest %s\n", r.StreamDigest)
	fmt.Fprintf(&b, "  parallel scan: %d shards, %d requests (%.0f req/s)\n",
		r.ParallelShards, r.ParallelRequests, r.ParallelRequestsPerSec)
	fmt.Fprintf(&b, "  shard invariance (%d users): invariant=%v across %d shardings\n",
		r.InvarianceUsers, r.ShardsInvariant, len(r.ShardDigests))
	fmt.Fprintf(&b, "  crowd replay (%d users): %d requests, %d sessions\n",
		r.ReplayUsers, r.ReplayRequests, r.ReplaySessions)
	fmt.Fprintf(&b, "    rate %.0f rps in crowd vs %.0f rps calm (ratio %.1fx)\n",
		r.CrowdRateRps, r.CalmRateRps, r.CrowdRateRatio)
	fmt.Fprintf(&b, "    p99 %.1f ms in crowd vs %.1f ms calm\n", r.CrowdP99Ms, r.CalmP99Ms)
	fmt.Fprintf(&b, "    replay digest %s\n", r.ReplayDigest)
	return b.String()
}

// WriteFile writes the JSON report.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport parses a report and verifies its schema.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("scenariobench: decode report: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("scenariobench: schema %q, want %q", rep.Schema, Schema)
	}
	return &rep, nil
}

// ReadReportFile parses a report file.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	return ReadReport(f)
}
