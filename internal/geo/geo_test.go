package geo

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"accelcloud/internal/loadgen"
	"accelcloud/internal/netsim"
	"accelcloud/internal/router"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
)

// testAccess returns the default operator's access models used across
// the geo tests.
func testAccess(t *testing.T) netsim.Operator {
	t.Helper()
	ops, err := netsim.DefaultOperators()
	if err != nil {
		t.Fatal(err)
	}
	return ops[0]
}

// testState generates one deterministic small task state.
func testState(t *testing.T) tasks.State {
	t.Helper()
	st, err := tasks.MatMul{}.Generate(sim.NewRNG(7).Stream("geo-test"), 8)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSelectorRanksByRTT(t *testing.T) {
	op := testAccess(t)
	mk := func(name string, prop float64) Region {
		path, err := netsim.PathTo(op, netsim.TechLTE, prop)
		if err != nil {
			t.Fatal(err)
		}
		return Region{Name: name, URL: "http://" + name + ".invalid", Path: path}
	}
	c, err := New([]Region{mk("us-east", 90), mk("eu-north", 0), mk("ap-south", 180)})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"eu-north", "us-east", "ap-south"}
	got := c.Order()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if c.Home() != "eu-north" {
		t.Fatalf("home = %q, want eu-north", c.Home())
	}

	// Mid-session model switch: the device roams so us-east becomes the
	// cheapest path; the order re-ranks atomically.
	newPaths := map[string]netsim.Path{}
	for name, prop := range map[string]float64{"us-east": 0, "eu-north": 90, "ap-south": 180} {
		p, err := netsim.PathTo(op, netsim.Tech3G, prop)
		if err != nil {
			t.Fatal(err)
		}
		newPaths[name] = p
	}
	if err := c.UpdatePaths(newPaths); err != nil {
		t.Fatal(err)
	}
	if c.Home() != "us-east" {
		t.Fatalf("home after switch = %q, want us-east", c.Home())
	}
	if err := c.UpdatePaths(map[string]netsim.Path{"mars": newPaths["us-east"]}); err == nil {
		t.Fatal("UpdatePaths accepted an unknown region")
	}
}

// TestSpilloverOnSaturation saturates the home region's single
// admission slot and asserts calls spill to the next-nearest region,
// classified as Spilled, with the absorbing front-end counting them.
func TestSpilloverOnSaturation(t *testing.T) {
	slow := func(id string, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(30 * time.Millisecond)
			h.ServeHTTP(w, r)
		})
	}
	dep, err := StartDeployment(context.Background(), []RegionSpec{
		{Name: "near", PropagationMs: 0, Cluster: loadgen.ClusterConfig{
			QueueLimit: 1, QueueDepth: 1, WrapBackend: slow,
		}},
		{Name: "far", PropagationMs: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	regions, err := dep.Regions(testAccess(t), netsim.TechLTE, false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(regions)
	if err != nil {
		t.Fatal(err)
	}
	st := testState(t)

	const workers, perWorker = 8, 4
	var mu sync.Mutex
	var decisions []Decision
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				_, d, err := c.OffloadRoute(ctx, rpc.OffloadRequest{UserID: user, Group: 1, State: st})
				cancel()
				if err != nil {
					t.Errorf("offload: %v", err)
					return
				}
				mu.Lock()
				decisions = append(decisions, d)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	spilled := 0
	for _, d := range decisions {
		if d.Home != "near" {
			t.Fatalf("home = %q, want near", d.Home)
		}
		if d.Spilled {
			if d.Region != "far" {
				t.Fatalf("spilled decision served by %q, want far", d.Region)
			}
			spilled++
		}
	}
	if spilled == 0 {
		t.Fatal("no call spilled over despite a saturated home region")
	}
	if got := c.Counters().Spills; got != int64(spilled) {
		t.Fatalf("Counters().Spills = %d, want %d", got, spilled)
	}
	if got := dep.FrontEnd("far").Spilled(); got < int64(spilled) {
		t.Fatalf("far front-end counted %d spilled, want >= %d", got, spilled)
	}
}

// TestFailoverOnRegionDown fences the home region and asserts calls
// fail over, classified as Failover — and that an application-level
// error never re-routes.
func TestFailoverOnRegionDown(t *testing.T) {
	dep, err := StartDeployment(context.Background(), []RegionSpec{
		{Name: "near", PropagationMs: 0},
		{Name: "far", PropagationMs: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	regions, err := dep.Regions(testAccess(t), netsim.TechLTE, false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(regions)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Regions().MarkDown("near"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	resp, d, err := c.OffloadRoute(ctx, rpc.OffloadRequest{UserID: 1, Group: 1, State: testState(t)})
	if err != nil {
		t.Fatal(err)
	}
	if d.Region != "far" || !d.Failover || d.Spilled {
		t.Fatalf("decision = %+v, want failover to far", d)
	}
	if resp.Server == "" {
		t.Fatal("response without server")
	}
	if got := c.Counters().Failovers; got != 1 {
		t.Fatalf("Counters().Failovers = %d, want 1", got)
	}

	// A 400 is the device's own problem: one attempt, no re-route.
	_, d, err = c.OffloadRoute(ctx, rpc.OffloadRequest{UserID: 1, Group: 1, State: tasks.State{}})
	if err == nil {
		t.Fatal("invalid request succeeded")
	}
	if d.Attempts != 1 {
		t.Fatalf("invalid request took %d attempts, want 1", d.Attempts)
	}

	// With every region fenced, the call fails with ErrNoRegion.
	if err := c.Regions().MarkDown("far"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.OffloadRoute(ctx, rpc.OffloadRequest{UserID: 1, Group: 1, State: testState(t)}); !errors.Is(err, router.ErrNoRegion) {
		t.Fatalf("all-down error = %v, want ErrNoRegion", err)
	}
}

// TestRTTSimulationChargesPenalty proves the geographic term lands in
// the measured latency: with simulation on, a call to a far region
// takes at least its propagation delay.
func TestRTTSimulationChargesPenalty(t *testing.T) {
	dep, err := StartDeployment(context.Background(), []RegionSpec{
		{Name: "only", PropagationMs: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	regions, err := dep.Regions(testAccess(t), netsim.TechLTE, false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(regions, WithRTTSimulation(42))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, d, err := c.OffloadRoute(context.Background(), rpc.OffloadRequest{UserID: 1, Group: 1, State: testState(t)})
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if d.RTTMs < 40 {
		t.Fatalf("charged RTT %.1f ms < 40 ms propagation", d.RTTMs)
	}
	if wall < 40*time.Millisecond {
		t.Fatalf("wall %v < the 40ms propagation the call must pay", wall)
	}
	if got := c.Counters().PenaltyMs; got < 40 {
		t.Fatalf("PenaltyMs = %.1f, want >= 40", got)
	}
}
