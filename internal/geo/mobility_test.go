package geo

import (
	"context"
	"testing"
	"time"

	"accelcloud/internal/netsim"
)

// mobilityClient builds a client over three regions under alpha/LTE.
func mobilityClient(t *testing.T, ops []netsim.Operator) *Client {
	t.Helper()
	op, err := netsim.OperatorByName(ops, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, prop float64) Region {
		path, err := netsim.PathTo(op, netsim.TechLTE, prop)
		if err != nil {
			t.Fatal(err)
		}
		return Region{Name: name, URL: "http://" + name + ".invalid", Path: path}
	}
	c, err := New([]Region{mk("eu-north", 0), mk("us-east", 90), mk("ap-south", 180)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMobilityApply(t *testing.T) {
	ops, err := netsim.DefaultOperators()
	if err != nil {
		t.Fatal(err)
	}
	c := mobilityClient(t, ops)
	before := c.Paths()

	m, err := NewMobility(c, ops, []MobilityEvent{
		{At: 20 * time.Millisecond, Operator: "beta", Tech: netsim.Tech3G},
		{At: 10 * time.Millisecond, Operator: "gamma", Tech: netsim.TechLTE},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Events sort by offset: gamma/LTE first.
	evs := m.Events()
	if evs[0].Operator != "gamma" || evs[1].Operator != "beta" {
		t.Fatalf("events = %+v", evs)
	}
	if m.Applied() != 0 {
		t.Fatalf("applied = %d before any Apply", m.Applied())
	}

	if err := m.Apply(1); err != nil { // beta/3G
		t.Fatal(err)
	}
	after := c.Paths()
	beta, err := netsim.OperatorByName(ops, "beta")
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range after {
		// The access leg switched to beta's 3G model...
		if p.Model.MeanMs() != beta.RTT[netsim.Tech3G].MeanMs() {
			t.Fatalf("region %s access mean %.1f, want beta/3G %.1f",
				name, p.Model.MeanMs(), beta.RTT[netsim.Tech3G].MeanMs())
		}
		// ...while each region kept its propagation distance.
		if p.PropagationMs != before[name].PropagationMs {
			t.Fatalf("region %s propagation changed %.1f -> %.1f",
				name, before[name].PropagationMs, p.PropagationMs)
		}
	}
	// Propagation still dominates region spacing: order is unchanged.
	if home := c.Home(); home != "eu-north" {
		t.Fatalf("home = %s after switch", home)
	}
	if m.Applied() != 1 {
		t.Fatalf("applied = %d", m.Applied())
	}
	if err := m.Apply(5); err == nil {
		t.Fatal("out-of-range Apply should fail")
	}
}

func TestMobilityRun(t *testing.T) {
	ops, err := netsim.DefaultOperators()
	if err != nil {
		t.Fatal(err)
	}
	c := mobilityClient(t, ops)
	m, err := NewMobility(c, ops, []MobilityEvent{
		{At: time.Millisecond, Operator: "beta", Tech: netsim.TechLTE},
		{At: 2 * time.Millisecond, Operator: "beta", Tech: netsim.Tech3G},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if m.Applied() != 2 {
		t.Fatalf("applied = %d, want 2", m.Applied())
	}

	// A cancelled run stops before applying pending events.
	c2 := mobilityClient(t, ops)
	m2, err := NewMobility(c2, ops, []MobilityEvent{
		{At: time.Hour, Operator: "beta", Tech: netsim.Tech3G},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m2.Run(ctx); err == nil {
		t.Fatal("cancelled run should return the context error")
	}
	if m2.Applied() != 0 {
		t.Fatalf("applied = %d after cancellation", m2.Applied())
	}
}

func TestMobilityValidation(t *testing.T) {
	ops, err := netsim.DefaultOperators()
	if err != nil {
		t.Fatal(err)
	}
	c := mobilityClient(t, ops)
	cases := []struct {
		name   string
		events []MobilityEvent
	}{
		{"empty schedule", nil},
		{"unknown operator", []MobilityEvent{{Operator: "nokia", Tech: netsim.TechLTE}}},
		{"unknown tech", []MobilityEvent{{Operator: "alpha", Tech: netsim.Tech(99)}}},
		{"negative offset", []MobilityEvent{{At: -time.Second, Operator: "alpha", Tech: netsim.TechLTE}}},
	}
	for _, tc := range cases {
		if _, err := NewMobility(c, ops, tc.events); err == nil {
			t.Fatalf("%s should fail", tc.name)
		}
	}
	if _, err := NewMobility(nil, ops, []MobilityEvent{{Operator: "alpha", Tech: netsim.TechLTE}}); err == nil {
		t.Fatal("nil client should fail")
	}
}

func TestParseTech(t *testing.T) {
	good := map[string]netsim.Tech{
		"3g": netsim.Tech3G, "3G": netsim.Tech3G, " lte ": netsim.TechLTE,
		"LTE": netsim.TechLTE, "4g": netsim.TechLTE,
	}
	for in, want := range good {
		got, err := netsim.ParseTech(in)
		if err != nil || got != want {
			t.Fatalf("ParseTech(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "5g", "wifi"} {
		if _, err := netsim.ParseTech(in); err == nil {
			t.Fatalf("ParseTech(%q) should fail", in)
		}
	}
}
