package geo

import (
	"context"
	"testing"

	"accelcloud/internal/loadgen"
	"accelcloud/internal/netsim"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
)

// TestGeoJSONBinaryParity replays one hermetic multi-region schedule —
// including a mid-schedule region fence and recovery — over the JSON
// compat transport and over the binary framed protocol, and asserts the
// geo tier made identical per-request routing decisions: same serving
// region, same spill/failover classification, same attempt counts, and
// equal region digests. The selector and spillover loop live above the
// transport split; this is the proof.
func TestGeoJSONBinaryParity(t *testing.T) {
	// One surrogate per group keeps backend picks deterministic; Binary
	// gives every region both listeners so the SAME deployment serves
	// both replays.
	dep, err := StartDeployment(context.Background(), []RegionSpec{
		{Name: "near", PropagationMs: 0, Cluster: loadgen.ClusterConfig{Groups: 2, Binary: true}},
		{Name: "far", PropagationMs: 80, Cluster: loadgen.ClusterConfig{Groups: 2, Binary: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	op := testAccess(t)

	// The schedule: 24 deterministic requests; the home region is fenced
	// before request 8 and reinstated before request 16, so the replay
	// exercises home-serve, failover, and recovery segments.
	const requests, fenceAt, recoverAt = 24, 8, 16
	type call struct {
		user  int
		group int
		state tasks.State
	}
	gen := sim.NewRNG(31).Stream("geo-parity")
	schedule := make([]call, requests)
	for i := range schedule {
		st, err := tasks.MatMul{}.Generate(gen, 4+gen.Intn(8))
		if err != nil {
			t.Fatal(err)
		}
		schedule[i] = call{user: gen.Intn(4), group: 1 + gen.Intn(2), state: st}
	}

	replay := func(binary bool) []Decision {
		regions, err := dep.Regions(op, netsim.TechLTE, binary)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(regions)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		out := make([]Decision, 0, requests)
		for i, cl := range schedule {
			switch i {
			case fenceAt:
				if err := c.Regions().MarkDown("near"); err != nil {
					t.Fatal(err)
				}
			case recoverAt:
				if err := c.Regions().MarkUp("near"); err != nil {
					t.Fatal(err)
				}
			}
			resp, d, err := c.OffloadRoute(ctx, rpc.OffloadRequest{
				UserID: cl.user, Group: cl.group, State: cl.state,
			})
			if err != nil {
				t.Fatalf("request %d (binary=%v): %v", i, binary, err)
			}
			if resp.Group != cl.group {
				t.Fatalf("request %d (binary=%v): group %d, want %d", i, binary, resp.Group, cl.group)
			}
			out = append(out, d)
		}
		return out
	}

	jsonDecisions := replay(false)
	binDecisions := replay(true)

	for i := range jsonDecisions {
		j, b := jsonDecisions[i], binDecisions[i]
		if j.Region != b.Region || j.Spilled != b.Spilled || j.Failover != b.Failover || j.Attempts != b.Attempts {
			t.Fatalf("request %d routed differently: json=%+v binary=%+v", i, j, b)
		}
	}
	jd, bd := DigestDecisions(jsonDecisions), DigestDecisions(binDecisions)
	if jd != bd {
		t.Fatalf("region digests differ: json=%s binary=%s", jd, bd)
	}
	// The decision sequence is a pure function of (schedule, fence
	// slots); the pinned digest proves both transports reproduce it
	// run over run, not merely match each other.
	const wantDigest = "fnv1a:35b8460548b3a105"
	if jd != wantDigest {
		t.Fatalf("decision digest = %s, want pinned %s", jd, wantDigest)
	}

	// Sanity on the segments: home before the fence, failover during,
	// home again after recovery.
	for i, d := range jsonDecisions {
		switch {
		case i < fenceAt && (d.Region != "near" || d.Failover || d.Spilled):
			t.Fatalf("pre-fence request %d: %+v, want near", i, d)
		case i >= fenceAt && i < recoverAt && (d.Region != "far" || !d.Failover):
			t.Fatalf("fenced request %d: %+v, want failover to far", i, d)
		case i >= recoverAt && d.Region != "near":
			t.Fatalf("post-recovery request %d: %+v, want near", i, d)
		}
	}
}
