package geo

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"accelcloud/internal/health"
	"accelcloud/internal/netsim"
	"accelcloud/internal/obs"
	"accelcloud/internal/router"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
)

// Option configures a Client at construction.
type Option func(*config) error

type config struct {
	rpcOpts []rpc.ClientOption
	simSeed int64
	simOn   bool
	simAt   time.Time
}

// WithClientOptions applies rpc client options (timeout, retry, hedge)
// to every per-region transport client.
func WithClientOptions(opts ...rpc.ClientOption) Option {
	return func(c *config) error {
		c.rpcOpts = append(c.rpcOpts, opts...)
		return nil
	}
}

// WithRTTSimulation makes the client charge a sampled device→region RTT
// before every attempt — the geographic penalty a loopback test rig
// otherwise hides. Draws come from a seeded stream evaluated at the
// simulation epoch, so the RTT sequence is a pure function of the seed.
func WithRTTSimulation(seed int64) Option {
	return func(c *config) error {
		c.simOn = true
		c.simSeed = seed
		c.simAt = sim.Epoch
		return nil
	}
}

// Decision is the routing outcome of one offload call — what the geo
// parity suite compares across transports.
type Decision struct {
	// Region is the region that served the call (or the last one tried).
	Region string `json:"region"`
	// Home is the device's nearest region at decision time.
	Home string `json:"home"`
	// Spilled marks a call served off-home because the home region (or
	// a nearer one) answered with queue-full backpressure.
	Spilled bool `json:"spilled,omitempty"`
	// Failover marks a call served off-home because a nearer region was
	// fenced Down or unreachable.
	Failover bool `json:"failover,omitempty"`
	// Attempts counts the regions tried (1 = served by the first pick).
	Attempts int `json:"attempts"`
	// RTTMs is the simulated device→region round-trip time charged
	// across attempts (0 with simulation off).
	RTTMs float64 `json:"rttMs,omitempty"`
}

// Stats are the client's cross-region counters.
type Stats struct {
	// Spills counts calls served off-home after queue-full backpressure.
	Spills int64
	// Failovers counts calls served off-home after a region was Down or
	// unreachable.
	Failovers int64
	// PenaltyMs accumulates the simulated RTT charged to all calls.
	PenaltyMs float64
}

// Client is the device-side geo router. It holds the region registry,
// the RTT-ranked preference order, and the region-level routing state,
// and re-routes calls across regions above the transport split. Safe
// for concurrent use.
type Client struct {
	regions map[string]Region      // immutable identity: name → URL
	clients map[string]*rpc.Client // per-region transport clients

	rs    *router.Regions
	order atomic.Pointer[[]string] // RTT-ranked preference, nearest first

	mu    sync.Mutex // guards paths across UpdatePaths
	paths map[string]netsim.Path

	simOn bool
	simMu sync.Mutex
	simR  *rand.Rand
	simAt time.Time

	spills    atomic.Int64
	failovers atomic.Int64
	penaltyUs atomic.Int64
}

// New builds a geo client over the given regions. The preference order
// is computed from each region's Path; regions start Up.
func New(regions []Region, opts ...Option) (*Client, error) {
	if len(regions) == 0 {
		return nil, fmt.Errorf("geo: no regions")
	}
	var cfg config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	c := &Client{
		regions: make(map[string]Region, len(regions)),
		clients: make(map[string]*rpc.Client, len(regions)),
		paths:   make(map[string]netsim.Path, len(regions)),
		simOn:   cfg.simOn,
		simAt:   cfg.simAt,
	}
	rs, err := router.NewRegions()
	if err != nil {
		return nil, err
	}
	c.rs = rs
	for _, r := range regions {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.regions[r.Name]; dup {
			return nil, fmt.Errorf("geo: duplicate region %q", r.Name)
		}
		c.regions[r.Name] = r
		c.clients[r.Name] = rpc.NewClient(r.URL, cfg.rpcOpts...)
		c.paths[r.Name] = r.Path
		if err := c.rs.Add(r.Name); err != nil {
			return nil, err
		}
	}
	if cfg.simOn {
		//nolint:gosec // deterministic simulation, not cryptography.
		c.simR = rand.New(rand.NewSource(cfg.simSeed))
	}
	order := rank(c.paths)
	c.order.Store(&order)
	return c, nil
}

// UpdatePaths applies a mid-session access-model switch — the device
// roamed to another operator or dropped from LTE to 3G — by replacing
// the named regions' paths and re-ranking the preference order
// atomically. Calls in flight finish under the old order; the next
// call sees the new one.
func (c *Client) UpdatePaths(paths map[string]netsim.Path) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, p := range paths {
		if _, ok := c.regions[name]; !ok {
			return fmt.Errorf("geo: unknown region %q", name)
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("geo: region %q: %w", name, err)
		}
	}
	for name, p := range paths {
		c.paths[name] = p
	}
	order := rank(c.paths)
	c.order.Store(&order)
	return nil
}

// Paths snapshots the current device→region paths — the base a
// mobility schedule rewrites access legs onto while keeping each
// region's propagation distance.
func (c *Client) Paths() map[string]netsim.Path {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]netsim.Path, len(c.paths))
	for name, p := range c.paths {
		out[name] = p
	}
	return out
}

// Order snapshots the current preference order, nearest first.
func (c *Client) Order() []string {
	o := *c.order.Load()
	out := make([]string, len(o))
	copy(out, o)
	return out
}

// Home is the device's current nearest region.
func (c *Client) Home() string { return (*c.order.Load())[0] }

// Regions exposes the region-level routing state — the control plane a
// RegionMonitor (or a chaos harness) fences regions through.
func (c *Client) Regions() *router.Regions { return c.rs }

// ProbeTargets maps region name → front-end URL, the heartbeat set for
// a health.RegionMonitor.
func (c *Client) ProbeTargets() map[string]string {
	out := make(map[string]string, len(c.regions))
	for name, r := range c.regions {
		out[name] = r.URL
	}
	return out
}

// Monitor builds a region health monitor wired to this client: it
// heartbeats every region's front-end and drives the MarkDown/MarkUp
// fence on the client's routing state.
func (c *Client) Monitor(cfg health.RegionMonitorConfig) (*health.RegionMonitor, error) {
	cfg.Control = c.rs
	if cfg.Regions == nil {
		cfg.Regions = c.ProbeTargets()
	}
	return health.NewRegionMonitor(cfg)
}

// Counters snapshots the cross-region counters.
func (c *Client) Counters() Stats {
	return Stats{
		Spills:    c.spills.Load(),
		Failovers: c.failovers.Load(),
		PenaltyMs: float64(c.penaltyUs.Load()) / 1e3,
	}
}

// RegisterMetrics exports the cross-region counters through an obs
// registry as scrape-time funcs — the routing hot path keeps its
// existing atomics and pays nothing extra.
func (c *Client) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("accel_geo_spills_total", "offloads served off-home after queue-full backpressure",
		func() float64 { return float64(c.spills.Load()) })
	reg.CounterFunc("accel_geo_failovers_total", "offloads served off-home after region unavailability",
		func() float64 { return float64(c.failovers.Load()) })
	reg.CounterFunc("accel_geo_rtt_penalty_ms_total", "cumulative simulated device-to-region RTT charged",
		func() float64 { return float64(c.penaltyUs.Load()) / 1e3 })
}

// chargeRTT sleeps one sampled device→region RTT and returns it in
// milliseconds (0 with simulation off). The sleep is what lands the
// geographic penalty in the caller's measured latency.
func (c *Client) chargeRTT(ctx context.Context, name string) float64 {
	if !c.simOn {
		return 0
	}
	c.mu.Lock()
	path := c.paths[name]
	c.mu.Unlock()
	c.simMu.Lock()
	d := path.Sample(c.simR, c.simAt)
	c.simMu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	ms := float64(d) / float64(time.Millisecond)
	c.penaltyUs.Add(int64(ms * 1e3))
	return ms
}

// after drops order entries up to and including name.
func after(order []string, name string) []string {
	for i, n := range order {
		if n == name {
			return order[i+1:]
		}
	}
	return nil
}

// OffloadRoute issues one call through the geo tier and reports the
// routing decision alongside the response. The loop walks the RTT
// preference order: PickFirst resolves the nearest Up region (fenced
// regions are skipped — that is failover), queue-full backpressure
// spills to the next region, transport-level failures and 5xx fail
// over likewise, and application-level errors return without
// re-routing. Every attempt is charged its device→region RTT when
// simulation is on.
func (c *Client) OffloadRoute(ctx context.Context, req rpc.OffloadRequest) (rpc.OffloadResponse, Decision, error) {
	order := *c.order.Load()
	home := order[0]
	// Stamp the home region so the absorbing front-end can count the
	// call as spilled-over when it lands off-home.
	req.Origin = home
	d := Decision{Home: home}
	rest := order
	sawQueueFull := false
	var lastErr error
	for len(rest) > 0 {
		pick, err := c.rs.PickFirst(rest)
		if err != nil {
			// Every remaining region is fenced.
			break
		}
		name := pick.Name()
		d.Attempts++
		d.Region = name
		d.RTTMs += c.chargeRTT(ctx, name)
		resp, err := c.clients[name].Offload(ctx, req)
		c.rs.Release(pick)
		if err == nil {
			if resp.Span != nil {
				// A trace-sampled response: record how many regions the
				// selector walked before this answer (1 = first choice),
				// so spillover/failover re-routes show up in the span.
				resp.Span.Hops = d.Attempts
			}
			if name != home {
				// Served off-home: classify by why the home side was
				// left. Backpressure anywhere nearer means spillover;
				// otherwise the nearer regions were Down or unreachable.
				if sawQueueFull {
					d.Spilled = true
					c.spills.Add(1)
				} else {
					d.Failover = true
					c.failovers.Add(1)
				}
			}
			return resp, d, nil
		}
		lastErr = err
		switch {
		case rpc.IsQueueFull(err):
			sawQueueFull = true
		case rpc.IsUnavailable(err):
			// Region gone: fall through to the next one.
		default:
			// The device's own mistake (4xx, cancelled context): no
			// other region would answer differently.
			return resp, d, err
		}
		if ctx.Err() != nil {
			return resp, d, err
		}
		rest = after(rest, name)
	}
	if lastErr == nil {
		lastErr = router.ErrNoRegion
	}
	return rpc.OffloadResponse{}, d, lastErr
}

// Offload is the plain Offloader entry point (loadgen.Offloader).
func (c *Client) Offload(ctx context.Context, req rpc.OffloadRequest) (rpc.OffloadResponse, error) {
	resp, _, err := c.OffloadRoute(ctx, req)
	return resp, err
}

// OffloadRegion reports the serving region alongside the response
// (loadgen.RegionOffloader), feeding per-region report slices.
func (c *Client) OffloadRegion(ctx context.Context, req rpc.OffloadRequest) (rpc.OffloadResponse, string, error) {
	resp, d, err := c.OffloadRoute(ctx, req)
	if err != nil {
		return resp, "", err
	}
	return resp, d.Region, err
}

// DigestDecisions hashes a replayed schedule's routing decisions —
// region, spill and failover flags per call, in call order — so two
// replays (e.g. JSON vs binary transport) can prove they routed
// identically.
func DigestDecisions(ds []Decision) string {
	h := fnv.New64a()
	flag := func(b bool) byte {
		if b {
			return 1
		}
		return 0
	}
	for _, d := range ds {
		_, _ = h.Write([]byte(d.Region))
		_, _ = h.Write([]byte{0, flag(d.Spilled), flag(d.Failover), 0})
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}
