// Package geo is the multi-region tier of the accelerator: a registry
// of named regions (each one an sdn front-end deployment), a
// device-side nearest-region selector driven by the netsim RTT models
// (per-operator, per-technology, with mid-session model switches), and
// the cross-region spillover/failover path — when the home region is
// saturated (typed rpc.ErrQueueFull backpressure) or chaos-killed
// (faults.KindRegionOutage), calls re-route to the next-nearest region,
// with the extra device→region RTT charged into the measured latency.
//
// The selector and the re-route loop live above the transport split:
// a region's URL may be http:// or bin://, and the routing decisions
// are identical either way (the geo parity suite proves it). The
// region-level routing state is router.Regions — the same RCU
// snapshot discipline as the backend pools, so the MarkDown fence
// guarantee holds one tier up.
package geo

import (
	"fmt"
	"sort"

	"accelcloud/internal/netsim"
)

// Region is one named deployment of the accelerator.
type Region struct {
	// Name identifies the region (e.g. "eu-north").
	Name string
	// URL is the region front-end's base URL — http://host:port for the
	// JSON compat mode or bin://host:port for the framed wire protocol.
	URL string
	// Path is the device→region network path under the device's current
	// access model: the operator/technology RTT model plus the
	// propagation to the region. The selector ranks regions by its mean.
	Path netsim.Path
}

// Validate checks one region entry.
func (r Region) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("geo: region with empty name")
	}
	if r.URL == "" {
		return fmt.Errorf("geo: region %q without URL", r.Name)
	}
	if err := r.Path.Validate(); err != nil {
		return fmt.Errorf("geo: region %q: %w", r.Name, err)
	}
	return nil
}

// rank orders region names by expected device→region RTT, nearest
// first; ties break by name so the order is total and deterministic.
func rank(paths map[string]netsim.Path) []string {
	names := make([]string, 0, len(paths))
	for name := range paths {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		mi, mj := paths[names[i]].MeanMs(), paths[names[j]].MeanMs()
		if mi != mj {
			return mi < mj
		}
		return names[i] < names[j]
	})
	return names
}
