package geo

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"accelcloud/internal/netsim"
)

// MobilityEvent is one scheduled access-model switch: at offset At from
// the start of the run, the device roams onto Operator's Tech network
// (an LTE→3G drop, an operator handover, or both at once). The switch
// replaces the access leg of every region's path; each region keeps its
// propagation distance — roaming moves the device, not the datacenters.
type MobilityEvent struct {
	At       time.Duration
	Operator string
	Tech     netsim.Tech
}

// Mobility replays a schedule of access-model switches against a geo
// client. Every event is resolved to concrete per-region paths at
// construction, so an invalid schedule (unknown operator, missing
// technology model) fails before the run starts, and Run itself cannot
// fail mid-flight. Events apply through Client.UpdatePaths, which
// re-ranks the region preference order atomically — in-flight calls
// finish under the old order, the next call sees the new one.
type Mobility struct {
	client  *Client
	events  []MobilityEvent
	paths   []map[string]netsim.Path
	applied atomic.Int64
}

// NewMobility resolves the schedule against the client's current
// regions. Events are applied in At order (stable for ties).
func NewMobility(c *Client, ops []netsim.Operator, events []MobilityEvent) (*Mobility, error) {
	if c == nil {
		return nil, fmt.Errorf("geo: nil client")
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("geo: empty mobility schedule")
	}
	sorted := make([]MobilityEvent, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	base := c.Paths()
	m := &Mobility{client: c, events: sorted, paths: make([]map[string]netsim.Path, len(sorted))}
	for i, ev := range sorted {
		if ev.At < 0 {
			return nil, fmt.Errorf("geo: mobility event %d at negative offset %v", i, ev.At)
		}
		op, err := netsim.OperatorByName(ops, ev.Operator)
		if err != nil {
			return nil, fmt.Errorf("geo: mobility event %d: %w", i, err)
		}
		next := make(map[string]netsim.Path, len(base))
		for name, p := range base {
			np, err := netsim.PathTo(op, ev.Tech, p.PropagationMs)
			if err != nil {
				return nil, fmt.Errorf("geo: mobility event %d, region %q: %w", i, name, err)
			}
			next[name] = np
		}
		m.paths[i] = next
	}
	return m, nil
}

// Events returns the resolved schedule in application order.
func (m *Mobility) Events() []MobilityEvent {
	out := make([]MobilityEvent, len(m.events))
	copy(out, m.events)
	return out
}

// Applied counts the events applied so far.
func (m *Mobility) Applied() int { return int(m.applied.Load()) }

// Apply applies event i immediately, regardless of its offset — the
// deterministic entry point simulations and tests drive directly.
func (m *Mobility) Apply(i int) error {
	if i < 0 || i >= len(m.events) {
		return fmt.Errorf("geo: mobility event %d out of range [0,%d)", i, len(m.events))
	}
	if err := m.client.UpdatePaths(m.paths[i]); err != nil {
		return err
	}
	m.applied.Add(1)
	return nil
}

// Run replays the schedule on the wall clock: each event is applied at
// its offset from the moment Run is called. It returns after the last
// event, or early with ctx.Err() on cancellation. Paths were validated
// at construction, and UpdatePaths only rejects invalid input, so a run
// that is not cancelled always applies the whole schedule.
func (m *Mobility) Run(ctx context.Context) error {
	start := time.Now()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for i, ev := range m.events {
		if wait := ev.At - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				if !timer.Stop() {
					<-timer.C
				}
				return ctx.Err()
			case <-timer.C:
			}
		}
		if err := m.Apply(i); err != nil {
			return err
		}
	}
	return nil
}
