package geo

import (
	"context"
	"sync"
	"testing"
	"time"

	"accelcloud/internal/faults"
	"accelcloud/internal/health"
	"accelcloud/internal/netsim"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
)

// maxFailoverRecover bounds the region failover time-to-recover: the
// wall time from the kill to the monitor fencing the region. Probes run
// every few milliseconds here, so even a loaded CI box clears the bound
// with two orders of magnitude of headroom.
const maxFailoverRecover = 5 * time.Second

// TestRegionFailoverDeterministic is the seeded region-kill chaos test:
// a faults schedule with one KindRegionOutage event (pinned digest)
// selects the victim region, the kill lands while calls are in flight,
// and the suite asserts (1) zero lost in-flight calls — every call
// issued around the kill completes, via failover if needed, (2) the
// region monitor detects the outage within the bounded time-to-recover,
// and (3) the monitor's failover-event log hashes to an exact fnv1a
// digest, proving the observed outage sequence reproduces bit-for-bit.
func TestRegionFailoverDeterministic(t *testing.T) {
	const seed = 11
	sched, err := faults.Generate(sim.NewRNG(seed), faults.ScheduleConfig{
		Slots:         8,
		Groups:        []int{1},
		RegionOutages: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The schedule is a pure function of (seed, config); the pinned
	// digest fails the test if region-outage generation ever drifts.
	const wantScheduleDigest = "fnv1a:23eb352bc37e1665"
	if d := sched.Digest(); d != wantScheduleDigest {
		t.Fatalf("schedule digest = %s, want %s", d, wantScheduleDigest)
	}
	if len(sched.Events) != 1 || sched.Events[0].Kind != faults.KindRegionOutage {
		t.Fatalf("schedule events = %+v, want one region outage", sched.Events)
	}
	regionNames := []string{"alpha", "beta"}
	victim := regionNames[sched.Events[0].Backend%len(regionNames)]
	other := regionNames[0]
	if other == victim {
		other = regionNames[1]
	}

	// The victim is made the device's home region (propagation 0), so
	// the kill exercises the home-failover path, not a no-op.
	dep, err := StartDeployment(context.Background(), []RegionSpec{
		{Name: victim, PropagationMs: 0},
		{Name: other, PropagationMs: 80},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	regions, err := dep.Regions(testAccess(t), netsim.TechLTE, false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(regions)
	if err != nil {
		t.Fatal(err)
	}
	if c.Home() != victim {
		t.Fatalf("home = %q, want victim %q", c.Home(), victim)
	}
	mon, err := c.Monitor(health.RegionMonitorConfig{
		ProbeTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st := testState(t)

	// Healthy baseline: a probe round and a served call, no events.
	mon.ProbeOnce(ctx)
	if _, d, err := c.OffloadRoute(ctx, rpc.OffloadRequest{UserID: 1, Group: 1, State: st}); err != nil || d.Region != victim {
		t.Fatalf("baseline call: decision=%+v err=%v", d, err)
	}

	// In-flight calls race the kill; none may be lost — each either
	// completes on the victim or fails over to the survivor.
	const callers = 16
	callErrs := make([]error, callers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			defer cancel()
			_, _, callErrs[i] = c.OffloadRoute(cctx, rpc.OffloadRequest{UserID: i, Group: 1, State: st})
		}(i)
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	killedAt := time.Now()
	if err := dep.Kill(victim); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range callErrs {
		if err != nil {
			t.Fatalf("in-flight call %d lost across the region kill: %v", i, err)
		}
	}

	// Detection: step the monitor until the victim is fenced; the wall
	// time from kill to fence is the time-to-recover under test.
	detected := false
	for i := 0; i < 100 && !detected; i++ {
		mon.ProbeOnce(ctx)
		for _, down := range mon.Down() {
			if down == victim {
				detected = true
			}
		}
	}
	if !detected {
		t.Fatalf("monitor never fenced the killed region %q", victim)
	}
	ttr := time.Since(killedAt)
	if ttr > maxFailoverRecover {
		t.Fatalf("time-to-recover %v exceeds bound %v", ttr, maxFailoverRecover)
	}
	if st, _ := c.Regions().State(victim); st.String() != "down" {
		t.Fatalf("victim state = %s after detection, want down", st)
	}

	// Post-detection steady state: the fenced region costs nothing —
	// one attempt, straight to the survivor, classified failover.
	resp, d, err := c.OffloadRoute(ctx, rpc.OffloadRequest{UserID: 99, Group: 1, State: st})
	if err != nil {
		t.Fatal(err)
	}
	if d.Region != other || !d.Failover || d.Attempts != 1 {
		t.Fatalf("post-detection decision = %+v, want 1-attempt failover to %q", d, other)
	}
	if resp.Server == "" {
		t.Fatal("post-detection response without server")
	}

	// Exact failover-event digest: the observed outage sequence is
	// [victim down], bit-identical run over run.
	events := mon.Events()
	if len(events) != 1 || events[0].Region != victim || events[0].Status != "down" {
		t.Fatalf("events = %+v, want [{%s down}]", events, victim)
	}
	const wantEventsDigest = "fnv1a:fc37d7cf0a4f3f33"
	if d := mon.EventsDigest(); d != wantEventsDigest {
		t.Fatalf("failover-event digest = %s, want %s", d, wantEventsDigest)
	}
}
