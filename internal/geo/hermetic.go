package geo

import (
	"context"
	"fmt"
	"sync"

	"accelcloud/internal/loadgen"
	"accelcloud/internal/netsim"
	"accelcloud/internal/sdn"
)

// RegionSpec describes one region of a hermetic multi-region
// deployment: a name, the device→region propagation distance, and the
// per-region serving stack configuration.
type RegionSpec struct {
	// Name is the region name; it becomes the front-end's region label.
	Name string
	// PropagationMs is the extra round-trip propagation a device pays to
	// reach this region (the geographic term of its Path).
	PropagationMs float64
	// Cluster sizes the region's serving stack (groups, surrogates,
	// queues, chaos wrap); its Region field is overwritten with Name.
	Cluster loadgen.ClusterConfig
}

// Deployment is a hermetic multi-region deployment: N loadgen clusters
// — each a real sdn front-end plus surrogates on loopback listeners —
// registered as named regions. It is the test and bench double of a
// geographically distributed fleet, with Kill as the region-outage
// chaos lever.
type Deployment struct {
	specs []RegionSpec

	mu       sync.Mutex
	clusters map[string]*loadgen.Cluster
	killed   map[string]bool
}

// StartDeployment boots every region's cluster. Callers must Close the
// deployment.
func StartDeployment(ctx context.Context, specs []RegionSpec) (*Deployment, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("geo: deployment without regions")
	}
	d := &Deployment{
		specs:    specs,
		clusters: make(map[string]*loadgen.Cluster, len(specs)),
		killed:   make(map[string]bool, len(specs)),
	}
	for _, spec := range specs {
		if spec.Name == "" {
			d.Close()
			return nil, fmt.Errorf("geo: region spec with empty name")
		}
		if _, dup := d.clusters[spec.Name]; dup {
			d.Close()
			return nil, fmt.Errorf("geo: duplicate region %q", spec.Name)
		}
		cfg := spec.Cluster
		cfg.Region = spec.Name
		cluster, err := loadgen.StartClusterContext(ctx, cfg)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("geo: start region %q: %w", spec.Name, err)
		}
		d.clusters[spec.Name] = cluster
	}
	return d, nil
}

// Cluster returns one region's cluster (nil for unknown or killed
// regions).
func (d *Deployment) Cluster(name string) *loadgen.Cluster {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.killed[name] {
		return nil
	}
	return d.clusters[name]
}

// FrontEnd returns one region's front-end (nil for unknown or killed
// regions).
func (d *Deployment) FrontEnd(name string) *sdn.FrontEnd {
	if c := d.Cluster(name); c != nil {
		return c.FrontEnd()
	}
	return nil
}

// Regions builds the device-side region registry for a device on the
// given operator and technology: every region's URL (binary selects
// the bin:// listener, which requires Cluster.Binary) plus its Path
// under that access model.
func (d *Deployment) Regions(op netsim.Operator, tech netsim.Tech, binary bool) ([]Region, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Region, 0, len(d.specs))
	for _, spec := range d.specs {
		cluster := d.clusters[spec.Name]
		if cluster == nil {
			return nil, fmt.Errorf("geo: region %q not running", spec.Name)
		}
		url := cluster.URL()
		if binary {
			if url = cluster.BinaryURL(); url == "" {
				return nil, fmt.Errorf("geo: region %q has no binary listener", spec.Name)
			}
		}
		path, err := netsim.PathTo(op, tech, spec.PropagationMs)
		if err != nil {
			return nil, err
		}
		out = append(out, Region{Name: spec.Name, URL: url, Path: path})
	}
	return out, nil
}

// Paths recomputes every region's Path for a new access model — the
// map UpdatePaths wants when the device switches operator or drops
// from LTE to 3G mid-session.
func (d *Deployment) Paths(op netsim.Operator, tech netsim.Tech) (map[string]netsim.Path, error) {
	out := make(map[string]netsim.Path, len(d.specs))
	for _, spec := range d.specs {
		path, err := netsim.PathTo(op, tech, spec.PropagationMs)
		if err != nil {
			return nil, err
		}
		out[spec.Name] = path
	}
	return out, nil
}

// Kill chaos-kills a region: its listeners close, so every connection
// refuses and health probes fail — the hermetic rendering of
// faults.KindRegionOutage. Killed regions stay dead (repairing a
// region is a redeploy, not a reconnect).
func (d *Deployment) Kill(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	cluster := d.clusters[name]
	if cluster == nil {
		return fmt.Errorf("geo: unknown region %q", name)
	}
	if d.killed[name] {
		return nil
	}
	d.killed[name] = true
	cluster.Close()
	return nil
}

// Close shuts every still-running region down.
func (d *Deployment) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for name, cluster := range d.clusters {
		if cluster != nil && !d.killed[name] {
			d.killed[name] = true
			cluster.Close()
		}
	}
}
