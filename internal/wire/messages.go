package wire

import (
	"errors"
	"fmt"
	"math"

	"accelcloud/internal/tasks"
)

// The message types are the protocol's DTOs, shared verbatim by the
// JSON compat mode and the binary framing: internal/rpc aliases them,
// so one struct definition serves both encodings and the parity suite
// can compare transports field by field. JSON tags drive the compat
// mode; the binary codec (codec.go) encodes fields positionally.

// OffloadRequest is a mobile client's request to the front-end.
type OffloadRequest struct {
	// UserID identifies the device.
	UserID int `json:"userId"`
	// Group is the acceleration group the device currently requests.
	Group int `json:"group"`
	// BatteryLevel is the device battery in [0, 1] (logged per §IV-A).
	BatteryLevel float64 `json:"batteryLevel"`
	// IdemKey, when non-empty, deduplicates re-sends of the same call:
	// the front-end serves a retried or hedged duplicate from its
	// idempotency cache instead of executing the task again. Clients
	// with a retry or hedge policy assign keys automatically.
	IdemKey string `json:"idemKey,omitempty"`
	// Origin, when non-empty, names the device's home region: the
	// region its geo selector ranked nearest. A front-end whose own
	// region differs counts the request as spilled-over, so cross-region
	// traffic shows up in /stats on whichever region absorbed it.
	Origin string `json:"origin,omitempty"`
	// SpanID, when non-zero, marks the request as trace-sampled: the
	// front-end assembles a per-hop Span in its response and exports it
	// through the trace sink. IDs are minted at the device/loadgen edge
	// from the schedule RNG, so which requests carry one — and their
	// fnv1a digest — is deterministic per seed.
	SpanID uint64 `json:"span,omitempty"`
	// State is the serialized application state to execute.
	State tasks.State `json:"state"`
}

// Validate checks the request.
func (r OffloadRequest) Validate() error {
	if r.UserID < 0 {
		return fmt.Errorf("rpc: negative user id %d", r.UserID)
	}
	if r.Group < 0 {
		return fmt.Errorf("rpc: negative group %d", r.Group)
	}
	if math.IsNaN(r.BatteryLevel) || r.BatteryLevel < 0 || r.BatteryLevel > 1 {
		return fmt.Errorf("rpc: battery %v outside [0,1]", r.BatteryLevel)
	}
	if r.State.Task == "" {
		return errors.New("rpc: state without task name")
	}
	return nil
}

// Timings is the Fig 7a component breakdown, in milliseconds.
type Timings struct {
	// RoutingMs is the SDN-accelerator's processing overhead (≈150 ms
	// in the paper, Fig 8a).
	RoutingMs float64 `json:"routingMs"`
	// BackendMs is T2: front-end ↔ back-end communication.
	BackendMs float64 `json:"backendMs"`
	// CloudMs is Tcloud: code execution on the surrogate.
	CloudMs float64 `json:"cloudMs"`
}

// Span is the request-scoped per-hop timing breakdown a trace-sampled
// offload accumulates on its way through the stack, in milliseconds.
// Hops that a request did not traverse stay zero (an unqueued request
// has QueueMs 0, a warm backend ColdMs 0), so the populated fields sum
// to within routing overhead of the end-to-end RTT.
type Span struct {
	// ID is the sampling identity minted at the device edge (request
	// SpanID echoed back).
	ID uint64 `json:"id"`
	// QueueMs is time spent waiting in the admission queue before
	// dispatch started.
	QueueMs float64 `json:"queueMs"`
	// LingerMs is time the dynamic batcher held the request open
	// coalescing batchmates.
	LingerMs float64 `json:"lingerMs"`
	// ColdMs is scale-to-zero activation wait (cold-start billing).
	ColdMs float64 `json:"coldMs"`
	// NetworkMs is the front-end ↔ backend wire time (T2: backend round
	// trip minus on-surrogate execution).
	NetworkMs float64 `json:"networkMs"`
	// ExecMs is on-surrogate execution (Tcloud).
	ExecMs float64 `json:"execMs"`
	// Hops counts region attempts the device's geo selector made before
	// this response (1 = served by the first-choice region; >1 records
	// spillover/failover re-routes).
	Hops int `json:"hops"`
}

// OffloadResponse is the front-end's reply.
type OffloadResponse struct {
	// Result is the execution outcome.
	Result tasks.Result `json:"result"`
	// Server identifies the surrogate that executed the request.
	Server string `json:"server"`
	// Group is the acceleration group that served the request.
	Group int `json:"group"`
	// Timings is the component breakdown.
	Timings Timings `json:"timings"`
	// Span is the per-hop breakdown, present only when the request was
	// trace-sampled (SpanID non-zero).
	Span *Span `json:"span,omitempty"`
	// Error carries a failure message ("" on success).
	Error string `json:"error,omitempty"`
}

// ExecuteRequest is the front-end → surrogate call.
type ExecuteRequest struct {
	State tasks.State `json:"state"`
}

// ExecuteResponse is the surrogate's reply.
type ExecuteResponse struct {
	Result tasks.Result `json:"result"`
	// CloudMs is the measured execution time on the surrogate.
	CloudMs float64 `json:"cloudMs"`
	Server  string  `json:"server"`
	Error   string  `json:"error,omitempty"`
}

// BatchRequest is a chain of offload calls executed server-side in one
// round trip — the device pipelines a whole call chain instead of
// paying one round trip per call.
type BatchRequest struct {
	Calls []OffloadRequest `json:"calls"`
}

// BatchResult is one call's outcome inside a batch response. Code is
// the HTTP-equivalent status the call would have received as a single
// request (200 on success), so error classification is identical
// whether a call traveled alone or in a chain.
type BatchResult struct {
	Code int             `json:"code"`
	Resp OffloadResponse `json:"resp"`
}

// BatchResponse answers a BatchRequest, one result per call, in call
// order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// ExecuteBatchRequest carries a batch of homogeneous states for one
// surrogate — the serving layer's dynamic batcher coalesces queued
// same-task calls into one of these so the per-call protocol overhead
// amortizes and the surrogate can spread the batch across its worker
// slots.
type ExecuteBatchRequest struct {
	Calls []ExecuteRequest `json:"calls"`
}

// ExecuteBatchResponse answers an ExecuteBatchRequest, one result per
// call, in call order. Per-call failures travel inside each result's
// Error field so one bad state does not fail its batchmates.
type ExecuteBatchResponse struct {
	Results []ExecuteResponse `json:"results"`
}

// ErrorFrame is the decoded payload of a FrameError: an
// HTTP-equivalent status code plus a message, so the binary mode
// classifies failures exactly like the JSON compat mode's non-200
// responses.
type ErrorFrame struct {
	Code    int
	Message string
}
