package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"accelcloud/internal/tasks"
)

// The payload codec: positional fields, zigzag varints for integers,
// fixed 8-byte IEEE 754 for floats, and uvarint length prefixes for
// strings and byte blobs. Every length is checked against the bytes
// actually present before anything is allocated, so a declared length
// can never make the decoder reserve more memory than the attacker
// sent.

// cur is a bounds-checked read cursor over one frame payload.
type cur struct {
	b   []byte
	off int
}

func (c *cur) remaining() int { return len(c.b) - c.off }

func (c *cur) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrBadFrame)
	}
	c.off += n
	return v, nil
}

func (c *cur) svarint() (int64, error) {
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrBadFrame)
	}
	c.off += n
	return v, nil
}

// sint decodes a zigzag varint that must fit the platform int.
func (c *cur) sint() (int, error) {
	v, err := c.svarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt || v < math.MinInt {
		return 0, fmt.Errorf("%w: varint overflows int", ErrBadFrame)
	}
	return int(v), nil
}

func (c *cur) f64() (float64, error) {
	if c.remaining() < 8 {
		return 0, fmt.Errorf("%w: short float64", ErrBadFrame)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b[c.off:]))
	c.off += 8
	return v, nil
}

// blob reads a length-prefixed byte string as a sub-slice of the
// payload — the declared length is validated against the remaining
// bytes first, and no copy is made. A zero length decodes as nil so a
// round-tripped message compares equal to one built with nil fields.
func (c *cur) blob() ([]byte, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(c.remaining()) {
		return nil, fmt.Errorf("%w: blob length %d exceeds remaining %d", ErrBadFrame, n, c.remaining())
	}
	if n == 0 {
		return nil, nil
	}
	out := c.b[c.off : c.off+int(n) : c.off+int(n)]
	c.off += int(n)
	return out, nil
}

func (c *cur) str() (string, error) {
	b, err := c.blob()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// done rejects trailing garbage after a fully decoded message.
func (c *cur) done() error {
	if c.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, c.remaining())
	}
	return nil
}

// --- append helpers -------------------------------------------------------

func appendBlob(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendInt(dst []byte, v int) []byte {
	return binary.AppendVarint(dst, int64(v))
}

// --- state / result -------------------------------------------------------

func appendState(dst []byte, st tasks.State) []byte {
	dst = appendString(dst, st.Task)
	dst = appendInt(dst, st.Size)
	return appendBlob(dst, st.Data)
}

func decodeState(c *cur) (tasks.State, error) {
	var st tasks.State
	var err error
	if st.Task, err = c.str(); err != nil {
		return st, err
	}
	if st.Size, err = c.sint(); err != nil {
		return st, err
	}
	if st.Data, err = c.blob(); err != nil {
		return st, err
	}
	return st, nil
}

func appendResult(dst []byte, r tasks.Result) []byte {
	dst = appendString(dst, r.Task)
	dst = appendBlob(dst, r.Data)
	return binary.AppendVarint(dst, r.Ops)
}

func decodeResult(c *cur) (tasks.Result, error) {
	var r tasks.Result
	var err error
	if r.Task, err = c.str(); err != nil {
		return r, err
	}
	if r.Data, err = c.blob(); err != nil {
		return r, err
	}
	if r.Ops, err = c.svarint(); err != nil {
		return r, err
	}
	return r, nil
}

// --- offload request ------------------------------------------------------

// AppendOffloadRequest encodes r after dst.
func AppendOffloadRequest(dst []byte, r OffloadRequest) []byte {
	dst = appendInt(dst, r.UserID)
	dst = appendInt(dst, r.Group)
	dst = appendF64(dst, r.BatteryLevel)
	dst = appendString(dst, r.IdemKey)
	dst = appendString(dst, r.Origin)
	dst = binary.AppendUvarint(dst, r.SpanID)
	return appendState(dst, r.State)
}

func decodeOffloadRequest(c *cur) (OffloadRequest, error) {
	var r OffloadRequest
	var err error
	if r.UserID, err = c.sint(); err != nil {
		return r, err
	}
	if r.Group, err = c.sint(); err != nil {
		return r, err
	}
	if r.BatteryLevel, err = c.f64(); err != nil {
		return r, err
	}
	if r.IdemKey, err = c.str(); err != nil {
		return r, err
	}
	if r.Origin, err = c.str(); err != nil {
		return r, err
	}
	if r.SpanID, err = c.uvarint(); err != nil {
		return r, err
	}
	if r.State, err = decodeState(c); err != nil {
		return r, err
	}
	return r, nil
}

// DecodeOffloadRequest decodes exactly one request from b.
func DecodeOffloadRequest(b []byte) (OffloadRequest, error) {
	c := &cur{b: b}
	r, err := decodeOffloadRequest(c)
	if err != nil {
		return r, err
	}
	return r, c.done()
}

// --- offload response -----------------------------------------------------

// AppendOffloadResponse encodes r after dst. The span rides as a
// presence flag plus fields, so unsampled responses pay one byte.
func AppendOffloadResponse(dst []byte, r OffloadResponse) []byte {
	dst = appendString(dst, r.Server)
	dst = appendInt(dst, r.Group)
	dst = appendF64(dst, r.Timings.RoutingMs)
	dst = appendF64(dst, r.Timings.BackendMs)
	dst = appendF64(dst, r.Timings.CloudMs)
	dst = appendString(dst, r.Error)
	if r.Span == nil {
		dst = binary.AppendUvarint(dst, 0)
	} else {
		dst = binary.AppendUvarint(dst, 1)
		dst = binary.AppendUvarint(dst, r.Span.ID)
		dst = appendF64(dst, r.Span.QueueMs)
		dst = appendF64(dst, r.Span.LingerMs)
		dst = appendF64(dst, r.Span.ColdMs)
		dst = appendF64(dst, r.Span.NetworkMs)
		dst = appendF64(dst, r.Span.ExecMs)
		dst = appendInt(dst, r.Span.Hops)
	}
	return appendResult(dst, r.Result)
}

func decodeOffloadResponse(c *cur) (OffloadResponse, error) {
	var r OffloadResponse
	var err error
	if r.Server, err = c.str(); err != nil {
		return r, err
	}
	if r.Group, err = c.sint(); err != nil {
		return r, err
	}
	if r.Timings.RoutingMs, err = c.f64(); err != nil {
		return r, err
	}
	if r.Timings.BackendMs, err = c.f64(); err != nil {
		return r, err
	}
	if r.Timings.CloudMs, err = c.f64(); err != nil {
		return r, err
	}
	if r.Error, err = c.str(); err != nil {
		return r, err
	}
	present, err := c.uvarint()
	if err != nil {
		return r, err
	}
	switch present {
	case 0:
	case 1:
		sp := &Span{}
		if sp.ID, err = c.uvarint(); err != nil {
			return r, err
		}
		if sp.QueueMs, err = c.f64(); err != nil {
			return r, err
		}
		if sp.LingerMs, err = c.f64(); err != nil {
			return r, err
		}
		if sp.ColdMs, err = c.f64(); err != nil {
			return r, err
		}
		if sp.NetworkMs, err = c.f64(); err != nil {
			return r, err
		}
		if sp.ExecMs, err = c.f64(); err != nil {
			return r, err
		}
		if sp.Hops, err = c.sint(); err != nil {
			return r, err
		}
		r.Span = sp
	default:
		return r, fmt.Errorf("%w: span presence flag %d", ErrBadFrame, present)
	}
	if r.Result, err = decodeResult(c); err != nil {
		return r, err
	}
	return r, nil
}

// DecodeOffloadResponse decodes exactly one response from b.
func DecodeOffloadResponse(b []byte) (OffloadResponse, error) {
	c := &cur{b: b}
	r, err := decodeOffloadResponse(c)
	if err != nil {
		return r, err
	}
	return r, c.done()
}

// --- execute --------------------------------------------------------------

// AppendExecuteRequest encodes r after dst.
func AppendExecuteRequest(dst []byte, r ExecuteRequest) []byte {
	return appendState(dst, r.State)
}

// DecodeExecuteRequest decodes exactly one execute request from b.
func DecodeExecuteRequest(b []byte) (ExecuteRequest, error) {
	c := &cur{b: b}
	st, err := decodeState(c)
	if err != nil {
		return ExecuteRequest{}, err
	}
	return ExecuteRequest{State: st}, c.done()
}

// AppendExecuteResponse encodes r after dst.
func AppendExecuteResponse(dst []byte, r ExecuteResponse) []byte {
	dst = appendResult(dst, r.Result)
	dst = appendF64(dst, r.CloudMs)
	dst = appendString(dst, r.Server)
	return appendString(dst, r.Error)
}

// DecodeExecuteResponse decodes exactly one execute response from b.
func DecodeExecuteResponse(b []byte) (ExecuteResponse, error) {
	c := &cur{b: b}
	var r ExecuteResponse
	var err error
	if r.Result, err = decodeResult(c); err != nil {
		return r, err
	}
	if r.CloudMs, err = c.f64(); err != nil {
		return r, err
	}
	if r.Server, err = c.str(); err != nil {
		return r, err
	}
	if r.Error, err = c.str(); err != nil {
		return r, err
	}
	return r, c.done()
}

// --- batches --------------------------------------------------------------

// AppendBatchRequest encodes a call chain after dst.
func AppendBatchRequest(dst []byte, b BatchRequest) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b.Calls)))
	for _, call := range b.Calls {
		dst = AppendOffloadRequest(dst, call)
	}
	return dst
}

// DecodeBatchRequest decodes exactly one call chain from b. The call
// count is capped at MaxBatchCalls and validated against the bytes
// present before any per-call allocation happens.
func DecodeBatchRequest(b []byte) (BatchRequest, error) {
	c := &cur{b: b}
	n, err := c.uvarint()
	if err != nil {
		return BatchRequest{}, err
	}
	if n > MaxBatchCalls {
		return BatchRequest{}, fmt.Errorf("%w: batch of %d calls exceeds cap %d", ErrBadFrame, n, MaxBatchCalls)
	}
	// The smallest encodable call is well over one byte; remaining()
	// caps the allocation without trusting the declared count.
	if n > uint64(c.remaining()) {
		return BatchRequest{}, fmt.Errorf("%w: batch count %d exceeds remaining bytes %d", ErrBadFrame, n, c.remaining())
	}
	out := BatchRequest{Calls: make([]OffloadRequest, 0, n)}
	for i := uint64(0); i < n; i++ {
		call, err := decodeOffloadRequest(c)
		if err != nil {
			return BatchRequest{}, err
		}
		out.Calls = append(out.Calls, call)
	}
	return out, c.done()
}

// AppendBatchResponse encodes a chain's results after dst.
func AppendBatchResponse(dst []byte, b BatchResponse) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b.Results)))
	for _, res := range b.Results {
		dst = appendInt(dst, res.Code)
		dst = AppendOffloadResponse(dst, res.Resp)
	}
	return dst
}

// DecodeBatchResponse decodes exactly one chain of results from b.
func DecodeBatchResponse(b []byte) (BatchResponse, error) {
	c := &cur{b: b}
	n, err := c.uvarint()
	if err != nil {
		return BatchResponse{}, err
	}
	if n > MaxBatchCalls {
		return BatchResponse{}, fmt.Errorf("%w: batch of %d results exceeds cap %d", ErrBadFrame, n, MaxBatchCalls)
	}
	if n > uint64(c.remaining()) {
		return BatchResponse{}, fmt.Errorf("%w: batch count %d exceeds remaining bytes %d", ErrBadFrame, n, c.remaining())
	}
	out := BatchResponse{Results: make([]BatchResult, 0, n)}
	for i := uint64(0); i < n; i++ {
		var res BatchResult
		if res.Code, err = c.sint(); err != nil {
			return BatchResponse{}, err
		}
		if res.Resp, err = decodeOffloadResponse(c); err != nil {
			return BatchResponse{}, err
		}
		out.Results = append(out.Results, res)
	}
	return out, c.done()
}

// --- error frames ---------------------------------------------------------

// AppendErrorFrame encodes a protocol error payload after dst.
func AppendErrorFrame(dst []byte, e ErrorFrame) []byte {
	dst = appendInt(dst, e.Code)
	return appendString(dst, e.Message)
}

// DecodeErrorFrame decodes exactly one error payload from b.
func DecodeErrorFrame(b []byte) (ErrorFrame, error) {
	c := &cur{b: b}
	var e ErrorFrame
	var err error
	if e.Code, err = c.sint(); err != nil {
		return e, err
	}
	if e.Message, err = c.str(); err != nil {
		return e, err
	}
	return e, c.done()
}
