package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden frame vectors")

// goldenFrames is the canonical vector set: one frame per kind plus the
// header edge cases. The committed encodings in testdata/golden_frames.txt
// are the conformance contract — an encoder change that shifts any byte
// fails TestGoldenFrames until the vectors are deliberately regenerated
// with -update.
func goldenFrames() map[string]Frame {
	return map[string]Frame{
		"ping": {Version: Version1, Type: FrameRequest, Flags: MethodPing, StreamID: 1},
		"offload-request": {Version: Version1, Type: FrameRequest, Flags: MethodOffload, StreamID: 2,
			Payload: AppendOffloadRequest(nil, canonicalOffloadRequest())},
		"offload-response": {Version: Version1, Type: FrameResponse, StreamID: 2,
			Payload: AppendOffloadResponse(nil, canonicalOffloadResponse())},
		"execute-request": {Version: Version1, Type: FrameRequest, Flags: MethodExecute, StreamID: 3,
			Payload: AppendExecuteRequest(nil, ExecuteRequest{State: canonicalOffloadRequest().State})},
		"batch-request": {Version: Version1, Type: FrameBatch, StreamID: 4,
			Payload: AppendBatchRequest(nil, BatchRequest{Calls: []OffloadRequest{canonicalOffloadRequest()}})},
		"batch-response": {Version: Version1, Type: FrameBatch, Flags: FlagBatchResponse, StreamID: 4,
			Payload: AppendBatchResponse(nil, BatchResponse{Results: []BatchResult{{Code: 200, Resp: canonicalOffloadResponse()}}})},
		"error": {Version: Version1, Type: FrameError, StreamID: 5,
			Payload: AppendErrorFrame(nil, ErrorFrame{Code: 503, Message: "router: no backend for group 9"})},
		"wide-stream-id": {Version: Version1, Type: FrameRequest, Flags: MethodPing, StreamID: 1 << 40},
	}
}

const goldenPath = "testdata/golden_frames.txt"

func readGolden(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden vectors (regenerate with -update): %v", err)
	}
	out := map[string]string{}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, hexBytes, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		out[name] = hexBytes
	}
	return out
}

func TestGoldenFrames(t *testing.T) {
	frames := goldenFrames()
	if *updateGolden {
		names := make([]string, 0, len(frames))
		for name := range frames {
			names = append(names, name)
		}
		sort.Strings(names)
		var b strings.Builder
		b.WriteString("# Golden frame vectors: <name> <hex of full encoded frame>.\n")
		b.WriteString("# Regenerate with: go test ./internal/wire/ -run TestGoldenFrames -update\n")
		for _, name := range names {
			fmt.Fprintf(&b, "%s %s\n", name, hex.EncodeToString(AppendFrame(nil, frames[name])))
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden := readGolden(t)
	if len(golden) != len(frames) {
		t.Fatalf("golden file has %d vectors, test table has %d (regenerate with -update)", len(golden), len(frames))
	}
	for name, f := range frames {
		wantHex, ok := golden[name]
		if !ok {
			t.Errorf("%s: missing from golden file", name)
			continue
		}
		enc := AppendFrame(nil, f)
		if got := hex.EncodeToString(enc); got != wantHex {
			t.Errorf("%s: encoding drifted\n got %s\nwant %s", name, got, wantHex)
			continue
		}
		// The committed bytes must also decode back to the source frame.
		dec, n, err := DecodeFrame(enc, 0)
		if err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if n != len(enc) {
			t.Errorf("%s: consumed %d of %d bytes", name, n, len(enc))
		}
		if !reflect.DeepEqual(dec, f) {
			t.Errorf("%s: decode mismatch\n got %+v\nwant %+v", name, dec, f)
		}
	}
}

func TestHeaderStrictness(t *testing.T) {
	valid := AppendFrame(nil, Frame{Type: FrameRequest, Flags: MethodPing, StreamID: 1})
	mutate := func(idx int, b byte) []byte {
		out := append([]byte(nil), valid...)
		out[idx] = b
		return out
	}
	// Frame layout here: len | version | type | flags | streamID.
	cases := map[string][]byte{
		"unknown version":        mutate(1, 9),
		"unknown frame type":     mutate(2, 5),
		"zero frame type":        mutate(2, 0),
		"unknown method":         mutate(3, 3),
		"unknown request flags":  mutate(3, 0x80),
		"flags on response":      AppendFrame(nil, Frame{Type: FrameResponse, Flags: 0x01, StreamID: 1}),
		"flags on error":         AppendFrame(nil, Frame{Type: FrameError, Flags: 0x04, StreamID: 1}),
		"unknown batch flags":    AppendFrame(nil, Frame{Type: FrameBatch, Flags: 0x02, StreamID: 1}),
		"empty body":             {0x00},
		"stream id truncated":    {0x04, Version1, FrameRequest, MethodPing, 0x80},
		"length prefix overlong": append([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, valid[1:]...),
	}
	for name, b := range cases {
		if _, _, err := DecodeFrame(b, 0); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s: want ErrBadFrame, got %v", name, err)
		}
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	full := AppendFrame(nil, Frame{Type: FrameRequest, Flags: MethodOffload, StreamID: 9,
		Payload: AppendOffloadRequest(nil, canonicalOffloadRequest())})
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeFrame(full[:i], 0); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("prefix %d/%d: want ErrShortFrame, got %v", i, len(full), err)
		}
	}
}

func TestDecodeFrameOversized(t *testing.T) {
	big := AppendFrame(nil, Frame{Type: FrameRequest, Flags: MethodOffload, StreamID: 1,
		Payload: make([]byte, 4096)})
	if _, _, err := DecodeFrame(big, 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// At exactly the cap the frame passes.
	if _, _, err := DecodeFrame(big, len(big)); err != nil {
		t.Fatalf("frame at cap rejected: %v", err)
	}
}

func TestReadFrameMatchesDecodeFrame(t *testing.T) {
	frames := goldenFrames()
	var stream []byte
	names := make([]string, 0, len(frames))
	for name := range frames {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		stream = AppendFrame(stream, frames[name])
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	for _, name := range names {
		got, err := ReadFrame(br, 0)
		if err != nil {
			t.Fatalf("%s: ReadFrame: %v", name, err)
		}
		if !reflect.DeepEqual(got, frames[name]) {
			t.Fatalf("%s: stream decode mismatch\n got %+v\nwant %+v", name, got, frames[name])
		}
	}
	if _, err := ReadFrame(br, 0); err != io.EOF {
		t.Fatalf("want clean io.EOF at stream end, got %v", err)
	}
}

func TestReadFrameRejectsOversizedBeforeReading(t *testing.T) {
	// The declared length is checked against the cap before any body
	// byte is read: a reader that fails on Read proves the decoder
	// never touched the body.
	declared := AppendFrame(nil, Frame{Type: FrameRequest, Flags: MethodPing, StreamID: 1,
		Payload: make([]byte, 2048)})
	br := bufio.NewReader(io.MultiReader(
		bytes.NewReader(declared[:2]), // length prefix (2-byte uvarint for this size)
		readerFunc(func([]byte) (int, error) { return 0, errors.New("body read attempted") }),
	))
	if _, err := ReadFrame(br, 1024); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge before body read, got %v", err)
	}
}

type readerFunc func([]byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

func TestReadFrameTruncatedBody(t *testing.T) {
	full := AppendFrame(nil, Frame{Type: FrameRequest, Flags: MethodOffload, StreamID: 1,
		Payload: make([]byte, 1000)})
	br := bufio.NewReader(bytes.NewReader(full[:len(full)/2]))
	if _, err := ReadFrame(br, 0); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("want ErrShortFrame, got %v", err)
	}
}

func TestReadFrameAllocationBounded(t *testing.T) {
	// A peer declaring a near-cap frame and then stalling must not make
	// the reader pre-allocate the declared size: allocation grows with
	// bytes received (64 KiB chunks), not with the lie.
	var prefix [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(prefix[:], uint64(DefaultMaxFrame-1))
	r := bufio.NewReader(io.MultiReader(
		bytes.NewReader(prefix[:n]),
		bytes.NewReader(make([]byte, 100)), // 100 real bytes, then EOF
	))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := ReadFrame(r, 0); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("want ErrShortFrame, got %v", err)
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("reader allocated %d bytes for a %d-byte lie backed by 100 real bytes", grew, DefaultMaxFrame-1)
	}
}

func TestWriteFrameReusesScratch(t *testing.T) {
	var sink bytes.Buffer
	buf, err := WriteFrame(&sink, nil, Frame{Type: FrameRequest, Flags: MethodPing, StreamID: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := sink.Len()
	buf2, err := WriteFrame(&sink, buf, Frame{Type: FrameRequest, Flags: MethodPing, StreamID: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 2*first {
		t.Fatalf("second write emitted %d bytes, want %d", sink.Len()-first, first)
	}
	if cap(buf2) < cap(buf) {
		t.Fatalf("scratch shrank: %d -> %d", cap(buf), cap(buf2))
	}
}
