package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"testing"
	"time"

	"accelcloud/internal/tasks"
)

// startEchoServer serves an Offload handler that echoes each call's
// state data back (after a small random delay, so stream completion
// order scrambles relative to issue order) — the fixture the
// multiplexing tests use to prove streams never swap payloads.
func startEchoServer(t *testing.T) (addr string, srv *Server) {
	t.Helper()
	srv = &Server{H: Handlers{
		Offload: func(ctx context.Context, req OffloadRequest) (OffloadResponse, int) {
			time.Sleep(time.Duration(rand.IntN(2000)) * time.Microsecond)
			return OffloadResponse{
				Result: tasks.Result{Task: req.State.Task, Data: append([]byte(nil), req.State.Data...)},
				Group:  req.Group,
			}, 200
		},
	}}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(lis) }()
	t.Cleanup(func() { _ = srv.Close() })
	return lis.Addr().String(), srv
}

// TestMuxConcurrentStreamsNeverInterleave is the -race multiplexing
// proof: many goroutines pipeline calls over ONE connection, each call
// carrying a unique payload, and every response must come back on the
// stream that asked for it with the payload intact.
func TestMuxConcurrentStreamsNeverInterleave(t *testing.T) {
	addr, _ := startEchoServer(t)
	client := NewClient(addr)
	defer client.Close()

	const goroutines = 8
	const callsEach = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*callsEach)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				data := make([]byte, 16+rand.IntN(512))
				binary.LittleEndian.PutUint64(data, uint64(g))
				binary.LittleEndian.PutUint64(data[8:], uint64(i))
				for j := 16; j < len(data); j++ {
					data[j] = byte(g*31 + i + j)
				}
				req := OffloadRequest{
					UserID: g, Group: g*1000 + i, BatteryLevel: 0.5,
					State: tasks.State{Task: fmt.Sprintf("echo-%d-%d", g, i), Data: data},
				}
				payload := AppendOffloadRequest(nil, req)
				f, err := client.Call(context.Background(), FrameRequest, MethodOffload, payload)
				if err != nil {
					errs <- fmt.Errorf("call %d/%d: %w", g, i, err)
					return
				}
				resp, err := DecodeOffloadResponse(f.Payload)
				if err != nil {
					errs <- fmt.Errorf("decode %d/%d: %w", g, i, err)
					return
				}
				if resp.Result.Task != req.State.Task || !bytes.Equal(resp.Result.Data, data) || resp.Group != req.Group {
					errs <- fmt.Errorf("stream %d/%d answered with another call's payload: task=%q group=%d",
						g, i, resp.Result.Task, resp.Group)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServerRejectsGarbage proves an undecodable byte stream gets a
// stream-0 error frame and a dropped connection, never a hang or a
// panic.
func TestServerRejectsGarbage(t *testing.T) {
	addr, _ := startEchoServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// A framed lie: valid length prefix, garbage header.
	if _, err := nc.Write([]byte{0x05, 0xff, 0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	_ = nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	conn := NewConn(nc, 0)
	defer conn.Close()
	// The server reports on stream 0, which no Call waits on; observe
	// the teardown instead: the next call must fail with ErrClosed.
	_, err = conn.Call(context.Background(), FrameRequest, MethodPing, nil)
	if err == nil {
		t.Fatal("ping succeeded on a poisoned connection")
	}
}

// TestServerRejectsOversizedFrame proves the declared-length cap
// applies server-side.
func TestServerRejectsOversizedFrame(t *testing.T) {
	srv := &Server{MaxFrame: 1024, H: Handlers{
		Offload: func(ctx context.Context, req OffloadRequest) (OffloadResponse, int) {
			return OffloadResponse{}, 200
		},
	}}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(lis) }()
	defer srv.Close()

	nc, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var prefix [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(prefix[:], 1<<20)
	if _, err := nc.Write(prefix[:n]); err != nil {
		t.Fatal(err)
	}
	// The server must answer with a FrameError and close; read it raw.
	_ = nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	total := 0
	for {
		k, err := nc.Read(buf[total:])
		total += k
		if err != nil {
			break
		}
	}
	f, _, err := DecodeFrame(buf[:total], 0)
	if err != nil {
		t.Fatalf("server's rejection frame undecodable: %v", err)
	}
	if f.Type != FrameError || f.StreamID != 0 {
		t.Fatalf("want stream-0 error frame, got type=%d stream=%d", f.Type, f.StreamID)
	}
	e, err := DecodeErrorFrame(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != 400 {
		t.Fatalf("want 400-equivalent code, got %d", e.Code)
	}
}

// TestClientRedialsAfterServerRestart proves the persistent client
// survives a peer restart: the broken connection fails pending calls
// (retryably) and the next call dials fresh.
func TestClientRedialsAfterServerRestart(t *testing.T) {
	srv := &Server{H: Handlers{}}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	go func() { _ = srv.Serve(lis) }()

	client := NewClient(addr)
	defer client.Close()
	if err := client.Ping(context.Background()); err != nil {
		t.Fatalf("first ping: %v", err)
	}
	_ = srv.Close()

	// The dropped connection surfaces as ErrClosed (or a failed dial
	// while the port is dark) — retryable territory, not a hang.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := client.Ping(ctx); err == nil {
		t.Fatal("ping succeeded against a closed server")
	}

	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv2 := &Server{H: Handlers{}}
	go func() { _ = srv2.Serve(lis2) }()
	defer srv2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		err := client.Ping(context.Background())
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered after restart: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCallContextCancellation proves an abandoned stream neither hangs
// the caller nor poisons the connection for other streams.
func TestCallContextCancellation(t *testing.T) {
	block := make(chan struct{})
	srv := &Server{H: Handlers{
		Offload: func(ctx context.Context, req OffloadRequest) (OffloadResponse, int) {
			if req.State.Task == "block" {
				select {
				case <-block:
				case <-ctx.Done():
				}
			}
			return OffloadResponse{}, 200
		},
	}}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(lis) }()
	defer srv.Close()

	client := NewClient(lis.Addr().String())
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	payload := AppendOffloadRequest(nil, OffloadRequest{State: tasks.State{Task: "block"}})
	if _, err := client.Call(ctx, FrameRequest, MethodOffload, payload); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	close(block)
	// The connection itself stays healthy for other streams.
	if err := client.Ping(context.Background()); err != nil {
		t.Fatalf("connection poisoned by abandoned stream: %v", err)
	}
}
