package wire

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"
)

// DefaultDialTimeout bounds connection establishment when the caller's
// context carries no earlier deadline.
const DefaultDialTimeout = 5 * time.Second

// Client maintains one persistent multiplexed connection to a binary
// peer, redialing transparently after the connection breaks — the
// binary counterpart of the pooled HTTP transport. All methods are
// safe for concurrent use; concurrent calls share the connection as
// independent streams.
type Client struct {
	// Addr is the peer's host:port.
	Addr string
	// DialTimeout bounds each dial (0 selects DefaultDialTimeout).
	DialTimeout time.Duration
	// MaxFrame caps inbound frames (0 selects DefaultMaxFrame).
	MaxFrame int

	mu   sync.Mutex
	conn *Conn
}

// NewClient builds a client for a binary peer at host:port.
func NewClient(addr string) *Client { return &Client{Addr: addr} }

// get returns a live connection, dialing if none exists or the cached
// one has broken. The mutex is held across the dial so a thundering
// herd after a peer restart performs one dial, not one per caller.
func (c *Client) get(ctx context.Context) (*Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil && !c.conn.Broken() {
		return c.conn, nil
	}
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	timeout := c.DialTimeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	dctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var d net.Dialer
	nc, err := d.DialContext(dctx, "tcp", c.Addr)
	if err != nil {
		return nil, err
	}
	c.conn = NewConn(nc, c.MaxFrame)
	return c.conn, nil
}

// invalidate drops a broken connection so the next call redials.
func (c *Client) invalidate(conn *Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == conn {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// Call sends one frame and returns the answering frame, dialing or
// redialing as needed. Connection-level failures invalidate the cached
// connection; the error is returned to the caller (the rpc retry
// budget decides whether to re-send).
func (c *Client) Call(ctx context.Context, ftype, flags byte, payload []byte) (Frame, error) {
	conn, err := c.get(ctx)
	if err != nil {
		return Frame{}, err
	}
	f, err := conn.Call(ctx, ftype, flags, payload)
	if err != nil && errors.Is(err, ErrClosed) {
		c.invalidate(conn)
	}
	return f, err
}

// Ping round-trips an empty request frame — the binary liveness probe.
func (c *Client) Ping(ctx context.Context) error {
	f, err := c.Call(ctx, FrameRequest, MethodPing, nil)
	if err != nil {
		return err
	}
	if f.Type != FrameResponse {
		return errors.New("wire: ping answered by non-response frame")
	}
	return nil
}

// Close drops the cached connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	return nil
}
