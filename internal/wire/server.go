package wire

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"sync"
)

// Handlers are the application callbacks a Server dispatches to.
type Handlers struct {
	// Offload serves one offload call, returning the response and its
	// HTTP-equivalent status code (200 on success) — the same pair the
	// JSON compat handler produces, so both protocols classify
	// failures identically. Batch frames fan out through this handler
	// one call at a time, which is what keeps pick policies, in-flight
	// counters, health observation, and chaos injection seeing
	// individual calls.
	Offload func(ctx context.Context, req OffloadRequest) (OffloadResponse, int)
	// Execute serves one direct surrogate execution (errors travel in
	// the response's Error field, mirroring the HTTP surrogate).
	Execute func(ctx context.Context, req ExecuteRequest) ExecuteResponse
}

// Server accepts binary protocol connections and dispatches frames.
// Each request frame is served on its own goroutine, so slow calls
// never block other streams on the same connection; responses are
// written under a per-connection mutex.
type Server struct {
	// H holds the application callbacks; a nil callback rejects the
	// corresponding method with a 501 error frame.
	H Handlers
	// MaxFrame caps inbound frames (0 selects DefaultMaxFrame).
	MaxFrame int

	mu     sync.Mutex
	lis    []net.Listener
	conns  map[net.Conn]context.CancelFunc
	closed bool
}

// Serve accepts connections until the listener fails or Close is
// called (which returns nil).
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = lis.Close()
		return ErrClosed
	}
	s.lis = append(s.lis, lis)
	if s.conns == nil {
		s.conns = make(map[net.Conn]context.CancelFunc)
	}
	s.mu.Unlock()
	for {
		nc, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		ctx, cancel := context.WithCancel(context.Background())
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			cancel()
			_ = nc.Close()
			return nil
		}
		s.conns[nc] = cancel
		s.mu.Unlock()
		go s.serveConn(ctx, nc)
	}
}

// Close stops the listeners and tears down live connections;
// in-flight handlers see their contexts cancelled.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.lis = nil
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	for _, l := range lis {
		_ = l.Close()
	}
	for nc, cancel := range conns {
		cancel()
		_ = nc.Close()
	}
	return nil
}

// connWriter serializes response frames onto one connection.
type connWriter struct {
	mu   sync.Mutex
	nc   net.Conn
	wbuf []byte
}

func (w *connWriter) write(f Frame) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	w.wbuf, err = WriteFrame(w.nc, w.wbuf, f)
	return err
}

func (s *Server) serveConn(ctx context.Context, nc net.Conn) {
	defer func() {
		s.mu.Lock()
		if cancel, ok := s.conns[nc]; ok {
			cancel()
			delete(s.conns, nc)
		}
		s.mu.Unlock()
		_ = nc.Close()
	}()
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(nc, 64<<10)
	w := &connWriter{nc: nc}
	for {
		f, err := ReadFrame(br, s.MaxFrame)
		if err != nil {
			// An undecodable or oversized frame leaves the stream
			// position unknowable; report on stream 0 and drop the
			// connection. A clean EOF or cancelled context just ends.
			if ctx.Err() == nil && err != io.EOF &&
				(errors.Is(err, ErrBadFrame) || errors.Is(err, ErrFrameTooLarge)) {
				_ = w.write(errorFrame(0, http.StatusBadRequest, err.Error()))
			}
			return
		}
		go s.dispatch(ctx, w, f)
	}
}

// errorFrame builds a FrameError response.
func errorFrame(stream uint64, code int, msg string) Frame {
	return Frame{
		Type:     FrameError,
		StreamID: stream,
		Payload:  AppendErrorFrame(nil, ErrorFrame{Code: code, Message: msg}),
	}
}

// dispatch serves one inbound frame. Write errors are ignored: the
// read loop will observe the broken connection and tear it down.
func (s *Server) dispatch(ctx context.Context, w *connWriter, f Frame) {
	switch f.Type {
	case FrameRequest:
		switch f.Flags & methodMask {
		case MethodPing:
			_ = w.write(Frame{Type: FrameResponse, StreamID: f.StreamID})
		case MethodOffload:
			if s.H.Offload == nil {
				_ = w.write(errorFrame(f.StreamID, http.StatusNotImplemented, "wire: offload not served here"))
				return
			}
			req, err := DecodeOffloadRequest(f.Payload)
			if err != nil {
				_ = w.write(errorFrame(f.StreamID, http.StatusBadRequest, err.Error()))
				return
			}
			resp, code := s.H.Offload(ctx, req)
			if code != 0 && code != http.StatusOK {
				_ = w.write(errorFrame(f.StreamID, code, resp.Error))
				return
			}
			_ = w.write(Frame{Type: FrameResponse, StreamID: f.StreamID, Payload: AppendOffloadResponse(nil, resp)})
		case MethodExecute:
			if s.H.Execute == nil {
				_ = w.write(errorFrame(f.StreamID, http.StatusNotImplemented, "wire: execute not served here"))
				return
			}
			req, err := DecodeExecuteRequest(f.Payload)
			if err != nil {
				_ = w.write(errorFrame(f.StreamID, http.StatusBadRequest, err.Error()))
				return
			}
			resp := s.H.Execute(ctx, req)
			_ = w.write(Frame{Type: FrameResponse, StreamID: f.StreamID, Payload: AppendExecuteResponse(nil, resp)})
		}
	case FrameBatch:
		if f.Flags&FlagBatchResponse != 0 {
			_ = w.write(errorFrame(f.StreamID, http.StatusBadRequest, "wire: batch response frame sent to server"))
			return
		}
		if s.H.Offload == nil {
			_ = w.write(errorFrame(f.StreamID, http.StatusNotImplemented, "wire: offload not served here"))
			return
		}
		batch, err := DecodeBatchRequest(f.Payload)
		if err != nil {
			_ = w.write(errorFrame(f.StreamID, http.StatusBadRequest, err.Error()))
			return
		}
		// Fan the chain out per call: every call takes its own trip
		// through the router, so the data plane's accounting is
		// identical whether calls arrive alone or chained.
		results := make([]BatchResult, len(batch.Calls))
		var wg sync.WaitGroup
		for i, call := range batch.Calls {
			wg.Add(1)
			go func(i int, call OffloadRequest) {
				defer wg.Done()
				resp, code := s.H.Offload(ctx, call)
				if code == 0 {
					code = http.StatusOK
				}
				results[i] = BatchResult{Code: code, Resp: resp}
			}(i, call)
		}
		wg.Wait()
		_ = w.write(Frame{
			Type:     FrameBatch,
			Flags:    FlagBatchResponse,
			StreamID: f.StreamID,
			Payload:  AppendBatchResponse(nil, BatchResponse{Results: results}),
		})
	default:
		// FrameResponse / FrameError have no meaning inbound on a
		// server; answer with a protocol error on the same stream.
		_ = w.write(errorFrame(f.StreamID, http.StatusBadRequest, "wire: unexpected frame type from client"))
	}
}
