package wire

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Conn is the client side of one multiplexed connection: any number of
// goroutines call concurrently, each call travels on its own stream
// id, and a background read loop routes response frames back to their
// callers — so one persistent TCP connection pipelines a whole
// device's offload traffic without head-of-line blocking between
// calls.
type Conn struct {
	nc net.Conn
	br *bufio.Reader

	// wmu serializes frame writes; wbuf is the reused encode scratch.
	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan Frame
	err     error // terminal error, set once under mu
	closed  bool

	maxFrame int
}

// NewConn wraps an established connection and starts its read loop.
// max caps inbound frame sizes (0 selects DefaultMaxFrame). TCP
// connections get NoDelay set: frames are full messages, so Nagle
// coalescing only adds latency.
func NewConn(nc net.Conn, max int) *Conn {
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	if max <= 0 {
		max = DefaultMaxFrame
	}
	c := &Conn{
		nc:       nc,
		br:       bufio.NewReaderSize(nc, 64<<10),
		bw:       bufio.NewWriterSize(nc, 64<<10),
		pending:  make(map[uint64]chan Frame),
		maxFrame: max,
	}
	go c.readLoop()
	return c
}

// readLoop routes inbound frames to their waiting streams. Any read
// error is terminal: the connection is failed as a whole and every
// pending call gets the error, which the rpc retry layer treats as
// retryable (a fresh dial may reach a healthy peer).
func (c *Conn) readLoop() {
	for {
		f, err := ReadFrame(c.br, c.maxFrame)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.StreamID]
		if ok {
			delete(c.pending, f.StreamID)
		}
		c.mu.Unlock()
		if ok {
			// Buffered: an abandoned caller (context cancelled between
			// our delete and its own) never blocks the read loop.
			ch <- f
		}
	}
}

// fail marks the connection dead and wakes every pending call.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan Frame)
	c.mu.Unlock()
	_ = c.nc.Close()
	for _, ch := range pending {
		close(ch)
	}
}

// Close tears the connection down; pending calls fail with ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	alreadyClosed := c.closed
	c.closed = true
	c.mu.Unlock()
	if alreadyClosed {
		return nil
	}
	c.fail(ErrClosed)
	return nil
}

// Broken reports whether the connection has hit a terminal error.
func (c *Conn) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

// writeFrame serializes one frame onto the wire (single buffered write
// plus flush, under the write mutex).
func (c *Conn) writeFrame(f Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.wbuf = AppendFrame(c.wbuf[:0], f)
	if _, err := c.bw.Write(c.wbuf); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Call sends one frame and waits for the frame answering its stream
// id. The frame's StreamID is assigned here; Type, Flags, and Payload
// come from the caller. On context cancellation the stream is
// abandoned (a late response is dropped by the read loop) and the
// context error returned.
func (c *Conn) Call(ctx context.Context, ftype, flags byte, payload []byte) (Frame, error) {
	id := c.nextID.Add(1)
	ch := make(chan Frame, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return Frame{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.writeFrame(Frame{Type: ftype, Flags: flags, StreamID: id, Payload: payload}); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// A write error poisons the buffered writer state for every
		// stream; fail the connection so callers redial.
		c.fail(fmt.Errorf("%w: write: %v", ErrClosed, err))
		return Frame{}, fmt.Errorf("wire: write frame: %w", err)
	}
	select {
	case f, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = ErrClosed
			}
			return Frame{}, err
		}
		return f, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Frame{}, ctx.Err()
	}
}
