package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Frame is one decoded protocol frame.
type Frame struct {
	// Version is the protocol version (Version1).
	Version byte
	// Type is the frame kind (FrameRequest..FrameError).
	Type byte
	// Flags carry the request method or the batch direction; meaning
	// depends on Type (see the package doc).
	Flags byte
	// StreamID multiplexes concurrent calls over one connection: a
	// response frame carries the id of the request it answers.
	StreamID uint64
	// Payload is the encoded message. Decoders sub-slice the input
	// buffer; callers that outlive the buffer must copy.
	Payload []byte
}

// validHeader rejects unknown versions, types, and flag bits — the
// strictness half of the conformance contract: a v1 peer never guesses
// at bits it does not understand.
func validHeader(version, ftype, flags byte) error {
	if version != Version1 {
		return fmt.Errorf("%w: unknown version %d", ErrBadFrame, version)
	}
	switch ftype {
	case FrameRequest:
		if flags&^byte(methodMask) != 0 {
			return fmt.Errorf("%w: unknown request flags %#x", ErrBadFrame, flags)
		}
		if flags&methodMask == 3 {
			return fmt.Errorf("%w: unknown method %d", ErrBadFrame, flags&methodMask)
		}
	case FrameResponse, FrameError:
		if flags != 0 {
			return fmt.Errorf("%w: unexpected flags %#x on frame type %d", ErrBadFrame, flags, ftype)
		}
	case FrameBatch:
		if flags&^byte(FlagBatchResponse) != 0 {
			return fmt.Errorf("%w: unknown batch flags %#x", ErrBadFrame, flags)
		}
	default:
		return fmt.Errorf("%w: unknown frame type %d", ErrBadFrame, ftype)
	}
	return nil
}

// AppendFrame encodes f after dst. The header fields are taken from f
// except Version, which is always written as Version1.
func AppendFrame(dst []byte, f Frame) []byte {
	// Header length: version + type + flags + uvarint(streamID).
	var sid [binary.MaxVarintLen64]byte
	sidLen := binary.PutUvarint(sid[:], f.StreamID)
	dst = binary.AppendUvarint(dst, uint64(3+sidLen+len(f.Payload)))
	dst = append(dst, Version1, f.Type, f.Flags)
	dst = append(dst, sid[:sidLen]...)
	return append(dst, f.Payload...)
}

// parseBody decodes the post-length portion of a frame (header +
// payload). The payload is a sub-slice of body.
func parseBody(body []byte) (Frame, error) {
	if len(body) < 3 {
		return Frame{}, fmt.Errorf("%w: header truncated", ErrBadFrame)
	}
	f := Frame{Version: body[0], Type: body[1], Flags: body[2]}
	if err := validHeader(f.Version, f.Type, f.Flags); err != nil {
		return Frame{}, err
	}
	sid, n := binary.Uvarint(body[3:])
	if n <= 0 {
		return Frame{}, fmt.Errorf("%w: bad stream id", ErrBadFrame)
	}
	f.StreamID = sid
	if payload := body[3+n:]; len(payload) > 0 {
		f.Payload = payload
	}
	return f, nil
}

// DecodeFrame decodes one frame from the start of b, returning the
// frame and the bytes consumed. It never allocates proportionally to a
// declared length: the length prefix is validated against max and
// against the bytes actually present, and the payload is a sub-slice
// of b. A max of 0 selects DefaultMaxFrame.
func DecodeFrame(b []byte, max int) (Frame, int, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	length, n := binary.Uvarint(b)
	if n == 0 {
		return Frame{}, 0, fmt.Errorf("%w: length prefix truncated", ErrShortFrame)
	}
	if n < 0 {
		return Frame{}, 0, fmt.Errorf("%w: length prefix overflows", ErrBadFrame)
	}
	if length > uint64(max) {
		return Frame{}, 0, fmt.Errorf("%w: declared %d > cap %d", ErrFrameTooLarge, length, max)
	}
	if length > uint64(len(b)-n) {
		return Frame{}, 0, fmt.Errorf("%w: declared %d, have %d", ErrShortFrame, length, len(b)-n)
	}
	f, err := parseBody(b[n : n+int(length)])
	if err != nil {
		return Frame{}, 0, err
	}
	return f, n + int(length), nil
}

// readChunk bounds a single allocation step while reading a declared
// frame length from a stream: memory grows with bytes actually
// received, never with the declared length alone.
const readChunk = 64 << 10

// ReadFrame reads one frame from a buffered stream. The declared
// length is capped at max (0 selects DefaultMaxFrame) before anything
// is allocated, and the body buffer grows chunk by chunk as bytes
// arrive, so a peer declaring a huge frame and stalling cannot make
// the reader pre-allocate the declared size. io.EOF is returned
// unwrapped on a clean end of stream.
func ReadFrame(br *bufio.Reader, max int) (Frame, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	length, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if length > uint64(max) {
		return Frame{}, fmt.Errorf("%w: declared %d > cap %d", ErrFrameTooLarge, length, max)
	}
	body := make([]byte, 0, min(int(length), readChunk))
	for uint64(len(body)) < length {
		chunk := min(int(length)-len(body), readChunk)
		start := len(body)
		body = append(body, make([]byte, chunk)...)
		if _, err := io.ReadFull(br, body[start:]); err != nil {
			return Frame{}, fmt.Errorf("%w: body truncated: %v", ErrShortFrame, err)
		}
	}
	return parseBody(body)
}

// WriteFrame encodes f into buf (a reusable scratch slice, may be nil)
// and writes it to w in one call, returning the grown scratch slice
// for reuse. Callers serialize writes themselves.
func WriteFrame(w io.Writer, buf []byte, f Frame) ([]byte, error) {
	buf = AppendFrame(buf[:0], f)
	_, err := w.Write(buf)
	return buf, err
}
