package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"accelcloud/internal/tasks"
)

// FuzzDecodeFrame is the decoder-robustness half of the conformance
// contract: for arbitrary bytes the decoder must never panic and never
// allocate past its cap, and anything it does accept must re-encode to
// a frame it decodes identically (decode∘encode = id on the accepted
// set). The seed corpus under testdata/fuzz/FuzzDecodeFrame holds one
// valid encoding per frame kind plus known-tricky headers; run with
// `go test -fuzz=FuzzDecodeFrame ./internal/wire/` to explore further.
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range goldenFrames() {
		f.Add(AppendFrame(nil, fr))
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x05, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b, 1<<20)
		if err != nil {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		// Accepted frames must survive a re-encode byte-identically up
		// to re-decode (the encoder always emits minimal varints, so
		// byte equality is only guaranteed after one normalization).
		re := AppendFrame(nil, fr)
		fr2, n2, err := DecodeFrame(re, 1<<20)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if n2 != len(re) || !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("decode∘encode not identity:\n got %+v\nwant %+v", fr2, fr)
		}
		// The payload decoders must be panic-free on whatever payload a
		// valid header smuggles in.
		switch fr.Type {
		case FrameRequest:
			switch fr.Flags & methodMask {
			case MethodOffload:
				_, _ = DecodeOffloadRequest(fr.Payload)
			case MethodExecute:
				_, _ = DecodeExecuteRequest(fr.Payload)
			}
		case FrameResponse:
			_, _ = DecodeOffloadResponse(fr.Payload)
			_, _ = DecodeExecuteResponse(fr.Payload)
		case FrameBatch:
			if fr.Flags&FlagBatchResponse != 0 {
				_, _ = DecodeBatchResponse(fr.Payload)
			} else {
				_, _ = DecodeBatchRequest(fr.Payload)
			}
		case FrameError:
			_, _ = DecodeErrorFrame(fr.Payload)
		}
	})
}

// FuzzRoundTrip drives the structured half: any OffloadRequest the
// client could build must survive encode → frame → decode bit-exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(7, 2, 0.75, "k-1", "sieve", 1000, []byte{1, 2, 3}, uint64(1))
	f.Add(0, 0, 0.0, "", "", 0, []byte(nil), uint64(0))
	f.Add(-5, -9, math.Inf(1), "idem", "x", -40, []byte("data"), uint64(1)<<63)
	f.Add(math.MaxInt, math.MinInt, math.NaN(), "\x00\xff", "üñî", math.MaxInt32, bytes.Repeat([]byte{0xab}, 300), uint64(42))
	f.Fuzz(func(t *testing.T, userID, group int, battery float64, idemKey, task string, size int, data []byte, streamID uint64) {
		req := OffloadRequest{
			UserID: userID, Group: group, BatteryLevel: battery, IdemKey: idemKey,
			State: tasks.State{Task: task, Size: size, Data: data},
		}
		frame := AppendFrame(nil, Frame{
			Type: FrameRequest, Flags: MethodOffload, StreamID: streamID,
			Payload: AppendOffloadRequest(nil, req),
		})
		fr, n, err := DecodeFrame(frame, 0)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("consumed %d of %d bytes", n, len(frame))
		}
		if fr.StreamID != streamID || fr.Type != FrameRequest || fr.Flags != MethodOffload {
			t.Fatalf("header mangled: %+v", fr)
		}
		got, err := DecodeOffloadRequest(fr.Payload)
		if err != nil {
			t.Fatalf("own payload rejected: %v", err)
		}
		if got.UserID != userID || got.Group != group || got.IdemKey != idemKey ||
			got.State.Task != task || got.State.Size != size {
			t.Fatalf("round trip mismatch:\n got %+v\nsent %+v", got, req)
		}
		// Bit-level float equality: NaN payloads must survive too.
		if math.Float64bits(got.BatteryLevel) != math.Float64bits(battery) {
			t.Fatalf("battery bits changed: %x -> %x", math.Float64bits(battery), math.Float64bits(got.BatteryLevel))
		}
		// nil and empty are canonically nil after a round trip.
		if len(data) == 0 {
			if got.State.Data != nil {
				t.Fatalf("empty data decoded non-nil: %#v", got.State.Data)
			}
		} else if !bytes.Equal(got.State.Data, data) {
			t.Fatalf("data changed: %x -> %x", data, got.State.Data)
		}
	})
}
