// Package wire implements the binary framed RPC protocol of the
// offload path: length-prefixed frames over persistent multiplexed TCP
// connections, replacing one JSON-over-HTTP round trip per call with
// pipelined per-stream frames and batched call chains (DESIGN.md §8).
//
// # Frame layout
//
//	uvarint(frameLen) | version(1B) | type(1B) | flags(1B) | uvarint(streamID) | payload
//
// frameLen counts everything after the length prefix (header bytes and
// payload). The header is varint-framed: fixed one-byte version, type,
// and flags followed by a uvarint stream id, so small stream ids cost
// one byte and the header never needs padding. Within a connection the
// client allocates stream ids; a response frame carries the id of the
// request it answers, which is what lets one connection interleave any
// number of in-flight calls without head-of-line blocking on slow ones.
//
// # Frame kinds
//
//	FrameRequest  — one call; flags bits 0-1 select the method
//	                (offload, execute, ping)
//	FrameResponse — the reply to a FrameRequest (empty for ping)
//	FrameBatch    — a chain of offload calls in one frame; flag bit 0
//	                distinguishes the request (0) from the response (1)
//	                direction
//	FrameError    — a protocol- or routing-level failure, carrying an
//	                HTTP-equivalent status code so the JSON compat mode
//	                and the binary mode classify errors identically
//
// The decoder is strict: unknown versions, types, or flag bits are
// rejected, declared lengths are capped before any allocation happens,
// and payloads are sub-sliced rather than copied, so adversarial input
// can neither panic the decoder nor make it over-allocate — properties
// the conformance suite locks in with golden vectors and go-fuzz
// corpora (wire/testdata).
package wire

import "errors"

// Version1 is the only protocol version this codec speaks. Unknown
// versions are rejected at decode time.
const Version1 = 1

// Frame types.
const (
	// FrameRequest carries one encoded call (method selected by flags).
	FrameRequest = 1
	// FrameResponse answers a FrameRequest on the same stream id.
	FrameResponse = 2
	// FrameBatch carries a chain of offload calls (or their responses)
	// executed server-side in one round trip.
	FrameBatch = 3
	// FrameError reports a failure with an HTTP-equivalent status code.
	FrameError = 4
)

// Request-frame flags: bits 0-1 select the method.
const (
	// MethodOffload routes an OffloadRequest through the front-end.
	MethodOffload = 0
	// MethodExecute runs an ExecuteRequest directly on a surrogate.
	MethodExecute = 1
	// MethodPing is the liveness probe (empty payload, empty response).
	MethodPing = 2

	// methodMask extracts the method bits from request-frame flags.
	methodMask = 0x03
)

// FlagBatchResponse marks a FrameBatch that carries responses rather
// than calls (server→client direction).
const FlagBatchResponse = 0x01

// DefaultMaxFrame bounds a frame's declared length: the HTTP compat
// mode's 8 MiB body limit, doubled so a full batch of maximum-size
// calls still fits in one frame.
const DefaultMaxFrame = 16 << 20

// MaxBatchCalls bounds the calls in one batch frame; longer chains must
// be split, keeping a single frame's fan-out (and the memory one
// malicious frame can pin) bounded.
const MaxBatchCalls = 1024

// Decode errors. ErrFrameTooLarge and ErrShortFrame are distinct so a
// stream reader can tell "wait for more bytes" from "protocol
// violation".
var (
	// ErrShortFrame means the buffer ends before the declared frame does.
	ErrShortFrame = errors.New("wire: short frame")
	// ErrFrameTooLarge means the declared length exceeds the decoder's cap.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size cap")
	// ErrBadFrame means a malformed header or payload: unknown version,
	// type, or flag bits, or a payload that does not parse.
	ErrBadFrame = errors.New("wire: malformed frame")
	// ErrClosed is returned by calls on a closed or broken connection.
	ErrClosed = errors.New("wire: connection closed")
)
