package wire

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"accelcloud/internal/tasks"
)

// canonical messages shared by the round-trip and golden-vector tests.
// Float fields use values exact in binary so encodings are stable.
func canonicalOffloadRequest() OffloadRequest {
	return OffloadRequest{
		UserID:       7,
		Group:        2,
		BatteryLevel: 0.75,
		IdemKey:      "k-1",
		Origin:       "eu-north",
		SpanID:       0x2a,
		State:        tasks.State{Task: "sieve", Size: 1000, Data: []byte{0x01, 0x02, 0x03}},
	}
}

func canonicalOffloadResponse() OffloadResponse {
	return OffloadResponse{
		Result:  tasks.Result{Task: "sieve", Data: []byte{0xaa, 0xbb}, Ops: 168},
		Server:  "surrogate-g2-0",
		Group:   2,
		Timings: Timings{RoutingMs: 1.5, BackendMs: 2.25, CloudMs: 0.5},
		Span: &Span{
			ID: 0x2a, QueueMs: 0.25, LingerMs: 0.125, ColdMs: 0,
			NetworkMs: 1.75, ExecMs: 0.5, Hops: 1,
		},
	}
}

func TestOffloadRequestRoundTrip(t *testing.T) {
	in := canonicalOffloadRequest()
	out, err := DecodeOffloadRequest(AppendOffloadRequest(nil, in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestOffloadResponseRoundTrip(t *testing.T) {
	in := canonicalOffloadResponse()
	out, err := DecodeOffloadResponse(AppendOffloadResponse(nil, in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestExecuteRoundTrips(t *testing.T) {
	req := ExecuteRequest{State: tasks.State{Task: "matmul", Size: 64, Data: []byte("abc")}}
	gotReq, err := DecodeExecuteRequest(AppendExecuteRequest(nil, req))
	if err != nil {
		t.Fatalf("decode request: %v", err)
	}
	if !reflect.DeepEqual(req, gotReq) {
		t.Fatalf("request mismatch: %+v != %+v", req, gotReq)
	}
	resp := ExecuteResponse{
		Result:  tasks.Result{Task: "matmul", Ops: -3},
		CloudMs: 12.5,
		Server:  "s1",
		Error:   "boom",
	}
	gotResp, err := DecodeExecuteResponse(AppendExecuteResponse(nil, resp))
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if !reflect.DeepEqual(resp, gotResp) {
		t.Fatalf("response mismatch: %+v != %+v", resp, gotResp)
	}
}

func TestBatchRoundTrips(t *testing.T) {
	req := BatchRequest{Calls: []OffloadRequest{
		canonicalOffloadRequest(),
		{UserID: 1, Group: 1, BatteryLevel: 0.5, State: tasks.State{Task: "fib", Size: 10}},
	}}
	gotReq, err := DecodeBatchRequest(AppendBatchRequest(nil, req))
	if err != nil {
		t.Fatalf("decode batch request: %v", err)
	}
	if !reflect.DeepEqual(req, gotReq) {
		t.Fatalf("batch request mismatch:\n in: %+v\nout: %+v", req, gotReq)
	}
	resp := BatchResponse{Results: []BatchResult{
		{Code: 200, Resp: canonicalOffloadResponse()},
		{Code: 502, Resp: OffloadResponse{Error: "dalvik: boom"}},
	}}
	gotResp, err := DecodeBatchResponse(AppendBatchResponse(nil, resp))
	if err != nil {
		t.Fatalf("decode batch response: %v", err)
	}
	if !reflect.DeepEqual(resp, gotResp) {
		t.Fatalf("batch response mismatch:\n in: %+v\nout: %+v", resp, gotResp)
	}
}

func TestUnsampledResponseRoundTrip(t *testing.T) {
	// The common case: no span. Presence flag costs one byte and the
	// decoded message keeps Span nil (not a zero-valued struct).
	in := canonicalOffloadResponse()
	in.Span = nil
	out, err := DecodeOffloadResponse(AppendOffloadResponse(nil, in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Span != nil {
		t.Fatalf("unsampled response decoded with span: %+v", out.Span)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestBadSpanPresenceFlagRejected(t *testing.T) {
	in := canonicalOffloadResponse()
	in.Span = nil
	b := AppendOffloadResponse(nil, in)
	// The presence flag sits right before the trailing Result. Find it
	// by re-encoding up to the flag.
	head := appendString(nil, in.Server)
	head = appendInt(head, in.Group)
	head = appendF64(head, in.Timings.RoutingMs)
	head = appendF64(head, in.Timings.BackendMs)
	head = appendF64(head, in.Timings.CloudMs)
	head = appendString(head, in.Error)
	b[len(head)] = 0x02 // flag must be 0 or 1
	if _, err := DecodeOffloadResponse(b); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad span presence flag accepted: %v", err)
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	in := ErrorFrame{Code: 503, Message: "router: no backend for group 9"}
	out, err := DecodeErrorFrame(AppendErrorFrame(nil, in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestNegativeIntsRoundTrip(t *testing.T) {
	// The zigzag varint path must survive the full signed range.
	for _, v := range []int{0, -1, 1, math.MinInt32, math.MaxInt32, math.MinInt64, math.MaxInt64} {
		b := appendInt(nil, v)
		c := &cur{b: b}
		got, err := c.sint()
		if err != nil {
			t.Fatalf("sint(%d): %v", v, err)
		}
		if got != v {
			t.Fatalf("sint(%d) = %d", v, got)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	b := AppendOffloadRequest(nil, canonicalOffloadRequest())
	if _, err := DecodeOffloadRequest(append(b, 0x00)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

func TestDecodeRejectsOverlongBlob(t *testing.T) {
	// A blob declaring more bytes than the payload holds must be
	// rejected before any allocation happens.
	b := appendString(nil, "sieve")
	b = appendInt(b, 1)
	// Declared 1 GiB of data, zero bytes present.
	b = append(b, 0x80, 0x80, 0x80, 0x80, 0x04)
	c := &cur{b: b}
	if _, err := decodeState(c); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overlong blob accepted: %v", err)
	}
}

func TestDecodeTruncatedMessages(t *testing.T) {
	// Every proper prefix of a valid message must fail cleanly, never
	// panic or succeed.
	full := AppendOffloadResponse(nil, canonicalOffloadResponse())
	for i := 0; i < len(full); i++ {
		if _, err := DecodeOffloadResponse(full[:i]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", i, len(full))
		}
	}
}

func TestBatchCountCapped(t *testing.T) {
	// Declared count above MaxBatchCalls.
	huge := []byte{0x81, 0x10} // uvarint 2049 > MaxBatchCalls
	if _, err := DecodeBatchRequest(huge); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized batch count accepted: %v", err)
	}
	// Declared count within the cap but exceeding the bytes present:
	// rejected before the per-call slice is allocated.
	short := []byte{0xff, 0x07} // uvarint 1023, no call bytes follow
	if _, err := DecodeBatchRequest(short); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("lying batch count accepted: %v", err)
	}
}

func TestNilAndEmptyBlobsCanonical(t *testing.T) {
	// nil and empty data encode identically and decode as nil, so
	// round-tripped messages compare equal however they were built.
	withNil := AppendExecuteRequest(nil, ExecuteRequest{State: tasks.State{Task: "t"}})
	withEmpty := AppendExecuteRequest(nil, ExecuteRequest{State: tasks.State{Task: "t", Data: []byte{}}})
	if !bytes.Equal(withNil, withEmpty) {
		t.Fatalf("nil and empty data encode differently: %x vs %x", withNil, withEmpty)
	}
	got, err := DecodeExecuteRequest(withEmpty)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.State.Data != nil {
		t.Fatalf("empty blob decoded non-nil: %#v", got.State.Data)
	}
}
