package sim

import (
	"hash/fnv"
	"math/rand"
)

// The scenario engine keeps thousands of generator substreams alive at
// once (one per user block of a million-user schedule). The standard
// Go1 rand source behind Stream/StreamN carries 607 words of state —
// ~5 KiB per stream — which would turn O(blocks) resident memory into
// hundreds of megabytes. LightSource is the small-state alternative: a
// splitmix64 generator whose whole state is one uint64, seeded through
// the same fnv1a derivation as Sub/SubN so light streams inherit the
// hierarchy's determinism guarantees (same (seed, name, index) → same
// sequence, independent of sibling streams).
//
// Light streams are a separate family from Stream/StreamN: the two
// generators produce unrelated sequences, so switching a call site
// between them is a schedule change. Existing digest-pinned code keeps
// the Go1 source; new large-scale generators use light streams.

// LightSource is a splitmix64 rand.Source64. The zero value is a valid
// generator seeded at 0; use Seed or NewLightSource to position it.
type LightSource struct {
	state uint64
}

var _ rand.Source64 = (*LightSource)(nil)

// NewLightSource returns a splitmix64 source at the given seed.
func NewLightSource(seed int64) *LightSource {
	return &LightSource{state: uint64(seed)}
}

// Uint64 implements rand.Source64 (splitmix64, Steele et al.).
func (s *LightSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *LightSource) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed implements rand.Source.
func (s *LightSource) Seed(seed int64) { s.state = uint64(seed) }

// Light returns a small-state rand.Rand for the named stream — the
// same (seed, name) determinism contract as Stream, but backed by a
// splitmix64 source of one machine word instead of the Go1 source's
// 607. Use for generators that must hold many streams resident.
func (g *RNG) Light(name string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	derived := g.seed ^ int64(h.Sum64())
	return rand.New(NewLightSource(derived))
}

// LightN is the indexed variant of Light (per-entity light streams).
func (g *RNG) LightN(name string, n int) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	var buf [8]byte
	v := uint64(n)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	derived := g.seed ^ int64(h.Sum64())
	return rand.New(NewLightSource(derived))
}
