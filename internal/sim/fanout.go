package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file holds the bounded worker pool shared by every sharded loop in
// the repository (netsim sample generation, the groups load-level
// benchmark, the experiment runner). The contract mirrors the intra-task
// pool of internal/tasks: indices are units of work, each index writes
// only to its own output slot, and therefore the observable result is
// independent of worker count and scheduling order.

// Workers normalizes a worker-count knob: n < 1 means "use every core",
// anything else is taken literally.
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// FanOut runs fn(i) for every i in [0, n) on at most workers goroutines.
// fn must confine its writes to per-index state; under that contract the
// result is deterministic for any workers value. workers <= 1 (or n <= 1)
// degrades to a plain serial loop with no goroutine overhead.
func FanOut(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// FanOutErr is FanOut for fallible work: it runs fn(i) for every i in
// [0, n) and returns the error of the LOWEST failing index — not the
// first to fail in wall-clock order — so the reported error is as
// deterministic as the work itself. All indices are attempted even after
// a failure; shards are independent, so there is nothing to unwind.
func FanOutErr(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	FanOut(n, workers, func(i int) {
		errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
