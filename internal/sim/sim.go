// Package sim provides a deterministic discrete-event simulation kernel.
//
// All experiments in this repository run on virtual time: events are
// scheduled on an Environment, executed in timestamp order, and ties are
// broken by scheduling order so that runs are reproducible bit-for-bit for
// a given seed. The kernel deliberately has no dependency on the wall
// clock.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Epoch is the virtual time origin used by all simulations. Using a fixed
// UTC instant keeps trace timestamps stable across runs and machines.
var Epoch = time.Date(2017, time.January, 1, 0, 0, 0, 0, time.UTC)

// ErrStopped is returned by Run when the simulation was halted via Stop
// before the horizon was reached.
var ErrStopped = errors.New("sim: stopped")

// Event is a unit of scheduled work. Fn runs at virtual time At.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Environment is a single-threaded discrete-event simulation. The zero
// value is not usable; construct with NewEnvironment.
type Environment struct {
	now     time.Time
	queue   eventQueue
	seq     uint64
	stopped bool
	// executed counts events processed; useful for progress accounting
	// and loop-detection in tests.
	executed uint64
}

// NewEnvironment returns a simulation environment starting at Epoch.
func NewEnvironment() *Environment {
	return &Environment{now: Epoch}
}

// NewEnvironmentAt returns a simulation environment starting at the given
// virtual instant.
func NewEnvironmentAt(start time.Time) *Environment {
	return &Environment{now: start}
}

// Now reports the current virtual time.
func (e *Environment) Now() time.Time { return e.now }

// Executed reports how many events have run so far.
func (e *Environment) Executed() uint64 { return e.executed }

// Pending reports how many events are scheduled but not yet run.
func (e *Environment) Pending() int { return len(e.queue) }

// ScheduleAt registers fn to run at virtual time at. Scheduling in the
// past is an error: simulations must not rewrite history.
func (e *Environment) ScheduleAt(at time.Time, fn func()) error {
	if fn == nil {
		return errors.New("sim: nil event function")
	}
	if at.Before(e.now) {
		return fmt.Errorf("sim: schedule at %v before now %v", at, e.now)
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
	return nil
}

// Schedule registers fn to run after delay d (non-negative).
func (e *Environment) Schedule(d time.Duration, fn func()) error {
	if d < 0 {
		return fmt.Errorf("sim: negative delay %v", d)
	}
	return e.ScheduleAt(e.now.Add(d), fn)
}

// Stop halts the simulation after the currently executing event returns.
func (e *Environment) Stop() { e.stopped = true }

// Run executes events in order until the queue drains. It returns
// ErrStopped if Stop was called.
func (e *Environment) Run() error {
	return e.run(func(*event) bool { return true })
}

// RunUntil executes events in order until the queue drains or the next
// event is after the horizon. Virtual time is left at the later of the
// last executed event and horizon (when the horizon cut execution short).
func (e *Environment) RunUntil(horizon time.Time) error {
	err := e.run(func(ev *event) bool { return !ev.at.After(horizon) })
	if err != nil {
		return err
	}
	if e.now.Before(horizon) {
		e.now = horizon
	}
	return nil
}

// RunFor advances the simulation by d of virtual time.
func (e *Environment) RunFor(d time.Duration) error {
	return e.RunUntil(e.now.Add(d))
}

func (e *Environment) run(admit func(*event) bool) error {
	e.stopped = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0]
		if !admit(next) {
			return nil
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.executed++
		next.fn()
	}
	return nil
}

// Ticker invokes fn every period until the environment stops scheduling it
// (fn returning false cancels the ticker). The first tick fires one period
// from now.
func (e *Environment) Ticker(period time.Duration, fn func(now time.Time) bool) error {
	if period <= 0 {
		return fmt.Errorf("sim: non-positive ticker period %v", period)
	}
	var tick func()
	tick = func() {
		if !fn(e.now) {
			return
		}
		// Re-arm. Scheduling forward from now can never fail.
		_ = e.Schedule(period, tick)
	}
	return e.Schedule(period, tick)
}
