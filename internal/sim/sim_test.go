package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEnvironmentStartsAtEpoch(t *testing.T) {
	env := NewEnvironment()
	if !env.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", env.Now(), Epoch)
	}
}

func TestNewEnvironmentAt(t *testing.T) {
	start := Epoch.Add(42 * time.Hour)
	env := NewEnvironmentAt(start)
	if !env.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", env.Now(), start)
	}
}

func TestScheduleRunsInTimestampOrder(t *testing.T) {
	env := NewEnvironment()
	var order []int
	for i, d := range []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second} {
		i := i
		if err := env.Schedule(d, func() { order = append(order, i) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTiesBreakBySchedulingOrder(t *testing.T) {
	env := NewEnvironment()
	var order []int
	at := env.Now().Add(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		if err := env.ScheduleAt(at, func() { order = append(order, i) }); err != nil {
			t.Fatalf("ScheduleAt: %v", err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie-break order = %v, want ascending", order)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	env := NewEnvironment()
	if err := env.ScheduleAt(Epoch.Add(-time.Second), func() {}); err == nil {
		t.Fatal("scheduling in the past should fail")
	}
	if err := env.Schedule(-time.Second, func() {}); err == nil {
		t.Fatal("negative delay should fail")
	}
}

func TestScheduleNilFnRejected(t *testing.T) {
	env := NewEnvironment()
	if err := env.Schedule(time.Second, nil); err == nil {
		t.Fatal("nil fn should fail")
	}
}

func TestNestedScheduling(t *testing.T) {
	env := NewEnvironment()
	var hits []time.Duration
	err := env.Schedule(time.Second, func() {
		hits = append(hits, env.Now().Sub(Epoch))
		if err := env.Schedule(2*time.Second, func() {
			hits = append(hits, env.Now().Sub(Epoch))
		}); err != nil {
			t.Errorf("nested Schedule: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(hits) != 2 || hits[0] != time.Second || hits[1] != 3*time.Second {
		t.Fatalf("hits = %v, want [1s 3s]", hits)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	env := NewEnvironment()
	var ran []time.Duration
	for _, d := range []time.Duration{time.Second, 5 * time.Second, 10 * time.Second} {
		d := d
		if err := env.Schedule(d, func() { ran = append(ran, d) }); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := env.RunUntil(Epoch.Add(6 * time.Second)); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(ran) != 2 {
		t.Fatalf("ran %d events before horizon, want 2", len(ran))
	}
	if got := env.Now(); !got.Equal(Epoch.Add(6 * time.Second)) {
		t.Fatalf("Now() = %v, want horizon", got)
	}
	if env.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", env.Pending())
	}
	// Resume past the horizon.
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ran) != 3 {
		t.Fatalf("ran %d events total, want 3", len(ran))
	}
}

func TestRunForAdvancesTime(t *testing.T) {
	env := NewEnvironment()
	if err := env.RunFor(time.Hour); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := env.Now(); !got.Equal(Epoch.Add(time.Hour)) {
		t.Fatalf("Now() = %v, want Epoch+1h", got)
	}
}

func TestStop(t *testing.T) {
	env := NewEnvironment()
	var count int
	for i := 0; i < 5; i++ {
		if err := env.Schedule(time.Duration(i+1)*time.Second, func() {
			count++
			if count == 2 {
				env.Stop()
			}
		}); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := env.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	// Run resumes after a stop.
	if err := env.Run(); err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestTicker(t *testing.T) {
	env := NewEnvironment()
	var ticks []time.Duration
	err := env.Ticker(time.Minute, func(now time.Time) bool {
		ticks = append(ticks, now.Sub(Epoch))
		return len(ticks) < 3
	})
	if err != nil {
		t.Fatalf("Ticker: %v", err)
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []time.Duration{time.Minute, 2 * time.Minute, 3 * time.Minute}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerRejectsNonPositivePeriod(t *testing.T) {
	env := NewEnvironment()
	if err := env.Ticker(0, func(time.Time) bool { return false }); err == nil {
		t.Fatal("zero period should fail")
	}
}

func TestExecutedCount(t *testing.T) {
	env := NewEnvironment()
	for i := 0; i < 7; i++ {
		if err := env.Schedule(time.Duration(i)*time.Second, func() {}); err != nil {
			t.Fatalf("Schedule: %v", err)
		}
	}
	if err := env.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if env.Executed() != 7 {
		t.Fatalf("Executed() = %d, want 7", env.Executed())
	}
}

// Property: for any set of non-negative delays, events run in
// non-decreasing timestamp order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		env := NewEnvironment()
		var seen []time.Time
		for _, d := range delays {
			if err := env.Schedule(time.Duration(d)*time.Millisecond, func() {
				seen = append(seen, env.Now())
			}); err != nil {
				return false
			}
		}
		if err := env.Run(); err != nil {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i].Before(seen[i-1]) {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7).Stream("devices")
	b := NewRNG(7).Stream("devices")
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (seed, name) should yield identical streams")
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	g := NewRNG(7)
	a := g.Stream("a")
	b := g.Stream("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("distinct stream names should not produce identical streams")
	}
}

func TestRNGStreamN(t *testing.T) {
	g := NewRNG(11)
	if g.Seed() != 11 {
		t.Fatalf("Seed() = %d, want 11", g.Seed())
	}
	a := g.StreamN("dev", 1)
	b := g.StreamN("dev", 2)
	a2 := g.StreamN("dev", 1)
	if a.Int63() != a2.Int63() {
		t.Fatal("StreamN must be stable for equal indices")
	}
	// Advance a to match a2's consumed count before comparing streams.
	diff := false
	for i := 0; i < 64; i++ {
		if a.Int63() != b.Int63() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("StreamN with different indices should differ")
	}
	_ = rand.Int // keep math/rand import honest in minimal builds
}
