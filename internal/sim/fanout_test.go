package sim

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestFanOutCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 32, runtime.NumCPU()} {
		const n = 100
		var hits [n]atomic.Int32
		FanOut(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestFanOutEmptyAndTiny(t *testing.T) {
	FanOut(0, 4, func(int) { t.Fatal("fn called for n=0") })
	ran := 0
	FanOut(1, 8, func(i int) { ran++ })
	if ran != 1 {
		t.Fatalf("n=1 ran %d times", ran)
	}
}

func TestFanOutErrReturnsLowestFailingIndex(t *testing.T) {
	wantErr := errors.New("boom-3")
	err := FanOutErr(10, 4, func(i int) error {
		switch i {
		case 3:
			return wantErr
		case 7:
			return errors.New("boom-7")
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want the index-3 error", err)
	}
	if err := FanOutErr(10, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestSubIsHierarchical(t *testing.T) {
	g := NewRNG(42)
	// Same derivation path → identical stream.
	a := g.Sub("x").Stream("y")
	b := g.Sub("x").Stream("y")
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("identical sub-derivations diverged")
		}
	}
	// Swapped path must NOT collide (the XOR scheme of Stream would).
	c := g.Sub("y").Stream("x")
	d := g.Sub("x").Stream("y")
	same := true
	for i := 0; i < 16; i++ {
		if c.Int63() != d.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("Sub(\"y\").Stream(\"x\") collides with Sub(\"x\").Stream(\"y\")")
	}
}

func TestSubNShardsIndependent(t *testing.T) {
	g := NewRNG(7)
	a := g.SubN("shard", 0).Stream("s")
	b := g.SubN("shard", 1).Stream("s")
	same := true
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("adjacent shard substreams identical")
	}
	// And reproducible.
	x := g.SubN("shard", 1).Stream("s")
	y := g.SubN("shard", 1).Stream("s")
	for i := 0; i < 16; i++ {
		if x.Int63() != y.Int63() {
			t.Fatal("shard substream not reproducible")
		}
	}
}
