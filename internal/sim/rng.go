package sim

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
)

// RNG derives independent deterministic random streams from a root seed.
// Each named stream is stable across runs: the same (seed, name) pair
// always yields the same sequence, and adding new streams does not perturb
// existing ones. This is the property that keeps experiment outputs
// reproducible while the codebase grows.
type RNG struct {
	seed int64
}

// NewRNG returns a stream factory rooted at seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed}
}

// Seed reports the root seed.
func (g *RNG) Seed() int64 { return g.seed }

// Stream returns a rand.Rand whose seed is derived from the root seed and
// the stream name.
func (g *RNG) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	// Writing to an fnv hash never fails.
	_, _ = h.Write([]byte(name))
	derived := g.seed ^ int64(h.Sum64())
	//nolint:gosec // deterministic simulation, not cryptography.
	return rand.New(rand.NewSource(derived))
}

// StreamN returns a rand.Rand derived from the stream name and an index,
// for per-entity streams (e.g. one per simulated device).
func (g *RNG) StreamN(name string, n int) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	var buf [8]byte
	v := uint64(n)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	derived := g.seed ^ int64(h.Sum64())
	return rand.New(rand.NewSource(derived))
}

// Sub derives a child stream factory. Unlike Stream, which XORs the name
// hash into the root seed (and is kept as-is for compatibility), Sub
// hashes the parent seed INTO the digest, so the derivation is
// hierarchical and order-sensitive: g.Sub("a").Stream("b") and
// g.Sub("b").Stream("a") are unrelated streams. Substreams let a shard of
// work own an RNG that depends only on the shard's identity — never on
// which goroutine runs it or in what order — which is what keeps parallel
// experiment output bit-identical to serial output.
func (g *RNG) Sub(name string) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.seed))
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(name))
	return &RNG{seed: int64(h.Sum64())}
}

// SubN derives an indexed child factory, for per-shard substreams (e.g.
// one per worker shard of a sample-generation loop).
func (g *RNG) SubN(name string, n int) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.seed))
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(name))
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	_, _ = h.Write(buf[:])
	return &RNG{seed: int64(h.Sum64())}
}
