package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG derives independent deterministic random streams from a root seed.
// Each named stream is stable across runs: the same (seed, name) pair
// always yields the same sequence, and adding new streams does not perturb
// existing ones. This is the property that keeps experiment outputs
// reproducible while the codebase grows.
type RNG struct {
	seed int64
}

// NewRNG returns a stream factory rooted at seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed}
}

// Seed reports the root seed.
func (g *RNG) Seed() int64 { return g.seed }

// Stream returns a rand.Rand whose seed is derived from the root seed and
// the stream name.
func (g *RNG) Stream(name string) *rand.Rand {
	h := fnv.New64a()
	// Writing to an fnv hash never fails.
	_, _ = h.Write([]byte(name))
	derived := g.seed ^ int64(h.Sum64())
	//nolint:gosec // deterministic simulation, not cryptography.
	return rand.New(rand.NewSource(derived))
}

// StreamN returns a rand.Rand derived from the stream name and an index,
// for per-entity streams (e.g. one per simulated device).
func (g *RNG) StreamN(name string, n int) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	var buf [8]byte
	v := uint64(n)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	derived := g.seed ^ int64(h.Sum64())
	return rand.New(rand.NewSource(derived))
}
