package sim

import (
	"testing"
	"unsafe"
)

func TestLightSourceDeterministic(t *testing.T) {
	a := NewLightSource(42)
	b := NewLightSource(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %x != %x", i, av, bv)
		}
	}
}

func TestLightSourceSeedsDiverge(t *testing.T) {
	a := NewLightSource(1)
	b := NewLightSource(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d/64 draws collided across seeds", same)
	}
}

func TestLightSourceUniformity(t *testing.T) {
	// Coarse sanity: high bit should be set about half the time.
	s := NewLightSource(7)
	ones := 0
	const n = 4096
	for i := 0; i < n; i++ {
		if s.Uint64()>>63 == 1 {
			ones++
		}
	}
	if ones < n*4/10 || ones > n*6/10 {
		t.Fatalf("high bit set %d/%d times, expected ~%d", ones, n, n/2)
	}
}

func TestLightStreamsIndependent(t *testing.T) {
	root := NewRNG(99)
	// Same (seed, name, index) → same sequence.
	a := root.LightN("block", 3)
	b := root.LightN("block", 3)
	for i := 0; i < 32; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %x != %x", i, av, bv)
		}
	}
	// Different index → different sequence.
	c := root.LightN("block", 4)
	d := root.LightN("block", 3)
	diverged := false
	for i := 0; i < 32; i++ {
		if c.Uint64() != d.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("LightN(3) and LightN(4) emitted identical prefixes")
	}
	// Named variant follows the same contract.
	if root.Light("x").Uint64() != root.Light("x").Uint64() {
		t.Fatal("Light(name) not reproducible")
	}
	if root.Light("x").Uint64() == root.Light("y").Uint64() {
		t.Fatal("Light streams for different names collided on first draw")
	}
}

func TestLightStateSize(t *testing.T) {
	// The point of LightSource is small per-stream state; pin it so a
	// refactor doesn't quietly reintroduce the 607-word Go1 source.
	if got := unsafe.Sizeof(LightSource{}); got != 8 {
		t.Fatalf("LightSource state = %d bytes, want 8", got)
	}
}
