package faults

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"accelcloud/internal/autoscale"
	"accelcloud/internal/health"
	"accelcloud/internal/loadgen"
	"accelcloud/internal/router"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sdn"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/trace"
	"accelcloud/internal/wire"
)

// Config parameterizes one hermetic chaos run: a constant-rate open
// loop replayed slot by slot through the full resilient stack — real
// front-end, chaos-wrapped surrogates, failure detector, self-healing
// reconciler — with a deterministic fault schedule injected at slot
// boundaries.
type Config struct {
	// Seed roots everything: request schedule, fault schedule, fault
	// parameters, retry jitter, controller substreams.
	Seed int64
	// RateHz is the aggregate arrival rate (0 selects 48).
	RateHz float64
	// Users is the simulated device count the rate is spread over
	// (0 selects 8).
	Users int
	// Slots is the run length (0 selects 8).
	Slots int
	// SlotLen is the provisioning slot length (0 selects 500ms).
	SlotLen time.Duration
	// Groups are the managed acceleration groups; set Min >= 2 so
	// ejection has somewhere to shift traffic. Required.
	Groups []autoscale.GroupSpec
	// Policy names the pick policy (empty selects round-robin).
	Policy string
	// FixedTask pins every request to one pool task (empty = random).
	FixedTask string
	// Fault counts, drawn into the deterministic schedule.
	Crashes       int
	Hangs         int
	LatencySpikes int
	ErrorBursts   int
	SlowNets      int
	// MaxInFlight bounds concurrent outstanding requests (0 selects 64).
	MaxInFlight int
	// RequestTimeout bounds one client call end to end, retries and
	// hedges included (0 selects 2s).
	RequestTimeout time.Duration
	// BackendTimeout bounds the front-end's proxy hop (0 selects 500ms)
	// — the horizon within which a hung surrogate fails.
	BackendTimeout time.Duration
	// RetryAttempts is the client's total attempt budget (0 selects 3).
	RetryAttempts int
	// RetryBase / RetryMax shape the backoff (0 selects 10ms / 250ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// HedgeDelay launches a second request against stragglers
	// (0 selects 250ms; negative disables hedging).
	HedgeDelay time.Duration
	// Failure-detector knobs (0 selects 25ms / 250ms / 2 / 2 / 4).
	// The probe timeout is deliberately ~10x a healthy loopback
	// heartbeat: the CI gate requires the repair decision digest to
	// reproduce exactly, so a loaded runner must not be able to turn a
	// healthy backend Down with two spuriously slow probes.
	ProbeInterval  time.Duration
	ProbeTimeout   time.Duration
	FailThreshold  int
	SuccThreshold  int
	PassiveErrors  int
	LatencyLimitMs float64
	// WarmPool is the pre-booted spare count repairs draw from
	// (0 selects 2).
	WarmPool int
	// SpanSample samples every Nth request as a trace span with
	// per-hop timings in the report (0 disables sampling).
	SpanSample int
	// SLO, when non-nil, is evaluated into the report.
	SLO *loadgen.SLO
}

func (c Config) withDefaults() (Config, error) {
	if c.RateHz == 0 {
		c.RateHz = 48
	}
	if c.RateHz < 0 {
		return c, fmt.Errorf("faults: rate %v < 0", c.RateHz)
	}
	if c.Users == 0 {
		c.Users = 8
	}
	if c.Users < 0 {
		return c, fmt.Errorf("faults: users %d < 0", c.Users)
	}
	if c.Slots == 0 {
		c.Slots = 8
	}
	if c.Slots < 2 {
		return c, fmt.Errorf("faults: need at least 2 slots, got %d", c.Slots)
	}
	if c.SlotLen == 0 {
		c.SlotLen = 500 * time.Millisecond
	}
	if c.SlotLen < 0 {
		return c, fmt.Errorf("faults: slot length %v < 0", c.SlotLen)
	}
	if len(c.Groups) == 0 {
		return c, errors.New("faults: no group specs")
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.MaxInFlight < 0 {
		return c, fmt.Errorf("faults: max in flight %d < 0", c.MaxInFlight)
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.BackendTimeout == 0 {
		c.BackendTimeout = 500 * time.Millisecond
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 3
	}
	if c.RetryBase == 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax == 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 250 * time.Millisecond
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 25 * time.Millisecond
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	if c.FailThreshold == 0 {
		c.FailThreshold = 2
	}
	if c.SuccThreshold == 0 {
		c.SuccThreshold = 2
	}
	if c.PassiveErrors == 0 {
		c.PassiveErrors = 4
	}
	if c.WarmPool == 0 {
		c.WarmPool = 2
	}
	return c, nil
}

// timedHealth wraps the failure detector's view to timestamp repair
// acknowledgements, so the report can measure injection→repair latency.
type timedHealth struct {
	m  *health.Manager
	mu sync.Mutex
	// forgotten records the first Forget time per URL.
	forgotten map[string]time.Time
}

func (t *timedHealth) Down(group int) []string { return t.m.Down(group) }

func (t *timedHealth) Forget(group int, url string) {
	t.mu.Lock()
	if _, ok := t.forgotten[url]; !ok {
		t.forgotten[url] = time.Now()
	}
	t.mu.Unlock()
	t.m.Forget(group, url)
}

func (t *timedHealth) forgetTime(url string) (time.Time, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	at, ok := t.forgotten[url]
	return at, ok
}

// targetURL resolves a scheduled event to a live backend. Draining
// backends are excluded — their membership changes are the control
// plane's deterministic doing, while ejection state (which may flip on
// detector timing) is deliberately ignored so target resolution stays
// a pure function of the deterministic registry.
func targetURL(fe *sdn.FrontEnd, ev Event) string {
	var candidates []string
	for _, info := range fe.Pool(ev.Group) {
		if info.State != sdn.BackendDraining {
			candidates = append(candidates, info.URL)
		}
	}
	if len(candidates) == 0 {
		return ""
	}
	return candidates[ev.Backend%len(candidates)]
}

// Run executes the chaos scenario and builds its report. Two runs with
// the same seed inject bit-identical fault timelines and produce
// bit-identical repair decision digests at any MaxInFlight; the
// measured latencies, ejection delays, and hedge outcomes are the
// run's live measurements.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	policy, err := router.ParsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	groupIDs := make([]int, 0, len(cfg.Groups))
	for _, g := range cfg.Groups {
		groupIDs = append(groupIDs, g.Group)
	}
	sort.Ints(groupIDs)

	root := sim.NewRNG(cfg.Seed)
	sched, err := Generate(root.Sub("fault-schedule"), ScheduleConfig{
		Slots:         cfg.Slots,
		Groups:        groupIDs,
		Crashes:       cfg.Crashes,
		Hangs:         cfg.Hangs,
		LatencySpikes: cfg.LatencySpikes,
		ErrorBursts:   cfg.ErrorBursts,
		SlowNets:      cfg.SlowNets,
	})
	if err != nil {
		return nil, err
	}
	plan, err := loadgen.BuildPlan(loadgen.Config{
		Mode:       loadgen.ModeInterArrival,
		Users:      cfg.Users,
		Duration:   time.Duration(cfg.Slots) * cfg.SlotLen,
		RateHz:     cfg.RateHz / float64(cfg.Users),
		Seed:       cfg.Seed,
		Groups:     groupIDs,
		FixedTask:  cfg.FixedTask,
		SlotLen:    cfg.SlotLen,
		SpanSample: cfg.SpanSample,
	})
	if err != nil {
		return nil, err
	}

	// The live resilient stack. The observer is late-bound through an
	// ObserverRef: the failure detector needs the front-end as its
	// control plane, so it cannot exist before sdn.New runs.
	var obs sdn.ObserverRef
	fe, err := sdn.New(
		sdn.WithPolicy(policy),
		sdn.WithBackendTimeout(cfg.BackendTimeout),
		sdn.WithObserver(obs.Observe),
	)
	if err != nil {
		return nil, err
	}
	injector := NewInjector(root.Sub("fault-params"))
	mgr, err := health.NewManager(health.Config{
		CP:             fe,
		ProbeInterval:  cfg.ProbeInterval,
		ProbeTimeout:   cfg.ProbeTimeout,
		FailThreshold:  cfg.FailThreshold,
		SuccThreshold:  cfg.SuccThreshold,
		PassiveErrors:  cfg.PassiveErrors,
		LatencyLimitMs: cfg.LatencyLimitMs,
	})
	if err != nil {
		return nil, err
	}
	obs.Set(mgr.Observe)
	hv := &timedHealth{m: mgr, forgotten: make(map[string]time.Time)}
	ctrl, err := autoscale.New(autoscale.Config{
		FrontEnd:    fe,
		Provisioner: &ChaosProvisioner{Injector: injector},
		Groups:      cfg.Groups,
		SlotLen:     cfg.SlotLen,
		WarmPool:    cfg.WarmPool,
		RNG:         root.Sub("controller"),
		Health:      hv,
	})
	if err != nil {
		return nil, err
	}
	defer ctrl.Shutdown()
	if err := ctrl.Prime(ctx); err != nil {
		return nil, err
	}
	front := httptest.NewServer(fe.Handler())
	defer front.Close()

	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	go mgr.Run(hctx)

	window, err := trace.NewWindow(sim.Epoch, cfg.SlotLen, ctrl.NumGroups(), cfg.Slots+1)
	if err != nil {
		return nil, err
	}
	buckets := make([][]int, cfg.Slots)
	for i, pr := range plan.Timeline {
		idx := int(pr.Offset / cfg.SlotLen)
		if idx >= cfg.Slots {
			idx = cfg.Slots - 1
		}
		buckets[idx] = append(buckets[idx], i)
		window.Observe(sim.Epoch.Add(pr.Offset), pr.User, pr.Group)
	}

	copts := []rpc.ClientOption{rpc.WithTimeout(cfg.RequestTimeout)}
	if cfg.RetryAttempts > 1 {
		copts = append(copts, rpc.WithRetry(rpc.NewRetryPolicy(
			cfg.RetryAttempts, cfg.RetryBase, cfg.RetryMax,
			root.Sub("retry-jitter").Seed())))
	}
	if cfg.HedgeDelay > 0 {
		copts = append(copts, rpc.WithHedge(&rpc.HedgePolicy{Delay: cfg.HedgeDelay}))
	}
	client := rpc.NewClient(front.URL, copts...)

	// faultSlots marks slots with any scheduled fault in force, for the
	// p99-during-fault breakdown.
	faultSlots := make([]bool, cfg.Slots)
	for _, ev := range sched.Events {
		end := ev.Slot + ev.Slots
		if ev.Kind == KindCrash || ev.Kind == KindHang {
			// Down-kind faults are repaired at the next boundary (the
			// convergence barrier guarantees detection within the
			// slot), so only the injection slot is fault-active.
			end = ev.Slot + 1
		}
		for s := ev.Slot; s < end && s < cfg.Slots; s++ {
			faultSlots[s] = true
		}
	}

	type rec struct {
		latencyMs float64
		span      *wire.Span
		err       error
	}
	recs := make([]rec, len(plan.Timeline))
	bySlot := sched.BySlot()
	// downWatch maps crash/hang target URLs to their group until the
	// detector confirms them Down — the convergence barrier that makes
	// repair decisions a function of the schedule, not of probe timing.
	downWatch := map[string]int{}
	slotReports := make([]SlotReport, 0, cfg.Slots)
	overall := stats.NewLatencyHist()
	faultHist := stats.NewLatencyHist()
	totalErrs := 0
	runStart := time.Now()

	for s := 0; s < cfg.Slots; s++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("faults: run interrupted: %w", err)
		}
		injector.ExpireUpTo(s)
		injected := make([]Event, 0, len(bySlot[s]))
		for _, ev := range bySlot[s] {
			url := targetURL(fe, ev)
			if url == "" {
				continue
			}
			if err := injector.Inject(ev, url); err != nil {
				return nil, err
			}
			injected = append(injected, ev)
			if ev.Kind == KindCrash || ev.Kind == KindHang {
				downWatch[url] = ev.Group
			}
		}

		// Replay the slot's requests at their planned offsets.
		idxs := buckets[s]
		sem := make(chan struct{}, cfg.MaxInFlight)
		var wg sync.WaitGroup
		for _, i := range idxs {
			pr := plan.Timeline[i]
			if wait := pr.Offset - time.Since(runStart); wait > 0 {
				select {
				case <-ctx.Done():
				case <-time.After(wait):
				}
			}
			if ctx.Err() != nil {
				break
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				pr := plan.Timeline[i]
				start := time.Now()
				resp, err := client.Offload(ctx, rpc.OffloadRequest{
					UserID:       pr.User,
					Group:        pr.Group,
					BatteryLevel: pr.Battery,
					State:        pr.State,
					SpanID:       pr.Span,
				})
				recs[i] = rec{
					latencyMs: float64(time.Since(start)) / float64(time.Millisecond),
					span:      resp.Span,
					err:       err,
				}
			}(i)
		}
		wg.Wait()

		// Convergence barrier: every injected crash/hang must be
		// probe-confirmed Down before the control cycle runs, so the
		// repair set is deterministic.
		if err := waitDown(ctx, mgr, downWatch); err != nil {
			return nil, err
		}

		slotHist := stats.NewLatencyHist()
		slotErrs := 0
		for _, i := range idxs {
			r := recs[i]
			overall.Add(r.latencyMs)
			slotHist.Add(r.latencyMs)
			if faultSlots[s] {
				faultHist.Add(r.latencyMs)
			}
			if r.err != nil {
				slotErrs++
			}
		}
		totalErrs += slotErrs

		var dec autoscale.Decision
		for _, slot := range window.Advance(sim.Epoch.Add(time.Duration(s+1) * cfg.SlotLen)) {
			dec, err = ctrl.Step(ctx, slot)
			if err != nil {
				return nil, err
			}
		}
		// Repaired URLs are no longer watched.
		for url := range downWatch {
			if _, ok := hv.forgetTime(url); ok {
				delete(downWatch, url)
			}
		}
		faultNames := make([]string, 0, len(injected))
		for _, ev := range injected {
			faultNames = append(faultNames, fmt.Sprintf("%s@g%d", ev.Kind, ev.Group))
		}
		slotReports = append(slotReports, SlotReport{
			Slot:     s,
			Requests: len(idxs),
			Errors:   slotErrs,
			Faults:   faultNames,
			Latency:  loadgen.Summarize(slotHist),
			Decision: dec,
		})
	}
	wall := time.Since(runStart)

	// Fold returned per-hop breakdowns into the spans section. Planned
	// count and digest come from the schedule (seed-exact); collected
	// spans are whatever survived faults, retries, and timeouts.
	var spans *loadgen.SpanSection
	if cfg.SpanSample > 0 {
		planned, digest := plan.SpanPlan()
		spans = &loadgen.SpanSection{SampleEvery: cfg.SpanSample, Planned: planned, Digest: digest}
		hists := map[string]*stats.LogHist{}
		for _, name := range []string{"queue", "linger", "cold", "network", "exec"} {
			hists[name] = stats.NewLatencyHist()
		}
		for _, r := range recs {
			if r.span == nil {
				continue
			}
			spans.Collected++
			hists["queue"].Add(r.span.QueueMs)
			hists["linger"].Add(r.span.LingerMs)
			hists["cold"].Add(r.span.ColdMs)
			hists["network"].Add(r.span.NetworkMs)
			hists["exec"].Add(r.span.ExecMs)
		}
		if spans.Collected > 0 {
			spans.Hops = make(map[string]loadgen.LatencySummary, len(hists))
			for name, h := range hists {
				spans.Hops[name] = loadgen.Summarize(h)
			}
		}
	}

	return buildReport(cfg, plan, sched, injector, mgr, hv, ctrl, client,
		reportInputs{
			overall:     overall,
			faultHist:   faultHist,
			totalErrs:   totalErrs,
			totalReqs:   len(plan.Timeline),
			wall:        wall,
			slotReports: slotReports,
			spans:       spans,
		})
}

// waitDown blocks until every watched URL is probe-confirmed Down (or
// the deadline passes — a detector that cannot confirm a scheduled
// crash within 10s is a bug worth failing the run over).
func waitDown(ctx context.Context, mgr *health.Manager, watch map[string]int) error {
	deadline := time.Now().Add(10 * time.Second)
	for url, group := range watch {
		for {
			confirmed := false
			for _, u := range mgr.Down(group) {
				if u == url {
					confirmed = true
					break
				}
			}
			if confirmed {
				break
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("faults: detector never confirmed %s down", url)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return nil
}
