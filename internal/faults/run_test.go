package faults

import (
	"context"
	"testing"
	"time"

	"accelcloud/internal/autoscale"
)

func chaosTestConfig(maxInFlight int) Config {
	return Config{
		Seed:    11,
		RateHz:  30,
		Users:   6,
		Slots:   4,
		SlotLen: 300 * time.Millisecond,
		Groups: []autoscale.GroupSpec{
			{Group: 1, TypeName: "t2.nano", CostPerHour: 0.0063, Capacity: 8, Min: 2},
			{Group: 2, TypeName: "t2.large", CostPerHour: 0.101, Capacity: 8, Min: 2},
		},
		FixedTask:   "sieve",
		Crashes:     1,
		ErrorBursts: 1,
		MaxInFlight: maxInFlight,
	}
}

// TestRunSurvivesCrashAndRepairs is the end-to-end proof: a seeded
// crash plus an error burst under live load, and the stack ejects,
// reroutes, and self-heals while availability holds.
func TestRunSurvivesCrashAndRepairs(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is a multi-second live-stack scenario")
	}
	cfg := chaosTestConfig(0)
	cfg.SpanSample = 2
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests replayed")
	}
	if rep.Spans == nil || rep.Spans.Planned == 0 {
		t.Fatalf("spans section missing with SpanSample set: %+v", rep.Spans)
	}
	if rep.Spans.Collected > rep.Spans.Planned {
		t.Fatalf("collected %d > planned %d", rep.Spans.Collected, rep.Spans.Planned)
	}
	if rep.Spans.Collected > 0 && rep.Spans.Hops["exec"].N == 0 {
		t.Fatalf("no exec hop percentiles despite %d collected spans", rep.Spans.Collected)
	}
	if rep.Availability < 0.98 {
		t.Fatalf("availability = %.4f, want >= 0.98 with retries and repair", rep.Availability)
	}
	if rep.Ejections < 1 {
		t.Fatalf("ejections = %d, want >= 1 (the crash must be detected)", rep.Ejections)
	}
	if rep.Repairs < 1 {
		t.Fatalf("repairs = %d, want >= 1 (the crash must be repaired)", rep.Repairs)
	}
	if rep.MaxProbesToEject > 2 {
		t.Fatalf("ejection took %d failed probes, want before the 3rd", rep.MaxProbesToEject)
	}
	repairSeen := false
	for _, s := range rep.Slots2 {
		if s.Decision.Kind == autoscale.DecisionRepair {
			repairSeen = true
		}
	}
	if !repairSeen {
		t.Fatal("no repair decision in the audit log")
	}
	// Capacity is restored: the final slot's applied pools meet Min.
	last := rep.Slots2[len(rep.Slots2)-1].Decision
	for i, n := range last.Applied {
		if n < 2 {
			t.Fatalf("final applied[%d] = %d, want >= Min 2 after self-healing", i, n)
		}
	}
}

// TestRunDigestsAreConcurrencyIndependent is the determinism
// acceptance bar: the fault-schedule digest and the decision digest
// (repairs included) reproduce across runs and request-concurrency
// levels; only measured latencies differ.
func TestRunDigestsAreConcurrencyIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is a multi-second live-stack scenario")
	}
	a, err := Run(context.Background(), chaosTestConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), chaosTestConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if a.ScheduleDigest != b.ScheduleDigest {
		t.Fatalf("schedule digests differ: %s vs %s", a.ScheduleDigest, b.ScheduleDigest)
	}
	if a.FaultDigest != b.FaultDigest {
		t.Fatalf("fault digests differ: %s vs %s", a.FaultDigest, b.FaultDigest)
	}
	if a.DecisionDigest != b.DecisionDigest {
		t.Fatalf("decision digests differ across worker counts: %s vs %s",
			a.DecisionDigest, b.DecisionDigest)
	}
	if a.Repairs != b.Repairs {
		t.Fatalf("repair counts differ: %d vs %d", a.Repairs, b.Repairs)
	}
}

func TestRunConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Groups = nil },
		func(c *Config) { c.Slots = 1 },
		func(c *Config) { c.RateHz = -1 },
		func(c *Config) { c.MaxInFlight = -1 },
	}
	for i, mut := range bad {
		cfg := chaosTestConfig(0)
		mut(&cfg)
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}
