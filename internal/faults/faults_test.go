package faults

import (
	"context"
	"io"
	"net/http"
	"testing"
	"time"

	"accelcloud/internal/sim"
)

func testScheduleConfig() ScheduleConfig {
	return ScheduleConfig{
		Slots:         8,
		Groups:        []int{1, 2},
		Crashes:       2,
		Hangs:         1,
		LatencySpikes: 1,
		ErrorBursts:   1,
		SlowNets:      1,
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a, err := Generate(sim.NewRNG(7), testScheduleConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(sim.NewRNG(7), testScheduleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("same-seed digests differ: %s vs %s", a.Digest(), b.Digest())
	}
	if len(a.Events) != 6 {
		t.Fatalf("events = %d, want 6", len(a.Events))
	}
	c, err := Generate(sim.NewRNG(8), testScheduleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == c.Digest() {
		t.Fatal("different seeds produced identical schedules")
	}
	for _, ev := range a.Events {
		if ev.Slot < 1 || ev.Slot >= 8 {
			t.Fatalf("event slot %d outside [1,7]", ev.Slot)
		}
		if ev.Group != 1 && ev.Group != 2 {
			t.Fatalf("event group %d", ev.Group)
		}
		if ev.Slots < 1 {
			t.Fatalf("event duration %d", ev.Slots)
		}
	}
}

// TestGenerateKindIsolation proves adding events of one kind never
// perturbs another kind's draws — the substream-per-(kind,index)
// contract.
func TestGenerateKindIsolation(t *testing.T) {
	base, err := Generate(sim.NewRNG(3), ScheduleConfig{Slots: 8, Groups: []int{1}, Crashes: 2})
	if err != nil {
		t.Fatal(err)
	}
	more, err := Generate(sim.NewRNG(3), ScheduleConfig{Slots: 8, Groups: []int{1}, Crashes: 2, Hangs: 3, SlowNets: 1})
	if err != nil {
		t.Fatal(err)
	}
	crashes := func(s *Schedule) []Event {
		var out []Event
		for _, ev := range s.Events {
			if ev.Kind == KindCrash {
				out = append(out, ev)
			}
		}
		return out
	}
	a, b := crashes(base), crashes(more)
	if len(a) != len(b) {
		t.Fatalf("crash counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("crash %d perturbed by other kinds: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(sim.NewRNG(1), ScheduleConfig{Slots: 1, Groups: []int{1}}); err == nil {
		t.Fatal("1 slot should fail")
	}
	if _, err := Generate(sim.NewRNG(1), ScheduleConfig{Slots: 4}); err == nil {
		t.Fatal("no groups should fail")
	}
	if _, err := Generate(sim.NewRNG(1), ScheduleConfig{Slots: 4, Groups: []int{1}, Crashes: -1}); err == nil {
		t.Fatal("negative count should fail")
	}
}

// okHandler answers 200 on every path.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"ok":true}`))
	})
}

func get(t *testing.T, url string, timeout time.Duration) (int, error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() { _, _ = io.Copy(io.Discard, resp.Body); _ = resp.Body.Close() }()
	return resp.StatusCode, nil
}

func TestProxyCrashKillsListener(t *testing.T) {
	p := NewProxy("victim", okHandler())
	p.Start()
	defer func() { _ = p.Close() }()
	if code, err := get(t, p.URL()+"/execute", time.Second); err != nil || code != 200 {
		t.Fatalf("healthy proxy: code=%d err=%v", code, err)
	}
	p.Crash()
	if !p.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	if _, err := get(t, p.URL()+"/execute", time.Second); err == nil {
		t.Fatal("crashed proxy still answers")
	}
}

func TestProxyErrorBurstSparesHealthz(t *testing.T) {
	p := NewProxy("sick", okHandler())
	p.Start()
	defer func() { _ = p.Close() }()
	if err := p.Apply(Event{Kind: KindErrorBurst, Param: 1.0}, sim.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, p.URL()+"/execute", time.Second); code != 500 {
		t.Fatalf("data path code = %d, want 500", code)
	}
	if code, err := get(t, p.URL()+"/healthz", time.Second); err != nil || code != 200 {
		t.Fatalf("health path code=%d err=%v, must stay green", code, err)
	}
	p.Clear()
	if code, _ := get(t, p.URL()+"/execute", time.Second); code != 200 {
		t.Fatalf("cleared proxy code = %d", code)
	}
}

func TestProxyHangSwallowsProbesUntilCleared(t *testing.T) {
	p := NewProxy("hung", okHandler())
	p.Start()
	defer func() { _ = p.Close() }()
	if err := p.Apply(Event{Kind: KindHang}, sim.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := get(t, p.URL()+"/healthz", 100*time.Millisecond); err == nil {
		t.Fatal("hung proxy answered a probe")
	}
	p.Clear()
	if code, err := get(t, p.URL()+"/healthz", time.Second); err != nil || code != 200 {
		t.Fatalf("cleared proxy probe code=%d err=%v", code, err)
	}
}

func TestProxyLatencyDelaysDataPath(t *testing.T) {
	p := NewProxy("slow", okHandler())
	p.Start()
	defer func() { _ = p.Close() }()
	if err := p.Apply(Event{Kind: KindLatency, Param: 200}, sim.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if code, err := get(t, p.URL()+"/execute", 5*time.Second); err != nil || code != 200 {
		t.Fatalf("latency proxy code=%d err=%v", code, err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("data path answered in %v, want >= 100ms injected delay", elapsed)
	}
	// Probes stay fast: the passive detector, not the prober, must
	// catch latency faults.
	start = time.Now()
	if code, err := get(t, p.URL()+"/healthz", time.Second); err != nil || code != 200 {
		t.Fatalf("probe code=%d err=%v", code, err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("probe took %v, must bypass the latency fault", elapsed)
	}
}

func TestInjectorExpiry(t *testing.T) {
	in := NewInjector(sim.NewRNG(1))
	p := NewProxy("target", okHandler())
	p.Start()
	defer func() { _ = p.Close() }()
	in.Track(p)
	ev := Event{Slot: 2, Kind: KindErrorBurst, Slots: 1, Param: 1.0}
	if err := in.Inject(ev, p.URL()); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, p.URL()+"/execute", time.Second); code != 500 {
		t.Fatalf("armed fault code = %d", code)
	}
	in.ExpireUpTo(2) // fault runs [2,3); boundary 2 keeps it
	if code, _ := get(t, p.URL()+"/execute", time.Second); code != 500 {
		t.Fatalf("fault expired early: code = %d", code)
	}
	in.ExpireUpTo(3)
	if code, _ := get(t, p.URL()+"/execute", time.Second); code != 200 {
		t.Fatalf("fault survived expiry: code = %d", code)
	}
	if got := len(in.Injections()); got != 1 {
		t.Fatalf("injection log = %d entries", got)
	}
	if err := in.Inject(ev, "http://untracked"); err == nil {
		t.Fatal("injecting into an untracked URL should fail")
	}
}

// TestInjectorExpiryOfSupersededFault pins the overlap semantics: when
// a newer fault supersedes an older one on the same backend, the older
// record's expiry must NOT disarm the newer fault.
func TestInjectorExpiryOfSupersededFault(t *testing.T) {
	in := NewInjector(sim.NewRNG(1))
	p := NewProxy("target", okHandler())
	p.Start()
	defer func() { _ = p.Close() }()
	in.Track(p)
	// Older latency fault [1,2), then an error burst [2,4) replaces it.
	if err := in.Inject(Event{Slot: 1, Kind: KindLatency, Slots: 1, Param: 1}, p.URL()); err != nil {
		t.Fatal(err)
	}
	if err := in.Inject(Event{Slot: 2, Kind: KindErrorBurst, Slots: 2, Param: 1.0}, p.URL()); err != nil {
		t.Fatal(err)
	}
	// The latency fault expires at slot 2 — the error burst must stay.
	in.ExpireUpTo(2)
	if code, _ := get(t, p.URL()+"/execute", time.Second); code != 500 {
		t.Fatalf("superseding fault disarmed by stale expiry: code = %d, want 500", code)
	}
	in.ExpireUpTo(4)
	if code, _ := get(t, p.URL()+"/execute", time.Second); code != 200 {
		t.Fatalf("fault survived its own expiry: code = %d", code)
	}
}

func TestProxyCloseReleasesHungRequests(t *testing.T) {
	p := NewProxy("hung", okHandler())
	p.Start()
	if err := p.Apply(Event{Kind: KindHang}, sim.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = get(t, p.URL()+"/execute", 10*time.Second)
	}()
	time.Sleep(50 * time.Millisecond)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close left a request hung")
	}
}
