package faults

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"accelcloud/internal/autoscale"
	"accelcloud/internal/dalvik"
	"accelcloud/internal/netsim"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
)

// faultState is one active fault on a proxy, published atomically so
// the request path reads it lock-free. nil means healthy.
type faultState struct {
	kind  Kind
	param float64
	// hang is closed to release hung requests (fault cleared or proxy
	// closing).
	hang chan struct{}
	// delay samples the injected latency (latency / slownet kinds).
	delay func() time.Duration
	// rnd draws error-burst rolls, seeded per event.
	mu  sync.Mutex
	rnd *rand.Rand
}

// Proxy wraps a backend handler with injectable faults and owns its
// loopback listener — the hermetic stand-in for a cloud surrogate the
// chaos engine can kill. It implements autoscale.Backend.
type Proxy struct {
	id    string
	inner http.Handler
	srv   *httptest.Server

	state   atomic.Pointer[faultState]
	crashed atomic.Bool
	closed  sync.Once
}

// NewProxy wraps a handler; call Start before use.
func NewProxy(id string, inner http.Handler) *Proxy {
	return &Proxy{id: id, inner: inner}
}

// Start opens the loopback listener.
func (p *Proxy) Start() {
	p.srv = httptest.NewServer(p)
}

// ID reports the wrapped backend's identity.
func (p *Proxy) ID() string { return p.id }

// URL implements autoscale.Backend.
func (p *Proxy) URL() string { return p.srv.URL }

// Close implements autoscale.Backend: releases any hung requests, then
// tears the listener down.
func (p *Proxy) Close() error {
	p.closed.Do(func() {
		p.Clear()
		p.srv.CloseClientConnections()
		p.srv.Close()
	})
	return nil
}

// Crash hard-kills the listener: established connections are severed
// and new ones refused — indistinguishable from the surrogate's host
// dying. Permanent; only Close releases the remaining resources.
func (p *Proxy) Crash() {
	p.crashed.Store(true)
	p.Clear() // release hung handlers so they can observe the dead conn
	_ = p.srv.Listener.Close()
	p.srv.CloseClientConnections()
}

// Crashed reports whether the listener was hard-killed.
func (p *Proxy) Crashed() bool { return p.crashed.Load() }

// Apply arms a recoverable fault (replacing any active one). The rng
// seeds the fault's internal randomness (error rolls, delay jitter) so
// the corruption itself is reproducible.
func (p *Proxy) Apply(ev Event, rng *sim.RNG) error {
	_, err := p.apply(ev, rng)
	return err
}

// apply arms the fault and returns the armed state, so the injector's
// expiry can later clear exactly this fault and no other — an expiring
// older fault must never disarm a newer one that superseded it on the
// same backend.
func (p *Proxy) apply(ev Event, rng *sim.RNG) (*faultState, error) {
	st := &faultState{kind: ev.Kind, param: ev.Param}
	//nolint:gosec // deterministic chaos, not cryptography.
	st.rnd = rand.New(rand.NewSource(rng.Seed()))
	switch ev.Kind {
	case KindCrash:
		p.Crash()
		return nil, nil
	case KindHang:
		st.hang = make(chan struct{})
	case KindLatency:
		base := time.Duration(ev.Param * float64(time.Millisecond))
		st.delay = func() time.Duration {
			st.mu.Lock()
			f := st.rnd.Float64()
			st.mu.Unlock()
			return base/2 + time.Duration(f*float64(base))
		}
	case KindErrorBurst:
		// rolls drawn per request under st.mu
	case KindSlowNet:
		ops, err := netsim.DefaultOperators()
		if err != nil {
			return nil, fmt.Errorf("faults: slownet model: %w", err)
		}
		// The congested cell: the paper's 3G model, inflated.
		model := ops[0].RTT[netsim.Tech3G].Inflate(ev.Param)
		start := time.Now()
		st.delay = func() time.Duration {
			st.mu.Lock()
			defer st.mu.Unlock()
			return model.Sample(st.rnd, start)
		}
	default:
		return nil, fmt.Errorf("faults: unknown kind %q", ev.Kind)
	}
	if old := p.state.Swap(st); old != nil && old.hang != nil {
		close(old.hang)
	}
	return st, nil
}

// Clear removes the active fault and releases hung requests.
func (p *Proxy) Clear() {
	if old := p.state.Swap(nil); old != nil && old.hang != nil {
		close(old.hang)
	}
}

// clearState removes exactly the given fault: a no-op when another
// fault has superseded it (the superseding Apply already released any
// hung requests of the old state).
func (p *Proxy) clearState(st *faultState) {
	if st == nil {
		return
	}
	if p.state.CompareAndSwap(st, nil) && st.hang != nil {
		close(st.hang)
	}
}

// ServeHTTP applies the active fault, then delegates to the wrapped
// handler. Data-path corruption (latency, errors, slownet) spares the
// health endpoint — those failures are for the passive detector to
// find; hangs swallow probes too, because a hung process answers
// nothing.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	st := p.state.Load()
	if st == nil {
		p.inner.ServeHTTP(w, r)
		return
	}
	if r.URL.Path == rpc.PathHealth && st.kind != KindHang {
		p.inner.ServeHTTP(w, r)
		return
	}
	switch st.kind {
	case KindHang:
		select {
		case <-st.hang:
			// Fault cleared while we were hung; answer late.
		case <-r.Context().Done():
			return
		}
	case KindErrorBurst:
		st.mu.Lock()
		roll := st.rnd.Float64()
		st.mu.Unlock()
		if roll < st.param {
			http.Error(w, "faults: injected error burst", http.StatusInternalServerError)
			return
		}
	case KindLatency, KindSlowNet:
		select {
		case <-time.After(st.delay()):
		case <-r.Context().Done():
			return
		}
	}
	p.inner.ServeHTTP(w, r)
}

// Injection is one applied event, resolved to its live target.
type Injection struct {
	Event Event
	URL   string
	At    time.Time
	// st is the armed fault state, so expiry clears exactly this fault
	// and never a newer one that superseded it on the same backend.
	st *faultState
}

// Injector tracks every chaos-capable backend and applies scheduled
// events to them.
type Injector struct {
	rng *sim.RNG

	mu      sync.Mutex
	proxies map[string]*Proxy // by URL
	active  []Injection       // recoverable faults currently armed
	log     []Injection
	seq     int
}

// NewInjector builds an injector whose per-event fault randomness is
// derived from rng substreams (nil selects seed 1).
func NewInjector(rng *sim.RNG) *Injector {
	if rng == nil {
		rng = sim.NewRNG(1)
	}
	return &Injector{rng: rng, proxies: make(map[string]*Proxy)}
}

// Track registers a started proxy as a chaos target.
func (in *Injector) Track(p *Proxy) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.proxies[p.URL()] = p
}

// Proxy resolves a tracked proxy by URL (nil when unknown).
func (in *Injector) Proxy(url string) *Proxy {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.proxies[url]
}

// Inject applies one event to the backend at url.
func (in *Injector) Inject(ev Event, url string) error {
	in.mu.Lock()
	p := in.proxies[url]
	seq := in.seq
	in.seq++
	in.mu.Unlock()
	if p == nil {
		return fmt.Errorf("faults: no tracked backend at %s", url)
	}
	st, err := p.apply(ev, in.rng.Sub("inject").SubN("event", seq))
	if err != nil {
		return err
	}
	rec := Injection{Event: ev, URL: url, At: time.Now(), st: st}
	in.mu.Lock()
	in.log = append(in.log, rec)
	if ev.Kind != KindCrash {
		in.active = append(in.active, rec)
	}
	in.mu.Unlock()
	return nil
}

// ExpireUpTo clears recoverable faults whose duration ended at or
// before the given slot boundary.
func (in *Injector) ExpireUpTo(slot int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	remaining := in.active[:0]
	for _, rec := range in.active {
		if rec.Event.Slot+rec.Event.Slots <= slot {
			if p := in.proxies[rec.URL]; p != nil {
				p.clearState(rec.st)
			}
			continue
		}
		remaining = append(remaining, rec)
	}
	in.active = remaining
}

// Injections snapshots the applied-event log.
func (in *Injector) Injections() []Injection {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Injection, len(in.log))
	copy(out, in.log)
	return out
}

// ChaosProvisioner boots real dalvik surrogates behind chaos proxies —
// the hermetic provisioner of the fault-tolerance scenarios. Every
// booted backend (warm spares and repair replacements included) is
// automatically tracked as an injection target.
type ChaosProvisioner struct {
	// Injector tracks the booted proxies. Required.
	Injector *Injector
	// Pool is the task registry (nil selects tasks.DefaultPool()).
	Pool *tasks.Pool
	// MaxProcs bounds each surrogate's worker slots
	// (0 = dalvik.DefaultMaxProcs).
	MaxProcs int
}

var _ autoscale.Provisioner = (*ChaosProvisioner)(nil)

// Boot implements autoscale.Provisioner.
func (p *ChaosProvisioner) Boot(ctx context.Context, id string) (autoscale.Backend, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.Injector == nil {
		return nil, fmt.Errorf("faults: provisioner without injector")
	}
	sur, err := dalvik.NewSurrogate(id, p.MaxProcs)
	if err != nil {
		return nil, err
	}
	pool := p.Pool
	if pool == nil {
		pool = tasks.DefaultPool()
	}
	if err := sur.PushPool(pool); err != nil {
		return nil, err
	}
	proxy := NewProxy(id, sur.Handler())
	proxy.Start()
	p.Injector.Track(proxy)
	return proxy, nil
}
