// Package faults is the deterministic chaos engine of the serving
// stack: a seeded Schedule of failure events (surrogate crash, hang,
// latency spike, error burst, slow network via netsim RTT inflation),
// an Injector that applies them to live in-process backends by
// hard-killing listeners and corrupting handlers, and a Run harness
// that replays a seeded fault timeline under load against the full
// resilient stack — front-end, failure detector, self-healing
// reconciler — and reports availability, ejection latency, repair
// latency, and hedge win rate (BENCH_chaos.json).
//
// Determinism contract: a Schedule is a pure function of (seed,
// ScheduleConfig) — every event draws from sim.RNG substreams keyed by
// fault kind and event index, so adding a kind never perturbs another
// kind's draws — and Digest proves it. Run's fault timeline and the
// reconciler's repair decisions reproduce bit-identically for a seed
// at any request concurrency; only measured latencies differ.
package faults

import (
	"fmt"
	"hash/fnv"
	"sort"

	"accelcloud/internal/sim"
)

// Kind is a fault category.
type Kind string

// Fault kinds, in deterministic generation order.
const (
	// KindCrash hard-kills the backend's listener: connections refuse,
	// in-flight requests die. Unrecoverable — only a repair replaces
	// the capacity.
	KindCrash Kind = "crash"
	// KindHang makes the backend accept and never answer (health
	// probes included) until the fault expires — the failure mode
	// timeouts and hedges exist for.
	KindHang Kind = "hang"
	// KindLatency delays data-path requests by Param milliseconds
	// (uniformly jittered ±50%); health probes stay fast, so only the
	// passive latency-quantile detector can catch it.
	KindLatency Kind = "latency"
	// KindErrorBurst fails data-path requests with HTTP 500 at
	// probability Param; health probes stay green, so only the passive
	// consecutive-error detector can catch it.
	KindErrorBurst Kind = "errors"
	// KindSlowNet inflates the backend's network RTT by factor Param
	// using the netsim cellular latency model — heavy-tailed slowness,
	// not a clean constant delay.
	KindSlowNet Kind = "slownet"
	// KindRegionOutage takes a whole region offline: every front-end in
	// the targeted region stops answering (health probes included) until
	// the fault expires. Backend indexes the deployment's region list
	// (modulo its size); Group is drawn but ignored — outages fence the
	// region for all groups. The geo tier's failover path (DESIGN.md
	// §11) is what recovers from these.
	KindRegionOutage Kind = "regionoutage"
)

// kinds lists every kind in generation order. The order is part of the
// digest contract: each kind draws from its own substream, so appending
// a kind (region outages arrived after slownet) leaves every earlier
// kind's events — and any schedule not requesting the new kind —
// bit-identical.
func kinds() []Kind {
	return []Kind{KindCrash, KindHang, KindLatency, KindErrorBurst, KindSlowNet, KindRegionOutage}
}

// Event is one scheduled fault.
type Event struct {
	// Slot is the slot index at whose boundary the fault is injected.
	Slot int `json:"slot"`
	// Kind is the fault category.
	Kind Kind `json:"kind"`
	// Group is the targeted acceleration group.
	Group int `json:"group"`
	// Backend indexes the group's non-draining registered backends at
	// injection time (modulo the pool size), so the schedule stays
	// meaningful while pools scale and repair.
	Backend int `json:"backend"`
	// Slots is the fault duration for recoverable kinds; crashes are
	// permanent until repaired.
	Slots int `json:"slots"`
	// Param is the kind-specific magnitude: delay ms (latency), error
	// probability (errors), RTT inflation factor (slownet).
	Param float64 `json:"param,omitempty"`
}

// Schedule is a deterministic fault timeline.
type Schedule struct {
	// Seed echoes the generating seed.
	Seed int64 `json:"seed"`
	// Events holds the timeline sorted by (slot, kind, group, backend).
	Events []Event `json:"events"`
}

// ScheduleConfig parameterizes Generate.
type ScheduleConfig struct {
	// Slots is the run length events are drawn inside; events land in
	// [1, Slots-1] so slot 0 establishes a healthy baseline.
	Slots int
	// Groups are the target acceleration groups.
	Groups []int
	// Per-kind event counts.
	Crashes       int
	Hangs         int
	LatencySpikes int
	ErrorBursts   int
	SlowNets      int
	// RegionOutages are whole-region kills; only meaningful for
	// multi-region runs (internal/geo).
	RegionOutages int
}

// count reports the configured count for a kind.
func (c ScheduleConfig) count(k Kind) int {
	switch k {
	case KindCrash:
		return c.Crashes
	case KindHang:
		return c.Hangs
	case KindLatency:
		return c.LatencySpikes
	case KindErrorBurst:
		return c.ErrorBursts
	case KindSlowNet:
		return c.SlowNets
	case KindRegionOutage:
		return c.RegionOutages
	}
	return 0
}

// Generate draws a deterministic fault schedule: each event owns a
// sim.RNG substream keyed by (kind, index), so the timeline is a pure
// function of (rng seed, config) — independent of iteration order,
// worker count, and the counts of other kinds.
func Generate(rng *sim.RNG, cfg ScheduleConfig) (*Schedule, error) {
	if rng == nil {
		rng = sim.NewRNG(1)
	}
	if cfg.Slots < 2 {
		return nil, fmt.Errorf("faults: need at least 2 slots, got %d", cfg.Slots)
	}
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("faults: no target groups")
	}
	for _, k := range kinds() {
		if cfg.count(k) < 0 {
			return nil, fmt.Errorf("faults: negative %s count", k)
		}
	}
	sched := &Schedule{Seed: rng.Seed()}
	for _, k := range kinds() {
		kindRNG := rng.Sub("faults/" + string(k))
		for i := 0; i < cfg.count(k); i++ {
			r := kindRNG.SubN("event", i).Stream("draws")
			ev := Event{
				Kind:    k,
				Slot:    1 + r.Intn(cfg.Slots-1),
				Group:   cfg.Groups[r.Intn(len(cfg.Groups))],
				Backend: r.Intn(1 << 16),
				Slots:   1 + r.Intn(2),
			}
			switch k {
			case KindLatency:
				ev.Param = 200 + 400*r.Float64() // ms
			case KindErrorBurst:
				ev.Param = 0.5 + 0.5*r.Float64() // error probability
			case KindSlowNet:
				ev.Param = 5 + 10*r.Float64() // RTT inflation factor
			}
			sched.Events = append(sched.Events, ev)
		}
	}
	sort.Slice(sched.Events, func(i, j int) bool {
		a, b := sched.Events[i], sched.Events[j]
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Group != b.Group {
			return a.Group < b.Group
		}
		return a.Backend < b.Backend
	})
	return sched, nil
}

// BySlot buckets the events by injection slot.
func (s *Schedule) BySlot() map[int][]Event {
	out := make(map[int][]Event)
	for _, ev := range s.Events {
		out[ev.Slot] = append(out[ev.Slot], ev)
	}
	return out
}

// Digest hashes the fault timeline — slot, kind, group, backend,
// duration, and magnitude of every event in canonical order — so two
// runs can prove they injected identical chaos.
func (s *Schedule) Digest() string {
	h := fnv.New64a()
	buf := make([]byte, 8)
	writeInt := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(v) >> (8 * i))
		}
		_, _ = h.Write(buf)
	}
	writeInt(s.Seed)
	for _, ev := range s.Events {
		writeInt(int64(ev.Slot))
		_, _ = h.Write([]byte(ev.Kind))
		writeInt(int64(ev.Group))
		writeInt(int64(ev.Backend))
		writeInt(int64(ev.Slots))
		writeInt(int64(ev.Param * 1e6))
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}
