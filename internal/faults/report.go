package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"accelcloud/internal/autoscale"
	"accelcloud/internal/health"
	"accelcloud/internal/loadgen"
	"accelcloud/internal/rpc"
	"accelcloud/internal/stats"
)

// ReportSchema identifies the BENCH_chaos.json wire format.
const ReportSchema = "accelcloud/chaos-report/v1"

// SlotReport is one slot's measured traffic, injected faults, and
// control-cycle decision.
type SlotReport struct {
	Slot     int                    `json:"slot"`
	Requests int                    `json:"requests"`
	Errors   int                    `json:"errors"`
	Faults   []string               `json:"faults,omitempty"`
	Latency  loadgen.LatencySummary `json:"latency"`
	Decision autoscale.Decision     `json:"decision"`
}

// Report is the machine-readable outcome of one chaos run (the
// BENCH_chaos.json schema consumed by cmd/benchdiff).
type Report struct {
	Schema      string  `json:"schema"`
	Seed        int64   `json:"seed"`
	Policy      string  `json:"policy"`
	RateHz      float64 `json:"rateHz"`
	Slots       int     `json:"slots"`
	SlotLenMs   float64 `json:"slotLenMs"`
	WallClockMs float64 `json:"wallClockMs"`

	// Faults summarizes the injected schedule by kind.
	Faults map[string]int `json:"faults"`

	Requests  int     `json:"requests"`
	Completed int     `json:"completed"`
	Errors    int     `json:"errors"`
	ErrorRate float64 `json:"errorRate"`
	// Availability is the completed fraction after retries and hedging
	// — the headline the chaos gate holds at >= 0.99.
	Availability float64 `json:"availability"`

	// Latency covers the whole run; FaultLatency only the slots with a
	// fault in force (the p99-during-fault column).
	Latency      loadgen.LatencySummary `json:"latency"`
	FaultLatency loadgen.LatencySummary `json:"faultLatency"`

	// Detection and repair.
	Ejections        int     `json:"ejections"`
	MaxProbesToEject int     `json:"maxProbesToEject"`
	MeanTimeToEject  float64 `json:"meanTimeToEjectMs"`
	MaxTimeToEject   float64 `json:"maxTimeToEjectMs"`
	Repairs          int     `json:"repairs"`
	MeanTimeToRepair float64 `json:"meanTimeToRepairMs"`
	MaxTimeToRepair  float64 `json:"maxTimeToRepairMs"`

	// Client resilience.
	Retries      int64   `json:"retries"`
	Hedges       int64   `json:"hedges"`
	HedgeWins    int64   `json:"hedgeWins"`
	HedgeWinRate float64 `json:"hedgeWinRate"`

	// Determinism proofs: the request schedule, the fault timeline, and
	// the control cycle (repairs included) each hash to a seed-stable
	// digest.
	ScheduleDigest string `json:"scheduleDigest"`
	FaultDigest    string `json:"faultDigest"`
	DecisionDigest string `json:"decisionDigest"`

	// Spans is the trace-span section when Config.SpanSample > 0:
	// seed-exact planned count and digest, plus per-hop latency
	// percentiles over the spans that survived the chaos.
	Spans *loadgen.SpanSection `json:"spans,omitempty"`

	Slots2 []SlotReport       `json:"slotReports"`
	SLO    *loadgen.SLOResult `json:"slo,omitempty"`
}

// reportInputs carries Run's measurements into buildReport.
type reportInputs struct {
	overall     *stats.LogHist
	faultHist   *stats.LogHist
	totalErrs   int
	totalReqs   int
	wall        time.Duration
	slotReports []SlotReport
	spans       *loadgen.SpanSection
}

func buildReport(cfg Config, plan *loadgen.Plan, sched *Schedule, injector *Injector,
	mgr *health.Manager, hv *timedHealth, ctrl *autoscale.Controller, client *rpc.Client,
	in reportInputs) (*Report, error) {
	rep := &Report{
		Schema:         ReportSchema,
		Seed:           cfg.Seed,
		Policy:         cfg.Policy,
		RateHz:         cfg.RateHz,
		Slots:          cfg.Slots,
		SlotLenMs:      float64(cfg.SlotLen) / float64(time.Millisecond),
		WallClockMs:    float64(in.wall) / float64(time.Millisecond),
		Faults:         map[string]int{},
		Requests:       in.totalReqs,
		Completed:      in.totalReqs - in.totalErrs,
		Errors:         in.totalErrs,
		Latency:        loadgen.Summarize(in.overall),
		FaultLatency:   loadgen.Summarize(in.faultHist),
		ScheduleDigest: plan.Digest(),
		FaultDigest:    sched.Digest(),
		DecisionDigest: ctrl.Digest(),
		Spans:          in.spans,
		Slots2:         in.slotReports,
	}
	if rep.Policy == "" {
		rep.Policy = "rr"
	}
	for _, ev := range sched.Events {
		rep.Faults[string(ev.Kind)]++
	}
	if in.totalReqs > 0 {
		rep.ErrorRate = float64(in.totalErrs) / float64(in.totalReqs)
		rep.Availability = float64(rep.Completed) / float64(in.totalReqs)
	}

	// Detection latency: match each Down-kind injection to the first
	// ejection of its URL at or after the injection instant.
	ejections := mgr.Ejections()
	rep.Ejections = len(ejections)
	for _, e := range ejections {
		if e.Cause == "probe" && e.ProbeFails > rep.MaxProbesToEject {
			rep.MaxProbesToEject = e.ProbeFails
		}
	}
	var ejectSum, repairSum float64
	ejectN, repairN := 0, 0
	for _, inj := range injector.Injections() {
		if inj.Event.Kind != KindCrash && inj.Event.Kind != KindHang {
			continue
		}
		for _, e := range ejections {
			if e.URL == inj.URL && !e.At.Before(inj.At) {
				d := float64(e.At.Sub(inj.At)) / float64(time.Millisecond)
				ejectSum += d
				ejectN++
				if d > rep.MaxTimeToEject {
					rep.MaxTimeToEject = d
				}
				break
			}
		}
		if at, ok := hv.forgetTime(inj.URL); ok && !at.Before(inj.At) {
			d := float64(at.Sub(inj.At)) / float64(time.Millisecond)
			repairSum += d
			repairN++
			if d > rep.MaxTimeToRepair {
				rep.MaxTimeToRepair = d
			}
		}
	}
	if ejectN > 0 {
		rep.MeanTimeToEject = ejectSum / float64(ejectN)
	}
	if repairN > 0 {
		rep.MeanTimeToRepair = repairSum / float64(repairN)
	}
	rep.Repairs = int(mgr.Repairs())

	st := client.Stats()
	rep.Retries = st.Retries
	rep.Hedges = st.Hedges
	rep.HedgeWins = st.HedgeWins
	if st.Hedges > 0 {
		rep.HedgeWinRate = float64(st.HedgeWins) / float64(st.Hedges)
	}
	if cfg.SLO != nil {
		throughput := 0.0
		if in.wall > 0 {
			throughput = float64(rep.Completed) / in.wall.Seconds()
		}
		rep.SLO = cfg.SLO.Check(rep.Latency, rep.ErrorRate, throughput)
	}
	return rep, nil
}

// WriteJSON writes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("faults: %w", err)
	}
	defer func() { _ = f.Close() }()
	return r.WriteJSON(f)
}

// ReadReport parses a report and verifies its schema.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("faults: decode report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("faults: schema %q, want %q", rep.Schema, ReportSchema)
	}
	return &rep, nil
}

// ReadReportFile parses a report file.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	defer func() { _ = f.Close() }()
	return ReadReport(f)
}

// Summary renders the human-readable digest the CLI prints: the fault
// mix, one line per slot showing detection and repair at work, then
// the availability verdict.
func (r *Report) Summary() string {
	kinds := make([]string, 0, len(r.Faults))
	for k, n := range r.Faults {
		kinds = append(kinds, fmt.Sprintf("%s×%d", k, n))
	}
	out := fmt.Sprintf("chaos run seed=%d policy=%s rate=%.0fHz slots=%d slot=%.0fms faults=[%s]\n",
		r.Seed, r.Policy, r.RateHz, r.Slots, r.SlotLenMs, strings.Join(kinds, " "))
	out += fmt.Sprintf("schedule=%s faults=%s decisions=%s\n",
		r.ScheduleDigest, r.FaultDigest, r.DecisionDigest)
	out += "slot  reqs  errs  p99_ms   faults                kind       repaired\n"
	for _, s := range r.Slots2 {
		out += fmt.Sprintf("%-4d  %-4d  %-4d  %-7.1f  %-20s  %-9s  %v\n",
			s.Slot, s.Requests, s.Errors, s.Latency.P99Ms,
			strings.Join(s.Faults, ","), s.Decision.Kind, s.Decision.Repaired)
	}
	out += fmt.Sprintf("availability=%.4f (%d/%d, %d errors) p99=%.1fms p99-during-fault=%.1fms\n",
		r.Availability, r.Completed, r.Requests, r.Errors, r.Latency.P99Ms, r.FaultLatency.P99Ms)
	out += fmt.Sprintf("ejections=%d (max %d failed probes, mean %.0fms) repairs=%d (mean %.0fms)\n",
		r.Ejections, r.MaxProbesToEject, r.MeanTimeToEject, r.Repairs, r.MeanTimeToRepair)
	out += fmt.Sprintf("retries=%d hedges=%d hedge-wins=%d (%.0f%%)\n",
		r.Retries, r.Hedges, r.HedgeWins, 100*r.HedgeWinRate)
	if r.Spans != nil {
		out += fmt.Sprintf("spans: 1/%d planned=%d collected=%d digest=%s\n",
			r.Spans.SampleEvery, r.Spans.Planned, r.Spans.Collected, r.Spans.Digest)
		for _, hop := range []string{"queue", "linger", "cold", "network", "exec"} {
			if s, ok := r.Spans.Hops[hop]; ok {
				out += fmt.Sprintf("  hop %-7s p50=%.2fms p90=%.2fms p99=%.2fms mean=%.2fms\n",
					hop, s.P50Ms, s.P90Ms, s.P99Ms, s.MeanMs)
			}
		}
	}
	if r.SLO != nil {
		if r.SLO.Pass {
			out += "SLO: PASS\n"
		} else {
			out += "SLO: FAIL\n"
			for _, v := range r.SLO.Violations {
				out += "  " + v + "\n"
			}
		}
	}
	return out
}
