package faults

import (
	"context"
	"net/http"
	"testing"
	"time"

	"accelcloud/internal/loadgen"
	"accelcloud/internal/sim"
)

// TestClusterWrapBackendInjection proves the chaos proxy composes with
// loadgen's hermetic cluster via the WrapBackend hook: an error burst
// injected into one surrogate surfaces as loadgen errors, and clearing
// it restores a clean run.
func TestClusterWrapBackendInjection(t *testing.T) {
	var proxies []*Proxy
	cluster, err := loadgen.StartCluster(loadgen.ClusterConfig{
		Groups:             1,
		SurrogatesPerGroup: 1,
		WrapBackend: func(id string, h http.Handler) http.Handler {
			p := NewProxy(id, h)
			proxies = append(proxies, p)
			return p
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if len(proxies) != 1 {
		t.Fatalf("wrapped %d backends, want 1", len(proxies))
	}
	// Proxies built through WrapBackend don't own a listener; track
	// them under the front-end-facing URL of the pool entry.
	url := cluster.FrontEnd().Pool(1)[0].URL

	cfg := loadgen.Config{
		Users:     2,
		Duration:  200 * time.Millisecond,
		RateHz:    10,
		Seed:      1,
		Groups:    []int{1},
		FixedTask: "sieve",
		Timeout:   2 * time.Second,
	}
	rep, err := loadgen.Run(context.Background(), cluster.URL(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("clean cluster errors = %d", rep.Errors)
	}

	if err := proxies[0].Apply(Event{Kind: KindErrorBurst, Param: 1.0}, sim.NewRNG(2)); err != nil {
		t.Fatal(err)
	}
	rep, err = loadgen.Run(context.Background(), cluster.URL(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != rep.Requests {
		t.Fatalf("error burst: %d/%d requests failed, want all (url %s)", rep.Errors, rep.Requests, url)
	}

	proxies[0].Clear()
	rep, err = loadgen.Run(context.Background(), cluster.URL(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("cleared cluster errors = %d", rep.Errors)
	}
}
