package trace

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Sink receives request records. Store is the canonical durable sink;
// Window is the live sliding-window sink the autoscaling control loop
// reads; Tee fans one record out to several sinks (e.g. durable log +
// live window behind one front-end).
type Sink interface {
	Append(Record) error
}

// tee writes every record to each member sink in order.
type tee struct {
	sinks []Sink
}

// Tee combines sinks into one. Nil members are skipped; the first
// append error is returned but later sinks still receive the record.
func Tee(sinks ...Sink) Sink {
	out := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	return &tee{sinks: out}
}

// Append implements Sink.
func (t *tee) Append(r Record) error {
	var firstErr error
	for _, s := range t.sinks {
		if err := s.Append(r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Window folds a live request stream into consecutive fixed-length time
// slots incrementally — the sliding-window request log of the
// autoscaling control loop (DESIGN.md §5). Unlike BuildSlots, which
// re-scans the whole record set every call, a Window maintains per-slot
// user sets as records arrive and retains at most MaxSlots completed
// slots, so a long-running front-end can feed the predictor at O(1)
// amortized cost per request.
//
// A Window is safe for concurrent use: the networked front-end appends
// from request goroutines while the control loop calls Advance.
type Window struct {
	mu        sync.Mutex
	start     time.Time
	slotLen   time.Duration
	numGroups int
	maxSlots  int

	// open holds user sets for slots not yet closed, keyed by slot
	// index then group.
	open map[int][]map[int]struct{}
	// closed holds completed slots, oldest first, pruned to maxSlots.
	closed []Slot
	// nextClose is the index of the first slot not yet closed.
	nextClose int
}

// NewWindow builds an empty sliding window starting at start.
func NewWindow(start time.Time, slotLen time.Duration, numGroups, maxSlots int) (*Window, error) {
	if start.IsZero() {
		return nil, errors.New("trace: window without start time")
	}
	if slotLen <= 0 {
		return nil, fmt.Errorf("trace: window slot length %v <= 0", slotLen)
	}
	if numGroups <= 0 {
		return nil, fmt.Errorf("trace: window group count %d <= 0", numGroups)
	}
	if maxSlots <= 0 {
		return nil, fmt.Errorf("trace: window retention %d <= 0 slots", maxSlots)
	}
	return &Window{
		start:     start,
		slotLen:   slotLen,
		numGroups: numGroups,
		maxSlots:  maxSlots,
		open:      make(map[int][]map[int]struct{}),
	}, nil
}

// SlotLen reports the configured slot length.
func (w *Window) SlotLen() time.Duration { return w.slotLen }

// Observe records that a user hit a group at the given time. Records
// before the window start, in already-closed slots, or for groups
// outside [0, numGroups) are ignored, mirroring BuildSlots.
func (w *Window) Observe(at time.Time, userID, group int) {
	if group < 0 || group >= w.numGroups || userID < 0 {
		return
	}
	offset := at.Sub(w.start)
	if offset < 0 {
		return
	}
	idx := int(offset / w.slotLen)
	w.mu.Lock()
	defer w.mu.Unlock()
	if idx < w.nextClose {
		return // slot already closed; history is immutable
	}
	groups := w.open[idx]
	if groups == nil {
		groups = make([]map[int]struct{}, w.numGroups)
		w.open[idx] = groups
	}
	if groups[group] == nil {
		groups[group] = make(map[int]struct{})
	}
	groups[group][userID] = struct{}{}
}

// Append implements Sink, feeding the window from a front-end's request
// log stream.
func (w *Window) Append(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	w.Observe(r.Timestamp, r.UserID, r.Group)
	return nil
}

// Advance closes every slot that ends at or before now and returns the
// newly completed slots, oldest first. Slots with no observations are
// emitted empty, so idle periods reach the predictor as zero-demand
// history instead of silently vanishing.
func (w *Window) Advance(now time.Time) []Slot {
	w.mu.Lock()
	defer w.mu.Unlock()
	elapsed := now.Sub(w.start)
	if elapsed < w.slotLen {
		return nil
	}
	// Slot i spans [start+i·len, start+(i+1)·len); it is closed once
	// now >= its end.
	complete := int(elapsed / w.slotLen)
	var out []Slot
	for idx := w.nextClose; idx < complete; idx++ {
		slot := Slot{
			Start:  w.start.Add(time.Duration(idx) * w.slotLen),
			Groups: make([][]int, w.numGroups),
		}
		sets := w.open[idx]
		for g := 0; g < w.numGroups; g++ {
			var users []int
			if sets != nil {
				users = make([]int, 0, len(sets[g]))
				for u := range sets[g] {
					users = append(users, u)
				}
				sort.Ints(users)
			}
			if users == nil {
				users = []int{}
			}
			slot.Groups[g] = users
		}
		delete(w.open, idx)
		out = append(out, slot)
	}
	w.nextClose = complete
	w.closed = append(w.closed, out...)
	if over := len(w.closed) - w.maxSlots; over > 0 {
		w.closed = append([]Slot(nil), w.closed[over:]...)
	}
	return out
}

// History returns the retained completed slots, oldest first — the
// predictor's knowledge base. The result is a copy safe to hold across
// further appends.
func (w *Window) History() []Slot {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Slot, len(w.closed))
	for i, s := range w.closed {
		out[i] = s.Clone()
	}
	return out
}

// Len reports the number of retained completed slots.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.closed)
}
