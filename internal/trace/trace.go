// Package trace implements the SDN-accelerator's request log (§IV-A): one
// record per processed request with the schema
//
//	<timestamp, user-id, acceleration-group, battery-level, round-trip-time>
//
// plus the time-slot construction the workload predictor consumes. The
// paper stores these in MySQL; here an in-memory store with CSV and
// JSON-lines codecs plays that role (see DESIGN.md substitutions).
package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"accelcloud/internal/wire"
)

// Record is one logged offloading request.
type Record struct {
	// Timestamp is when the request was processed by the front-end.
	Timestamp time.Time `json:"timestamp"`
	// UserID identifies the requesting device.
	UserID int `json:"userId"`
	// Group is the acceleration group that served the request.
	Group int `json:"group"`
	// BatteryLevel is the device battery in [0, 1] at request time.
	BatteryLevel float64 `json:"batteryLevel"`
	// RTT is the response time observed for the request.
	RTT time.Duration `json:"rtt"`
	// Span, when non-nil, carries the per-hop timing breakdown of a
	// trace-sampled request (wire.Span). It rides the JSON-lines codec
	// only; the CSV codec keeps the paper's exact 5-tuple schema.
	Span *wire.Span `json:"span,omitempty"`
}

// Validate checks record plausibility.
func (r Record) Validate() error {
	if r.Timestamp.IsZero() {
		return errors.New("trace: record without timestamp")
	}
	if r.UserID < 0 {
		return fmt.Errorf("trace: negative user id %d", r.UserID)
	}
	if r.Group < 0 {
		return fmt.Errorf("trace: negative group %d", r.Group)
	}
	if r.BatteryLevel < 0 || r.BatteryLevel > 1 {
		return fmt.Errorf("trace: battery %v outside [0,1]", r.BatteryLevel)
	}
	if r.RTT < 0 {
		return fmt.Errorf("trace: negative rtt %v", r.RTT)
	}
	return nil
}

// Store is an append-only request log, safe for concurrent use (the
// networked front-end appends from request goroutines).
type Store struct {
	mu      sync.Mutex
	records []Record
}

// NewStore returns an empty log.
func NewStore() *Store { return &Store{} }

// Append adds one record after validation.
func (s *Store) Append(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, r)
	return nil
}

// Len reports the number of stored records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// Snapshot returns a copy of all records in append order.
func (s *Store) Snapshot() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// Since returns a copy of the records with Timestamp >= from.
func (s *Store) Since(from time.Time) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Record
	for _, r := range s.records {
		if !r.Timestamp.Before(from) {
			out = append(out, r)
		}
	}
	return out
}

// csvHeader is the column layout of the CSV codec.
var csvHeader = []string{"timestamp", "user_id", "acceleration_group", "battery_level", "rtt_ms"}

// WriteCSV encodes records with a header row. Timestamps are RFC 3339
// with nanoseconds; RTT is fractional milliseconds.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i, r := range records {
		row := []string{
			r.Timestamp.Format(time.RFC3339Nano),
			strconv.Itoa(r.UserID),
			strconv.Itoa(r.Group),
			strconv.FormatFloat(r.BatteryLevel, 'f', -1, 64),
			strconv.FormatFloat(float64(r.RTT)/float64(time.Millisecond), 'f', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes records written by WriteCSV.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, errors.New("trace: empty csv")
	}
	if len(rows[0]) != len(csvHeader) || rows[0][0] != csvHeader[0] {
		return nil, fmt.Errorf("trace: unexpected header %v", rows[0])
	}
	out := make([]Record, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("trace: row %d has %d columns", i+1, len(row))
		}
		ts, err := time.Parse(time.RFC3339Nano, row[0])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d timestamp: %w", i+1, err)
		}
		uid, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d user id: %w", i+1, err)
		}
		group, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d group: %w", i+1, err)
		}
		battery, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d battery: %w", i+1, err)
		}
		rttMs, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d rtt: %w", i+1, err)
		}
		rec := Record{
			Timestamp:    ts,
			UserID:       uid,
			Group:        group,
			BatteryLevel: battery,
			RTT:          time.Duration(rttMs * float64(time.Millisecond)),
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i+1, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// WriteJSONL encodes records as JSON lines.
func WriteJSONL(w io.Writer, records []Record) error {
	enc := json.NewEncoder(w)
	for i, r := range records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("trace: encode record %d: %w", i, err)
		}
	}
	return nil
}

// ReadJSONL decodes records written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for i := 0; ; i++ {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("trace: decode record %d: %w", i, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		out = append(out, rec)
	}
}

// Slot is one time slot t_i of §IV-A: per acceleration group, the set of
// users that offloaded during the interval, in canonical (sorted, unique)
// order.
type Slot struct {
	Start  time.Time
	Groups [][]int
}

// Counts reports the per-group user counts W_an.
func (s Slot) Counts() []int {
	out := make([]int, len(s.Groups))
	for g, users := range s.Groups {
		out[g] = len(users)
	}
	return out
}

// TotalUsers reports the slot's total workload W.
func (s Slot) TotalUsers() int {
	total := 0
	for _, users := range s.Groups {
		total += len(users)
	}
	return total
}

// Clone deep-copies the slot.
func (s Slot) Clone() Slot {
	out := Slot{Start: s.Start, Groups: make([][]int, len(s.Groups))}
	for g, users := range s.Groups {
		out.Groups[g] = append([]int(nil), users...)
	}
	return out
}

// BuildSlots folds records into consecutive slots of the given length
// covering [start, start+n·slotLen). Records outside the span or with
// groups >= numGroups are skipped. The model supports any slot length
// "defined in (fractions of) hours" (§IV-A); here any positive duration.
func BuildSlots(records []Record, start time.Time, slotLen time.Duration, n, numGroups int) ([]Slot, error) {
	if slotLen <= 0 {
		return nil, fmt.Errorf("trace: slot length %v <= 0", slotLen)
	}
	if n <= 0 {
		return nil, fmt.Errorf("trace: slot count %d <= 0", n)
	}
	if numGroups <= 0 {
		return nil, fmt.Errorf("trace: group count %d <= 0", numGroups)
	}
	// Collect user sets per (slot, group).
	sets := make([]map[int]struct{}, n*numGroups)
	for _, r := range records {
		offset := r.Timestamp.Sub(start)
		if offset < 0 {
			continue
		}
		idx := int(offset / slotLen)
		if idx >= n {
			continue
		}
		if r.Group >= numGroups {
			continue
		}
		cell := idx*numGroups + r.Group
		if sets[cell] == nil {
			sets[cell] = make(map[int]struct{})
		}
		sets[cell][r.UserID] = struct{}{}
	}
	out := make([]Slot, n)
	for i := 0; i < n; i++ {
		slot := Slot{Start: start.Add(time.Duration(i) * slotLen), Groups: make([][]int, numGroups)}
		for g := 0; g < numGroups; g++ {
			set := sets[i*numGroups+g]
			users := make([]int, 0, len(set))
			for u := range set {
				users = append(users, u)
			}
			sort.Ints(users)
			slot.Groups[g] = users
		}
		out[i] = slot
	}
	return out, nil
}
