package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"accelcloud/internal/sim"
)

func validRecord(i int) Record {
	return Record{
		Timestamp:    sim.Epoch.Add(time.Duration(i) * time.Second),
		UserID:       i % 7,
		Group:        i % 3,
		BatteryLevel: 0.5,
		RTT:          time.Duration(50+i) * time.Millisecond,
	}
}

func TestRecordValidate(t *testing.T) {
	good := validRecord(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := []Record{
		{},
		{Timestamp: sim.Epoch, UserID: -1},
		{Timestamp: sim.Epoch, Group: -2},
		{Timestamp: sim.Epoch, BatteryLevel: 1.5},
		{Timestamp: sim.Epoch, BatteryLevel: -0.1},
		{Timestamp: sim.Epoch, RTT: -time.Second},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Fatalf("case %d should fail: %+v", i, r)
		}
	}
}

func TestStoreAppendAndSnapshot(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		if err := s.Append(validRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	snap := s.Snapshot()
	if len(snap) != 10 {
		t.Fatalf("snapshot has %d records", len(snap))
	}
	// Snapshot is a copy: mutating it must not affect the store.
	snap[0].UserID = 999
	if s.Snapshot()[0].UserID == 999 {
		t.Fatal("Snapshot leaked internal state")
	}
	if err := s.Append(Record{}); err == nil {
		t.Fatal("invalid record should be rejected")
	}
}

func TestStoreSince(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		if err := s.Append(validRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Since(sim.Epoch.Add(5 * time.Second))
	if len(got) != 5 {
		t.Fatalf("Since returned %d records, want 5", len(got))
	}
	for _, r := range got {
		if r.Timestamp.Before(sim.Epoch.Add(5 * time.Second)) {
			t.Fatalf("record %v before cutoff", r.Timestamp)
		}
	}
}

func TestStoreConcurrentAppend(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = s.Append(validRecord(w*100 + i))
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("Len = %d, want 800", s.Len())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	records := make([]Record, 25)
	for i := range records {
		records[i] = validRecord(i)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("round trip length %d, want %d", len(back), len(records))
	}
	for i := range records {
		if !back[i].Timestamp.Equal(records[i].Timestamp) ||
			back[i].UserID != records[i].UserID ||
			back[i].Group != records[i].Group ||
			back[i].BatteryLevel != records[i].BatteryLevel ||
			back[i].RTT != records[i].RTT {
			t.Fatalf("record %d: %+v != %+v", i, back[i], records[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,header\n1,2\n",
		"timestamp,user_id,acceleration_group,battery_level,rtt_ms\nnot-a-time,1,1,0.5,10\n",
		"timestamp,user_id,acceleration_group,battery_level,rtt_ms\n2017-01-01T00:00:00Z,x,1,0.5,10\n",
		"timestamp,user_id,acceleration_group,battery_level,rtt_ms\n2017-01-01T00:00:00Z,1,x,0.5,10\n",
		"timestamp,user_id,acceleration_group,battery_level,rtt_ms\n2017-01-01T00:00:00Z,1,1,x,10\n",
		"timestamp,user_id,acceleration_group,battery_level,rtt_ms\n2017-01-01T00:00:00Z,1,1,0.5,x\n",
		"timestamp,user_id,acceleration_group,battery_level,rtt_ms\n2017-01-01T00:00:00Z,1,1,7.5,10\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	records := make([]Record, 10)
	for i := range records {
		records[i] = validRecord(i)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("round trip length %d", len(back))
	}
	for i := range records {
		if !back[i].Timestamp.Equal(records[i].Timestamp) || back[i].RTT != records[i].RTT {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{broken")); err == nil {
		t.Fatal("broken json should fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"timestamp":"2017-01-01T00:00:00Z","userId":-5,"group":0,"batteryLevel":0.5,"rtt":0}` + "\n")); err == nil {
		t.Fatal("invalid record should fail")
	}
	got, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v, %d records", err, len(got))
	}
}

func TestBuildSlots(t *testing.T) {
	slotLen := time.Hour
	var records []Record
	add := func(hour int, user, group int) {
		records = append(records, Record{
			Timestamp: sim.Epoch.Add(time.Duration(hour)*time.Hour + time.Minute),
			UserID:    user, Group: group, BatteryLevel: 1, RTT: time.Millisecond,
		})
	}
	add(0, 1, 0)
	add(0, 2, 0)
	add(0, 2, 0) // duplicate user in same slot+group collapses
	add(0, 3, 1)
	add(1, 1, 1)
	add(1, 4, 2)
	add(5, 9, 0) // beyond n slots -> skipped
	add(1, 5, 9) // group >= numGroups -> skipped

	slots, err := BuildSlots(records, sim.Epoch, slotLen, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 3 {
		t.Fatalf("got %d slots", len(slots))
	}
	if got := slots[0].Counts(); got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("slot0 counts = %v", got)
	}
	if users := slots[0].Groups[0]; len(users) != 2 || users[0] != 1 || users[1] != 2 {
		t.Fatalf("slot0 group0 users = %v", users)
	}
	if got := slots[1].Counts(); got[0] != 0 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("slot1 counts = %v", got)
	}
	if slots[2].TotalUsers() != 0 {
		t.Fatalf("slot2 should be empty, got %d", slots[2].TotalUsers())
	}
	if !slots[1].Start.Equal(sim.Epoch.Add(time.Hour)) {
		t.Fatalf("slot1 start = %v", slots[1].Start)
	}
}

func TestBuildSlotsValidation(t *testing.T) {
	if _, err := BuildSlots(nil, sim.Epoch, 0, 1, 1); err == nil {
		t.Fatal("zero slot length should fail")
	}
	if _, err := BuildSlots(nil, sim.Epoch, time.Hour, 0, 1); err == nil {
		t.Fatal("zero slots should fail")
	}
	if _, err := BuildSlots(nil, sim.Epoch, time.Hour, 1, 0); err == nil {
		t.Fatal("zero groups should fail")
	}
}

func TestBuildSlotsRecordsBeforeStartSkipped(t *testing.T) {
	records := []Record{{
		Timestamp: sim.Epoch.Add(-time.Minute), UserID: 1, Group: 0,
		BatteryLevel: 1, RTT: time.Millisecond,
	}}
	slots, err := BuildSlots(records, sim.Epoch, time.Hour, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if slots[0].TotalUsers() != 0 {
		t.Fatal("record before start must be skipped")
	}
}

func TestSlotClone(t *testing.T) {
	s := Slot{Start: sim.Epoch, Groups: [][]int{{1, 2}, {3}}}
	c := s.Clone()
	c.Groups[0][0] = 99
	if s.Groups[0][0] == 99 {
		t.Fatal("Clone must deep-copy")
	}
}

// Property: CSV round trip preserves every record for arbitrary valid
// contents.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(users []uint8, groups []uint8) bool {
		n := len(users)
		if len(groups) < n {
			n = len(groups)
		}
		if n > 40 {
			n = 40
		}
		records := make([]Record, n)
		for i := 0; i < n; i++ {
			records[i] = Record{
				Timestamp:    sim.Epoch.Add(time.Duration(i) * 13 * time.Second),
				UserID:       int(users[i]),
				Group:        int(groups[i]) % 5,
				BatteryLevel: float64(users[i]) / 255,
				RTT:          time.Duration(groups[i]) * time.Millisecond,
			}
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, records); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if len(back) != n {
			return false
		}
		for i := range records {
			if !back[i].Timestamp.Equal(records[i].Timestamp) ||
				back[i] != (Record{
					Timestamp:    back[i].Timestamp,
					UserID:       records[i].UserID,
					Group:        records[i].Group,
					BatteryLevel: records[i].BatteryLevel,
					RTT:          records[i].RTT,
				}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
