package trace

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func asyncRecord(user int) Record {
	return Record{
		Timestamp:    time.Date(2017, 6, 5, 12, 0, 0, 0, time.UTC).Add(time.Duration(user) * time.Second),
		UserID:       user,
		Group:        1,
		BatteryLevel: 0.5,
		RTT:          10 * time.Millisecond,
	}
}

func TestAsyncValidation(t *testing.T) {
	if _, err := NewAsync(nil, 0, 0); err == nil {
		t.Fatal("nil downstream should fail")
	}
	if _, err := NewAsync(NewStore(), -1, 0); err == nil {
		t.Fatal("negative buffer should fail")
	}
	if _, err := NewAsync(NewStore(), 0, -time.Second); err == nil {
		t.Fatal("negative flush period should fail")
	}
	a, err := NewAsync(NewStore(), 4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	if err := a.Append(Record{}); err == nil {
		t.Fatal("invalid record should fail validation")
	}
}

func TestAsyncDeliversToDownstream(t *testing.T) {
	store := NewStore()
	a, err := NewAsync(store, 64, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Append(asyncRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	// The ticker flushes without any explicit call.
	deadline := time.Now().Add(5 * time.Second)
	for store.Len() < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("ticker never flushed: %d/10 delivered", store.Len())
		}
		time.Sleep(time.Millisecond)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if a.Dropped() != 0 || a.SinkErrors() != 0 {
		t.Fatalf("dropped=%d sinkErrors=%d", a.Dropped(), a.SinkErrors())
	}
	// Records survive in append order per producer.
	recs := store.Snapshot()
	if len(recs) != 10 || recs[0].UserID != 0 || recs[9].UserID != 9 {
		t.Fatalf("records = %d, first=%d last=%d", len(recs), recs[0].UserID, recs[len(recs)-1].UserID)
	}
}

func TestAsyncFlushIsSynchronous(t *testing.T) {
	store := NewStore()
	// A flush period far beyond the test ensures delivery comes from
	// Flush, not the ticker.
	a, err := NewAsync(store, 64, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	for i := 0; i < 5; i++ {
		if err := a.Append(asyncRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	a.Flush()
	if store.Len() != 5 {
		t.Fatalf("flush delivered %d/5", store.Len())
	}
}

func TestAsyncCloseFlushesAndRejects(t *testing.T) {
	store := NewStore()
	a, err := NewAsync(store, 64, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := a.Append(asyncRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 7 {
		t.Fatalf("close delivered %d/7", store.Len())
	}
	if err := a.Append(asyncRecord(99)); !errors.Is(err, ErrAsyncClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if a.Dropped() != 1 {
		t.Fatalf("dropped = %d after post-close append", a.Dropped())
	}
	// Idempotent.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Flush after close must not deadlock.
	a.Flush()
}

// blockedSink blocks Append until released, simulating a slow durable
// store.
type blockedSink struct {
	release chan struct{}
	got     chan Record
}

func (b *blockedSink) Append(r Record) error {
	<-b.release
	select {
	case b.got <- r:
	default:
	}
	return nil
}

func TestAsyncShedsWhenFull(t *testing.T) {
	slow := &blockedSink{release: make(chan struct{}), got: make(chan Record, 1024)}
	a, err := NewAsync(slow, 4, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// The worker picks up at most one record and blocks in the slow
	// sink; 4 more fill the buffer; everything beyond is shed without
	// blocking this goroutine.
	start := time.Now()
	for i := 0; i < 32; i++ {
		if err := a.Append(asyncRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("appends blocked for %v on a full buffer", elapsed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.Dropped() < 32-4-1 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if d := a.Dropped(); d < 32-4-1 {
		t.Fatalf("dropped = %d, want >= %d", d, 32-4-1)
	}
	close(slow.release)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if got, dropped := int64(len(slow.got)), a.Dropped(); got+dropped != 32 {
		t.Fatalf("delivered %d + dropped %d != 32", got, dropped)
	}
}

// failSink always errors.
type failSink struct{}

func (failSink) Append(Record) error { return errors.New("boom") }

func TestAsyncCountsSinkErrors(t *testing.T) {
	a, err := NewAsync(failSink{}, 16, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := a.Append(asyncRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	a.Flush()
	if a.SinkErrors() != 3 {
		t.Fatalf("sink errors = %d", a.SinkErrors())
	}
	_ = a.Close()
}

func TestAsyncConcurrentAppends(t *testing.T) {
	store := NewStore()
	a, err := NewAsync(store, 1024, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const producers, each = 8, 200
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				_ = a.Append(asyncRecord(p*each + i))
			}
		}()
	}
	wg.Wait()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if got := int64(store.Len()) + a.Dropped(); got != producers*each {
		t.Fatalf("delivered+dropped = %d, want %d", got, producers*each)
	}
}
