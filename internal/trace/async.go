package trace

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrAsyncClosed is returned by Append after Close.
var ErrAsyncClosed = errors.New("trace: async sink closed")

// DefaultAsyncBuffer is the record capacity NewAsync uses for buffer 0.
const DefaultAsyncBuffer = 8192

// DefaultAsyncFlushEvery is the flush period NewAsync uses for 0.
const DefaultAsyncFlushEvery = 100 * time.Millisecond

// Async decouples the request hot path from trace persistence: Append
// validates the record and enqueues it without ever blocking — a
// bounded channel absorbs bursts, a single worker goroutine drains it
// in batches into the downstream sink on a flush ticker, and when the
// buffer is full the record is dropped and counted instead of stalling
// the request. Tee Async into a Store and a Window to keep the durable
// log and the autoscaler's live slot window fed off one front-end
// without a synchronous append on every request.
//
// Shed-on-overload is deliberate: a trace record is telemetry, and a
// full buffer means persistence is slower than the request rate —
// blocking would propagate that slowness to every client. Dropped()
// reports how many records were shed, SinkErrors() how many downstream
// appends failed. The downstream sink must be safe for concurrent use
// (Store, Window, and Tee of them are): appends that race Close sweep
// the queue themselves, overlapping the worker's final drain.
type Async struct {
	down       Sink
	ch         chan Record
	flushReq   chan chan struct{}
	quit       chan struct{}
	done       chan struct{}
	closeOnce  sync.Once
	closed     atomic.Bool
	dropped    atomic.Int64
	sinkErrors atomic.Int64
}

// NewAsync wraps a downstream sink. buffer is the queue capacity
// (0 selects DefaultAsyncBuffer); flushEvery is the worker's drain
// period (0 selects DefaultAsyncFlushEvery). Close flushes the queue
// and stops the worker.
func NewAsync(down Sink, buffer int, flushEvery time.Duration) (*Async, error) {
	if down == nil {
		return nil, errors.New("trace: async without downstream sink")
	}
	if buffer < 0 {
		return nil, fmt.Errorf("trace: async buffer %d < 0", buffer)
	}
	if buffer == 0 {
		buffer = DefaultAsyncBuffer
	}
	if flushEvery < 0 {
		return nil, fmt.Errorf("trace: async flush period %v < 0", flushEvery)
	}
	if flushEvery == 0 {
		flushEvery = DefaultAsyncFlushEvery
	}
	a := &Async{
		down:     down,
		ch:       make(chan Record, buffer),
		flushReq: make(chan chan struct{}),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go a.worker(flushEvery)
	return a, nil
}

// Append implements Sink. It never blocks: a full queue sheds the
// record (counted in Dropped) and an already-closed sink returns
// ErrAsyncClosed.
func (a *Async) Append(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if a.closed.Load() {
		a.dropped.Add(1)
		return ErrAsyncClosed
	}
	select {
	case a.ch <- r:
		if a.closed.Load() {
			// Close raced this append: its final drain may already
			// have run with the worker gone, which would strand the
			// record in the channel forever. Sweep it downstream
			// ourselves — the sinks Async composes with (Store,
			// Window, Tee of them) are safe for concurrent use, so
			// overlapping with the worker's own drain is fine.
			a.drain()
		}
		return nil
	default:
		a.dropped.Add(1)
		return nil
	}
}

// worker drains the queue into the downstream sink: on every tick, on
// every Flush request, and once more on Close.
func (a *Async) worker(flushEvery time.Duration) {
	defer close(a.done)
	ticker := time.NewTicker(flushEvery)
	defer ticker.Stop()
	for {
		select {
		case rec := <-a.ch:
			a.push(rec)
			a.drain()
		case <-ticker.C:
			a.drain()
		case ack := <-a.flushReq:
			a.drain()
			close(ack)
		case <-a.quit:
			a.drain()
			return
		}
	}
}

// drain moves every queued record downstream without blocking on the
// producer side.
func (a *Async) drain() {
	for {
		select {
		case rec := <-a.ch:
			a.push(rec)
		default:
			return
		}
	}
}

// push appends one record downstream, counting failures — a log error
// must never surface on the request path, but it must not vanish
// either.
func (a *Async) push(rec Record) {
	if err := a.down.Append(rec); err != nil {
		a.sinkErrors.Add(1)
	}
}

// Flush synchronously drains everything queued so far into the
// downstream sink — call before reading the downstream (e.g. before
// advancing a Window at a slot boundary). Flush after Close is a
// no-op: Close already flushed.
func (a *Async) Flush() {
	ack := make(chan struct{})
	select {
	case a.flushReq <- ack:
		<-ack
	case <-a.done:
	}
}

// Close flushes queued records and stops the worker. Appends racing
// Close may be shed (counted in Dropped when they observe the closed
// flag). Close is idempotent.
func (a *Async) Close() error {
	a.closeOnce.Do(func() {
		a.closed.Store(true)
		close(a.quit)
		<-a.done
		// Records enqueued between the worker's final drain and the
		// closed-flag store would otherwise linger unseen.
		a.drain()
	})
	return nil
}

// Dropped reports how many records were shed by a full buffer or a
// closed sink.
func (a *Async) Dropped() int64 { return a.dropped.Load() }

// SinkErrors reports how many downstream appends failed.
func (a *Async) SinkErrors() int64 { return a.sinkErrors.Load() }
