package trace

import (
	"sync"
	"testing"
	"time"
)

func TestWindowValidation(t *testing.T) {
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := NewWindow(time.Time{}, time.Second, 2, 4); err == nil {
		t.Fatal("zero start should fail")
	}
	if _, err := NewWindow(base, 0, 2, 4); err == nil {
		t.Fatal("zero slot length should fail")
	}
	if _, err := NewWindow(base, time.Second, 0, 4); err == nil {
		t.Fatal("zero groups should fail")
	}
	if _, err := NewWindow(base, time.Second, 2, 0); err == nil {
		t.Fatal("zero retention should fail")
	}
}

func TestWindowFoldsLikeBuildSlots(t *testing.T) {
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	w, err := NewWindow(base, time.Minute, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	var records []Record
	add := func(minOffset float64, user, group int) {
		at := base.Add(time.Duration(minOffset * float64(time.Minute)))
		records = append(records, Record{Timestamp: at, UserID: user, Group: group, BatteryLevel: 1, RTT: time.Millisecond})
		w.Observe(at, user, group)
	}
	add(0.1, 1, 0)
	add(0.2, 2, 1)
	add(0.3, 1, 0) // duplicate user in slot: sets dedupe
	add(1.5, 3, 2)
	add(1.6, 4, 1)
	add(2.5, 5, 0)

	got := w.Advance(base.Add(3 * time.Minute))
	want, err := BuildSlots(records, base, time.Minute, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("advance returned %d slots, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Start.Equal(want[i].Start) {
			t.Fatalf("slot %d start %v != %v", i, got[i].Start, want[i].Start)
		}
		gc, wc := got[i].Counts(), want[i].Counts()
		for g := range gc {
			if gc[g] != wc[g] {
				t.Fatalf("slot %d group %d: %d users, want %d", i, g, gc[g], wc[g])
			}
		}
	}
}

func TestWindowEmitsEmptySlots(t *testing.T) {
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	w, err := NewWindow(base, time.Second, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	w.Observe(base.Add(100*time.Millisecond), 1, 0)
	// Three seconds elapse with traffic only in the first.
	slots := w.Advance(base.Add(3 * time.Second))
	if len(slots) != 3 {
		t.Fatalf("got %d slots, want 3", len(slots))
	}
	if slots[0].TotalUsers() != 1 || slots[1].TotalUsers() != 0 || slots[2].TotalUsers() != 0 {
		t.Fatalf("user counts = %d %d %d", slots[0].TotalUsers(), slots[1].TotalUsers(), slots[2].TotalUsers())
	}
}

func TestWindowIgnoresClosedAndOutOfRange(t *testing.T) {
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	w, err := NewWindow(base, time.Second, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	w.Advance(base.Add(2 * time.Second))
	// Late arrival into a closed slot, pre-start, bad group: all ignored.
	w.Observe(base.Add(500*time.Millisecond), 1, 0)
	w.Observe(base.Add(-time.Second), 2, 0)
	w.Observe(base.Add(2500*time.Millisecond), 3, 9)
	slots := w.Advance(base.Add(3 * time.Second))
	if len(slots) != 1 || slots[0].TotalUsers() != 0 {
		t.Fatalf("slots = %+v", slots)
	}
	if w.Len() != 3 {
		t.Fatalf("retained %d slots, want 3", w.Len())
	}
}

func TestWindowRetentionBound(t *testing.T) {
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	w, err := NewWindow(base, time.Second, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		w.Observe(base.Add(time.Duration(i)*time.Second+time.Millisecond), i, 0)
	}
	w.Advance(base.Add(10 * time.Second))
	hist := w.History()
	if len(hist) != 4 {
		t.Fatalf("retained %d slots, want 4", len(hist))
	}
	// Oldest retained slot is index 6 (users 6..9 remain).
	if hist[0].Groups[0][0] != 6 {
		t.Fatalf("oldest retained slot holds user %d, want 6", hist[0].Groups[0][0])
	}
}

func TestWindowAsSink(t *testing.T) {
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	w, err := NewWindow(base, time.Second, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	sink := Tee(store, w, nil)
	rec := Record{Timestamp: base.Add(time.Millisecond), UserID: 7, Group: 1, BatteryLevel: 0.5, RTT: time.Millisecond}
	if err := sink.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := sink.Append(Record{}); err == nil {
		t.Fatal("invalid record should fail through the tee")
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d records", store.Len())
	}
	slots := w.Advance(base.Add(time.Second))
	if len(slots) != 1 || len(slots[0].Groups[1]) != 1 || slots[0].Groups[1][0] != 7 {
		t.Fatalf("slots = %+v", slots)
	}
}

func TestWindowConcurrentObserve(t *testing.T) {
	base := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC)
	w, err := NewWindow(base, time.Second, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := 0; u < 200; u++ {
				w.Observe(base.Add(time.Duration(u)*time.Millisecond), u, g)
			}
		}()
	}
	wg.Wait()
	slots := w.Advance(base.Add(time.Second))
	if len(slots) != 1 {
		t.Fatalf("got %d slots", len(slots))
	}
	for g, users := range slots[0].Groups {
		if len(users) != 200 {
			t.Fatalf("group %d has %d users, want 200", g, len(users))
		}
	}
}
