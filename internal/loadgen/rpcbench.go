package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"accelcloud/internal/rpc"
	"accelcloud/internal/tasks"
)

// RPCBenchSchema versions the rpcbench report format for cmd/benchdiff.
const RPCBenchSchema = "accelcloud/rpcbench/v1"

// RPCBenchConfig sizes one protocol-overhead measurement.
type RPCBenchConfig struct {
	// Requests is the measured request count per cell (0 selects 300).
	Requests int
	// Warmup requests run before measurement to fill connection pools
	// and JIT the path (0 selects 50).
	Warmup int
	// ChainLen is the batched call-chain length (0 selects 8).
	ChainLen int
	// TaskSize is the fibonacci size used as the near-zero-cost
	// workload (0 selects 1), so latency − CloudMs isolates protocol
	// overhead.
	TaskSize int
	// RouteDelay is the artificial per-request SDN routing delay used
	// by the chain-amortization cells only (0 selects 5ms; the paper
	// measured ≈150ms). Chain amortization is about paying the fixed
	// per-round-trip cost once per chain instead of once per call, so
	// it is only observable when such a fixed cost exists — on loopback
	// it must be simulated, exactly as sdnd's -overhead flag does.
	RouteDelay time.Duration
}

// RPCBenchReport is the BENCH_rpc.json artifact: the protocol-overhead
// matrix {JSON, binary} × {sequential single calls, batched chains},
// measured against one in-process cluster per transport so both sides
// pay identical routing and execution costs and the difference is pure
// wire protocol.
//
// All overhead numbers are low quantiles (p25) of (client-observed
// latency − the surrogate-reported execution time), i.e. everything
// the protocol and proxy add around the actual work. Ratios, not
// absolute latencies, are what CI gates on: both transports scale with
// the host, so their ratio is far more machine-portable than
// microseconds.
type RPCBenchReport struct {
	Schema   string `json:"schema"`
	Requests int    `json:"requests"`
	ChainLen int    `json:"chainLen"`

	// Per-call protocol overhead, microseconds (medians).
	JSONSingleOverheadUs float64 `json:"jsonSingleOverheadUs"`
	JSONBatchOverheadUs  float64 `json:"jsonBatchOverheadUs"`
	BinSingleOverheadUs  float64 `json:"binSingleOverheadUs"`
	BinBatchOverheadUs   float64 `json:"binBatchOverheadUs"`

	// Speedup is the headline per-request overhead ratio: a legacy
	// device issuing sequential JSON calls versus an upgraded device
	// pipelining its call chain into binary batch frames — the
	// before/after of adopting the framed protocol end to end.
	Speedup float64 `json:"speedup"`
	// SingleSpeedup isolates the framing change alone: sequential JSON
	// versus sequential binary, one call per round trip on both sides.
	SingleSpeedup float64 `json:"singleSpeedup"`

	// Chain amortization, measured against a cluster whose front-end
	// charges RouteDelayMs of fixed routing cost per request (the
	// paper's SDN processing overhead): a ChainLen-call chain in one
	// batch frame traverses that cost concurrently and must land near a
	// single call's latency, not at ChainLen times it. JSONSeqChainMs
	// is the contrast cell — the same chain as ChainLen sequential JSON
	// calls pays the fixed cost ChainLen times.
	RouteDelayMs   float64 `json:"routeDelayMs"`
	BinSingleMs    float64 `json:"binSingleMs"`
	BinChainMs     float64 `json:"binChainMs"`
	ChainRatio     float64 `json:"chainRatio"`
	JSONSeqChainMs float64 `json:"jsonSeqChainMs"`
}

// Summary renders the human-readable table.
func (r *RPCBenchReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rpcbench: %d requests per cell, chain length %d\n", r.Requests, r.ChainLen)
	fmt.Fprintf(&b, "  per-call overhead (p25, latency minus execution):\n")
	fmt.Fprintf(&b, "    json sequential  %9.1f us\n", r.JSONSingleOverheadUs)
	fmt.Fprintf(&b, "    json batched     %9.1f us\n", r.JSONBatchOverheadUs)
	fmt.Fprintf(&b, "    bin  sequential  %9.1f us\n", r.BinSingleOverheadUs)
	fmt.Fprintf(&b, "    bin  batched     %9.1f us\n", r.BinBatchOverheadUs)
	fmt.Fprintf(&b, "  speedup (json sequential / bin batched): %.2fx\n", r.Speedup)
	fmt.Fprintf(&b, "  speedup (json sequential / bin sequential): %.2fx\n", r.SingleSpeedup)
	fmt.Fprintf(&b, "  chain amortization at %.0f ms fixed routing cost:\n", r.RouteDelayMs)
	fmt.Fprintf(&b, "    bin single %.3f ms, bin %d-chain %.3f ms (%.2fx), json %d sequential calls %.3f ms\n",
		r.BinSingleMs, r.ChainLen, r.BinChainMs, r.ChainRatio, r.ChainLen, r.JSONSeqChainMs)
	return b.String()
}

// WriteFile writes the JSON report.
func (r *RPCBenchReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadRPCBenchReport parses a report and verifies its schema.
func ReadRPCBenchReport(rd io.Reader) (*RPCBenchReport, error) {
	var rep RPCBenchReport
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("loadgen: decode rpcbench report: %w", err)
	}
	if rep.Schema != RPCBenchSchema {
		return nil, fmt.Errorf("loadgen: schema %q, want %q", rep.Schema, RPCBenchSchema)
	}
	return &rep, nil
}

// ReadRPCBenchReportFile parses a report file.
func ReadRPCBenchReportFile(path string) (*RPCBenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	defer func() { _ = f.Close() }()
	return ReadRPCBenchReport(f)
}

func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func median(xs []float64) float64 { return quantile(xs, 0.5) }

// overheadStat is the summary statistic for the overhead cells: the
// 25th percentile rather than the median, because scheduler noise on a
// shared host only ever ADDS to a sample — the low quantile tracks the
// protocol's actual cost and is far more stable run-to-run.
func overheadStat(xs []float64) float64 { return quantile(xs, 0.25) }

// benchState builds the near-zero-cost request the overhead cells
// replay.
func benchState(size int) (tasks.State, error) {
	return tasks.Fibonacci{}.Generate(nil, size)
}

// measureSeqChains replays chainLen sequential single calls per sample
// and returns per-chain latency — the un-batched contrast cell.
func measureSeqChains(ctx context.Context, client *rpc.Client, st tasks.State, warmup, n, chainLen int) ([]float64, error) {
	req := rpc.OffloadRequest{UserID: 1, Group: 1, BatteryLevel: 0.9, State: st}
	for i := 0; i < warmup; i++ {
		if _, err := client.Offload(ctx, req); err != nil {
			return nil, fmt.Errorf("warmup: %w", err)
		}
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		for j := 0; j < chainLen; j++ {
			if _, err := client.Offload(ctx, req); err != nil {
				return nil, err
			}
		}
		out = append(out, float64(time.Since(start))/float64(time.Millisecond))
	}
	return out, nil
}

// measureSingles replays sequential single calls and returns per-call
// (overheadUs, latencyMs) samples.
func measureSingles(ctx context.Context, client *rpc.Client, st tasks.State, warmup, n int) (overheadUs, latencyMs []float64, err error) {
	req := rpc.OffloadRequest{UserID: 1, Group: 1, BatteryLevel: 0.9, State: st}
	for i := 0; i < warmup; i++ {
		if _, err := client.Offload(ctx, req); err != nil {
			return nil, nil, fmt.Errorf("warmup: %w", err)
		}
	}
	overheadUs = make([]float64, 0, n)
	latencyMs = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		resp, err := client.Offload(ctx, req)
		if err != nil {
			return nil, nil, err
		}
		lat := float64(time.Since(start)) / float64(time.Millisecond)
		over := lat - resp.Timings.CloudMs
		if over < 0 {
			over = 0
		}
		overheadUs = append(overheadUs, over*1000)
		latencyMs = append(latencyMs, lat)
	}
	return overheadUs, latencyMs, nil
}

// measureChains replays batched chains and returns per-call overhead
// and per-chain latency samples.
func measureChains(ctx context.Context, client *rpc.Client, st tasks.State, warmup, n, chainLen int) (perCallOverheadUs, chainLatencyMs []float64, err error) {
	calls := make([]rpc.OffloadRequest, chainLen)
	for i := range calls {
		calls[i] = rpc.OffloadRequest{UserID: i, Group: 1, BatteryLevel: 0.9, State: st}
	}
	for i := 0; i < warmup; i++ {
		if _, err := client.OffloadBatch(ctx, calls); err != nil {
			return nil, nil, fmt.Errorf("warmup: %w", err)
		}
	}
	perCallOverheadUs = make([]float64, 0, n)
	chainLatencyMs = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		results, err := client.OffloadBatch(ctx, calls)
		if err != nil {
			return nil, nil, err
		}
		lat := float64(time.Since(start)) / float64(time.Millisecond)
		var cloudMs float64
		for _, res := range results {
			if res.Code != 200 {
				return nil, nil, fmt.Errorf("chain call failed with code %d: %s", res.Code, res.Resp.Error)
			}
			cloudMs += res.Resp.Timings.CloudMs
		}
		// The chain executes server-side concurrently, so the honest
		// per-call overhead divides the whole chain's non-execution time
		// across its calls.
		over := lat - cloudMs
		if over < 0 {
			over = 0
		}
		perCallOverheadUs = append(perCallOverheadUs, over*1000/float64(chainLen))
		chainLatencyMs = append(chainLatencyMs, lat)
	}
	return perCallOverheadUs, chainLatencyMs, nil
}

// RunRPCBench measures the protocol-overhead matrix. Each transport
// runs against its own hermetic cluster (same topology: one group, one
// surrogate) with the framed protocol on both hops for the binary
// cells and JSON/HTTP on both hops for the JSON cells.
func RunRPCBench(cfg RPCBenchConfig) (*RPCBenchReport, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 300
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 50
	}
	if cfg.ChainLen <= 0 {
		cfg.ChainLen = 8
	}
	if cfg.TaskSize <= 0 {
		cfg.TaskSize = 1
	}
	if cfg.RouteDelay <= 0 {
		cfg.RouteDelay = 5 * time.Millisecond
	}
	st, err := benchState(cfg.TaskSize)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	jsonCluster, err := StartCluster(ClusterConfig{Groups: 1, SurrogatesPerGroup: 1})
	if err != nil {
		return nil, err
	}
	defer jsonCluster.Close()
	binCluster, err := StartCluster(ClusterConfig{Groups: 1, SurrogatesPerGroup: 1, Binary: true, BinaryBackends: true})
	if err != nil {
		return nil, err
	}
	defer binCluster.Close()

	jsonClient := rpc.NewClient(jsonCluster.URL())
	binClient := rpc.NewClient(binCluster.BinaryURL())

	// Warm every cell once, then sample the four cells in interleaved
	// blocks: ambient load on a shared host drifts over seconds, and
	// measuring JSON and binary in the same short windows makes the
	// gated ratio a paired comparison instead of two separate
	// experiments.
	if _, _, err := measureSingles(ctx, jsonClient, st, cfg.Warmup, 1); err != nil {
		return nil, fmt.Errorf("json warmup: %w", err)
	}
	if _, _, err := measureSingles(ctx, binClient, st, cfg.Warmup, 1); err != nil {
		return nil, fmt.Errorf("binary warmup: %w", err)
	}
	if _, _, err := measureChains(ctx, jsonClient, st, cfg.Warmup, 1, cfg.ChainLen); err != nil {
		return nil, fmt.Errorf("json batch warmup: %w", err)
	}
	if _, _, err := measureChains(ctx, binClient, st, cfg.Warmup, 1, cfg.ChainLen); err != nil {
		return nil, fmt.Errorf("binary batch warmup: %w", err)
	}
	const blocks = 10
	per := max(cfg.Requests/blocks, 1)
	var jsonSingleOver, binSingleOver, jsonBatchOver, binBatchOver []float64
	for b := 0; b < blocks; b++ {
		js, _, err := measureSingles(ctx, jsonClient, st, 0, per)
		if err != nil {
			return nil, fmt.Errorf("json singles: %w", err)
		}
		bs, _, err := measureSingles(ctx, binClient, st, 0, per)
		if err != nil {
			return nil, fmt.Errorf("binary singles: %w", err)
		}
		jb, _, err := measureChains(ctx, jsonClient, st, 0, per, cfg.ChainLen)
		if err != nil {
			return nil, fmt.Errorf("json chains: %w", err)
		}
		bb, _, err := measureChains(ctx, binClient, st, 0, per, cfg.ChainLen)
		if err != nil {
			return nil, fmt.Errorf("binary chains: %w", err)
		}
		jsonSingleOver = append(jsonSingleOver, js...)
		binSingleOver = append(binSingleOver, bs...)
		jsonBatchOver = append(jsonBatchOver, jb...)
		binBatchOver = append(binBatchOver, bb...)
	}

	// The amortization cells run against clusters whose front-end
	// charges a fixed routing delay per request; fewer samples suffice
	// because each costs at least RouteDelay.
	amortN := min(cfg.Requests, 50)
	amortWarm := min(cfg.Warmup, 5)
	delayBinCluster, err := StartCluster(ClusterConfig{
		Groups: 1, SurrogatesPerGroup: 1, Binary: true, BinaryBackends: true, RouteDelay: cfg.RouteDelay,
	})
	if err != nil {
		return nil, err
	}
	defer delayBinCluster.Close()
	delayJSONCluster, err := StartCluster(ClusterConfig{
		Groups: 1, SurrogatesPerGroup: 1, RouteDelay: cfg.RouteDelay,
	})
	if err != nil {
		return nil, err
	}
	defer delayJSONCluster.Close()
	delayBinClient := rpc.NewClient(delayBinCluster.BinaryURL())
	delayJSONClient := rpc.NewClient(delayJSONCluster.URL())

	_, binSingleLat, err := measureSingles(ctx, delayBinClient, st, amortWarm, amortN)
	if err != nil {
		return nil, fmt.Errorf("binary delayed singles: %w", err)
	}
	_, binChainLat, err := measureChains(ctx, delayBinClient, st, amortWarm, amortN, cfg.ChainLen)
	if err != nil {
		return nil, fmt.Errorf("binary delayed chains: %w", err)
	}
	jsonSeqChainLat, err := measureSeqChains(ctx, delayJSONClient, st, amortWarm, amortN, cfg.ChainLen)
	if err != nil {
		return nil, fmt.Errorf("json delayed sequential chains: %w", err)
	}

	rep := &RPCBenchReport{
		Schema:               RPCBenchSchema,
		Requests:             cfg.Requests,
		ChainLen:             cfg.ChainLen,
		JSONSingleOverheadUs: overheadStat(jsonSingleOver),
		JSONBatchOverheadUs:  overheadStat(jsonBatchOver),
		BinSingleOverheadUs:  overheadStat(binSingleOver),
		BinBatchOverheadUs:   overheadStat(binBatchOver),
		RouteDelayMs:         float64(cfg.RouteDelay) / float64(time.Millisecond),
		BinSingleMs:          median(binSingleLat),
		BinChainMs:           median(binChainLat),
		JSONSeqChainMs:       median(jsonSeqChainLat),
	}
	if rep.BinBatchOverheadUs > 0 {
		rep.Speedup = rep.JSONSingleOverheadUs / rep.BinBatchOverheadUs
	}
	if rep.BinSingleOverheadUs > 0 {
		rep.SingleSpeedup = rep.JSONSingleOverheadUs / rep.BinSingleOverheadUs
	}
	if rep.BinSingleMs > 0 {
		rep.ChainRatio = rep.BinChainMs / rep.BinSingleMs
	}
	return rep, nil
}
