package loadgen

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"accelcloud/internal/rpc"
	"accelcloud/internal/tasks"
)

// TestJSONBinaryParity is the transport-parity half of the conformance
// suite: the same hermetic loadgen schedule replayed over JSON/HTTP and
// over the binary framed protocol against the SAME cluster must produce
// identical results (task, result bytes, ops, group) and identical
// error classifications. One surrogate per group keeps the responding
// server deterministic so even Server fields must match.
func TestJSONBinaryParity(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{Groups: 2, SurrogatesPerGroup: 1, Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	cfg := Config{Users: 4, Duration: time.Second, RateHz: 3, Seed: 42, Groups: []int{1, 2}}
	ncfg, err := cfg.normalized()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("replaying %d planned requests over both transports (schedule %s)", plan.Requests(), plan.Digest())

	jsonClient := rpc.NewClient(cluster.URL())
	binClient := rpc.NewClient(cluster.BinaryURL())
	ctx := context.Background()

	checked := 0
	plan.each(func(pr planned) {
		req := rpc.OffloadRequest{
			UserID: pr.User, Group: pr.Group, BatteryLevel: pr.Battery, State: pr.State,
		}
		jResp, jErr := jsonClient.Offload(ctx, req)
		bResp, bErr := binClient.Offload(ctx, req)
		if (jErr == nil) != (bErr == nil) {
			t.Fatalf("request %d: transports disagree on success: json=%v binary=%v", checked, jErr, bErr)
		}
		if jErr != nil {
			return
		}
		if jResp.Result.Task != bResp.Result.Task ||
			!bytes.Equal(jResp.Result.Data, bResp.Result.Data) ||
			jResp.Result.Ops != bResp.Result.Ops {
			t.Fatalf("request %d: result diverged\n json: %+v\n  bin: %+v", checked, jResp.Result, bResp.Result)
		}
		if jResp.Group != bResp.Group || jResp.Server != bResp.Server {
			t.Fatalf("request %d: routing diverged: json(%s g%d) binary(%s g%d)",
				checked, jResp.Server, jResp.Group, bResp.Server, bResp.Group)
		}
		checked++
	})
	if checked == 0 {
		t.Fatal("no successful requests compared")
	}
}

// statusCode unwraps the HTTP-equivalent code from a client error.
func statusCode(t *testing.T, err error) int {
	t.Helper()
	var se *rpc.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error carries no status code: %v", err)
	}
	return se.Code
}

// TestErrorClassificationParity proves failures classify identically on
// both transports: same StatusError codes for routing failures (503)
// and backend failures (502).
func TestErrorClassificationParity(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{Groups: 1, SurrogatesPerGroup: 1, Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	jsonClient := rpc.NewClient(cluster.URL())
	binClient := rpc.NewClient(cluster.BinaryURL())
	ctx := context.Background()

	st, err := tasks.Fibonacci{}.Generate(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]rpc.OffloadRequest{
		// No backends registered for group 9 → router drop → 503.
		"unroutable group": {UserID: 1, Group: 9, BatteryLevel: 0.5, State: st},
		// Unknown task → surrogate failure → proxied 502.
		"unknown task": {UserID: 1, Group: 1, BatteryLevel: 0.5,
			State: tasks.State{Task: "no-such-task", Size: 8, Data: st.Data}},
	}
	want := map[string]int{
		"unroutable group": http.StatusServiceUnavailable,
		"unknown task":     http.StatusBadGateway,
	}
	for name, req := range cases {
		_, jErr := jsonClient.Offload(ctx, req)
		_, bErr := binClient.Offload(ctx, req)
		if jErr == nil || bErr == nil {
			t.Fatalf("%s: expected failure on both transports, got json=%v binary=%v", name, jErr, bErr)
		}
		jCode, bCode := statusCode(t, jErr), statusCode(t, bErr)
		if jCode != bCode || jCode != want[name] {
			t.Fatalf("%s: classification diverged: json=%d binary=%d want %d", name, jCode, bCode, want[name])
		}
	}
}

// TestBatchParity proves a mixed success/failure chain produces the
// same per-call codes and results over both transports.
func TestBatchParity(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{Groups: 1, SurrogatesPerGroup: 1, Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	jsonClient := rpc.NewClient(cluster.URL())
	binClient := rpc.NewClient(cluster.BinaryURL())
	ctx := context.Background()

	st, err := tasks.Fibonacci{}.Generate(nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	calls := []rpc.OffloadRequest{
		{UserID: 0, Group: 1, BatteryLevel: 0.9, State: st},
		{UserID: 1, Group: 9, BatteryLevel: 0.9, State: st},
		{UserID: 2, Group: 1, BatteryLevel: 0.9, State: tasks.State{Task: "no-such-task", Size: 10, Data: st.Data}},
	}
	jRes, jErr := jsonClient.OffloadBatch(ctx, calls)
	bRes, bErr := binClient.OffloadBatch(ctx, calls)
	if jErr != nil || bErr != nil {
		t.Fatalf("batch transport error: json=%v binary=%v", jErr, bErr)
	}
	if len(jRes) != len(calls) || len(bRes) != len(calls) {
		t.Fatalf("result counts: json=%d binary=%d want %d", len(jRes), len(bRes), len(calls))
	}
	wantCodes := []int{http.StatusOK, http.StatusServiceUnavailable, http.StatusBadGateway}
	for i := range calls {
		if jRes[i].Code != bRes[i].Code || jRes[i].Code != wantCodes[i] {
			t.Fatalf("call %d: codes diverged: json=%d binary=%d want %d", i, jRes[i].Code, bRes[i].Code, wantCodes[i])
		}
		if jRes[i].Code != http.StatusOK {
			continue
		}
		if jRes[i].Resp.Result.Task != bRes[i].Resp.Result.Task ||
			!bytes.Equal(jRes[i].Resp.Result.Data, bRes[i].Resp.Result.Data) ||
			jRes[i].Resp.Result.Ops != bRes[i].Resp.Result.Ops {
			t.Fatalf("call %d: results diverged\n json: %+v\n  bin: %+v", i, jRes[i].Resp.Result, bRes[i].Resp.Result)
		}
	}
}

// TestBinaryBackendsEndToEnd drives the full loadgen runner with the
// framed protocol on BOTH hops (client→front-end and
// front-end→surrogate) and cross-checks request accounting.
func TestBinaryBackendsEndToEnd(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{Groups: 1, SurrogatesPerGroup: 2, Binary: true, BinaryBackends: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	report, err := Run(context.Background(), cluster.BinaryURL(), Config{
		Users: 4, Duration: time.Second, RateHz: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 || report.Errors != 0 {
		t.Fatalf("binary-both-hops run: %d requests, %d errors", report.Requests, report.Errors)
	}
	var executed int64
	for _, sur := range cluster.Surrogates() {
		executed += sur.Stats().Executed
	}
	if executed != int64(report.Requests) {
		t.Fatalf("surrogates executed %d, loadgen issued %d", executed, report.Requests)
	}
}

// TestClusterRejectsBinaryBackendsWithChaos pins the config guard.
func TestClusterRejectsBinaryBackendsWithChaos(t *testing.T) {
	_, err := StartCluster(ClusterConfig{
		BinaryBackends: true,
		WrapBackend:    func(id string, h http.Handler) http.Handler { return h },
	})
	if err == nil {
		t.Fatal("BinaryBackends+WrapBackend accepted")
	}
	if want := "mutually exclusive"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}
