package loadgen

import (
	"testing"
	"time"
)

func TestOpenLoopSlotSections(t *testing.T) {
	slotLen := 200 * time.Millisecond
	rep := hermeticRun(t,
		ClusterConfig{Groups: 1, SurrogatesPerGroup: 1},
		Config{
			Mode:     ModeInterArrival,
			Users:    3,
			Duration: 800 * time.Millisecond,
			RateHz:   20,
			Seed:     3,
			SlotLen:  slotLen,
		})
	if len(rep.Slots) == 0 {
		t.Fatal("open-loop run with SlotLen produced no slot sections")
	}
	total, errs := 0, 0
	for i, sec := range rep.Slots {
		if sec.Slot != i {
			t.Fatalf("slot %d has index %d", i, sec.Slot)
		}
		wantStart := float64(time.Duration(i)*slotLen) / float64(time.Millisecond)
		if sec.StartMs != wantStart {
			t.Fatalf("slot %d start %.1f, want %.1f", i, sec.StartMs, wantStart)
		}
		if sec.Requests > 0 && sec.Latency.N == 0 {
			t.Fatalf("slot %d has %d requests but empty latency summary", i, sec.Requests)
		}
		total += sec.Requests
		errs += sec.Errors
	}
	if total != rep.Requests || errs != rep.Errors {
		t.Fatalf("slot sections %d/%d do not partition run %d/%d", total, errs, rep.Requests, rep.Errors)
	}
}

func TestClosedLoopHasNoSlotSections(t *testing.T) {
	rep := hermeticRun(t,
		ClusterConfig{Groups: 1, SurrogatesPerGroup: 1},
		Config{
			Mode:     ModeConcurrent,
			Users:    2,
			Duration: time.Second,
			RateHz:   2,
			Seed:     1,
			SlotLen:  100 * time.Millisecond,
		})
	if len(rep.Slots) != 0 {
		t.Fatalf("closed loop emitted %d slot sections", len(rep.Slots))
	}
}

func TestNegativeSlotLenRejected(t *testing.T) {
	_, err := BuildPlan(Config{
		Mode: ModeConcurrent, Users: 1, Duration: time.Second, SlotLen: -time.Second,
	})
	if err == nil {
		t.Fatal("negative slot length should fail")
	}
}
