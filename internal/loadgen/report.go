package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"accelcloud/internal/stats"
)

// Schema identifies the report wire format; bump on breaking changes so
// cmd/benchdiff can refuse to compare incompatible reports.
const Schema = "accelcloud/loadgen-report/v1"

// SLO is a service-level objective evaluated against a report.
type SLO struct {
	// P99Ms bounds the 99th-percentile latency (0 = unchecked).
	P99Ms float64 `json:"p99Ms,omitempty"`
	// MaxErrorRate bounds the error fraction in [0,1] (0 = errors
	// forbidden when any other bound is set; leave the whole SLO nil to
	// skip checking).
	MaxErrorRate float64 `json:"maxErrorRate"`
	// MinThroughputRps bounds completed requests per second (0 =
	// unchecked).
	MinThroughputRps float64 `json:"minThroughputRps,omitempty"`
}

// SLOResult reports an SLO evaluation.
type SLOResult struct {
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

// LatencySummary is the percentile digest of a latency population.
type LatencySummary struct {
	N      int     `json:"n"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
	MinMs  float64 `json:"minMs"`
	MaxMs  float64 `json:"maxMs"`
}

// GroupReport is the per-acceleration-group breakdown.
type GroupReport struct {
	Requests int            `json:"requests"`
	Errors   int            `json:"errors"`
	Latency  LatencySummary `json:"latency"`
}

// Report is the machine-readable outcome of one load-generation run
// (the BENCH_loadgen.json schema).
type Report struct {
	Schema         string                 `json:"schema"`
	Mode           string                 `json:"mode"`
	Users          int                    `json:"users"`
	Seed           int64                  `json:"seed"`
	RateHz         float64                `json:"rateHz"`
	DurationMs     float64                `json:"durationMs"`
	WallClockMs    float64                `json:"wallClockMs"`
	Requests       int                    `json:"requests"`
	Completed      int                    `json:"completed"`
	Errors         int                    `json:"errors"`
	ErrorRate      float64                `json:"errorRate"`
	ThroughputRps  float64                `json:"throughputRps"`
	Latency        LatencySummary         `json:"latency"`
	Groups         map[string]GroupReport `json:"groups"`
	ScheduleDigest string                 `json:"scheduleDigest"`
	SLO            *SLOResult             `json:"slo,omitempty"`
}

// summarize folds a histogram into the percentile digest. Quantile
// errors are impossible for non-empty histograms with in-range q.
func summarize(h *stats.LogHist) LatencySummary {
	if h.Total() == 0 {
		return LatencySummary{}
	}
	q := func(p float64) float64 {
		v, _ := h.Quantile(p)
		return v
	}
	return LatencySummary{
		N:      h.Total(),
		MeanMs: h.Mean(),
		P50Ms:  q(0.50),
		P90Ms:  q(0.90),
		P99Ms:  q(0.99),
		P999Ms: q(0.999),
		MinMs:  h.Min(),
		MaxMs:  h.Max(),
	}
}

// buildReport aggregates records into the report.
func buildReport(cfg Config, plan *Plan, recs []record, wall time.Duration) *Report {
	overall := stats.NewLatencyHist()
	perGroup := map[int]*stats.LogHist{}
	groupReqs := map[int]int{}
	groupErrs := map[int]int{}
	errs := 0
	for _, r := range recs {
		groupReqs[r.group]++
		if r.err != nil {
			errs++
			groupErrs[r.group]++
		}
		if r.err == errSkipped {
			// Never-issued requests have no latency to record.
			continue
		}
		overall.Add(r.latencyMs)
		gh := perGroup[r.group]
		if gh == nil {
			gh = stats.NewLatencyHist()
			perGroup[r.group] = gh
		}
		gh.Add(r.latencyMs)
	}
	completed := len(recs) - errs
	rep := &Report{
		Schema:         Schema,
		Mode:           string(cfg.Mode),
		Users:          cfg.Users,
		Seed:           cfg.Seed,
		RateHz:         cfg.RateHz,
		DurationMs:     float64(cfg.Duration) / float64(time.Millisecond),
		WallClockMs:    float64(wall) / float64(time.Millisecond),
		Requests:       len(recs),
		Completed:      completed,
		Errors:         errs,
		Latency:        summarize(overall),
		Groups:         map[string]GroupReport{},
		ScheduleDigest: plan.Digest(),
	}
	if len(recs) > 0 {
		rep.ErrorRate = float64(errs) / float64(len(recs))
	}
	if wall > 0 {
		rep.ThroughputRps = float64(completed) / wall.Seconds()
	}
	groups := make([]int, 0, len(groupReqs))
	for g := range groupReqs {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, g := range groups {
		gr := GroupReport{Requests: groupReqs[g], Errors: groupErrs[g]}
		if h := perGroup[g]; h != nil {
			gr.Latency = summarize(h)
		}
		rep.Groups[strconv.Itoa(g)] = gr
	}
	if cfg.SLO != nil {
		rep.SLO = evaluateSLO(rep, *cfg.SLO)
	}
	return rep
}

// evaluateSLO checks a report against an SLO.
func evaluateSLO(rep *Report, slo SLO) *SLOResult {
	res := &SLOResult{Pass: true}
	fail := func(format string, args ...any) {
		res.Pass = false
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	if slo.P99Ms > 0 && rep.Latency.P99Ms > slo.P99Ms {
		fail("p99 %.1f ms > SLO %.1f ms", rep.Latency.P99Ms, slo.P99Ms)
	}
	if rep.ErrorRate > slo.MaxErrorRate {
		fail("error rate %.3f > SLO %.3f", rep.ErrorRate, slo.MaxErrorRate)
	}
	if slo.MinThroughputRps > 0 && rep.ThroughputRps < slo.MinThroughputRps {
		fail("throughput %.1f rps < SLO %.1f rps", rep.ThroughputRps, slo.MinThroughputRps)
	}
	return res
}

// WriteJSON writes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	defer func() { _ = f.Close() }()
	return r.WriteJSON(f)
}

// ReadReport parses a report and verifies its schema.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("loadgen: decode report: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("loadgen: schema %q, want %q", rep.Schema, Schema)
	}
	return &rep, nil
}

// ReadReportFile parses a report file.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	defer func() { _ = f.Close() }()
	return ReadReport(f)
}

// Summary renders the human-readable digest the CLI prints.
func (r *Report) Summary() string {
	out := fmt.Sprintf(
		"mode=%s users=%d seed=%d schedule=%s\n"+
			"requests=%d completed=%d errors=%d (%.1f%%) wall=%.1fs throughput=%.1f rps\n"+
			"latency ms: p50=%.1f p90=%.1f p99=%.1f p999=%.1f mean=%.1f max=%.1f\n",
		r.Mode, r.Users, r.Seed, r.ScheduleDigest,
		r.Requests, r.Completed, r.Errors, 100*r.ErrorRate, r.WallClockMs/1000, r.ThroughputRps,
		r.Latency.P50Ms, r.Latency.P90Ms, r.Latency.P99Ms, r.Latency.P999Ms, r.Latency.MeanMs, r.Latency.MaxMs)
	keys := make([]string, 0, len(r.Groups))
	for k := range r.Groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := r.Groups[k]
		out += fmt.Sprintf("  group %s: n=%d errors=%d p50=%.1f p99=%.1f mean=%.1f\n",
			k, g.Requests, g.Errors, g.Latency.P50Ms, g.Latency.P99Ms, g.Latency.MeanMs)
	}
	if r.SLO != nil {
		if r.SLO.Pass {
			out += "SLO: PASS\n"
		} else {
			out += "SLO: FAIL\n"
			for _, v := range r.SLO.Violations {
				out += "  " + v + "\n"
			}
		}
	}
	return out
}
