package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"accelcloud/internal/stats"
)

// Schema identifies the report wire format; bump on breaking changes so
// cmd/benchdiff can refuse to compare incompatible reports.
const Schema = "accelcloud/loadgen-report/v1"

// SLO is a service-level objective evaluated against a report.
type SLO struct {
	// P99Ms bounds the 99th-percentile latency (0 = unchecked).
	P99Ms float64 `json:"p99Ms,omitempty"`
	// MaxErrorRate bounds the error fraction in [0,1] (0 = errors
	// forbidden when any other bound is set; leave the whole SLO nil to
	// skip checking).
	MaxErrorRate float64 `json:"maxErrorRate"`
	// MinThroughputRps bounds completed requests per second (0 =
	// unchecked).
	MinThroughputRps float64 `json:"minThroughputRps,omitempty"`
}

// SLOResult reports an SLO evaluation.
type SLOResult struct {
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

// Check evaluates the SLO against raw metrics — the reusable entry
// point for reports other than Report (e.g. the autoscale report).
func (s SLO) Check(latency LatencySummary, errorRate, throughputRps float64) *SLOResult {
	res := &SLOResult{Pass: true}
	fail := func(format string, args ...any) {
		res.Pass = false
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	if s.P99Ms > 0 && latency.P99Ms > s.P99Ms {
		fail("p99 %.1f ms > SLO %.1f ms", latency.P99Ms, s.P99Ms)
	}
	if errorRate > s.MaxErrorRate {
		fail("error rate %.3f > SLO %.3f", errorRate, s.MaxErrorRate)
	}
	if s.MinThroughputRps > 0 && throughputRps < s.MinThroughputRps {
		fail("throughput %.1f rps < SLO %.1f rps", throughputRps, s.MinThroughputRps)
	}
	return res
}

// LatencySummary is the percentile digest of a latency population.
type LatencySummary struct {
	N      int     `json:"n"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
	MinMs  float64 `json:"minMs"`
	MaxMs  float64 `json:"maxMs"`
}

// GroupReport is the per-acceleration-group breakdown.
type GroupReport struct {
	Requests int            `json:"requests"`
	Errors   int            `json:"errors"`
	Latency  LatencySummary `json:"latency"`
}

// SlotSection is the per-time-slot breakdown of an open-loop run —
// the granularity at which cost-vs-SLO tradeoffs of the autoscaling
// control loop are measured (one section per provisioning slot).
type SlotSection struct {
	// Slot is the slot index from run start.
	Slot int `json:"slot"`
	// StartMs is the slot's planned start offset.
	StartMs float64 `json:"startMs"`
	// Requests/Errors count the requests planned into the slot.
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// Latency summarizes the slot's issued requests.
	Latency LatencySummary `json:"latency"`
}

// SpanSection reports the trace-span sampling outcome of a run: how
// many requests the schedule sampled (a pure function of the seed),
// how many per-hop breakdowns actually came back, the fnv1a digest of
// the sampled span IDs in canonical schedule order (exact across runs
// and transports — BENCH_obs.json pins it), and the per-hop latency
// percentiles.
type SpanSection struct {
	// SampleEvery is the configured 1/N sampling rate.
	SampleEvery int `json:"sampleEvery"`
	// Planned counts schedule-sampled requests; Collected counts the
	// spans that returned (errors and drops collect nothing).
	Planned   int `json:"planned"`
	Collected int `json:"collected"`
	// Digest is the fnv1a digest of the planned span IDs.
	Digest string `json:"digest"`
	// Hops maps hop name (queue, linger, cold, network, exec) to the
	// hop's latency percentiles across collected spans.
	Hops map[string]LatencySummary `json:"hops,omitempty"`
}

// Report is the machine-readable outcome of one load-generation run
// (the BENCH_loadgen.json schema).
type Report struct {
	Schema        string                 `json:"schema"`
	Mode          string                 `json:"mode"`
	Users         int                    `json:"users"`
	Seed          int64                  `json:"seed"`
	RateHz        float64                `json:"rateHz"`
	DurationMs    float64                `json:"durationMs"`
	WallClockMs   float64                `json:"wallClockMs"`
	Requests      int                    `json:"requests"`
	Completed     int                    `json:"completed"`
	Errors        int                    `json:"errors"`
	ErrorRate     float64                `json:"errorRate"`
	ThroughputRps float64                `json:"throughputRps"`
	Latency       LatencySummary         `json:"latency"`
	Groups        map[string]GroupReport `json:"groups"`
	// Versions slices latency by backend version label when the run
	// was configured with a server→version map — the canary rollout's
	// per-version latency comparison ("stable" is the unlabeled
	// fleet). Error records carry no server, so version slices count
	// successes only.
	Versions map[string]GroupReport `json:"versions,omitempty"`
	// Regions slices latency by serving region when the run was driven
	// through a RegionOffloader (the geo client) — the per-region view
	// of a multi-region sweep. Like version slices, error records carry
	// no region, so region slices count successes only.
	Regions map[string]GroupReport `json:"regions,omitempty"`
	Slots   []SlotSection          `json:"slots,omitempty"`
	// Sessions counts session-start requests (scenario mode; 0
	// elsewhere — other modes have no session notion).
	Sessions int `json:"sessions,omitempty"`
	// Spans is the trace-span section when SpanSample > 0.
	Spans          *SpanSection `json:"spans,omitempty"`
	ScheduleDigest string       `json:"scheduleDigest"`
	SLO            *SLOResult   `json:"slo,omitempty"`
}

// Summarize folds a latency histogram into the percentile digest (the
// LatencySummary every report section carries). Quantile errors are
// impossible for non-empty histograms with in-range q.
func Summarize(h *stats.LogHist) LatencySummary {
	if h.Total() == 0 {
		return LatencySummary{}
	}
	q := func(p float64) float64 {
		v, _ := h.Quantile(p)
		return v
	}
	return LatencySummary{
		N:      h.Total(),
		MeanMs: h.Mean(),
		P50Ms:  q(0.50),
		P90Ms:  q(0.90),
		P99Ms:  q(0.99),
		P999Ms: q(0.999),
		MinMs:  h.Min(),
		MaxMs:  h.Max(),
	}
}

// buildReport renders the merged accumulator of a finished run. The
// spans argument carries the schedule-side section seed (planned count
// and ID digest) or nil when sampling is off; buildReport fills in the
// measured side.
func buildReport(cfg Config, digest string, spans *SpanSection, acc *accumulator, wall time.Duration) *Report {
	completed := acc.n - acc.errs
	rep := &Report{
		Schema:         Schema,
		Mode:           string(cfg.Mode),
		Users:          cfg.Users,
		Seed:           cfg.Seed,
		RateHz:         cfg.RateHz,
		DurationMs:     float64(cfg.Duration) / float64(time.Millisecond),
		WallClockMs:    float64(wall) / float64(time.Millisecond),
		Requests:       acc.n,
		Completed:      completed,
		Errors:         acc.errs,
		Latency:        Summarize(acc.overall),
		Groups:         map[string]GroupReport{},
		Sessions:       acc.session,
		ScheduleDigest: digest,
	}
	if acc.n > 0 {
		rep.ErrorRate = float64(acc.errs) / float64(acc.n)
	}
	if wall > 0 {
		rep.ThroughputRps = float64(completed) / wall.Seconds()
	}
	groups := make([]int, 0, len(acc.groups))
	for g := range acc.groups {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	for _, g := range groups {
		c := acc.groups[g]
		rep.Groups[strconv.Itoa(g)] = GroupReport{
			Requests: c.requests,
			Errors:   c.errors,
			Latency:  Summarize(c.hist),
		}
	}
	if acc.trackSlots {
		rep.Slots = buildSlotSections(cfg, acc)
	}
	if cfg.SLO != nil {
		rep.SLO = cfg.SLO.Check(rep.Latency, rep.ErrorRate, rep.ThroughputRps)
	}
	if acc.versions != nil && len(acc.versions) > 0 {
		rep.Versions = cellsToGroups(acc.versions)
	}
	if len(acc.regions) > 0 {
		rep.Regions = cellsToGroups(acc.regions)
	}
	if spans != nil {
		if sc := acc.spans; sc != nil {
			spans.Collected = sc.collected
			if sc.collected > 0 {
				spans.Hops = map[string]LatencySummary{
					"queue":   Summarize(sc.queue),
					"linger":  Summarize(sc.linger),
					"cold":    Summarize(sc.cold),
					"network": Summarize(sc.network),
					"exec":    Summarize(sc.exec),
				}
			}
		}
		rep.Spans = spans
	}
	return rep
}

// cellsToGroups renders labeled accumulator cells (version or region
// slices) into report sections.
func cellsToGroups(cells map[string]*histCell) map[string]GroupReport {
	out := make(map[string]GroupReport, len(cells))
	for label, c := range cells {
		out[label] = GroupReport{Requests: c.requests, Latency: Summarize(c.hist)}
	}
	return out
}

// buildSlotSections renders the accumulator's slot cells, filling idle
// slots with empty sections so gaps stay visible.
func buildSlotSections(cfg Config, acc *accumulator) []SlotSection {
	out := make([]SlotSection, 0, acc.maxSlot+1)
	for idx := 0; idx <= acc.maxSlot; idx++ {
		sec := SlotSection{
			Slot:    idx,
			StartMs: float64(time.Duration(idx)*cfg.SlotLen) / float64(time.Millisecond),
		}
		if c := acc.slots[idx]; c != nil {
			sec.Requests = c.requests
			sec.Errors = c.errors
			sec.Latency = Summarize(c.hist)
		}
		out = append(out, sec)
	}
	return out
}

// WriteJSON writes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	defer func() { _ = f.Close() }()
	return r.WriteJSON(f)
}

// ReadReport parses a report and verifies its schema.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("loadgen: decode report: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("loadgen: schema %q, want %q", rep.Schema, Schema)
	}
	return &rep, nil
}

// ReadReportFile parses a report file.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	defer func() { _ = f.Close() }()
	return ReadReport(f)
}

// Summary renders the human-readable digest the CLI prints.
func (r *Report) Summary() string {
	out := fmt.Sprintf(
		"mode=%s users=%d seed=%d schedule=%s\n"+
			"requests=%d completed=%d errors=%d (%.1f%%) wall=%.1fs throughput=%.1f rps\n"+
			"latency ms: p50=%.1f p90=%.1f p99=%.1f p999=%.1f mean=%.1f max=%.1f\n",
		r.Mode, r.Users, r.Seed, r.ScheduleDigest,
		r.Requests, r.Completed, r.Errors, 100*r.ErrorRate, r.WallClockMs/1000, r.ThroughputRps,
		r.Latency.P50Ms, r.Latency.P90Ms, r.Latency.P99Ms, r.Latency.P999Ms, r.Latency.MeanMs, r.Latency.MaxMs)
	keys := make([]string, 0, len(r.Groups))
	for k := range r.Groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := r.Groups[k]
		out += fmt.Sprintf("  group %s: n=%d errors=%d p50=%.1f p99=%.1f mean=%.1f\n",
			k, g.Requests, g.Errors, g.Latency.P50Ms, g.Latency.P99Ms, g.Latency.MeanMs)
	}
	if r.Spans != nil {
		out += fmt.Sprintf("spans: 1/%d planned=%d collected=%d digest=%s\n",
			r.Spans.SampleEvery, r.Spans.Planned, r.Spans.Collected, r.Spans.Digest)
		for _, hop := range []string{"queue", "linger", "cold", "network", "exec"} {
			if h, ok := r.Spans.Hops[hop]; ok {
				out += fmt.Sprintf("  hop %-7s p50=%.2f p90=%.2f p99=%.2f mean=%.2f\n",
					hop, h.P50Ms, h.P90Ms, h.P99Ms, h.MeanMs)
			}
		}
	}
	if r.SLO != nil {
		if r.SLO.Pass {
			out += "SLO: PASS\n"
		} else {
			out += "SLO: FAIL\n"
			for _, v := range r.SLO.Violations {
				out += "  " + v + "\n"
			}
		}
	}
	return out
}
