package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"

	"accelcloud/internal/tasks"
	"accelcloud/internal/workload"
)

// scenarioTestConfig is a small-but-busy scenario: a compressed virtual
// day so every diurnal phase is exercised inside a short wall window.
func scenarioTestConfig() Config {
	return Config{
		Mode:     ModeScenario,
		Users:    300,
		Duration: 2 * time.Second,
		RateHz:   6,
		Seed:     42,
		Groups:   []int{1, 2},
		Scenario: &ScenarioSpec{
			DiurnalPeriod: time.Second,
			SessionGap:    50 * time.Millisecond,
			BlockSize:     64,
			Crowds: []workload.FlashCrowd{
				{Start: 500 * time.Millisecond, Duration: 300 * time.Millisecond, UserLo: 0, UserHi: 100, Multiplier: 4},
			},
		},
	}
}

// drain runs a scenarioSource to exhaustion, returning its emitted
// sequence.
func drainScenario(t *testing.T, cfg Config) ([]planned, *scenarioSource) {
	t.Helper()
	ncfg, err := cfg.normalized()
	if err != nil {
		t.Fatal(err)
	}
	src, err := newScenarioSource(ncfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []planned
	var pr planned
	for src.next(&pr) {
		out = append(out, pr)
	}
	if src.err != nil {
		t.Fatal(src.err)
	}
	return out, src
}

func TestScenarioSourceDeterministic(t *testing.T) {
	a, srcA := drainScenario(t, scenarioTestConfig())
	b, srcB := drainScenario(t, scenarioTestConfig())
	if len(a) == 0 {
		t.Fatal("scenario emitted nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Offset != b[i].Offset || a[i].User != b[i].User ||
			a[i].TaskName != b[i].TaskName || a[i].Size != b[i].Size ||
			a[i].Session != b[i].Session || a[i].Battery != b[i].Battery ||
			a[i].Group != b[i].Group || string(a[i].State.Data) != string(b[i].State.Data) {
			t.Fatalf("request %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	if srcA.digest() != srcB.digest() {
		t.Fatalf("digests differ: %s vs %s", srcA.digest(), srcB.digest())
	}
	if !strings.HasPrefix(srcA.digest(), "fnv1a:") {
		t.Fatalf("digest = %q", srcA.digest())
	}

	other := scenarioTestConfig()
	other.Seed = 43
	c, srcC := drainScenario(t, other)
	if len(c) == 0 {
		t.Fatal("reseeded scenario emitted nothing")
	}
	if srcC.digest() == srcA.digest() {
		t.Fatal("different seeds produced identical digests")
	}
}

// TestScenarioSourceMatchesWorkloadStream pins the loadgen adapter to
// the workload layer: same schedule keys, in the same order, with
// groups derived the same round-robin way materialized modes use.
func TestScenarioSourceMatchesWorkloadStream(t *testing.T) {
	cfg := scenarioTestConfig()
	got, _ := drainScenario(t, cfg)

	ncfg, err := cfg.normalized()
	if err != nil {
		t.Fatal(err)
	}
	root := newRootRNG(ncfg.Seed)
	stream, err := workload.NewScenarioStream(root, ncfg.workloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := workload.Collect(stream)
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		off := want[i].At.Sub(workload.ScenarioStart())
		if got[i].Offset != off || got[i].User != want[i].UserID ||
			got[i].TaskName != want[i].TaskName || got[i].Size != want[i].Size ||
			got[i].Session != want[i].SessionStart {
			t.Fatalf("request %d: loadgen %+v vs workload %+v", i, got[i], want[i])
		}
		if got[i].Group != group(ncfg.Groups, want[i].UserID) {
			t.Fatalf("request %d: group %d for user %d", i, got[i].Group, want[i].UserID)
		}
		if got[i].Battery < 0.2 || got[i].Battery > 1 {
			t.Fatalf("request %d: battery %v out of range", i, got[i].Battery)
		}
		if got[i].State.Task != want[i].TaskName || len(got[i].State.Data) == 0 {
			t.Fatalf("request %d: state %+v", i, got[i].State)
		}
	}
}

func TestRunScenarioHermetic(t *testing.T) {
	pool := tasks.InferencePool()
	cluster, err := StartCluster(ClusterConfig{Groups: 2, SurrogatesPerGroup: 2, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)

	cfg := scenarioTestConfig()
	cfg.Users = 120
	cfg.Pool = pool
	cfg.Scenario.TaskMix = map[string]float64{
		"fibonacci":       1,
		"infer-mobilenet": 1,
	}
	cfg.SLO = &SLO{P99Ms: 60_000, MaxErrorRate: 0}
	rep, err := Run(context.Background(), cluster.URL(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != string(ModeScenario) {
		t.Fatalf("mode = %q", rep.Mode)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("requests=%d errors=%d", rep.Requests, rep.Errors)
	}
	if rep.Sessions <= 0 || rep.Sessions > rep.Requests {
		t.Fatalf("sessions=%d of %d requests", rep.Sessions, rep.Requests)
	}
	if rep.Latency.N != rep.Requests || rep.Latency.P50Ms <= 0 {
		t.Fatalf("latency = %+v", rep.Latency)
	}
	if len(rep.Groups) != 2 {
		t.Fatalf("groups = %v", rep.Groups)
	}
	if rep.SLO == nil || !rep.SLO.Pass {
		t.Fatalf("SLO should pass: %+v", rep.SLO)
	}
	if !strings.HasPrefix(rep.ScheduleDigest, "fnv1a:") {
		t.Fatalf("digest = %q", rep.ScheduleDigest)
	}

	// The report digest is the generator digest: a re-run replays the
	// byte-identical schedule.
	rep2, err := Run(context.Background(), cluster.URL(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ScheduleDigest != rep.ScheduleDigest || rep2.Requests != rep.Requests ||
		rep2.Sessions != rep.Sessions {
		t.Fatalf("re-run drifted: %s/%d/%d vs %s/%d/%d",
			rep2.ScheduleDigest, rep2.Requests, rep2.Sessions,
			rep.ScheduleDigest, rep.Requests, rep.Sessions)
	}
}

func TestBuildPlanRejectsScenario(t *testing.T) {
	cfg := scenarioTestConfig()
	if _, err := BuildPlan(cfg); err == nil {
		t.Fatal("BuildPlan should reject scenario mode")
	}
}

func TestRunScenarioInvalidSpec(t *testing.T) {
	cfg := scenarioTestConfig()
	cfg.Scenario.TaskMix = map[string]float64{"no-such-task": 1}
	if _, err := Run(context.Background(), "http://127.0.0.1:0", cfg); err == nil {
		t.Fatal("unknown task in mix should fail before any request is issued")
	}
}

// TestScenarioStreamAllocs guards the replay hot path: after warm-up,
// pulling a request out of the sharded generator must not allocate —
// that is the property that keeps memory O(shards) no matter how long
// the schedule runs.
func TestScenarioStreamAllocs(t *testing.T) {
	cfg := scenarioTestConfig()
	cfg.Users = 2048
	cfg.Duration = time.Hour // never exhausted during the measurement
	ncfg, err := cfg.normalized()
	if err != nil {
		t.Fatal(err)
	}
	stream, err := workload.NewScenarioStream(newRootRNG(ncfg.Seed), ncfg.workloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	var req workload.Request
	for i := 0; i < 64; i++ { // warm the merge tree
		if !stream.Next(&req) {
			t.Fatal("stream exhausted during warm-up")
		}
	}
	avg := testing.AllocsPerRun(512, func() {
		if !stream.Next(&req) {
			t.Fatal("stream exhausted during measurement")
		}
	})
	if avg > 0 {
		t.Fatalf("stream.Next allocates %.2f objects per request, want 0", avg)
	}
}

// TestAccumulatorAllocs guards the other half of the hot path: folding
// a completed request into a warm accumulator must not allocate.
func TestAccumulatorAllocs(t *testing.T) {
	cfg, err := scenarioTestConfig().normalized()
	if err != nil {
		t.Fatal(err)
	}
	cfg.SlotLen = 100 * time.Millisecond
	acc := newAccumulator(cfg)
	rec := record{group: 1, offset: 250 * time.Millisecond, latencyMs: 3.5, region: "eu", session: true}
	acc.addRecord(rec) // warm the cells
	avg := testing.AllocsPerRun(512, func() { acc.addRecord(rec) })
	if avg > 0 {
		t.Fatalf("addRecord allocates %.2f objects per record, want 0", avg)
	}
}
