package loadgen_test

import (
	"fmt"
	"time"

	"accelcloud/internal/loadgen"
)

// ExampleBuildPlan materializes a deterministic request schedule: same
// seed, same plan — the digest proves two runs replay the identical
// sequence before a single request goes over the wire.
func ExampleBuildPlan() {
	cfg := loadgen.Config{
		Mode:     loadgen.ModeConcurrent,
		Users:    2,
		Duration: 2 * time.Second,
		RateHz:   1, // 2 requests per user
		Seed:     42,
		Groups:   []int{1, 2},
	}
	a, err := loadgen.BuildPlan(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	b, err := loadgen.BuildPlan(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("requests:", a.Requests())
	fmt.Println("same digest:", a.Digest() == b.Digest())
	cfg.Seed = 43
	c, err := loadgen.BuildPlan(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("new seed, new schedule:", c.Digest() != a.Digest())
	// Output:
	// requests: 4
	// same digest: true
	// new seed, new schedule: true
}
