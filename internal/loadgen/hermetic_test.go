package loadgen

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestStartClusterContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	c, err := StartClusterContext(ctx, ClusterConfig{Groups: 4, SurrogatesPerGroup: 8})
	if err == nil {
		c.Close()
		t.Fatal("cancelled boot should fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error should wrap context.Canceled: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled boot took %v", elapsed)
	}
}

func TestStartClusterContextLive(t *testing.T) {
	c, err := StartClusterContext(context.Background(), ClusterConfig{Groups: 1, SurrogatesPerGroup: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.URL() == "" {
		t.Fatal("cluster without URL")
	}
}
