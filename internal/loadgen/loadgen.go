// Package loadgen drives the real service layer (sdn.FrontEnd routing to
// dalvik surrogates over the rpc protocol) with the multi-client load the
// paper's evaluation assumes but cmd/offload never produced: N simulated
// users replaying internal/workload request schedules, closed- or
// open-loop, with per-request latency folded into log-bucketed histograms
// and an SLO report (p50/p90/p99/p999, throughput, error rate, per-group
// breakdown) emitted as JSON for the CI regression gate.
//
// Determinism contract: the *schedule* — which user issues which task at
// which size against which group, and (open loop) at which offset — is a
// pure function of the Config, because every user draws from its own
// sim.RNG substream. Two runs with the same seed replay identical request
// sequences; only the measured latencies differ. ScheduleDigest hashes
// the sequence so reports can prove it.
package loadgen

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
	"accelcloud/internal/workload"
)

// Mode selects the replay discipline.
type Mode string

const (
	// ModeConcurrent is the closed loop: each user keeps exactly one
	// request in flight, issuing the next the moment the previous
	// response lands (ThinkAir-style parallel offloading benchmark).
	ModeConcurrent Mode = "concurrent"
	// ModeInterArrival is the open loop: requests fire at pre-drawn
	// exponential arrival times regardless of completions (realistic
	// time-varying load).
	ModeInterArrival Mode = "interarrival"
	// ModeSweep is the open-loop doubling-rate stress sweep of Fig 8:
	// the arrival rate doubles every step until the back-end saturates.
	ModeSweep Mode = "sweep"
	// ModeScenario is the population-scale open loop: the schedule is a
	// sharded stream (diurnal curves, flash crowds, sessions) replayed
	// without ever being materialized — O(blocks) resident memory at
	// any population size. Tuned by Config.Scenario.
	ModeScenario Mode = "scenario"
)

// ParseMode validates a mode string.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeConcurrent, ModeInterArrival, ModeSweep, ModeScenario:
		return Mode(s), nil
	}
	return "", fmt.Errorf("loadgen: unknown mode %q (want concurrent|interarrival|sweep|scenario)", s)
}

// Config parameterizes one load-generation run.
type Config struct {
	// Mode is the replay discipline; empty selects ModeConcurrent.
	Mode Mode
	// Users is the number of simulated devices.
	Users int
	// Duration is the nominal run length. Closed loop converts it to a
	// fixed per-user request count (RateHz × Duration) so the schedule
	// stays deterministic; open loop replays arrivals inside it.
	Duration time.Duration
	// RateHz is the per-user request rate (closed loop and
	// interarrival) or the sweep's starting aggregate rate. 0 selects 1.
	RateHz float64
	// Seed roots every substream of the run.
	Seed int64
	// Groups are the acceleration groups users are spread across
	// round-robin by user id; nil selects group 1.
	Groups []int
	// MaxInFlight bounds concurrent outstanding requests. 0 selects
	// Users for the closed loop and 256 for open loops.
	MaxInFlight int
	// Timeout bounds each request; 0 selects 10 s.
	Timeout time.Duration
	// Pool is the task pool; nil selects tasks.DefaultPool().
	Pool *tasks.Pool
	// Sizer draws task sizes; nil selects workload.DefaultSizer().
	Sizer workload.Sizer
	// FixedTask pins every request to one task (empty = random draw).
	FixedTask string
	// SweepSteps is the number of rate doublings in ModeSweep; 0
	// selects 3.
	SweepSteps int
	// SlotLen, when positive, buckets open-loop records into
	// per-time-slot report sections (Report.Slots) — the granularity of
	// the autoscaling control loop. Ignored by the closed loop, whose
	// schedule has no arrival offsets.
	SlotLen time.Duration
	// SLO, when non-nil, is evaluated into the report.
	SLO *SLO
	// Versions, when non-nil, maps backend server names to version
	// labels ("" = stable); the report then carries per-version
	// latency slices (Report.Versions) — the observability half of a
	// canary rollout. Servers missing from the map count as stable.
	Versions map[string]string
	// Scenario tunes ModeScenario (nil = defaults: the DefaultDiurnal
	// curve over a 24h day, no crowds, 30s sessions, 4096-user
	// blocks). Ignored by other modes.
	Scenario *ScenarioSpec
	// SpanSample enables request-scoped trace spans on roughly 1/N of
	// the schedule (0 disables). Span IDs are minted from the schedule
	// RNG — a pure function of (seed, user, sequence) — so which
	// requests carry a span, and the fnv1a digest of the sampled IDs,
	// are reproducible per seed. Sampled requests ship SpanID on the
	// wire and the report grows a per-hop percentile section.
	SpanSample int
}

// ScenarioSpec is the scenario-mode half of a Config: everything the
// population-scale generator needs beyond the shared Users / Duration /
// RateHz / Pool / Sizer fields. Field semantics match
// workload.ScenarioConfig.
type ScenarioSpec struct {
	// Diurnal is the 24-entry day curve (nil = workload.DefaultDiurnal).
	Diurnal []float64
	// DiurnalPeriod compresses the virtual day (0 = 24h).
	DiurnalPeriod time.Duration
	// Crowds are flash-crowd events.
	Crowds []workload.FlashCrowd
	// SessionGap is the idle gap starting a new session (0 = 30s).
	SessionGap time.Duration
	// TaskMix weights task draws by name (nil = uniform pool draw).
	TaskMix map[string]float64
	// BlockSize is the users-per-block generation unit (0 = 4096).
	BlockSize int
}

// workloadConfig assembles the workload-level scenario config from the
// shared Config fields and the spec.
func (c Config) workloadConfig() workload.ScenarioConfig {
	spec := c.Scenario
	if spec == nil {
		spec = &ScenarioSpec{}
	}
	diurnal := spec.Diurnal
	if diurnal == nil {
		diurnal = workload.DefaultDiurnal()
	}
	return workload.ScenarioConfig{
		Users:         c.Users,
		Duration:      c.Duration,
		BaseRateHz:    c.RateHz,
		Diurnal:       diurnal,
		DiurnalPeriod: spec.DiurnalPeriod,
		Crowds:        spec.Crowds,
		SessionGap:    spec.SessionGap,
		Pool:          c.Pool,
		Sizer:         c.Sizer,
		TaskMix:       spec.TaskMix,
		BlockSize:     spec.BlockSize,
	}
}

// normalized returns a copy with defaults applied, or an error for
// invalid settings.
func (c Config) normalized() (Config, error) {
	if c.Mode == "" {
		c.Mode = ModeConcurrent
	}
	if _, err := ParseMode(string(c.Mode)); err != nil {
		return c, err
	}
	if c.Users <= 0 {
		return c, fmt.Errorf("loadgen: users %d <= 0", c.Users)
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("loadgen: duration %v <= 0", c.Duration)
	}
	if c.RateHz < 0 {
		return c, fmt.Errorf("loadgen: rate %v < 0", c.RateHz)
	}
	if c.RateHz == 0 {
		c.RateHz = 1
	}
	// The open-loop generator floors inter-arrival gaps at 1 ms, so
	// per-user rates above 1 kHz would be silently biased downward —
	// reject them instead (the sweep reaches high aggregate rates by
	// doubling, not per-user).
	if c.Mode == ModeInterArrival && c.RateHz > 1000 {
		return c, fmt.Errorf("loadgen: interarrival rate %v Hz exceeds the 1 kHz per-user ceiling (1 ms gap floor)", c.RateHz)
	}
	if len(c.Groups) == 0 {
		c.Groups = []int{1}
	}
	for _, g := range c.Groups {
		if g < 0 {
			return c, fmt.Errorf("loadgen: negative group %d", g)
		}
	}
	if c.MaxInFlight < 0 {
		return c, fmt.Errorf("loadgen: max in flight %d < 0", c.MaxInFlight)
	}
	if c.MaxInFlight == 0 {
		if c.Mode == ModeConcurrent {
			c.MaxInFlight = c.Users
		} else {
			c.MaxInFlight = 256
		}
	}
	if c.Timeout < 0 {
		return c, fmt.Errorf("loadgen: timeout %v < 0", c.Timeout)
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Pool == nil {
		c.Pool = tasks.DefaultPool()
	}
	if c.Sizer == nil {
		c.Sizer = workload.DefaultSizer()
	}
	if c.SweepSteps <= 0 {
		c.SweepSteps = 3
	}
	if c.SlotLen < 0 {
		return c, fmt.Errorf("loadgen: slot length %v < 0", c.SlotLen)
	}
	if c.SpanSample < 0 {
		return c, fmt.Errorf("loadgen: span sample 1/%d < 0", c.SpanSample)
	}
	return c, nil
}

// planned is one fully materialized request: schedule metadata plus the
// generated application state ready to ship.
type planned struct {
	// Offset is the arrival offset from run start (open loop only; the
	// closed loop issues back-to-back).
	Offset time.Duration
	// User is the issuing device.
	User int
	// Group is the acceleration group the request asks for.
	Group int
	// Battery is the logged battery level, drawn per user.
	Battery float64
	// TaskName and Size identify the drawn work.
	TaskName string
	Size     int
	// Session marks a session-start request (scenario mode only).
	Session bool
	// Span is the minted span ID when this request is trace-sampled,
	// 0 otherwise. Excluded from Plan.Digest — the schedule digest
	// predates sampling and stays pinned across committed baselines.
	Span uint64
	// State is the serialized application state.
	State tasks.State
}

// Plan is a deterministic request schedule ready for replay.
type Plan struct {
	// Mode echoes the generating config.
	Mode Mode
	// Seed echoes the root seed.
	Seed int64
	// PerUser holds each user's serial sequence (closed loop).
	PerUser [][]planned
	// Timeline holds the merged arrival-ordered sequence (open loops).
	Timeline []planned
}

// Requests counts the planned requests.
func (p *Plan) Requests() int {
	if len(p.Timeline) > 0 {
		return len(p.Timeline)
	}
	n := 0
	for _, seq := range p.PerUser {
		n += len(seq)
	}
	return n
}

// each visits every planned request in canonical order: user-major for
// the closed loop, arrival order for open loops.
func (p *Plan) each(fn func(planned)) {
	if len(p.Timeline) > 0 {
		for _, pr := range p.Timeline {
			fn(pr)
		}
		return
	}
	for _, seq := range p.PerUser {
		for _, pr := range seq {
			fn(pr)
		}
	}
}

// Digest hashes the schedule — user, group, task, size, battery, and
// (open loop) arrival offset of every request in canonical order — so
// two runs can prove they replayed the same sequence.
func (p *Plan) Digest() string {
	h := fnv.New64a()
	buf := make([]byte, 8)
	writeInt := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(v) >> (8 * i))
		}
		_, _ = h.Write(buf)
	}
	writeInt(p.Seed)
	_, _ = h.Write([]byte(p.Mode))
	p.each(func(pr planned) {
		writeInt(int64(pr.Offset))
		writeInt(int64(pr.User))
		writeInt(int64(pr.Group))
		writeInt(int64(pr.Battery * 1e6))
		_, _ = h.Write([]byte(pr.TaskName))
		writeInt(int64(pr.Size))
	})
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}

// Describe renders the schedule as one line per request in canonical
// order — the artifact two same-seed runs can be diffed on.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# loadgen schedule mode=%s seed=%d requests=%d digest=%s\n",
		p.Mode, p.Seed, p.Requests(), p.Digest())
	b.WriteString("# offset_ms\tuser\tgroup\ttask\tsize\n")
	p.each(func(pr planned) {
		fmt.Fprintf(&b, "%.3f\t%d\t%d\t%s\t%d\n",
			float64(pr.Offset)/float64(time.Millisecond), pr.User, pr.Group, pr.TaskName, pr.Size)
	})
	return b.String()
}

// mintSpan draws a request's span ID from the run's span substream —
// a pure function of (seed, user, seq), so the sampled set replays
// bit-identically — and returns it when the request falls into the
// 1/sampleEvery sample, 0 otherwise.
func mintSpan(root *sim.RNG, sampleEvery, user, seq int) uint64 {
	if sampleEvery <= 0 {
		return 0
	}
	id := root.SubN("span", user).LightN("seq", seq).Uint64()
	if id%uint64(sampleEvery) != 0 {
		return 0
	}
	if id == 0 {
		// 0 means "unsampled" on the wire; the (1-in-2^64) zero draw
		// still samples, just under a fixed stand-in ID.
		id = 1
	}
	return id
}

// SpanPlan walks the schedule's sampled spans in canonical order and
// returns their count and fnv1a digest — the reproducibility anchor
// BENCH_obs.json pins. IDs are deterministic even though measured hop
// timings are not, so the digest gates exactly.
func (p *Plan) SpanPlan() (sampled int, digest string) {
	h := fnv.New64a()
	buf := make([]byte, 8)
	p.each(func(pr planned) {
		if pr.Span == 0 {
			return
		}
		sampled++
		for i := 0; i < 8; i++ {
			buf[i] = byte(pr.Span >> (8 * i))
		}
		_, _ = h.Write(buf)
	})
	return sampled, fmt.Sprintf("fnv1a:%016x", h.Sum64())
}

// group maps a user to its acceleration group.
func group(groups []int, user int) int {
	return groups[user%len(groups)]
}

// battery draws a user's logged battery level from its own substream.
func battery(root *sim.RNG, user int) float64 {
	r := root.SubN("battery", user).Stream("draw")
	return 0.2 + 0.8*r.Float64()
}

// materialize attaches group, battery, and the generated task state to a
// workload request. State generation draws from the per-user state
// substream so it is as order-independent as the schedule itself.
func materialize(req workload.Request, groups []int, batteryLevel float64, stateRNG *rand.Rand, pool *tasks.Pool, offset time.Duration) (planned, error) {
	task, err := pool.ByName(req.TaskName)
	if err != nil {
		return planned{}, err
	}
	st, err := task.Generate(stateRNG, req.Size)
	if err != nil {
		return planned{}, fmt.Errorf("loadgen: generate %s(%d): %w", req.TaskName, req.Size, err)
	}
	return planned{
		Offset:   offset,
		User:     req.UserID,
		Group:    group(groups, req.UserID),
		Battery:  batteryLevel,
		TaskName: req.TaskName,
		Size:     req.Size,
		State:    st,
	}, nil
}

// BuildPlan materializes the deterministic schedule for a config.
func BuildPlan(cfg Config) (*Plan, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if cfg.Mode == ModeScenario {
		return nil, errors.New("loadgen: scenario schedules stream and are never materialized into a Plan; use Run/RunWith (or workload.NewScenarioStream directly)")
	}
	root := newRootRNG(cfg.Seed)
	plan := &Plan{Mode: cfg.Mode, Seed: cfg.Seed}
	switch cfg.Mode {
	case ModeConcurrent:
		perUser := int(cfg.RateHz*cfg.Duration.Seconds() + 0.5)
		if perUser < 1 {
			perUser = 1
		}
		seqs, err := workload.GenerateClosedLoop(root, workload.ClosedLoopConfig{
			Users:     cfg.Users,
			PerUser:   perUser,
			Pool:      cfg.Pool,
			Sizer:     cfg.Sizer,
			FixedTask: cfg.FixedTask,
		})
		if err != nil {
			return nil, err
		}
		plan.PerUser = make([][]planned, len(seqs))
		for u, seq := range seqs {
			bat := battery(root, u)
			stateRNG := root.SubN("state", u).Stream("gen")
			out := make([]planned, 0, len(seq))
			for i, req := range seq {
				pr, err := materialize(req, cfg.Groups, bat, stateRNG, cfg.Pool, 0)
				if err != nil {
					return nil, err
				}
				pr.Span = mintSpan(root, cfg.SpanSample, u, i)
				out = append(out, pr)
			}
			plan.PerUser[u] = out
		}
	case ModeInterArrival:
		reqs, err := workload.GenerateUserStreams(root, sim.Epoch, workload.InterArrivalConfig{
			Users:        cfg.Users,
			InterArrival: stats.Exponential{Rate: cfg.RateHz / 1000}, // per-ms rate
			Duration:     cfg.Duration,
			Pool:         cfg.Pool,
			Sizer:        cfg.Sizer,
			FixedTask:    cfg.FixedTask,
		})
		if err != nil {
			return nil, err
		}
		plan.Timeline, err = materializeTimeline(reqs, cfg, root)
		if err != nil {
			return nil, err
		}
	case ModeSweep:
		reqs, err := workload.GenerateArrivalSweep(root.Sub("sweep").Stream("draws"), sim.Epoch, workload.ArrivalRateConfig{
			StartHz:   cfg.RateHz,
			Steps:     cfg.SweepSteps,
			Step:      cfg.Duration / time.Duration(cfg.SweepSteps),
			Pool:      cfg.Pool,
			Sizer:     cfg.Sizer,
			FixedTask: cfg.FixedTask,
		})
		if err != nil {
			return nil, err
		}
		plan.Timeline, err = materializeTimeline(reqs, cfg, root)
		if err != nil {
			return nil, err
		}
	}
	if plan.Requests() == 0 {
		return nil, errors.New("loadgen: empty schedule (duration too short for the rate)")
	}
	return plan, nil
}

// materializeTimeline converts a sorted workload stream into planned
// requests with arrival offsets relative to run start.
func materializeTimeline(reqs []workload.Request, cfg Config, root *sim.RNG) ([]planned, error) {
	out := make([]planned, 0, len(reqs))
	// State substreams are per user; consecutive requests of one user
	// advance that user's stream in arrival order, which is fixed by the
	// sorted schedule.
	stateRNGs := map[int]*rand.Rand{}
	batteries := map[int]float64{}
	for i, req := range reqs {
		sr, ok := stateRNGs[req.UserID]
		if !ok {
			sr = root.SubN("state", req.UserID).Stream("gen")
			stateRNGs[req.UserID] = sr
			batteries[req.UserID] = battery(root, req.UserID)
		}
		pr, err := materialize(req, cfg.Groups, batteries[req.UserID], sr, cfg.Pool, req.At.Sub(sim.Epoch))
		if err != nil {
			return nil, err
		}
		pr.Span = mintSpan(root, cfg.SpanSample, req.UserID, i)
		out = append(out, pr)
	}
	return out, nil
}
