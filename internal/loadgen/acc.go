package loadgen

import (
	"time"

	"accelcloud/internal/stats"
)

// accumulator folds request outcomes into mergeable aggregates as they
// complete. Replay used to buffer one record per request and aggregate
// at the end, which put an O(requests) slice between a run and its
// report; accumulators make aggregation O(1) per request and O(workers)
// resident — each replay worker owns one, and the report is built from
// their merge. That is what lets the scenario mode replay schedules
// that are never materialized.
type accumulator struct {
	n       int
	errs    int
	session int
	overall *stats.LogHist
	groups  map[int]*histCell
	// slots buckets by planned arrival offset when SlotLen > 0.
	slots   map[int]*histCell
	maxSlot int
	// versions and regions hold success-only latency slices, keyed by
	// resolved version label / serving region.
	versions map[string]*histCell
	regions  map[string]*histCell
	// spans folds the per-hop breakdowns of trace-sampled requests
	// (nil unless SpanSample > 0, so unsampled runs pay nothing).
	spans *spanCell

	slotLen    time.Duration
	labelOf    map[string]string // server → version label; nil disables
	trackSlots bool
}

// histCell is one breakdown bucket: request/error counts plus the
// latency histogram of its issued requests.
type histCell struct {
	requests int
	errors   int
	hist     *stats.LogHist
}

func newCell() *histCell {
	return &histCell{hist: stats.NewLatencyHist()}
}

// spanCell aggregates the per-hop latency breakdown of sampled spans:
// one histogram per hop kind, keyed to SpanSection.Hops.
type spanCell struct {
	collected int
	queue     *stats.LogHist
	linger    *stats.LogHist
	cold      *stats.LogHist
	network   *stats.LogHist
	exec      *stats.LogHist
}

func newSpanCell() *spanCell {
	return &spanCell{
		queue:   stats.NewLatencyHist(),
		linger:  stats.NewLatencyHist(),
		cold:    stats.NewLatencyHist(),
		network: stats.NewLatencyHist(),
		exec:    stats.NewLatencyHist(),
	}
}

func newAccumulator(cfg Config) *accumulator {
	a := &accumulator{
		overall: stats.NewLatencyHist(),
		groups:  map[int]*histCell{},
		maxSlot: -1,
		slotLen: cfg.SlotLen,
		labelOf: cfg.Versions,
	}
	a.trackSlots = cfg.SlotLen > 0 && cfg.Mode != ModeConcurrent
	if a.trackSlots {
		a.slots = map[int]*histCell{}
	}
	if cfg.Versions != nil {
		a.versions = map[string]*histCell{}
	}
	if cfg.SpanSample > 0 {
		a.spans = newSpanCell()
	}
	a.regions = map[string]*histCell{}
	return a
}

func (a *accumulator) cell(m map[int]*histCell, k int) *histCell {
	c := m[k]
	if c == nil {
		c = newCell()
		m[k] = c
	}
	return c
}

func (a *accumulator) slotCell(offset time.Duration) *histCell {
	idx := int(offset / a.slotLen)
	if idx > a.maxSlot {
		a.maxSlot = idx
	}
	return a.cell(a.slots, idx)
}

// addRecord folds one issued request. Errors still contribute latency
// to the overall/group/slot histograms (a timed-out request was a slow
// request); version and region slices count successes only.
func (a *accumulator) addRecord(rec record) {
	a.n++
	if rec.session {
		a.session++
	}
	g := a.cell(a.groups, rec.group)
	g.requests++
	if rec.err != nil {
		a.errs++
		g.errors++
	}
	var slot *histCell
	if a.trackSlots {
		slot = a.slotCell(rec.offset)
		slot.requests++
		if rec.err != nil {
			slot.errors++
		}
	}
	a.overall.Add(rec.latencyMs)
	g.hist.Add(rec.latencyMs)
	if slot != nil {
		slot.hist.Add(rec.latencyMs)
	}
	if a.spans != nil && rec.span != nil {
		a.spans.collected++
		a.spans.queue.Add(rec.span.QueueMs)
		a.spans.linger.Add(rec.span.LingerMs)
		a.spans.cold.Add(rec.span.ColdMs)
		a.spans.network.Add(rec.span.NetworkMs)
		a.spans.exec.Add(rec.span.ExecMs)
	}
	if rec.err == nil {
		if a.versions != nil && rec.server != "" {
			label := a.labelOf[rec.server]
			if label == "" {
				label = "stable"
			}
			c := a.versions[label]
			if c == nil {
				c = newCell()
				a.versions[label] = c
			}
			c.requests++
			c.hist.Add(rec.latencyMs)
		}
		if rec.region != "" {
			c := a.regions[rec.region]
			if c == nil {
				c = newCell()
				a.regions[rec.region] = c
			}
			c.requests++
			c.hist.Add(rec.latencyMs)
		}
	}
}

// addSkipped folds one request the run never issued (cancellation):
// it counts toward totals and error counts but has no latency.
func (a *accumulator) addSkipped(pr planned) {
	a.n++
	a.errs++
	g := a.cell(a.groups, pr.Group)
	g.requests++
	g.errors++
	if a.trackSlots {
		slot := a.slotCell(pr.Offset)
		slot.requests++
		slot.errors++
	}
}

// merge folds another accumulator into this one. The other accumulator
// must have been built from the same config (same slot length and
// version map).
func (a *accumulator) merge(b *accumulator) {
	a.n += b.n
	a.errs += b.errs
	a.session += b.session
	_ = a.overall.Merge(b.overall)
	mergeCells := func(dst, src map[int]*histCell) {
		for k, c := range src {
			d := dst[k]
			if d == nil {
				dst[k] = c
				continue
			}
			d.requests += c.requests
			d.errors += c.errors
			_ = d.hist.Merge(c.hist)
		}
	}
	mergeCells(a.groups, b.groups)
	if a.trackSlots {
		mergeCells(a.slots, b.slots)
		if b.maxSlot > a.maxSlot {
			a.maxSlot = b.maxSlot
		}
	}
	mergeLabeled := func(dst, src map[string]*histCell) {
		for k, c := range src {
			d := dst[k]
			if d == nil {
				dst[k] = c
				continue
			}
			d.requests += c.requests
			d.errors += c.errors
			_ = d.hist.Merge(c.hist)
		}
	}
	if a.versions != nil && b.versions != nil {
		mergeLabeled(a.versions, b.versions)
	}
	mergeLabeled(a.regions, b.regions)
	if a.spans != nil && b.spans != nil {
		a.spans.collected += b.spans.collected
		_ = a.spans.queue.Merge(b.spans.queue)
		_ = a.spans.linger.Merge(b.spans.linger)
		_ = a.spans.cold.Merge(b.spans.cold)
		_ = a.spans.network.Merge(b.spans.network)
		_ = a.spans.exec.Merge(b.spans.exec)
	}
}
