package loadgen

import (
	"context"
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"time"

	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
	"accelcloud/internal/workload"
)

// Scenario mode replays population-scale schedules without ever
// materializing them: the workload layer's block-sharded stream
// (workload/scenario.go) feeds the open-loop dispatcher one request at
// a time, states are generated lazily per request from substreams that
// are pure functions of (seed, user, arrival offset), and the schedule
// digest folds incrementally as requests are emitted. Resident memory
// is O(blocks + workers) at any population size.

// scenarioSource adapts a workload.Stream into the open-loop
// dispatcher's planSource: each emitted request is materialized on the
// spot (group, battery, application state) and folded into the running
// schedule digest. A materialization failure parks the error and ends
// the stream; runScenario surfaces it after the dispatcher drains.
type scenarioSource struct {
	stream workload.Stream
	root   *sim.RNG
	cfg    Config
	h      hash.Hash64
	buf    [8]byte
	n      int
	err    error
	// spanH folds the sampled span IDs in emission order — the same
	// canonical-order fnv1a digest Plan.SpanPlan computes for
	// materialized schedules, built incrementally so the stream is
	// never retained.
	spanH       hash.Hash64
	spanSampled int
}

// newRootRNG derives the run's root substream — the same root
// BuildPlan uses, so scenario and materialized modes key their draws
// identically.
func newRootRNG(seed int64) *sim.RNG { return sim.NewRNG(seed).Sub("loadgen") }

func newScenarioSource(cfg Config) (*scenarioSource, error) {
	root := newRootRNG(cfg.Seed)
	stream, err := workload.NewScenarioStream(root, cfg.workloadConfig())
	if err != nil {
		return nil, err
	}
	s := &scenarioSource{stream: stream, root: root, cfg: cfg, h: fnv.New64a(), spanH: fnv.New64a()}
	// Same digest header as Plan.Digest: seed, then mode.
	s.writeInt(cfg.Seed)
	_, _ = s.h.Write([]byte(cfg.Mode))
	return s, nil
}

func (s *scenarioSource) writeInt(v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		s.buf[i] = byte(u >> (8 * i))
	}
	_, _ = s.h.Write(s.buf[:])
}

// next implements planSource.
func (s *scenarioSource) next(pr *planned) bool {
	if s.err != nil {
		return false
	}
	var req workload.Request
	if !s.stream.Next(&req) {
		return false
	}
	offset := req.At.Sub(workload.ScenarioStart())
	task, err := s.cfg.Pool.ByName(req.TaskName)
	if err != nil {
		s.err = err
		return false
	}
	// State and battery substreams are light (one machine word each)
	// and keyed so a request's materialization is a pure function of
	// (seed, user, arrival offset) — no per-user state survives between
	// requests, which is what keeps replay O(blocks) resident.
	stateRNG := s.root.SubN("state", req.UserID).LightN("at", int(offset))
	st, err := task.Generate(stateRNG, req.Size)
	if err != nil {
		s.err = fmt.Errorf("loadgen: generate %s(%d): %w", req.TaskName, req.Size, err)
		return false
	}
	if _, ok := task.(tasks.Inference); ok {
		// Inference sessions amortize the model load: only the
		// session's first request pays it.
		if req.SessionStart {
			err = tasks.MarkSessionStart(&st)
		} else {
			err = tasks.ClearSessionStart(&st)
		}
		if err != nil {
			s.err = err
			return false
		}
	}
	bat := 0.2 + 0.8*s.root.SubN("battery", req.UserID).Light("draw").Float64()
	*pr = planned{
		Offset:   offset,
		User:     req.UserID,
		Group:    group(s.cfg.Groups, req.UserID),
		Battery:  bat,
		TaskName: req.TaskName,
		Size:     req.Size,
		Session:  req.SessionStart,
		State:    st,
	}
	// Fold the same fields Plan.Digest hashes for materialized modes,
	// plus the session flag, in the same canonical (arrival) order.
	s.writeInt(int64(pr.Offset))
	s.writeInt(int64(pr.User))
	s.writeInt(int64(pr.Group))
	s.writeInt(int64(pr.Battery * 1e6))
	_, _ = s.h.Write([]byte(pr.TaskName))
	s.writeInt(int64(pr.Size))
	if pr.Session {
		_, _ = s.h.Write([]byte{1})
	} else {
		_, _ = s.h.Write([]byte{0})
	}
	// Span sampling keys off the global emission index — the scenario
	// analogue of the timeline index materialized modes use — so the
	// sampled set is a pure function of (seed, schedule).
	pr.Span = mintSpan(s.root, s.cfg.SpanSample, req.UserID, s.n)
	if pr.Span != 0 {
		s.spanSampled++
		u := pr.Span
		for i := 0; i < 8; i++ {
			s.buf[i] = byte(u >> (8 * i))
		}
		_, _ = s.spanH.Write(s.buf[:])
	}
	s.n++
	return true
}

// digest renders the running schedule digest in the repository's
// fnv1a:%016x convention.
func (s *scenarioSource) digest() string {
	return fmt.Sprintf("fnv1a:%016x", s.h.Sum64())
}

// spanPlan mirrors Plan.SpanPlan for the streamed schedule.
func (s *scenarioSource) spanPlan() (sampled int, digest string) {
	return s.spanSampled, fmt.Sprintf("fnv1a:%016x", s.spanH.Sum64())
}

// runScenario replays a scenario config end to end.
func runScenario(ctx context.Context, client Offloader, cfg Config) (*Report, error) {
	src, err := newScenarioSource(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	acc := runOpenLoop(ctx, client, src, cfg)
	wall := time.Since(start)
	if src.err != nil {
		return nil, src.err
	}
	if acc.n == 0 {
		return nil, errors.New("loadgen: empty scenario schedule (duration too short for the rate)")
	}
	return buildReport(cfg, src.digest(), spanSection(cfg, src.spanPlan), acc, wall), nil
}
