package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"time"

	"accelcloud/internal/dalvik"
	"accelcloud/internal/obs"
	"accelcloud/internal/router"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sdn"
	"accelcloud/internal/tasks"
	"accelcloud/internal/trace"
	"accelcloud/internal/wire"
)

// Cluster is a hermetic in-process service stack: a real sdn.FrontEnd
// routing over loopback httptest sockets to real dalvik.Surrogate
// back-ends, with the full rpc protocol in between. Nothing binds a
// fixed port, so the full stack can be load-tested inside `go test` and
// CI without coordination.
type Cluster struct {
	front      *httptest.Server
	frontEnd   *sdn.FrontEnd
	backends   []*httptest.Server
	surrogates []*dalvik.Surrogate
	log        *trace.Store
	versions   map[string]string

	binLis  net.Listener
	binSrv  *wire.Server
	binSrvs []*wire.Server
	binLiss []net.Listener
}

// ClusterConfig sizes the hermetic stack.
type ClusterConfig struct {
	// Groups is the number of acceleration groups, numbered 1..Groups.
	// 0 selects 1.
	Groups int
	// SurrogatesPerGroup is the back-end count per group. 0 selects 1.
	SurrogatesPerGroup int
	// MaxProcs bounds each surrogate's worker slots. 0 selects
	// dalvik.DefaultMaxProcs.
	MaxProcs int
	// Policy names the front-end pick policy (router.ParsePolicy
	// names; empty selects round-robin) — the knob behind loadgen
	// policy A/B runs.
	Policy string
	// WrapBackend, when non-nil, wraps each surrogate's handler before
	// it is served — the hermetic injection point the chaos engine
	// (internal/faults) uses to corrupt, delay, or kill backends inside
	// an otherwise ordinary loadgen cluster. The id is the surrogate's
	// name ("surrogate-g<group>-<index>").
	WrapBackend func(id string, h http.Handler) http.Handler
	// Binary additionally serves the framed wire protocol on a loopback
	// listener; BinaryURL then returns the bin:// front-end address so
	// the same cluster can be driven over either transport.
	Binary bool
	// BinaryBackends registers each surrogate with the front-end as a
	// bin:// address instead of HTTP, exercising the framed protocol on
	// the front-end→surrogate hop too. Incompatible with WrapBackend,
	// which wraps http.Handler.
	BinaryBackends bool
	// RouteDelay is the front-end's artificial per-request routing
	// delay (sdnd's -overhead flag), reproducing the paper's fixed SDN
	// processing cost inside a hermetic cluster. Batched calls traverse
	// it concurrently, so it is the knob behind chain-amortization
	// measurements.
	RouteDelay time.Duration
	// QueueLimit/QueueDepth put a bounded admission queue in front of
	// every backend (sdn.WithQueue): QueueLimit concurrent dispatches,
	// QueueDepth waiting. 0 disables the queue layer.
	QueueLimit int
	QueueDepth int
	// MaxBatch/Linger enable dynamic batching of queued same-task
	// calls (sdn.WithBatching); requires QueueLimit > 0.
	MaxBatch int
	Linger   time.Duration
	// ColdAfter/ColdStart enable scale-to-zero (sdn.WithColdPool):
	// FrontEnd().SweepCold parks backends idle for ColdAfter, and a
	// reactivating request pays ColdStart.
	ColdAfter time.Duration
	ColdStart time.Duration
	// CanaryPerGroup registers the last N surrogates of each group
	// under the CanaryVersion label, so a "canary:<ver>=<w>" Policy
	// can split traffic and reports can slice latency per version.
	CanaryPerGroup int
	CanaryVersion  string
	// Region names the front-end's region (sdn.WithRegion), so a
	// hermetic multi-region deployment (internal/geo) counts spillover
	// like a real one. Empty leaves the front-end unregioned.
	Region string
	// Pool is the task pool every surrogate serves; nil selects
	// tasks.DefaultPool(). Scenario runs that mix in the inference
	// family pass tasks.InferencePool() here.
	Pool *tasks.Pool
	// Metrics registers the front-end's hot-path instrumentation
	// (sdn.WithMetrics) in the given registry — the hermetic analogue
	// of sdnd's /metrics endpoint, and the "on" arm of obsbench's
	// overhead A/B. Nil leaves the front-end uninstrumented.
	Metrics *obs.Registry
}

// StartCluster boots the stack. Callers must Close it.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	return StartClusterContext(context.Background(), cfg)
}

// StartClusterContext boots the stack, honoring cancellation between
// surrogate boots so an interrupt during warmup returns promptly
// instead of finishing the whole bring-up. Callers must Close the
// cluster on success.
func StartClusterContext(ctx context.Context, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Groups <= 0 {
		cfg.Groups = 1
	}
	if cfg.SurrogatesPerGroup <= 0 {
		cfg.SurrogatesPerGroup = 1
	}
	if cfg.BinaryBackends && cfg.WrapBackend != nil {
		return nil, errors.New("loadgen: BinaryBackends and WrapBackend are mutually exclusive")
	}
	policy, err := router.ParsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	log := trace.NewStore()
	opts := []sdn.Option{
		sdn.WithTrace(log),
		sdn.WithRouteDelay(cfg.RouteDelay),
		sdn.WithPolicy(policy),
	}
	if cfg.QueueLimit > 0 {
		opts = append(opts, sdn.WithQueue(cfg.QueueLimit, cfg.QueueDepth))
	}
	if cfg.MaxBatch > 1 {
		opts = append(opts, sdn.WithBatching(cfg.MaxBatch, cfg.Linger))
	}
	if cfg.ColdAfter > 0 {
		opts = append(opts, sdn.WithColdPool(cfg.ColdAfter, cfg.ColdStart))
	}
	if cfg.Region != "" {
		opts = append(opts, sdn.WithRegion(cfg.Region))
	}
	if cfg.Metrics != nil {
		opts = append(opts, sdn.WithMetrics(cfg.Metrics))
	}
	fe, err := sdn.New(opts...)
	if err != nil {
		return nil, err
	}
	pool := cfg.Pool
	if pool == nil {
		pool = tasks.DefaultPool()
	}
	c := &Cluster{frontEnd: fe, log: log, versions: map[string]string{}}
	for g := 1; g <= cfg.Groups; g++ {
		for i := 0; i < cfg.SurrogatesPerGroup; i++ {
			if err := ctx.Err(); err != nil {
				c.Close()
				return nil, fmt.Errorf("loadgen: cluster boot interrupted: %w", err)
			}
			name := fmt.Sprintf("surrogate-g%d-%d", g, i)
			sur, err := dalvik.NewSurrogate(name, cfg.MaxProcs)
			if err != nil {
				c.Close()
				return nil, err
			}
			if err := sur.PushPool(pool); err != nil {
				c.Close()
				return nil, err
			}
			c.surrogates = append(c.surrogates, sur)
			var backendURL string
			if cfg.BinaryBackends {
				lis, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					c.Close()
					return nil, err
				}
				srv, err := sur.ServeBinary(lis)
				if err != nil {
					c.Close()
					return nil, err
				}
				c.binLiss = append(c.binLiss, lis)
				c.binSrvs = append(c.binSrvs, srv)
				backendURL = rpc.BinaryScheme + lis.Addr().String()
			} else {
				handler := http.Handler(sur.Handler())
				if cfg.WrapBackend != nil {
					handler = cfg.WrapBackend(name, handler)
				}
				backend := httptest.NewServer(handler)
				c.backends = append(c.backends, backend)
				backendURL = backend.URL
			}
			version := ""
			if cfg.CanaryPerGroup > 0 && i >= cfg.SurrogatesPerGroup-cfg.CanaryPerGroup {
				version = cfg.CanaryVersion
			}
			c.versions[name] = version
			if err := fe.RegisterVersion(g, backendURL, version); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	c.front = httptest.NewServer(fe.Handler())
	if cfg.Binary {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.binLis = lis
		srv, err := fe.ServeBinary(lis)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.binSrv = srv
	}
	return c, nil
}

// URL is the front-end base URL to aim the load generator at.
func (c *Cluster) URL() string { return c.front.URL }

// BinaryURL is the framed-protocol front-end address (bin://host:port).
// Empty unless the cluster was started with ClusterConfig.Binary.
func (c *Cluster) BinaryURL() string {
	if c.binLis == nil {
		return ""
	}
	return rpc.BinaryScheme + c.binLis.Addr().String()
}

// FrontEnd exposes the front-end for counter assertions.
func (c *Cluster) FrontEnd() *sdn.FrontEnd { return c.frontEnd }

// Surrogates exposes the back-ends for counter assertions.
func (c *Cluster) Surrogates() []*dalvik.Surrogate { return c.surrogates }

// Versions maps each surrogate name to its registered version label
// ("" = stable) — the table Config.Versions consumes so reports can
// slice latency per version.
func (c *Cluster) Versions() map[string]string { return c.versions }

// TraceLen reports how many requests the front-end logged.
func (c *Cluster) TraceLen() int { return c.log.Len() }

// Close shuts the stack down, front-end first.
func (c *Cluster) Close() {
	if c.binSrv != nil {
		c.binSrv.Close()
	}
	if c.front != nil {
		c.front.Close()
	}
	for _, s := range c.binSrvs {
		s.Close()
	}
	for _, b := range c.backends {
		b.Close()
	}
}
