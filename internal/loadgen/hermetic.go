package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"

	"accelcloud/internal/dalvik"
	"accelcloud/internal/router"
	"accelcloud/internal/sdn"
	"accelcloud/internal/tasks"
	"accelcloud/internal/trace"
)

// Cluster is a hermetic in-process service stack: a real sdn.FrontEnd
// routing over loopback httptest sockets to real dalvik.Surrogate
// back-ends, with the full rpc protocol in between. Nothing binds a
// fixed port, so the full stack can be load-tested inside `go test` and
// CI without coordination.
type Cluster struct {
	front      *httptest.Server
	frontEnd   *sdn.FrontEnd
	backends   []*httptest.Server
	surrogates []*dalvik.Surrogate
	log        *trace.Store
}

// ClusterConfig sizes the hermetic stack.
type ClusterConfig struct {
	// Groups is the number of acceleration groups, numbered 1..Groups.
	// 0 selects 1.
	Groups int
	// SurrogatesPerGroup is the back-end count per group. 0 selects 1.
	SurrogatesPerGroup int
	// MaxProcs bounds each surrogate's worker slots. 0 selects
	// dalvik.DefaultMaxProcs.
	MaxProcs int
	// Policy names the front-end pick policy (router.ParsePolicy
	// names; empty selects round-robin) — the knob behind loadgen
	// policy A/B runs.
	Policy string
	// WrapBackend, when non-nil, wraps each surrogate's handler before
	// it is served — the hermetic injection point the chaos engine
	// (internal/faults) uses to corrupt, delay, or kill backends inside
	// an otherwise ordinary loadgen cluster. The id is the surrogate's
	// name ("surrogate-g<group>-<index>").
	WrapBackend func(id string, h http.Handler) http.Handler
}

// StartCluster boots the stack. Callers must Close it.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	return StartClusterContext(context.Background(), cfg)
}

// StartClusterContext boots the stack, honoring cancellation between
// surrogate boots so an interrupt during warmup returns promptly
// instead of finishing the whole bring-up. Callers must Close the
// cluster on success.
func StartClusterContext(ctx context.Context, cfg ClusterConfig) (*Cluster, error) {
	if cfg.Groups <= 0 {
		cfg.Groups = 1
	}
	if cfg.SurrogatesPerGroup <= 0 {
		cfg.SurrogatesPerGroup = 1
	}
	policy, err := router.ParsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	log := trace.NewStore()
	fe, err := sdn.NewFrontEndWithPolicy(log, 0, policy)
	if err != nil {
		return nil, err
	}
	c := &Cluster{frontEnd: fe, log: log}
	for g := 1; g <= cfg.Groups; g++ {
		for i := 0; i < cfg.SurrogatesPerGroup; i++ {
			if err := ctx.Err(); err != nil {
				c.Close()
				return nil, fmt.Errorf("loadgen: cluster boot interrupted: %w", err)
			}
			name := fmt.Sprintf("surrogate-g%d-%d", g, i)
			sur, err := dalvik.NewSurrogate(name, cfg.MaxProcs)
			if err != nil {
				c.Close()
				return nil, err
			}
			if err := sur.PushPool(tasks.DefaultPool()); err != nil {
				c.Close()
				return nil, err
			}
			handler := http.Handler(sur.Handler())
			if cfg.WrapBackend != nil {
				handler = cfg.WrapBackend(name, handler)
			}
			backend := httptest.NewServer(handler)
			c.backends = append(c.backends, backend)
			c.surrogates = append(c.surrogates, sur)
			if err := fe.Register(g, backend.URL); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	c.front = httptest.NewServer(fe.Handler())
	return c, nil
}

// URL is the front-end base URL to aim the load generator at.
func (c *Cluster) URL() string { return c.front.URL }

// FrontEnd exposes the front-end for counter assertions.
func (c *Cluster) FrontEnd() *sdn.FrontEnd { return c.frontEnd }

// Surrogates exposes the back-ends for counter assertions.
func (c *Cluster) Surrogates() []*dalvik.Surrogate { return c.surrogates }

// TraceLen reports how many requests the front-end logged.
func (c *Cluster) TraceLen() int { return c.log.Len() }

// Close shuts the stack down, front-end first.
func (c *Cluster) Close() {
	if c.front != nil {
		c.front.Close()
	}
	for _, b := range c.backends {
		b.Close()
	}
}
