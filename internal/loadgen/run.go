package loadgen

import (
	"context"
	"errors"
	"sync"
	"time"

	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
)

// record is one executed request's outcome. Records live in
// per-request slots so the replay goroutines never share state.
type record struct {
	group int
	// offset is the planned arrival offset (open loop), used to bucket
	// records into per-slot report sections.
	offset    time.Duration
	latencyMs float64
	// server is the backend that answered (empty on error) — the key
	// the per-version report slices map through Config.Versions.
	server string
	err    error
}

// doOne issues one planned request and measures the client-perceived
// latency, errors included (an error's latency still counts toward the
// histogram: a timed-out request was a slow request).
func doOne(ctx context.Context, client *rpc.Client, pr planned, timeout time.Duration) record {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	start := time.Now()
	resp, err := client.Offload(rctx, rpc.OffloadRequest{
		UserID:       pr.User,
		Group:        pr.Group,
		BatteryLevel: pr.Battery,
		State:        pr.State,
	})
	return record{
		group:     pr.Group,
		offset:    pr.Offset,
		latencyMs: float64(time.Since(start)) / float64(time.Millisecond),
		server:    resp.Server,
		err:       err,
	}
}

// Run builds the deterministic plan for cfg and replays it against the
// front-end at baseURL, returning the SLO report. The context cancels
// the run early; already-issued requests finish, unissued ones are
// recorded as errors.
func Run(ctx context.Context, baseURL string, cfg Config) (*Report, error) {
	ncfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	// Build from the normalized copy so the plan and the replay share one
	// set of effective defaults.
	plan, err := BuildPlan(ncfg)
	if err != nil {
		return nil, err
	}
	client := rpc.NewClient(baseURL)
	start := time.Now()
	var recs []record
	switch ncfg.Mode {
	case ModeConcurrent:
		recs = runClosedLoop(ctx, client, plan, ncfg)
	default:
		recs = runOpenLoop(ctx, client, plan, ncfg)
	}
	wall := time.Since(start)
	report := buildReport(ncfg, plan, recs, wall)
	return report, nil
}

// errSkipped marks requests the run never issued (cancellation).
var errSkipped = errors.New("loadgen: request skipped (run cancelled)")

// runClosedLoop replays each user's sequence serially, all users
// concurrent up to MaxInFlight, via the shared FanOut pool. Each user
// writes only its own record slots, so the replay is race-free by
// construction.
func runClosedLoop(ctx context.Context, client *rpc.Client, plan *Plan, cfg Config) []record {
	perUser := make([][]record, len(plan.PerUser))
	sim.FanOut(len(plan.PerUser), cfg.MaxInFlight, func(u int) {
		seq := plan.PerUser[u]
		out := make([]record, len(seq))
		for j, pr := range seq {
			if ctx.Err() != nil {
				out[j] = record{group: pr.Group, err: errSkipped}
				continue
			}
			out[j] = doOne(ctx, client, pr, cfg.Timeout)
		}
		perUser[u] = out
	})
	var recs []record
	for _, rs := range perUser {
		recs = append(recs, rs...)
	}
	return recs
}

// runOpenLoop fires timeline requests at their planned offsets,
// regardless of completions, bounded by a MaxInFlight semaphore so a
// saturated back-end degrades into queueing instead of unbounded
// goroutine growth.
func runOpenLoop(ctx context.Context, client *rpc.Client, plan *Plan, cfg Config) []record {
	recs := make([]record, len(plan.Timeline))
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
loop:
	for i, pr := range plan.Timeline {
		if wait := pr.Offset - time.Since(start); wait > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(wait):
			}
		}
		if ctx.Err() != nil {
			for j := i; j < len(plan.Timeline); j++ {
				recs[j] = record{group: plan.Timeline[j].Group, offset: plan.Timeline[j].Offset, err: errSkipped}
			}
			break loop
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			for j := i; j < len(plan.Timeline); j++ {
				recs[j] = record{group: plan.Timeline[j].Group, offset: plan.Timeline[j].Offset, err: errSkipped}
			}
			break loop
		}
		wg.Add(1)
		go func(i int, pr planned) {
			defer wg.Done()
			defer func() { <-sem }()
			recs[i] = doOne(ctx, client, pr, cfg.Timeout)
		}(i, pr)
	}
	wg.Wait()
	return recs
}
