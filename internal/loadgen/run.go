package loadgen

import (
	"context"
	"sync"
	"time"

	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
	"accelcloud/internal/wire"
)

// Offloader issues one offload call. *rpc.Client satisfies it; so does
// the geo client, which picks a region before the transport hop — the
// runner neither knows nor cares which tier it is driving.
type Offloader interface {
	Offload(ctx context.Context, req rpc.OffloadRequest) (rpc.OffloadResponse, error)
}

// RegionOffloader is an Offloader that also reports which region served
// each call (the geo client). When the runner's client implements it,
// the report grows per-region latency slices.
type RegionOffloader interface {
	Offloader
	OffloadRegion(ctx context.Context, req rpc.OffloadRequest) (rpc.OffloadResponse, string, error)
}

// record is one executed request's outcome, folded into a worker's
// accumulator the moment it completes — records are never buffered.
type record struct {
	group int
	// offset is the planned arrival offset (open loop), used to bucket
	// records into per-slot report sections.
	offset    time.Duration
	latencyMs float64
	// server is the backend that answered (empty on error) — the key
	// the per-version report slices map through Config.Versions.
	server string
	// region is the region that served (empty for single-region runs) —
	// the key of the per-region report slices.
	region string
	// session marks a session-start request (scenario mode).
	session bool
	// span is the per-hop breakdown the front-end returned for a
	// trace-sampled request (nil when unsampled or errored).
	span *wire.Span
	err  error
}

// doOne issues one planned request and measures the client-perceived
// latency, errors included (an error's latency still counts toward the
// histogram: a timed-out request was a slow request).
func doOne(ctx context.Context, client Offloader, pr planned, timeout time.Duration) record {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req := rpc.OffloadRequest{
		UserID:       pr.User,
		Group:        pr.Group,
		BatteryLevel: pr.Battery,
		State:        pr.State,
		SpanID:       pr.Span,
	}
	start := time.Now()
	var (
		resp   rpc.OffloadResponse
		region string
		err    error
	)
	if ro, ok := client.(RegionOffloader); ok {
		resp, region, err = ro.OffloadRegion(rctx, req)
	} else {
		resp, err = client.Offload(rctx, req)
	}
	return record{
		group:     pr.Group,
		offset:    pr.Offset,
		latencyMs: float64(time.Since(start)) / float64(time.Millisecond),
		server:    resp.Server,
		region:    region,
		session:   pr.Session,
		span:      resp.Span,
		err:       err,
	}
}

// Run builds the deterministic plan for cfg and replays it against the
// front-end at baseURL, returning the SLO report. The context cancels
// the run early; already-issued requests finish, unissued ones are
// recorded as errors.
func Run(ctx context.Context, baseURL string, cfg Config) (*Report, error) {
	return RunWith(ctx, rpc.NewClient(baseURL), cfg)
}

// RunWith is Run with a caller-supplied client — the entry point for
// drivers that route above the transport, like the multi-region geo
// client. A RegionOffloader additionally yields per-region report
// slices.
func RunWith(ctx context.Context, client Offloader, cfg Config) (*Report, error) {
	ncfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	if ncfg.Mode == ModeScenario {
		// Scenario schedules stream — they are never materialized into
		// a Plan (see scenario.go).
		return runScenario(ctx, client, ncfg)
	}
	// Build from the normalized copy so the plan and the replay share one
	// set of effective defaults.
	plan, err := BuildPlan(ncfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var acc *accumulator
	switch ncfg.Mode {
	case ModeConcurrent:
		acc = runClosedLoop(ctx, client, plan, ncfg)
	default:
		acc = runOpenLoop(ctx, client, &sliceSource{items: plan.Timeline}, ncfg)
	}
	wall := time.Since(start)
	return buildReport(ncfg, plan.Digest(), spanSection(ncfg, plan.SpanPlan), acc, wall), nil
}

// spanSection seeds the report's span section from the schedule side —
// planned count and ID digest — when sampling is on; the accumulator
// side (collected count, hop percentiles) is filled by buildReport.
func spanSection(cfg Config, plan func() (int, string)) *SpanSection {
	if cfg.SpanSample <= 0 {
		return nil
	}
	planned, digest := plan()
	return &SpanSection{SampleEvery: cfg.SpanSample, Planned: planned, Digest: digest}
}

// runClosedLoop replays each user's sequence serially, all users
// concurrent up to MaxInFlight, via the shared FanOut pool. Each user
// folds into its own accumulator, so the replay is race-free by
// construction.
func runClosedLoop(ctx context.Context, client Offloader, plan *Plan, cfg Config) *accumulator {
	perUser := make([]*accumulator, len(plan.PerUser))
	sim.FanOut(len(plan.PerUser), cfg.MaxInFlight, func(u int) {
		acc := newAccumulator(cfg)
		for _, pr := range plan.PerUser[u] {
			if ctx.Err() != nil {
				acc.addSkipped(pr)
				continue
			}
			acc.addRecord(doOne(ctx, client, pr, cfg.Timeout))
		}
		perUser[u] = acc
	})
	merged := newAccumulator(cfg)
	for _, acc := range perUser {
		merged.merge(acc)
	}
	return merged
}

// planSource feeds the open-loop dispatcher one planned request at a
// time in arrival order. Materialized plans use sliceSource; scenario
// mode plugs in its lazy generator so the schedule never exists as a
// slice.
type planSource interface {
	next(pr *planned) bool
}

// sliceSource replays a materialized timeline.
type sliceSource struct {
	items []planned
	i     int
}

func (s *sliceSource) next(pr *planned) bool {
	if s.i >= len(s.items) {
		return false
	}
	*pr = s.items[s.i]
	s.i++
	return true
}

// runOpenLoop fires requests at their planned offsets, regardless of
// completions, through a pool of MaxInFlight workers — a saturated
// back-end degrades into queueing (the dispatcher blocks handing off)
// instead of unbounded goroutine growth. Pacing reuses one timer for
// the whole run, and each worker folds outcomes into its own
// accumulator, so steady-state dispatch allocates nothing per request.
func runOpenLoop(ctx context.Context, client Offloader, src planSource, cfg Config) *accumulator {
	work := make(chan planned)
	accs := make([]*accumulator, cfg.MaxInFlight)
	var wg sync.WaitGroup
	for w := 0; w < cfg.MaxInFlight; w++ {
		acc := newAccumulator(cfg)
		accs[w] = acc
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pr := range work {
				acc.addRecord(doOne(ctx, client, pr, cfg.Timeout))
			}
		}()
	}

	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	dispatched := newAccumulator(cfg) // holds only skipped requests
	start := time.Now()
	var pr planned
	for src.next(&pr) {
		if wait := pr.Offset - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				if !timer.Stop() {
					<-timer.C
				}
			case <-timer.C:
			}
		}
		if ctx.Err() != nil {
			dispatched.addSkipped(pr)
			for src.next(&pr) {
				dispatched.addSkipped(pr)
			}
			break
		}
		select {
		case work <- pr:
		case <-ctx.Done():
			dispatched.addSkipped(pr)
			for src.next(&pr) {
				dispatched.addSkipped(pr)
			}
		}
	}
	close(work)
	wg.Wait()
	for _, acc := range accs {
		dispatched.merge(acc)
	}
	return dispatched
}
