package loadgen

import (
	"context"
	"errors"
	"sync"
	"time"

	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
)

// Offloader issues one offload call. *rpc.Client satisfies it; so does
// the geo client, which picks a region before the transport hop — the
// runner neither knows nor cares which tier it is driving.
type Offloader interface {
	Offload(ctx context.Context, req rpc.OffloadRequest) (rpc.OffloadResponse, error)
}

// RegionOffloader is an Offloader that also reports which region served
// each call (the geo client). When the runner's client implements it,
// the report grows per-region latency slices.
type RegionOffloader interface {
	Offloader
	OffloadRegion(ctx context.Context, req rpc.OffloadRequest) (rpc.OffloadResponse, string, error)
}

// record is one executed request's outcome. Records live in
// per-request slots so the replay goroutines never share state.
type record struct {
	group int
	// offset is the planned arrival offset (open loop), used to bucket
	// records into per-slot report sections.
	offset    time.Duration
	latencyMs float64
	// server is the backend that answered (empty on error) — the key
	// the per-version report slices map through Config.Versions.
	server string
	// region is the region that served (empty for single-region runs) —
	// the key of the per-region report slices.
	region string
	err    error
}

// doOne issues one planned request and measures the client-perceived
// latency, errors included (an error's latency still counts toward the
// histogram: a timed-out request was a slow request).
func doOne(ctx context.Context, client Offloader, pr planned, timeout time.Duration) record {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req := rpc.OffloadRequest{
		UserID:       pr.User,
		Group:        pr.Group,
		BatteryLevel: pr.Battery,
		State:        pr.State,
	}
	start := time.Now()
	var (
		resp   rpc.OffloadResponse
		region string
		err    error
	)
	if ro, ok := client.(RegionOffloader); ok {
		resp, region, err = ro.OffloadRegion(rctx, req)
	} else {
		resp, err = client.Offload(rctx, req)
	}
	return record{
		group:     pr.Group,
		offset:    pr.Offset,
		latencyMs: float64(time.Since(start)) / float64(time.Millisecond),
		server:    resp.Server,
		region:    region,
		err:       err,
	}
}

// Run builds the deterministic plan for cfg and replays it against the
// front-end at baseURL, returning the SLO report. The context cancels
// the run early; already-issued requests finish, unissued ones are
// recorded as errors.
func Run(ctx context.Context, baseURL string, cfg Config) (*Report, error) {
	return RunWith(ctx, rpc.NewClient(baseURL), cfg)
}

// RunWith is Run with a caller-supplied client — the entry point for
// drivers that route above the transport, like the multi-region geo
// client. A RegionOffloader additionally yields per-region report
// slices.
func RunWith(ctx context.Context, client Offloader, cfg Config) (*Report, error) {
	ncfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	// Build from the normalized copy so the plan and the replay share one
	// set of effective defaults.
	plan, err := BuildPlan(ncfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var recs []record
	switch ncfg.Mode {
	case ModeConcurrent:
		recs = runClosedLoop(ctx, client, plan, ncfg)
	default:
		recs = runOpenLoop(ctx, client, plan, ncfg)
	}
	wall := time.Since(start)
	report := buildReport(ncfg, plan, recs, wall)
	return report, nil
}

// errSkipped marks requests the run never issued (cancellation).
var errSkipped = errors.New("loadgen: request skipped (run cancelled)")

// runClosedLoop replays each user's sequence serially, all users
// concurrent up to MaxInFlight, via the shared FanOut pool. Each user
// writes only its own record slots, so the replay is race-free by
// construction.
func runClosedLoop(ctx context.Context, client Offloader, plan *Plan, cfg Config) []record {
	perUser := make([][]record, len(plan.PerUser))
	sim.FanOut(len(plan.PerUser), cfg.MaxInFlight, func(u int) {
		seq := plan.PerUser[u]
		out := make([]record, len(seq))
		for j, pr := range seq {
			if ctx.Err() != nil {
				out[j] = record{group: pr.Group, err: errSkipped}
				continue
			}
			out[j] = doOne(ctx, client, pr, cfg.Timeout)
		}
		perUser[u] = out
	})
	var recs []record
	for _, rs := range perUser {
		recs = append(recs, rs...)
	}
	return recs
}

// runOpenLoop fires timeline requests at their planned offsets,
// regardless of completions, bounded by a MaxInFlight semaphore so a
// saturated back-end degrades into queueing instead of unbounded
// goroutine growth.
func runOpenLoop(ctx context.Context, client Offloader, plan *Plan, cfg Config) []record {
	recs := make([]record, len(plan.Timeline))
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
loop:
	for i, pr := range plan.Timeline {
		if wait := pr.Offset - time.Since(start); wait > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(wait):
			}
		}
		if ctx.Err() != nil {
			for j := i; j < len(plan.Timeline); j++ {
				recs[j] = record{group: plan.Timeline[j].Group, offset: plan.Timeline[j].Offset, err: errSkipped}
			}
			break loop
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			for j := i; j < len(plan.Timeline); j++ {
				recs[j] = record{group: plan.Timeline[j].Group, offset: plan.Timeline[j].Offset, err: errSkipped}
			}
			break loop
		}
		wg.Add(1)
		go func(i int, pr planned) {
			defer wg.Done()
			defer func() { <-sem }()
			recs[i] = doOne(ctx, client, pr, cfg.Timeout)
		}(i, pr)
	}
	wg.Wait()
	return recs
}
