package loadgen

import (
	"context"
	"sync"
	"testing"
	"time"

	"accelcloud/internal/rpc"
	"accelcloud/internal/tasks"
	"accelcloud/internal/wire"
)

// spanHopSum adds up the disjoint per-hop components of a span.
func spanHopSum(sp *wire.Span) float64 {
	return sp.QueueMs + sp.LingerMs + sp.ColdMs + sp.NetworkMs + sp.ExecMs
}

// TestSpanHopSumWithinRTT is the per-hop span-math check: against a
// hermetic cluster with admission queueing and batching enabled, a
// trace-sampled request's hop components (queue + linger + cold +
// network + exec) must sum to within tolerance of the client-measured
// round trip — no hop double-counted, none missing — on the JSON and
// the binary transport alike.
func TestSpanHopSumWithinRTT(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{
		Groups: 1, SurrogatesPerGroup: 1, Binary: true,
		QueueLimit: 2, QueueDepth: 8, MaxBatch: 2, Linger: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	st, err := tasks.Fibonacci{}.Generate(nil, 12)
	if err != nil {
		t.Fatal(err)
	}
	transports := map[string]*rpc.Client{
		"json":   rpc.NewClient(cluster.URL()),
		"binary": rpc.NewClient(cluster.BinaryURL()),
	}
	for name, client := range transports {
		t.Run(name, func(t *testing.T) {
			req := rpc.OffloadRequest{
				UserID: 1, Group: 1, BatteryLevel: 0.8, State: st, SpanID: 0x2a,
			}
			start := time.Now()
			resp, err := client.Offload(context.Background(), req)
			rttMs := float64(time.Since(start)) / float64(time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			sp := resp.Span
			if sp == nil {
				t.Fatal("sampled request returned no span")
			}
			if sp.ID != req.SpanID {
				t.Fatalf("span ID %#x, want %#x", sp.ID, req.SpanID)
			}
			if sp.Hops != 1 {
				t.Fatalf("single-region span hops = %d, want 1", sp.Hops)
			}
			// With MaxBatch > 1 a solo request lingers for companions, so
			// the linger hop must register.
			if sp.LingerMs <= 0 {
				t.Fatalf("linger hop empty with batching on: %+v", sp)
			}
			sum := spanHopSum(sp)
			// The hops exclude only client-side transport overhead and the
			// (zero here) routing delay, so the sum may not exceed the
			// measured RTT and must come close to it.
			if sum > rttMs+1 {
				t.Fatalf("hop sum %.3f ms exceeds measured RTT %.3f ms (%+v)", sum, rttMs, sp)
			}
			if slack := rttMs - sum; slack > 50 {
				t.Fatalf("hop sum %.3f ms leaves %.3f ms of RTT %.3f ms unaccounted (%+v)",
					sum, slack, rttMs, sp)
			}

			// An unsampled request must come back bare on the same
			// transport — span assembly is strictly opt-in per request.
			plain := req
			plain.SpanID = 0
			resp, err = client.Offload(context.Background(), plain)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Span != nil {
				t.Fatalf("unsampled request returned span %+v", resp.Span)
			}
		})
	}
}

// TestSpanReportParityAndDeterminism replays the same sampled schedule
// over both transports: the report's span section must carry the same
// planned count and the same ID digest (it is a pure function of the
// seed), collect every planned span on an error-free run, and surface
// all five hop percentile sections.
func TestSpanReportParityAndDeterminism(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{
		Groups: 1, SurrogatesPerGroup: 2, Binary: true,
		QueueLimit: 4, QueueDepth: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	cfg := Config{Users: 4, Duration: time.Second, RateHz: 4, Seed: 42, SpanSample: 2}
	jsonRep, err := Run(context.Background(), cluster.URL(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	binRep, err := Run(context.Background(), cluster.BinaryURL(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, rep := range map[string]*Report{"json": jsonRep, "binary": binRep} {
		sec := rep.Spans
		if sec == nil {
			t.Fatalf("%s: no span section with SpanSample=2", name)
		}
		if sec.SampleEvery != 2 {
			t.Fatalf("%s: sampleEvery = %d", name, sec.SampleEvery)
		}
		if sec.Planned == 0 {
			t.Fatalf("%s: schedule sampled no spans", name)
		}
		if sec.Planned == rep.Requests {
			t.Fatalf("%s: 1/2 sampling sampled all %d requests", name, rep.Requests)
		}
		if rep.Errors == 0 && sec.Collected != sec.Planned {
			t.Fatalf("%s: collected %d of %d planned spans on an error-free run",
				name, sec.Collected, sec.Planned)
		}
		for _, hop := range []string{"queue", "linger", "cold", "network", "exec"} {
			h, ok := sec.Hops[hop]
			if !ok {
				t.Fatalf("%s: hop %q missing from %v", name, hop, sec.Hops)
			}
			if h.N != sec.Collected {
				t.Fatalf("%s: hop %q has %d observations, want %d", name, hop, h.N, sec.Collected)
			}
		}
	}
	if jsonRep.Spans.Digest != binRep.Spans.Digest || jsonRep.Spans.Planned != binRep.Spans.Planned {
		t.Fatalf("span plan diverged across transports:\n json: %d %s\n  bin: %d %s",
			jsonRep.Spans.Planned, jsonRep.Spans.Digest, binRep.Spans.Planned, binRep.Spans.Digest)
	}
	// The digest is the reproducibility anchor BENCH_obs pins: a repeat
	// run with the same seed must reproduce it bit-for-bit.
	again, err := Run(context.Background(), cluster.URL(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Spans.Digest != jsonRep.Spans.Digest {
		t.Fatalf("span digest drifted across runs: %s then %s", jsonRep.Spans.Digest, again.Spans.Digest)
	}
}

// countingOffloader records whether any request carried a SpanID.
type countingOffloader struct {
	mu      sync.Mutex
	spanIDs int
}

func (c *countingOffloader) Offload(_ context.Context, req rpc.OffloadRequest) (rpc.OffloadResponse, error) {
	c.mu.Lock()
	if req.SpanID != 0 {
		c.spanIDs++
	}
	c.mu.Unlock()
	return rpc.OffloadResponse{Server: "fake", Group: req.Group}, nil
}

// TestSpanSamplingOffByDefault pins the default: without SpanSample the
// wire never carries a SpanID and the report has no span section — the
// zero-overhead arm every committed baseline was measured under.
func TestSpanSamplingOffByDefault(t *testing.T) {
	client := &countingOffloader{}
	rep, err := RunWith(context.Background(), client, Config{
		Users: 2, Duration: time.Second, RateHz: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if client.spanIDs != 0 {
		t.Fatalf("%d requests carried a SpanID with sampling off", client.spanIDs)
	}
	if rep.Spans != nil {
		t.Fatalf("unexpected span section: %+v", rep.Spans)
	}
}
