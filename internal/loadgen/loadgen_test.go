package loadgen

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func TestBuildPlanDeterministic(t *testing.T) {
	for _, mode := range []Mode{ModeConcurrent, ModeInterArrival, ModeSweep} {
		cfg := Config{
			Mode:     mode,
			Users:    6,
			Duration: 2 * time.Second,
			RateHz:   5,
			Seed:     99,
			Groups:   []int{1, 2},
		}
		a, err := BuildPlan(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		b, err := BuildPlan(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if a.Requests() == 0 {
			t.Fatalf("%s: empty plan", mode)
		}
		if a.Digest() != b.Digest() {
			t.Fatalf("%s: same config, different digests %s vs %s", mode, a.Digest(), b.Digest())
		}
		// Beyond the digest: the full (user, group, task, size) sequence
		// must match element-wise, states included.
		var sa, sb []planned
		a.each(func(pr planned) { sa = append(sa, pr) })
		b.each(func(pr planned) { sb = append(sb, pr) })
		if len(sa) != len(sb) {
			t.Fatalf("%s: lengths differ", mode)
		}
		for i := range sa {
			if sa[i].User != sb[i].User || sa[i].Group != sb[i].Group ||
				sa[i].TaskName != sb[i].TaskName || sa[i].Size != sb[i].Size ||
				sa[i].Offset != sb[i].Offset || sa[i].Battery != sb[i].Battery ||
				!bytes.Equal(sa[i].State.Data, sb[i].State.Data) {
				t.Fatalf("%s: request %d differs: %+v vs %+v", mode, i, sa[i], sb[i])
			}
		}
		cfg.Seed = 100
		c, err := BuildPlan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if c.Digest() == a.Digest() {
			t.Fatalf("%s: different seeds share a digest", mode)
		}
	}
}

func TestBuildPlanGroupsSpread(t *testing.T) {
	plan, err := BuildPlan(Config{
		Users:    4,
		Duration: time.Second,
		RateHz:   3,
		Seed:     1,
		Groups:   []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	plan.each(func(pr planned) {
		seen[pr.Group] = true
		if pr.Group != 1+pr.User%2 {
			t.Fatalf("user %d routed to group %d", pr.User, pr.Group)
		}
		if pr.Battery < 0.2 || pr.Battery > 1 {
			t.Fatalf("battery %v outside [0.2,1]", pr.Battery)
		}
	})
	if !seen[1] || !seen[2] {
		t.Fatalf("groups not covered: %v", seen)
	}
}

func TestBuildPlanValidation(t *testing.T) {
	bad := []Config{
		{Users: 0, Duration: time.Second},
		{Users: 1, Duration: 0},
		{Users: 1, Duration: time.Second, RateHz: -1},
		{Users: 1, Duration: time.Second, Groups: []int{-1}},
		{Users: 1, Duration: time.Second, Mode: "bogus"},
		{Users: 1, Duration: time.Second, FixedTask: "nope"},
		{Users: 1, Duration: time.Second, MaxInFlight: -1},
		{Users: 1, Duration: time.Second, Timeout: -time.Second},
		// Per-user rates above the 1 ms gap floor's 1 kHz ceiling would
		// silently bias the open-loop schedule; they must be rejected.
		{Users: 1, Duration: time.Second, Mode: ModeInterArrival, RateHz: 2000},
	}
	for i, cfg := range bad {
		if _, err := BuildPlan(cfg); err == nil {
			t.Fatalf("case %d should fail: %+v", i, cfg)
		}
	}
}

// hermeticRun boots a cluster and replays cfg against it.
func hermeticRun(t *testing.T, ccfg ClusterConfig, cfg Config) *Report {
	t.Helper()
	cluster, err := StartCluster(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	rep, err := Run(context.Background(), cluster.URL(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunClosedLoopHermetic(t *testing.T) {
	rep := hermeticRun(t,
		ClusterConfig{Groups: 2, SurrogatesPerGroup: 2},
		Config{
			Mode:     ModeConcurrent,
			Users:    4,
			Duration: time.Second,
			RateHz:   5, // 5 requests per user
			Seed:     7,
			Groups:   []int{1, 2},
			SLO:      &SLO{P99Ms: 60_000, MaxErrorRate: 0},
		})
	if rep.Requests != 20 {
		t.Fatalf("requests = %d, want 4 users x 5", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.Completed != rep.Requests || rep.ThroughputRps <= 0 {
		t.Fatalf("completed=%d throughput=%v", rep.Completed, rep.ThroughputRps)
	}
	l := rep.Latency
	if l.N != 20 || l.P50Ms <= 0 || l.P99Ms < l.P50Ms || l.P999Ms < l.P99Ms || l.MaxMs < l.P999Ms {
		t.Fatalf("latency summary inconsistent: %+v", l)
	}
	// Per-group breakdown partitions the run.
	n, e := 0, 0
	for _, g := range rep.Groups {
		n += g.Requests
		e += g.Errors
	}
	if n != rep.Requests || e != rep.Errors {
		t.Fatalf("group breakdown %d/%d does not partition %d/%d", n, e, rep.Requests, rep.Errors)
	}
	if len(rep.Groups) != 2 {
		t.Fatalf("groups = %v", rep.Groups)
	}
	if rep.SLO == nil || !rep.SLO.Pass {
		t.Fatalf("SLO should pass: %+v", rep.SLO)
	}
	if rep.ScheduleDigest == "" || !strings.HasPrefix(rep.ScheduleDigest, "fnv1a:") {
		t.Fatalf("digest = %q", rep.ScheduleDigest)
	}
}

func TestRunOpenLoopHermetic(t *testing.T) {
	rep := hermeticRun(t,
		ClusterConfig{Groups: 1, SurrogatesPerGroup: 1},
		Config{
			Mode:     ModeInterArrival,
			Users:    3,
			Duration: 800 * time.Millisecond,
			RateHz:   20,
			Seed:     3,
		})
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("requests=%d errors=%d", rep.Requests, rep.Errors)
	}
	if rep.Latency.P50Ms <= 0 {
		t.Fatalf("latency = %+v", rep.Latency)
	}
}

func TestRunSweepHermetic(t *testing.T) {
	rep := hermeticRun(t,
		ClusterConfig{Groups: 1, SurrogatesPerGroup: 1},
		Config{
			Mode:       ModeSweep,
			Users:      1, // sweep synthesizes its own user ids
			Duration:   600 * time.Millisecond,
			RateHz:     8,
			Seed:       5,
			SweepSteps: 2,
		})
	if rep.Requests == 0 {
		t.Fatal("sweep produced no requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
}

func TestRunUnknownGroupCountsErrors(t *testing.T) {
	// Group 9 has no backend: every request must fail, none may crash
	// the run, and the error rate must reach 1.
	rep := hermeticRun(t,
		ClusterConfig{Groups: 1, SurrogatesPerGroup: 1},
		Config{
			Mode:     ModeConcurrent,
			Users:    2,
			Duration: time.Second,
			RateHz:   2,
			Seed:     1,
			Groups:   []int{9},
			SLO:      &SLO{MaxErrorRate: 0},
		})
	if rep.Errors != rep.Requests || rep.ErrorRate != 1 {
		t.Fatalf("errors=%d/%d rate=%v", rep.Errors, rep.Requests, rep.ErrorRate)
	}
	if rep.SLO == nil || rep.SLO.Pass {
		t.Fatalf("SLO should fail: %+v", rep.SLO)
	}
}

func TestRunCancellation(t *testing.T) {
	cluster, err := StartCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first request
	rep, err := Run(ctx, cluster.URL(), Config{
		Mode:     ModeInterArrival,
		Users:    2,
		Duration: 2 * time.Second,
		RateHz:   50,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 0 || rep.Errors != rep.Requests {
		t.Fatalf("cancelled run completed %d of %d", rep.Completed, rep.Requests)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := hermeticRun(t,
		ClusterConfig{},
		Config{Users: 2, Duration: time.Second, RateHz: 2, Seed: 11})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ScheduleDigest != rep.ScheduleDigest || back.Requests != rep.Requests ||
		back.Latency.P99Ms != rep.Latency.P99Ms {
		t.Fatalf("round trip lost data: %+v vs %+v", back, rep)
	}
	// A wrong schema is refused.
	bad := strings.Replace(buf.String(), Schema, "accelcloud/other/v9", 1)
	var buf2 bytes.Buffer
	if err := rep.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(strings.NewReader(bad)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	// The human summary carries the headline numbers.
	s := rep.Summary()
	if !strings.Contains(s, "p99=") || !strings.Contains(s, "throughput=") {
		t.Fatalf("summary missing fields: %q", s)
	}
}

func TestSLOEvaluation(t *testing.T) {
	rep := &Report{
		Latency:       LatencySummary{P99Ms: 120},
		ErrorRate:     0.05,
		ThroughputRps: 40,
	}
	res := SLO{P99Ms: 100, MaxErrorRate: 0.01, MinThroughputRps: 50}.Check(rep.Latency, rep.ErrorRate, rep.ThroughputRps)
	if res.Pass || len(res.Violations) != 3 {
		t.Fatalf("expected 3 violations: %+v", res)
	}
	res = SLO{P99Ms: 200, MaxErrorRate: 0.1, MinThroughputRps: 10}.Check(rep.Latency, rep.ErrorRate, rep.ThroughputRps)
	if !res.Pass || len(res.Violations) != 0 {
		t.Fatalf("expected pass: %+v", res)
	}
}
