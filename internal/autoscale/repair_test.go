package autoscale

import (
	"context"
	"sync"
	"testing"
	"time"

	"accelcloud/internal/sdn"
)

// fakeHealth is a scriptable HealthView: mark backends down, observe
// Forget acknowledgements.
type fakeHealth struct {
	mu     sync.Mutex
	down   map[int][]string
	forgot []string
}

func (f *fakeHealth) markDown(group int, url string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down == nil {
		f.down = map[int][]string{}
	}
	f.down[group] = append(f.down[group], url)
}

func (f *fakeHealth) Down(group int) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.down[group]...)
}

func (f *fakeHealth) Forget(group int, url string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.down[group][:0]
	for _, u := range f.down[group] {
		if u != url {
			out = append(out, u)
		}
	}
	f.down[group] = out
	f.forgot = append(f.forgot, url)
}

func TestRepairReplacesDeadBackend(t *testing.T) {
	fe, err := sdn.New()
	if err != nil {
		t.Fatal(err)
	}
	hv := &fakeHealth{}
	ctrl, err := New(Config{
		FrontEnd:    fe,
		Provisioner: &HermeticProvisioner{},
		Groups:      testGroups(),
		SlotLen:     time.Second,
		WarmPool:    2,
		Health:      hv,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Shutdown()
	ctx := context.Background()
	if err := ctrl.Prime(ctx); err != nil {
		t.Fatal(err)
	}

	// A clean cycle is a reconcile decision with zero repairs.
	dec, err := ctrl.Step(ctx, slotWith(0, map[int]int{1: 2, 2: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != DecisionReconcile || dec.Repaired[0] != 0 || dec.Repaired[1] != 0 {
		t.Fatalf("clean decision = %+v", dec)
	}

	// Kill group 1's only backend (from the controller's perspective).
	victim := fe.Pool(1)[0].URL
	hv.markDown(1, victim)
	dec, err = ctrl.Step(ctx, slotWith(1, map[int]int{1: 2, 2: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != DecisionRepair {
		t.Fatalf("kind = %q, want repair", dec.Kind)
	}
	if dec.Repaired[0] != 1 || dec.Repaired[1] != 0 {
		t.Fatalf("repaired = %v", dec.Repaired)
	}
	// The dead backend is gone from the front-end, capacity restored.
	for _, info := range fe.Pool(1) {
		if info.URL == victim {
			t.Fatalf("dead backend %s still registered", victim)
		}
	}
	if got := fe.ActiveCount(1); got != 1 {
		t.Fatalf("active after repair = %d, want 1", got)
	}
	if got := ctrl.PoolSizes()[1]; got != 1 {
		t.Fatalf("controller pool after repair = %d, want 1", got)
	}
	// The detector was told to forget the evicted backend.
	if len(hv.forgot) != 1 || hv.forgot[0] != victim {
		t.Fatalf("forgot = %v, want [%s]", hv.forgot, victim)
	}

	// The repair drew from the warm pool and the refill restored it.
	if got := ctrl.WarmSize(); got != 2 {
		t.Fatalf("warm after repair = %d, want 2", got)
	}
}

// TestRepairIgnoresUnmanagedURLs proves a Down report for a URL the
// controller does not manage as active (already repaired, draining, or
// foreign) is skipped without side effects.
func TestRepairIgnoresUnmanagedURLs(t *testing.T) {
	fe, err := sdn.New()
	if err != nil {
		t.Fatal(err)
	}
	hv := &fakeHealth{}
	hv.markDown(1, "http://nobody-home")
	ctrl, err := New(Config{
		FrontEnd:    fe,
		Provisioner: &HermeticProvisioner{},
		Groups:      testGroups(),
		SlotLen:     time.Second,
		Health:      hv,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Shutdown()
	ctx := context.Background()
	if err := ctrl.Prime(ctx); err != nil {
		t.Fatal(err)
	}
	dec, err := ctrl.Step(ctx, slotWith(0, map[int]int{1: 1, 2: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Kind != DecisionReconcile || dec.Repaired[0] != 0 {
		t.Fatalf("decision = %+v, want no repair for unmanaged URL", dec)
	}
	if len(hv.forgot) != 0 {
		t.Fatalf("forgot = %v, want none", hv.forgot)
	}
}

// TestRepairDigestCoversRepairs proves two equal-demand runs differing
// only in a repair produce different decision digests — repair is part
// of the audited behaviour.
func TestRepairDigestCoversRepairs(t *testing.T) {
	run := func(kill bool) string {
		fe, err := sdn.New()
		if err != nil {
			t.Fatal(err)
		}
		hv := &fakeHealth{}
		ctrl, err := New(Config{
			FrontEnd:    fe,
			Provisioner: &HermeticProvisioner{},
			Groups:      testGroups(),
			SlotLen:     time.Second,
			WarmPool:    1,
			Health:      hv,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ctrl.Shutdown()
		ctx := context.Background()
		if err := ctrl.Prime(ctx); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if kill && i == 1 {
				hv.markDown(1, fe.Pool(1)[0].URL)
			}
			if _, err := ctrl.Step(ctx, slotWith(i, map[int]int{1: 2, 2: 2})); err != nil {
				t.Fatal(err)
			}
		}
		return ctrl.Digest()
	}
	clean, repaired := run(false), run(true)
	if clean == repaired {
		t.Fatalf("digest ignores repairs: %s", clean)
	}
	// And same-behaviour runs still agree.
	if a, b := run(true), run(true); a != b {
		t.Fatalf("repair digests diverge: %s vs %s", a, b)
	}
}
