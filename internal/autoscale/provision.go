package autoscale

import (
	"context"
	"net/http/httptest"

	"accelcloud/internal/dalvik"
	"accelcloud/internal/tasks"
)

// hermeticBackend is a dalvik surrogate on a loopback httptest socket.
type hermeticBackend struct {
	srv *httptest.Server
	sur *dalvik.Surrogate
}

func (b *hermeticBackend) URL() string { return b.srv.URL }

func (b *hermeticBackend) Close() error {
	b.srv.Close()
	return nil
}

// HermeticProvisioner boots real dalvik surrogates on loopback sockets
// — the in-process stand-in for launching cloud instances, mirroring
// loadgen's hermetic cluster. Every surrogate carries the full task
// pool, so any warm spare can serve any acceleration group.
type HermeticProvisioner struct {
	// Pool is the task registry pushed into each surrogate; nil selects
	// tasks.DefaultPool().
	Pool *tasks.Pool
	// MaxProcs bounds each surrogate's worker slots
	// (0 = dalvik.DefaultMaxProcs).
	MaxProcs int
}

var _ Provisioner = (*HermeticProvisioner)(nil)

// Boot implements Provisioner.
func (p *HermeticProvisioner) Boot(ctx context.Context, id string) (Backend, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sur, err := dalvik.NewSurrogate(id, p.MaxProcs)
	if err != nil {
		return nil, err
	}
	pool := p.Pool
	if pool == nil {
		pool = tasks.DefaultPool()
	}
	if err := sur.PushPool(pool); err != nil {
		return nil, err
	}
	return &hermeticBackend{srv: httptest.NewServer(sur.Handler()), sur: sur}, nil
}
