package autoscale

import (
	"context"
	"testing"
	"time"

	"accelcloud/internal/loadgen"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sdn"
	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
	"accelcloud/internal/trace"
)

func testGroups() []GroupSpec {
	// Small per-instance capacities so the doubling ramp forces real
	// scale-ups: slot demand per group reaches 32 ⇒ desired pools of 8
	// (g1) and 4 (g2) at the knee.
	return []GroupSpec{
		{Group: 1, TypeName: "t2.nano", CostPerHour: 0.0063, Capacity: 4},
		{Group: 2, TypeName: "t2.large", CostPerHour: 0.1, Capacity: 8},
	}
}

func testSweepConfig(seed int64) SweepConfig {
	return SweepConfig{
		Seed:       seed,
		StartHz:    16,
		Steps:      4,
		SlotLen:    500 * time.Millisecond,
		DrainSlots: 4,
		Groups:     testGroups(),
		FixedTask:  "sieve",
		Timeout:    5 * time.Second,
		SLO:        &loadgen.SLO{P99Ms: 2000, MaxErrorRate: 0},
	}
}

func TestNewValidation(t *testing.T) {
	fe, err := sdn.New()
	if err != nil {
		t.Fatal(err)
	}
	prov := &HermeticProvisioner{}
	base := Config{FrontEnd: fe, Provisioner: prov, Groups: testGroups(), SlotLen: time.Second}
	for name, mutate := range map[string]func(*Config){
		"nil front-end":   func(c *Config) { c.FrontEnd = nil },
		"nil provisioner": func(c *Config) { c.Provisioner = nil },
		"no groups":       func(c *Config) { c.Groups = nil },
		"zero slot":       func(c *Config) { c.SlotLen = 0 },
		"negative warm":   func(c *Config) { c.WarmPool = -1 },
		"negative group":  func(c *Config) { c.Groups = []GroupSpec{{Group: -1, TypeName: "x", Capacity: 1}} },
		"duplicate group": func(c *Config) { c.Groups = append(testGroups(), testGroups()[0]) },
		"no type name":    func(c *Config) { c.Groups = []GroupSpec{{Group: 1, Capacity: 1}} },
		"zero capacity":   func(c *Config) { c.Groups = []GroupSpec{{Group: 1, TypeName: "x"}} },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("%s should fail", name)
		}
	}
	if _, err := New(base); err != nil {
		t.Fatal(err)
	}
}

// slotWith builds a slot with the given per-group counts at an index.
func slotWith(idx int, counts map[int]int) trace.Slot {
	maxG := 0
	for g := range counts {
		if g > maxG {
			maxG = g
		}
	}
	s := trace.Slot{Start: sim.Epoch.Add(time.Duration(idx) * time.Second), Groups: make([][]int, maxG+1)}
	for g, n := range counts {
		users := make([]int, n)
		for i := range users {
			users[i] = idx*10000 + i
		}
		s.Groups[g] = users
	}
	return s
}

// TestControllerScalesUpAndDown drives the reconciler directly with a
// synthetic demand ramp and verifies pool growth, hysteresis-gated
// drain, and warm-pool reuse against the live front-end registry.
func TestControllerScalesUpAndDown(t *testing.T) {
	fe, err := sdn.New()
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(Config{
		FrontEnd:    fe,
		Provisioner: &HermeticProvisioner{},
		Groups:      testGroups(),
		SlotLen:     time.Second,
		WarmPool:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Shutdown()
	ctx := context.Background()
	if err := ctrl.Prime(ctx); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.PoolSizes(); got[1] != 1 || got[2] != 1 {
		t.Fatalf("primed pools = %v", got)
	}
	if ctrl.WarmSize() != 2 {
		t.Fatalf("warm = %d", ctrl.WarmSize())
	}

	// Ramp: group 1 demand 5 → 40 → 40 → 0 → 0 → 0.
	demands := []int{5, 40, 40, 0, 0, 0}
	var peak int
	for i, d := range demands {
		dec, err := ctrl.Step(ctx, slotWith(i, map[int]int{1: d, 2: 0}))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Applied[0] > peak {
			peak = dec.Applied[0]
		}
		// The front-end's active registry always matches the decision.
		if fe.ActiveCount(1) != dec.Applied[0] {
			t.Fatalf("slot %d: front-end %d active, decision says %d", i, fe.ActiveCount(1), dec.Applied[0])
		}
	}
	// Edit-distance NN predicts the observed 40 once it repeats: pool
	// must have reached ceil(40/10) = 4.
	if peak < 4 {
		t.Fatalf("peak pool = %d, want >= 4", peak)
	}
	decs := ctrl.Decisions()
	final := decs[len(decs)-1]
	if final.Applied[0] != 1 {
		t.Fatalf("final pool = %d, want scale-down to 1 (decisions: %+v)", final.Applied[0], decs)
	}
	// Warm pool is bounded even after absorbing drained instances.
	if ctrl.WarmSize() > 2 {
		t.Fatalf("warm pool grew to %d", ctrl.WarmSize())
	}
}

// TestControllerCooldownBlocksImmediateDrain verifies the flap guard: a
// scale-up in slot t forbids a scale-down in slot t+1 when
// CooldownSlots is 2.
func TestControllerCooldownBlocksImmediateDrain(t *testing.T) {
	fe, err := sdn.New()
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := New(Config{
		FrontEnd:      fe,
		Provisioner:   &HermeticProvisioner{},
		Groups:        []GroupSpec{{Group: 1, TypeName: "t2.nano", CostPerHour: 0.0063, Capacity: 10}},
		SlotLen:       time.Second,
		CooldownSlots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Shutdown()
	ctx := context.Background()
	if err := ctrl.Prime(ctx); err != nil {
		t.Fatal(err)
	}
	// Spike then silence: 30, 30, 0, 0, 0, 0.
	applied := []int{}
	for i, d := range []int{30, 30, 0, 0, 0, 0} {
		dec, err := ctrl.Step(ctx, slotWith(i, map[int]int{1: d}))
		if err != nil {
			t.Fatal(err)
		}
		applied = append(applied, dec.Applied[0])
	}
	// The pool must hold its size for at least CooldownSlots slots after
	// the last scale-up before draining.
	up := 0
	for i, n := range applied {
		if n > 1 {
			up = i
		}
	}
	if up < 2 {
		t.Fatalf("pool dropped too early: applied = %v", applied)
	}
	if applied[len(applied)-1] != 1 {
		t.Fatalf("pool never drained: applied = %v", applied)
	}
}

// countingProvisioner counts boots to prove warm-pool and reclaim
// reuse.
type countingProvisioner struct {
	inner HermeticProvisioner
	boots int
}

func (p *countingProvisioner) Boot(ctx context.Context, id string) (Backend, error) {
	p.boots++
	return p.inner.Boot(ctx, id)
}

// TestFlapReusesDrainedInstances: a prediction flap — drain in slot t,
// scale back up in slot t+1 — must reuse the just-drained instances
// (via the end-of-cycle warm trim) instead of booting fresh ones.
func TestFlapReusesDrainedInstances(t *testing.T) {
	fe, err := sdn.New()
	if err != nil {
		t.Fatal(err)
	}
	prov := &countingProvisioner{}
	ctrl, err := New(Config{
		FrontEnd:    fe,
		Provisioner: prov,
		Groups:      []GroupSpec{{Group: 1, TypeName: "t2.nano", CostPerHour: 0.0063, Capacity: 10}},
		SlotLen:     time.Second,
		WarmPool:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Shutdown()
	ctx := context.Background()
	if err := ctrl.Prime(ctx); err != nil {
		t.Fatal(err)
	}
	// Ramp to 4 instances, flap to zero, then straight back up.
	for i, d := range []int{40, 40, 0, 40} {
		if _, err := ctrl.Step(ctx, slotWith(i, map[int]int{1: d})); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			// The drain happened: remember the boot count.
			if ctrl.DrainingSize() == 0 {
				t.Fatal("slot 2 should have drained instances")
			}
			prov.boots = 0
		}
	}
	if prov.boots != 0 {
		t.Fatalf("flap booted %d fresh instances instead of reusing drained ones", prov.boots)
	}
	if got := ctrl.PoolSizes()[1]; got != 4 {
		t.Fatalf("pool after flap = %d, want 4", got)
	}
	if ctrl.WarmSize() > 1 {
		t.Fatalf("warm pool over cap: %d", ctrl.WarmSize())
	}
}

// TestRunSweepEndToEnd is the acceptance scenario: a doubling-rate
// sweep through the live stack scales pools up and back down, meets the
// SLO, and two same-seed runs agree bit-for-bit on schedule and
// decision digests.
func TestRunSweepEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("hermetic sweep replays real traffic")
	}
	ctx := context.Background()
	rep1, err := RunSweep(ctx, testSweepConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Requests == 0 {
		t.Fatal("sweep produced no requests")
	}
	if rep1.Errors != 0 {
		t.Fatalf("errors = %d", rep1.Errors)
	}
	if rep1.SLO == nil || !rep1.SLO.Pass {
		t.Fatalf("SLO = %+v", rep1.SLO)
	}
	// Pools grew beyond the floor and drained back to it.
	grew := false
	for _, n := range rep1.PeakPool {
		if n > 1 {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("pools never grew: peak = %v", rep1.PeakPool)
	}
	for g, n := range rep1.FinalPool {
		if n != 1 {
			t.Fatalf("group %s final pool = %d, want drained to 1\n%s", g, n, rep1.Summary())
		}
	}
	// Adaptive provisioning beats the static peak baseline.
	if rep1.AdaptiveCostUSD <= 0 || rep1.StaticPeakCostUSD <= rep1.AdaptiveCostUSD {
		t.Fatalf("costs: adaptive %.6f static %.6f", rep1.AdaptiveCostUSD, rep1.StaticPeakCostUSD)
	}
	if len(rep1.Slots) != rep1.Steps+rep1.DrainSlots {
		t.Fatalf("slot sections = %d", len(rep1.Slots))
	}

	// Bit-reproducibility: same seed ⇒ same schedule and decisions.
	rep2, err := RunSweep(ctx, testSweepConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep1.ScheduleDigest != rep2.ScheduleDigest {
		t.Fatalf("schedule digests differ: %s vs %s", rep1.ScheduleDigest, rep2.ScheduleDigest)
	}
	if rep1.DecisionDigest != rep2.DecisionDigest {
		t.Fatalf("decision digests differ: %s vs %s", rep1.DecisionDigest, rep2.DecisionDigest)
	}
	// A different seed replays a different schedule.
	rep3, err := RunSweep(ctx, testSweepConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	if rep3.ScheduleDigest == rep1.ScheduleDigest {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRunSweepValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := RunSweep(ctx, SweepConfig{}); err == nil {
		t.Fatal("no groups should fail")
	}
	bad := testSweepConfig(1)
	bad.Steps = -1
	if _, err := RunSweep(ctx, bad); err == nil {
		t.Fatal("negative steps should fail")
	}
}

func TestReportRoundTripAndSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("hermetic sweep replays real traffic")
	}
	cfg := testSweepConfig(7)
	cfg.Steps = 2
	cfg.DrainSlots = 2
	cfg.SlotLen = 250 * time.Millisecond
	rep, err := RunSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/BENCH_autoscale.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.DecisionDigest != rep.DecisionDigest || got.ScheduleDigest != rep.ScheduleDigest {
		t.Fatal("round trip lost digests")
	}
	if got.Summary() == "" {
		t.Fatal("empty summary")
	}
}

// TestColdStartActivationsBilledAndDigested pins the scale-to-zero
// integration: activations drained from the front-end land in
// Decision.Activated, bill their cold-start stall into CostUSD, and
// hash into the digest — while activation-free runs keep byte-for-byte
// the digest they had before the Activated field existed (it only
// hashes when present).
func TestColdStartActivationsBilledAndDigested(t *testing.T) {
	run := func(coldPool bool) (*Controller, Decision) {
		var opts []sdn.Option
		if coldPool {
			opts = append(opts, sdn.WithColdPool(time.Millisecond, 36*time.Millisecond)) // 1e-5 h
		}
		fe, err := sdn.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := New(Config{
			FrontEnd:    fe,
			Provisioner: &HermeticProvisioner{},
			Groups:      testGroups(),
			SlotLen:     time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ctrl.Shutdown)
		ctx := context.Background()
		if err := ctrl.Prime(ctx); err != nil {
			t.Fatal(err)
		}
		if coldPool {
			// Park group 1's backend, then reactivate it the way a
			// request would, so the front-end accrues one activation.
			if n := fe.SweepCold(time.Now().Add(time.Hour)); n == 0 {
				t.Fatal("sweep parked nothing")
			}
			st, err := tasks.Sieve{}.Generate(sim.NewRNG(1).Stream("gen"), 100)
			if err != nil {
				t.Fatal(err)
			}
			if _, code := fe.Offload(ctx, rpc.OffloadRequest{UserID: 1, Group: 1, BatteryLevel: 0.9, State: st}); code != 200 {
				t.Fatalf("reactivating offload code %d", code)
			}
		}
		dec, err := ctrl.Step(ctx, slotWith(0, map[int]int{1: 2, 2: 0}))
		if err != nil {
			t.Fatal(err)
		}
		return ctrl, dec
	}

	plainCtrl, plainDec := run(false)
	coldCtrl, coldDec := run(true)

	if plainDec.Activated != nil {
		t.Fatalf("activation-free decision has Activated = %v", plainDec.Activated)
	}
	if len(coldDec.Activated) == 0 || coldDec.Activated[0] != 1 {
		t.Fatalf("cold decision Activated = %v, want one group-1 activation", coldDec.Activated)
	}
	// The 36 ms cold start at group 1's rate must surface in the bill.
	wantExtra := 1e-5 * testGroups()[0].CostPerHour
	if diff := coldDec.CostUSD - plainDec.CostUSD; diff < wantExtra*0.99 {
		t.Fatalf("cold run billed %.6f over plain, want >= %.6f activation charge", diff, wantExtra)
	}
	if plainCtrl.Digest() == coldCtrl.Digest() {
		t.Fatal("activation did not change the decision digest")
	}
	// And a second activation-free run reproduces the plain digest:
	// the Activated field is invisible when absent.
	repeatCtrl, _ := run(false)
	if repeatCtrl.Digest() != plainCtrl.Digest() {
		t.Fatalf("activation-free digests diverged: %s vs %s", repeatCtrl.Digest(), plainCtrl.Digest())
	}
}
