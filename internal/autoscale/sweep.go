package autoscale

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"accelcloud/internal/loadgen"
	"accelcloud/internal/router"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sdn"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/trace"
)

// ReportSchema identifies the BENCH_autoscale.json wire format.
const ReportSchema = "accelcloud/autoscale-report/v1"

// SweepConfig parameterizes one hermetic end-to-end autoscale run: a
// doubling-rate loadgen sweep (the Fig 8 stress shape) replayed slot by
// slot through a full live stack — front-end, surrogates, and the
// reconciler closing the predict→allocate→provision cycle after every
// slot.
type SweepConfig struct {
	// Seed roots the schedule and every controller substream; two runs
	// with the same seed produce identical schedule and decision
	// digests.
	Seed int64
	// StartHz is the aggregate arrival rate of the first slot; it
	// doubles each slot (0 selects 4).
	StartHz float64
	// Steps is the number of rate doublings (0 selects 4).
	Steps int
	// SlotLen is the provisioning slot length; the sweep holds each
	// rate for exactly one slot (0 selects 1s).
	SlotLen time.Duration
	// DrainSlots appends empty slots after the ramp so the run
	// demonstrates scale-down as well as scale-up (0 selects 3).
	DrainSlots int
	// Groups are the managed acceleration groups; requests are spread
	// across them. At least one is required.
	Groups []GroupSpec
	// Policy names the front-end's pick policy (router.ParsePolicy
	// names; empty selects round-robin). The decision digest is
	// policy-independent — the control loop observes the schedule, not
	// the routing — so policies are A/B-comparable at identical demand.
	Policy string
	// FixedTask pins every request to one pool task (empty = random).
	FixedTask string
	// MaxInFlight bounds concurrent outstanding requests per slot
	// (0 selects 64).
	MaxInFlight int
	// Timeout bounds each request (0 selects 10s).
	Timeout time.Duration
	// SLO, when non-nil, is evaluated into the report over the whole
	// run's latency population.
	SLO *loadgen.SLO
	// Controller knobs, forwarded to Config.
	MaxHistory      int
	CC              int
	WarmPool        int
	ScaleDownMargin int
	CooldownSlots   int
	// Provisioner overrides the hermetic in-process provisioner (tests
	// and the live daemon inject their own).
	Provisioner Provisioner
}

// SlotReport merges one slot's measured traffic with its control-cycle
// decision — the per-slot section that makes cost-vs-SLO tradeoffs
// measurable.
type SlotReport struct {
	Slot     int                    `json:"slot"`
	RateHz   float64                `json:"rateHz"`
	Requests int                    `json:"requests"`
	Errors   int                    `json:"errors"`
	Latency  loadgen.LatencySummary `json:"latency"`
	Decision Decision               `json:"decision"`
}

// Report is the machine-readable outcome of one autoscale sweep (the
// BENCH_autoscale.json schema consumed by cmd/benchdiff).
type Report struct {
	Schema      string  `json:"schema"`
	Seed        int64   `json:"seed"`
	Policy      string  `json:"policy,omitempty"`
	StartHz     float64 `json:"startHz"`
	Steps       int     `json:"steps"`
	DrainSlots  int     `json:"drainSlots"`
	SlotLenMs   float64 `json:"slotLenMs"`
	WallClockMs float64 `json:"wallClockMs"`

	Requests  int     `json:"requests"`
	Completed int     `json:"completed"`
	Errors    int     `json:"errors"`
	ErrorRate float64 `json:"errorRate"`

	Latency loadgen.LatencySummary `json:"latency"`

	// AdaptiveCostUSD is the reconciler's total bill; StaticPeakCostUSD
	// holds the peak desired pool for the whole run (the §III
	// over-provisioning baseline); SavingsPct compares them.
	AdaptiveCostUSD   float64 `json:"adaptiveCostUSD"`
	StaticPeakCostUSD float64 `json:"staticPeakCostUSD"`
	SavingsPct        float64 `json:"savingsPct"`

	// PeakPool and FinalPool summarize the scale-up-and-back-down arc
	// per managed group (keys are group indices as strings).
	PeakPool  map[string]int `json:"peakPool"`
	FinalPool map[string]int `json:"finalPool"`

	ScheduleDigest string `json:"scheduleDigest"`
	DecisionDigest string `json:"decisionDigest"`

	Slots []SlotReport       `json:"slots"`
	SLO   *loadgen.SLOResult `json:"slo,omitempty"`
}

func (c SweepConfig) withDefaults() (SweepConfig, error) {
	if c.StartHz == 0 {
		c.StartHz = 4
	}
	if c.StartHz < 0 {
		return c, fmt.Errorf("autoscale: start rate %v < 0", c.StartHz)
	}
	if c.Steps == 0 {
		c.Steps = 4
	}
	if c.Steps < 0 {
		return c, fmt.Errorf("autoscale: steps %d < 0", c.Steps)
	}
	if c.SlotLen == 0 {
		c.SlotLen = time.Second
	}
	if c.SlotLen < 0 {
		return c, fmt.Errorf("autoscale: slot length %v < 0", c.SlotLen)
	}
	if c.DrainSlots == 0 {
		c.DrainSlots = 3
	}
	if c.DrainSlots < 0 {
		return c, fmt.Errorf("autoscale: drain slots %d < 0", c.DrainSlots)
	}
	if len(c.Groups) == 0 {
		return c, errors.New("autoscale: no group specs")
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.MaxInFlight < 0 {
		return c, fmt.Errorf("autoscale: max in flight %d < 0", c.MaxInFlight)
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Timeout < 0 {
		return c, fmt.Errorf("autoscale: timeout %v < 0", c.Timeout)
	}
	if c.Provisioner == nil {
		c.Provisioner = &HermeticProvisioner{}
	}
	return c, nil
}

// RunSweep executes the hermetic end-to-end autoscale scenario: it
// boots a live front-end, primes the controller's pools, replays the
// deterministic doubling-rate schedule slot by slot over real sockets,
// and steps the control cycle at every slot boundary.
//
// The run is sim-clock-driven: slot boundaries are positions in the
// deterministic schedule's virtual timeline (each slot's requests
// complete before the cycle runs), so the control path sees identical
// per-slot demand on every same-seed run and the decision digest is
// bit-reproducible. Only the measured latencies differ between runs.
func RunSweep(ctx context.Context, cfg SweepConfig) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	policy, err := router.ParsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	groupIDs := make([]int, 0, len(cfg.Groups))
	for _, g := range cfg.Groups {
		groupIDs = append(groupIDs, g.Group)
	}
	sort.Ints(groupIDs)
	lcfg := loadgen.Config{
		Mode:       loadgen.ModeSweep,
		Users:      1, // the sweep synthesizes one user id per request
		Duration:   time.Duration(cfg.Steps) * cfg.SlotLen,
		RateHz:     cfg.StartHz,
		Seed:       cfg.Seed,
		Groups:     groupIDs,
		SweepSteps: cfg.Steps,
		FixedTask:  cfg.FixedTask,
		SlotLen:    cfg.SlotLen,
	}
	plan, err := loadgen.BuildPlan(lcfg)
	if err != nil {
		return nil, err
	}

	// The live stack: front-end over a real loopback socket. The
	// control loop reads the virtual-time window fed at issue time, so
	// the front-end itself needs no wall-clock log here.
	fe, err := sdn.New(sdn.WithPolicy(policy))
	if err != nil {
		return nil, err
	}
	front := httptest.NewServer(fe.Handler())
	defer front.Close()

	ctrl, err := New(Config{
		FrontEnd:        fe,
		Provisioner:     cfg.Provisioner,
		Groups:          cfg.Groups,
		SlotLen:         cfg.SlotLen,
		MaxHistory:      cfg.MaxHistory,
		CC:              cfg.CC,
		WarmPool:        cfg.WarmPool,
		ScaleDownMargin: cfg.ScaleDownMargin,
		CooldownSlots:   cfg.CooldownSlots,
		RNG:             sim.NewRNG(cfg.Seed),
	})
	if err != nil {
		return nil, err
	}
	defer ctrl.Shutdown()
	if err := ctrl.Prime(ctx); err != nil {
		return nil, err
	}

	totalSlots := cfg.Steps + cfg.DrainSlots
	window, err := trace.NewWindow(sim.Epoch, cfg.SlotLen, ctrl.NumGroups(), totalSlots+1)
	if err != nil {
		return nil, err
	}

	// Bucket the deterministic schedule by slot index (indices into the
	// timeline; the request structs stay owned by the plan).
	buckets := make([][]int, totalSlots)
	for i, pr := range plan.Timeline {
		idx := int(pr.Offset / cfg.SlotLen)
		if idx >= totalSlots {
			idx = totalSlots - 1
		}
		buckets[idx] = append(buckets[idx], i)
		// Feed the live window at the request's virtual arrival time.
		window.Observe(sim.Epoch.Add(pr.Offset), pr.User, pr.Group)
	}

	client := rpc.NewClient(front.URL)
	overall := stats.NewLatencyHist()
	slotReports := make([]SlotReport, 0, totalSlots)
	totalReqs, totalErrs := 0, 0
	wallStart := time.Now()
	for s := 0; s < totalSlots; s++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("autoscale: sweep interrupted: %w", err)
		}
		idxs := buckets[s]
		lat := make([]float64, len(idxs))
		errs := make([]error, len(idxs))
		sim.FanOut(len(idxs), cfg.MaxInFlight, func(k int) {
			pr := plan.Timeline[idxs[k]]
			rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
			defer cancel()
			start := time.Now()
			_, err := client.Offload(rctx, rpc.OffloadRequest{
				UserID:       pr.User,
				Group:        pr.Group,
				BatteryLevel: pr.Battery,
				State:        pr.State,
			})
			lat[k] = float64(time.Since(start)) / float64(time.Millisecond)
			errs[k] = err
		})
		slotHist := stats.NewLatencyHist()
		slotErrs := 0
		for k := range idxs {
			overall.Add(lat[k])
			slotHist.Add(lat[k])
			if errs[k] != nil {
				slotErrs++
			}
		}
		totalReqs += len(idxs)
		totalErrs += slotErrs

		// Slot complete: advance the virtual clock and run the control
		// cycle for every newly closed slot.
		var dec Decision
		for _, slot := range window.Advance(sim.Epoch.Add(time.Duration(s+1) * cfg.SlotLen)) {
			dec, err = ctrl.Step(ctx, slot)
			if err != nil {
				return nil, err
			}
		}
		rate := 0.0
		if s < cfg.Steps {
			rate = cfg.StartHz * float64(int(1)<<uint(s))
		}
		slotReports = append(slotReports, SlotReport{
			Slot:     s,
			RateHz:   rate,
			Requests: len(idxs),
			Errors:   slotErrs,
			Latency:  loadgen.Summarize(slotHist),
			Decision: dec,
		})
	}
	wall := time.Since(wallStart)

	rep := &Report{
		Schema:         ReportSchema,
		Seed:           cfg.Seed,
		Policy:         policy.Name(),
		StartHz:        cfg.StartHz,
		Steps:          cfg.Steps,
		DrainSlots:     cfg.DrainSlots,
		SlotLenMs:      float64(cfg.SlotLen) / float64(time.Millisecond),
		WallClockMs:    float64(wall) / float64(time.Millisecond),
		Requests:       totalReqs,
		Completed:      totalReqs - totalErrs,
		Errors:         totalErrs,
		Latency:        loadgen.Summarize(overall),
		PeakPool:       map[string]int{},
		FinalPool:      map[string]int{},
		ScheduleDigest: plan.Digest(),
		DecisionDigest: ctrl.Digest(),
		Slots:          slotReports,
	}
	if totalReqs > 0 {
		rep.ErrorRate = float64(totalErrs) / float64(totalReqs)
	}

	// Cost accounting: adaptive bill vs holding the peak desired pool
	// for the whole run (§III static over-provisioning).
	decisions := ctrl.Decisions()
	sorted := make([]GroupSpec, len(cfg.Groups))
	copy(sorted, cfg.Groups)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Group < sorted[j].Group })
	peakDesired := make([]int, len(sorted))
	for _, d := range decisions {
		rep.AdaptiveCostUSD += d.CostUSD
		for i, n := range d.Desired {
			if n > peakDesired[i] {
				peakDesired[i] = n
			}
		}
	}
	hours := cfg.SlotLen.Hours()
	for i, g := range sorted {
		rep.StaticPeakCostUSD += float64(peakDesired[i]) * g.CostPerHour * hours * float64(len(decisions))
		key := fmt.Sprintf("%d", g.Group)
		for _, d := range decisions {
			if d.Applied[i] > rep.PeakPool[key] {
				rep.PeakPool[key] = d.Applied[i]
			}
		}
		if len(decisions) > 0 {
			rep.FinalPool[key] = decisions[len(decisions)-1].Applied[i]
		}
	}
	if rep.StaticPeakCostUSD > 0 {
		rep.SavingsPct = 100 * (1 - rep.AdaptiveCostUSD/rep.StaticPeakCostUSD)
	}
	if cfg.SLO != nil {
		throughput := 0.0
		if wall > 0 {
			throughput = float64(rep.Completed) / wall.Seconds()
		}
		rep.SLO = cfg.SLO.Check(rep.Latency, rep.ErrorRate, throughput)
	}
	return rep, nil
}

// WriteJSON writes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("autoscale: %w", err)
	}
	defer func() { _ = f.Close() }()
	return r.WriteJSON(f)
}

// ReadReport parses a report and verifies its schema.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("autoscale: decode report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("autoscale: schema %q, want %q", rep.Schema, ReportSchema)
	}
	return &rep, nil
}

// ReadReportFile parses a report file.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("autoscale: %w", err)
	}
	defer func() { _ = f.Close() }()
	return ReadReport(f)
}

// Summary renders the human-readable digest the CLI prints: one line
// per slot showing the control cycle at work, then the cost verdict.
func (r *Report) Summary() string {
	out := fmt.Sprintf("autoscale sweep seed=%d policy=%s start=%.0fHz steps=%d drain=%d slot=%.0fms\n",
		r.Seed, r.Policy, r.StartHz, r.Steps, r.DrainSlots, r.SlotLenMs)
	out += fmt.Sprintf("schedule=%s decisions=%s\n", r.ScheduleDigest, r.DecisionDigest)
	out += "slot  rate_hz  reqs  errs  p99_ms  observed    predicted   desired  applied  warm  drain  $slot\n"
	for _, s := range r.Slots {
		d := s.Decision
		out += fmt.Sprintf("%-4d  %-7.0f  %-4d  %-4d  %-6.1f  %-10s  %-10s  %-7s  %-7s  %-4d  %-5d  %.6f\n",
			s.Slot, s.RateHz, s.Requests, s.Errors, s.Latency.P99Ms,
			fmt.Sprint(d.Observed), fmt.Sprint(d.Predicted),
			fmt.Sprint(d.Desired), fmt.Sprint(d.Applied), d.Warm, d.Draining, d.CostUSD)
	}
	out += fmt.Sprintf("requests=%d completed=%d errors=%d (%.1f%%) p50=%.1f p99=%.1f max=%.1f ms\n",
		r.Requests, r.Completed, r.Errors, 100*r.ErrorRate,
		r.Latency.P50Ms, r.Latency.P99Ms, r.Latency.MaxMs)
	out += fmt.Sprintf("adaptive cost $%.6f vs static-peak $%.6f (savings %.1f%%)\n",
		r.AdaptiveCostUSD, r.StaticPeakCostUSD, r.SavingsPct)
	if r.SLO != nil {
		if r.SLO.Pass {
			out += "SLO: PASS\n"
		} else {
			out += "SLO: FAIL\n"
			for _, v := range r.SLO.Violations {
				out += "  " + v + "\n"
			}
		}
	}
	return out
}
