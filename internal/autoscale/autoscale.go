// Package autoscale closes the paper's control cycle (§IV) against the
// running SDN front-end: on each time slot the live request log
// (trace.Window) feeds the edit-distance workload predictor (§IV-B),
// the predicted per-group demand is solved into the cost-minimal
// instance allocation (§IV-C), and the front-end's per-group surrogate
// pools are reconciled toward the plan — scale-up from a warm pool of
// pre-booted surrogates, scale-down via connection draining, with
// hysteresis and a cooldown to prevent flapping. CloneCloud and
// ThinkAir argue this on-demand scaling of surrogate VMs is what makes
// offloading economical; KServe's serving reconciler is the structural
// model (see PAPERS.md).
//
// Determinism contract: a Controller's decision sequence is a pure
// function of (Config, observed slot sequence). Maps are never iterated
// for decisions, warm-pool handling is FIFO, scale-down picks the
// newest actives first, and anything random draws from sim.RNG
// substreams — so the hermetic sweep driver (sweep.go) produces
// bit-identical decision digests across same-seed runs. See DESIGN.md
// §5 for the control-cycle diagram and reconciler states.
package autoscale

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"time"

	"accelcloud/internal/allocate"
	"accelcloud/internal/cloud"
	"accelcloud/internal/predict"
	"accelcloud/internal/sdn"
	"accelcloud/internal/sim"
	"accelcloud/internal/trace"
)

// Backend is one provisioned surrogate endpoint the reconciler manages.
type Backend interface {
	// URL is the base URL the front-end routes to.
	URL() string
	// Close tears the surrogate down.
	Close() error
}

// Provisioner boots surrogate backends. Boot must return a backend that
// is immediately ready to serve (the warm pool hides any real boot
// latency from the reconcile path).
type Provisioner interface {
	Boot(ctx context.Context, id string) (Backend, error)
}

// GroupSpec binds an acceleration group to its instance economics.
type GroupSpec struct {
	// Group is the acceleration group index (absolute, as routed).
	Group int
	// TypeName names the instance type for reporting.
	TypeName string
	// CostPerHour is c_s in the allocation objective.
	CostPerHour float64
	// Capacity is K_s: the per-slot demand one instance serves within
	// the SLA.
	Capacity float64
	// Min floors the group's pool (0 selects 1) so stragglers keep
	// being served through zero-demand predictions.
	Min int
}

// Config parameterizes a Controller.
type Config struct {
	// FrontEnd is the live SDN front-end whose pools are reconciled.
	FrontEnd *sdn.FrontEnd
	// Provisioner boots surrogates for the warm pool and scale-ups.
	Provisioner Provisioner
	// Groups are the managed acceleration groups.
	Groups []GroupSpec
	// Predictor estimates the next slot; nil selects the paper's
	// edit-distance model.
	Predictor predict.Predictor
	// MaxHistory bounds the predictor's knowledge base
	// (0 = predict.DefaultMaxHistory).
	MaxHistory int
	// CC caps total instances across groups (0 = allocate.DefaultCC).
	CC int
	// SlotLen is the provisioning slot length, used for cost accounting
	// (instances bill per slot at CostPerHour × slot hours).
	SlotLen time.Duration
	// WarmPool is the number of pre-booted spare surrogates kept ready
	// (0 selects 1). Scale-ups draw from it instantly; it is refilled
	// after each reconcile.
	WarmPool int
	// ScaleDownMargin is the hysteresis band: a group only drains when
	// its surplus (current − desired) reaches the margin (0 selects 1,
	// i.e. any surplus may drain once the cooldown allows).
	ScaleDownMargin int
	// CooldownSlots is the number of quiet slots required after any
	// scale action before a group may scale down again (0 selects 1).
	// Scale-ups are never delayed: under-provisioning burns the SLO.
	CooldownSlots int
	// RNG roots any randomness (currently instance-id salting); nil
	// selects sim.NewRNG(1). Substream-derived so runs are reproducible.
	RNG *sim.RNG
	// Health, when non-nil, feeds the self-healing repair path: on each
	// Step, backends the detector has confirmed Down (probe-dead, not
	// merely degraded) are evicted and replaced from the warm pool
	// before any scaling decision — a repair Decision in the audit log.
	// internal/health's Manager implements it.
	Health HealthView
}

// HealthView is the slice of the failure detector the repair path
// consumes: the probe-confirmed-dead backends of a group (sorted, so
// repairs replay deterministically), and an acknowledgement hook that
// clears a backend's health state once it has been evicted and
// replaced.
type HealthView interface {
	Down(group int) []string
	Forget(group int, url string)
}

// ParseGroupSpec resolves a "g=type:capacity[:min]" flag value (the
// repeated -group flag of cmd/autoscaled and cmd/chaosbench) against
// the instance catalog. defaultMin floors the pool when the :min
// suffix is absent (0 keeps the controller's default of 1).
func ParseGroupSpec(v string, defaultMin int) (GroupSpec, error) {
	eq := strings.SplitN(v, "=", 2)
	if len(eq) != 2 {
		return GroupSpec{}, fmt.Errorf("group %q: want g=type:capacity[:min]", v)
	}
	id, err := strconv.Atoi(strings.TrimSpace(eq[0]))
	if err != nil {
		return GroupSpec{}, fmt.Errorf("group %q: bad index: %w", v, err)
	}
	parts := strings.Split(eq[1], ":")
	if len(parts) != 2 && len(parts) != 3 {
		return GroupSpec{}, fmt.Errorf("group %q: want g=type:capacity[:min]", v)
	}
	capacity, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return GroupSpec{}, fmt.Errorf("group %q: bad capacity: %w", v, err)
	}
	min := defaultMin
	if len(parts) == 3 {
		if min, err = strconv.Atoi(parts[2]); err != nil {
			return GroupSpec{}, fmt.Errorf("group %q: bad min: %w", v, err)
		}
	}
	typ, err := cloud.DefaultCatalog().ByName(strings.TrimSpace(parts[0]))
	if err != nil {
		return GroupSpec{}, fmt.Errorf("group %q: %w", v, err)
	}
	return GroupSpec{
		Group:       id,
		TypeName:    typ.Name,
		CostPerHour: typ.PricePerHour,
		Capacity:    capacity,
		Min:         min,
	}, nil
}

// Decision kinds.
const (
	// DecisionReconcile is a plain control cycle.
	DecisionReconcile = "reconcile"
	// DecisionRepair marks a cycle that replaced dead capacity.
	DecisionRepair = "repair"
)

// managed is one surrogate under reconciler control.
type managed struct {
	id      string
	backend Backend
	group   int // -1 while warm
}

// Decision is one slot's control-cycle outcome — the audit log entry
// the decision digest hashes.
type Decision struct {
	// Kind classifies the decision: "reconcile" for a plain control
	// cycle, "repair" when the cycle also replaced probe-confirmed-dead
	// backends from the warm pool.
	Kind string `json:"kind"`
	// Slot is the 0-based slot index.
	Slot int `json:"slot"`
	// Observed is the per-managed-group demand of the slot that just
	// ended, in Config.Groups order.
	Observed []int `json:"observed"`
	// Predicted is the model's estimate for the next slot.
	Predicted []int `json:"predicted"`
	// Desired is the allocator's target pool size per group.
	Desired []int `json:"desired"`
	// Applied is the active pool size per group after reconciling.
	Applied []int `json:"applied"`
	// Repaired counts the dead backends replaced per group this slot.
	Repaired []int `json:"repaired,omitempty"`
	// Activated counts the scale-to-zero cold starts per group this
	// slot (front-end cold-pool reactivations). Nil when no backend was
	// activated — absent entirely in digests of cold-pool-free runs, so
	// historical digests are unaffected.
	Activated []int `json:"activated,omitempty"`
	// Warm and Draining count the off-rotation surrogates.
	Warm     int `json:"warm"`
	Draining int `json:"draining"`
	// CostUSD is the slot's instance bill (active + draining + warm).
	CostUSD float64 `json:"costUSD"`
	// Feasible is false when demand exceeded the cloud cap and the
	// controller held the previous pools.
	Feasible bool `json:"feasible"`
}

// Controller is the reconciler. It is not safe for concurrent use: one
// control loop drives it, slot by slot.
type Controller struct {
	cfg     Config
	groups  []GroupSpec // sorted by Group
	session *predict.Session
	alloc   *allocate.Allocator

	active   map[int][]*managed // per group, registration order
	draining []*managed
	warm     []*managed

	// quiet counts slots since the last scale action per group.
	quiet map[int]int

	decisions []Decision
	bootSeq   int
	slotIdx   int
	numGroups int // max group index + 1, for slot padding
}

// New validates the configuration and builds an idle controller; call
// Prime before serving traffic.
func New(cfg Config) (*Controller, error) {
	if cfg.FrontEnd == nil {
		return nil, errors.New("autoscale: nil front-end")
	}
	if cfg.Provisioner == nil {
		return nil, errors.New("autoscale: nil provisioner")
	}
	if len(cfg.Groups) == 0 {
		return nil, errors.New("autoscale: no group specs")
	}
	if cfg.SlotLen <= 0 {
		return nil, fmt.Errorf("autoscale: slot length %v <= 0", cfg.SlotLen)
	}
	if cfg.WarmPool < 0 || cfg.ScaleDownMargin < 0 || cfg.CooldownSlots < 0 {
		return nil, errors.New("autoscale: negative warm pool, margin, or cooldown")
	}
	if cfg.WarmPool == 0 {
		cfg.WarmPool = 1
	}
	if cfg.ScaleDownMargin == 0 {
		cfg.ScaleDownMargin = 1
	}
	if cfg.CooldownSlots == 0 {
		cfg.CooldownSlots = 1
	}
	if cfg.Predictor == nil {
		cfg.Predictor = predict.EditDistanceNN{}
	}
	if cfg.RNG == nil {
		cfg.RNG = sim.NewRNG(1)
	}
	groups := make([]GroupSpec, len(cfg.Groups))
	copy(groups, cfg.Groups)
	sort.Slice(groups, func(i, j int) bool { return groups[i].Group < groups[j].Group })
	numGroups := 0
	seen := map[int]bool{}
	specs := make([]allocate.Spec, 0, len(groups))
	for i := range groups {
		g := &groups[i]
		if g.Group < 0 {
			return nil, fmt.Errorf("autoscale: negative group %d", g.Group)
		}
		if seen[g.Group] {
			return nil, fmt.Errorf("autoscale: duplicate group %d", g.Group)
		}
		seen[g.Group] = true
		if g.TypeName == "" {
			return nil, fmt.Errorf("autoscale: group %d without type name", g.Group)
		}
		if g.Capacity <= 0 {
			return nil, fmt.Errorf("autoscale: group %d capacity %v <= 0", g.Group, g.Capacity)
		}
		if g.CostPerHour < 0 {
			return nil, fmt.Errorf("autoscale: group %d negative cost", g.Group)
		}
		if g.Min < 0 {
			return nil, fmt.Errorf("autoscale: group %d negative min", g.Group)
		}
		if g.Min == 0 {
			g.Min = 1
		}
		if g.Group+1 > numGroups {
			numGroups = g.Group + 1
		}
		// The allocator's demand index is the position in sorted order.
		specs = append(specs, allocate.Spec{
			TypeName:    g.TypeName,
			Group:       i,
			CostPerHour: g.CostPerHour,
			Capacity:    g.Capacity,
		})
	}
	session, err := predict.NewSession(cfg.Predictor, cfg.MaxHistory)
	if err != nil {
		return nil, err
	}
	alloc, err := allocate.NewAllocator(specs, len(groups), cfg.CC)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:       cfg,
		groups:    groups,
		session:   session,
		alloc:     alloc,
		active:    make(map[int][]*managed, len(groups)),
		quiet:     make(map[int]int, len(groups)),
		numGroups: numGroups,
	}
	for _, g := range groups {
		c.quiet[g.Group] = cfg.CooldownSlots // allow a first-slot scale-down
	}
	return c, nil
}

// NumGroups reports the slot width (max managed group index + 1) the
// controller expects from its trace window.
func (c *Controller) NumGroups() int { return c.numGroups }

// boot provisions one surrogate with a deterministic id.
func (c *Controller) boot(ctx context.Context) (*managed, error) {
	id := fmt.Sprintf("as-%d-%08x", c.bootSeq, uint32(c.cfg.RNG.Sub("autoscale-id").SubN("boot", c.bootSeq).Seed()))
	c.bootSeq++
	b, err := c.cfg.Provisioner.Boot(ctx, id)
	if err != nil {
		return nil, fmt.Errorf("autoscale: boot %s: %w", id, err)
	}
	return &managed{id: id, backend: b, group: -1}, nil
}

// takeWarm pops the oldest warm surrogate, booting a fresh one when the
// pool is empty (the cold path scale-ups normally avoid).
func (c *Controller) takeWarm(ctx context.Context) (*managed, error) {
	if len(c.warm) > 0 {
		m := c.warm[0]
		c.warm = c.warm[1:]
		return m, nil
	}
	return c.boot(ctx)
}

// refillWarm tops the warm pool back up to its configured size.
func (c *Controller) refillWarm(ctx context.Context) error {
	for len(c.warm) < c.cfg.WarmPool {
		m, err := c.boot(ctx)
		if err != nil {
			return err
		}
		c.warm = append(c.warm, m)
	}
	return nil
}

// reclaimDraining un-drains the newest draining backend of a group, if
// any: Register flips a draining backend back to active in place, so a
// prediction flap (drain in slot t, scale-up in slot t+1) costs
// nothing — no boot, no churn, and its in-flight work was never at
// risk.
func (c *Controller) reclaimDraining(group int) *managed {
	for i := len(c.draining) - 1; i >= 0; i-- {
		if c.draining[i].group == group {
			m := c.draining[i]
			c.draining = append(c.draining[:i], c.draining[i+1:]...)
			return m
		}
	}
	return nil
}

// scaleUp grows a group by n: draining backends of the same group are
// reclaimed in place first, then warm surrogates are registered.
func (c *Controller) scaleUp(ctx context.Context, group, n int) error {
	for i := 0; i < n; i++ {
		if m := c.reclaimDraining(group); m != nil {
			if err := c.cfg.FrontEnd.Register(group, m.backend.URL()); err != nil {
				return fmt.Errorf("autoscale: un-drain in group %d: %w", group, err)
			}
			c.active[group] = append(c.active[group], m)
			continue
		}
		m, err := c.takeWarm(ctx)
		if err != nil {
			return err
		}
		if err := c.cfg.FrontEnd.Register(group, m.backend.URL()); err != nil {
			c.warm = append(c.warm, m) // keep the surrogate; retry next slot
			return fmt.Errorf("autoscale: register in group %d: %w", group, err)
		}
		m.group = group
		c.active[group] = append(c.active[group], m)
	}
	return nil
}

// scaleDown drains the n newest actives of a group; they finish their
// in-flight requests and return to the warm pool once idle.
func (c *Controller) scaleDown(group, n int) error {
	pool := c.active[group]
	if n > len(pool) {
		n = len(pool)
	}
	keep := len(pool) - n
	for _, m := range pool[keep:] {
		if err := c.cfg.FrontEnd.Drain(group, m.backend.URL()); err != nil {
			return fmt.Errorf("autoscale: drain %s: %w", m.id, err)
		}
		c.draining = append(c.draining, m)
	}
	c.active[group] = pool[:keep]
	return nil
}

// reap removes quiesced draining surrogates from the front-end and
// returns them all to the warm pool — temporarily unbounded, so a
// scale-up later in the same control cycle reuses them instead of
// booting fresh instances. trimWarm restores the cap at cycle end.
func (c *Controller) reap() error {
	remaining := c.draining[:0]
	for _, m := range c.draining {
		n, err := c.cfg.FrontEnd.Inflight(m.group, m.backend.URL())
		if err != nil {
			return fmt.Errorf("autoscale: reap %s: %w", m.id, err)
		}
		if n > 0 {
			remaining = append(remaining, m)
			continue
		}
		if err := c.cfg.FrontEnd.Remove(m.group, m.backend.URL()); err != nil {
			// A request may have landed between the checks; retry next
			// slot rather than abandoning in-flight work.
			if errors.Is(err, sdn.ErrBackendBusy) {
				remaining = append(remaining, m)
				continue
			}
			return fmt.Errorf("autoscale: remove %s: %w", m.id, err)
		}
		m.group = -1
		c.warm = append(c.warm, m)
	}
	c.draining = remaining
	return nil
}

// trimWarm terminates warm surrogates beyond the configured cap,
// newest first — the warm pool is a fixed-size buffer at the end of
// every cycle, not a graveyard.
func (c *Controller) trimWarm() {
	for len(c.warm) > c.cfg.WarmPool {
		m := c.warm[len(c.warm)-1]
		c.warm = c.warm[:len(c.warm)-1]
		_ = m.backend.Close()
	}
}

// Prime boots the warm pool and each group's Min actives — the initial
// deployment before traffic arrives.
func (c *Controller) Prime(ctx context.Context) error {
	for _, g := range c.groups {
		if err := c.scaleUp(ctx, g.Group, g.Min); err != nil {
			return err
		}
	}
	return c.refillWarm(ctx)
}

// observedDemands extracts the managed groups' demands from a slot, in
// sorted group order.
func (c *Controller) observedDemands(slot trace.Slot) []int {
	counts := slot.Counts()
	out := make([]int, len(c.groups))
	for i, g := range c.groups {
		if g.Group < len(counts) {
			out[i] = counts[g.Group]
		}
	}
	return out
}

// repair evicts probe-confirmed-dead backends and replaces each from
// the warm pool — capacity restoration BEFORE the scaling decision, so
// the allocator plans against pools that actually serve. Only backends
// this controller manages as active are repaired: a dead draining
// backend quiesces through reap, and warm spares are not registered
// anywhere a prober could watch. Returns per-managed-group repair
// counts in sorted group order.
func (c *Controller) repair(ctx context.Context) ([]int, error) {
	repaired := make([]int, len(c.groups))
	if c.cfg.Health == nil {
		return repaired, nil
	}
	for i, g := range c.groups {
		for _, url := range c.cfg.Health.Down(g.Group) {
			idx := -1
			for j, m := range c.active[g.Group] {
				if m.backend.URL() == url {
					idx = j
					break
				}
			}
			if idx < 0 {
				continue
			}
			m := c.active[g.Group][idx]
			c.active[g.Group] = append(c.active[g.Group][:idx], c.active[g.Group][idx+1:]...)
			if err := c.cfg.FrontEnd.Evict(g.Group, url); err != nil && !errors.Is(err, sdn.ErrUnknownBackend) {
				return nil, fmt.Errorf("autoscale: evict dead %s: %w", m.id, err)
			}
			_ = m.backend.Close()
			c.cfg.Health.Forget(g.Group, url)
			if err := c.scaleUp(ctx, g.Group, 1); err != nil {
				return nil, fmt.Errorf("autoscale: repair group %d: %w", g.Group, err)
			}
			repaired[i]++
		}
	}
	return repaired, nil
}

// Step runs one control cycle for a just-completed slot: repair dead
// capacity, reap drained surrogates, feed the slot to the predictor,
// allocate for the prediction, reconcile the pools, refill the warm
// pool, and record the decision.
func (c *Controller) Step(ctx context.Context, slot trace.Slot) (Decision, error) {
	repaired, err := c.repair(ctx)
	if err != nil {
		return Decision{}, err
	}
	if err := c.reap(); err != nil {
		return Decision{}, err
	}
	c.session.Observe(slot)
	pred, err := c.session.Predict()
	if err != nil {
		return Decision{}, err
	}
	observed := c.observedDemands(slot)
	predicted := c.observedDemands(pred)
	demands := make([]float64, len(c.groups))
	for i, n := range predicted {
		demands[i] = float64(n)
	}
	plan, err := c.alloc.Allocate(demands)
	if err != nil {
		return Decision{}, err
	}

	dec := Decision{
		Kind:      DecisionReconcile,
		Slot:      c.slotIdx,
		Observed:  observed,
		Predicted: predicted,
		Desired:   make([]int, len(c.groups)),
		Applied:   make([]int, len(c.groups)),
		Repaired:  repaired,
		Feasible:  plan.Feasible,
	}
	for _, n := range repaired {
		if n > 0 {
			dec.Kind = DecisionRepair
			break
		}
	}
	// Scale-to-zero reactivations since the last cycle: each cold start
	// stalled a request for the activation latency, billed below at the
	// group's instance rate.
	if acts := c.cfg.FrontEnd.TakeActivations(); len(acts) > 0 {
		dec.Activated = make([]int, len(c.groups))
		for i, g := range c.groups {
			dec.Activated[i] = int(acts[g.Group])
		}
	}
	for i, g := range c.groups {
		cur := len(c.active[g.Group])
		desired := cur // infeasible plans hold the current deployment
		if plan.Feasible {
			desired = plan.Counts[g.TypeName]
			if desired < g.Min {
				desired = g.Min
			}
		}
		dec.Desired[i] = desired
		switch {
		case desired > cur:
			// Scale up immediately: under-provisioning burns the SLO.
			if err := c.scaleUp(ctx, g.Group, desired-cur); err != nil {
				return Decision{}, err
			}
			c.quiet[g.Group] = 0
		case desired < cur && cur-desired >= c.cfg.ScaleDownMargin && c.quiet[g.Group] >= c.cfg.CooldownSlots:
			if err := c.scaleDown(g.Group, cur-desired); err != nil {
				return Decision{}, err
			}
			c.quiet[g.Group] = 0
		default:
			c.quiet[g.Group]++
		}
		dec.Applied[i] = len(c.active[g.Group])
	}
	if err := c.refillWarm(ctx); err != nil {
		return Decision{}, err
	}
	c.trimWarm()
	dec.Warm = len(c.warm)
	dec.Draining = len(c.draining)
	dec.CostUSD = c.slotCost()
	if dec.Activated != nil {
		// Cold starts are not free capacity: bill each activation's
		// stall at the group's instance rate for the activation window.
		coldHours := c.cfg.FrontEnd.ColdStartLatency().Hours()
		for i, g := range c.groups {
			dec.CostUSD += float64(dec.Activated[i]) * coldHours * g.CostPerHour
		}
	}
	c.decisions = append(c.decisions, dec)
	c.slotIdx++
	return dec, nil
}

// slotCost bills one slot: active and draining surrogates at their
// group's rate, warm spares at the cheapest configured rate (they are
// running, just unassigned).
func (c *Controller) slotCost() float64 {
	hours := c.cfg.SlotLen.Hours()
	cheapest := c.groups[0].CostPerHour
	byGroup := make(map[int]float64, len(c.groups))
	for _, g := range c.groups {
		byGroup[g.Group] = g.CostPerHour
		if g.CostPerHour < cheapest {
			cheapest = g.CostPerHour
		}
	}
	cost := 0.0
	for _, g := range c.groups {
		cost += float64(len(c.active[g.Group])) * g.CostPerHour * hours
	}
	for _, m := range c.draining {
		cost += byGroup[m.group] * hours
	}
	cost += float64(len(c.warm)) * cheapest * hours
	return cost
}

// Decisions returns the audit log, one entry per Step.
func (c *Controller) Decisions() []Decision {
	out := make([]Decision, len(c.decisions))
	copy(out, c.decisions)
	return out
}

// PoolSizes reports the current active pool size per managed group.
func (c *Controller) PoolSizes() map[int]int {
	out := make(map[int]int, len(c.groups))
	for _, g := range c.groups {
		out[g.Group] = len(c.active[g.Group])
	}
	return out
}

// WarmSize reports the warm pool size; DrainingSize the backends still
// finishing in-flight work.
func (c *Controller) WarmSize() int     { return len(c.warm) }
func (c *Controller) DrainingSize() int { return len(c.draining) }

// Digest hashes the decision sequence — the allocation digest two
// same-seed end-to-end runs must agree on bit-for-bit.
func (c *Controller) Digest() string {
	h := fnv.New64a()
	buf := make([]byte, 8)
	writeInt := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(v) >> (8 * i))
		}
		_, _ = h.Write(buf)
	}
	for _, d := range c.decisions {
		writeInt(int64(d.Slot))
		if d.Feasible {
			writeInt(1)
		} else {
			writeInt(0)
		}
		for i := range c.groups {
			writeInt(int64(d.Observed[i]))
			writeInt(int64(d.Predicted[i]))
			writeInt(int64(d.Desired[i]))
			writeInt(int64(d.Applied[i]))
			// Repair decisions are part of the audited behaviour: a
			// same-seed run must replace the same dead backends in the
			// same slots.
			if len(d.Repaired) > 0 {
				writeInt(int64(d.Repaired[i]))
			} else {
				writeInt(0)
			}
			// Cold-pool activations hash only when present: runs
			// without scale-to-zero keep their historical digests.
			if len(d.Activated) > 0 {
				writeInt(int64(d.Activated[i]))
			}
		}
		writeInt(int64(d.Warm))
		writeInt(int64(d.Draining))
		writeInt(int64(d.CostUSD * 1e6)) // micro-dollars: exact for list prices
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}

// Shutdown closes every managed surrogate (active, draining, warm). The
// front-end keeps its registrations; callers tearing down a whole stack
// close the front-end first.
func (c *Controller) Shutdown() {
	for _, g := range c.groups {
		for _, m := range c.active[g.Group] {
			_ = m.backend.Close()
		}
		c.active[g.Group] = nil
	}
	for _, m := range c.draining {
		_ = m.backend.Close()
	}
	c.draining = nil
	for _, m := range c.warm {
		_ = m.backend.Close()
	}
	c.warm = nil
}
