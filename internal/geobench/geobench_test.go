package geobench

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestRunSmoke drives a downsized run of all three scenarios and pins
// the report invariants the diffGeo gates build on: every region serves
// a sweep segment with the far regions paying their RTT, the decision
// digest reproduces across same-seed runs, saturation spills without
// losing calls, and the seeded region kill loses nothing and is
// detected within the bound.
func TestRunSmoke(t *testing.T) {
	cfg := Config{Seed: 7, Requests: 16, Workers: 4}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	for _, name := range []string{"eu-north", "us-east", "ap-south"} {
		rs, ok := rep.Regions[name]
		if !ok || rs.Requests == 0 || rs.P99Ms <= 0 {
			t.Fatalf("region %s missing from the sweep: %+v", name, rep.Regions)
		}
	}
	// The far regions' p99 must carry their propagation penalty.
	if rep.Regions["ap-south"].P99Ms < 180 {
		t.Fatalf("ap-south p99 %.1f ms below its 180 ms propagation", rep.Regions["ap-south"].P99Ms)
	}
	if !strings.HasPrefix(rep.DecisionDigest, "fnv1a:") {
		t.Fatalf("decision digest = %q", rep.DecisionDigest)
	}
	if rep.SpillCalls == 0 || rep.SpilloverRate <= 0 {
		t.Fatalf("no spillover measured: %+v", rep)
	}
	if rep.LostInFlight != 0 {
		t.Fatalf("%d in-flight calls lost across the region kill", rep.LostInFlight)
	}
	if rep.FailoverRecoverMs <= 0 || rep.FailoverRecoverMs > 5000 {
		t.Fatalf("failover recover %.1f ms out of bounds", rep.FailoverRecoverMs)
	}
	if rep.VictimRegion != "alpha" && rep.VictimRegion != "beta" {
		t.Fatalf("victim = %q", rep.VictimRegion)
	}
	for _, want := range []string{"geo sweep", "spillover", "failover", rep.DecisionDigest} {
		if !strings.Contains(rep.Summary(), want) {
			t.Fatalf("summary missing %q:\n%s", want, rep.Summary())
		}
	}

	rep2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.DecisionDigest != rep.DecisionDigest {
		t.Fatalf("sweep decision digests diverged across same-seed runs: %s vs %s",
			rep2.DecisionDigest, rep.DecisionDigest)
	}
	if rep2.ScheduleDigest != rep.ScheduleDigest || rep2.FailoverDigest != rep.FailoverDigest {
		t.Fatalf("failover digests diverged: %s/%s vs %s/%s",
			rep2.ScheduleDigest, rep2.FailoverDigest, rep.ScheduleDigest, rep.FailoverDigest)
	}

	path := filepath.Join(t.TempDir(), "geo.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rep) {
		t.Fatalf("round trip mutated the report:\n%+v\n%+v", back, rep)
	}
}

// TestReadReportRejectsForeignSchema keeps benchdiff's dispatch honest:
// a geobench reader must refuse other benchmark artifacts.
func TestReadReportRejectsForeignSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema":"accelcloud/servebench/v1"}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
