// Package geobench measures the multi-region geo tier (internal/geo)
// end to end against hermetic deployments and emits the BENCH_geo.json
// artifact cmd/benchdiff gates:
//
//   - Geo sweep: a deterministic serial schedule replayed against a
//     three-region deployment with RTT simulation on, fencing regions
//     mid-schedule so every region serves a segment. The routing
//     decision sequence is a pure function of the schedule and the
//     fence slots, so its digest is gated exactly; the per-region p99
//     columns are sleep-dominated (the simulated device→region RTT is
//     charged into every call) and get the relative tolerance.
//   - Spillover: the home region's single admission slot saturates
//     under a concurrent burst and calls spill to the next-nearest
//     region with queue-full backpressure as the trigger. The gate is
//     a non-zero spillover rate under a hard ceiling — spillover must
//     happen and must stay the exception, not the rule.
//   - Failover: a seeded faults schedule with one region-outage event
//     (digest gated exactly) picks the victim region; the kill lands
//     while calls are in flight. The gates are zero lost in-flight
//     calls, a bounded kill→fence time-to-recover, and exact
//     reproduction of the region monitor's failover-event digest.
package geobench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"accelcloud/internal/faults"
	"accelcloud/internal/geo"
	"accelcloud/internal/health"
	"accelcloud/internal/loadgen"
	"accelcloud/internal/netsim"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
)

// Schema versions the geobench report format for cmd/benchdiff.
const Schema = "accelcloud/geobench/v1"

// Config sizes one geobench run.
type Config struct {
	// Seed roots the deterministic schedule and RTT streams.
	Seed int64
	// Requests is the sweep's schedule length; it is rounded up to a
	// multiple of the four sweep segments (0 selects 48).
	Requests int
	// Workers is the spillover burst concurrency (0 selects 8).
	Workers int
	// MatMulSize is the n of the n×n matmul task states (0 selects 8).
	MatMulSize int
	// Timeout bounds each request (0 selects 30s).
	Timeout time.Duration
}

func (c Config) normalized() Config {
	if c.Requests <= 0 {
		c.Requests = 48
	}
	if r := c.Requests % 4; r != 0 {
		c.Requests += 4 - r
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.MatMulSize <= 0 {
		c.MatMulSize = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// RegionStats is one region's slice of the sweep.
type RegionStats struct {
	Requests int     `json:"requests"`
	P99Ms    float64 `json:"p99Ms"`
}

// Report is the BENCH_geo.json artifact.
type Report struct {
	Schema   string `json:"schema"`
	Seed     int64  `json:"seed"`
	Requests int    `json:"requests"`
	Workers  int    `json:"workers"`

	// Geo sweep (scenario A): per-region latency plus the exact routing
	// decision digest.
	Regions        map[string]RegionStats `json:"regions"`
	DecisionDigest string                 `json:"decisionDigest"`

	// Spillover (scenario B).
	SpillCalls    int64   `json:"spillCalls"`
	SpillTotal    int64   `json:"spillTotal"`
	SpilloverRate float64 `json:"spilloverRate"`

	// Failover (scenario C) — seeded region kill.
	ScheduleDigest    string  `json:"scheduleDigest"`
	VictimRegion      string  `json:"victimRegion"`
	LostInFlight      int     `json:"lostInFlight"`
	FailoverRecoverMs float64 `json:"failoverRecoverMs"`
	FailoverDigest    string  `json:"failoverDigest"`
}

// Summary renders the human-readable table.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "geobench: %d sweep requests, %d burst workers\n", r.Requests, r.Workers)
	fmt.Fprintf(&b, "  geo sweep (three regions, RTT simulation on):\n")
	names := make([]string, 0, len(r.Regions))
	for name := range r.Regions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := r.Regions[name]
		fmt.Fprintf(&b, "    %-10s %4d requests  p99 %8.2f ms\n", name, rs.Requests, rs.P99Ms)
	}
	fmt.Fprintf(&b, "    decision digest %s\n", r.DecisionDigest)
	fmt.Fprintf(&b, "  spillover: %d/%d calls spilled (rate %.2f)\n", r.SpillCalls, r.SpillTotal, r.SpilloverRate)
	fmt.Fprintf(&b, "  failover: victim %s, %d lost in flight, recover %.1f ms\n",
		r.VictimRegion, r.LostInFlight, r.FailoverRecoverMs)
	fmt.Fprintf(&b, "    schedule digest %s\n", r.ScheduleDigest)
	fmt.Fprintf(&b, "    failover digest %s\n", r.FailoverDigest)
	return b.String()
}

// WriteFile writes the JSON report.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport parses a report and verifies its schema.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("geobench: decode report: %w", err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("geobench: schema %q, want %q", rep.Schema, Schema)
	}
	return &rep, nil
}

// ReadReportFile parses a report file.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	return ReadReport(f)
}

// operator returns the default operator the whole bench runs on.
func operator() (netsim.Operator, error) {
	ops, err := netsim.DefaultOperators()
	if err != nil {
		return netsim.Operator{}, err
	}
	return ops[0], nil
}

// states pre-generates n deterministic matmul states.
func states(seed int64, n, size int) ([]tasks.State, error) {
	gen := sim.NewRNG(seed).Stream("geobench-gen")
	out := make([]tasks.State, n)
	for i := range out {
		st, err := tasks.MatMul{}.Generate(gen, size)
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// runSweep measures scenario A: a serial replay across three regions,
// fencing the nearer regions segment by segment so each region serves a
// quarter of the schedule (the last quarter returns home), with the
// simulated device→region RTT charged into every call's latency.
func runSweep(ctx context.Context, cfg Config, rep *Report) error {
	op, err := operator()
	if err != nil {
		return err
	}
	dep, err := geo.StartDeployment(ctx, []geo.RegionSpec{
		{Name: "eu-north", PropagationMs: 0},
		{Name: "us-east", PropagationMs: 90},
		{Name: "ap-south", PropagationMs: 180},
	})
	if err != nil {
		return err
	}
	defer dep.Close()
	regions, err := dep.Regions(op, netsim.TechLTE, false)
	if err != nil {
		return err
	}
	c, err := geo.New(regions,
		geo.WithRTTSimulation(cfg.Seed),
		geo.WithClientOptions(rpc.WithTimeout(cfg.Timeout)))
	if err != nil {
		return err
	}
	sts, err := states(cfg.Seed, cfg.Requests, cfg.MatMulSize)
	if err != nil {
		return err
	}
	// Segment boundaries: home → eu fenced → eu+us fenced → recovered.
	seg := cfg.Requests / 4
	hists := map[string]*stats.LogHist{}
	counts := map[string]int{}
	decisions := make([]geo.Decision, 0, cfg.Requests)
	for i, st := range sts {
		switch i {
		case seg:
			if err := c.Regions().MarkDown("eu-north"); err != nil {
				return err
			}
		case 2 * seg:
			if err := c.Regions().MarkDown("us-east"); err != nil {
				return err
			}
		case 3 * seg:
			if err := c.Regions().MarkUp("eu-north"); err != nil {
				return err
			}
			if err := c.Regions().MarkUp("us-east"); err != nil {
				return err
			}
		}
		start := time.Now()
		_, d, err := c.OffloadRoute(ctx, rpc.OffloadRequest{
			UserID: i % 4, Group: 1, BatteryLevel: 0.9, State: st,
		})
		if err != nil {
			return fmt.Errorf("sweep request %d: %w", i, err)
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		h := hists[d.Region]
		if h == nil {
			h = stats.NewLatencyHist()
			hists[d.Region] = h
		}
		h.Add(ms)
		counts[d.Region]++
		decisions = append(decisions, d)
	}
	rep.Regions = make(map[string]RegionStats, len(hists))
	for name, h := range hists {
		p99, err := h.Quantile(0.99)
		if err != nil {
			return err
		}
		rep.Regions[name] = RegionStats{Requests: counts[name], P99Ms: p99}
	}
	rep.DecisionDigest = geo.DigestDecisions(decisions)
	return nil
}

// runSpillover measures scenario B: the home region gets one slow
// admission slot, a concurrent burst saturates it, and the overflow is
// served by the far region under queue-full backpressure.
func runSpillover(ctx context.Context, cfg Config, rep *Report) error {
	op, err := operator()
	if err != nil {
		return err
	}
	slow := func(id string, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(20 * time.Millisecond)
			h.ServeHTTP(w, r)
		})
	}
	dep, err := geo.StartDeployment(ctx, []geo.RegionSpec{
		{Name: "near", PropagationMs: 0, Cluster: loadgen.ClusterConfig{
			QueueLimit: 1, QueueDepth: 1, WrapBackend: slow,
		}},
		{Name: "far", PropagationMs: 80},
	})
	if err != nil {
		return err
	}
	defer dep.Close()
	regions, err := dep.Regions(op, netsim.TechLTE, false)
	if err != nil {
		return err
	}
	c, err := geo.New(regions, geo.WithClientOptions(rpc.WithTimeout(cfg.Timeout)))
	if err != nil {
		return err
	}
	const perWorker = 4
	sts, err := states(cfg.Seed+1, cfg.Workers*perWorker, cfg.MatMulSize)
	if err != nil {
		return err
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		runErr error
	)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, _, err := c.OffloadRoute(ctx, rpc.OffloadRequest{
					UserID: w, Group: 1, BatteryLevel: 0.9, State: sts[w*perWorker+i],
				})
				if err != nil {
					mu.Lock()
					if runErr == nil {
						runErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if runErr != nil {
		return runErr
	}
	rep.SpillTotal = int64(cfg.Workers * perWorker)
	rep.SpillCalls = c.Counters().Spills
	rep.SpilloverRate = float64(rep.SpillCalls) / float64(rep.SpillTotal)
	return nil
}

// runFailover measures scenario C: a seeded faults schedule selects the
// victim region, the kill lands under in-flight load, and the region
// monitor's detection closes the loop.
func runFailover(ctx context.Context, cfg Config, rep *Report) error {
	op, err := operator()
	if err != nil {
		return err
	}
	sched, err := faults.Generate(sim.NewRNG(cfg.Seed), faults.ScheduleConfig{
		Slots:         8,
		Groups:        []int{1},
		RegionOutages: 1,
	})
	if err != nil {
		return err
	}
	rep.ScheduleDigest = sched.Digest()
	if len(sched.Events) != 1 || sched.Events[0].Kind != faults.KindRegionOutage {
		return fmt.Errorf("geobench: schedule %+v, want one region outage", sched.Events)
	}
	names := []string{"alpha", "beta"}
	victim := names[sched.Events[0].Backend%len(names)]
	other := names[0]
	if other == victim {
		other = names[1]
	}
	rep.VictimRegion = victim
	dep, err := geo.StartDeployment(ctx, []geo.RegionSpec{
		{Name: victim, PropagationMs: 0},
		{Name: other, PropagationMs: 80},
	})
	if err != nil {
		return err
	}
	defer dep.Close()
	regions, err := dep.Regions(op, netsim.TechLTE, false)
	if err != nil {
		return err
	}
	c, err := geo.New(regions, geo.WithClientOptions(rpc.WithTimeout(cfg.Timeout)))
	if err != nil {
		return err
	}
	mon, err := c.Monitor(health.RegionMonitorConfig{ProbeTimeout: 250 * time.Millisecond})
	if err != nil {
		return err
	}
	sts, err := states(cfg.Seed+2, 16, cfg.MatMulSize)
	if err != nil {
		return err
	}
	// In-flight calls race the kill: each must complete, on the victim
	// or via failover — an error is a lost call.
	callErrs := make([]error, len(sts))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := range sts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, _, callErrs[i] = c.OffloadRoute(ctx, rpc.OffloadRequest{
				UserID: i, Group: 1, BatteryLevel: 0.9, State: sts[i],
			})
		}(i)
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	killedAt := time.Now()
	if err := dep.Kill(victim); err != nil {
		return err
	}
	wg.Wait()
	for _, err := range callErrs {
		if err != nil {
			rep.LostInFlight++
		}
	}
	// Detection: probe until the victim is fenced; kill→fence wall time
	// is the time-to-recover.
	detected := false
	for i := 0; i < 100 && !detected; i++ {
		mon.ProbeOnce(ctx)
		for _, down := range mon.Down() {
			if down == victim {
				detected = true
			}
		}
	}
	if !detected {
		return fmt.Errorf("geobench: monitor never fenced killed region %q", victim)
	}
	rep.FailoverRecoverMs = float64(time.Since(killedAt)) / float64(time.Millisecond)
	rep.FailoverDigest = mon.EventsDigest()
	return nil
}

// Run executes all three scenarios and assembles the report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.normalized()
	rep := &Report{
		Schema:   Schema,
		Seed:     cfg.Seed,
		Requests: cfg.Requests,
		Workers:  cfg.Workers,
	}
	if err := runSweep(ctx, cfg, rep); err != nil {
		return nil, fmt.Errorf("geobench: sweep: %w", err)
	}
	if err := runSpillover(ctx, cfg, rep); err != nil {
		return nil, fmt.Errorf("geobench: spillover: %w", err)
	}
	if err := runFailover(ctx, cfg, rep); err != nil {
		return nil, fmt.Errorf("geobench: failover: %w", err)
	}
	return rep, nil
}
