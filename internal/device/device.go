// Package device models the mobile side of the architecture: device
// hardware profiles (the paper's motivation is the spread from flagship
// phones to wearables, §I), a battery model, the offloading decision rule
// of §II-A, and the client-side moderator that promotes a device to a
// higher acceleration group when response times degrade (§IV-A, §VI-C3).
package device

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"accelcloud/internal/cloud"
)

// Profile describes one class of mobile hardware.
type Profile struct {
	// Name identifies the class, e.g. "flagship".
	Name string
	// SpeedFactor is the device CPU speed relative to the reference
	// cloud core (well below 1 for phones).
	SpeedFactor float64
	// BatteryJoules is the usable battery energy when full.
	BatteryJoules float64
	// ComputeWatts is the drain while computing locally.
	ComputeWatts float64
	// RadioWatts is the drain while the LTE radio is active.
	RadioWatts float64
	// IdleWatts is the baseline drain.
	IdleWatts float64
}

// Validate checks profile plausibility.
func (p Profile) Validate() error {
	if p.Name == "" {
		return errors.New("device: profile without name")
	}
	if p.SpeedFactor <= 0 {
		return fmt.Errorf("device: %s speed factor %v", p.Name, p.SpeedFactor)
	}
	if p.BatteryJoules <= 0 {
		return fmt.Errorf("device: %s battery %v J", p.Name, p.BatteryJoules)
	}
	if p.ComputeWatts < 0 || p.RadioWatts < 0 || p.IdleWatts < 0 {
		return fmt.Errorf("device: %s negative power", p.Name)
	}
	return nil
}

// DefaultProfiles returns four device classes spanning the paper's
// "last generation smartphones … older devices and wearables" range.
// Battery energies correspond to ≈3000/2500/1800/300 mAh at 3.8 V.
func DefaultProfiles() []Profile {
	return []Profile{
		{Name: "flagship", SpeedFactor: 0.40, BatteryJoules: 41000, ComputeWatts: 3.0, RadioWatts: 1.2, IdleWatts: 0.05},
		{Name: "midrange", SpeedFactor: 0.22, BatteryJoules: 34000, ComputeWatts: 2.2, RadioWatts: 1.2, IdleWatts: 0.05},
		{Name: "legacy", SpeedFactor: 0.08, BatteryJoules: 25000, ComputeWatts: 1.8, RadioWatts: 1.4, IdleWatts: 0.06},
		{Name: "wearable", SpeedFactor: 0.03, BatteryJoules: 4100, ComputeWatts: 0.9, RadioWatts: 0.9, IdleWatts: 0.02},
	}
}

// ProfileByName finds a profile in a set.
func ProfileByName(profiles []Profile, name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("device: unknown profile %q", name)
}

// Device is one simulated handset.
type Device struct {
	id      int
	profile Profile
	group   int
	energy  float64 // joules remaining

	// moderator state
	consecutiveSlow int
	consecutiveFast int
}

// New creates a fully charged device starting in the given acceleration
// group (the paper starts every user in the lowest group, §IV-A).
func New(id int, p Profile, startGroup int) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if id < 0 {
		return nil, fmt.Errorf("device: negative id %d", id)
	}
	if startGroup < 0 {
		return nil, fmt.Errorf("device: negative group %d", startGroup)
	}
	return &Device{id: id, profile: p, group: startGroup, energy: p.BatteryJoules}, nil
}

// ID reports the device id.
func (d *Device) ID() int { return d.id }

// Profile reports the hardware profile.
func (d *Device) Profile() Profile { return d.profile }

// Group reports the current acceleration group.
func (d *Device) Group() int { return d.group }

// Promote moves the device one group higher (never past maxGroup) and
// resets the moderator state. It reports whether a move happened.
func (d *Device) Promote(maxGroup int) bool {
	if d.group >= maxGroup {
		return false
	}
	d.group++
	d.consecutiveSlow = 0
	d.consecutiveFast = 0
	return true
}

// Demote moves the device one group lower (never below minGroup) and
// resets the moderator state — the abstract's "a mobile device can be
// re-assigned to another group based on demand". It reports whether a
// move happened.
func (d *Device) Demote(minGroup int) bool {
	if d.group <= minGroup {
		return false
	}
	d.group--
	d.consecutiveSlow = 0
	d.consecutiveFast = 0
	return true
}

// SetGroup re-assigns the device (demotions are allowed: "a mobile device
// can be re-assigned to another group based on demand", abstract).
func (d *Device) SetGroup(g int) error {
	if g < 0 {
		return fmt.Errorf("device: negative group %d", g)
	}
	d.group = g
	return nil
}

// BatteryLevel reports remaining charge in [0, 1].
func (d *Device) BatteryLevel() float64 {
	lvl := d.energy / d.profile.BatteryJoules
	if lvl < 0 {
		return 0
	}
	if lvl > 1 {
		return 1
	}
	return lvl
}

// LocalExecTime is how long the device needs to run `work` units locally.
func (d *Device) LocalExecTime(work float64) time.Duration {
	rate := d.profile.SpeedFactor * cloud.RefCoreRate
	return time.Duration(work / rate * float64(time.Second))
}

// DrainCompute discharges the battery for local computation time.
func (d *Device) DrainCompute(dur time.Duration) {
	d.energy -= d.profile.ComputeWatts * dur.Seconds()
	if d.energy < 0 {
		d.energy = 0
	}
}

// DrainRadio discharges the battery for radio-active time (the connection
// stays open until the result returns, §VII-3).
func (d *Device) DrainRadio(dur time.Duration) {
	d.energy -= d.profile.RadioWatts * dur.Seconds()
	if d.energy < 0 {
		d.energy = 0
	}
}

// DrainIdle discharges the baseline load.
func (d *Device) DrainIdle(dur time.Duration) {
	d.energy -= d.profile.IdleWatts * dur.Seconds()
	if d.energy < 0 {
		d.energy = 0
	}
}

// Dead reports a fully drained battery.
func (d *Device) Dead() bool { return d.energy <= 0 }

// ShouldOffload is the classic cyber-foraging rule (§II-A): delegate the
// task if and only if the expected remote completion (network round trip
// plus remote execution) beats local execution.
func (d *Device) ShouldOffload(work float64, rtt time.Duration, remoteRate float64) bool {
	if remoteRate <= 0 {
		return false
	}
	remote := rtt + time.Duration(work/remoteRate*float64(time.Second))
	return remote < d.LocalExecTime(work)
}

// --- moderator -------------------------------------------------------------

// PromotionPolicy is the client-side moderator's promotion rule.
type PromotionPolicy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// ShouldPromote inspects one observed response time and decides
	// whether the device requests a higher acceleration group.
	ShouldPromote(d *Device, observed time.Duration, r *rand.Rand) bool
}

// StaticProbability is the paper's evaluation policy: each response
// promotes the device with fixed probability (1/50 in §VI-C3).
type StaticProbability struct {
	P float64
}

var _ PromotionPolicy = StaticProbability{}

// Name implements PromotionPolicy.
func (StaticProbability) Name() string { return "static-probability" }

// ShouldPromote implements PromotionPolicy.
func (s StaticProbability) ShouldPromote(_ *Device, _ time.Duration, r *rand.Rand) bool {
	return r.Float64() < s.P
}

// Threshold promotes after Patience consecutive responses slower than
// Target — the "response time starts to degrade" trigger of §I.
type Threshold struct {
	Target   time.Duration
	Patience int
}

var _ PromotionPolicy = Threshold{}

// Name implements PromotionPolicy.
func (Threshold) Name() string { return "threshold" }

// ShouldPromote implements PromotionPolicy.
func (t Threshold) ShouldPromote(d *Device, observed time.Duration, _ *rand.Rand) bool {
	patience := t.Patience
	if patience < 1 {
		patience = 1
	}
	if observed > t.Target {
		d.consecutiveSlow++
	} else {
		d.consecutiveSlow = 0
	}
	if d.consecutiveSlow >= patience {
		d.consecutiveSlow = 0
		return true
	}
	return false
}

// BatteryAware promotes when battery drops below MinLevel, shortening
// radio-on time at the cost of cloud spend (§VII-3), in addition to a
// response-time threshold.
type BatteryAware struct {
	MinLevel float64
	Target   time.Duration
}

var _ PromotionPolicy = BatteryAware{}

// Name implements PromotionPolicy.
func (BatteryAware) Name() string { return "battery-aware" }

// ShouldPromote implements PromotionPolicy.
func (b BatteryAware) ShouldPromote(d *Device, observed time.Duration, _ *rand.Rand) bool {
	if d.BatteryLevel() < b.MinLevel {
		return true
	}
	return b.Target > 0 && observed > b.Target
}

// Never keeps devices in their group; the ablation baseline.
type Never struct{}

var _ PromotionPolicy = Never{}

// Name implements PromotionPolicy.
func (Never) Name() string { return "never" }

// ShouldPromote implements PromotionPolicy.
func (Never) ShouldPromote(*Device, time.Duration, *rand.Rand) bool { return false }

// DemotionPolicy decides when a device releases its acceleration level —
// the cost-saving counterpart of promotion, enabling the "re-assigned
// based on demand" behaviour of the abstract.
type DemotionPolicy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// ShouldDemote inspects one observed response time.
	ShouldDemote(d *Device, observed time.Duration, r *rand.Rand) bool
}

// FastResponse demotes after Patience consecutive responses faster than
// Target: the device is over-served, so a cheaper group suffices.
type FastResponse struct {
	Target   time.Duration
	Patience int
}

var _ DemotionPolicy = FastResponse{}

// Name implements DemotionPolicy.
func (FastResponse) Name() string { return "fast-response" }

// ShouldDemote implements DemotionPolicy.
func (f FastResponse) ShouldDemote(d *Device, observed time.Duration, _ *rand.Rand) bool {
	patience := f.Patience
	if patience < 1 {
		patience = 1
	}
	if observed < f.Target {
		d.consecutiveFast++
	} else {
		d.consecutiveFast = 0
	}
	if d.consecutiveFast >= patience {
		d.consecutiveFast = 0
		return true
	}
	return false
}

// NoDemotion keeps devices at their earned level (the paper's behaviour).
type NoDemotion struct{}

var _ DemotionPolicy = NoDemotion{}

// Name implements DemotionPolicy.
func (NoDemotion) Name() string { return "no-demotion" }

// ShouldDemote implements DemotionPolicy.
func (NoDemotion) ShouldDemote(*Device, time.Duration, *rand.Rand) bool { return false }
