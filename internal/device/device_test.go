package device

import (
	"math"
	"testing"
	"time"

	"accelcloud/internal/cloud"
	"accelcloud/internal/sim"
)

func flagship(t *testing.T) Profile {
	t.Helper()
	p, err := ProfileByName(DefaultProfiles(), "flagship")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDefaultProfiles(t *testing.T) {
	ps := DefaultProfiles()
	if len(ps) != 4 {
		t.Fatalf("got %d profiles, want 4", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", p.Name, err)
		}
	}
	// Speed ordering: flagship > midrange > legacy > wearable.
	for i := 1; i < len(ps); i++ {
		if ps[i].SpeedFactor >= ps[i-1].SpeedFactor {
			t.Fatalf("profiles not ordered by speed: %s >= %s", ps[i].Name, ps[i-1].Name)
		}
	}
	if _, err := ProfileByName(ps, "tablet"); err == nil {
		t.Fatal("unknown profile should fail")
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x", SpeedFactor: 0, BatteryJoules: 1},
		{Name: "x", SpeedFactor: 1, BatteryJoules: 0},
		{Name: "x", SpeedFactor: 1, BatteryJoules: 1, ComputeWatts: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestNewDeviceValidation(t *testing.T) {
	p := flagship(t)
	if _, err := New(-1, p, 0); err == nil {
		t.Fatal("negative id should fail")
	}
	if _, err := New(1, Profile{}, 0); err == nil {
		t.Fatal("invalid profile should fail")
	}
	if _, err := New(1, p, -1); err == nil {
		t.Fatal("negative group should fail")
	}
	d, err := New(3, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID() != 3 || d.Group() != 1 || d.Profile().Name != "flagship" {
		t.Fatalf("device = %d/%d/%s", d.ID(), d.Group(), d.Profile().Name)
	}
	if d.BatteryLevel() != 1 {
		t.Fatalf("fresh battery = %v", d.BatteryLevel())
	}
}

func TestLocalExecTime(t *testing.T) {
	p := flagship(t) // speed 0.40 -> 80k units/s
	d, err := New(1, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := d.LocalExecTime(80_000)
	if got != time.Second {
		t.Fatalf("LocalExecTime = %v, want 1s", got)
	}
	// A wearable runs the same work far slower.
	w, err := ProfileByName(DefaultProfiles(), "wearable")
	if err != nil {
		t.Fatal(err)
	}
	wd, err := New(2, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if wd.LocalExecTime(80_000) <= 10*got {
		t.Fatal("wearable should be >10x slower than flagship")
	}
}

func TestBatteryDrain(t *testing.T) {
	p := Profile{Name: "x", SpeedFactor: 1, BatteryJoules: 100, ComputeWatts: 10, RadioWatts: 5, IdleWatts: 1}
	d, err := New(1, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.DrainCompute(5 * time.Second) // 50 J
	if math.Abs(d.BatteryLevel()-0.5) > 1e-9 {
		t.Fatalf("battery = %v, want 0.5", d.BatteryLevel())
	}
	d.DrainRadio(8 * time.Second) // 40 J
	if math.Abs(d.BatteryLevel()-0.1) > 1e-9 {
		t.Fatalf("battery = %v, want 0.1", d.BatteryLevel())
	}
	d.DrainIdle(20 * time.Second) // 20 J -> clamps at 0
	if d.BatteryLevel() != 0 || !d.Dead() {
		t.Fatalf("battery = %v dead=%v, want 0/true", d.BatteryLevel(), d.Dead())
	}
}

func TestShouldOffload(t *testing.T) {
	legacy, err := ProfileByName(DefaultProfiles(), "legacy")
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(1, legacy, 0) // 0.08 × 200k = 16k units/s locally
	if err != nil {
		t.Fatal(err)
	}
	work := 160_000.0 // 10 s locally
	cloudRate := cloud.RefCoreRate
	// 10s local vs 40ms RTT + 0.8s remote -> offload.
	if !d.ShouldOffload(work, 40*time.Millisecond, cloudRate) {
		t.Fatal("legacy device should offload heavy work over LTE")
	}
	// Tiny task: 6.25ms local vs 40ms RTT -> keep local.
	if d.ShouldOffload(100, 40*time.Millisecond, cloudRate) {
		t.Fatal("tiny work should stay local")
	}
	if d.ShouldOffload(100, time.Millisecond, 0) {
		t.Fatal("zero remote rate must mean no offload")
	}
}

func TestPromote(t *testing.T) {
	d, err := New(1, flagship(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Promote(2) || d.Group() != 1 {
		t.Fatalf("first promote -> group %d", d.Group())
	}
	if !d.Promote(2) || d.Group() != 2 {
		t.Fatalf("second promote -> group %d", d.Group())
	}
	if d.Promote(2) {
		t.Fatal("promotion past maxGroup must fail")
	}
	if err := d.SetGroup(0); err != nil || d.Group() != 0 {
		t.Fatal("SetGroup demotion failed")
	}
	if err := d.SetGroup(-1); err == nil {
		t.Fatal("negative SetGroup should fail")
	}
}

func TestStaticProbabilityPolicy(t *testing.T) {
	d, err := New(1, flagship(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	pol := StaticProbability{P: 1.0 / 50}
	r := sim.NewRNG(1).Stream("policy")
	hits := 0
	const n = 50_000
	for i := 0; i < n; i++ {
		if pol.ShouldPromote(d, time.Second, r) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.02) > 0.004 {
		t.Fatalf("promotion rate %v, want ≈1/50", got)
	}
	if pol.Name() != "static-probability" {
		t.Fatal("name wrong")
	}
}

func TestThresholdPolicy(t *testing.T) {
	d, err := New(1, flagship(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	pol := Threshold{Target: 500 * time.Millisecond, Patience: 3}
	fast, slow := 100*time.Millisecond, time.Second
	seq := []struct {
		obs  time.Duration
		want bool
	}{
		{slow, false}, {slow, false}, {fast, false}, // reset
		{slow, false}, {slow, false}, {slow, true}, // 3 consecutive
		{slow, false}, // counter reset after firing
	}
	for i, s := range seq {
		if got := pol.ShouldPromote(d, s.obs, nil); got != s.want {
			t.Fatalf("step %d: got %v, want %v", i, got, s.want)
		}
	}
	if pol.Name() != "threshold" {
		t.Fatal("name wrong")
	}
	// Patience < 1 behaves as 1.
	eager := Threshold{Target: 500 * time.Millisecond}
	if !eager.ShouldPromote(d, slow, nil) {
		t.Fatal("patience 0 should fire immediately")
	}
}

func TestBatteryAwarePolicy(t *testing.T) {
	p := Profile{Name: "x", SpeedFactor: 1, BatteryJoules: 100, ComputeWatts: 10, RadioWatts: 5, IdleWatts: 1}
	d, err := New(1, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	pol := BatteryAware{MinLevel: 0.3, Target: time.Second}
	if pol.ShouldPromote(d, 100*time.Millisecond, nil) {
		t.Fatal("full battery + fast response: no promotion")
	}
	if !pol.ShouldPromote(d, 2*time.Second, nil) {
		t.Fatal("slow response should promote")
	}
	d.DrainCompute(8 * time.Second) // 80 J -> 20% battery
	if !pol.ShouldPromote(d, 100*time.Millisecond, nil) {
		t.Fatal("low battery should promote regardless of response time")
	}
	if pol.Name() != "battery-aware" {
		t.Fatal("name wrong")
	}
}

func TestNeverPolicy(t *testing.T) {
	d, err := New(1, flagship(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if (Never{}).ShouldPromote(d, time.Hour, nil) {
		t.Fatal("Never must never promote")
	}
	if (Never{}).Name() != "never" {
		t.Fatal("name wrong")
	}
}

func TestPromoteResetsThresholdState(t *testing.T) {
	d, err := New(1, flagship(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	pol := Threshold{Target: time.Millisecond, Patience: 2}
	if pol.ShouldPromote(d, time.Second, nil) {
		t.Fatal("first slow response should not fire at patience 2")
	}
	d.Promote(3)
	// The slow counter was reset by the promotion; one more slow
	// response must not fire.
	if pol.ShouldPromote(d, time.Second, nil) {
		t.Fatal("counter should have been reset by Promote")
	}
}
