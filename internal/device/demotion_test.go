package device

import (
	"testing"
	"time"
)

func TestDemote(t *testing.T) {
	d, err := New(1, DefaultProfiles()[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Demote(0) || d.Group() != 1 {
		t.Fatalf("first demote -> group %d", d.Group())
	}
	if !d.Demote(0) || d.Group() != 0 {
		t.Fatalf("second demote -> group %d", d.Group())
	}
	if d.Demote(0) {
		t.Fatal("demotion below minGroup must fail")
	}
}

func TestFastResponsePolicy(t *testing.T) {
	d, err := New(1, DefaultProfiles()[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	pol := FastResponse{Target: 500 * time.Millisecond, Patience: 3}
	fast, slow := 100*time.Millisecond, time.Second
	seq := []struct {
		obs  time.Duration
		want bool
	}{
		{fast, false}, {fast, false}, {slow, false}, // reset
		{fast, false}, {fast, false}, {fast, true}, // 3 consecutive
		{fast, false}, // counter reset after firing
	}
	for i, s := range seq {
		if got := pol.ShouldDemote(d, s.obs, nil); got != s.want {
			t.Fatalf("step %d: got %v, want %v", i, got, s.want)
		}
	}
	if pol.Name() != "fast-response" {
		t.Fatal("name wrong")
	}
	// Patience < 1 behaves as 1.
	eager := FastResponse{Target: 500 * time.Millisecond}
	if !eager.ShouldDemote(d, fast, nil) {
		t.Fatal("patience 0 should fire immediately")
	}
}

func TestNoDemotion(t *testing.T) {
	d, err := New(1, DefaultProfiles()[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if (NoDemotion{}).ShouldDemote(d, time.Nanosecond, nil) {
		t.Fatal("NoDemotion fired")
	}
	if (NoDemotion{}).Name() != "no-demotion" {
		t.Fatal("name wrong")
	}
}

func TestPromoteAndDemoteResetCounters(t *testing.T) {
	d, err := New(1, DefaultProfiles()[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	demote := FastResponse{Target: time.Second, Patience: 2}
	if demote.ShouldDemote(d, time.Millisecond, nil) {
		t.Fatal("should not fire on first fast response")
	}
	// A promotion resets the fast counter.
	d.Promote(3)
	if demote.ShouldDemote(d, time.Millisecond, nil) {
		t.Fatal("counter should have been reset by Promote")
	}
	// And a demotion resets the slow counter.
	promote := Threshold{Target: time.Millisecond, Patience: 2}
	if promote.ShouldPromote(d, time.Second, nil) {
		t.Fatal("should not fire on first slow response")
	}
	d.Demote(0)
	if promote.ShouldPromote(d, time.Second, nil) {
		t.Fatal("counter should have been reset by Demote")
	}
}
