package router

import (
	"errors"
	"testing"
)

func TestRegionsPickFirstOrder(t *testing.T) {
	r, err := NewRegions("eu", "us", "ap")
	if err != nil {
		t.Fatal(err)
	}
	order := []string{"eu", "us", "ap"}

	p, err := r.PickFirst(order)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "eu" {
		t.Fatalf("picked %q, want home region eu", p.Name())
	}
	if n := r.Inflight("eu"); n != 1 {
		t.Fatalf("inflight(eu) = %d, want 1", n)
	}
	r.Release(p)
	if n := r.Inflight("eu"); n != 0 {
		t.Fatalf("inflight(eu) = %d after release, want 0", n)
	}

	// Home Down → spillover to next-nearest.
	if err := r.MarkDown("eu"); err != nil {
		t.Fatal(err)
	}
	p, err = r.PickFirst(order)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "us" {
		t.Fatalf("picked %q with eu down, want us", p.Name())
	}
	r.Release(p)

	// All Down → ErrNoRegion.
	if err := r.MarkDown("us"); err != nil {
		t.Fatal(err)
	}
	if err := r.MarkDown("ap"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.PickFirst(order); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("all-down pick error = %v, want ErrNoRegion", err)
	}

	// Recovery restores the preference order.
	if err := r.MarkUp("ap"); err != nil {
		t.Fatal(err)
	}
	p, err = r.PickFirst(order)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "ap" {
		t.Fatalf("picked %q with only ap up, want ap", p.Name())
	}
	r.Release(p)
}

func TestRegionsUnknownNamesSkipped(t *testing.T) {
	r, err := NewRegions("us")
	if err != nil {
		t.Fatal(err)
	}
	// A preference order naming unregistered regions skips them instead
	// of failing: a device's selector may know regions this deployment
	// does not run.
	p, err := r.PickFirst([]string{"eu", "us"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "us" {
		t.Fatalf("picked %q, want us", p.Name())
	}
	r.Release(p)
	if _, err := r.PickFirst([]string{"mars"}); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("unknown-only order error = %v, want ErrNoRegion", err)
	}
}

func TestRegionsAddRemoveErrors(t *testing.T) {
	r, err := NewRegions("eu")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Add(""); err == nil {
		t.Fatal("empty region name accepted")
	}
	if err := r.Add("eu"); err == nil {
		t.Fatal("duplicate region accepted")
	}
	if err := r.MarkDown("nope"); err == nil {
		t.Fatal("MarkDown on unknown region accepted")
	}
	if err := r.Remove("nope"); err == nil {
		t.Fatal("Remove on unknown region accepted")
	}

	// Remove refuses while a reservation is held, then succeeds.
	p, err := r.PickFirst([]string{"eu"})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Remove("eu"); err == nil {
		t.Fatal("Remove succeeded with a call in flight")
	}
	if _, ok := r.State("eu"); !ok {
		t.Fatal("failed Remove did not roll the region back")
	}
	r.Release(p)
	if err := r.Remove("eu"); err != nil {
		t.Fatalf("Remove after drain: %v", err)
	}
	if got := len(r.Names()); got != 0 {
		t.Fatalf("%d regions after removal, want 0", got)
	}
}

func TestRegionsView(t *testing.T) {
	r, err := NewRegions("eu", "us")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.MarkDown("us"); err != nil {
		t.Fatal(err)
	}
	v := r.View()
	if v["eu"] != "up" || v["us"] != "down" {
		t.Fatalf("view = %v, want eu up / us down", v)
	}
	if st, ok := r.State("us"); !ok || st != RegionDown {
		t.Fatalf("State(us) = %v/%v, want down/true", st, ok)
	}
}
