package router

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"accelcloud/internal/rpc"
	"accelcloud/internal/serve"
	"accelcloud/internal/tasks"
)

// blockingBackend serves /execute but holds every request until
// release is closed — the tool for pinning a backend's admission queue
// at capacity.
func blockingBackend(t *testing.T, release <-chan struct{}) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"server":"slow","result":{"task":"minimax"}}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func fastBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"server":"fast","result":{"task":"minimax"}}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func pickQueue(t *testing.T, r *Router, group int, url string) *serve.Queue {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		p, err := r.Pick(group)
		if err != nil {
			t.Fatal(err)
		}
		q := p.Queue()
		u := p.URL()
		r.Release(p, true)
		if u == url {
			return q
		}
	}
	t.Fatalf("never picked %s", url)
	return nil
}

// TestBackpressureFence is the serving-layer fence: a backend whose
// admission queue is pinned at capacity (limit + depth all blocked) is
// never picked, picks land on the unsaturated peer, and once the
// backlog drains the parked backend rejoins rotation. Run under -race
// this also exercises the Saturated gauge reads against concurrent
// Submit/dispatch traffic.
func TestBackpressureFence(t *testing.T) {
	release := make(chan struct{})
	slow := blockingBackend(t, release)
	fast := fastBackend(t)

	r := New(nil)
	if err := r.SetServeConfig(serve.Config{Limit: 1, Depth: 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(1, slow.URL); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(1, fast.URL); err != nil {
		t.Fatal(err)
	}

	// Pin the slow backend's queue: 1 executing + 2 queued.
	q := pickQueue(t, r, 1, slow.URL)
	if q == nil {
		t.Fatal("no admission queue on picked backend")
	}
	req := rpc.ExecuteRequest{State: tasks.State{Task: "minimax", Size: 1}}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = q.Submit(context.Background(), req)
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for !q.Saturated() {
		if time.Now().After(deadline) {
			t.Fatalf("queue never saturated: queued=%d executing=%d", q.Queued(), q.Executing())
		}
		time.Sleep(time.Millisecond)
	}

	// The fence: concurrent pickers must all steer to the fast backend.
	var pickers sync.WaitGroup
	for w := 0; w < 4; w++ {
		pickers.Add(1)
		go func() {
			defer pickers.Done()
			for i := 0; i < 200; i++ {
				p, err := r.Pick(1)
				if err != nil {
					t.Errorf("pick %d: %v", i, err)
					return
				}
				if p.URL() == slow.URL {
					t.Errorf("pick %d landed on the saturated backend", i)
				}
				r.Release(p, true)
			}
		}()
	}
	pickers.Wait()

	// /stats must surface the pressure while it exists.
	var slowInfo *BackendInfo
	for _, bi := range r.Pool(1) {
		if bi.URL == slow.URL {
			b := bi
			slowInfo = &b
		}
	}
	if slowInfo == nil {
		t.Fatal("saturated backend missing from pool info")
	}
	if slowInfo.Queued != 2 || slowInfo.ConcurrencyLimit != 1 {
		t.Fatalf("pool info = %+v, want queued 2 limit 1", slowInfo)
	}

	// Drain and verify the backend rejoins rotation.
	close(release)
	wg.Wait()
	deadline = time.Now().Add(2 * time.Second)
	for {
		p, err := r.Pick(1)
		if err != nil {
			t.Fatal(err)
		}
		u := p.URL()
		r.Release(p, true)
		if u == slow.URL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drained backend never rejoined rotation")
		}
	}
}

// TestPickAllSaturated proves the terminal case: when every active
// backend backpressures, Pick surfaces ErrGroupSaturated carrying the
// typed serve.ErrQueueFull marker, so the front-end's 503 is
// classifiable client-side.
func TestPickAllSaturated(t *testing.T) {
	release := make(chan struct{})
	slow := blockingBackend(t, release)

	r := New(nil)
	if err := r.SetServeConfig(serve.Config{Limit: 1, Depth: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(1, slow.URL); err != nil {
		t.Fatal(err)
	}
	q := pickQueue(t, r, 1, slow.URL)
	req := rpc.ExecuteRequest{State: tasks.State{Task: "minimax", Size: 1}}
	var wg sync.WaitGroup
	// Teardown order matters: release the blocked handler first, then
	// wait for the submits, then (the blockingBackend cleanup) close
	// the server. Cleanups run LIFO.
	t.Cleanup(wg.Wait)
	t.Cleanup(func() { close(release) })
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = q.Submit(context.Background(), req)
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for !q.Saturated() {
		if time.Now().After(deadline) {
			t.Fatal("queue never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := r.Pick(1)
	if !errors.Is(err, ErrGroupSaturated) {
		t.Fatalf("Pick = %v, want ErrGroupSaturated", err)
	}
	if !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("saturation error lost the queue-full marker: %v", err)
	}
}
