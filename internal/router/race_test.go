package router

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolMutationUnderLoad hammers Pick/Release from many goroutines
// while the control plane concurrently Registers, Drains, and Removes
// backends. Invariants proved under -race:
//
//   - a published snapshot never routes to a drained or removed
//     backend: once Drain/Remove returns, no later Pick resolves to it
//     (checked with per-backend fence counters),
//   - in-flight counts never go negative and return to zero,
//   - every pick lands on a backend that was registered at the time.
func TestPoolMutationUnderLoad(t *testing.T) {
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			policy, err := ParsePolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			hammerPoolMutation(t, policy)
		})
	}
}

func hammerPoolMutation(t *testing.T, policy Policy) {
	r := New(policy)
	const group = 7
	url := func(id int) string { return fmt.Sprintf("http://backend-%d", id) }

	// Each churned backend gets a fresh identity (never re-registered),
	// so fenced[id] flipping to 1 the moment its Drain returns is
	// permanent: any pick that *started* after the flip and still
	// resolved to id is a violation.
	const (
		maxRounds = 30
		churners  = 4
		maxIDs    = 2 + maxRounds*churners
	)
	rounds := maxRounds
	if testing.Short() {
		rounds = 8
	}
	var fenced [maxIDs]atomic.Int32
	var picksAfterFence atomic.Int64

	// Two stable backends (ids 0, 1) guarantee the pool is never empty.
	for i := 0; i < 2; i++ {
		if err := r.Register(group, url(i)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const pickers = 8
	var picks atomic.Int64
	for w := 0; w < pickers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Sample every fence flag BEFORE picking: if a backend
				// was already fenced when the pick started and the pick
				// still resolved to it, the snapshot protocol is broken.
				// (Sampling after the pick would also flag the benign
				// race of a fence landing mid-pick.)
				var preFenced [maxIDs]int32
				for i := range preFenced {
					preFenced[i] = fenced[i].Load()
				}
				p, err := r.Pick(group)
				if err != nil {
					// Transient no-active windows are impossible here
					// (two stable backends), so any error is a bug.
					t.Errorf("pick: %v", err)
					return
				}
				var idx int
				if _, err := fmt.Sscanf(p.URL(), "http://backend-%d", &idx); err != nil {
					t.Errorf("picked unknown backend %q", p.URL())
					return
				}
				if preFenced[idx] == 1 {
					picksAfterFence.Add(1)
				}
				if n, err := r.Inflight(group, p.URL()); err == nil && n < 1 {
					t.Errorf("in-flight count %d < 1 while holding a reservation", n)
				}
				r.Release(p, true)
				picks.Add(1)
			}
		}()
	}

	// The control plane churns fresh backends: register, let traffic
	// flow, drain (fence), then remove once idle.
	churn := func(id int) {
		u := url(id)
		if err := r.Register(group, u); err != nil {
			t.Errorf("register %s: %v", u, err)
			return
		}
		time.Sleep(time.Millisecond)
		if err := r.Drain(group, u); err != nil {
			t.Errorf("drain %s: %v", u, err)
			return
		}
		fenced[id].Store(1)
		// Wait for in-flight work to finish, then remove. Remove may
		// transiently report busy while reservations drain; that retry
		// loop is exactly the reconciler's reap path.
		deadline := time.Now().Add(10 * time.Second)
		for {
			if err := r.Remove(group, u); err == nil {
				return
			}
			if time.Now().After(deadline) {
				n, _ := r.Inflight(group, u)
				t.Errorf("remove %s never succeeded (%d in flight)", u, n)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	for round := 0; round < rounds; round++ {
		var cwg sync.WaitGroup
		for c := 0; c < churners; c++ {
			id := 2 + round*churners + c
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				churn(id)
			}()
		}
		cwg.Wait()
	}
	close(stop)
	wg.Wait()

	if n := picksAfterFence.Load(); n != 0 {
		t.Fatalf("%d picks resolved to a backend after its Drain/Remove returned", n)
	}
	if picks.Load() == 0 {
		t.Fatal("no picks completed")
	}
	// All reservations released: every in-flight count is back to zero
	// and only the two stable backends remain.
	for _, info := range r.Pool(group) {
		if info.Inflight != 0 {
			t.Fatalf("backend %s left with %d in flight", info.URL, info.Inflight)
		}
	}
	if got := r.Backends()[group]; got != 2 {
		t.Fatalf("final pool size = %d, want 2", got)
	}
}

// TestEjectFenceUnderLoad mirrors TestPoolMutationUnderLoad for the
// failure detector's lever: pickers hammer Pick/Release while churners
// register fresh backends, Eject them (fence), briefly Reinstate and
// re-Eject (the detector's flap path), then Evict. The fence-counter
// invariant proved under -race: once Eject returns, no Pick that
// STARTED after the return resolves to the ejected backend — the
// guarantee health-driven ejection needs so a crashed surrogate stops
// receiving traffic the moment it is ejected, not an RCU republish
// later.
func TestEjectFenceUnderLoad(t *testing.T) {
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			policy, err := ParsePolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			hammerEjectFence(t, policy)
		})
	}
}

func hammerEjectFence(t *testing.T, policy Policy) {
	r := New(policy)
	const group = 9
	url := func(id int) string { return fmt.Sprintf("http://backend-%d", id) }

	const (
		maxRounds = 30
		churners  = 4
		maxIDs    = 2 + maxRounds*churners
	)
	rounds := maxRounds
	if testing.Short() {
		rounds = 8
	}
	// fenced[id] flips to 1 the moment the backend's FINAL Eject
	// returns (after the reinstate flap); it never flips back because
	// churned identities are never reinstated again.
	var fenced [maxIDs]atomic.Int32
	var picksAfterFence atomic.Int64

	for i := 0; i < 2; i++ {
		if err := r.Register(group, url(i)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const pickers = 8
	var picks atomic.Int64
	for w := 0; w < pickers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var preFenced [maxIDs]int32
				for i := range preFenced {
					preFenced[i] = fenced[i].Load()
				}
				p, err := r.Pick(group)
				if err != nil {
					t.Errorf("pick: %v", err)
					return
				}
				var idx int
				if _, err := fmt.Sscanf(p.URL(), "http://backend-%d", &idx); err != nil {
					t.Errorf("picked unknown backend %q", p.URL())
					return
				}
				if preFenced[idx] == 1 {
					picksAfterFence.Add(1)
				}
				r.Release(p, true)
				picks.Add(1)
			}
		}()
	}

	churn := func(id int) {
		u := url(id)
		if err := r.Register(group, u); err != nil {
			t.Errorf("register %s: %v", u, err)
			return
		}
		time.Sleep(time.Millisecond)
		// Flap: eject, reinstate (traffic may resume), final eject.
		if err := r.Eject(group, u); err != nil {
			t.Errorf("eject %s: %v", u, err)
			return
		}
		if err := r.Reinstate(group, u); err != nil {
			t.Errorf("reinstate %s: %v", u, err)
			return
		}
		if err := r.Eject(group, u); err != nil {
			t.Errorf("final eject %s: %v", u, err)
			return
		}
		fenced[id].Store(1)
		// The repair path: evict regardless of in-flight state.
		if err := r.Evict(group, u); err != nil {
			t.Errorf("evict %s: %v", u, err)
		}
	}
	for round := 0; round < rounds; round++ {
		var cwg sync.WaitGroup
		for c := 0; c < churners; c++ {
			id := 2 + round*churners + c
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				churn(id)
			}()
		}
		cwg.Wait()
	}
	close(stop)
	wg.Wait()

	if n := picksAfterFence.Load(); n != 0 {
		t.Fatalf("%d picks resolved to a backend after its Eject returned", n)
	}
	if picks.Load() == 0 {
		t.Fatal("no picks completed")
	}
	for _, info := range r.Pool(group) {
		if info.Inflight != 0 {
			t.Fatalf("backend %s left with %d in flight", info.URL, info.Inflight)
		}
	}
	if got := r.Backends()[group]; got != 2 {
		t.Fatalf("final pool size = %d, want 2", got)
	}
}

// TestConcurrentRegisterDrainSameURL drives the un-drain flap path
// (Register on a draining backend) concurrently with picks; the
// invariant is purely that nothing panics, counts stay non-negative,
// and the backend ends active.
func TestConcurrentRegisterDrainSameURL(t *testing.T) {
	r := New(LeastInflight{})
	if err := r.Register(0, "http://stable"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(0, "http://flappy"); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, err := r.Pick(0)
				if err != nil {
					t.Errorf("pick: %v", err)
					return
				}
				r.Release(p, true)
			}
		}()
	}
	for i := 0; i < 500; i++ {
		if err := r.Drain(0, "http://flappy"); err != nil {
			t.Fatal(err)
		}
		if err := r.Register(0, "http://flappy"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	for _, info := range r.Pool(0) {
		if info.Inflight != 0 {
			t.Fatalf("backend %s left with %d in flight", info.URL, info.Inflight)
		}
		if info.State != StateActive {
			t.Fatalf("backend %s ended %s", info.URL, info.State)
		}
	}
}
