package router

import (
	"bytes"
	"fmt"
	"testing"
)

// BenchmarkPick measures the routing decision alone (pick + release,
// no network) under parallel load for each policy — the numbers the
// ≥2x-vs-mutex claim rests on at 8+ cores. Run with -cpu 1,8 to see
// the scaling.
func BenchmarkPick(b *testing.B) {
	for _, name := range PolicyNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			policy, err := ParsePolicy(name)
			if err != nil {
				b.Fatal(err)
			}
			r := New(policy)
			for i := 0; i < 8; i++ {
				if err := r.Register(0, fmt.Sprintf("http://bench-%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					p, err := r.Pick(0)
					if err != nil {
						// FailNow must not run off the benchmark
						// goroutine; Error + return is the contract.
						b.Error(err)
						return
					}
					r.Release(p, true)
				}
			})
		})
	}
}

// BenchmarkPickMutexBaseline is the pre-refactor global-mutex data
// plane under the identical load, for the A/B comparison.
func BenchmarkPickMutexBaseline(b *testing.B) {
	m := newMutexRouter(8)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := m.pickRelease(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func TestRunBenchReportRoundTrip(t *testing.T) {
	rep, err := RunBench(BenchConfig{
		Backends:      4,
		Goroutines:    2,
		Ops:           4096,
		MutexBaseline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Policies) != len(PolicyNames()) {
		t.Fatalf("measured %d policies", len(rep.Policies))
	}
	for _, p := range rep.Policies {
		if p.ThroughputOpsPerSec <= 0 {
			t.Fatalf("policy %s throughput %v", p.Policy, p.ThroughputOpsPerSec)
		}
		if p.PickP99Us < p.PickP50Us {
			t.Fatalf("policy %s p99 %v < p50 %v", p.Policy, p.PickP99Us, p.PickP50Us)
		}
	}
	if rep.MutexBaseline == nil || rep.SpeedupVsMutex <= 0 {
		t.Fatalf("mutex baseline missing: %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || len(back.Policies) != len(rep.Policies) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Summary() == "" {
		t.Fatal("empty summary")
	}
	if _, err := RunBench(BenchConfig{Policies: []string{"bogus"}}); err == nil {
		t.Fatal("unknown policy should fail")
	}
	if _, err := RunBench(BenchConfig{Ops: -1}); err == nil {
		t.Fatal("negative ops should fail")
	}
}
