package router

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRegionFenceUnderLoad mirrors TestEjectFenceUnderLoad one tier up:
// pickers hammer PickFirst/Release while churners add fresh regions,
// MarkDown them (fence), briefly MarkUp and re-MarkDown (the region
// monitor's flap path), then Remove. The fence-counter invariant proved
// under -race: once MarkDown returns, no PickFirst that STARTED after
// the return resolves into the downed region — the guarantee the
// cross-region spillover path needs so a chaos-killed region stops
// absorbing traffic the moment it is fenced.
func TestRegionFenceUnderLoad(t *testing.T) {
	r, err := NewRegions()
	if err != nil {
		t.Fatal(err)
	}
	name := func(id int) string { return fmt.Sprintf("region-%d", id) }

	const (
		maxRounds = 30
		churners  = 4
		maxIDs    = 2 + maxRounds*churners
	)
	rounds := maxRounds
	if testing.Short() {
		rounds = 8
	}
	// fenced[id] flips to 1 the moment the region's FINAL MarkDown
	// returns (after the reinstate flap); it never flips back because
	// churned identities are never marked Up again.
	var fenced [maxIDs]atomic.Int32
	var picksAfterFence atomic.Int64

	// Two stable regions (ids 0, 1) guarantee a pick always lands; they
	// sit LAST in the preference order so live churned regions — the
	// fenced ones — are always preferred, maximizing fence pressure.
	for i := 0; i < 2; i++ {
		if err := r.Add(name(i)); err != nil {
			t.Fatal(err)
		}
	}
	order := make([]string, 0, maxIDs)
	for id := 2; id < maxIDs; id++ {
		order = append(order, name(id))
	}
	order = append(order, name(0), name(1))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const pickers = 8
	var picks atomic.Int64
	for w := 0; w < pickers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Sample every fence flag BEFORE picking: if a region was
				// already fenced when the pick started and the pick still
				// resolved into it, the snapshot protocol is broken.
				var preFenced [maxIDs]int32
				for i := range preFenced {
					preFenced[i] = fenced[i].Load()
				}
				p, err := r.PickFirst(order)
				if err != nil {
					// Two stable always-Up regions make no-region windows
					// impossible, so any error is a bug.
					t.Errorf("pick: %v", err)
					return
				}
				var idx int
				if _, err := fmt.Sscanf(p.Name(), "region-%d", &idx); err != nil {
					t.Errorf("picked unknown region %q", p.Name())
					return
				}
				if preFenced[idx] == 1 {
					picksAfterFence.Add(1)
				}
				if n := r.Inflight(p.Name()); n < 1 {
					t.Errorf("in-flight count %d < 1 while holding a reservation", n)
				}
				r.Release(p)
				picks.Add(1)
			}
		}()
	}

	churn := func(id int) {
		n := name(id)
		if err := r.Add(n); err != nil {
			t.Errorf("add %s: %v", n, err)
			return
		}
		time.Sleep(time.Millisecond)
		// Flap: down, up (traffic may resume), final down.
		if err := r.MarkDown(n); err != nil {
			t.Errorf("mark down %s: %v", n, err)
			return
		}
		if err := r.MarkUp(n); err != nil {
			t.Errorf("mark up %s: %v", n, err)
			return
		}
		if err := r.MarkDown(n); err != nil {
			t.Errorf("final mark down %s: %v", n, err)
			return
		}
		fenced[id].Store(1)
		// Remove may transiently report in-flight stragglers that
		// reserved before the fence; retrying until they drain is the
		// reconciler's reap path.
		deadline := time.Now().Add(10 * time.Second)
		for {
			if err := r.Remove(n); err == nil {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("remove %s never succeeded (%d in flight)", n, r.Inflight(n))
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	for round := 0; round < rounds; round++ {
		var cwg sync.WaitGroup
		for c := 0; c < churners; c++ {
			id := 2 + round*churners + c
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				churn(id)
			}()
		}
		cwg.Wait()
	}
	close(stop)
	wg.Wait()

	if n := picksAfterFence.Load(); n != 0 {
		t.Fatalf("%d picks resolved into a region after its MarkDown returned", n)
	}
	if picks.Load() == 0 {
		t.Fatal("no picks completed")
	}
	// All reservations released and only the two stable regions remain.
	if got := len(r.Names()); got != 2 {
		t.Fatalf("final region count = %d, want 2", got)
	}
	for _, n := range r.Names() {
		if in := r.Inflight(n); in != 0 {
			t.Fatalf("region %s left with %d in flight", n, in)
		}
	}
}
