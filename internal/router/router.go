// Package router is the lock-free sharded data plane of the SDN
// accelerator: per-group surrogate pools published as immutable
// copy-on-write snapshots behind an atomic pointer (RCU-style), with
// per-backend atomic in-flight counters and pluggable pick policies
// (round-robin, least-inflight, power-of-two-choices).
//
// The request hot path — Pick, Release, the drop counters, and Stats —
// acquires no mutexes. Control-plane mutations (Register, Drain,
// Remove, driven by the autoscaling reconciler; Eject, Reinstate,
// Evict, driven by the failure detector and its repair path) build a
// new snapshot under a small control mutex and publish it with one
// atomic store, so readers never block writers and writers never block
// readers.
//
// Correctness of the publish protocol: Pick reserves an in-flight slot
// and then re-validates that the snapshot it picked from is still
// current; if a mutation was published in between, the reservation is
// rolled back and the pick retried against the new snapshot. Remove
// publishes first and re-checks the in-flight counter afterwards,
// rolling the snapshot back when a concurrent reservation slipped in.
// Together these guarantee that once Drain or Remove returns, no
// subsequent Pick ever resolves to that backend — the invariant the
// connection-draining scale-down of the autoscaling control loop
// (DESIGN.md §5) depends on.
package router

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"accelcloud/internal/rpc"
	"accelcloud/internal/serve"
)

// State is the lifecycle state of one registered backend.
type State string

const (
	// StateActive backends receive new requests.
	StateActive State = "active"
	// StateDraining backends finish their in-flight requests but are
	// never picked for new ones.
	StateDraining State = "draining"
	// StateEjected backends are fenced off by the failure detector
	// (internal/health): suspected dead or degraded, never picked, but
	// still registered so a recovery can Reinstate them in place
	// without losing the warm backend.
	StateEjected State = "ejected"
	// StateCold backends were scaled to zero after sitting idle
	// (MarkIdleCold): still registered, never picked, but eligible for
	// in-place activation — the first Pick of a group whose active set
	// is empty promotes a cold backend and flags the request as the
	// cold start (DESIGN.md §9).
	StateCold State = "cold"
)

// ErrBackendBusy is returned by Remove while a backend still has
// in-flight requests; drain first and retry once Inflight reports 0.
var ErrBackendBusy = errors.New("router: backend has in-flight requests")

// ErrUnknownBackend is returned when a (group, url) pair is not
// registered.
var ErrUnknownBackend = errors.New("router: unknown backend")

// ErrNoActiveBackend is returned by Pick when a group has no backend
// accepting new work.
var ErrNoActiveBackend = errors.New("router: no active backend")

// ErrGroupSaturated is returned by Pick when every active backend's
// admission queue is full. It wraps serve.ErrQueueFull, so
// errors.Is(err, serve.ErrQueueFull) classifies it and the front-end's
// 503 body carries the rpc.MsgQueueFull marker for client-side
// queue-aware retry.
var ErrGroupSaturated = fmt.Errorf("router: every active backend saturated: %w", serve.ErrQueueFull)

// BackendInfo is a point-in-time view of one backend, exposed by Pool
// and the front-end's /stats endpoint.
type BackendInfo struct {
	URL     string `json:"url"`
	State   State  `json:"state"`
	Version string `json:"version,omitempty"`
	// Inflight counts picked-and-unreleased requests (queued ones
	// included); Queued is the admitted-but-undispatched subset and
	// ConcurrencyLimit its dispatch bound (0 = no admission queue).
	Inflight         int  `json:"inflight"`
	Queued           int  `json:"queued"`
	ConcurrencyLimit int  `json:"concurrency_limit"`
	Cold             bool `json:"cold"`
}

// entry is one registered backend. Everything but the counters is
// immutable; the counters (and the admission queue) are shared by
// every snapshot that references the entry, so reservations survive
// republishes.
type entry struct {
	url     string
	version string
	client  *rpc.Client
	// q is the backend's admission queue; nil when the router was not
	// configured with a serve.Config.
	q        *serve.Queue
	inflight atomic.Int64
	// lastUsed is the unix-nano stamp of the entry's registration or
	// most recent Release — the idleness clock MarkIdleCold reads.
	lastUsed atomic.Int64
}

// saturated reports whether the entry's admission queue is full.
func (e *entry) saturated() bool { return e.q != nil && e.q.Saturated() }

// slot pairs an entry with its lifecycle state in one snapshot. The
// state lives in the snapshot (not the entry) so publishing a drain is
// one pointer store, never an in-place mutation readers could observe
// half-done.
type slot struct {
	e     *entry
	state State
}

// pool is one group's immutable backend set within a snapshot.
type pool struct {
	// slots holds every backend in registration order.
	slots []slot
	// active holds the pickable subset, pre-filtered at publish time so
	// the hot path never scans states.
	active []*entry
	// rr is the group's pick cursor. It is carried from snapshot to
	// snapshot so round-robin keeps rotating across republishes.
	rr *atomic.Uint64
}

// MaxGroup bounds acceleration-group indices. The routing table is a
// dense slice indexed by group — one bounds check and one load on the
// hot path instead of a map hash — so indices must stay small; the
// paper's accelerator has a handful of acceleration levels.
const MaxGroup = 4096

// snapshot is one immutable routing table: groups[g] is group g's pool
// (nil when unregistered). Never written after publish, so lock-free
// readers index it freely.
type snapshot struct {
	groups []*pool
}

// pool returns group g's pool, nil when absent.
func (s *snapshot) pool(g int) *pool {
	if g < 0 || g >= len(s.groups) {
		return nil
	}
	return s.groups[g]
}

// Router routes requests to per-group backend pools.
type Router struct {
	policy Policy
	snap   atomic.Pointer[snapshot]

	routed  atomic.Int64
	dropped atomic.Int64

	// mu serializes control-plane mutations only; the request path
	// never takes it. clientTimeout and serveCfg (guarded by mu) are
	// applied to the rpc clients and admission queues of subsequently
	// registered backends; activations counts cold-start promotions
	// per group until TakeActivations drains it.
	mu            sync.Mutex
	clientTimeout time.Duration
	serveCfg      serve.Config
	activations   map[int]int64
}

// New builds an empty router. A nil policy selects round-robin.
func New(policy Policy) *Router {
	if policy == nil {
		policy = RoundRobin{}
	}
	r := &Router{policy: policy}
	r.snap.Store(&snapshot{})
	return r
}

// Policy reports the configured pick policy.
func (r *Router) Policy() Policy { return r.policy }

// SetClientTimeout sets the per-request deadline of the rpc clients
// built for backends registered after the call (0 keeps the rpc
// default). Configure it before registering backends: the proxy hop to
// a crashed or hung surrogate must fail within the failure detector's
// horizon, not the 30 s transport default.
func (r *Router) SetClientTimeout(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clientTimeout = d
}

// SetServeConfig installs the admission-queue shape (concurrency
// limit, queue depth, batching knobs) applied to backends registered
// after the call. Like SetClientTimeout, configure it before
// registering backends. A zero config (Limit 0) disables the queue
// layer — the pre-serving behaviour.
func (r *Router) SetServeConfig(cfg serve.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.serveCfg = cfg
	return nil
}

// ServeConfig reports the configured admission-queue shape.
func (r *Router) ServeConfig() serve.Config {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.serveCfg
}

// findSlot locates a backend inside a snapshot.
func (s *snapshot) findSlot(group int, url string) (p *pool, idx int) {
	p = s.pool(group)
	if p == nil {
		return nil, -1
	}
	for i := range p.slots {
		if p.slots[i].e.url == url {
			return p, i
		}
	}
	return p, -1
}

// rebuild returns a copy of the snapshot with one group's slots
// replaced. A nil or empty slots slice deletes the group. The caller
// holds r.mu. rr is reused from the previous pool when present so the
// round-robin cursor survives republishes.
func (s *snapshot) rebuild(group int, slots []slot) *snapshot {
	width := len(s.groups)
	if len(slots) > 0 && group+1 > width {
		width = group + 1
	}
	next := &snapshot{groups: make([]*pool, width)}
	copy(next.groups, s.groups)
	if len(slots) == 0 {
		if group < len(next.groups) {
			next.groups[group] = nil
		}
		// Trim trailing holes so the table never outlives its widest
		// registered group.
		for len(next.groups) > 0 && next.groups[len(next.groups)-1] == nil {
			next.groups = next.groups[:len(next.groups)-1]
		}
		return next
	}
	p := &pool{slots: slots}
	if prev := s.pool(group); prev != nil {
		p.rr = prev.rr
	} else {
		p.rr = &atomic.Uint64{}
	}
	for _, sl := range slots {
		if sl.state == StateActive {
			p.active = append(p.active, sl.e)
		}
	}
	next.groups[group] = p
	return next
}

// Register adds a surrogate base URL under an acceleration group. A URL
// currently draining (or cold) in the same group is re-activated in
// place (the un-drain path: a scale-up arriving before the drain
// completed), so flapping never loses a warm backend.
func (r *Router) Register(group int, baseURL string) error {
	return r.RegisterVersion(group, baseURL, "")
}

// RegisterVersion registers a backend carrying a version label — the
// selector the canary pick policy splits traffic on ("" is the stable
// fleet). Everything else matches Register.
func (r *Router) RegisterVersion(group int, baseURL, version string) error {
	if group < 0 {
		return fmt.Errorf("router: negative group %d", group)
	}
	if group > MaxGroup {
		return fmt.Errorf("router: group %d exceeds MaxGroup %d", group, MaxGroup)
	}
	if baseURL == "" {
		return errors.New("router: empty backend url")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	var slots []slot
	switch {
	case idx >= 0 && (p.slots[idx].state == StateDraining || p.slots[idx].state == StateCold):
		slots = append([]slot(nil), p.slots...)
		slots[idx].state = StateActive
	case idx >= 0:
		return fmt.Errorf("router: backend %s already registered in group %d", baseURL, group)
	default:
		if p != nil {
			slots = append(slots, p.slots...)
		}
		client := rpc.NewClient(baseURL, rpc.WithTimeout(r.clientTimeout))
		q, err := serve.New(r.serveCfg, client)
		if err != nil {
			return err
		}
		e := &entry{url: baseURL, version: version, client: client, q: q}
		e.lastUsed.Store(time.Now().UnixNano())
		slots = append(slots, slot{e: e, state: StateActive})
	}
	r.snap.Store(s.rebuild(group, slots))
	return nil
}

// Drain fences a backend off from new requests; in-flight requests
// complete normally. Draining an already-draining backend is a no-op.
// Once Drain returns, no subsequent Pick resolves to the backend.
func (r *Router) Drain(group int, baseURL string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	if idx < 0 {
		return fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	if p.slots[idx].state == StateDraining {
		return nil
	}
	slots := append([]slot(nil), p.slots...)
	slots[idx].state = StateDraining
	r.snap.Store(s.rebuild(group, slots))
	return nil
}

// Remove deregisters an idle backend. It fails with ErrBackendBusy
// while requests are still in flight — drain first, then retry; the
// router never abandons accepted work. The busy check is re-run after
// the snapshot without the backend is published, and rolled back if a
// concurrent Pick reserved a slot in the window — so a successful
// Remove guarantees no request is, or ever will be, routed to the
// backend.
func (r *Router) Remove(group int, baseURL string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	if idx < 0 {
		return fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	e := p.slots[idx].e
	if n := e.inflight.Load(); n > 0 {
		return fmt.Errorf("%w: %s in group %d (%d in flight)", ErrBackendBusy, baseURL, group, n)
	}
	slots := append([]slot(nil), p.slots[:idx]...)
	slots = append(slots, p.slots[idx+1:]...)
	r.snap.Store(s.rebuild(group, slots))
	if n := e.inflight.Load(); n > 0 {
		// A Pick reserved on the old snapshot between the check and the
		// publish. Roll the old table back; the reservation stands and
		// the backend stays registered.
		r.snap.Store(s)
		return fmt.Errorf("%w: %s in group %d (%d in flight)", ErrBackendBusy, baseURL, group, n)
	}
	// Asynchronous: Close waits out in-flight dispatches, and the
	// control plane must not block behind a slow backend call.
	go e.q.Close()
	return nil
}

// Eject fences a suspected-unhealthy backend off from new requests,
// exactly like Drain but reversible in place via Reinstate — the
// failure detector's lever on the RCU snapshot path. Ejecting an
// already-ejected or draining backend is a no-op (draining is already
// fenced, and a drain decision outranks a health suspicion). Once
// Eject returns, no subsequent Pick resolves to the backend — the same
// publish-then-revalidate protocol Drain relies on.
func (r *Router) Eject(group int, baseURL string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	if idx < 0 {
		return fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	if p.slots[idx].state != StateActive {
		return nil
	}
	slots := append([]slot(nil), p.slots...)
	slots[idx].state = StateEjected
	r.snap.Store(s.rebuild(group, slots))
	return nil
}

// Reinstate returns an ejected backend to rotation — the failure
// detector's recovery path. Reinstating a backend in any other state is
// a no-op: an active backend needs no help, and a draining one was
// deliberately fenced by the control plane.
func (r *Router) Reinstate(group int, baseURL string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	if idx < 0 {
		return fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	if p.slots[idx].state != StateEjected {
		return nil
	}
	slots := append([]slot(nil), p.slots...)
	slots[idx].state = StateActive
	r.snap.Store(s.rebuild(group, slots))
	return nil
}

// Evict unconditionally deregisters a backend, in-flight requests or
// not — the repair path for a confirmed-dead backend, whose accepted
// work is already lost. Outstanding reservations stay safe: each Picked
// holds its entry directly, so Release still balances the counters; the
// entry is garbage-collected once the last reservation drops. Once
// Evict returns, no subsequent Pick resolves to the backend.
func (r *Router) Evict(group int, baseURL string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	if idx < 0 {
		return fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	e := p.slots[idx].e
	slots := append([]slot(nil), p.slots[:idx]...)
	slots = append(slots, p.slots[idx+1:]...)
	r.snap.Store(s.rebuild(group, slots))
	// Asynchronous: the queue's still-queued jobs fail with ErrClosed —
	// a confirmed-dead backend's accepted work is already lost — and
	// the control plane must not block waiting for them.
	go e.q.Close()
	return nil
}

// Picked is a reserved routing decision: the chosen backend with one
// in-flight slot held. Pass it to Release exactly once.
type Picked struct {
	e    *entry
	cold bool
}

// URL reports the picked backend's base URL.
func (p Picked) URL() string { return p.e.url }

// Client reports the picked backend's RPC client.
func (p Picked) Client() *rpc.Client { return p.e.client }

// Version reports the picked backend's version label ("" = stable).
func (p Picked) Version() string { return p.e.version }

// Queue reports the picked backend's admission queue; nil when the
// router has no serve.Config, in which case the caller dispatches
// through Client directly.
func (p Picked) Queue() *serve.Queue { return p.e.q }

// ColdStarted reports whether this pick promoted a cold backend — the
// triggering request pays the configured cold-start latency.
func (p Picked) ColdStarted() bool { return p.cold }

// Pick selects a backend for the group under the configured policy and
// reserves an in-flight slot on it. Lock-free: one snapshot load, the
// policy's choice, and an atomic reservation, re-validated against the
// group's current pool so a Pick never resolves to a backend drained
// or removed before the call. Validation is per-pool, not whole-table:
// every mutation of a group allocates a fresh pool object while
// untouched groups keep theirs, so control-plane churn in one group
// never rolls back concurrent picks in another.
func (r *Router) Pick(group int) (Picked, error) {
	for {
		p := r.snap.Load().pool(group)
		if p == nil {
			return Picked{}, fmt.Errorf("%w for group %d", ErrNoActiveBackend, group)
		}
		if len(p.active) == 0 {
			// Scale-to-zero path: an empty active set with a cold
			// backend means the group is parked, not gone — promote one
			// and charge this request with the cold start.
			e, changed := r.activateCold(group, p)
			if e != nil {
				e.inflight.Add(1)
				return Picked{e: e, cold: true}, nil
			}
			if changed {
				continue
			}
			return Picked{}, fmt.Errorf("%w for group %d", ErrNoActiveBackend, group)
		}
		e := r.policy.pick(p)
		if e.saturated() {
			// The policy's choice is backpressuring; steer around it.
			// Saturated() is a racy gauge read — serve.Queue.Submit is
			// the hard gate — but under sustained overload the signal
			// is stable, which is when steering matters.
			if e = firstUnsaturated(p); e == nil {
				return Picked{}, fmt.Errorf("group %d: %w", group, ErrGroupSaturated)
			}
		}
		e.inflight.Add(1)
		if r.snap.Load().pool(group) == p {
			return Picked{e: e}, nil
		}
		// This group was republished between the pick and the
		// reservation; the entry may just have been drained or removed.
		// Roll back and retry against the new pool.
		e.inflight.Add(-1)
	}
}

// firstUnsaturated scans the active set from a rotating start for a
// backend whose admission queue has room.
func firstUnsaturated(p *pool) *entry {
	n := uint64(len(p.active))
	start := p.rr.Add(1) - 1
	for i := uint64(0); i < n; i++ {
		if e := p.active[(start+i)%n]; !e.saturated() {
			return e
		}
	}
	return nil
}

// activateCold promotes one cold backend of the group to active under
// the control mutex, counting the activation. seen is the pool the
// caller observed empty; if the group changed in the meantime the
// caller retries instead of activating (changed=true, nil entry).
func (r *Router) activateCold(group int, seen *pool) (e *entry, changed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	p := s.pool(group)
	if p == nil {
		return nil, p != seen
	}
	if p != seen && len(p.active) > 0 {
		return nil, true
	}
	for i := range p.slots {
		if p.slots[i].state != StateCold {
			continue
		}
		slots := append([]slot(nil), p.slots...)
		slots[i].state = StateActive
		r.snap.Store(s.rebuild(group, slots))
		if r.activations == nil {
			r.activations = make(map[int]int64)
		}
		r.activations[group]++
		return p.slots[i].e, true
	}
	return nil, p != seen
}

// MarkIdleCold sweeps every group and parks backends that have been
// active, idle (no in-flight or queued work), and unused for at least
// idleFor — the scale-to-zero janitor. Daemons call it on a ticker;
// hermetic benches call it with virtual time. Returns the number of
// backends parked.
func (r *Router) MarkIdleCold(idleFor time.Duration, now time.Time) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	cur := s
	cooled := 0
	cutoff := now.Add(-idleFor).UnixNano()
	for g, p := range s.groups {
		if p == nil {
			continue
		}
		var slots []slot
		for i := range p.slots {
			sl := p.slots[i]
			if sl.state != StateActive {
				continue
			}
			if sl.e.inflight.Load() > 0 || sl.e.lastUsed.Load() > cutoff {
				continue
			}
			if sl.e.q != nil && sl.e.q.Queued() > 0 {
				continue
			}
			if slots == nil {
				slots = append([]slot(nil), p.slots...)
			}
			slots[i].state = StateCold
			cooled++
		}
		if slots != nil {
			cur = cur.rebuild(g, slots)
		}
	}
	if cooled > 0 {
		// One publish for the whole sweep; Picks in the window
		// revalidate against the new pools and retry.
		r.snap.Store(cur)
	}
	return cooled
}

// TakeActivations drains and returns the per-group cold-start
// activation counts accumulated since the previous call — the
// autoscale controller folds them into its Decision (and their
// cold-start time into the cost model) once per slot. Returns nil
// when nothing activated.
func (r *Router) TakeActivations() map[int]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.activations
	r.activations = nil
	return out
}

// Release returns a picked backend's in-flight slot and folds the
// request's fate into the routed/dropped counters — all atomics, no
// critical section.
func (r *Router) Release(p Picked, ok bool) {
	p.e.lastUsed.Store(time.Now().UnixNano())
	p.e.inflight.Add(-1)
	if ok {
		r.routed.Add(1)
	} else {
		r.dropped.Add(1)
	}
}

// CountDrop records a request dropped before any backend was picked
// (e.g. no active backend for the group).
func (r *Router) CountDrop() { r.dropped.Add(1) }

// Counters reports the routed/dropped totals.
func (r *Router) Counters() (routed, dropped int64) {
	return r.routed.Load(), r.dropped.Load()
}

// Inflight reports a backend's current in-flight request count.
func (r *Router) Inflight(group int, baseURL string) (int, error) {
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	if idx < 0 {
		return 0, fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	return int(p.slots[idx].e.inflight.Load()), nil
}

// Backends reports the registered groups and backend counts (active
// and draining alike — they are all still serving or finishing work).
func (r *Router) Backends() map[int]int {
	s := r.snap.Load()
	out := make(map[int]int, len(s.groups))
	for g, p := range s.groups {
		if p != nil {
			out[g] = len(p.slots)
		}
	}
	return out
}

// Pool snapshots one group's backends in registration order.
func (r *Router) Pool(group int) []BackendInfo {
	p := r.snap.Load().pool(group)
	if p == nil {
		return []BackendInfo{}
	}
	return poolInfos(p)
}

func poolInfos(p *pool) []BackendInfo {
	out := make([]BackendInfo, 0, len(p.slots))
	for _, sl := range p.slots {
		info := BackendInfo{
			URL:      sl.e.url,
			State:    sl.state,
			Version:  sl.e.version,
			Inflight: int(sl.e.inflight.Load()),
			Cold:     sl.state == StateCold,
		}
		if sl.e.q != nil {
			info.Queued = sl.e.q.Queued()
			info.ConcurrencyLimit = sl.e.q.Config().Limit
		}
		out = append(out, info)
	}
	return out
}

// ActiveCount reports how many of a group's backends accept new work.
func (r *Router) ActiveCount(group int) int {
	p := r.snap.Load().pool(group)
	if p == nil {
		return 0
	}
	return len(p.active)
}

// Stats is a consistent point-in-time view of the whole routing table,
// rendered without entering any critical section.
type Stats struct {
	Routed  int64
	Dropped int64
	Pools   map[int][]BackendInfo
}

// Stats snapshots counters and every pool from one atomic snapshot
// load — the /stats endpoint encodes this outside any lock.
func (r *Router) Stats() Stats {
	s := r.snap.Load()
	st := Stats{
		Routed:  r.routed.Load(),
		Dropped: r.dropped.Load(),
		Pools:   make(map[int][]BackendInfo, len(s.groups)),
	}
	for g, p := range s.groups {
		if p != nil {
			st.Pools[g] = poolInfos(p)
		}
	}
	return st
}
