// Package router is the lock-free sharded data plane of the SDN
// accelerator: per-group surrogate pools published as immutable
// copy-on-write snapshots behind an atomic pointer (RCU-style), with
// per-backend atomic in-flight counters and pluggable pick policies
// (round-robin, least-inflight, power-of-two-choices).
//
// The request hot path — Pick, Release, the drop counters, and Stats —
// acquires no mutexes. Control-plane mutations (Register, Drain,
// Remove, driven by the autoscaling reconciler; Eject, Reinstate,
// Evict, driven by the failure detector and its repair path) build a
// new snapshot under a small control mutex and publish it with one
// atomic store, so readers never block writers and writers never block
// readers.
//
// Correctness of the publish protocol: Pick reserves an in-flight slot
// and then re-validates that the snapshot it picked from is still
// current; if a mutation was published in between, the reservation is
// rolled back and the pick retried against the new snapshot. Remove
// publishes first and re-checks the in-flight counter afterwards,
// rolling the snapshot back when a concurrent reservation slipped in.
// Together these guarantee that once Drain or Remove returns, no
// subsequent Pick ever resolves to that backend — the invariant the
// connection-draining scale-down of the autoscaling control loop
// (DESIGN.md §5) depends on.
package router

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"accelcloud/internal/rpc"
)

// State is the lifecycle state of one registered backend.
type State string

const (
	// StateActive backends receive new requests.
	StateActive State = "active"
	// StateDraining backends finish their in-flight requests but are
	// never picked for new ones.
	StateDraining State = "draining"
	// StateEjected backends are fenced off by the failure detector
	// (internal/health): suspected dead or degraded, never picked, but
	// still registered so a recovery can Reinstate them in place
	// without losing the warm backend.
	StateEjected State = "ejected"
)

// ErrBackendBusy is returned by Remove while a backend still has
// in-flight requests; drain first and retry once Inflight reports 0.
var ErrBackendBusy = errors.New("router: backend has in-flight requests")

// ErrUnknownBackend is returned when a (group, url) pair is not
// registered.
var ErrUnknownBackend = errors.New("router: unknown backend")

// ErrNoActiveBackend is returned by Pick when a group has no backend
// accepting new work.
var ErrNoActiveBackend = errors.New("router: no active backend")

// BackendInfo is a point-in-time view of one backend, exposed by Pool
// and the front-end's /stats endpoint.
type BackendInfo struct {
	URL      string `json:"url"`
	State    State  `json:"state"`
	Inflight int    `json:"inflight"`
}

// entry is one registered backend. Everything but the in-flight counter
// is immutable; the counter is shared by every snapshot that references
// the entry, so reservations survive republishes.
type entry struct {
	url      string
	client   *rpc.Client
	inflight atomic.Int64
}

// slot pairs an entry with its lifecycle state in one snapshot. The
// state lives in the snapshot (not the entry) so publishing a drain is
// one pointer store, never an in-place mutation readers could observe
// half-done.
type slot struct {
	e     *entry
	state State
}

// pool is one group's immutable backend set within a snapshot.
type pool struct {
	// slots holds every backend in registration order.
	slots []slot
	// active holds the pickable subset, pre-filtered at publish time so
	// the hot path never scans states.
	active []*entry
	// rr is the group's pick cursor. It is carried from snapshot to
	// snapshot so round-robin keeps rotating across republishes.
	rr *atomic.Uint64
}

// MaxGroup bounds acceleration-group indices. The routing table is a
// dense slice indexed by group — one bounds check and one load on the
// hot path instead of a map hash — so indices must stay small; the
// paper's accelerator has a handful of acceleration levels.
const MaxGroup = 4096

// snapshot is one immutable routing table: groups[g] is group g's pool
// (nil when unregistered). Never written after publish, so lock-free
// readers index it freely.
type snapshot struct {
	groups []*pool
}

// pool returns group g's pool, nil when absent.
func (s *snapshot) pool(g int) *pool {
	if g < 0 || g >= len(s.groups) {
		return nil
	}
	return s.groups[g]
}

// Router routes requests to per-group backend pools.
type Router struct {
	policy Policy
	snap   atomic.Pointer[snapshot]

	routed  atomic.Int64
	dropped atomic.Int64

	// mu serializes control-plane mutations only; the request path
	// never takes it. clientTimeout (guarded by mu) is applied to the
	// rpc clients of subsequently registered backends.
	mu            sync.Mutex
	clientTimeout time.Duration
}

// New builds an empty router. A nil policy selects round-robin.
func New(policy Policy) *Router {
	if policy == nil {
		policy = RoundRobin{}
	}
	r := &Router{policy: policy}
	r.snap.Store(&snapshot{})
	return r
}

// Policy reports the configured pick policy.
func (r *Router) Policy() Policy { return r.policy }

// SetClientTimeout sets the per-request deadline of the rpc clients
// built for backends registered after the call (0 keeps the rpc
// default). Configure it before registering backends: the proxy hop to
// a crashed or hung surrogate must fail within the failure detector's
// horizon, not the 30 s transport default.
func (r *Router) SetClientTimeout(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clientTimeout = d
}

// findSlot locates a backend inside a snapshot.
func (s *snapshot) findSlot(group int, url string) (p *pool, idx int) {
	p = s.pool(group)
	if p == nil {
		return nil, -1
	}
	for i := range p.slots {
		if p.slots[i].e.url == url {
			return p, i
		}
	}
	return p, -1
}

// rebuild returns a copy of the snapshot with one group's slots
// replaced. A nil or empty slots slice deletes the group. The caller
// holds r.mu. rr is reused from the previous pool when present so the
// round-robin cursor survives republishes.
func (s *snapshot) rebuild(group int, slots []slot) *snapshot {
	width := len(s.groups)
	if len(slots) > 0 && group+1 > width {
		width = group + 1
	}
	next := &snapshot{groups: make([]*pool, width)}
	copy(next.groups, s.groups)
	if len(slots) == 0 {
		if group < len(next.groups) {
			next.groups[group] = nil
		}
		// Trim trailing holes so the table never outlives its widest
		// registered group.
		for len(next.groups) > 0 && next.groups[len(next.groups)-1] == nil {
			next.groups = next.groups[:len(next.groups)-1]
		}
		return next
	}
	p := &pool{slots: slots}
	if prev := s.pool(group); prev != nil {
		p.rr = prev.rr
	} else {
		p.rr = &atomic.Uint64{}
	}
	for _, sl := range slots {
		if sl.state == StateActive {
			p.active = append(p.active, sl.e)
		}
	}
	next.groups[group] = p
	return next
}

// Register adds a surrogate base URL under an acceleration group. A URL
// currently draining in the same group is re-activated in place (the
// un-drain path: a scale-up arriving before the drain completed), so
// flapping never loses a warm backend.
func (r *Router) Register(group int, baseURL string) error {
	if group < 0 {
		return fmt.Errorf("router: negative group %d", group)
	}
	if group > MaxGroup {
		return fmt.Errorf("router: group %d exceeds MaxGroup %d", group, MaxGroup)
	}
	if baseURL == "" {
		return errors.New("router: empty backend url")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	var slots []slot
	switch {
	case idx >= 0 && p.slots[idx].state == StateDraining:
		slots = append([]slot(nil), p.slots...)
		slots[idx].state = StateActive
	case idx >= 0:
		return fmt.Errorf("router: backend %s already registered in group %d", baseURL, group)
	default:
		if p != nil {
			slots = append(slots, p.slots...)
		}
		client := rpc.NewClient(baseURL)
		client.Timeout = r.clientTimeout
		slots = append(slots, slot{
			e:     &entry{url: baseURL, client: client},
			state: StateActive,
		})
	}
	r.snap.Store(s.rebuild(group, slots))
	return nil
}

// Drain fences a backend off from new requests; in-flight requests
// complete normally. Draining an already-draining backend is a no-op.
// Once Drain returns, no subsequent Pick resolves to the backend.
func (r *Router) Drain(group int, baseURL string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	if idx < 0 {
		return fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	if p.slots[idx].state == StateDraining {
		return nil
	}
	slots := append([]slot(nil), p.slots...)
	slots[idx].state = StateDraining
	r.snap.Store(s.rebuild(group, slots))
	return nil
}

// Remove deregisters an idle backend. It fails with ErrBackendBusy
// while requests are still in flight — drain first, then retry; the
// router never abandons accepted work. The busy check is re-run after
// the snapshot without the backend is published, and rolled back if a
// concurrent Pick reserved a slot in the window — so a successful
// Remove guarantees no request is, or ever will be, routed to the
// backend.
func (r *Router) Remove(group int, baseURL string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	if idx < 0 {
		return fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	e := p.slots[idx].e
	if n := e.inflight.Load(); n > 0 {
		return fmt.Errorf("%w: %s in group %d (%d in flight)", ErrBackendBusy, baseURL, group, n)
	}
	slots := append([]slot(nil), p.slots[:idx]...)
	slots = append(slots, p.slots[idx+1:]...)
	r.snap.Store(s.rebuild(group, slots))
	if n := e.inflight.Load(); n > 0 {
		// A Pick reserved on the old snapshot between the check and the
		// publish. Roll the old table back; the reservation stands and
		// the backend stays registered.
		r.snap.Store(s)
		return fmt.Errorf("%w: %s in group %d (%d in flight)", ErrBackendBusy, baseURL, group, n)
	}
	return nil
}

// Eject fences a suspected-unhealthy backend off from new requests,
// exactly like Drain but reversible in place via Reinstate — the
// failure detector's lever on the RCU snapshot path. Ejecting an
// already-ejected or draining backend is a no-op (draining is already
// fenced, and a drain decision outranks a health suspicion). Once
// Eject returns, no subsequent Pick resolves to the backend — the same
// publish-then-revalidate protocol Drain relies on.
func (r *Router) Eject(group int, baseURL string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	if idx < 0 {
		return fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	if p.slots[idx].state != StateActive {
		return nil
	}
	slots := append([]slot(nil), p.slots...)
	slots[idx].state = StateEjected
	r.snap.Store(s.rebuild(group, slots))
	return nil
}

// Reinstate returns an ejected backend to rotation — the failure
// detector's recovery path. Reinstating a backend in any other state is
// a no-op: an active backend needs no help, and a draining one was
// deliberately fenced by the control plane.
func (r *Router) Reinstate(group int, baseURL string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	if idx < 0 {
		return fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	if p.slots[idx].state != StateEjected {
		return nil
	}
	slots := append([]slot(nil), p.slots...)
	slots[idx].state = StateActive
	r.snap.Store(s.rebuild(group, slots))
	return nil
}

// Evict unconditionally deregisters a backend, in-flight requests or
// not — the repair path for a confirmed-dead backend, whose accepted
// work is already lost. Outstanding reservations stay safe: each Picked
// holds its entry directly, so Release still balances the counters; the
// entry is garbage-collected once the last reservation drops. Once
// Evict returns, no subsequent Pick resolves to the backend.
func (r *Router) Evict(group int, baseURL string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	if idx < 0 {
		return fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	slots := append([]slot(nil), p.slots[:idx]...)
	slots = append(slots, p.slots[idx+1:]...)
	r.snap.Store(s.rebuild(group, slots))
	return nil
}

// Picked is a reserved routing decision: the chosen backend with one
// in-flight slot held. Pass it to Release exactly once.
type Picked struct {
	e *entry
}

// URL reports the picked backend's base URL.
func (p Picked) URL() string { return p.e.url }

// Client reports the picked backend's RPC client.
func (p Picked) Client() *rpc.Client { return p.e.client }

// Pick selects a backend for the group under the configured policy and
// reserves an in-flight slot on it. Lock-free: one snapshot load, the
// policy's choice, and an atomic reservation, re-validated against the
// group's current pool so a Pick never resolves to a backend drained
// or removed before the call. Validation is per-pool, not whole-table:
// every mutation of a group allocates a fresh pool object while
// untouched groups keep theirs, so control-plane churn in one group
// never rolls back concurrent picks in another.
func (r *Router) Pick(group int) (Picked, error) {
	for {
		p := r.snap.Load().pool(group)
		if p == nil || len(p.active) == 0 {
			return Picked{}, fmt.Errorf("%w for group %d", ErrNoActiveBackend, group)
		}
		e := r.policy.pick(p)
		e.inflight.Add(1)
		if r.snap.Load().pool(group) == p {
			return Picked{e: e}, nil
		}
		// This group was republished between the pick and the
		// reservation; the entry may just have been drained or removed.
		// Roll back and retry against the new pool.
		e.inflight.Add(-1)
	}
}

// Release returns a picked backend's in-flight slot and folds the
// request's fate into the routed/dropped counters — all atomics, no
// critical section.
func (r *Router) Release(p Picked, ok bool) {
	p.e.inflight.Add(-1)
	if ok {
		r.routed.Add(1)
	} else {
		r.dropped.Add(1)
	}
}

// CountDrop records a request dropped before any backend was picked
// (e.g. no active backend for the group).
func (r *Router) CountDrop() { r.dropped.Add(1) }

// Counters reports the routed/dropped totals.
func (r *Router) Counters() (routed, dropped int64) {
	return r.routed.Load(), r.dropped.Load()
}

// Inflight reports a backend's current in-flight request count.
func (r *Router) Inflight(group int, baseURL string) (int, error) {
	s := r.snap.Load()
	p, idx := s.findSlot(group, baseURL)
	if idx < 0 {
		return 0, fmt.Errorf("%w: group %d url %s", ErrUnknownBackend, group, baseURL)
	}
	return int(p.slots[idx].e.inflight.Load()), nil
}

// Backends reports the registered groups and backend counts (active
// and draining alike — they are all still serving or finishing work).
func (r *Router) Backends() map[int]int {
	s := r.snap.Load()
	out := make(map[int]int, len(s.groups))
	for g, p := range s.groups {
		if p != nil {
			out[g] = len(p.slots)
		}
	}
	return out
}

// Pool snapshots one group's backends in registration order.
func (r *Router) Pool(group int) []BackendInfo {
	p := r.snap.Load().pool(group)
	if p == nil {
		return []BackendInfo{}
	}
	return poolInfos(p)
}

func poolInfos(p *pool) []BackendInfo {
	out := make([]BackendInfo, 0, len(p.slots))
	for _, sl := range p.slots {
		out = append(out, BackendInfo{
			URL:      sl.e.url,
			State:    sl.state,
			Inflight: int(sl.e.inflight.Load()),
		})
	}
	return out
}

// ActiveCount reports how many of a group's backends accept new work.
func (r *Router) ActiveCount(group int) int {
	p := r.snap.Load().pool(group)
	if p == nil {
		return 0
	}
	return len(p.active)
}

// Stats is a consistent point-in-time view of the whole routing table,
// rendered without entering any critical section.
type Stats struct {
	Routed  int64
	Dropped int64
	Pools   map[int][]BackendInfo
}

// Stats snapshots counters and every pool from one atomic snapshot
// load — the /stats endpoint encodes this outside any lock.
func (r *Router) Stats() Stats {
	s := r.snap.Load()
	st := Stats{
		Routed:  r.routed.Load(),
		Dropped: r.dropped.Load(),
		Pools:   make(map[int][]BackendInfo, len(s.groups)),
	}
	for g, p := range s.groups {
		if p != nil {
			st.Pools[g] = poolInfos(p)
		}
	}
	return st
}
