package router

import (
	"errors"
	"fmt"
	"testing"
)

func TestRegisterValidation(t *testing.T) {
	r := New(nil)
	if err := r.Register(-1, "http://x"); err == nil {
		t.Fatal("negative group should fail")
	}
	if err := r.Register(0, ""); err == nil {
		t.Fatal("empty url should fail")
	}
	if err := r.Register(0, "http://x"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(0, "http://x"); err == nil {
		t.Fatal("duplicate registration should fail")
	}
}

func TestLifecycle(t *testing.T) {
	r := New(nil)
	const g = 1
	if err := r.Register(g, "http://a"); err != nil {
		t.Fatal(err)
	}
	if got := r.ActiveCount(g); got != 1 {
		t.Fatalf("active = %d", got)
	}
	if err := r.Drain(g, "http://a"); err != nil {
		t.Fatal(err)
	}
	if got := r.ActiveCount(g); got != 0 {
		t.Fatalf("active = %d after drain", got)
	}
	if _, err := r.Pick(g); !errors.Is(err, ErrNoActiveBackend) {
		t.Fatalf("pick from drained pool: %v", err)
	}
	// Draining again is a no-op.
	if err := r.Drain(g, "http://a"); err != nil {
		t.Fatal(err)
	}
	// Re-register un-drains in place.
	if err := r.Register(g, "http://a"); err != nil {
		t.Fatal(err)
	}
	if got := r.ActiveCount(g); got != 1 {
		t.Fatalf("active = %d after un-drain", got)
	}
	if err := r.Drain(2, "http://a"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("drain of unknown backend: %v", err)
	}
	if err := r.Remove(g, "http://a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(g, "http://a"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("second remove: %v", err)
	}
	if len(r.Pool(g)) != 0 {
		t.Fatal("pool not empty after remove")
	}
	if len(r.Backends()) != 0 {
		t.Fatal("backends not empty after remove")
	}
}

func TestRemoveRefusesInflight(t *testing.T) {
	r := New(nil)
	if err := r.Register(1, "http://a"); err != nil {
		t.Fatal(err)
	}
	p, err := r.Pick(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.URL() != "http://a" {
		t.Fatalf("picked %s", p.URL())
	}
	if err := r.Remove(1, "http://a"); !errors.Is(err, ErrBackendBusy) {
		t.Fatalf("remove with in-flight work: %v", err)
	}
	r.Release(p, true)
	if n, err := r.Inflight(1, "http://a"); err != nil || n != 0 {
		t.Fatalf("inflight = %d, %v", n, err)
	}
	if err := r.Remove(1, "http://a"); err != nil {
		t.Fatal(err)
	}
	routed, dropped := r.Counters()
	if routed != 1 || dropped != 0 {
		t.Fatalf("counters = %d routed, %d dropped", routed, dropped)
	}
}

func TestRoundRobinRotation(t *testing.T) {
	r := New(RoundRobin{})
	urls := []string{"http://a", "http://b", "http://c"}
	for _, u := range urls {
		if err := r.Register(0, u); err != nil {
			t.Fatal(err)
		}
	}
	hits := map[string]int{}
	for i := 0; i < 9; i++ {
		p, err := r.Pick(0)
		if err != nil {
			t.Fatal(err)
		}
		hits[p.URL()]++
		r.Release(p, true)
	}
	for _, u := range urls {
		if hits[u] != 3 {
			t.Fatalf("round robin skewed: %v", hits)
		}
	}
	// The cursor survives a republish: drain c, the rotation over {a,b}
	// continues without restarting.
	if err := r.Drain(0, "http://c"); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		p, err := r.Pick(0)
		if err != nil {
			t.Fatal(err)
		}
		if p.URL() == "http://c" {
			t.Fatal("drained backend picked")
		}
		seen[p.URL()] = true
		r.Release(p, true)
	}
	if len(seen) != 2 {
		t.Fatalf("rotation collapsed after drain: %v", seen)
	}
}

func TestLeastInflightPrefersIdle(t *testing.T) {
	r := New(LeastInflight{})
	if err := r.Register(0, "http://a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(0, "http://b"); err != nil {
		t.Fatal(err)
	}
	// Hold one reservation on a; every new pick must go to the idle b.
	held := holdOn(t, r, "http://a")
	for i := 0; i < 5; i++ {
		p, err := r.Pick(0)
		if err != nil {
			t.Fatal(err)
		}
		if p.URL() != "http://b" {
			t.Fatalf("least-inflight picked loaded backend (pick %d)", i)
		}
		r.Release(p, true)
	}
	r.Release(held, true)
}

// holdOn picks until the reservation lands on url and keeps it held.
// With two backends every policy reaches any idle backend within a few
// picks, so the loop terminates.
func holdOn(t *testing.T, r *Router, url string) Picked {
	t.Helper()
	for i := 0; i < 1000; i++ {
		p, err := r.Pick(0)
		if err != nil {
			t.Fatal(err)
		}
		if p.URL() == url {
			return p
		}
		r.Release(p, true)
	}
	t.Fatalf("policy never picked %s", url)
	return Picked{}
}

func TestPowerOfTwoAvoidsOverload(t *testing.T) {
	r := New(PowerOfTwo{})
	if err := r.Register(0, "http://a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(0, "http://b"); err != nil {
		t.Fatal(err)
	}
	// Hold one reservation on a; with only two backends P2C always
	// compares both, so every pick must land on the idle b.
	held := holdOn(t, r, "http://a")
	for i := 0; i < 20; i++ {
		p, err := r.Pick(0)
		if err != nil {
			t.Fatal(err)
		}
		if p.URL() == "http://a" {
			t.Fatalf("p2c picked the loaded backend on pick %d", i)
		}
		r.Release(p, true)
	}
	r.Release(held, true)
}

func TestParsePolicy(t *testing.T) {
	for _, name := range append(PolicyNames(), "", "round-robin", "power-of-two-choices") {
		if _, err := ParsePolicy(name); err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("unknown policy should fail")
	}
	p, err := ParsePolicy("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != PolicyRoundRobin {
		t.Fatalf("empty policy resolved to %s", p.Name())
	}
}

func TestStatsSnapshot(t *testing.T) {
	r := New(nil)
	if err := r.Register(1, "http://a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(2, "http://b"); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain(2, "http://b"); err != nil {
		t.Fatal(err)
	}
	p, err := r.Pick(1)
	if err != nil {
		t.Fatal(err)
	}
	r.CountDrop()
	st := r.Stats()
	if st.Dropped != 1 || st.Routed != 0 {
		t.Fatalf("stats counters = %+v", st)
	}
	if got := fmt.Sprint(st.Pools[1]); got != "[{http://a active  1 0 0 false}]" {
		t.Fatalf("pool 1 = %s", got)
	}
	if got := fmt.Sprint(st.Pools[2]); got != "[{http://b draining  0 0 0 false}]" {
		t.Fatalf("pool 2 = %s", got)
	}
	r.Release(p, true)
	if routed, _ := r.Counters(); routed != 1 {
		t.Fatalf("routed = %d", routed)
	}
}

func TestPickUnknownGroup(t *testing.T) {
	r := New(nil)
	if _, err := r.Pick(9); !errors.Is(err, ErrNoActiveBackend) {
		t.Fatalf("pick from unknown group: %v", err)
	}
	if _, err := r.Inflight(9, "http://x"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("inflight of unknown backend: %v", err)
	}
	if r.ActiveCount(9) != 0 {
		t.Fatal("unknown group should report 0 active")
	}
}
