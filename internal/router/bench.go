package router

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"accelcloud/internal/stats"
)

// ReportSchema identifies the BENCH_router.json wire format consumed by
// cmd/benchdiff.
const ReportSchema = "accelcloud/router-report/v1"

// BenchConfig parameterizes one routing micro-benchmark: a tight
// pick/release loop (no network, no backend execution — the pure
// routing decision) run from Goroutines workers against one group of
// Backends.
type BenchConfig struct {
	// Policies names the policies to measure (empty = all).
	Policies []string
	// Backends is the pool size of the benched group (0 selects 8).
	Backends int
	// Goroutines is the concurrent picker count (0 selects
	// GOMAXPROCS).
	Goroutines int
	// Ops is the total pick/release operations per policy (0 selects
	// 1 << 20).
	Ops int
	// MutexBaseline also measures the pre-refactor global-mutex router
	// for the speedup column (default on via RunBench).
	MutexBaseline bool
}

// PolicyResult is one measured configuration.
type PolicyResult struct {
	// Policy is the pick policy name ("mutex-rr" for the baseline).
	Policy string `json:"policy"`
	// Goroutines is the concurrency the numbers were measured at.
	Goroutines int `json:"goroutines"`
	// Ops is the total pick/release operations performed.
	Ops int `json:"ops"`
	// ThroughputOpsPerSec is Ops over wall-clock time.
	ThroughputOpsPerSec float64 `json:"throughputOpsPerSec"`
	// PickP50Us / PickP99Us are sampled per-pick latencies in
	// microseconds (every sampleEvery-th op, so the timer itself does
	// not dominate the measured cost).
	PickP50Us float64 `json:"pickP50Us"`
	PickP99Us float64 `json:"pickP99Us"`
}

// BenchReport is the machine-readable outcome (BENCH_router.json).
type BenchReport struct {
	Schema     string `json:"schema"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numCPU"`
	Backends   int    `json:"backends"`

	Policies []PolicyResult `json:"policies"`
	// MutexBaseline is the pre-refactor single-mutex round-robin
	// router measured under the identical load.
	MutexBaseline *PolicyResult `json:"mutexBaseline,omitempty"`
	// SpeedupVsMutex is lock-free round-robin throughput over the
	// mutex baseline's — the machine-portable headline number (both
	// sides scale with the host, their ratio far less so).
	SpeedupVsMutex float64 `json:"speedupVsMutex,omitempty"`
}

// sampleEvery controls pick-latency sampling: timing every operation
// would put two clock reads inside a ~100 ns critical path and measure
// the clock instead of the router.
const sampleEvery = 64

func (c BenchConfig) withDefaults() (BenchConfig, error) {
	if len(c.Policies) == 0 {
		c.Policies = PolicyNames()
	}
	if c.Backends == 0 {
		c.Backends = 8
	}
	if c.Backends < 0 {
		return c, fmt.Errorf("router: backends %d < 0", c.Backends)
	}
	if c.Goroutines == 0 {
		c.Goroutines = runtime.GOMAXPROCS(0)
	}
	if c.Goroutines < 0 {
		return c, fmt.Errorf("router: goroutines %d < 0", c.Goroutines)
	}
	if c.Ops == 0 {
		c.Ops = 1 << 20
	}
	if c.Ops < 0 {
		return c, fmt.Errorf("router: ops %d < 0", c.Ops)
	}
	return c, nil
}

// picker abstracts the routers under measurement so the lock-free
// implementations and the mutex baseline run the identical loop.
type picker interface {
	pickRelease() error
}

type routerPicker struct{ r *Router }

func (p routerPicker) pickRelease() error {
	pk, err := p.r.Pick(0)
	if err != nil {
		return err
	}
	p.r.Release(pk, true)
	return nil
}

// mutexRouter replicates the pre-refactor sdn.FrontEnd data plane: one
// global mutex serializing pick, release, and the counters. Kept as the
// benchmark baseline the lock-free router is gated against.
type mutexRouter struct {
	mu       sync.Mutex
	inflight []int
	rr       int
	routed   int64
}

func newMutexRouter(backends int) *mutexRouter {
	return &mutexRouter{inflight: make([]int, backends)}
}

func (m *mutexRouter) pickRelease() error {
	m.mu.Lock()
	k := m.rr % len(m.inflight)
	m.rr++
	m.inflight[k]++
	m.mu.Unlock()

	m.mu.Lock()
	m.inflight[k]--
	m.routed++
	m.mu.Unlock()
	return nil
}

// benchOne drives Ops pick/release operations through p from
// cfg.Goroutines workers and folds sampled pick latencies into the
// result.
func benchOne(name string, p picker, cfg BenchConfig) (PolicyResult, error) {
	perWorker := cfg.Ops / cfg.Goroutines
	if perWorker < 1 {
		perWorker = 1
	}
	hists := make([]*stats.LogHist, cfg.Goroutines)
	errs := make([]error, cfg.Goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Goroutines; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// 10 ns .. 10 ms in µs at ≤5% relative error per bucket.
			h, err := stats.NewLogHist(0.01, 10_000, 1.05)
			if err != nil {
				errs[w] = err
				return
			}
			for i := 0; i < perWorker; i++ {
				if i%sampleEvery == 0 {
					t0 := time.Now()
					if err := p.pickRelease(); err != nil {
						errs[w] = err
						return
					}
					h.Add(float64(time.Since(t0)) / float64(time.Microsecond))
					continue
				}
				if err := p.pickRelease(); err != nil {
					errs[w] = err
					return
				}
			}
			hists[w] = h
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return PolicyResult{}, fmt.Errorf("router: bench %s: %w", name, err)
		}
	}
	merged, err := stats.NewLogHist(0.01, 10_000, 1.05)
	if err != nil {
		return PolicyResult{}, err
	}
	for _, h := range hists {
		if err := merged.Merge(h); err != nil {
			return PolicyResult{}, err
		}
	}
	q := func(p float64) float64 {
		v, _ := merged.Quantile(p)
		return v
	}
	ops := perWorker * cfg.Goroutines
	res := PolicyResult{
		Policy:     name,
		Goroutines: cfg.Goroutines,
		Ops:        ops,
		PickP50Us:  q(0.50),
		PickP99Us:  q(0.99),
	}
	if wall > 0 {
		res.ThroughputOpsPerSec = float64(ops) / wall.Seconds()
	}
	return res, nil
}

// RunBench measures pick/release throughput and sampled pick latency
// for each configured policy, plus the global-mutex baseline, and
// returns the BENCH_router.json report.
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rep := &BenchReport{
		Schema:     ReportSchema,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Backends:   cfg.Backends,
	}
	var rrThroughput float64
	for _, name := range cfg.Policies {
		policy, err := ParsePolicy(name)
		if err != nil {
			return nil, err
		}
		r := New(policy)
		for i := 0; i < cfg.Backends; i++ {
			if err := r.Register(0, fmt.Sprintf("http://bench-%d", i)); err != nil {
				return nil, err
			}
		}
		res, err := benchOne(policy.Name(), routerPicker{r}, cfg)
		if err != nil {
			return nil, err
		}
		if policy.Name() == PolicyRoundRobin {
			rrThroughput = res.ThroughputOpsPerSec
		}
		rep.Policies = append(rep.Policies, res)
	}
	if cfg.MutexBaseline {
		res, err := benchOne("mutex-rr", newMutexRouter(cfg.Backends), cfg)
		if err != nil {
			return nil, err
		}
		rep.MutexBaseline = &res
		if res.ThroughputOpsPerSec > 0 && rrThroughput > 0 {
			rep.SpeedupVsMutex = rrThroughput / res.ThroughputOpsPerSec
		}
	}
	return rep, nil
}

// WriteJSON writes the report, indented, to w.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *BenchReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("router: %w", err)
	}
	defer func() { _ = f.Close() }()
	return r.WriteJSON(f)
}

// ReadBenchReport parses a report and verifies its schema.
func ReadBenchReport(rd io.Reader) (*BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("router: decode report: %w", err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("router: schema %q, want %q", rep.Schema, ReportSchema)
	}
	return &rep, nil
}

// ReadBenchReportFile parses a report file.
func ReadBenchReportFile(path string) (*BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("router: %w", err)
	}
	defer func() { _ = f.Close() }()
	return ReadBenchReport(f)
}

// Summary renders the human-readable table the CLI prints.
func (r *BenchReport) Summary() string {
	out := fmt.Sprintf("router bench gomaxprocs=%d numcpu=%d backends=%d\n",
		r.GoMaxProcs, r.NumCPU, r.Backends)
	out += fmt.Sprintf("%-16s %10s %14s %10s %10s\n",
		"policy", "goroutines", "ops/sec", "p50_us", "p99_us")
	row := func(p PolicyResult) string {
		return fmt.Sprintf("%-16s %10d %14.0f %10.3f %10.3f\n",
			p.Policy, p.Goroutines, p.ThroughputOpsPerSec, p.PickP50Us, p.PickP99Us)
	}
	for _, p := range r.Policies {
		out += row(p)
	}
	if r.MutexBaseline != nil {
		out += row(*r.MutexBaseline)
		out += fmt.Sprintf("speedup rr vs mutex-rr: %.2fx\n", r.SpeedupVsMutex)
	}
	return out
}
