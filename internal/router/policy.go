package router

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync/atomic"
)

// Policy chooses among a group's active backends. Implementations must
// be safe for concurrent use and lock-free: pick runs on the request
// hot path against an immutable pool (len(pool.active) >= 1) and may
// only touch the pool's atomic cursor, the entries' atomic in-flight
// counters, and scalable randomness (math/rand/v2's per-thread
// generators).
type Policy interface {
	// Name is the stable identifier ParsePolicy accepts and reports
	// serialize.
	Name() string
	pick(p *pool) *entry
}

// Policy names accepted by ParsePolicy.
const (
	PolicyRoundRobin    = "rr"
	PolicyLeastInflight = "least-inflight"
	PolicyPowerOfTwo    = "p2c"
	// PolicyCanaryPrefix heads weighted canary specs:
	// "canary:<version>=<weight>" (e.g. "canary:v2=0.05").
	PolicyCanaryPrefix = "canary:"
)

// PolicyNames lists the fixed policy names. ParsePolicy additionally
// accepts parameterized canary specs ("canary:<version>=<weight>"),
// which are unbounded and therefore not enumerated here.
func PolicyNames() []string {
	return []string{PolicyRoundRobin, PolicyLeastInflight, PolicyPowerOfTwo}
}

// ParsePolicy resolves a policy name ("rr", "least-inflight", "p2c",
// "canary:v2=0.05"). The empty string selects round-robin.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", PolicyRoundRobin, "round-robin":
		return RoundRobin{}, nil
	case PolicyLeastInflight:
		return LeastInflight{}, nil
	case PolicyPowerOfTwo, "power-of-two", "power-of-two-choices":
		return PowerOfTwo{}, nil
	}
	if spec, ok := strings.CutPrefix(name, PolicyCanaryPrefix); ok {
		version, weightStr, ok := strings.Cut(spec, "=")
		if !ok || version == "" {
			return nil, fmt.Errorf("router: canary policy %q: want canary:<version>=<weight>", name)
		}
		w, err := strconv.ParseFloat(weightStr, 64)
		if err != nil {
			return nil, fmt.Errorf("router: canary policy %q: bad weight: %w", name, err)
		}
		return NewCanary(version, w)
	}
	return nil, fmt.Errorf("router: unknown policy %q (want %s|canary:<version>=<weight>)",
		name, strings.Join(PolicyNames(), "|"))
}

// RoundRobin rotates through the active backends with one atomic
// counter per group — the cheapest policy and the seed repository's
// historical behaviour; the cursor survives pool republishes so the
// rotation never restarts on a scale event.
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return PolicyRoundRobin }

func (RoundRobin) pick(p *pool) *entry {
	i := p.rr.Add(1) - 1
	return p.active[i%uint64(len(p.active))]
}

// LeastInflight picks the active backend with the fewest in-flight
// requests, scanning from a rotating start so ties spread instead of
// herding onto the first backend. O(n) per pick — best for small pools
// with heterogeneous request costs.
type LeastInflight struct{}

// Name implements Policy.
func (LeastInflight) Name() string { return PolicyLeastInflight }

func (LeastInflight) pick(p *pool) *entry {
	n := uint64(len(p.active))
	start := (p.rr.Add(1) - 1) % n
	best := p.active[start]
	bestLoad := best.inflight.Load()
	for i := uint64(1); i < n; i++ {
		e := p.active[(start+i)%n]
		if load := e.inflight.Load(); load < bestLoad {
			best, bestLoad = e, load
		}
	}
	return best
}

// PowerOfTwo samples two distinct random active backends and picks the
// less loaded — near-least-inflight balance at O(1) cost, immune to the
// thundering-herd correlation of deterministic scans (Mitzenmacher's
// power of two choices).
type PowerOfTwo struct{}

// Name implements Policy.
func (PowerOfTwo) Name() string { return PolicyPowerOfTwo }

// Canary splits traffic by backend version label: Weight of the picks
// go to backends registered (RegisterVersion) with the canary Version,
// the rest to everything else — the rollout lever for a new surrogate
// build. The split is a deterministic low-discrepancy stripe over an
// atomic counter (every 1/Weight-th pick is a canary pick, to
// basis-point resolution), so hermetic runs reproduce exactly; within
// each side of the split the picks round-robin off the pool cursor.
// When the wanted side has no backends the pick falls through to the
// whole active set, so a canary weight never turns routable traffic
// into errors.
type Canary struct {
	version string
	weight  float64
	bp      uint64 // weight in basis points of 10_000
	n       atomic.Uint64
}

// NewCanary builds a canary policy sending weight (0..1) of traffic to
// backends labeled version.
func NewCanary(version string, weight float64) (*Canary, error) {
	if version == "" {
		return nil, fmt.Errorf("router: canary needs a version label")
	}
	if weight < 0 || weight > 1 {
		return nil, fmt.Errorf("router: canary weight %g outside [0,1]", weight)
	}
	return &Canary{version: version, weight: weight, bp: uint64(weight*10000 + 0.5)}, nil
}

// Name implements Policy, round-tripping through ParsePolicy.
func (c *Canary) Name() string {
	return fmt.Sprintf("%s%s=%g", PolicyCanaryPrefix, c.version, c.weight)
}

// Version and Weight expose the canary split parameters.
func (c *Canary) Version() string { return c.version }
func (c *Canary) Weight() float64 { return c.weight }

func (c *Canary) pick(p *pool) *entry {
	n := c.n.Add(1) - 1
	// Low-discrepancy stripe: pick n is a canary pick when the
	// accumulated weight crosses an integer at n, spreading canary
	// picks evenly instead of in bursts.
	wantCanary := (n*c.bp)%10000 < c.bp && c.bp > 0
	start := p.rr.Add(1) - 1
	m := uint64(len(p.active))
	for i := uint64(0); i < m; i++ {
		e := p.active[(start+i)%m]
		if (e.version == c.version) == wantCanary {
			return e
		}
	}
	// No backend on the wanted side of the split; serve from the other.
	return p.active[start%m]
}

func (PowerOfTwo) pick(p *pool) *entry {
	n := len(p.active)
	if n == 1 {
		return p.active[0]
	}
	i := rand.IntN(n)
	j := rand.IntN(n - 1)
	if j >= i {
		j++
	}
	a, b := p.active[i], p.active[j]
	if b.inflight.Load() < a.inflight.Load() {
		return b
	}
	return a
}
