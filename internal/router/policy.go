package router

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// Policy chooses among a group's active backends. Implementations must
// be safe for concurrent use and lock-free: pick runs on the request
// hot path against an immutable pool (len(pool.active) >= 1) and may
// only touch the pool's atomic cursor, the entries' atomic in-flight
// counters, and scalable randomness (math/rand/v2's per-thread
// generators).
type Policy interface {
	// Name is the stable identifier ParsePolicy accepts and reports
	// serialize.
	Name() string
	pick(p *pool) *entry
}

// Policy names accepted by ParsePolicy.
const (
	PolicyRoundRobin    = "rr"
	PolicyLeastInflight = "least-inflight"
	PolicyPowerOfTwo    = "p2c"
)

// PolicyNames lists the accepted policy names.
func PolicyNames() []string {
	return []string{PolicyRoundRobin, PolicyLeastInflight, PolicyPowerOfTwo}
}

// ParsePolicy resolves a policy name ("rr", "least-inflight", "p2c").
// The empty string selects round-robin.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", PolicyRoundRobin, "round-robin":
		return RoundRobin{}, nil
	case PolicyLeastInflight:
		return LeastInflight{}, nil
	case PolicyPowerOfTwo, "power-of-two", "power-of-two-choices":
		return PowerOfTwo{}, nil
	}
	return nil, fmt.Errorf("router: unknown policy %q (want %s)",
		name, strings.Join(PolicyNames(), "|"))
}

// RoundRobin rotates through the active backends with one atomic
// counter per group — the cheapest policy and the seed repository's
// historical behaviour; the cursor survives pool republishes so the
// rotation never restarts on a scale event.
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return PolicyRoundRobin }

func (RoundRobin) pick(p *pool) *entry {
	i := p.rr.Add(1) - 1
	return p.active[i%uint64(len(p.active))]
}

// LeastInflight picks the active backend with the fewest in-flight
// requests, scanning from a rotating start so ties spread instead of
// herding onto the first backend. O(n) per pick — best for small pools
// with heterogeneous request costs.
type LeastInflight struct{}

// Name implements Policy.
func (LeastInflight) Name() string { return PolicyLeastInflight }

func (LeastInflight) pick(p *pool) *entry {
	n := uint64(len(p.active))
	start := (p.rr.Add(1) - 1) % n
	best := p.active[start]
	bestLoad := best.inflight.Load()
	for i := uint64(1); i < n; i++ {
		e := p.active[(start+i)%n]
		if load := e.inflight.Load(); load < bestLoad {
			best, bestLoad = e, load
		}
	}
	return best
}

// PowerOfTwo samples two distinct random active backends and picks the
// less loaded — near-least-inflight balance at O(1) cost, immune to the
// thundering-herd correlation of deterministic scans (Mitzenmacher's
// power of two choices).
type PowerOfTwo struct{}

// Name implements Policy.
func (PowerOfTwo) Name() string { return PolicyPowerOfTwo }

func (PowerOfTwo) pick(p *pool) *entry {
	n := len(p.active)
	if n == 1 {
		return p.active[0]
	}
	i := rand.IntN(n)
	j := rand.IntN(n - 1)
	if j >= i {
		j++
	}
	a, b := p.active[i], p.active[j]
	if b.inflight.Load() < a.inflight.Load() {
		return b
	}
	return a
}
