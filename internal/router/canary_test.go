package router

import (
	"testing"
)

func TestParseCanaryPolicy(t *testing.T) {
	p, err := ParsePolicy("canary:v2=0.05")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := p.(*Canary)
	if !ok {
		t.Fatalf("parsed %T, want *Canary", p)
	}
	if c.Version() != "v2" || c.Weight() != 0.05 {
		t.Fatalf("canary = %s/%g", c.Version(), c.Weight())
	}
	if c.Name() != "canary:v2=0.05" {
		t.Fatalf("Name() = %q, does not round-trip", c.Name())
	}
	for _, bad := range []string{
		"canary:",         // no spec
		"canary:v2",       // no weight
		"canary:=0.1",     // no version
		"canary:v2=x",     // non-numeric weight
		"canary:v2=1.5",   // weight out of range
		"canary:v2=-0.01", // negative weight
	} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Fatalf("ParsePolicy(%q) accepted a bad spec", bad)
		}
	}
}

// TestCanarySplitDeterministic registers a stable and a canary backend
// and proves the 10% stripe: exactly weight*N of N picks land on the
// canary, spread (not bursty — every window of 10 consecutive picks
// holds exactly one canary pick), and a re-run reproduces the same
// sequence.
func TestCanarySplitDeterministic(t *testing.T) {
	sequence := func() []string {
		pol, err := ParsePolicy("canary:v2=0.1")
		if err != nil {
			t.Fatal(err)
		}
		r := New(pol)
		if err := r.RegisterVersion(1, "http://stable", ""); err != nil {
			t.Fatal(err)
		}
		if err := r.RegisterVersion(1, "http://canary", "v2"); err != nil {
			t.Fatal(err)
		}
		urls := make([]string, 1000)
		for i := range urls {
			p, err := r.Pick(1)
			if err != nil {
				t.Fatal(err)
			}
			urls[i] = p.URL()
			r.Release(p, true)
		}
		return urls
	}

	first := sequence()
	canary := 0
	for _, u := range first {
		if u == "http://canary" {
			canary++
		}
	}
	if canary != 100 {
		t.Fatalf("canary picks = %d/1000, want exactly 100 at weight 0.1", canary)
	}
	for w := 0; w+10 <= len(first); w += 10 {
		n := 0
		for _, u := range first[w : w+10] {
			if u == "http://canary" {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("window [%d,%d) holds %d canary picks, want 1 (stripe is bursty)", w, w+10, n)
		}
	}
	second := sequence()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("pick %d diverged across same-seed runs: %s vs %s", i, first[i], second[i])
		}
	}
}

// TestCanaryFallsThroughWhenSideEmpty proves a canary weight never
// blackholes traffic: with no canary-labeled backend every pick serves
// from the stable side, and with only canary backends the stable picks
// fall through to the canary.
func TestCanaryFallsThroughWhenSideEmpty(t *testing.T) {
	pol, err := ParsePolicy("canary:v2=0.5")
	if err != nil {
		t.Fatal(err)
	}
	r := New(pol)
	if err := r.Register(1, "http://stable"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p, err := r.Pick(1)
		if err != nil {
			t.Fatalf("pick %d with empty canary side: %v", i, err)
		}
		if p.URL() != "http://stable" {
			t.Fatalf("pick %d = %s", i, p.URL())
		}
		r.Release(p, true)
	}

	pol2, err := ParsePolicy("canary:v2=0.0")
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(pol2)
	if err := r2.RegisterVersion(1, "http://canary", "v2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p, err := r2.Pick(1)
		if err != nil {
			t.Fatalf("pick %d with empty stable side: %v", i, err)
		}
		r2.Release(p, true)
	}
}
