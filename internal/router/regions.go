package router

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// The region tier sits one level above the backend pools: where a
// Router picks a surrogate inside one region, a Regions set picks which
// region's front-end a device-side call enters. It reuses the same RCU
// discipline as the backend snapshot — immutable snapshots behind an
// atomic pointer, reserve-then-revalidate picks, publish-under-mutex
// mutations — so the fence guarantee carries over verbatim: once
// MarkDown (or Remove) returns, no PickFirst that started afterwards
// can resolve into that region.

// RegionState is a region's routability.
type RegionState int32

const (
	// RegionUp takes traffic.
	RegionUp RegionState = iota
	// RegionDown is fenced: chaos-killed or failing health probes. The
	// spillover path skips it and re-routes to the next region in the
	// device's preference order.
	RegionDown
)

// String renders the state for /stats payloads and test failures.
func (s RegionState) String() string {
	if s == RegionUp {
		return "up"
	}
	return "down"
}

// ErrNoRegion means every region in the caller's preference order is
// Down (or unknown): the device has nowhere left to spill.
var ErrNoRegion = errors.New("router: no Up region in preference order")

// regionEntry is one region's identity plus its in-flight reservation
// count. Entries are shared across snapshots so the count survives
// state flips.
type regionEntry struct {
	name     string
	inflight atomic.Int64
}

// regionSlot pairs an entry with its state in one snapshot.
type regionSlot struct {
	e     *regionEntry
	state RegionState
}

// regionSnapshot is one immutable generation of the region set.
type regionSnapshot struct {
	slots []regionSlot
	index map[string]int
}

// Regions is the concurrent region set. The zero value is not usable;
// construct with NewRegions.
type Regions struct {
	snap atomic.Pointer[regionSnapshot]
	mu   sync.Mutex // serializes mutations; reads never take it
}

// NewRegions builds a set with the given regions, all Up.
func NewRegions(names ...string) (*Regions, error) {
	r := &Regions{}
	r.snap.Store(&regionSnapshot{index: map[string]int{}})
	for _, n := range names {
		if err := r.Add(n); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// rebuild clones the current snapshot's slots for mutation. Callers
// hold r.mu.
func (r *Regions) rebuild() []regionSlot {
	old := r.snap.Load()
	slots := make([]regionSlot, len(old.slots))
	copy(slots, old.slots)
	return slots
}

// publish installs slots as the new snapshot. Callers hold r.mu.
func (r *Regions) publish(slots []regionSlot) {
	idx := make(map[string]int, len(slots))
	for i, s := range slots {
		idx[s.e.name] = i
	}
	r.snap.Store(&regionSnapshot{slots: slots, index: idx})
}

// Add registers a new region, initially Up.
func (r *Regions) Add(name string) error {
	if name == "" {
		return errors.New("router: empty region name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.snap.Load().index[name]; dup {
		return fmt.Errorf("router: region %q already registered", name)
	}
	slots := append(r.rebuild(), regionSlot{e: &regionEntry{name: name}, state: RegionUp})
	r.publish(slots)
	return nil
}

// setState flips one region's state and publishes the new generation.
func (r *Regions) setState(name string, st RegionState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.snap.Load().index[name]
	if !ok {
		return fmt.Errorf("router: unknown region %q", name)
	}
	slots := r.rebuild()
	slots[i].state = st
	r.publish(slots)
	return nil
}

// MarkDown fences a region. When MarkDown returns, the Down snapshot is
// published: any PickFirst that starts afterwards skips the region, and
// picks racing the flip either revalidate against the new snapshot or
// roll back and retry — none resolve into the fenced region.
func (r *Regions) MarkDown(name string) error { return r.setState(name, RegionDown) }

// MarkUp reinstates a recovered region.
func (r *Regions) MarkUp(name string) error { return r.setState(name, RegionUp) }

// Remove deregisters a region entirely. It refuses while calls are in
// flight: the removal is published first (fencing new picks), then the
// reservation count is rechecked — if stragglers hold reservations the
// removal rolls back and the caller retries after they drain.
func (r *Regions) Remove(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.snap.Load()
	i, ok := old.index[name]
	if !ok {
		return fmt.Errorf("router: unknown region %q", name)
	}
	e := old.slots[i].e
	slots := r.rebuild()
	r.publish(append(slots[:i:i], slots[i+1:]...))
	if n := e.inflight.Load(); n != 0 {
		// Publish-then-recheck: the removal fenced new picks, but a
		// pick that reserved before the flip may still be in flight.
		// Roll the old generation back and report the conflict.
		r.publish(slots)
		return fmt.Errorf("router: region %q has %d calls in flight", name, n)
	}
	return nil
}

// State reports a region's current state.
func (r *Regions) State(name string) (RegionState, bool) {
	s := r.snap.Load()
	i, ok := s.index[name]
	if !ok {
		return RegionDown, false
	}
	return s.slots[i].state, true
}

// Inflight reports a region's current reservation count (0 for unknown
// regions).
func (r *Regions) Inflight(name string) int64 {
	s := r.snap.Load()
	if i, ok := s.index[name]; ok {
		return s.slots[i].e.inflight.Load()
	}
	return 0
}

// Names lists the registered regions in registration order.
func (r *Regions) Names() []string {
	s := r.snap.Load()
	out := make([]string, 0, len(s.slots))
	for _, sl := range s.slots {
		out = append(out, sl.e.name)
	}
	return out
}

// View reports every region's state — the /stats rendering.
func (r *Regions) View() map[string]string {
	s := r.snap.Load()
	out := make(map[string]string, len(s.slots))
	for _, sl := range s.slots {
		out[sl.e.name] = sl.state.String()
	}
	return out
}

// RegionPick is one reserved region; callers must Release it when the
// call resolves.
type RegionPick struct {
	e *regionEntry
}

// Name is the picked region.
func (p RegionPick) Name() string { return p.e.name }

// PickFirst reserves the first Up region in the caller's preference
// order (nearest first, from the device's RTT selector). The reserve is
// revalidated against the live snapshot: if a mutation published while
// the reservation was being taken, the pick rolls back and re-reads —
// so a region fenced by MarkDown can never be returned by a PickFirst
// that started after MarkDown returned.
func (r *Regions) PickFirst(order []string) (RegionPick, error) {
	for {
		s := r.snap.Load()
		var e *regionEntry
		for _, name := range order {
			i, ok := s.index[name]
			if !ok || s.slots[i].state != RegionUp {
				continue
			}
			e = s.slots[i].e
			break
		}
		if e == nil {
			return RegionPick{}, ErrNoRegion
		}
		e.inflight.Add(1)
		if r.snap.Load() == s {
			return RegionPick{e: e}, nil
		}
		// A mutation raced the reservation; the region may have been
		// fenced between read and reserve. Roll back and re-read.
		e.inflight.Add(-1)
	}
}

// Release returns a pick's reservation.
func (r *Regions) Release(p RegionPick) {
	if p.e != nil {
		p.e.inflight.Add(-1)
	}
}
