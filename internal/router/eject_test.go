package router

import (
	"errors"
	"testing"
	"time"
)

func TestEjectReinstateLifecycle(t *testing.T) {
	r := New(nil)
	const g = 3
	for _, u := range []string{"http://a", "http://b"} {
		if err := r.Register(g, u); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Eject(g, "http://a"); err != nil {
		t.Fatal(err)
	}
	if got := r.ActiveCount(g); got != 1 {
		t.Fatalf("active = %d after eject, want 1", got)
	}
	// The ejected backend stays registered and visible.
	infos := r.Pool(g)
	if len(infos) != 2 || infos[0].State != StateEjected {
		t.Fatalf("pool after eject = %+v", infos)
	}
	// Every pick lands on the survivor.
	for i := 0; i < 8; i++ {
		p, err := r.Pick(g)
		if err != nil {
			t.Fatal(err)
		}
		if p.URL() != "http://b" {
			t.Fatalf("pick resolved to ejected backend %s", p.URL())
		}
		r.Release(p, true)
	}
	// Eject is idempotent; ejecting a draining backend is a no-op.
	if err := r.Eject(g, "http://a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain(g, "http://b"); err != nil {
		t.Fatal(err)
	}
	if err := r.Eject(g, "http://b"); err != nil {
		t.Fatal(err)
	}
	if infos := r.Pool(g); infos[1].State != StateDraining {
		t.Fatalf("drain decision overwritten by eject: %+v", infos)
	}
	// Reinstate returns the ejected backend; draining is untouched.
	if err := r.Reinstate(g, "http://a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Reinstate(g, "http://b"); err != nil {
		t.Fatal(err)
	}
	infos = r.Pool(g)
	if infos[0].State != StateActive || infos[1].State != StateDraining {
		t.Fatalf("states after reinstate = %+v", infos)
	}
	if err := r.Eject(g, "http://missing"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("eject unknown = %v", err)
	}
	if err := r.Reinstate(g, "http://missing"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("reinstate unknown = %v", err)
	}
}

func TestEvictIgnoresInflight(t *testing.T) {
	r := New(nil)
	const g = 0
	if err := r.Register(g, "http://a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(g, "http://b"); err != nil {
		t.Fatal(err)
	}
	// Hold a reservation on the backend about to die.
	var held Picked
	for {
		p, err := r.Pick(g)
		if err != nil {
			t.Fatal(err)
		}
		if p.URL() == "http://a" {
			held = p
			break
		}
		r.Release(p, true)
	}
	// Remove refuses while in flight; Evict does not.
	if err := r.Remove(g, "http://a"); !errors.Is(err, ErrBackendBusy) {
		t.Fatalf("remove with in-flight = %v, want ErrBackendBusy", err)
	}
	if err := r.Evict(g, "http://a"); err != nil {
		t.Fatal(err)
	}
	if got := r.Backends()[g]; got != 1 {
		t.Fatalf("pool size after evict = %d, want 1", got)
	}
	// The orphaned reservation still releases cleanly.
	r.Release(held, false)
	if err := r.Evict(g, "http://a"); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("double evict = %v", err)
	}
}

func TestSetClientTimeoutAppliesToNewBackends(t *testing.T) {
	r := New(nil)
	r.SetClientTimeout(123 * time.Millisecond)
	if err := r.Register(0, "http://a"); err != nil {
		t.Fatal(err)
	}
	p, err := r.Pick(0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release(p, true)
	if got := p.Client().Timeout; got != 123*time.Millisecond {
		t.Fatalf("client timeout = %v, want 123ms", got)
	}
}

func TestRegisterEjectedURLFails(t *testing.T) {
	// Reinstate, not Register, is the recovery path for an ejected
	// backend: re-registering would silently overrule the failure
	// detector.
	r := New(nil)
	if err := r.Register(0, "http://a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Eject(0, "http://a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(0, "http://a"); err == nil {
		t.Fatal("registering an ejected URL should fail")
	}
}
