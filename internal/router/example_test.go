package router_test

import (
	"fmt"

	"accelcloud/internal/router"
)

// ExampleRoundRobin shows the cheapest policy rotating through a
// group's active backends with one atomic cursor — and the cursor
// surviving a control-plane republish (the drain) without restarting.
func ExampleRoundRobin() {
	r := router.New(router.RoundRobin{})
	_ = r.Register(1, "http://a")
	_ = r.Register(1, "http://b")
	for i := 0; i < 3; i++ {
		p, _ := r.Pick(1)
		fmt.Println(p.URL())
		r.Release(p, true)
	}
	// Draining b republishes the pool; the rotation continues from the
	// carried cursor instead of resetting to the first backend.
	_ = r.Drain(1, "http://b")
	p, _ := r.Pick(1)
	fmt.Println(p.URL())
	r.Release(p, true)
	// Output:
	// http://a
	// http://b
	// http://a
	// http://a
}

// ExampleLeastInflight shows load-aware picking: while one backend
// holds an outstanding request, every new pick prefers the idle one.
func ExampleLeastInflight() {
	r := router.New(router.LeastInflight{})
	_ = r.Register(1, "http://a")
	_ = r.Register(1, "http://b")
	// Hold a's reservation open, simulating a slow request in flight.
	held, _ := r.Pick(1)
	fmt.Println("held:", held.URL())
	for i := 0; i < 2; i++ {
		p, _ := r.Pick(1)
		fmt.Println("pick:", p.URL())
		r.Release(p, true)
	}
	r.Release(held, true)
	// Output:
	// held: http://a
	// pick: http://b
	// pick: http://b
}

// ExamplePowerOfTwo shows the O(1) randomized policy: with two
// backends both random samples cover the pool, so the less-loaded one
// always wins even though the sampling itself is random.
func ExamplePowerOfTwo() {
	r := router.New(router.PowerOfTwo{})
	_ = r.Register(1, "http://a")
	_ = r.Register(1, "http://b")
	held, _ := r.Pick(1) // load one backend
	for i := 0; i < 3; i++ {
		p, _ := r.Pick(1)
		fmt.Println(p.URL() == held.URL())
		r.Release(p, true)
	}
	r.Release(held, true)
	// Output:
	// false
	// false
	// false
}

// ExampleParsePolicy resolves the -policy flag names the binaries
// accept into policies.
func ExampleParsePolicy() {
	for _, name := range []string{"", "rr", "least-inflight", "p2c"} {
		p, err := router.ParsePolicy(name)
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Printf("%q -> %s\n", name, p.Name())
	}
	// Output:
	// "" -> rr
	// "rr" -> rr
	// "least-inflight" -> least-inflight
	// "p2c" -> p2c
}
