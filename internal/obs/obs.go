// Package obs is the serving stack's metrics layer: a zero-allocation
// registry of atomic counters and gauges plus log-bucketed latency
// histograms (stats.LogHist), rendered on demand as Prometheus text
// exposition. Hot paths pay one atomic add (counters/gauges) or one
// short mutex hold (histograms) per event and never allocate; all
// string formatting happens at scrape time.
//
// Metric names follow prometheus conventions: snake_case, an
// `accel_` namespace prefix, unit suffixes (`_total` for counters,
// `_ms` for latency histograms). Labels are baked into the series at
// registration ("accel_offloads_total{proto=\"json\"}"), so the
// per-event path carries no label hashing.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"accelcloud/internal/stats"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (must be >= 0 for prometheus semantics; not enforced
// on the hot path).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram wraps a stats.LogHist behind a mutex: Observe is one lock
// plus one bucket increment, with zero allocations (the bucket slice
// is preallocated by NewLogHist). Scrapes snapshot quantiles under the
// same lock.
type Histogram struct {
	mu sync.Mutex
	h  *stats.LogHist
}

// Observe records one sample (milliseconds by convention).
func (h *Histogram) Observe(ms float64) {
	h.mu.Lock()
	h.h.Add(ms)
	h.mu.Unlock()
}

// Snapshot copies the histogram for offline quantile math.
func (h *Histogram) Snapshot() *stats.LogHist {
	out := stats.NewLatencyHist()
	h.mu.Lock()
	defer h.mu.Unlock()
	// Same NewLatencyHist layout on both sides; Merge cannot fail.
	_ = out.Merge(h.h)
	return out
}

// quantiles the exposition renders per histogram series.
var histQuantiles = []float64{0.5, 0.9, 0.99}

// metric is one registered series: the exposition lines are assembled
// from strings precomputed at registration, so scraping is fmt only.
type metric struct {
	name string // bare metric name (no labels) for TYPE lines
	kind string // "counter" | "gauge" | "histogram"
	help string
	// series is name{labels} — the full left-hand side of each sample.
	series string
	read   func() float64 // counter/gauge value
	hist   *Histogram     // histogram series
}

// Registry holds registered metrics and renders them as Prometheus
// text exposition. Registration is not hot-path; it locks and
// allocates freely. A nil *Registry is valid and inert: every
// Register* call on it returns a usable metric that simply is never
// scraped, so instrumented code needs no nil checks.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]string // series -> kind, for duplicate rejection
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]string{}}
}

// seriesName renders name{k="v",...} with labels in the given order.
func seriesName(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list for " + name)
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) add(m *metric) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if kind, dup := r.byName[m.series]; dup {
		panic(fmt.Sprintf("obs: duplicate series %s (%s)", m.series, kind))
	}
	if kind, ok := r.kindOf(m.name); ok && kind != m.kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", m.name, kind, m.kind))
	}
	r.byName[m.series] = m.kind
	r.metrics = append(r.metrics, m)
}

// kindOf reports the kind of any series sharing the bare name. Caller
// holds r.mu.
func (r *Registry) kindOf(name string) (string, bool) {
	for _, m := range r.metrics {
		if m.name == name {
			return m.kind, true
		}
	}
	return "", false
}

// Counter registers and returns a counter series. Labels are
// alternating key/value pairs baked into the series name.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.add(&metric{
		name: name, kind: "counter", help: help,
		series: seriesName(name, labels...),
		read:   func() float64 { return float64(c.Value()) },
	})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.add(&metric{
		name: name, kind: "gauge", help: help,
		series: seriesName(name, labels...),
		read:   func() float64 { return float64(g.Value()) },
	})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time — the zero-hot-path-cost way to export an atomic some other
// subsystem already maintains (queue depths, drop counters, pool
// sizes).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.add(&metric{
		name: name, kind: "gauge", help: help,
		series: seriesName(name, labels...),
		read:   fn,
	})
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time, for monotonic totals another subsystem maintains.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.add(&metric{
		name: name, kind: "counter", help: help,
		series: seriesName(name, labels...),
		read:   fn,
	})
}

// Histogram registers and returns a latency histogram series rendered
// as quantile gauges (name{quantile="0.99",...}) plus _count and _sum.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	h := &Histogram{h: stats.NewLatencyHist()}
	r.add(&metric{
		name: name, kind: "histogram", help: help,
		series: seriesName(name, labels...),
		hist:   h,
	})
	return h
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4), grouped by bare metric name with
// one HELP/TYPE header per group, series sorted for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].series < ms[j].series
	})
	headered := map[string]bool{}
	for _, m := range ms {
		if !headered[m.name] {
			headered[m.name] = true
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			// LogHist quantile snapshots render as summaries: precomputed
			// quantiles, not cumulative buckets.
			kind := m.kind
			if kind == "histogram" {
				kind = "summary"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, kind); err != nil {
				return err
			}
		}
		if m.hist != nil {
			if err := writeHist(w, m); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", m.series, m.read()); err != nil {
			return err
		}
	}
	return nil
}

// writeHist renders one histogram series as quantile samples plus
// _sum/_count, splicing the quantile label into any existing label
// set.
func writeHist(w io.Writer, m *metric) error {
	h := m.hist.Snapshot()
	base, labels := splitSeries(m.series)
	for _, q := range histQuantiles {
		v := 0.0
		if h.Total() > 0 {
			v, _ = h.Quantile(q)
		}
		qlabel := fmt.Sprintf("quantile=%q", fmt.Sprintf("%g", q))
		all := qlabel
		if labels != "" {
			all = labels + "," + qlabel
		}
		if _, err := fmt.Fprintf(w, "%s{%s} %g\n", base, all, v); err != nil {
			return err
		}
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", base, suffix, h.Mean()*float64(h.Total())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, h.Total())
	return err
}

// splitSeries splits "name{a=\"b\"}" into ("name", "a=\"b\"").
func splitSeries(series string) (base, labels string) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return series, ""
	}
	return series[:i], strings.TrimSuffix(series[i+1:], "}")
}

// Handler serves GET /metrics-style scrapes of the registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
