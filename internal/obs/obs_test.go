package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("accel_test_total", "test counter")
	g := r.Gauge("accel_test_depth", "test gauge")
	h := r.Histogram("accel_test_latency_ms", "test histogram")

	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i + 1))
	}
	snap := h.Snapshot()
	if snap.Total() != 100 {
		t.Fatalf("histogram total = %d, want 100", snap.Total())
	}
	p50, err := snap.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p50 < 40 || p50 > 60 {
		t.Fatalf("p50 = %v, want ≈50", p50)
	}
}

func TestLabeledSeriesAndFuncs(t *testing.T) {
	r := NewRegistry()
	r.Counter("accel_offloads_total", "offloads", "proto", "json").Add(3)
	r.Counter("accel_offloads_total", "offloads", "proto", "bin").Add(2)
	backing := 9.0
	r.GaugeFunc("accel_pool_size", "pool", func() float64 { return backing })
	r.CounterFunc("accel_drops_total", "drops", func() float64 { return 11 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`accel_offloads_total{proto="json"} 3`,
		`accel_offloads_total{proto="bin"} 2`,
		`accel_pool_size 9`,
		`accel_drops_total 11`,
		`# TYPE accel_offloads_total counter`,
		`# TYPE accel_pool_size gauge`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("accel_dup_total", "dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series did not panic")
		}
	}()
	r.Counter("accel_dup_total", "dup")
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("accel_conflict", "as counter", "a", "1")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("accel_conflict", "as gauge", "a", "2")
}

// TestExpositionWellFormed mirrors the e2e smoke check: every
// non-comment line is `series value`, one TYPE per metric name, no
// duplicate sample lines.
func TestExpositionWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("accel_a_total", "a").Inc()
	r.Gauge("accel_b", "b").Set(1)
	h := r.Histogram("accel_c_ms", "c", "hop", "queue")
	h.Observe(1.5)
	h.Observe(2.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	types := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if types[fields[2]] {
				t.Fatalf("duplicate TYPE for %s", fields[2])
			}
			types[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		series := line[:i]
		if seen[series] {
			t.Fatalf("duplicate sample %q", series)
		}
		seen[series] = true
	}
	if !seen[`accel_c_ms{hop="queue",quantile="0.99"}`] {
		t.Fatalf("missing labeled quantile sample in:\n%s", b.String())
	}
	if !seen[`accel_c_ms_count{hop="queue"}`] {
		t.Fatalf("missing _count sample in:\n%s", b.String())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("accel_h_total", "h").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
}

// TestNilRegistryInert proves instrumented code needs no nil checks.
func TestNilRegistryInert(t *testing.T) {
	var r *Registry
	r.Counter("accel_nil_total", "nil").Inc()
	r.Gauge("accel_nil", "nil").Set(1)
	r.Histogram("accel_nil_ms", "nil").Observe(1)
	r.GaugeFunc("accel_nil_fn", "nil", func() float64 { return 0 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry rendered %q", b.String())
	}
}

// The increment paths must never allocate: they run per request on
// every hot path in the stack. Pinned here and in obsbench.
func TestCounterIncAllocs(t *testing.T) {
	c := NewRegistry().Counter("accel_alloc_total", "alloc")
	if n := testing.AllocsPerRun(1000, c.Inc); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op", n)
	}
}

func TestGaugeSetAllocs(t *testing.T) {
	g := NewRegistry().Gauge("accel_alloc_gauge", "alloc")
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op", n)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	h := NewRegistry().Histogram("accel_alloc_ms", "alloc")
	if n := testing.AllocsPerRun(1000, func() { h.Observe(1.25) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
}
