package core

import (
	"testing"
	"time"

	"accelcloud/internal/device"
)

// With an eager demotion policy and a fast top group, devices bounce back
// down after promotion — the demand-based re-assignment of the abstract.
func TestDemotionReassignsDevices(t *testing.T) {
	cfg := Config{
		Groups:            paperGroups(),
		ProvisionInterval: 30 * time.Minute,
		// Promote eagerly so devices climb fast...
		Policy: device.StaticProbability{P: 0.2},
		// ...and demote whenever responses are comfortably fast.
		Demotion: device.FastResponse{Target: 2 * time.Second, Patience: 2},
		Seed:     11,
	}
	res := smallRun(t, cfg, 10, 2*time.Hour)
	demotions := 0
	for _, ev := range res.Promotions {
		if ev.To < ev.From {
			demotions++
			if ev.To != ev.From-1 {
				t.Fatalf("demotion %+v must be single-step", ev)
			}
		}
	}
	if demotions == 0 {
		t.Fatal("no demotions recorded despite eager policy")
	}
	// No device may end below the lowest configured group.
	for uid, g := range res.FinalGroups {
		if g < 1 || g > 3 {
			t.Fatalf("user %d ended in group %d", uid, g)
		}
	}
}

// Without a demotion policy the event log contains promotions only — the
// paper's original behaviour is preserved.
func TestNoDemotionByDefault(t *testing.T) {
	cfg := Config{
		Groups:            paperGroups(),
		ProvisionInterval: 30 * time.Minute,
		Policy:            device.StaticProbability{P: 0.2},
		Seed:              12,
	}
	res := smallRun(t, cfg, 5, time.Hour)
	for _, ev := range res.Promotions {
		if ev.To <= ev.From {
			t.Fatalf("unexpected demotion %+v with no policy", ev)
		}
	}
}
