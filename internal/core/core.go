// Package core assembles the paper's complete system (§IV, Fig 2): a
// dynamic workload of mobile devices offloads tasks through the
// SDN-accelerator into per-group instance pools; devices promote
// themselves to higher acceleration groups when response times degrade;
// and every provisioning interval the adaptive model predicts the next
// interval's per-group workload from the request log (§IV-B) and
// re-allocates the cost-minimal instance mix to serve it (§IV-C).
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"accelcloud/internal/allocate"
	"accelcloud/internal/cloud"
	"accelcloud/internal/device"
	"accelcloud/internal/netsim"
	"accelcloud/internal/predict"
	"accelcloud/internal/qsim"
	"accelcloud/internal/sdn"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/trace"
	"accelcloud/internal/workload"
)

// GroupSpec binds one acceleration group to the instance type that
// serves it (the Fig 9a deployment: group 1 → t2.nano, group 2 →
// t2.large, group 3 → m4.4xlarge).
type GroupSpec struct {
	// Group is the acceleration group index.
	Group int
	// TypeName is the instance type serving this group.
	TypeName string
	// Capacity is K_s: users one instance serves within the SLA.
	Capacity float64
	// Initial is the instance count before the first provisioning round.
	Initial int
}

// Config parameterizes a system run.
type Config struct {
	// Groups is the group → instance-type map; at least one entry.
	Groups []GroupSpec
	// Catalog resolves instance types. Nil selects cloud.DefaultCatalog.
	Catalog *cloud.Catalog
	// Predictor estimates next-interval workload. Nil selects the
	// paper's edit-distance model.
	Predictor predict.Predictor
	// ProvisionInterval is the allocation period (instances are billed
	// per interval; the paper uses one hour). Zero selects one hour.
	ProvisionInterval time.Duration
	// CC caps the total instance count (0 → allocate.DefaultCC).
	CC int
	// Policy is the client-side moderator's promotion rule. Nil selects
	// the paper's 1/50 static probability.
	Policy device.PromotionPolicy
	// Demotion optionally re-assigns over-served devices to cheaper
	// groups (the abstract's demand-based re-assignment). Nil disables
	// demotion, matching the paper's evaluation.
	Demotion device.DemotionPolicy
	// Profiles are the device hardware classes, assigned round-robin by
	// user id. Nil selects device.DefaultProfiles.
	Profiles []device.Profile
	// AccessNet samples the mobile↔front-end RTT. Empty Name selects
	// the calibrated operator β on LTE.
	AccessNet netsim.Operator
	// AccessTech picks 3G or LTE (default LTE, the paper's assumption).
	AccessTech netsim.Tech
	// Overhead is the SDN routing-cost model (zero → sdn default
	// ≈150 ms).
	Overhead sdn.OverheadModel
	// Queue tunes the backend servers.
	Queue qsim.Config
	// Background induces a constant Poisson load on every server of a
	// group, reproducing the paper's §VI-C1 setup ("we induced a load of
	// 50 concurrent users in each server ... created each 2 seconds").
	Background map[int]BackgroundLoad
	// Seed drives all randomness.
	Seed int64
}

// BackgroundLoad is a per-server synthetic load: Poisson arrivals at
// RatePerSec of tasks costing Work units each.
type BackgroundLoad struct {
	RatePerSec float64
	Work       float64
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if len(out.Groups) == 0 {
		return out, errors.New("core: no group specs")
	}
	seen := map[int]bool{}
	for _, g := range out.Groups {
		if g.Group < 0 {
			return out, fmt.Errorf("core: negative group %d", g.Group)
		}
		if seen[g.Group] {
			return out, fmt.Errorf("core: duplicate group %d", g.Group)
		}
		seen[g.Group] = true
		if g.TypeName == "" {
			return out, fmt.Errorf("core: group %d without type", g.Group)
		}
		if g.Capacity <= 0 {
			return out, fmt.Errorf("core: group %d capacity %v", g.Group, g.Capacity)
		}
		if g.Initial < 0 {
			return out, fmt.Errorf("core: group %d initial %d", g.Group, g.Initial)
		}
	}
	if out.Catalog == nil {
		out.Catalog = cloud.DefaultCatalog()
	}
	if out.Predictor == nil {
		out.Predictor = predict.EditDistanceNN{}
	}
	if out.ProvisionInterval == 0 {
		out.ProvisionInterval = time.Hour
	}
	if out.ProvisionInterval < 0 {
		return out, fmt.Errorf("core: negative interval %v", out.ProvisionInterval)
	}
	if out.Policy == nil {
		out.Policy = device.StaticProbability{P: 1.0 / 50}
	}
	if len(out.Profiles) == 0 {
		out.Profiles = device.DefaultProfiles()
	}
	if out.AccessNet.Name == "" {
		ops, err := netsim.DefaultOperators()
		if err != nil {
			return out, err
		}
		op, err := netsim.OperatorByName(ops, "beta")
		if err != nil {
			return out, err
		}
		out.AccessNet = op
	}
	if out.AccessTech == 0 {
		out.AccessTech = netsim.TechLTE
	}
	if _, ok := out.AccessNet.RTT[out.AccessTech]; !ok {
		return out, fmt.Errorf("core: operator %s lacks %v model", out.AccessNet.Name, out.AccessTech)
	}
	return out, nil
}

// RequestLog is one completed (or dropped) request, in completion order.
type RequestLog struct {
	// Index is the request's arrival sequence number.
	Index int
	// UserID identifies the device.
	UserID int
	// Group is the acceleration group that served the request.
	Group int
	// ResponseMs is the total perceived response time.
	ResponseMs float64
	// Dropped marks rejected requests.
	Dropped bool
	// At is the completion time.
	At time.Time
}

// PromotionEvent is one moderator-triggered group change.
type PromotionEvent struct {
	At     time.Time
	UserID int
	From   int
	To     int
}

// IntervalLog is one provisioning round.
type IntervalLog struct {
	// Start is the beginning of the interval being provisioned.
	Start time.Time
	// PredictedCounts is the model's per-group workload estimate.
	PredictedCounts []int
	// ActualCounts is the realized per-group workload (filled after the
	// interval ends).
	ActualCounts []int
	// Accuracy grades PredictedCounts against ActualCounts.
	Accuracy float64
	// Plan is the allocator's decision.
	Plan allocate.Plan
	// Instances is the total running instances after applying the plan.
	Instances int
}

// Result is the outcome of a system run.
type Result struct {
	Requests   []RequestLog
	Promotions []PromotionEvent
	Intervals  []IntervalLog
	// FinalGroups maps user id to final acceleration group.
	FinalGroups map[int]int
	// TotalCostUSD sums interval plan costs (per provisioning interval).
	TotalCostUSD float64
	// Trace is the raw request log (the predictor's training data).
	Trace []trace.Record
}

// MeanResponseMs reports the mean response of completed requests.
func (r Result) MeanResponseMs() float64 {
	sum, n := 0.0, 0
	for _, req := range r.Requests {
		if !req.Dropped {
			sum += req.ResponseMs
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// DropRate reports dropped / total.
func (r Result) DropRate() float64 {
	if len(r.Requests) == 0 {
		return 0
	}
	dropped := 0
	for _, req := range r.Requests {
		if req.Dropped {
			dropped++
		}
	}
	return float64(dropped) / float64(len(r.Requests))
}

// System is the assembled simulation.
type System struct {
	cfg      Config
	maxGroup int
	groupIdx map[int]int // group -> index into cfg.Groups
}

// New validates the configuration and builds a system.
func New(cfg Config) (*System, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &System{cfg: full, groupIdx: make(map[int]int, len(full.Groups))}
	for i, g := range full.Groups {
		if _, err := full.Catalog.ByName(g.TypeName); err != nil {
			return nil, err
		}
		if g.Group > s.maxGroup {
			s.maxGroup = g.Group
		}
		s.groupIdx[g.Group] = i
	}
	return s, nil
}

// LowestGroup reports the starting group for new users (the paper starts
// every user at the lowest level, §IV-A).
func (s *System) LowestGroup() int {
	lowest := s.cfg.Groups[0].Group
	for _, g := range s.cfg.Groups[1:] {
		if g.Group < lowest {
			lowest = g.Group
		}
	}
	return lowest
}

// Run replays the request stream through the full architecture for the
// given duration and returns the collected logs.
func (s *System) Run(reqs []workload.Request, duration time.Duration) (Result, error) {
	if duration <= 0 {
		return Result{}, fmt.Errorf("core: duration %v <= 0", duration)
	}
	env := sim.NewEnvironment()
	rng := sim.NewRNG(s.cfg.Seed)
	store := trace.NewStore()
	accel, err := sdn.NewAccelerator(env, sdn.Config{
		Overhead: s.cfg.Overhead,
		Log:      store,
		RNG:      rng.Stream("sdn"),
	})
	if err != nil {
		return Result{}, err
	}

	// Launch initial pools. Every provisioning round relaunches the
	// pools with fresh instances: the paper allocates instances per
	// billing hour, so each interval's fleet starts with full burst
	// credits (t2 launch credits reset per instance).
	horizon := sim.Epoch.Add(duration)
	bgRng := rng.Stream("background")
	type bgHandle struct{ stopped bool }
	retiredBg := make(map[int][]*bgHandle) // group -> old load chains
	launched := make(map[int]int)          // group -> live instance count
	instSeq := 0
	// startBackground attaches a Poisson load chain to a server; the
	// chain stops at the horizon or when its handle is retired, so the
	// simulation drains.
	startBackground := func(srv *qsim.Server, bg BackgroundLoad, h *bgHandle) {
		var arrive func()
		arrive = func() {
			if h.stopped {
				return
			}
			gap := time.Duration(bgRng.ExpFloat64() / bg.RatePerSec * float64(time.Second))
			if gap < time.Microsecond {
				gap = time.Microsecond
			}
			next := env.Now().Add(gap)
			if next.After(horizon) {
				return
			}
			// Scheduling forward cannot fail.
			_ = env.ScheduleAt(next, func() {
				if h.stopped {
					return
				}
				// Background work is fire-and-forget; submit errors
				// cannot occur for positive work.
				_ = srv.Submit(bg.Work, func(qsim.Outcome) {})
				arrive()
			})
		}
		arrive()
	}
	launch := func(group, count int) error {
		spec := s.cfg.Groups[s.groupIdx[group]]
		typ, err := s.cfg.Catalog.ByName(spec.TypeName)
		if err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			inst, err := cloud.NewInstance(
				fmt.Sprintf("%s-g%d-%d", typ.Name, group, instSeq), typ, env.Now())
			if err != nil {
				return err
			}
			instSeq++
			srv, err := qsim.NewServer(env, inst, s.cfg.Queue)
			if err != nil {
				return err
			}
			if err := accel.AddServer(group, srv); err != nil {
				return err
			}
			if bg, ok := s.cfg.Background[group]; ok && bg.RatePerSec > 0 && bg.Work > 0 {
				h := &bgHandle{}
				retiredBg[group] = append(retiredBg[group], h)
				startBackground(srv, bg, h)
			}
		}
		launched[group] += count
		return nil
	}
	// retire stops a group's load chains and deregisters its servers;
	// in-flight work completes on the old instances.
	retire := func(group int) {
		for _, h := range retiredBg[group] {
			h.stopped = true
		}
		retiredBg[group] = retiredBg[group][:0]
		accel.RemoveServers(group)
		launched[group] = 0
	}
	for _, g := range s.cfg.Groups {
		if g.Initial > 0 {
			if err := launch(g.Group, g.Initial); err != nil {
				return Result{}, err
			}
		}
	}

	res := Result{FinalGroups: make(map[int]int)}
	devices := make(map[int]*device.Device)
	netModel := s.cfg.AccessNet.RTT[s.cfg.AccessTech]
	netRng := rng.Stream("access-net")
	policyRng := rng.Stream("policy")

	lowest := s.LowestGroup()
	getDevice := func(uid int) (*device.Device, error) {
		if d, ok := devices[uid]; ok {
			return d, nil
		}
		profile := s.cfg.Profiles[uid%len(s.cfg.Profiles)]
		d, err := device.New(uid, profile, lowest)
		if err != nil {
			return nil, err
		}
		devices[uid] = d
		return d, nil
	}

	// Inject requests.
	for i, req := range reqs {
		i, req := i, req
		if req.At.Before(env.Now()) {
			return Result{}, fmt.Errorf("core: request %d in the past (%v)", i, req.At)
		}
		err := env.ScheduleAt(req.At, func() {
			d, derr := getDevice(req.UserID)
			if derr != nil {
				return
			}
			group := d.Group()
			rtt := netModel.Sample(netRng, env.Now())
			routeErr := accel.Route(sdn.Request{
				UserID:       req.UserID,
				Group:        group,
				Work:         req.Work,
				BatteryLevel: d.BatteryLevel(),
				AccessRTT:    rtt,
			}, func(o sdn.Outcome) {
				entry := RequestLog{
					Index:   i,
					UserID:  req.UserID,
					Group:   group,
					Dropped: o.Dropped,
					At:      env.Now(),
				}
				if !o.Dropped {
					entry.ResponseMs = float64(o.Total) / float64(time.Millisecond)
					d.DrainRadio(o.Total)
					if s.cfg.Policy.ShouldPromote(d, o.Total, policyRng) {
						from := d.Group()
						if d.Promote(s.maxGroup) {
							res.Promotions = append(res.Promotions, PromotionEvent{
								At: env.Now(), UserID: req.UserID, From: from, To: d.Group(),
							})
						}
					} else if s.cfg.Demotion != nil &&
						s.cfg.Demotion.ShouldDemote(d, o.Total, policyRng) {
						from := d.Group()
						if d.Demote(lowest) {
							res.Promotions = append(res.Promotions, PromotionEvent{
								At: env.Now(), UserID: req.UserID, From: from, To: d.Group(),
							})
						}
					}
				}
				res.Requests = append(res.Requests, entry)
			})
			if routeErr != nil {
				res.Requests = append(res.Requests, RequestLog{
					Index: i, UserID: req.UserID, Group: group, Dropped: true, At: env.Now(),
				})
			}
		})
		if err != nil {
			return Result{}, err
		}
	}

	// Provisioning loop: at each interval boundary, predict the next
	// interval's per-group workload from the log and re-allocate.
	interval := s.cfg.ProvisionInterval
	numGroups := s.maxGroup + 1
	tickErr := error(nil)
	err = env.Ticker(interval, func(now time.Time) bool {
		if now.Sub(sim.Epoch) >= duration {
			return false
		}
		elapsed := int(now.Sub(sim.Epoch) / interval)
		if elapsed < 1 {
			return true
		}
		slots, serr := trace.BuildSlots(store.Snapshot(), sim.Epoch, interval, elapsed, numGroups)
		if serr != nil {
			tickErr = serr
			return false
		}
		pred, perr := s.cfg.Predictor.Predict(slots)
		if perr != nil {
			tickErr = perr
			return false
		}
		counts := pred.Counts()
		// Build the allocation problem over configured groups.
		prob := &allocate.Problem{CC: s.cfg.CC}
		demandIdx := make([]int, 0, len(s.cfg.Groups))
		ordered := make([]GroupSpec, len(s.cfg.Groups))
		copy(ordered, s.cfg.Groups)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].Group < ordered[j].Group })
		for _, g := range ordered {
			demand := 0.0
			if g.Group < len(counts) {
				demand = float64(counts[g.Group])
			}
			typ, terr := s.cfg.Catalog.ByName(g.TypeName)
			if terr != nil {
				tickErr = terr
				return false
			}
			prob.Specs = append(prob.Specs, allocate.Spec{
				TypeName:    g.TypeName,
				Group:       len(prob.Demands),
				CostPerHour: typ.PricePerHour,
				Capacity:    g.Capacity,
			})
			prob.Demands = append(prob.Demands, demand)
			demandIdx = append(demandIdx, g.Group)
		}
		plan, aerr := allocate.Solve(prob)
		if aerr != nil {
			tickErr = aerr
			return false
		}
		log := IntervalLog{
			Start:           now,
			PredictedCounts: make([]int, numGroups),
			Plan:            plan,
		}
		for g := 0; g < numGroups && g < len(counts); g++ {
			log.PredictedCounts[g] = counts[g]
		}
		if plan.Feasible {
			// Apply: relaunch each group's pool at the planned size with
			// fresh instances (per-interval billing, fresh burst
			// credits). A floor of one instance keeps stragglers served.
			for i, g := range demandIdx {
				want := plan.Counts[ordered[i].TypeName]
				if want < 1 {
					want = 1
				}
				retire(g)
				if lerr := launch(g, want); lerr != nil {
					tickErr = lerr
					return false
				}
			}
			res.TotalCostUSD += plan.Cost * interval.Hours()
		}
		total := 0
		for _, n := range launched {
			total += n
		}
		log.Instances = total
		res.Intervals = append(res.Intervals, log)
		return true
	})
	if err != nil {
		return Result{}, err
	}

	if err := env.RunUntil(sim.Epoch.Add(duration)); err != nil {
		return Result{}, err
	}
	if tickErr != nil {
		return Result{}, fmt.Errorf("core: provisioning: %w", tickErr)
	}
	// Drain in-flight requests past the horizon.
	if err := env.Run(); err != nil {
		return Result{}, err
	}

	// Fill actual per-interval counts and accuracy.
	records := store.Snapshot()
	if len(res.Intervals) > 0 {
		n := int(duration/interval) + 1
		slots, serr := trace.BuildSlots(records, sim.Epoch, interval, n, numGroups)
		if serr != nil {
			return Result{}, serr
		}
		for i := range res.Intervals {
			idx := int(res.Intervals[i].Start.Sub(sim.Epoch) / interval)
			if idx < len(slots) {
				res.Intervals[i].ActualCounts = slots[idx].Counts()
				p := make([]float64, numGroups)
				a := make([]float64, numGroups)
				for g := 0; g < numGroups; g++ {
					p[g] = float64(res.Intervals[i].PredictedCounts[g])
					if g < len(res.Intervals[i].ActualCounts) {
						a[g] = float64(res.Intervals[i].ActualCounts[g])
					}
				}
				res.Intervals[i].Accuracy = stats.MeanSymmetricAccuracy(p, a)
			}
		}
	}
	for uid, d := range devices {
		res.FinalGroups[uid] = d.Group()
	}
	res.Trace = records
	sortRequests(res.Requests)
	return res, nil
}

// sortRequests orders the log by completion time, then index.
func sortRequests(reqs []RequestLog) {
	sort.Slice(reqs, func(i, j int) bool {
		if !reqs[i].At.Equal(reqs[j].At) {
			return reqs[i].At.Before(reqs[j].At)
		}
		return reqs[i].Index < reqs[j].Index
	})
}
