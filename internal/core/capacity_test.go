package core

import (
	"testing"
	"time"

	"accelcloud/internal/device"
	"accelcloud/internal/qsim"
)

// When the cloud cap CC makes the allocation infeasible, the system keeps
// the previous pool and continues serving (graceful degradation, not an
// outage).
func TestInfeasibleAllocationKeepsServing(t *testing.T) {
	cfg := Config{
		Groups: []GroupSpec{
			// Capacity 1 user per instance and CC=2: any interval with
			// more than 2 active users is unallocatable.
			{Group: 1, TypeName: "t2.nano", Capacity: 1, Initial: 1},
		},
		CC:                2,
		ProvisionInterval: 10 * time.Minute,
		Policy:            device.Never{},
		Seed:              21,
	}
	res := smallRun(t, cfg, 20, time.Hour)
	if len(res.Intervals) == 0 {
		t.Fatal("no provisioning rounds")
	}
	sawInfeasible := false
	for _, iv := range res.Intervals {
		if !iv.Plan.Feasible {
			sawInfeasible = true
			if iv.Instances == 0 {
				t.Fatal("infeasible round must keep the existing pool")
			}
		}
	}
	if !sawInfeasible {
		t.Fatal("expected at least one infeasible round under CC=2")
	}
	// The system still served requests.
	served := 0
	for _, r := range res.Requests {
		if !r.Dropped {
			served++
		}
	}
	if served == 0 {
		t.Fatal("system stopped serving under infeasible allocation")
	}
}

// Overloaded backends with a tiny queue produce drops that surface in the
// result (failure injection for the Fig 8c path inside the full system).
func TestDropsSurfaceInResult(t *testing.T) {
	cfg := Config{
		Groups: []GroupSpec{
			{Group: 1, TypeName: "t2.nano", Capacity: 1000, Initial: 1},
		},
		ProvisionInterval: time.Hour, // no reallocation during the run
		Policy:            device.Never{},
		Queue:             qsim.Config{MaxConcurrency: 1, QueueCapacity: -1},
		Background:        map[int]BackgroundLoad{1: {RatePerSec: 50, Work: 50_000}},
		Seed:              22,
	}
	res := smallRun(t, cfg, 10, 30*time.Minute)
	if res.DropRate() == 0 {
		t.Fatal("expected drops with a single slot and heavy background")
	}
	for _, r := range res.Requests {
		if r.Dropped && r.ResponseMs != 0 {
			t.Fatalf("dropped request carries a response time: %+v", r)
		}
	}
}

// The provisioning loop scales a group down again when load leaves (the
// over-provisioning reduction the model exists for).
func TestScaleDownAfterLoadDrops(t *testing.T) {
	cfg := Config{
		Groups: []GroupSpec{
			{Group: 1, TypeName: "t2.nano", Capacity: 5, Initial: 6},
		},
		ProvisionInterval: 10 * time.Minute,
		Policy:            device.Never{},
		Seed:              23,
	}
	// Only 5 users -> 1 instance suffices; initial pool of 6 must shrink.
	res := smallRun(t, cfg, 5, time.Hour)
	last := res.Intervals[len(res.Intervals)-1]
	if last.Instances >= 6 {
		t.Fatalf("pool never shrank: %d instances", last.Instances)
	}
	if last.Instances < 1 {
		t.Fatal("pool must keep serving")
	}
}
