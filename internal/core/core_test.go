package core

import (
	"testing"
	"time"

	"accelcloud/internal/device"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
	"accelcloud/internal/workload"
)

// paperGroups is the Fig 9a deployment: groups 1–3 served by t2.nano,
// t2.large and m4.4xlarge.
func paperGroups() []GroupSpec {
	return []GroupSpec{
		{Group: 1, TypeName: "t2.nano", Capacity: 30, Initial: 1},
		{Group: 2, TypeName: "t2.large", Capacity: 90, Initial: 1},
		{Group: 3, TypeName: "m4.4xlarge", Capacity: 400, Initial: 1},
	}
}

func smallRun(t *testing.T, cfg Config, users int, dur time.Duration) Result {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(cfg.Seed).Stream("wl")
	reqs, err := workload.GenerateInterArrival(rng, sim.Epoch, workload.InterArrivalConfig{
		Users:        users,
		InterArrival: stats.Uniform{Lo: 2000, Hi: 10000},
		Duration:     dur,
		Pool:         tasks.DefaultPool(),
		Sizer:        workload.FixedSizer{Size: 8},
		FixedTask:    "minimax",
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(reqs, dur)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config should fail")
	}
	bad := []Config{
		{Groups: []GroupSpec{{Group: -1, TypeName: "t2.nano", Capacity: 1}}},
		{Groups: []GroupSpec{{Group: 1, TypeName: "", Capacity: 1}}},
		{Groups: []GroupSpec{{Group: 1, TypeName: "t2.nano", Capacity: 0}}},
		{Groups: []GroupSpec{{Group: 1, TypeName: "t2.nano", Capacity: 1, Initial: -1}}},
		{Groups: []GroupSpec{{Group: 1, TypeName: "ghost", Capacity: 1}}},
		{Groups: []GroupSpec{
			{Group: 1, TypeName: "t2.nano", Capacity: 1},
			{Group: 1, TypeName: "t2.large", Capacity: 1},
		}},
		{Groups: paperGroups(), ProvisionInterval: -time.Hour},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestLowestGroup(t *testing.T) {
	sys, err := New(Config{Groups: paperGroups()})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.LowestGroup(); got != 1 {
		t.Fatalf("LowestGroup = %d, want 1", got)
	}
}

func TestRunBasic(t *testing.T) {
	cfg := Config{
		Groups:            paperGroups(),
		ProvisionInterval: 10 * time.Minute,
		Seed:              1,
	}
	res := smallRun(t, cfg, 10, time.Hour)
	if len(res.Requests) == 0 {
		t.Fatal("no requests processed")
	}
	// All users start at the lowest group; every served request belongs
	// to a configured group.
	for _, r := range res.Requests {
		if r.Group < 1 || r.Group > 3 {
			t.Fatalf("request served by group %d", r.Group)
		}
		if !r.Dropped && r.ResponseMs <= 0 {
			t.Fatalf("request %d has response %v", r.Index, r.ResponseMs)
		}
	}
	// Provisioning ran: 10-minute intervals over 1 h → 5 rounds
	// (first boundary only observes, last boundary is the horizon).
	if len(res.Intervals) != 5 {
		t.Fatalf("got %d intervals, want 5", len(res.Intervals))
	}
	for _, iv := range res.Intervals {
		if len(iv.PredictedCounts) != 4 || len(iv.ActualCounts) != 4 {
			t.Fatalf("interval counts = %+v", iv)
		}
		if iv.Accuracy < 0 || iv.Accuracy > 1 {
			t.Fatalf("accuracy = %v", iv.Accuracy)
		}
	}
	if res.TotalCostUSD <= 0 {
		t.Fatal("cost should accrue")
	}
	if len(res.FinalGroups) != 10 {
		t.Fatalf("FinalGroups has %d users", len(res.FinalGroups))
	}
	if len(res.Trace) == 0 {
		t.Fatal("trace empty")
	}
	if res.MeanResponseMs() <= 0 {
		t.Fatal("mean response should be positive")
	}
	if res.DropRate() < 0 || res.DropRate() > 1 {
		t.Fatalf("drop rate = %v", res.DropRate())
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := Config{
		Groups:            paperGroups(),
		ProvisionInterval: 15 * time.Minute,
		Seed:              7,
	}
	a := smallRun(t, cfg, 5, 30*time.Minute)
	b := smallRun(t, cfg, 5, 30*time.Minute)
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("request counts differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Requests[i], b.Requests[i])
		}
	}
	if a.TotalCostUSD != b.TotalCostUSD {
		t.Fatal("costs differ across identical runs")
	}
}

// Promotions with the paper's 1/50 policy: users should climb groups over
// a long run, and promoted users' requests should land in higher groups.
func TestPromotionsOccur(t *testing.T) {
	cfg := Config{
		Groups:            paperGroups(),
		ProvisionInterval: 30 * time.Minute,
		Policy:            device.StaticProbability{P: 1.0 / 10}, // faster for the test
		Seed:              3,
	}
	res := smallRun(t, cfg, 10, 2*time.Hour)
	if len(res.Promotions) == 0 {
		t.Fatal("no promotions with p=1/10 over 2h")
	}
	for _, p := range res.Promotions {
		if p.To != p.From+1 {
			t.Fatalf("promotion %+v must be sequential (§IV-A)", p)
		}
		if p.To > 3 {
			t.Fatalf("promotion past max group: %+v", p)
		}
	}
	climbed := false
	for _, g := range res.FinalGroups {
		if g > 1 {
			climbed = true
		}
	}
	if !climbed {
		t.Fatal("no user ended above the lowest group")
	}
}

func TestNeverPolicyKeepsGroups(t *testing.T) {
	cfg := Config{
		Groups:            paperGroups(),
		ProvisionInterval: 30 * time.Minute,
		Policy:            device.Never{},
		Seed:              4,
	}
	res := smallRun(t, cfg, 5, time.Hour)
	if len(res.Promotions) != 0 {
		t.Fatalf("Never policy produced %d promotions", len(res.Promotions))
	}
	for uid, g := range res.FinalGroups {
		if g != 1 {
			t.Fatalf("user %d ended in group %d", uid, g)
		}
	}
}

// The adaptive loop must react to load: after the first provisioning
// round, the under-provisioned lowest group gets more instances.
func TestAllocatorScalesUp(t *testing.T) {
	cfg := Config{
		Groups: []GroupSpec{
			// Tiny capacity so 30 users need several instances.
			{Group: 1, TypeName: "t2.nano", Capacity: 10, Initial: 1},
		},
		ProvisionInterval: 10 * time.Minute,
		Policy:            device.Never{},
		Seed:              5,
	}
	res := smallRun(t, cfg, 30, time.Hour)
	grew := false
	for _, iv := range res.Intervals {
		if iv.Instances > 1 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("allocator never scaled the pool up")
	}
	// Prediction accuracy should be high for a stationary workload.
	last := res.Intervals[len(res.Intervals)-1]
	if last.Accuracy < 0.5 {
		t.Fatalf("late-run accuracy %v too low for stationary load", last.Accuracy)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	sys, err := New(Config{Groups: paperGroups()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(nil, 0); err == nil {
		t.Fatal("zero duration should fail")
	}
	past := []workload.Request{{At: sim.Epoch.Add(-time.Hour), Work: 1}}
	if _, err := sys.Run(past, time.Hour); err == nil {
		t.Fatal("requests in the past should fail")
	}
}

func TestResultHelpersEmpty(t *testing.T) {
	var r Result
	if r.MeanResponseMs() != 0 || r.DropRate() != 0 {
		t.Fatal("empty result helpers should return 0")
	}
}
