package health

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"accelcloud/internal/rpc"
)

// The region monitor is the failure detector one tier up: where Manager
// watches surrogates inside one region, RegionMonitor heartbeats whole
// region front-ends and drives the geo routing tier's MarkDown/MarkUp
// fence (router.Regions). Same hysteresis discipline — consecutive
// failed probes eject, consecutive clean probes reinstate — and the
// probe follows the front-end URL's protocol, so bin:// regions are
// watched over the wire protocol exactly like JSON ones.

// RegionControl is the slice of the region routing tier the monitor
// drives; *router.Regions implements it.
type RegionControl interface {
	MarkDown(name string) error
	MarkUp(name string) error
}

// RegionEvent is one entry of the monitor's audit log: a region
// crossing its Down or Up threshold. The log is the input of the
// failover-event digest the chaos suite asserts on.
type RegionEvent struct {
	// Region is the region name.
	Region string `json:"region"`
	// Status is the new state: "down" or "up".
	Status string `json:"status"`
}

// RegionMonitorConfig parameterizes NewRegionMonitor.
type RegionMonitorConfig struct {
	// Control receives MarkDown/MarkUp transitions. Required.
	Control RegionControl
	// Regions maps region name → front-end base URL to heartbeat
	// (http:// or bin://). Required, non-empty.
	Regions map[string]string
	// ProbeInterval is Run's heartbeat period (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default: the probe interval).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive failed probes before a region is
	// marked Down (default 2).
	FailThreshold int
	// SuccThreshold is the consecutive clean probes before a Down
	// region is marked Up again (default 2).
	SuccThreshold int
	// Probe overrides the health check (tests inject deterministic
	// outcomes). Default: rpc.Client.Health against the region URL.
	Probe func(ctx context.Context, url string) error
}

// regionProbe is one region's hysteresis counters.
type regionProbe struct {
	url   string
	fails int
	succs int
	down  bool
}

// RegionMonitor heartbeats region front-ends and fences the ones that
// stop answering. Safe for one Run loop plus concurrent readers.
type RegionMonitor struct {
	cfg   RegionMonitorConfig
	names []string // deterministic probe order

	mu     sync.Mutex
	probes map[string]*regionProbe
	events []RegionEvent
}

// NewRegionMonitor validates the config and builds a monitor.
func NewRegionMonitor(cfg RegionMonitorConfig) (*RegionMonitor, error) {
	if cfg.Control == nil {
		return nil, fmt.Errorf("health: region monitor needs a Control")
	}
	if len(cfg.Regions) == 0 {
		return nil, fmt.Errorf("health: region monitor needs at least one region")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.SuccThreshold <= 0 {
		cfg.SuccThreshold = 2
	}
	if cfg.Probe == nil {
		cfg.Probe = func(ctx context.Context, url string) error {
			return rpc.NewClient(url, rpc.WithTimeout(cfg.ProbeTimeout)).Health(ctx)
		}
	}
	m := &RegionMonitor{cfg: cfg, probes: make(map[string]*regionProbe, len(cfg.Regions))}
	for name, url := range cfg.Regions {
		m.names = append(m.names, name)
		m.probes[name] = &regionProbe{url: url}
	}
	// Sorted order makes the event log — and its digest — a pure
	// function of probe outcomes, independent of map iteration.
	sort.Strings(m.names)
	return m, nil
}

// ProbeOnce heartbeats every region once, in sorted name order, and
// applies threshold crossings to the control plane. Exported so tests
// and deterministic harnesses step the detector instead of racing a
// ticker.
func (m *RegionMonitor) ProbeOnce(ctx context.Context) {
	for _, name := range m.names {
		pctx, cancel := context.WithTimeout(ctx, m.cfg.ProbeTimeout)
		err := m.cfg.Probe(pctx, m.probes[name].url)
		cancel()
		m.observe(name, err)
	}
}

// observe folds one probe outcome into the region's hysteresis state.
func (m *RegionMonitor) observe(name string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.probes[name]
	if err != nil {
		p.succs, p.fails = 0, p.fails+1
		if !p.down && p.fails >= m.cfg.FailThreshold {
			// Fence first, log second: when the event is visible the
			// routing tier is already refusing picks into the region.
			if err := m.cfg.Control.MarkDown(name); err == nil {
				p.down = true
				m.events = append(m.events, RegionEvent{Region: name, Status: "down"})
			}
		}
		return
	}
	p.fails, p.succs = 0, p.succs+1
	if p.down && p.succs >= m.cfg.SuccThreshold {
		if err := m.cfg.Control.MarkUp(name); err == nil {
			p.down = false
			m.events = append(m.events, RegionEvent{Region: name, Status: "up"})
		}
	}
}

// Run heartbeats until ctx is done.
func (m *RegionMonitor) Run(ctx context.Context) {
	t := time.NewTicker(m.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.ProbeOnce(ctx)
		}
	}
}

// Down lists the regions currently held Down, sorted.
func (m *RegionMonitor) Down() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, name := range m.names {
		if m.probes[name].down {
			out = append(out, name)
		}
	}
	return out
}

// Events snapshots the transition log in occurrence order.
func (m *RegionMonitor) Events() []RegionEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]RegionEvent, len(m.events))
	copy(out, m.events)
	return out
}

// EventsDigest hashes the transition log — the exact fnv1a
// failover-event digest two chaos runs compare to prove they observed
// identical region failures and recoveries in identical order.
func (m *RegionMonitor) EventsDigest() string {
	h := fnv.New64a()
	for _, ev := range m.Events() {
		_, _ = h.Write([]byte(ev.Region))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(ev.Status))
		_, _ = h.Write([]byte{0})
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}
