// Package health is the failure detector of the serving stack: an
// active prober (per-backend heartbeats with phi-accrual-style
// suspicion) combined with a passive outlier detector (consecutive
// data-path errors, latency-quantile ejection) feeding the router's
// Eject/Reinstate control levers — the layer that turns a surrogate
// crash from a blackhole into a sub-second traffic shift.
//
// Classification matters for the repair loop downstream:
//
//   - Down: the heartbeat itself fails (crash, hang, listener gone).
//     The backend is ejected AND reported to the autoscale reconciler,
//     which replaces it from the warm pool (a repair Decision).
//   - Degraded: heartbeats still answer but the data path is sick
//     (error bursts, latency spikes). The backend is ejected and given
//     a cooldown, then trially reinstated — capacity is parked, not
//     destroyed, so no repair is provisioned for it.
//
// Ejection respects a min-active floor: the detector never empties a
// pool, because one sick backend still beats none (kserve's outlier
// ejection makes the same call). The detector is side-effect-idempotent
// against the router's RCU snapshots: Eject/Reinstate are no-ops when
// the state already matches, so detector flaps cannot corrupt
// control-plane state.
//
// Concurrency: Observe is called from every request goroutine after
// every backend hop, so its state is sharded per backend — one small
// mutex per watched backend, never a detector-global lock — keeping
// the passive feed from re-serializing the lock-free data plane it
// watches. Only the cold ejection/reinstatement decision takes a
// global mutex (so two concurrent ejections cannot race past the
// min-active floor).
package health

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"accelcloud/internal/router"
	"accelcloud/internal/rpc"
	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
)

// Status classifies one backend's observed health.
type Status string

const (
	// StatusHealthy backends pass probes and serve without incident.
	StatusHealthy Status = "healthy"
	// StatusSuspect backends have failed probes, below the ejection
	// threshold.
	StatusSuspect Status = "suspect"
	// StatusDown backends fail heartbeats outright — crash or hang —
	// and are repair candidates.
	StatusDown Status = "down"
	// StatusDegraded backends answer heartbeats but fail or straggle on
	// the data path; they are parked under a cooldown, not repaired.
	StatusDegraded Status = "degraded"
)

// ControlPlane is the slice of the routing control plane the detector
// drives; *sdn.FrontEnd and *router.Router both implement it.
type ControlPlane interface {
	Eject(group int, url string) error
	Reinstate(group int, url string) error
	Pool(group int) []router.BackendInfo
	Backends() map[int]int
	ActiveCount(group int) int
}

// Config parameterizes a Manager.
type Config struct {
	// CP is the control plane whose backends are watched. Required.
	CP ControlPlane
	// ProbeInterval is the heartbeat period (0 selects 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one heartbeat (0 selects ProbeInterval; a
	// hung backend must fail the probe, not stall the prober).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive probe failures that mark a
	// backend Down (0 selects 2 — ejection strictly before the 3rd
	// failed probe).
	FailThreshold int
	// SuccThreshold is the consecutive probe successes required to
	// reinstate (0 selects 2).
	SuccThreshold int
	// PassiveErrors is the consecutive data-path errors that eject a
	// backend as Degraded (0 selects 5; negative disables).
	PassiveErrors int
	// LatencyLimitMs ejects a backend whose windowed latency quantile
	// exceeds it (0 disables).
	LatencyLimitMs float64
	// LatencyQuantile is the watched quantile (0 selects 0.9).
	LatencyQuantile float64
	// LatencyWindow is the per-backend rolling sample window
	// (0 selects 64).
	LatencyWindow int
	// EjectionCooldown is how long a Degraded backend stays parked
	// before a trial reinstatement (0 selects 8×ProbeInterval).
	EjectionCooldown time.Duration
	// MinActive is the per-group floor below which the detector refuses
	// to eject (0 selects 1): a pool is never emptied by suspicion.
	MinActive int
	// Probe overrides the heartbeat implementation (tests); nil probes
	// rpc's /healthz.
	Probe func(ctx context.Context, url string) error
}

func (c Config) withDefaults() (Config, error) {
	if c.CP == nil {
		return c, errors.New("health: nil control plane")
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeInterval < 0 {
		return c, fmt.Errorf("health: probe interval %v < 0", c.ProbeInterval)
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.ProbeTimeout < 0 {
		return c, fmt.Errorf("health: probe timeout %v < 0", c.ProbeTimeout)
	}
	if c.FailThreshold == 0 {
		c.FailThreshold = 2
	}
	if c.FailThreshold < 0 {
		return c, fmt.Errorf("health: fail threshold %d < 0", c.FailThreshold)
	}
	if c.SuccThreshold == 0 {
		c.SuccThreshold = 2
	}
	if c.SuccThreshold < 0 {
		return c, fmt.Errorf("health: success threshold %d < 0", c.SuccThreshold)
	}
	if c.PassiveErrors == 0 {
		c.PassiveErrors = 5
	}
	if c.LatencyQuantile == 0 {
		c.LatencyQuantile = 0.9
	}
	if c.LatencyQuantile < 0 || c.LatencyQuantile >= 1 {
		return c, fmt.Errorf("health: latency quantile %v outside (0,1)", c.LatencyQuantile)
	}
	if c.LatencyWindow == 0 {
		c.LatencyWindow = 64
	}
	if c.LatencyWindow < 0 {
		return c, fmt.Errorf("health: latency window %d < 0", c.LatencyWindow)
	}
	if c.EjectionCooldown == 0 {
		c.EjectionCooldown = 8 * c.ProbeInterval
	}
	if c.EjectionCooldown < 0 {
		return c, fmt.Errorf("health: ejection cooldown %v < 0", c.EjectionCooldown)
	}
	if c.MinActive == 0 {
		c.MinActive = 1
	}
	if c.MinActive < 0 {
		return c, fmt.Errorf("health: min active %d < 0", c.MinActive)
	}
	return c, nil
}

// key identifies one watched backend.
type key struct {
	group int
	url   string
}

// backendState is the detector's bookkeeping for one backend. Each
// state carries its own mutex — the per-backend shard of the passive
// hot path.
type backendState struct {
	mu sync.Mutex

	status  Status
	ejected bool // we hold an ejection on the control plane

	consecProbeFails int
	consecProbeSuccs int
	consecErrors     int

	lastSuccess time.Time // last successful probe
	firstFail   time.Time // start of the current probe-failure streak
	downAt      time.Time
	ejectedAt   time.Time
	// probesToEject is the probe-failure streak length when the backend
	// was ejected (0 when passive detection fired first).
	probesToEject int

	// lats is the rolling data-path latency window (ms).
	lats []float64
	next int
	have int
	seen int
}

// BackendHealth is one backend's externally visible health snapshot.
type BackendHealth struct {
	Group  int    `json:"group"`
	URL    string `json:"url"`
	Status Status `json:"status"`
	// Phi is the phi-accrual-style suspicion level: elapsed time since
	// the last successful heartbeat over the probe interval. Healthy
	// backends hover near 1; a crashed one grows without bound.
	Phi              float64 `json:"phi"`
	ConsecProbeFails int     `json:"consecProbeFails"`
	ConsecErrors     int     `json:"consecErrors"`
	Ejected          bool    `json:"ejected"`
}

// Ejection is one audit-log entry: a backend leaving rotation.
type Ejection struct {
	Group int
	URL   string
	At    time.Time
	// Cause is "probe" (Down) or "errors"/"latency" (Degraded).
	Cause string
	// ProbeFails is the failed-probe streak at ejection (0 for passive
	// causes).
	ProbeFails int
}

// Manager is the failure detector. Start Run in a goroutine; Observe
// may be called concurrently from request goroutines.
type Manager struct {
	cfg Config

	states  sync.Map // key -> *backendState
	clients sync.Map // url -> *rpc.Client

	// ejectMu serializes ejection and reinstatement decisions only
	// (cold path), so two concurrent passive ejections cannot both
	// pass the min-active floor check and empty a pool together.
	ejectMu sync.Mutex

	// logMu guards the audit log and the repair counter.
	logMu   sync.Mutex
	log     []Ejection
	repairs int64
}

// NewManager validates the configuration and builds an idle detector.
func NewManager(cfg Config) (*Manager, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Manager{cfg: cfg}, nil
}

// Run probes on the configured interval until the context ends.
func (m *Manager) Run(ctx context.Context) {
	ticker := time.NewTicker(m.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			m.ProbeOnce(ctx)
		}
	}
}

// probe runs one heartbeat.
func (m *Manager) probe(ctx context.Context, url string) error {
	if m.cfg.Probe != nil {
		pctx, cancel := context.WithTimeout(ctx, m.cfg.ProbeTimeout)
		defer cancel()
		return m.cfg.Probe(pctx, url)
	}
	v, ok := m.clients.Load(url)
	if !ok {
		c := rpc.NewClient(url, rpc.WithTimeout(m.cfg.ProbeTimeout))
		v, _ = m.clients.LoadOrStore(url, c)
	}
	return v.(*rpc.Client).Health(ctx)
}

// getState returns the backend's state shard, creating it on first
// sight.
func (m *Manager) getState(k key) *backendState {
	if v, ok := m.states.Load(k); ok {
		return v.(*backendState)
	}
	st := &backendState{
		status:      StatusHealthy,
		lastSuccess: time.Now(),
		lats:        make([]float64, m.cfg.LatencyWindow),
	}
	v, _ := m.states.LoadOrStore(k, st)
	return v.(*backendState)
}

// ProbeOnce runs one full heartbeat round: sync the watched set with
// the control plane's registry, probe every backend concurrently, fold
// the results into the state machine, and apply ejections and
// reinstatements. Exported so tests and slot-driven harnesses can step
// the detector deterministically.
func (m *Manager) ProbeOnce(ctx context.Context) {
	targets := m.syncTargets()
	errs := make([]error, len(targets))
	sim.FanOut(len(targets), 16, func(i int) {
		errs[i] = m.probe(ctx, targets[i].url)
	})
	now := time.Now()
	for i, k := range targets {
		v, ok := m.states.Load(k)
		if !ok {
			continue // deregistered mid-round
		}
		st := v.(*backendState)
		st.mu.Lock()
		if errs[i] == nil {
			m.probeSuccess(k, st, now)
		} else {
			m.probeFailure(k, st, now)
		}
		st.mu.Unlock()
	}
}

// syncTargets reconciles the watched set with the control plane's pools
// and returns the probe targets in deterministic (group, registration)
// order. State for deregistered backends is dropped.
func (m *Manager) syncTargets() []key {
	groups := make([]int, 0, 8)
	for g := range m.cfg.CP.Backends() {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	live := make(map[key]bool)
	liveURLs := make(map[string]bool)
	var targets []key
	for _, g := range groups {
		for _, info := range m.cfg.CP.Pool(g) {
			k := key{group: g, url: info.URL}
			live[k] = true
			liveURLs[info.URL] = true
			m.getState(k)
			targets = append(targets, k)
		}
	}
	m.states.Range(func(k, _ any) bool {
		if !live[k.(key)] {
			m.states.Delete(k)
		}
		return true
	})
	// Prune probe clients alongside the states: under autoscale churn
	// every repair and scale-up brings a fresh URL, and a long-running
	// detector must not accumulate one cached client per URL ever seen.
	m.clients.Range(func(url, _ any) bool {
		if !liveURLs[url.(string)] {
			m.clients.Delete(url)
		}
		return true
	})
	return targets
}

// probeSuccess folds one heartbeat success. Caller holds st.mu.
func (m *Manager) probeSuccess(k key, st *backendState, now time.Time) {
	st.lastSuccess = now
	st.consecProbeFails = 0
	st.firstFail = time.Time{}
	st.consecProbeSuccs++
	switch st.status {
	case StatusSuspect:
		st.status = StatusHealthy
	case StatusDown:
		// The backend answers again (a hang that cleared, a restart on
		// the same address). Reinstate once the success streak proves
		// it. A repair racing this recovery (it read Down before the
		// streak completed) would evict the just-reinstated backend and
		// replace it from the warm pool — capacity is briefly doubled,
		// never lost.
		if st.consecProbeSuccs >= m.cfg.SuccThreshold {
			m.reinstate(k, st)
		}
	case StatusDegraded:
		if st.consecProbeSuccs >= m.cfg.SuccThreshold && now.Sub(st.ejectedAt) >= m.cfg.EjectionCooldown {
			// Trial reinstatement: the passive detector re-ejects if the
			// data path is still sick.
			m.reinstate(k, st)
		}
	}
}

// probeFailure folds one heartbeat failure. Caller holds st.mu.
func (m *Manager) probeFailure(k key, st *backendState, now time.Time) {
	st.consecProbeSuccs = 0
	st.consecProbeFails++
	if st.firstFail.IsZero() {
		st.firstFail = now
	}
	if st.consecProbeFails < m.cfg.FailThreshold {
		if st.status == StatusHealthy {
			st.status = StatusSuspect
		}
		return
	}
	if st.status != StatusDown {
		st.status = StatusDown
		st.downAt = now
	}
	m.eject(k, st, now, "probe", st.consecProbeFails)
}

// eject fences a backend off unless the group would fall below the
// min-active floor. Caller holds st.mu; the global ejectMu serializes
// the floor check against concurrent ejections in the same group.
func (m *Manager) eject(k key, st *backendState, now time.Time, cause string, probeFails int) {
	if st.ejected {
		return
	}
	m.ejectMu.Lock()
	defer m.ejectMu.Unlock()
	if m.cfg.CP.ActiveCount(k.group) <= m.cfg.MinActive {
		// Refusing to empty the pool; the Down/Degraded status stands,
		// and a later round retries once capacity recovers.
		return
	}
	if err := m.cfg.CP.Eject(k.group, k.url); err != nil {
		return // deregistered concurrently; syncTargets will drop it
	}
	// Eject is a no-op on a draining backend (a drain decision outranks
	// a health suspicion): verify the fence actually landed before
	// recording it, or a phantom ejection would block every future
	// ejection of this backend.
	fenced := false
	for _, info := range m.cfg.CP.Pool(k.group) {
		if info.URL == k.url && info.State == router.StateEjected {
			fenced = true
			break
		}
	}
	if !fenced {
		return
	}
	st.ejected = true
	st.ejectedAt = now
	st.probesToEject = probeFails
	m.logMu.Lock()
	m.log = append(m.log, Ejection{
		Group: k.group, URL: k.url, At: now, Cause: cause, ProbeFails: probeFails,
	})
	m.logMu.Unlock()
}

// reinstate returns a backend to rotation and resets the passive
// signals so stale history cannot immediately re-eject it. Caller
// holds st.mu.
func (m *Manager) reinstate(k key, st *backendState) {
	if st.ejected {
		m.ejectMu.Lock()
		err := m.cfg.CP.Reinstate(k.group, k.url)
		m.ejectMu.Unlock()
		if err != nil {
			return
		}
	}
	st.ejected = false
	st.status = StatusHealthy
	st.consecErrors = 0
	st.have, st.next, st.seen = 0, 0, 0
	st.probesToEject = 0
}

// Observe is the passive hook the front-end calls per proxied request:
// err is the backend hop's outcome, latencyMs its round trip. It runs
// on the request hot path, so it touches only the backend's own state
// shard — one per-backend mutex, no detector-global lock, no
// allocation on the common path.
func (m *Manager) Observe(group int, url string, err error, latencyMs float64) {
	if errors.Is(err, context.Canceled) {
		// The client walked away (disconnect, or a hedge's losing lane
		// being canceled) — that says nothing about the backend, and
		// counting it would let sustained hedging eject healthy
		// capacity.
		return
	}
	k := key{group: group, url: url}
	st := m.getState(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	if err != nil {
		st.consecErrors++
		if m.cfg.PassiveErrors > 0 && st.consecErrors >= m.cfg.PassiveErrors &&
			st.status != StatusDown && !st.ejected {
			st.status = StatusDegraded
			m.eject(k, st, time.Now(), "errors", 0)
		}
		return
	}
	st.consecErrors = 0
	if m.cfg.LatencyLimitMs <= 0 || len(st.lats) == 0 {
		return
	}
	st.lats[st.next] = latencyMs
	st.next = (st.next + 1) % len(st.lats)
	if st.have < len(st.lats) {
		st.have++
	}
	st.seen++
	// Quantile checks are amortized: every 16th sample, once half the
	// window is warm — sorting the window per request would put a
	// O(n log n) tax on the hot path.
	if st.seen%16 != 0 || st.have < len(st.lats)/2 {
		return
	}
	q, qerr := stats.Percentile(st.lats[:st.have], m.cfg.LatencyQuantile*100)
	if qerr == nil && q > m.cfg.LatencyLimitMs && st.status == StatusHealthy && !st.ejected {
		st.status = StatusDegraded
		m.eject(k, st, time.Now(), "latency", 0)
	}
}

// Down reports the group's probe-confirmed dead backends in sorted
// order — the deterministic input of the reconciler's repair path.
func (m *Manager) Down(group int) []string {
	var out []string
	m.states.Range(func(kv, v any) bool {
		k := kv.(key)
		if k.group != group {
			return true
		}
		st := v.(*backendState)
		st.mu.Lock()
		down := st.status == StatusDown
		st.mu.Unlock()
		if down {
			out = append(out, k.url)
		}
		return true
	})
	sort.Strings(out)
	return out
}

// Forget drops a backend's state — the repair loop calls it after
// evicting and replacing a dead backend, so the fresh replacement
// starts with a clean history.
func (m *Manager) Forget(group int, url string) {
	m.states.Delete(key{group: group, url: url})
	m.logMu.Lock()
	m.repairs++
	m.logMu.Unlock()
}

// Repairs reports how many backends the repair loop has consumed via
// Forget.
func (m *Manager) Repairs() int64 {
	m.logMu.Lock()
	defer m.logMu.Unlock()
	return m.repairs
}

// View snapshots every watched backend, ordered by (group, url).
func (m *Manager) View() []BackendHealth {
	now := time.Now()
	var out []BackendHealth
	m.states.Range(func(kv, v any) bool {
		k := kv.(key)
		st := v.(*backendState)
		st.mu.Lock()
		phi := 0.0
		if !st.lastSuccess.IsZero() {
			phi = float64(now.Sub(st.lastSuccess)) / float64(m.cfg.ProbeInterval)
		}
		out = append(out, BackendHealth{
			Group:            k.group,
			URL:              k.url,
			Status:           st.status,
			Phi:              phi,
			ConsecProbeFails: st.consecProbeFails,
			ConsecErrors:     st.consecErrors,
			Ejected:          st.ejected,
		})
		st.mu.Unlock()
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		return out[i].URL < out[j].URL
	})
	return out
}

// Ejections snapshots the ejection audit log.
func (m *Manager) Ejections() []Ejection {
	m.logMu.Lock()
	defer m.logMu.Unlock()
	out := make([]Ejection, len(m.log))
	copy(out, m.log)
	return out
}
