package health

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"accelcloud/internal/router"
)

// probeTable is a controllable probe implementation.
type probeTable struct {
	mu   sync.Mutex
	fail map[string]bool
}

func (p *probeTable) set(url string, failing bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail == nil {
		p.fail = map[string]bool{}
	}
	p.fail[url] = failing
}

func (p *probeTable) probe(_ context.Context, url string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail[url] {
		return errors.New("injected probe failure")
	}
	return nil
}

func newManager(t *testing.T, cp ControlPlane, pt *probeTable, mut func(*Config)) *Manager {
	t.Helper()
	cfg := Config{
		CP:            cp,
		ProbeInterval: 10 * time.Millisecond,
		FailThreshold: 2,
		SuccThreshold: 2,
		Probe:         pt.probe,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func stateOf(t *testing.T, r *router.Router, group int, url string) router.State {
	t.Helper()
	for _, info := range r.Pool(group) {
		if info.URL == url {
			return info.State
		}
	}
	t.Fatalf("backend %s not in pool %d", url, group)
	return ""
}

func TestCrashDetectionEjectsBeforeThirdFailedProbe(t *testing.T) {
	r := router.New(nil)
	for _, u := range []string{"http://a", "http://b"} {
		if err := r.Register(1, u); err != nil {
			t.Fatal(err)
		}
	}
	pt := &probeTable{}
	m := newManager(t, r, pt, nil)
	ctx := context.Background()

	m.ProbeOnce(ctx) // both healthy
	pt.set("http://a", true)
	m.ProbeOnce(ctx) // 1st failure: suspect
	if got := stateOf(t, r, 1, "http://a"); got != router.StateActive {
		t.Fatalf("state after 1 failed probe = %s, want active", got)
	}
	if down := m.Down(1); len(down) != 0 {
		t.Fatalf("down after 1 failed probe = %v", down)
	}
	m.ProbeOnce(ctx) // 2nd failure: down + ejected
	if got := stateOf(t, r, 1, "http://a"); got != router.StateEjected {
		t.Fatalf("state after 2 failed probes = %s, want ejected", got)
	}
	if down := m.Down(1); len(down) != 1 || down[0] != "http://a" {
		t.Fatalf("down = %v", down)
	}
	log := m.Ejections()
	if len(log) != 1 || log[0].Cause != "probe" || log[0].ProbeFails != 2 {
		t.Fatalf("ejection log = %+v, want probe-cause with 2 fails (before the 3rd)", log)
	}
	// Survivor keeps serving.
	if got := r.ActiveCount(1); got != 1 {
		t.Fatalf("active = %d", got)
	}

	// Recovery: the address answers again (hang cleared) — two clean
	// probes reinstate it.
	pt.set("http://a", false)
	m.ProbeOnce(ctx)
	m.ProbeOnce(ctx)
	if got := stateOf(t, r, 1, "http://a"); got != router.StateActive {
		t.Fatalf("state after recovery = %s, want active", got)
	}
	if down := m.Down(1); len(down) != 0 {
		t.Fatalf("down after recovery = %v", down)
	}
}

func TestMinActiveFloorRefusesToEmptyPool(t *testing.T) {
	r := router.New(nil)
	if err := r.Register(1, "http://only"); err != nil {
		t.Fatal(err)
	}
	pt := &probeTable{}
	pt.set("http://only", true)
	m := newManager(t, r, pt, nil)
	for i := 0; i < 5; i++ {
		m.ProbeOnce(context.Background())
	}
	// Down for the repair loop, but never ejected: a sick backend still
	// beats an empty pool.
	if down := m.Down(1); len(down) != 1 {
		t.Fatalf("down = %v", down)
	}
	if got := stateOf(t, r, 1, "http://only"); got != router.StateActive {
		t.Fatalf("state = %s, want active (min-active floor)", got)
	}
}

func TestPassiveErrorBurstEjectsDegraded(t *testing.T) {
	r := router.New(nil)
	for _, u := range []string{"http://a", "http://b"} {
		if err := r.Register(1, u); err != nil {
			t.Fatal(err)
		}
	}
	pt := &probeTable{}
	m := newManager(t, r, pt, func(c *Config) {
		c.PassiveErrors = 3
		c.EjectionCooldown = 20 * time.Millisecond
	})
	m.ProbeOnce(context.Background())
	for i := 0; i < 3; i++ {
		m.Observe(1, "http://a", errors.New("boom"), 5)
	}
	if got := stateOf(t, r, 1, "http://a"); got != router.StateEjected {
		t.Fatalf("state after error burst = %s, want ejected", got)
	}
	// Degraded, not Down: probes still pass, so no repair is owed.
	if down := m.Down(1); len(down) != 0 {
		t.Fatalf("down = %v, degraded backends must not be repaired", down)
	}
	log := m.Ejections()
	if len(log) != 1 || log[0].Cause != "errors" {
		t.Fatalf("ejection log = %+v", log)
	}

	// Cooldown then trial reinstatement via clean probes.
	time.Sleep(25 * time.Millisecond) // cooldown = 2×interval below
	m.ProbeOnce(context.Background())
	m.ProbeOnce(context.Background())
	if got := stateOf(t, r, 1, "http://a"); got != router.StateActive {
		t.Fatalf("state after cooldown = %s, want active (trial reinstatement)", got)
	}
}

func TestLatencyQuantileEjection(t *testing.T) {
	r := router.New(nil)
	for _, u := range []string{"http://slow", "http://fast"} {
		if err := r.Register(1, u); err != nil {
			t.Fatal(err)
		}
	}
	pt := &probeTable{}
	m := newManager(t, r, pt, func(c *Config) {
		c.LatencyLimitMs = 100
		c.LatencyWindow = 16
	})
	m.ProbeOnce(context.Background())
	for i := 0; i < 32; i++ {
		m.Observe(1, "http://slow", nil, 500)
		m.Observe(1, "http://fast", nil, 5)
	}
	if got := stateOf(t, r, 1, "http://slow"); got != router.StateEjected {
		t.Fatalf("slow backend state = %s, want ejected", got)
	}
	if got := stateOf(t, r, 1, "http://fast"); got != router.StateActive {
		t.Fatalf("fast backend state = %s, want active", got)
	}
	log := m.Ejections()
	if len(log) != 1 || log[0].Cause != "latency" {
		t.Fatalf("ejection log = %+v", log)
	}
}

func TestForgetDropsStateAndCountsRepair(t *testing.T) {
	r := router.New(nil)
	for _, u := range []string{"http://a", "http://b"} {
		if err := r.Register(1, u); err != nil {
			t.Fatal(err)
		}
	}
	pt := &probeTable{}
	pt.set("http://a", true)
	m := newManager(t, r, pt, nil)
	m.ProbeOnce(context.Background())
	m.ProbeOnce(context.Background())
	if down := m.Down(1); len(down) != 1 {
		t.Fatalf("down = %v", down)
	}
	m.Forget(1, "http://a")
	if down := m.Down(1); len(down) != 0 {
		t.Fatalf("down after forget = %v", down)
	}
	if got := m.Repairs(); got != 1 {
		t.Fatalf("repairs = %d", got)
	}
}

func TestViewReportsPhiAndOrder(t *testing.T) {
	r := router.New(nil)
	for g := 1; g <= 2; g++ {
		for i := 0; i < 2; i++ {
			if err := r.Register(g, fmt.Sprintf("http://g%d-%d", g, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	pt := &probeTable{}
	m := newManager(t, r, pt, nil)
	m.ProbeOnce(context.Background())
	view := m.View()
	if len(view) != 4 {
		t.Fatalf("view length = %d", len(view))
	}
	for i := 1; i < len(view); i++ {
		a, b := view[i-1], view[i]
		if a.Group > b.Group || (a.Group == b.Group && a.URL >= b.URL) {
			t.Fatalf("view not ordered: %+v before %+v", a, b)
		}
	}
	for _, bh := range view {
		if bh.Status != StatusHealthy || bh.Phi < 0 {
			t.Fatalf("unexpected backend health %+v", bh)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Fatal("nil control plane should fail")
	}
	r := router.New(nil)
	for _, mut := range []func(*Config){
		func(c *Config) { c.ProbeInterval = -1 },
		func(c *Config) { c.FailThreshold = -1 },
		func(c *Config) { c.LatencyQuantile = 1.5 },
		func(c *Config) { c.MinActive = -2 },
	} {
		cfg := Config{CP: r}
		mut(&cfg)
		if _, err := NewManager(cfg); err == nil {
			t.Fatalf("config %+v should fail validation", cfg)
		}
	}
}
