package health

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"accelcloud/internal/router"
)

// TestRegionMonitorDownUp steps the monitor deterministically through a
// region outage and recovery: FailThreshold consecutive failed probes
// fence the region in the routing tier, SuccThreshold clean probes
// reinstate it, and the transition log (and its digest) records exactly
// one down and one up event.
func TestRegionMonitorDownUp(t *testing.T) {
	rs, err := router.NewRegions("eu", "us")
	if err != nil {
		t.Fatal(err)
	}
	var euDead atomic.Bool
	m, err := NewRegionMonitor(RegionMonitorConfig{
		Control: rs,
		Regions: map[string]string{"eu": "http://eu.invalid", "us": "http://us.invalid"},
		Probe: func(_ context.Context, url string) error {
			if url == "http://eu.invalid" && euDead.Load() {
				return errors.New("connection refused")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Healthy baseline: no transitions.
	m.ProbeOnce(ctx)
	if got := m.Down(); len(got) != 0 {
		t.Fatalf("down after healthy probe: %v", got)
	}

	// Kill eu: the default FailThreshold (2) fences it on the second
	// failed probe, not the first.
	euDead.Store(true)
	m.ProbeOnce(ctx)
	if st, _ := rs.State("eu"); st != router.RegionUp {
		t.Fatal("eu fenced after a single failed probe")
	}
	m.ProbeOnce(ctx)
	if st, _ := rs.State("eu"); st != router.RegionDown {
		t.Fatal("eu not fenced after crossing FailThreshold")
	}
	if got := m.Down(); len(got) != 1 || got[0] != "eu" {
		t.Fatalf("Down() = %v, want [eu]", got)
	}
	// Spillover order now resolves past the fenced home region.
	p, err := rs.PickFirst([]string{"eu", "us"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "us" {
		t.Fatalf("picked %q with eu down, want us", p.Name())
	}
	rs.Release(p)

	// Recovery: two clean probes reinstate.
	euDead.Store(false)
	m.ProbeOnce(ctx)
	m.ProbeOnce(ctx)
	if st, _ := rs.State("eu"); st != router.RegionUp {
		t.Fatal("eu not reinstated after crossing SuccThreshold")
	}

	want := []RegionEvent{{Region: "eu", Status: "down"}, {Region: "eu", Status: "up"}}
	got := m.Events()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("events = %v, want %v", got, want)
	}
	// The digest is a pure function of the transition log; the pinned
	// constant is the fnv1a of [eu down, eu up].
	const wantDigest = "fnv1a:9cbade63d89ac3aa"
	if d := m.EventsDigest(); d != wantDigest {
		t.Fatalf("events digest = %s, want %s", d, wantDigest)
	}
}

func TestRegionMonitorConfigValidation(t *testing.T) {
	rs, err := router.NewRegions("eu")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegionMonitor(RegionMonitorConfig{Regions: map[string]string{"eu": "x"}}); err == nil {
		t.Fatal("nil Control accepted")
	}
	if _, err := NewRegionMonitor(RegionMonitorConfig{Control: rs}); err == nil {
		t.Fatal("empty region set accepted")
	}
}
