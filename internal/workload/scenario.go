package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
)

// The scenario engine models population-scale traffic (ROADMAP item 3,
// the paper's §VI-C1 usage study scaled up): a million users with
// diurnal rate curves, correlated flash crowds, and session structure.
// At that scale nothing per-user can stay resident, so generation is
// organized around fixed-size user *blocks*: each block runs one
// aggregated non-homogeneous Poisson process for its users (Lewis-
// Shedler thinning against the block's peak rate) and lazily emits a
// time-ordered Stream; blocks merge through the loser tree in
// stream.go. Resident state is O(blocks), independent of how many
// requests the schedule contains.
//
// Determinism: block b draws exclusively from
// root.Sub("scenario").LightN("block", b), and the block partition
// depends only on (Users, BlockSize) — never on shard or worker
// count. Shards regroup whole blocks, and the merge order is a pure
// function of (At, UserID) keys, so the emitted global sequence — and
// its fnv1a digest — is bit-identical at any shard fan-in.

// FlashCrowd multiplies the arrival rate of a contiguous user cohort
// for a time window — the correlated-load event (a release, an
// outage elsewhere, a broadcast) layered on the diurnal baseline.
type FlashCrowd struct {
	// Start is the window's offset from scenario start.
	Start time.Duration
	// Duration is the window length.
	Duration time.Duration
	// UserLo and UserHi bound the affected cohort, [UserLo, UserHi).
	UserLo, UserHi int
	// Multiplier scales the cohort's rate inside the window (>= 1).
	Multiplier float64
}

// ScenarioConfig parameterizes the population-scale generator.
type ScenarioConfig struct {
	// Users is the modeled population size.
	Users int
	// Duration is the scenario length in virtual time.
	Duration time.Duration
	// BaseRateHz is one user's mean request rate at diurnal
	// multiplier 1.
	BaseRateHz float64
	// Diurnal is a 24-entry multiplier curve indexed by virtual hour
	// (nil = flat 1.0; see DefaultDiurnal).
	Diurnal []float64
	// DiurnalPeriod is the virtual length of one "day" (0 = 24h).
	// Compressing it lets short benches exercise the full curve.
	DiurnalPeriod time.Duration
	// Crowds are flash-crowd events layered on the baseline.
	Crowds []FlashCrowd
	// SessionGap is the idle gap that starts a new user session
	// (0 = 30s virtual). Session starts are marked probabilistically:
	// for a Poisson user at rate λ the chance the preceding arrival
	// was more than G ago is e^(-λG), so the flag is drawn Bernoulli
	// with that probability instead of tracking per-user last-arrival
	// state (which would be O(users), not O(blocks)).
	SessionGap time.Duration
	// Pool and Sizer supply the task draws, as everywhere else in the
	// package.
	Pool  *tasks.Pool
	Sizer Sizer
	// TaskMix weights task draws by name (nil = uniform pool draw).
	TaskMix map[string]float64
	// BlockSize is the users-per-block generation unit (0 = 4096).
	// It is part of the schedule identity: changing it re-partitions
	// the RNG substreams and produces a different (equally valid)
	// schedule. Shard count is NOT part of the identity.
	BlockSize int
}

// DefaultBlockSize is the users-per-block generation unit when
// ScenarioConfig.BlockSize is zero.
const DefaultBlockSize = 4096

// DefaultDiurnal returns the scenario baseline day curve: quiet nights
// (~0.2x), a morning ramp, a midday plateau and an evening peak
// (~1.8x) — the shape of the usage study's in-session activity with a
// nonzero night floor so the process never fully stops.
func DefaultDiurnal() []float64 {
	return []float64{
		0.30, 0.22, 0.18, 0.15, 0.15, 0.20, // 00-05
		0.35, 0.60, 0.90, 1.10, 1.20, 1.30, // 06-11
		1.35, 1.30, 1.20, 1.15, 1.20, 1.35, // 12-17
		1.55, 1.75, 1.80, 1.60, 1.10, 0.60, // 18-23
	}
}

// scenarioState is the normalized, validated scenario shared by all of
// its block streams.
type scenarioState struct {
	cfg        ScenarioConfig
	curve      []float64
	curveMax   float64
	period     time.Duration
	sessionSec float64
	mix        []mixEntry // nil → uniform pool draw
	mixTotal   float64
}

type mixEntry struct {
	task tasks.Task
	cum  float64
}

func newScenarioState(cfg ScenarioConfig) (*scenarioState, error) {
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("workload: users %d <= 0", cfg.Users)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: duration %v <= 0", cfg.Duration)
	}
	if cfg.BaseRateHz <= 0 {
		return nil, fmt.Errorf("workload: base rate %v <= 0", cfg.BaseRateHz)
	}
	if cfg.Pool == nil {
		return nil, errors.New("workload: nil pool")
	}
	if cfg.Sizer == nil {
		return nil, errors.New("workload: nil sizer")
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.BlockSize < 0 {
		return nil, fmt.Errorf("workload: block size %d < 0", cfg.BlockSize)
	}
	st := &scenarioState{cfg: cfg}

	st.curve = cfg.Diurnal
	if st.curve == nil {
		st.curve = []float64{1}
	}
	for i, v := range st.curve {
		if v < 0 {
			return nil, fmt.Errorf("workload: diurnal[%d] = %v < 0", i, v)
		}
		if v > st.curveMax {
			st.curveMax = v
		}
	}
	if st.curveMax == 0 {
		return nil, errors.New("workload: diurnal curve is all zero")
	}
	st.period = cfg.DiurnalPeriod
	if st.period <= 0 {
		st.period = 24 * time.Hour
	}

	for i, c := range cfg.Crowds {
		if c.Multiplier < 1 {
			return nil, fmt.Errorf("workload: crowd %d multiplier %v < 1", i, c.Multiplier)
		}
		if c.UserLo < 0 || c.UserHi > cfg.Users || c.UserLo >= c.UserHi {
			return nil, fmt.Errorf("workload: crowd %d cohort [%d,%d) outside [0,%d)", i, c.UserLo, c.UserHi, cfg.Users)
		}
		if c.Start < 0 || c.Duration <= 0 {
			return nil, fmt.Errorf("workload: crowd %d window start %v duration %v invalid", i, c.Start, c.Duration)
		}
	}

	gap := cfg.SessionGap
	if gap <= 0 {
		gap = 30 * time.Second
	}
	st.sessionSec = gap.Seconds()

	if cfg.TaskMix != nil {
		// Deterministic cumulative-weight table in pool order.
		for _, name := range cfg.Pool.Names() {
			w, ok := cfg.TaskMix[name]
			if !ok {
				continue
			}
			if w < 0 {
				return nil, fmt.Errorf("workload: task mix weight %q = %v < 0", name, w)
			}
			if w == 0 {
				continue
			}
			t, err := cfg.Pool.ByName(name)
			if err != nil {
				return nil, err
			}
			st.mixTotal += w
			st.mix = append(st.mix, mixEntry{task: t, cum: st.mixTotal})
		}
		if len(st.mix) != len(cfg.TaskMix) {
			for name := range cfg.TaskMix {
				if _, err := cfg.Pool.ByName(name); err != nil {
					return nil, err
				}
			}
		}
		if st.mixTotal <= 0 {
			return nil, errors.New("workload: task mix has no positive weight")
		}
	}
	return st, nil
}

// diurnalAt evaluates the day-curve multiplier at offset t.
func (st *scenarioState) diurnalAt(t time.Duration) float64 {
	phase := t % st.period
	idx := int(int64(phase) * int64(len(st.curve)) / int64(st.period))
	if idx >= len(st.curve) {
		idx = len(st.curve) - 1
	}
	return st.curve[idx]
}

// drawTask picks a task from the mix (or uniformly from the pool) and
// fills the (task, size, work) triple.
func (st *scenarioState) drawTask(r *rand.Rand, req *Request) {
	var t tasks.Task
	if st.mix == nil {
		t = st.cfg.Pool.Random(r)
	} else {
		v := r.Float64() * st.mixTotal
		t = st.mix[len(st.mix)-1].task
		for i := range st.mix {
			if v < st.mix[i].cum {
				t = st.mix[i].task
				break
			}
		}
	}
	req.TaskName = t.Name()
	req.Size = st.cfg.Sizer.Draw(r, req.TaskName)
	req.Work = t.Work(req.Size)
}

// crowdSpan is a flash crowd clipped to one block's user range.
type crowdSpan struct {
	lo, hi     int
	start, end time.Duration
	mult       float64
}

// blockStream runs the aggregated arrival process of users [lo, hi):
// a thinned Poisson stream at the block's peak rate, accepted with
// probability λ(t)/λmax where λ(t) folds the diurnal curve and every
// crowd active over the block at t. Accepted arrivals pick a user by
// weight (crowd users count at their multiplier), then draw task,
// size, and the session-start flag. All randomness comes from the
// block's own light substream, so the block's sequence is a pure
// function of (root seed, block index, config).
type blockStream struct {
	st     *scenarioState
	rng    *rand.Rand
	lo, hi int
	crowds []crowdSpan
	t      time.Duration
	lmax   float64 // peak aggregate rate, arrivals/sec
	done   bool
}

var _ Stream = (*blockStream)(nil)

func newBlockStream(root *sim.RNG, st *scenarioState, b int) *blockStream {
	lo := b * st.cfg.BlockSize
	hi := lo + st.cfg.BlockSize
	if hi > st.cfg.Users {
		hi = st.cfg.Users
	}
	s := &blockStream{
		st:  st,
		rng: root.Sub("scenario").LightN("block", b),
		lo:  lo,
		hi:  hi,
	}
	// Peak weight: every block user at the curve max, plus each
	// crowd's extra weight over its intersection with the block —
	// summed over all crowds as a safe (if loose) simultaneous bound.
	peakWeight := float64(hi - lo)
	for _, c := range st.cfg.Crowds {
		clo, chi := c.UserLo, c.UserHi
		if clo < lo {
			clo = lo
		}
		if chi > hi {
			chi = hi
		}
		if clo >= chi {
			continue
		}
		s.crowds = append(s.crowds, crowdSpan{
			lo:    clo,
			hi:    chi,
			start: c.Start,
			end:   c.Start + c.Duration,
			mult:  c.Multiplier,
		})
		peakWeight += float64(chi-clo) * (c.Multiplier - 1)
	}
	s.lmax = st.cfg.BaseRateHz * st.curveMax * peakWeight
	return s
}

// weightAt returns the block's aggregate user weight at t (base users
// at 1, crowd users at their multiplier while their window is active).
func (s *blockStream) weightAt(t time.Duration) float64 {
	w := float64(s.hi - s.lo)
	for i := range s.crowds {
		c := &s.crowds[i]
		if t >= c.start && t < c.end {
			w += float64(c.hi-c.lo) * (c.mult - 1)
		}
	}
	return w
}

// pickUser maps v ∈ [0, weightAt(t)) to a user id: the first
// (hi-lo)-sized slab is the whole block at base weight, each active
// crowd appends an extra slab of (users × (mult-1)). Returns the user
// and that user's total rate multiplier at t.
func (s *blockStream) pickUser(v float64, t time.Duration) (int, float64) {
	n := s.hi - s.lo
	if v < float64(n) {
		u := s.lo + int(v)
		if u >= s.hi {
			u = s.hi - 1
		}
		return u, s.userMult(u, t)
	}
	v -= float64(n)
	for i := range s.crowds {
		c := &s.crowds[i]
		if t < c.start || t >= c.end {
			continue
		}
		extra := float64(c.hi-c.lo) * (c.mult - 1)
		if v < extra {
			u := c.lo + int(v/(c.mult-1))
			if u >= c.hi {
				u = c.hi - 1
			}
			return u, s.userMult(u, t)
		}
		v -= extra
	}
	// Float rounding spilled past the last slab; clamp to the block end.
	return s.hi - 1, s.userMult(s.hi-1, t)
}

// userMult is user u's rate multiplier at t across active crowds.
func (s *blockStream) userMult(u int, t time.Duration) float64 {
	m := 1.0
	for i := range s.crowds {
		c := &s.crowds[i]
		if u >= c.lo && u < c.hi && t >= c.start && t < c.end {
			m += c.mult - 1
		}
	}
	return m
}

// Next implements Stream.
func (s *blockStream) Next(req *Request) bool {
	if s.done {
		return false
	}
	st := s.st
	for {
		gap := time.Duration(s.rng.ExpFloat64() / s.lmax * float64(time.Second))
		if gap <= 0 {
			gap = time.Nanosecond
		}
		s.t += gap
		if s.t >= st.cfg.Duration {
			s.done = true
			return false
		}
		d := st.diurnalAt(s.t)
		w := s.weightAt(s.t)
		lambda := st.cfg.BaseRateHz * d * w
		if s.rng.Float64()*s.lmax >= lambda {
			continue // thinned out
		}
		user, mult := s.pickUser(s.rng.Float64()*w, s.t)
		*req = Request{At: scenarioEpoch.Add(s.t), UserID: user}
		st.drawTask(s.rng, req)
		userRate := st.cfg.BaseRateHz * d * mult
		req.SessionStart = s.rng.Float64() < math.Exp(-userRate*st.sessionSec)
		return true
	}
}

// scenarioEpoch anchors scenario arrival times; replay and digests use
// offsets from ScenarioStart, so the absolute value is arbitrary but
// must be fixed for schedule identity.
var scenarioEpoch = time.Unix(0, 0).UTC()

// ScenarioStart is the virtual start time of every scenario schedule;
// request offsets (and the schedule digest) are measured from it.
func ScenarioStart() time.Time { return scenarioEpoch }

// ScenarioBlocks reports how many generation blocks the config
// partitions into.
func ScenarioBlocks(cfg ScenarioConfig) int {
	bs := cfg.BlockSize
	if bs <= 0 {
		bs = DefaultBlockSize
	}
	return (cfg.Users + bs - 1) / bs
}

// ScenarioShards builds the scenario's block streams grouped into
// `shards` contiguous shard streams, each already merged into (At,
// UserID) order. Shards can be drained concurrently (one goroutine
// each) and merged with NewMerge; because shard boundaries only
// regroup whole blocks and never change any block's substream, the
// final merged sequence is identical for every shard count.
func ScenarioShards(root *sim.RNG, cfg ScenarioConfig, shards int) ([]Stream, error) {
	if root == nil {
		return nil, errors.New("workload: nil rng root")
	}
	if shards <= 0 {
		return nil, fmt.Errorf("workload: shards %d <= 0", shards)
	}
	st, err := newScenarioState(cfg)
	if err != nil {
		return nil, err
	}
	blocks := ScenarioBlocks(st.cfg)
	if shards > blocks {
		shards = blocks
	}
	out := make([]Stream, 0, shards)
	for sh := 0; sh < shards; sh++ {
		lo := sh * blocks / shards
		hi := (sh + 1) * blocks / shards
		members := make([]Stream, 0, hi-lo)
		for b := lo; b < hi; b++ {
			members = append(members, newBlockStream(root, st, b))
		}
		out = append(out, NewMerge(members...))
	}
	return out, nil
}

// NewScenarioStream builds the full scenario as one global stream
// (a merge over every block). Equivalent to merging ScenarioShards at
// any shard count.
func NewScenarioStream(root *sim.RNG, cfg ScenarioConfig) (Stream, error) {
	shards, err := ScenarioShards(root, cfg, 1)
	if err != nil {
		return nil, err
	}
	if len(shards) == 1 {
		return shards[0], nil
	}
	return NewMerge(shards...), nil
}

// ExpectedRequests estimates the schedule's request count: base
// population at the diurnal mean plus each crowd's extra arrivals.
// It is an estimate (the realized count is a Poisson draw), used for
// sizing and throughput reporting.
func ExpectedRequests(cfg ScenarioConfig) float64 {
	curve := cfg.Diurnal
	if curve == nil {
		curve = []float64{1}
	}
	mean := 0.0
	for _, v := range curve {
		mean += v
	}
	mean /= float64(len(curve))
	total := float64(cfg.Users) * cfg.BaseRateHz * cfg.Duration.Seconds() * mean
	for _, c := range cfg.Crowds {
		dur := c.Duration
		if c.Start+dur > cfg.Duration {
			dur = cfg.Duration - c.Start
		}
		if dur <= 0 {
			continue
		}
		total += float64(c.UserHi-c.UserLo) * (c.Multiplier - 1) * cfg.BaseRateHz * dur.Seconds() * mean
	}
	return total
}
