package workload

import (
	"testing"
	"time"

	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
)

func TestGenerateClosedLoopDeterministic(t *testing.T) {
	cfg := ClosedLoopConfig{
		Users:   4,
		PerUser: 20,
		Pool:    tasks.DefaultPool(),
		Sizer:   DefaultSizer(),
	}
	a, err := GenerateClosedLoop(sim.NewRNG(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateClosedLoop(sim.NewRNG(42), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Users {
		t.Fatalf("users = %d", len(a))
	}
	for u := range a {
		if len(a[u]) != cfg.PerUser {
			t.Fatalf("user %d has %d requests", u, len(a[u]))
		}
		for j := range a[u] {
			if a[u][j] != b[u][j] {
				t.Fatalf("user %d req %d differs: %+v vs %+v", u, j, a[u][j], b[u][j])
			}
			if a[u][j].UserID != u {
				t.Fatalf("user %d req %d mislabeled as %d", u, j, a[u][j].UserID)
			}
		}
	}
	// A different seed must reroll the draws.
	c, err := GenerateClosedLoop(sim.NewRNG(43), cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for u := range a {
		for j := range a[u] {
			if a[u][j] != c[u][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical schedules")
	}
}

func TestGenerateClosedLoopUserIndependence(t *testing.T) {
	small := ClosedLoopConfig{Users: 3, PerUser: 10, Pool: tasks.DefaultPool(), Sizer: DefaultSizer()}
	big := small
	big.Users = 8
	a, err := GenerateClosedLoop(sim.NewRNG(1), small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateClosedLoop(sim.NewRNG(1), big)
	if err != nil {
		t.Fatal(err)
	}
	// Growing the fleet must not perturb existing users' schedules.
	for u := 0; u < small.Users; u++ {
		for j := range a[u] {
			if a[u][j] != b[u][j] {
				t.Fatalf("user %d schedule changed when fleet grew: %+v vs %+v", u, a[u][j], b[u][j])
			}
		}
	}
}

func TestGenerateClosedLoopValidation(t *testing.T) {
	pool := tasks.DefaultPool()
	cases := []ClosedLoopConfig{
		{Users: 0, PerUser: 1, Pool: pool, Sizer: DefaultSizer()},
		{Users: 1, PerUser: 0, Pool: pool, Sizer: DefaultSizer()},
		{Users: 1, PerUser: 1, Sizer: DefaultSizer()},
		{Users: 1, PerUser: 1, Pool: pool},
	}
	for i, cfg := range cases {
		if _, err := GenerateClosedLoop(sim.NewRNG(1), cfg); err == nil {
			t.Fatalf("case %d should fail: %+v", i, cfg)
		}
	}
	if _, err := GenerateClosedLoop(nil, ClosedLoopConfig{Users: 1, PerUser: 1, Pool: pool, Sizer: DefaultSizer()}); err == nil {
		t.Fatal("nil root should fail")
	}
	if _, err := GenerateClosedLoop(sim.NewRNG(1), ClosedLoopConfig{
		Users: 1, PerUser: 1, Pool: pool, Sizer: DefaultSizer(), FixedTask: "nope",
	}); err == nil {
		t.Fatal("unknown fixed task should fail")
	}
}

func TestGenerateUserStreamsDeterministicAndSorted(t *testing.T) {
	cfg := InterArrivalConfig{
		Users:        5,
		InterArrival: stats.Exponential{Rate: 1.0 / 200},
		Duration:     5 * time.Second,
		Pool:         tasks.DefaultPool(),
		Sizer:        DefaultSizer(),
	}
	start := sim.Epoch
	a, err := GenerateUserStreams(sim.NewRNG(9), start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateUserStreams(sim.NewRNG(9), start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
		if i > 0 && a[i].At.Before(a[i-1].At) {
			t.Fatalf("stream not sorted at %d", i)
		}
		if d := a[i].At.Sub(start); d <= 0 || d >= cfg.Duration {
			t.Fatalf("arrival %v outside (0, duration)", d)
		}
	}
}

func TestGenerateUserStreamsUserIndependence(t *testing.T) {
	base := InterArrivalConfig{
		Users:        2,
		InterArrival: stats.Exponential{Rate: 1.0 / 300},
		Duration:     3 * time.Second,
		Pool:         tasks.DefaultPool(),
		Sizer:        DefaultSizer(),
	}
	grown := base
	grown.Users = 6
	a, err := GenerateUserStreams(sim.NewRNG(5), sim.Epoch, base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateUserStreams(sim.NewRNG(5), sim.Epoch, grown)
	if err != nil {
		t.Fatal(err)
	}
	// Project the grown stream onto the original users: it must equal the
	// small run exactly.
	var proj []Request
	for _, r := range b {
		if r.UserID < base.Users {
			proj = append(proj, r)
		}
	}
	if len(proj) != len(a) {
		t.Fatalf("projection has %d requests, small run %d", len(proj), len(a))
	}
	for i := range a {
		if a[i] != proj[i] {
			t.Fatalf("request %d changed when fleet grew", i)
		}
	}
}
