package workload

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
)

// This file is the streaming half of the workload package: request
// schedules as lazily-evaluated, time-ordered streams instead of
// materialized slices. A Stream yields one Request at a time; the
// loser-tree Merge combines any number of time-ordered streams into one
// global arrival order; StreamDigest folds a stream into the fnv1a
// schedule digest without ever holding more than one request resident.
// Together they turn schedule generation from O(total requests) memory
// (build everything, sort.Slice the lot) into O(streams): the property
// that lets the scenario engine (scenario.go) model a million users.

// Stream lazily emits a time-ordered request sequence. Next fills req
// and reports whether a request was produced; after the first false it
// keeps returning false. Implementations write every field they own and
// must emit non-decreasing (At, UserID) keys.
type Stream interface {
	Next(req *Request) bool
}

// drawInto is the allocation-free variant of draw: it writes the
// (task, size, work) triple into req. The task set is resolved by the
// caller (fixed task validated at stream construction), so drawing
// cannot fail mid-stream.
func drawInto(r *rand.Rand, pool *tasks.Pool, sizer Sizer, fixed tasks.Task, req *Request) {
	t := fixed
	if t == nil {
		t = pool.Random(r)
	}
	req.TaskName = t.Name()
	req.Size = sizer.Draw(r, req.TaskName)
	req.Work = t.Work(req.Size)
}

// resolveFixed validates a FixedTask name against the pool once, so
// streams never hit the unknown-task error mid-iteration.
func resolveFixed(pool *tasks.Pool, name string) (tasks.Task, error) {
	if name == "" {
		return nil, nil
	}
	return pool.ByName(name)
}

// userStream replays one user's open-loop arrival process lazily — the
// identical draws GenerateUserStreams makes for that user, in the
// identical order, so a Merge over all users reproduces the
// materialized generator's output request-for-request.
type userStream struct {
	r     *rand.Rand
	cfg   InterArrivalConfig
	fixed tasks.Task
	start time.Time
	at    time.Time
	user  int
	done  bool
}

// Next implements Stream.
func (s *userStream) Next(req *Request) bool {
	if s.done {
		return false
	}
	gapMs := s.cfg.InterArrival.Sample(s.r)
	if gapMs < 1 {
		gapMs = 1
	}
	s.at = s.at.Add(time.Duration(gapMs * float64(time.Millisecond)))
	if s.at.Sub(s.start) >= s.cfg.Duration {
		s.done = true
		return false
	}
	*req = Request{At: s.at, UserID: s.user}
	drawInto(s.r, s.cfg.Pool, s.cfg.Sizer, s.fixed, req)
	return true
}

// InterArrivalStream is the streaming equivalent of
// GenerateUserStreams: one lazy arrival stream per user (drawing from
// root.SubN("user", u), exactly like the materialized generator),
// merged into global (At, UserID) order. Resident memory is O(users),
// never O(requests); the emitted sequence — and therefore its digest —
// is bit-identical to sorting GenerateUserStreams' output.
func InterArrivalStream(root *sim.RNG, start time.Time, cfg InterArrivalConfig) (Stream, error) {
	if root == nil {
		return nil, errors.New("workload: nil rng root")
	}
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("workload: users %d <= 0", cfg.Users)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: duration %v <= 0", cfg.Duration)
	}
	if cfg.InterArrival == nil {
		return nil, errors.New("workload: nil inter-arrival distribution")
	}
	if cfg.Pool == nil {
		return nil, errors.New("workload: nil pool")
	}
	if cfg.Sizer == nil {
		return nil, errors.New("workload: nil sizer")
	}
	fixed, err := resolveFixed(cfg.Pool, cfg.FixedTask)
	if err != nil {
		return nil, err
	}
	streams := make([]Stream, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		streams[u] = &userStream{
			r:     root.SubN("user", u).Stream("arrivals"),
			cfg:   cfg,
			fixed: fixed,
			start: start,
			at:    start,
			user:  u,
		}
	}
	return NewMerge(streams...), nil
}

// Merge is a loser-tree k-way merge of time-ordered streams. Each call
// to Next emits the globally smallest pending (At, UserID) key and
// refills that leaf from its stream, so merging k streams costs
// O(log k) comparisons per request with k requests resident — the
// merge never buffers beyond one head per input.
//
// The output order is a pure function of the emitted keys: ties
// between different streams break on UserID, and a single stream's own
// requests keep their emission order. Because the key order never
// consults stream indices, regrouping the same leaves into intermediate
// Merges (sharded generation at any fan-in) produces a bit-identical
// global sequence.
type Merge struct {
	streams []Stream
	heads   []Request
	alive   []bool
	node    []int // node[0] = winner; node[1..k-1] = losers on the path
	k       int
	primed  bool
}

var _ Stream = (*Merge)(nil)

// NewMerge builds the merge over the given streams.
func NewMerge(streams ...Stream) *Merge {
	k := len(streams)
	m := &Merge{
		streams: streams,
		heads:   make([]Request, k),
		alive:   make([]bool, k),
		node:    make([]int, k),
		k:       k,
	}
	return m
}

// less orders leaf a's head strictly before leaf b's; exhausted leaves
// order after everything.
func (m *Merge) less(a, b int) bool {
	if !m.alive[a] {
		return false
	}
	if !m.alive[b] {
		return true
	}
	ha, hb := &m.heads[a], &m.heads[b]
	if !ha.At.Equal(hb.At) {
		return ha.At.Before(hb.At)
	}
	return ha.UserID < hb.UserID
}

// adjust replays leaf i from its node up to the root, swapping with
// stored losers it does not beat, and records the overall winner.
// During construction a climbing leaf that reaches an empty (-1) slot
// has no opponent yet: it parks there and stops — each internal node
// hosts exactly one match, so after all k leaves have climbed, every
// internal node holds its match's loser and node[0] the champion.
func (m *Merge) adjust(i int) {
	w := i
	for n := (m.k + i) / 2; n >= 1; n /= 2 {
		if m.node[n] == -1 {
			m.node[n] = w
			return
		}
		if !m.less(w, m.node[n]) {
			w, m.node[n] = m.node[n], w
		}
	}
	m.node[0] = w
}

// prime pulls the first head of every stream and builds the tree.
func (m *Merge) prime() {
	m.primed = true
	for i := range m.node {
		m.node[i] = -1
	}
	for i := 0; i < m.k; i++ {
		m.alive[i] = m.streams[i].Next(&m.heads[i])
	}
	for i := 0; i < m.k; i++ {
		m.adjust(i)
	}
}

// Next implements Stream.
func (m *Merge) Next(req *Request) bool {
	if m.k == 0 {
		return false
	}
	if !m.primed {
		m.prime()
	}
	w := m.node[0]
	if w == -1 || !m.alive[w] {
		return false
	}
	*req = m.heads[w]
	m.alive[w] = m.streams[w].Next(&m.heads[w])
	m.adjust(w)
	return true
}

// Collect drains a stream into a slice — the bridge back to the
// materialized API for small configs and tests.
func Collect(s Stream) []Request {
	var out []Request
	var req Request
	for s.Next(&req) {
		out = append(out, req)
	}
	return out
}

// Digester folds requests into the workload-level fnv1a schedule
// digest incrementally: offset-from-start, user, task, size, and the
// session-start flag of every request in stream order. Feeding it from
// a Stream digests a schedule that is never materialized; feeding it a
// generated slice digests the equivalent materialized schedule — the
// parity suite pins that the two agree bit-for-bit.
type Digester struct {
	h     interface{ Sum64() uint64 }
	w     interface{ Write([]byte) (int, error) }
	start time.Time
	buf   [8]byte
	n     int
}

// NewDigester starts a digest with arrival offsets measured from start.
func NewDigester(start time.Time) *Digester {
	h := fnv.New64a()
	return &Digester{h: h, w: h, start: start}
}

// Add folds one request.
func (d *Digester) Add(req *Request) {
	d.n++
	d.writeInt(int64(req.At.Sub(d.start)))
	d.writeInt(int64(req.UserID))
	_, _ = d.w.Write([]byte(req.TaskName))
	d.writeInt(int64(req.Size))
	if req.SessionStart {
		_, _ = d.w.Write([]byte{1})
	} else {
		_, _ = d.w.Write([]byte{0})
	}
}

// Requests reports how many requests were folded in.
func (d *Digester) Requests() int { return d.n }

// Sum renders the digest in the repository's fnv1a:%016x convention.
func (d *Digester) Sum() string {
	return fmt.Sprintf("fnv1a:%016x", d.h.Sum64())
}

func (d *Digester) writeInt(v int64) {
	for i := 0; i < 8; i++ {
		d.buf[i] = byte(uint64(v) >> (8 * i))
	}
	_, _ = d.w.Write(d.buf[:])
}

// StreamDigest drains a stream into its schedule digest and request
// count without materializing it.
func StreamDigest(s Stream, start time.Time) (string, int) {
	d := NewDigester(start)
	var req Request
	for s.Next(&req) {
		d.Add(&req)
	}
	return d.Sum(), d.Requests()
}

// DigestRequests digests an already-materialized schedule with the same
// fold as StreamDigest — the parity anchor between the two APIs.
func DigestRequests(reqs []Request, start time.Time) string {
	d := NewDigester(start)
	for i := range reqs {
		d.Add(&reqs[i])
	}
	return d.Sum()
}
