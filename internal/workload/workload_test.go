package workload

import (
	"math"
	"testing"
	"time"

	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
)

func TestRangeSizer(t *testing.T) {
	s := RangeSizer{
		Ranges:  map[string][2]int{"a": {5, 9}, "flipped": {9, 5}, "point": {4, 4}},
		Default: [2]int{1, 3},
	}
	r := sim.NewRNG(1).Stream("sizer")
	for i := 0; i < 200; i++ {
		if got := s.Draw(r, "a"); got < 5 || got > 9 {
			t.Fatalf("Draw(a) = %d out of [5,9]", got)
		}
		if got := s.Draw(r, "flipped"); got < 5 || got > 9 {
			t.Fatalf("Draw(flipped) = %d out of [5,9]", got)
		}
		if got := s.Draw(r, "point"); got != 4 {
			t.Fatalf("Draw(point) = %d, want 4", got)
		}
		if got := s.Draw(r, "unknown"); got < 1 || got > 3 {
			t.Fatalf("Draw(unknown) = %d out of default [1,3]", got)
		}
	}
}

// TestRangeSizerEdgeCases covers the degenerate shapes TestRangeSizer
// leaves out: an inverted Default range, the zero value (every draw hits
// the collapsed default [0,0]), and that an inclusive range is actually
// covered end to end rather than clipped at either bound.
func TestRangeSizerEdgeCases(t *testing.T) {
	r := sim.NewRNG(2).Stream("sizer-edge")

	inv := RangeSizer{Default: [2]int{7, 3}}
	for i := 0; i < 100; i++ {
		if got := inv.Draw(r, "anything"); got < 3 || got > 7 {
			t.Fatalf("inverted default Draw = %d out of [3,7]", got)
		}
	}

	var zero RangeSizer
	if got := zero.Draw(r, "anything"); got != 0 {
		t.Fatalf("zero-value Draw = %d, want 0", got)
	}

	s := RangeSizer{Ranges: map[string][2]int{"a": {5, 9}}}
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		seen[s.Draw(r, "a")] = true
	}
	for v := 5; v <= 9; v++ {
		if !seen[v] {
			t.Fatalf("value %d in [5,9] never drawn; seen %v", v, seen)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("drew outside [5,9]: %v", seen)
	}
}

func TestFixedSizer(t *testing.T) {
	if got := (FixedSizer{Size: 9}).Draw(nil, "anything"); got != 9 {
		t.Fatalf("FixedSizer = %d, want 9", got)
	}
}

// DefaultSizer must keep every pool task's work in a band that makes the
// ten tasks comparable (the Fig 4 mix).
func TestDefaultSizerWorkBand(t *testing.T) {
	pool := tasks.DefaultPool()
	sizer := DefaultSizer()
	r := sim.NewRNG(2).Stream("band")
	for _, name := range pool.Names() {
		task, err := pool.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var minW, maxW float64 = math.Inf(1), 0
		for i := 0; i < 300; i++ {
			w := task.Work(sizer.Draw(r, name))
			if w < minW {
				minW = w
			}
			if w > maxW {
				maxW = w
			}
		}
		if minW < 3 || maxW > 30_000 {
			t.Errorf("%s work band [%v, %v] outside [3, 30000]", name, minW, maxW)
		}
	}
}

func TestGenerateConcurrent(t *testing.T) {
	pool := tasks.DefaultPool()
	r := sim.NewRNG(3).Stream("conc")
	reqs, err := GenerateConcurrent(r, sim.Epoch, ConcurrentConfig{
		Users: 10, Waves: 3, WaveInterval: time.Minute,
		Pool: pool, Sizer: DefaultSizer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 30 {
		t.Fatalf("got %d requests, want 30", len(reqs))
	}
	// Wave structure: 10 at t=0, 10 at t=1min, 10 at t=2min.
	for i, req := range reqs {
		wantAt := sim.Epoch.Add(time.Duration(i/10) * time.Minute)
		if !req.At.Equal(wantAt) {
			t.Fatalf("req %d at %v, want %v", i, req.At, wantAt)
		}
		if req.UserID != i%10 {
			t.Fatalf("req %d user %d, want %d", i, req.UserID, i%10)
		}
		if req.Work <= 0 || req.TaskName == "" {
			t.Fatalf("req %d invalid: %+v", i, req)
		}
	}
}

func TestGenerateConcurrentFixedTask(t *testing.T) {
	pool := tasks.DefaultPool()
	r := sim.NewRNG(4).Stream("fix")
	reqs, err := GenerateConcurrent(r, sim.Epoch, ConcurrentConfig{
		Users: 5, Waves: 2, WaveInterval: time.Minute,
		Pool: pool, Sizer: FixedSizer{Size: 8}, FixedTask: "minimax",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range reqs {
		if req.TaskName != "minimax" || req.Size != 8 {
			t.Fatalf("req = %+v, want minimax size 8", req)
		}
	}
}

func TestGenerateConcurrentValidation(t *testing.T) {
	pool := tasks.DefaultPool()
	r := sim.NewRNG(1).Stream("v")
	base := ConcurrentConfig{Users: 1, Waves: 1, WaveInterval: time.Minute, Pool: pool, Sizer: DefaultSizer()}
	cases := []func(*ConcurrentConfig){
		func(c *ConcurrentConfig) { c.Users = 0 },
		func(c *ConcurrentConfig) { c.Waves = 0 },
		func(c *ConcurrentConfig) { c.WaveInterval = 0 },
		func(c *ConcurrentConfig) { c.Pool = nil },
		func(c *ConcurrentConfig) { c.Sizer = nil },
		func(c *ConcurrentConfig) { c.FixedTask = "ghost" },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := GenerateConcurrent(r, sim.Epoch, cfg); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestGenerateInterArrival(t *testing.T) {
	pool := tasks.DefaultPool()
	r := sim.NewRNG(5).Stream("ia")
	dur := time.Minute
	reqs, err := GenerateInterArrival(r, sim.Epoch, InterArrivalConfig{
		Users:        4,
		InterArrival: stats.Uniform{Lo: 100, Hi: 5000},
		Duration:     dur,
		Pool:         pool,
		Sizer:        DefaultSizer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	// Sorted, within [start, start+duration), all four users present.
	users := map[int]bool{}
	for i, req := range reqs {
		if i > 0 && req.At.Before(reqs[i-1].At) {
			t.Fatal("requests not sorted")
		}
		if req.At.Before(sim.Epoch) || req.At.Sub(sim.Epoch) >= dur {
			t.Fatalf("request at %v outside window", req.At)
		}
		users[req.UserID] = true
	}
	if len(users) != 4 {
		t.Fatalf("saw %d users, want 4", len(users))
	}
	// Expected volume: ~60s / 2.55s mean gap ≈ 23 per user.
	perUser := float64(len(reqs)) / 4
	if perUser < 10 || perUser > 50 {
		t.Fatalf("requests per user = %v, want ≈23", perUser)
	}
}

func TestGenerateInterArrivalValidation(t *testing.T) {
	pool := tasks.DefaultPool()
	r := sim.NewRNG(1).Stream("v2")
	base := InterArrivalConfig{
		Users: 1, InterArrival: stats.Degenerate{Value: 500},
		Duration: time.Second, Pool: pool, Sizer: DefaultSizer(),
	}
	cases := []func(*InterArrivalConfig){
		func(c *InterArrivalConfig) { c.Users = 0 },
		func(c *InterArrivalConfig) { c.InterArrival = nil },
		func(c *InterArrivalConfig) { c.Duration = 0 },
		func(c *InterArrivalConfig) { c.Pool = nil },
		func(c *InterArrivalConfig) { c.Sizer = nil },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := GenerateInterArrival(r, sim.Epoch, cfg); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestGenerateInterArrivalClampsTinyGaps(t *testing.T) {
	pool := tasks.DefaultPool()
	r := sim.NewRNG(6).Stream("tiny")
	reqs, err := GenerateInterArrival(r, sim.Epoch, InterArrivalConfig{
		Users:        1,
		InterArrival: stats.Degenerate{Value: 0}, // clamped to 1 ms
		Duration:     50 * time.Millisecond,
		Pool:         pool,
		Sizer:        DefaultSizer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 49 {
		t.Fatalf("got %d requests, want 49 (1 ms steps up to <50 ms)", len(reqs))
	}
}

func TestGenerateArrivalSweep(t *testing.T) {
	pool := tasks.DefaultPool()
	r := sim.NewRNG(7).Stream("sweep")
	reqs, err := GenerateArrivalSweep(r, sim.Epoch, ArrivalRateConfig{
		StartHz: 1, Steps: 3, Step: 10 * time.Second,
		Pool: pool, Sizer: DefaultSizer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Step windows: 10 @1Hz, 20 @2Hz, 40 @4Hz = 70 requests.
	if len(reqs) != 70 {
		t.Fatalf("got %d requests, want 70", len(reqs))
	}
	// Rates double per window.
	counts := [3]int{}
	for _, req := range reqs {
		w := int(req.At.Sub(sim.Epoch) / (10 * time.Second))
		counts[w]++
	}
	if counts[0] != 10 || counts[1] != 20 || counts[2] != 40 {
		t.Fatalf("per-window counts = %v, want [10 20 40]", counts)
	}
	// Unique user ids.
	seen := map[int]bool{}
	for _, req := range reqs {
		if seen[req.UserID] {
			t.Fatal("duplicate user id in sweep")
		}
		seen[req.UserID] = true
	}
}

// TestGenerateArrivalSweepExactRates pins the realized per-window
// counts at rates whose tick is not a whole nanosecond count. The old
// generator advanced by a truncated interval, so truncation accumulated
// over a window: 1024 Hz (tick 976562.5 ns) emitted 1025 requests per
// second instead of 1024. Phase arithmetic makes every window exact.
func TestGenerateArrivalSweepExactRates(t *testing.T) {
	pool := tasks.DefaultPool()
	r := sim.NewRNG(7).Stream("sweep-hi")
	reqs, err := GenerateArrivalSweep(r, sim.Epoch, ArrivalRateConfig{
		StartHz: 128, Steps: 4, Step: time.Second,
		Pool: pool, Sizer: DefaultSizer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := [4]int{}
	last := time.Duration(-1)
	for _, req := range reqs {
		off := req.At.Sub(sim.Epoch)
		if off <= last {
			t.Fatalf("arrivals not strictly increasing at %v", off)
		}
		last = off
		counts[int(off/time.Second)]++
	}
	// Exactly rate×window requests per window — no truncation drift.
	if counts != [4]int{128, 256, 512, 1024} {
		t.Fatalf("per-window counts = %v, want [128 256 512 1024]", counts)
	}
}

func TestGenerateArrivalSweepValidation(t *testing.T) {
	pool := tasks.DefaultPool()
	r := sim.NewRNG(1).Stream("v3")
	base := ArrivalRateConfig{StartHz: 1, Steps: 1, Step: time.Second, Pool: pool, Sizer: DefaultSizer()}
	cases := []func(*ArrivalRateConfig){
		func(c *ArrivalRateConfig) { c.StartHz = 0 },
		func(c *ArrivalRateConfig) { c.Steps = 0 },
		func(c *ArrivalRateConfig) { c.Step = 0 },
		func(c *ArrivalRateConfig) { c.Pool = nil },
		func(c *ArrivalRateConfig) { c.Sizer = nil },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := GenerateArrivalSweep(r, sim.Epoch, cfg); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestSynthesizeUsage(t *testing.T) {
	r := sim.NewRNG(8).Stream("usage")
	cfg := UsageStudyConfig{Participants: 3, Days: 7, SessionsPerDay: 30, EventsPerSession: 6}
	events, err := SynthesizeUsage(r, sim.Epoch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 1000 {
		t.Fatalf("only %d events; expected thousands", len(events))
	}
	// Sorted and night-free (no events between 00:00 and 05:59).
	for i, e := range events {
		if i > 0 && e.At.Before(events[i-1].At) {
			t.Fatal("events not sorted")
		}
	}
	nightStarts := 0
	for _, e := range events {
		if e.At.Hour() < 6 {
			nightStarts++
		}
	}
	// Sessions never *start* at night; only spillover from 23h sessions
	// can cross midnight, which is a tiny fraction.
	if frac := float64(nightStarts) / float64(len(events)); frac > 0.02 {
		t.Fatalf("night fraction %v too high", frac)
	}
}

func TestSynthesizeUsageValidation(t *testing.T) {
	r := sim.NewRNG(1).Stream("uv")
	bad := []UsageStudyConfig{
		{},
		{Participants: 1, Days: 0, SessionsPerDay: 1, EventsPerSession: 1},
		{Participants: 1, Days: 1, SessionsPerDay: 0, EventsPerSession: 1},
		{Participants: 1, Days: 1, SessionsPerDay: 1, EventsPerSession: 0},
	}
	for i, cfg := range bad {
		if _, err := SynthesizeUsage(r, sim.Epoch, cfg); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

// The paper's headline from the study: combined in-session inter-arrivals
// land in 100–5000 ms.
func TestExtractInterArrivalsRange(t *testing.T) {
	r := sim.NewRNG(9).Stream("extract")
	events, err := SynthesizeUsage(r, sim.Epoch, DefaultUsageStudy())
	if err != nil {
		t.Fatal(err)
	}
	gaps := ExtractInterArrivals(events, 5*time.Second)
	if len(gaps) < 10_000 {
		t.Fatalf("only %d gaps; expected many", len(gaps))
	}
	for _, g := range gaps {
		if g <= 0 || g > 5*time.Second {
			t.Fatalf("gap %v outside (0, 5s]", g)
		}
	}
	// Most in-session gaps respect the 100 ms lower edge.
	below := 0
	for _, g := range gaps {
		if g < 100*time.Millisecond {
			below++
		}
	}
	if frac := float64(below) / float64(len(gaps)); frac > 0.05 {
		t.Fatalf("%v of gaps below 100 ms", frac)
	}
}

func TestEmpiricalMs(t *testing.T) {
	if _, err := NewEmpiricalMs(nil); err == nil {
		t.Fatal("empty samples should fail")
	}
	dist, err := NewEmpiricalMs([]time.Duration{100 * time.Millisecond, 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist.Mean()-200) > 1e-9 {
		t.Fatalf("Mean = %v, want 200", dist.Mean())
	}
	r := sim.NewRNG(10).Stream("emp")
	for i := 0; i < 100; i++ {
		v := dist.Sample(r)
		if v != 100 && v != 300 {
			t.Fatalf("sample %v not in {100, 300}", v)
		}
	}
}
