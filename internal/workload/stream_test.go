package workload

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"time"

	"accelcloud/internal/sim"
	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
)

func interArrivalCfg(users int) InterArrivalConfig {
	return InterArrivalConfig{
		Users:        users,
		InterArrival: stats.Exponential{Rate: 1.0 / 400}, // mean 400ms
		Duration:     20 * time.Second,
		Pool:         tasks.DefaultPool(),
		Sizer:        DefaultSizer(),
	}
}

// The streaming generator must be bit-identical to the materialized
// per-user-substream generator: same requests, same order, same digest.
func TestInterArrivalStreamMatchesUserStreams(t *testing.T) {
	root := sim.NewRNG(1234)
	start := time.Unix(0, 0).UTC()
	cfg := interArrivalCfg(16)

	want, err := GenerateUserStreams(root, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := InterArrivalStream(root, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(s)
	if len(got) != len(want) {
		t.Fatalf("stream emitted %d requests, materialized %d", len(got), len(want))
	}
	if !reflect.DeepEqual(got, want) {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("first divergence at %d: stream %+v, materialized %+v", i, got[i], want[i])
			}
		}
	}

	s2, err := InterArrivalStream(root, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamDigest, n := StreamDigest(s2, start)
	if matDigest := DigestRequests(want, start); streamDigest != matDigest {
		t.Fatalf("stream digest %s != materialized digest %s", streamDigest, matDigest)
	}
	if n != len(want) {
		t.Fatalf("StreamDigest counted %d requests, want %d", n, len(want))
	}
}

// GenerateInterArrival draws every user from one shared rand in
// user-major order, which no merge-order lazy consumer can replicate
// for multiple users; for a single user the shared rand IS the user's
// stream, so feeding the same substream must reproduce its output and
// digest exactly.
func TestInterArrivalStreamMatchesGenerateInterArrival(t *testing.T) {
	root := sim.NewRNG(777)
	start := time.Unix(0, 0).UTC()
	cfg := interArrivalCfg(1)

	r := root.SubN("user", 0).Stream("arrivals")
	want, err := GenerateInterArrival(r, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("empty materialized schedule")
	}
	s, err := InterArrivalStream(root, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(s)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream diverged from GenerateInterArrival: %d vs %d requests", len(got), len(want))
	}
	s2, _ := InterArrivalStream(root, start, cfg)
	d, _ := StreamDigest(s2, start)
	if want := DigestRequests(want, start); d != want {
		t.Fatalf("digest %s != %s", d, want)
	}
}

func TestInterArrivalStreamFixedTask(t *testing.T) {
	root := sim.NewRNG(5)
	start := time.Unix(0, 0).UTC()
	cfg := interArrivalCfg(4)
	cfg.FixedTask = "minimax"

	want, err := GenerateUserStreams(root, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := InterArrivalStream(root, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(s)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fixed-task stream diverged from materialized generator")
	}
	for i := range got {
		if got[i].TaskName != "minimax" {
			t.Fatalf("request %d task %q, want minimax", i, got[i].TaskName)
		}
	}

	cfg.FixedTask = "no-such-task"
	if _, err := InterArrivalStream(root, start, cfg); err == nil {
		t.Fatal("unknown fixed task accepted")
	}
}

// sliceStream replays a fixed schedule — test scaffolding for the merge.
type sliceStream struct {
	reqs []Request
	i    int
}

func (s *sliceStream) Next(req *Request) bool {
	if s.i >= len(s.reqs) {
		return false
	}
	*req = s.reqs[s.i]
	s.i++
	return true
}

// Regrouping the same leaves into intermediate merges at any fan-in
// must not change the emitted sequence.
func TestMergeShardInvariance(t *testing.T) {
	root := sim.NewRNG(42)
	start := time.Unix(0, 0).UTC()
	cfg := interArrivalCfg(12)

	flat, err := GenerateUserStreams(root, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perUser := make([][]Request, cfg.Users)
	for _, req := range flat {
		perUser[req.UserID] = append(perUser[req.UserID], req)
	}
	wantDigest := DigestRequests(flat, start)

	for _, shards := range []int{1, 2, 3, 5, 12} {
		groups := make([]Stream, 0, shards)
		for sh := 0; sh < shards; sh++ {
			lo := sh * cfg.Users / shards
			hi := (sh + 1) * cfg.Users / shards
			members := make([]Stream, 0, hi-lo)
			for u := lo; u < hi; u++ {
				members = append(members, &sliceStream{reqs: perUser[u]})
			}
			groups = append(groups, NewMerge(members...))
		}
		d, n := StreamDigest(NewMerge(groups...), start)
		if d != wantDigest {
			t.Fatalf("%d shards: digest %s, want %s", shards, d, wantDigest)
		}
		if n != len(flat) {
			t.Fatalf("%d shards: %d requests, want %d", shards, n, len(flat))
		}
	}
}

func TestMergeOrderingAndEdgeCases(t *testing.T) {
	if got := Collect(NewMerge()); got != nil {
		t.Fatalf("empty merge emitted %d requests", len(got))
	}
	if got := Collect(NewMerge(&sliceStream{})); got != nil {
		t.Fatalf("merge of one empty stream emitted %d requests", len(got))
	}

	base := time.Unix(0, 0).UTC()
	a := &sliceStream{reqs: []Request{
		{At: base.Add(1 * time.Millisecond), UserID: 0},
		{At: base.Add(5 * time.Millisecond), UserID: 0},
	}}
	b := &sliceStream{reqs: []Request{
		{At: base.Add(1 * time.Millisecond), UserID: 1},
		{At: base.Add(2 * time.Millisecond), UserID: 1},
	}}
	c := &sliceStream{} // exhausted from the start
	got := Collect(NewMerge(a, c, b))
	if len(got) != 4 {
		t.Fatalf("merged %d requests, want 4", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool {
		if !got[i].At.Equal(got[j].At) {
			return got[i].At.Before(got[j].At)
		}
		return got[i].UserID < got[j].UserID
	}) {
		t.Fatalf("merge output not in (At, UserID) order: %+v", got)
	}
	// Tie at 1ms must break on UserID.
	if got[0].UserID != 0 || got[1].UserID != 1 {
		t.Fatalf("tie-break wrong: users %d, %d", got[0].UserID, got[1].UserID)
	}
}

func scenarioCfg(users int) ScenarioConfig {
	return ScenarioConfig{
		Users:         users,
		Duration:      2 * time.Minute,
		BaseRateHz:    0.05,
		Diurnal:       DefaultDiurnal(),
		DiurnalPeriod: time.Minute, // compressed day
		Pool:          tasks.DefaultPool(),
		Sizer:         DefaultSizer(),
		BlockSize:     128,
	}
}

func TestScenarioDeterministicAndShardInvariant(t *testing.T) {
	cfg := scenarioCfg(1500)
	start := ScenarioStart()

	s, err := NewScenarioStream(sim.NewRNG(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest, wantN := StreamDigest(s, start)
	if wantN == 0 {
		t.Fatal("scenario emitted no requests")
	}

	for _, shards := range []int{1, 2, 4, 7, 64} {
		shardStreams, err := ScenarioShards(sim.NewRNG(9), cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		d, n := StreamDigest(NewMerge(shardStreams...), start)
		if d != wantDigest || n != wantN {
			t.Fatalf("%d shards: (%s, %d), want (%s, %d)", shards, d, n, wantDigest, wantN)
		}
	}

	other, err := NewScenarioStream(sim.NewRNG(10), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := StreamDigest(other, start); d == wantDigest {
		t.Fatal("different seeds produced identical scenario digests")
	}
}

func TestScenarioOrderedAndInPopulation(t *testing.T) {
	cfg := scenarioCfg(700)
	s, err := NewScenarioStream(sim.NewRNG(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev Request
	first := true
	var req Request
	n := 0
	for s.Next(&req) {
		n++
		if req.UserID < 0 || req.UserID >= cfg.Users {
			t.Fatalf("user %d outside [0,%d)", req.UserID, cfg.Users)
		}
		off := req.At.Sub(ScenarioStart())
		if off < 0 || off >= cfg.Duration {
			t.Fatalf("arrival offset %v outside [0,%v)", off, cfg.Duration)
		}
		if req.TaskName == "" || req.Work <= 0 {
			t.Fatalf("unfilled draw: %+v", req)
		}
		if !first {
			if req.At.Before(prev.At) || (req.At.Equal(prev.At) && req.UserID < prev.UserID) {
				t.Fatalf("out of order: %v/%d after %v/%d", req.At, req.UserID, prev.At, prev.UserID)
			}
		}
		prev, first = req, false
	}
	if n == 0 {
		t.Fatal("no requests")
	}
}

// A flash crowd must lift its cohort's share of traffic during the
// window and leave it untouched outside.
func TestScenarioFlashCrowd(t *testing.T) {
	cfg := scenarioCfg(1000)
	cfg.Diurnal = nil // flat baseline isolates the crowd effect
	crowd := FlashCrowd{
		Start:      30 * time.Second,
		Duration:   30 * time.Second,
		UserLo:     0,
		UserHi:     100,
		Multiplier: 8,
	}
	cfg.Crowds = []FlashCrowd{crowd}

	s, err := NewScenarioStream(sim.NewRNG(21), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var inWindow, inWindowCohort, outside, outsideCohort int
	var req Request
	for s.Next(&req) {
		off := req.At.Sub(ScenarioStart())
		cohort := req.UserID >= crowd.UserLo && req.UserID < crowd.UserHi
		if off >= crowd.Start && off < crowd.Start+crowd.Duration {
			inWindow++
			if cohort {
				inWindowCohort++
			}
		} else {
			outside++
			if cohort {
				outsideCohort++
			}
		}
	}
	if inWindow == 0 || outside == 0 {
		t.Fatalf("degenerate split: %d in window, %d outside", inWindow, outside)
	}
	// Cohort is 10% of users; at 8x it should carry
	// 100*8/(900+800) ≈ 47% of in-window traffic vs ~10% outside.
	inShare := float64(inWindowCohort) / float64(inWindow)
	outShare := float64(outsideCohort) / float64(outside)
	if inShare < 0.35 {
		t.Fatalf("cohort share during crowd %.2f, want ≥ 0.35", inShare)
	}
	if outShare > 0.15 {
		t.Fatalf("cohort share outside crowd %.2f, want ≤ 0.15", outShare)
	}
}

// Zero-weight diurnal hours must emit nothing; peak hours must emit
// more than off-peak.
func TestScenarioDiurnalShape(t *testing.T) {
	cfg := scenarioCfg(800)
	curve := make([]float64, 24)
	for h := 0; h < 12; h++ {
		curve[h] = 0 // silent first half-day
	}
	for h := 12; h < 24; h++ {
		curve[h] = 1
	}
	cfg.Diurnal = curve
	cfg.DiurnalPeriod = time.Minute
	cfg.Duration = 3 * time.Minute

	s, err := NewScenarioStream(sim.NewRNG(17), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var silent, active int
	var req Request
	for s.Next(&req) {
		phase := req.At.Sub(ScenarioStart()) % cfg.DiurnalPeriod
		if phase < cfg.DiurnalPeriod/2 {
			silent++
		} else {
			active++
		}
	}
	if silent != 0 {
		t.Fatalf("%d requests during zero-weight hours", silent)
	}
	if active == 0 {
		t.Fatal("no requests during active hours")
	}
}

func TestScenarioSessionStarts(t *testing.T) {
	cfg := scenarioCfg(500)
	countStarts := func(gap time.Duration) (starts, total int) {
		c := cfg
		c.SessionGap = gap
		s, err := NewScenarioStream(sim.NewRNG(8), c)
		if err != nil {
			t.Fatal(err)
		}
		var req Request
		for s.Next(&req) {
			total++
			if req.SessionStart {
				starts++
			}
		}
		return
	}
	// Tiny gap → almost every request starts a session; huge gap →
	// almost none. λ≈0.05/s, so e^(-λG) ≈ 1 at G=1ms and ≈0 at G=1h.
	shortStarts, shortTotal := countStarts(time.Millisecond)
	longStarts, longTotal := countStarts(time.Hour)
	if shortTotal == 0 || longTotal == 0 {
		t.Fatal("no requests generated")
	}
	if frac := float64(shortStarts) / float64(shortTotal); frac < 0.9 {
		t.Fatalf("short-gap session-start fraction %.2f, want ≥ 0.9", frac)
	}
	if frac := float64(longStarts) / float64(longTotal); frac > 0.1 {
		t.Fatalf("long-gap session-start fraction %.2f, want ≤ 0.1", frac)
	}
}

func TestScenarioTaskMix(t *testing.T) {
	cfg := scenarioCfg(400)
	cfg.TaskMix = map[string]float64{"minimax": 3, "fft": 1}
	s, err := NewScenarioStream(sim.NewRNG(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	var req Request
	total := 0
	for s.Next(&req) {
		counts[req.TaskName]++
		total++
	}
	if len(counts) != 2 || counts["minimax"] == 0 || counts["fft"] == 0 {
		t.Fatalf("task mix drew %v, want only minimax+fft", counts)
	}
	ratio := float64(counts["minimax"]) / float64(total)
	if math.Abs(ratio-0.75) > 0.08 {
		t.Fatalf("minimax share %.2f, want ≈ 0.75", ratio)
	}

	cfg.TaskMix = map[string]float64{"no-such": 1}
	if _, err := NewScenarioStream(sim.NewRNG(4), cfg); err == nil {
		t.Fatal("unknown task-mix name accepted")
	}
}

func TestScenarioValidation(t *testing.T) {
	base := scenarioCfg(100)
	cases := []struct {
		name   string
		mutate func(*ScenarioConfig)
	}{
		{"zero users", func(c *ScenarioConfig) { c.Users = 0 }},
		{"zero duration", func(c *ScenarioConfig) { c.Duration = 0 }},
		{"zero rate", func(c *ScenarioConfig) { c.BaseRateHz = 0 }},
		{"nil pool", func(c *ScenarioConfig) { c.Pool = nil }},
		{"nil sizer", func(c *ScenarioConfig) { c.Sizer = nil }},
		{"negative diurnal", func(c *ScenarioConfig) { c.Diurnal = []float64{1, -1} }},
		{"all-zero diurnal", func(c *ScenarioConfig) { c.Diurnal = []float64{0, 0} }},
		{"crowd multiplier < 1", func(c *ScenarioConfig) {
			c.Crowds = []FlashCrowd{{Duration: time.Second, UserHi: 10, Multiplier: 0.5}}
		}},
		{"crowd cohort out of range", func(c *ScenarioConfig) {
			c.Crowds = []FlashCrowd{{Duration: time.Second, UserLo: 50, UserHi: 500, Multiplier: 2}}
		}},
		{"crowd empty window", func(c *ScenarioConfig) {
			c.Crowds = []FlashCrowd{{UserHi: 10, Multiplier: 2}}
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := NewScenarioStream(sim.NewRNG(1), cfg); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
	if _, err := ScenarioShards(sim.NewRNG(1), base, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := ScenarioShards(nil, base, 1); err == nil {
		t.Error("nil root accepted")
	}
}

func TestScenarioBlocksAndExpectedRequests(t *testing.T) {
	cfg := ScenarioConfig{Users: 1000, BlockSize: 128}
	if got := ScenarioBlocks(cfg); got != 8 {
		t.Fatalf("ScenarioBlocks = %d, want 8", got)
	}
	cfg.BlockSize = 0
	if got := ScenarioBlocks(cfg); got != 1 {
		t.Fatalf("ScenarioBlocks default = %d, want 1", got)
	}

	gen := scenarioCfg(2000)
	want := ExpectedRequests(gen)
	s, err := NewScenarioStream(sim.NewRNG(6), gen)
	if err != nil {
		t.Fatal(err)
	}
	_, n := StreamDigest(s, ScenarioStart())
	if lo, hi := want*0.8, want*1.2; float64(n) < lo || float64(n) > hi {
		t.Fatalf("realized %d requests, expected ≈ %.0f (±20%%)", n, want)
	}
}
