package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"accelcloud/internal/stats"
)

// The paper's usage study (§VI-C1): an app on 6 participants' phones
// recorded application sessions for 3 months; combining participants
// yields in-session request inter-arrivals of 100–5000 ms, with long
// overnight gaps removed. This file synthesizes an equivalent dataset.

// UsageStudyConfig parameterizes the synthesizer.
type UsageStudyConfig struct {
	// Participants is the panel size (the paper used 6).
	Participants int
	// Days is the study length (the paper ran ≈90).
	Days int
	// SessionsPerDay is the mean number of app sessions per participant
	// per day.
	SessionsPerDay float64
	// EventsPerSession is the mean number of offload-worthy interactions
	// per session.
	EventsPerSession float64
}

// DefaultUsageStudy mirrors the paper's setup.
func DefaultUsageStudy() UsageStudyConfig {
	return UsageStudyConfig{
		Participants:     6,
		Days:             90,
		SessionsPerDay:   40,
		EventsPerSession: 8,
	}
}

// SessionEvent is one recorded interaction.
type SessionEvent struct {
	Participant int
	At          time.Time
}

// hourWeights is the relative likelihood of a session starting at each
// hour: zero overnight (the paper removed inactive night periods), rising
// through the day, peaking in the evening.
var hourWeights = [24]float64{
	0, 0, 0, 0, 0, 0, // 00–05: asleep
	0.3, 0.8, 1.2, 1.2, 1.0, 1.1, // 06–11
	1.3, 1.1, 1.0, 1.0, 1.1, 1.3, // 12–17
	1.6, 1.8, 1.9, 1.6, 1.0, 0.4, // 18–23
}

// SynthesizeUsage generates the full study dataset, sorted by time.
func SynthesizeUsage(r *rand.Rand, start time.Time, cfg UsageStudyConfig) ([]SessionEvent, error) {
	if cfg.Participants <= 0 || cfg.Days <= 0 {
		return nil, fmt.Errorf("workload: usage study needs participants/days > 0, got %d/%d",
			cfg.Participants, cfg.Days)
	}
	if cfg.SessionsPerDay <= 0 || cfg.EventsPerSession <= 0 {
		return nil, fmt.Errorf("workload: usage study needs positive rates, got %v/%v",
			cfg.SessionsPerDay, cfg.EventsPerSession)
	}
	totalWeight := 0.0
	for _, w := range hourWeights {
		totalWeight += w
	}
	// In-session inter-arrival: log-uniform over [100 ms, 5000 ms],
	// the range the paper extracts from the combined participants.
	gap := stats.Uniform{Lo: 0, Hi: 1}
	var out []SessionEvent
	for p := 0; p < cfg.Participants; p++ {
		for d := 0; d < cfg.Days; d++ {
			day := start.AddDate(0, 0, d)
			for h := 0; h < 24; h++ {
				if hourWeights[h] == 0 {
					continue
				}
				// Expected sessions this hour for this participant.
				mean := cfg.SessionsPerDay * hourWeights[h] / totalWeight
				n := poisson(r, mean)
				for s := 0; s < n; s++ {
					at := day.Add(time.Duration(h) * time.Hour).
						Add(time.Duration(r.Float64() * float64(time.Hour)))
					events := 1 + poisson(r, cfg.EventsPerSession-1)
					for e := 0; e < events; e++ {
						out = append(out, SessionEvent{Participant: p, At: at})
						// Log-uniform 100–5000 ms keeps the density
						// spread across the reported range.
						u := gap.Sample(r)
						ms := 100 * math.Pow(50, u) // 100 × 50^u ∈ [100, 5000]
						at = at.Add(time.Duration(ms * float64(time.Millisecond)))
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].At.Equal(out[j].At) {
			return out[i].At.Before(out[j].At)
		}
		return out[i].Participant < out[j].Participant
	})
	return out, nil
}

// ExtractInterArrivals reproduces the paper's analysis: per participant,
// compute successive gaps and keep those below maxGap (dropping the
// inactive periods). The combined samples are the empirical inter-arrival
// distribution used to drive the Fig 9/10 experiments.
func ExtractInterArrivals(events []SessionEvent, maxGap time.Duration) []time.Duration {
	byParticipant := make(map[int][]time.Time)
	for _, e := range events {
		byParticipant[e.Participant] = append(byParticipant[e.Participant], e.At)
	}
	var participants []int
	for p := range byParticipant {
		participants = append(participants, p)
	}
	sort.Ints(participants)
	var out []time.Duration
	for _, p := range participants {
		ts := byParticipant[p]
		sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
		for i := 1; i < len(ts); i++ {
			gap := ts[i].Sub(ts[i-1])
			if gap > 0 && gap <= maxGap {
				out = append(out, gap)
			}
		}
	}
	return out
}

// EmpiricalMs is a stats.Dist that resamples collected durations
// (in milliseconds) uniformly — the simulator's way of replaying the
// study's inter-arrival distribution.
type EmpiricalMs struct {
	SamplesMs []float64
}

var _ stats.Dist = EmpiricalMs{}

// NewEmpiricalMs converts durations into an empirical distribution.
func NewEmpiricalMs(ds []time.Duration) (EmpiricalMs, error) {
	if len(ds) == 0 {
		return EmpiricalMs{}, fmt.Errorf("workload: empirical distribution needs samples")
	}
	ms := make([]float64, len(ds))
	for i, d := range ds {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	return EmpiricalMs{SamplesMs: ms}, nil
}

// Sample implements stats.Dist.
func (e EmpiricalMs) Sample(r *rand.Rand) float64 {
	return e.SamplesMs[r.Intn(len(e.SamplesMs))]
}

// Mean implements stats.Dist.
func (e EmpiricalMs) Mean() float64 {
	m, err := stats.Mean(e.SamplesMs)
	if err != nil {
		return 0
	}
	return m
}

// poisson draws a Poisson variate via Knuth's method (fine for small
// means).
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // guard against pathological means
		}
	}
}
