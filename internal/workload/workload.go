// Package workload generates the offloading request streams of the
// paper's simulator (§V): a concurrent mode used to benchmark cloud
// instances, an inter-arrival mode producing realistic time-varying load,
// and a usage-study synthesizer standing in for the 3-month smartphone
// trace collection (§VI-C1) — it reproduces the reported 100–5000 ms
// in-session inter-arrival range with diurnal structure and inactive
// nights.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"accelcloud/internal/stats"
	"accelcloud/internal/tasks"
)

// Request is one offloading event to inject into the system.
type Request struct {
	// At is the (virtual) arrival time.
	At time.Time
	// UserID identifies the requesting device.
	UserID int
	// TaskName is the pool task to execute.
	TaskName string
	// Size is the task size parameter.
	Size int
	// Work is the task's work-unit cost at that size.
	Work float64
	// SessionStart marks the first request of a user session. Session
	// boundaries let replay amortize per-session costs (e.g. the
	// inference model load); generators without a session notion leave
	// it false.
	SessionStart bool
}

// Sizer draws a task size for a given pool task so that the heterogeneous
// pool produces comparable service demands (the simulator picks "the
// processing required for each task ... randomly", §VI-A1).
type Sizer interface {
	// Draw picks a size for the named task.
	Draw(r *rand.Rand, taskName string) int
}

// RangeSizer draws uniformly from a per-task inclusive range, falling
// back to Default for unknown tasks.
type RangeSizer struct {
	Ranges  map[string][2]int
	Default [2]int
}

var _ Sizer = RangeSizer{}

// Draw implements Sizer.
func (s RangeSizer) Draw(r *rand.Rand, taskName string) int {
	lo, hi := s.Default[0], s.Default[1]
	if rg, ok := s.Ranges[taskName]; ok {
		lo, hi = rg[0], rg[1]
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	if hi == lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// DefaultSizer balances the ten pool tasks so each request costs roughly
// 500–6000 work units (≈2.5–30 ms on a reference core), matching the
// response-time floors of Fig 4.
func DefaultSizer() RangeSizer {
	return RangeSizer{
		Ranges: map[string][2]int{
			"quicksort":  {40, 120},
			"bubblesort": {40, 100},
			"mergesort":  {60, 160},
			"minimax":    {4, 7},
			"nqueens":    {6, 8},
			"fibonacci":  {1000, 100000},
			"matmul":     {8, 16},
			"knapsack":   {8, 20},
			"sieve":      {1, 3},
			"fft":        {64, 512},
		},
		Default: [2]int{8, 32},
	}
}

// FixedSizer always draws the same size; used for static-load experiments
// such as Fig 5 and Fig 9 (one minimax task with static input).
type FixedSizer struct {
	Size int
}

var _ Sizer = FixedSizer{}

// Draw implements Sizer.
func (s FixedSizer) Draw(*rand.Rand, string) int { return s.Size }

// draw materializes one (task, size, work) triple.
func draw(r *rand.Rand, pool *tasks.Pool, sizer Sizer, fixedTask string) (Request, error) {
	var t tasks.Task
	if fixedTask != "" {
		var err error
		t, err = pool.ByName(fixedTask)
		if err != nil {
			return Request{}, err
		}
	} else {
		t = pool.Random(r)
	}
	size := sizer.Draw(r, t.Name())
	return Request{TaskName: t.Name(), Size: size, Work: t.Work(size)}, nil
}

// ConcurrentConfig parameterizes the benchmark mode: Users simultaneous
// requests per wave, one wave every WaveInterval (the paper's 1-minute
// cool-down), for Waves waves.
type ConcurrentConfig struct {
	Users        int
	Waves        int
	WaveInterval time.Duration
	Pool         *tasks.Pool
	Sizer        Sizer
	// FixedTask pins every request to one task (empty = random pool
	// draw).
	FixedTask string
}

// GenerateConcurrent builds the wave workload sorted by arrival time.
func GenerateConcurrent(r *rand.Rand, start time.Time, cfg ConcurrentConfig) ([]Request, error) {
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("workload: users %d <= 0", cfg.Users)
	}
	if cfg.Waves <= 0 {
		return nil, fmt.Errorf("workload: waves %d <= 0", cfg.Waves)
	}
	if cfg.WaveInterval <= 0 {
		return nil, fmt.Errorf("workload: wave interval %v <= 0", cfg.WaveInterval)
	}
	if cfg.Pool == nil {
		return nil, errors.New("workload: nil pool")
	}
	if cfg.Sizer == nil {
		return nil, errors.New("workload: nil sizer")
	}
	out := make([]Request, 0, cfg.Users*cfg.Waves)
	for w := 0; w < cfg.Waves; w++ {
		at := start.Add(time.Duration(w) * cfg.WaveInterval)
		for u := 0; u < cfg.Users; u++ {
			req, err := draw(r, cfg.Pool, cfg.Sizer, cfg.FixedTask)
			if err != nil {
				return nil, err
			}
			req.At = at
			req.UserID = u
			out = append(out, req)
		}
	}
	return out, nil
}

// InterArrivalConfig parameterizes the realistic mode: Users devices,
// each issuing requests separated by draws from InterArrival (in
// milliseconds), for Duration.
type InterArrivalConfig struct {
	Users        int
	InterArrival stats.Dist // milliseconds between a user's requests
	Duration     time.Duration
	Pool         *tasks.Pool
	Sizer        Sizer
	FixedTask    string
}

// GenerateInterArrival builds the request stream sorted by arrival time.
func GenerateInterArrival(r *rand.Rand, start time.Time, cfg InterArrivalConfig) ([]Request, error) {
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("workload: users %d <= 0", cfg.Users)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: duration %v <= 0", cfg.Duration)
	}
	if cfg.InterArrival == nil {
		return nil, errors.New("workload: nil inter-arrival distribution")
	}
	if cfg.Pool == nil {
		return nil, errors.New("workload: nil pool")
	}
	if cfg.Sizer == nil {
		return nil, errors.New("workload: nil sizer")
	}
	var out []Request
	for u := 0; u < cfg.Users; u++ {
		at := start
		for {
			gapMs := cfg.InterArrival.Sample(r)
			if gapMs < 1 {
				gapMs = 1
			}
			at = at.Add(time.Duration(gapMs * float64(time.Millisecond)))
			if at.Sub(start) >= cfg.Duration {
				break
			}
			req, err := draw(r, cfg.Pool, cfg.Sizer, cfg.FixedTask)
			if err != nil {
				return nil, err
			}
			req.At = at
			req.UserID = u
			out = append(out, req)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].At.Equal(out[j].At) {
			return out[i].At.Before(out[j].At)
		}
		return out[i].UserID < out[j].UserID
	})
	return out, nil
}

// ArrivalRateConfig parameterizes the Fig 8 stress mode: a deterministic
// arrival process whose rate doubles every Step, from StartHz for Steps
// steps (1, 2, 4, …, 1024 Hz in the paper).
type ArrivalRateConfig struct {
	StartHz   float64
	Steps     int
	Step      time.Duration
	Pool      *tasks.Pool
	Sizer     Sizer
	FixedTask string
}

// GenerateArrivalSweep builds the doubling-rate stream. Every request has
// a unique synthetic user id.
func GenerateArrivalSweep(r *rand.Rand, start time.Time, cfg ArrivalRateConfig) ([]Request, error) {
	if cfg.StartHz <= 0 {
		return nil, fmt.Errorf("workload: start rate %v <= 0", cfg.StartHz)
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("workload: steps %d <= 0", cfg.Steps)
	}
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("workload: step %v <= 0", cfg.Step)
	}
	if cfg.Pool == nil {
		return nil, errors.New("workload: nil pool")
	}
	if cfg.Sizer == nil {
		return nil, errors.New("workload: nil sizer")
	}
	var out []Request
	uid := 0
	for s := 0; s < cfg.Steps; s++ {
		rate := cfg.StartHz * float64(int(1)<<uint(s))
		// Phase arithmetic: the k-th arrival sits at k/rate from the
		// window start. Computing each offset from k instead of adding a
		// truncated per-tick interval keeps the realized rate exact —
		// repeated addition of time.Duration(1s/rate) accumulates the
		// truncation, drifting the high-rate windows measurably fast
		// (1024 Hz gained a whole extra request per 10 s window).
		perTick := float64(time.Second) / rate
		if perTick < 1 {
			perTick = 1 // ≥1 ns so offsets keep strictly increasing
		}
		windowStart := start.Add(time.Duration(s) * cfg.Step)
		for k := 0; ; k++ {
			offset := time.Duration(float64(k) * perTick)
			if offset >= cfg.Step {
				break
			}
			req, err := draw(r, cfg.Pool, cfg.Sizer, cfg.FixedTask)
			if err != nil {
				return nil, err
			}
			req.At = windowStart.Add(offset)
			req.UserID = uid
			uid++
			out = append(out, req)
		}
	}
	return out, nil
}
