package workload

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
)

// This file holds the substream-driven generators used by the load
// generator (internal/loadgen). The single-rand generators in
// workload.go stay as-is for the simulation experiments; the variants
// here derive one sim.RNG substream per user, so a user's schedule
// depends only on (root seed, user id) — never on how many other users
// exist or in which order schedules are materialized. That is the
// property that makes two loadgen runs with the same -seed replay
// identical request sequences at any concurrency.

// ClosedLoopConfig parameterizes per-user closed-loop sequences: Users
// devices, each issuing PerUser requests back-to-back (a request departs
// when the previous response arrives — the ThinkAir-style multi-client
// benchmark mode).
type ClosedLoopConfig struct {
	Users   int
	PerUser int
	Pool    *tasks.Pool
	Sizer   Sizer
	// FixedTask pins every request to one task (empty = random pool draw).
	FixedTask string
}

// GenerateClosedLoop builds one request sequence per user. User u draws
// exclusively from root.SubN("user", u), so sequences are invariant to
// Users and to generation order; growing the fleet appends new users
// without perturbing existing schedules.
func GenerateClosedLoop(root *sim.RNG, cfg ClosedLoopConfig) ([][]Request, error) {
	if root == nil {
		return nil, errors.New("workload: nil rng root")
	}
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("workload: users %d <= 0", cfg.Users)
	}
	if cfg.PerUser <= 0 {
		return nil, fmt.Errorf("workload: per-user requests %d <= 0", cfg.PerUser)
	}
	if cfg.Pool == nil {
		return nil, errors.New("workload: nil pool")
	}
	if cfg.Sizer == nil {
		return nil, errors.New("workload: nil sizer")
	}
	out := make([][]Request, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		r := root.SubN("user", u).Stream("draws")
		seq := make([]Request, 0, cfg.PerUser)
		for j := 0; j < cfg.PerUser; j++ {
			req, err := draw(r, cfg.Pool, cfg.Sizer, cfg.FixedTask)
			if err != nil {
				return nil, err
			}
			req.UserID = u
			seq = append(seq, req)
		}
		out[u] = seq
	}
	return out, nil
}

// GenerateUserStreams is the open-loop analogue of GenerateInterArrival
// with per-user substreams: each user's arrival process and task draws
// come from root.SubN("user", u), and the merged stream is sorted by
// arrival time with (time, user) tie-breaking, so the result is a pure
// function of (root, start, cfg) with per-user independence.
func GenerateUserStreams(root *sim.RNG, start time.Time, cfg InterArrivalConfig) ([]Request, error) {
	if root == nil {
		return nil, errors.New("workload: nil rng root")
	}
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("workload: users %d <= 0", cfg.Users)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: duration %v <= 0", cfg.Duration)
	}
	if cfg.InterArrival == nil {
		return nil, errors.New("workload: nil inter-arrival distribution")
	}
	if cfg.Pool == nil {
		return nil, errors.New("workload: nil pool")
	}
	if cfg.Sizer == nil {
		return nil, errors.New("workload: nil sizer")
	}
	var out []Request
	for u := 0; u < cfg.Users; u++ {
		r := root.SubN("user", u).Stream("arrivals")
		at := start
		for {
			gapMs := cfg.InterArrival.Sample(r)
			if gapMs < 1 {
				gapMs = 1
			}
			at = at.Add(time.Duration(gapMs * float64(time.Millisecond)))
			if at.Sub(start) >= cfg.Duration {
				break
			}
			req, err := draw(r, cfg.Pool, cfg.Sizer, cfg.FixedTask)
			if err != nil {
				return nil, err
			}
			req.At = at
			req.UserID = u
			out = append(out, req)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].At.Equal(out[j].At) {
			return out[i].At.Before(out[j].At)
		}
		return out[i].UserID < out[j].UserID
	})
	return out, nil
}
