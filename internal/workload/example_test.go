package workload_test

import (
	"fmt"

	"accelcloud/internal/sim"
	"accelcloud/internal/tasks"
	"accelcloud/internal/workload"
)

// ExampleGenerateClosedLoop builds the per-user deterministic sequences
// the load generator replays: user u's schedule depends only on the
// root seed and u, so growing the fleet never perturbs existing users.
func ExampleGenerateClosedLoop() {
	root := sim.NewRNG(1).Sub("example")
	seqs, err := workload.GenerateClosedLoop(root, workload.ClosedLoopConfig{
		Users:   2,
		PerUser: 3,
		Pool:    tasks.DefaultPool(),
		Sizer:   workload.DefaultSizer(),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for u, seq := range seqs {
		for _, req := range seq {
			fmt.Printf("user %d: %s(%d)\n", u, req.TaskName, req.Size)
		}
	}
	// A 10-user fleet reuses the same draws for users 0 and 1.
	big, err := workload.GenerateClosedLoop(root, workload.ClosedLoopConfig{
		Users:   10,
		PerUser: 3,
		Pool:    tasks.DefaultPool(),
		Sizer:   workload.DefaultSizer(),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("fleet-growth invariant:", big[0][0] == seqs[0][0] && big[1][2] == seqs[1][2])
	// Output:
	// user 0: quicksort(77)
	// user 0: fibonacci(37837)
	// user 0: knapsack(10)
	// user 1: minimax(6)
	// user 1: matmul(16)
	// user 1: minimax(4)
	// fleet-growth invariant: true
}
