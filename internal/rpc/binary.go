package rpc

import (
	"context"
	"fmt"
	"strings"

	"accelcloud/internal/wire"
)

// The binary transport: the same Client surface (Offload, Execute,
// OffloadBatch, Health) over length-prefixed frames on one persistent
// multiplexed TCP connection instead of one HTTP request per call. It
// plugs in underneath post(), so the whole resilience ladder —
// Timeout, RetryPolicy, HedgePolicy, the counters — composes with it
// unchanged.

// wireClient lazily builds the framed-protocol client for a bin://
// BaseURL. The wire.Client redials transparently, so one rpc.Client
// keeps exactly one persistent connection per peer for its lifetime.
func (c *Client) wireClient() (*wire.Client, error) {
	c.binOnce.Do(func() {
		addr := strings.TrimPrefix(c.BaseURL, BinaryScheme)
		addr = strings.TrimSuffix(addr, "/")
		if addr == "" || strings.Contains(addr, "/") {
			c.binErr = fmt.Errorf("rpc: malformed binary address %q (want %shost:port)", c.BaseURL, BinaryScheme)
			return
		}
		c.bin = wire.NewClient(addr)
	})
	return c.bin, c.binErr
}

// binPost mirrors postJSON over the framed transport: encode the
// request payload, send one frame, map the answering frame back to the
// caller's out value. FrameError responses become *StatusError with
// the same HTTP-equivalent code the JSON compat mode would have
// produced, so the retry budget and the callers classify failures
// identically on both transports.
func (c *Client) binPost(ctx context.Context, path string, in, out any) error {
	bc, err := c.wireClient()
	if err != nil {
		return err
	}
	var (
		ftype, flags byte
		payload      []byte
	)
	switch req := in.(type) {
	case OffloadRequest:
		ftype, flags = wire.FrameRequest, wire.MethodOffload
		payload = wire.AppendOffloadRequest(nil, req)
	case ExecuteRequest:
		ftype, flags = wire.FrameRequest, wire.MethodExecute
		payload = wire.AppendExecuteRequest(nil, req)
	case BatchRequest:
		ftype, flags = wire.FrameBatch, 0
		payload = wire.AppendBatchRequest(nil, req)
	default:
		return fmt.Errorf("rpc: no binary encoding for %T (path %s)", in, path)
	}
	f, err := bc.Call(ctx, ftype, flags, payload)
	if err != nil {
		return fmt.Errorf("rpc: %s: %w", path, err)
	}
	switch f.Type {
	case wire.FrameError:
		e, derr := wire.DecodeErrorFrame(f.Payload)
		if derr != nil {
			return fmt.Errorf("rpc: %s: undecodable error frame: %w", path, derr)
		}
		return fmt.Errorf("rpc: %s: %w", path, &StatusError{Code: e.Code, Body: e.Message})
	case wire.FrameResponse:
		switch resp := out.(type) {
		case *OffloadResponse:
			v, derr := wire.DecodeOffloadResponse(f.Payload)
			if derr != nil {
				return fmt.Errorf("rpc: decode response: %w", derr)
			}
			*resp = v
		case *ExecuteResponse:
			v, derr := wire.DecodeExecuteResponse(f.Payload)
			if derr != nil {
				return fmt.Errorf("rpc: decode response: %w", derr)
			}
			*resp = v
		default:
			return fmt.Errorf("rpc: no binary decoding for %T (path %s)", out, path)
		}
		return nil
	case wire.FrameBatch:
		resp, ok := out.(*BatchResponse)
		if !ok {
			return fmt.Errorf("rpc: batch frame answering non-batch call (path %s)", path)
		}
		v, derr := wire.DecodeBatchResponse(f.Payload)
		if derr != nil {
			return fmt.Errorf("rpc: decode batch response: %w", derr)
		}
		*resp = v
		return nil
	default:
		return fmt.Errorf("rpc: %s: unexpected frame type %d", path, f.Type)
	}
}
